// Ablation: attacker performance over a lossy channel.
//
// The paper's numbers come from real 2.4 GHz air in crowded venues, where
// probe responses die to collisions and absorption. This sweep turns on the
// medium's deterministic fault injection and raises the ambient packet-error
// rate 0 → 50% (plus the always-on SNR-derived edge-of-range loss and
// interference bursts), measuring how each attacker generation degrades.
// The 802.11 retry/backoff machinery repairs most unicast loss, but every
// retransmission burns airtime: at 50% ambient PER the attacker gets
// through barely half the transmissions it managed on a clean channel, so
// the 40-response scan budget effectively shrinks. KARMA answers only
// direct probes (h_b = 0 structurally); MANA spends its shrunken budget
// re-offering the same first-40 SSIDs; City-Hunter's untried tracking makes
// every response that does get through count toward a new SSID — it should
// keep the most of its capture rate.
#include "bench_common.h"

using namespace cityhunter;

int main() {
  bench::print_header("Ablation — capture rate under a lossy channel",
                      "Sec V (real-air conditions the testbed implies)");
  sim::World world = bench::make_world();

  const double ambient_pers[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  const sim::AttackerKind kinds[] = {sim::AttackerKind::kKarma,
                                     sim::AttackerKind::kMana,
                                     sim::AttackerKind::kCityHunter};

  std::vector<sim::RunConfig> runs;
  for (const double per : ambient_pers) {
    for (const auto kind : kinds) {
      sim::RunConfig run;
      run.kind = kind;
      run.venue = mobility::canteen_venue();
      run.slot.expected_clients = run.venue.hourly_clients[4];  // midday
      run.slot.group_fraction = run.venue.hourly_group_fraction[4];
      run.duration = support::SimTime::minutes(30);
      run.run_seed = 21;  // same crowd for every (per, attacker) cell
      medium::Medium::Config medium_cfg = world.config().medium;
      medium_cfg.fault.enabled = true;
      medium_cfg.fault.ambient_loss = per;
      // Interference bursts (and thus 802.11 retries) scale with congestion.
      medium_cfg.fault.corruption_rate = per * 0.4;
      run.medium = medium_cfg;
      runs.push_back(std::move(run));
    }
  }

  bench::apply_obs_env(runs);
  const auto outputs = sim::run_campaigns(world, runs);
  bench::report_failed_runs(outputs);
  bench::report_channel(outputs);
  bench::write_trace_if_requested(outputs);

  support::TextTable t({"ambient PER", "KARMA h_b", "MANA h_b",
                        "City-Hunter h_b", "CH loss rate", "CH retries"});
  for (std::size_t p = 0; p < std::size(ambient_pers); ++p) {
    const auto& karma = outputs[p * std::size(kinds) + 0];
    const auto& mana = outputs[p * std::size(kinds) + 1];
    const auto& hunter = outputs[p * std::size(kinds) + 2];
    t.add_row({support::TextTable::pct(ambient_pers[p]),
               support::TextTable::pct(karma.result.h_b()),
               support::TextTable::pct(mana.result.h_b()),
               support::TextTable::pct(hunter.result.h_b()),
               support::TextTable::pct(hunter.medium_stats.loss_rate()),
               support::TextTable::num(
                   static_cast<long long>(hunter.medium_stats.retries))});
  }
  std::printf("%s", t.str().c_str());

  // Channel bookkeeping for the extreme cells: the perfect channel vs the
  // worst sweep point, City-Hunter's runs.
  const auto& clean = outputs[0 * std::size(kinds) + 2];
  const auto& worst =
      outputs[(std::size(ambient_pers) - 1) * std::size(kinds) + 2];
  std::printf("\nCity-Hunter channel, PER %s: %s\n",
              support::TextTable::pct(ambient_pers[0]).c_str(),
              stats::loss_line(clean.medium_stats).c_str());
  std::printf("City-Hunter channel, PER %s: %s\n",
              support::TextTable::pct(
                  ambient_pers[std::size(ambient_pers) - 1]).c_str(),
              stats::loss_line(worst.medium_stats).c_str());

  std::printf("\nexpectation: City-Hunter > MANA > KARMA at every loss "
              "level; all capture rates fall as PER rises because retries "
              "repair collisions at airtime cost (transmission count drops "
              "as retries climb, squeezing the 40-response scan budget), "
              "but City-Hunter keeps the largest share of its lossless h_b "
              "— every response that survives offers a new untried SSID, "
              "while MANA re-spends the shrunken budget on the same "
              "first 40\n");
  return 0;
}
