// Table I: KARMA vs MANA, 30-minute canteen deployments.
//
// Paper: KARMA saw 614 probes (85 direct / 529 broadcast), connected 24
// direct and 0 broadcast (h 3.9%, h_b 0). MANA saw 688 (103/585), connected
// 27 direct + 19 broadcast (h 6.6%, h_b 3%).
#include "bench_common.h"

using namespace cityhunter;

int main() {
  bench::print_header("Table I — KARMA vs MANA in the canteen",
                      "Table I (Sec I)");
  sim::World world = bench::make_world();

  auto base_run = [&](sim::AttackerKind kind, std::uint64_t run_seed) {
    sim::RunConfig run;
    run.kind = kind;
    run.venue = mobility::canteen_venue();
    run.slot.expected_clients = 640;
    run.duration = support::SimTime::minutes(30);
    run.run_seed = run_seed;
    return sim::run_campaign(world, run);
  };

  // The paper ran both attackers simultaneously 40 m apart; we run them on
  // independent crowds of the same venue (different run seeds).
  const auto karma = base_run(sim::AttackerKind::kKarma, 1);
  const auto mana = base_run(sim::AttackerKind::kMana, 2);

  std::printf("%s\n",
              stats::comparison_table({karma.result, mana.result}).c_str());
  bench::report_channel({karma, mana});

  bench::paper_vs_measured("KARMA h", "3.9%",
                           support::TextTable::pct(karma.result.h()));
  bench::paper_vs_measured("KARMA h_b (must be 0)", "0%",
                           support::TextTable::pct(karma.result.h_b()));
  bench::paper_vs_measured("MANA h", "6.6%",
                           support::TextTable::pct(mana.result.h()));
  bench::paper_vs_measured("MANA h_b", "3%",
                           support::TextTable::pct(mana.result.h_b()));
  std::printf("\nshape check: KARMA lures no broadcast clients; MANA adds a "
              "small broadcast hit rate on top of KARMA's direct-only take\n");
  return 0;
}
