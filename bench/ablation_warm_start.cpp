// Ablation: database re-initialisation vs warm start across slots.
//
// The paper re-initialised City-Hunter's database before every 1-hour test
// ("the database of City-Hunter were initialized before each test", §V-A).
// This bench quantifies the alternative: carrying the learned SSIDs and hit
// records from one slot into the next, across a canteen morning
// (8am -> 12pm), and across a venue change (canteen DB deployed in the
// passage — does local learning transfer?).
#include "bench_common.h"
#include "sim/parallel.h"

using namespace cityhunter;

int main() {
  bench::print_header("Ablation — database warm start across slots",
                      "Sec V-A (per-test re-initialisation)");
  sim::World world = bench::make_world();

  auto make_run = [](const mobility::VenueConfig& venue, int slot,
                     std::optional<core::SsidDatabase> carry,
                     std::uint64_t run_seed) {
    sim::RunConfig run;
    run.kind = sim::AttackerKind::kCityHunter;
    run.venue = venue;
    run.slot.expected_clients =
        venue.hourly_clients[static_cast<std::size_t>(slot)];
    run.slot.group_fraction =
        venue.hourly_group_fraction[static_cast<std::size_t>(slot)];
    run.duration = support::SimTime::hours(1);
    run.run_seed = run_seed;
    run.initial_database = std::move(carry);
    return run;
  };
  auto slot_run = [&](const mobility::VenueConfig& venue, int slot,
                      std::optional<core::SsidDatabase> carry,
                      std::uint64_t run_seed) {
    return sim::run_campaign(world,
                             make_run(venue, slot, std::move(carry), run_seed));
  };

  const auto canteen = mobility::canteen_venue();
  const auto passage = mobility::subway_passage_venue();

  // --- Same venue, consecutive slots ---
  std::printf("\n--- canteen: 4 consecutive morning slots ---\n");
  support::TextTable t1({"slot", "cold h_b", "warm h_b", "warm db size"});
  // The cold runs are independent — fan them out. The warm chain is
  // inherently serial: each slot starts from the previous slot's database.
  std::vector<sim::RunConfig> cold_runs;
  for (int slot = 0; slot < 4; ++slot) {
    cold_runs.push_back(make_run(canteen, slot, std::nullopt,
                                 400 + static_cast<std::uint64_t>(slot)));
  }
  const auto colds = sim::run_campaigns(world, cold_runs);
  bench::report_failed_runs(colds);
  bench::report_channel(colds);
  std::optional<core::SsidDatabase> carry;
  for (int slot = 0; slot < 4; ++slot) {
    const auto& cold = colds[static_cast<std::size_t>(slot)];
    const auto warm = slot_run(canteen, slot, std::move(carry), 400 + slot);
    carry = warm.database;
    t1.add_row({mobility::slot_label(slot),
                support::TextTable::pct(cold.result.h_b()),
                support::TextTable::pct(warm.result.h_b()),
                std::to_string(warm.db_final_size)});
  }
  std::printf("%s", t1.str().c_str());

  // --- Cross venue: canteen-trained DB in the passage ---
  std::printf("\n--- cross-venue transfer ---\n");
  support::TextTable t2({"deployment", "h_b"});
  const auto canteen_day = slot_run(canteen, 4, std::nullopt, 500);
  const auto passage_cold = slot_run(passage, 4, std::nullopt, 501);
  const auto passage_warm = slot_run(passage, 4, canteen_day.database, 501);
  t2.add_row({"passage, fresh DB",
              support::TextTable::pct(passage_cold.result.h_b())});
  t2.add_row({"passage, canteen-trained DB",
              support::TextTable::pct(passage_warm.result.h_b())});
  std::printf("%s", t2.str().c_str());

  std::printf("\nexpectation: warm starts help modestly in the same venue "
              "(the WiGLE seed already covers the head of the distribution; "
              "carried hit records mostly re-rank it) and transfer weakly "
              "across venues (learned SSIDs are venue-local).\n");
  return 0;
}
