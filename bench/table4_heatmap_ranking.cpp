// Table IV: top-5 SSIDs by AP count vs by photo-heat value.
//
// Paper: ranking by raw AP count puts '-Free HKBN Wi-Fi-', '7-Eleven Free
// Wifi', '-Circle K Free Wi-Fi-', 'CSL', 'CMCC-WEB' on top; ranking by heat
// value promotes 'Free Public WiFi' and '#HKAirport Free WiFi' (231 APs,
// rank ~13 by count) into the top 5 because their APs sit where the people
// are.
#include "bench_common.h"

using namespace cityhunter;

int main() {
  bench::print_header("Table IV — top-5 SSIDs by AP count vs heat value",
                      "Table IV (Sec IV-B)");
  sim::World world = bench::make_world();

  const auto by_count = heatmap::top_by_ap_count(world.wigle(), 15);
  const auto by_heat = heatmap::top_by_heat(world.wigle(), world.heat(), 15);

  support::TextTable t({"Rank", "Top SSIDs by AP count", "APs",
                        "Top SSIDs by heat value", "heat"});
  for (std::size_t i = 0; i < 5; ++i) {
    t.add_row({std::to_string(i + 1), by_count[i].ssid,
               support::TextTable::num(by_count[i].score, 0),
               by_heat[i].ssid,
               support::TextTable::num(by_heat[i].score, 0)});
  }
  std::printf("%s\n", t.str().c_str());

  // The paper's headline example: the airport SSID has few APs but must
  // enter the top 5 once heat is considered.
  auto rank_of = [](const std::vector<heatmap::ScoredSsid>& list,
                    const std::string& ssid) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].ssid == ssid) return static_cast<int>(i + 1);
    }
    return -1;
  };
  const int airport_count_rank = rank_of(by_count, "#HKAirport Free WiFi");
  const int airport_heat_rank = rank_of(by_heat, "#HKAirport Free WiFi");
  const int fpw_heat_rank = rank_of(by_heat, "Free Public WiFi");

  bench::paper_vs_measured(
      "airport SSID rank by AP count", "~13",
      airport_count_rank > 0 ? std::to_string(airport_count_rank) : ">15");
  bench::paper_vs_measured(
      "airport SSID rank by heat", "top 5 (rank 2)",
      airport_heat_rank > 0 ? std::to_string(airport_heat_rank) : ">15");
  bench::paper_vs_measured(
      "'Free Public WiFi' rank by heat", "top 5 (rank 1)",
      fpw_heat_rank > 0 ? std::to_string(fpw_heat_rank) : ">15");
  return 0;
}
