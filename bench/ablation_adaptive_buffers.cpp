// Ablation: the ARC-inspired adaptive PB/FB split vs fixed splits and
// no-ghost selection (Sec IV-C design choices).
//
// The paper argues the split should adapt to the venue (static diners in
// groups -> freshness matters; unrelated commuters -> popularity matters)
// instead of being fixed like 35 vs 5.
#include "bench_common.h"
#include "sim/parallel.h"

using namespace cityhunter;

namespace {

struct Variant {
  const char* name;
  core::BufferSelectorConfig buffers;
};

std::vector<Variant> variants() {
  std::vector<Variant> v;
  {
    core::BufferSelectorConfig b;  // adaptive (the real City-Hunter)
    v.push_back({"adaptive (paper)", b});
  }
  {
    core::BufferSelectorConfig b;
    b.adaptive = false;
    b.initial_pb_size = 35;
    v.push_back({"fixed 35/5", b});
  }
  {
    core::BufferSelectorConfig b;
    b.adaptive = false;
    b.initial_pb_size = 20;
    v.push_back({"fixed 20/20", b});
  }
  {
    core::BufferSelectorConfig b;
    b.use_ghosts = false;  // adaptation signal never fires
    v.push_back({"no ghost lists", b});
  }
  {
    core::BufferSelectorConfig b;
    b.use_freshness = false;  // pure popularity
    v.push_back({"popularity only", b});
  }
  return v;
}

}  // namespace

int main() {
  bench::print_header("Ablation — adaptive buffers vs fixed splits",
                      "Sec IV-C (design choice)");
  sim::World world = bench::make_world();

  const mobility::VenueConfig venues[] = {mobility::canteen_venue(),
                                          mobility::subway_passage_venue()};
  for (const auto& venue : venues) {
    std::printf("\n--- %s (rush slot) ---\n", venue.name.c_str());
    support::TextTable t({"variant", "h_b", "fresh hits", "final PB/FB"});
    const auto vs = variants();
    std::vector<sim::RunConfig> runs;
    for (const auto& variant : vs) {
      sim::RunConfig run;
      run.kind = sim::AttackerKind::kCityHunter;
      run.venue = venue;
      run.slot.expected_clients = venue.hourly_clients[0];
      run.slot.group_fraction = venue.hourly_group_fraction[0];
      run.duration = support::SimTime::hours(1);
      run.cityhunter.buffers = variant.buffers;
      run.run_seed = 11;  // same crowd for every variant
      runs.push_back(std::move(run));
    }
    const auto outputs = sim::run_campaigns(world, runs);
    bench::report_failed_runs(outputs);
    bench::report_channel(outputs);
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      const auto& out = outputs[i];
      t.add_row({vs[i].name, support::TextTable::pct(out.result.h_b()),
                 std::to_string(out.result.hits_via_freshness),
                 std::to_string(out.final_pb_size) + "/" +
                     std::to_string(out.final_fb_size)});
    }
    std::printf("%s", t.str().c_str());
  }
  std::printf("\nexpectation: adaptive tracks the best fixed split per venue "
              "without knowing the venue in advance\n");
  return 0;
}
