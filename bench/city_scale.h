// City-scale scenario builder shared by bench/fig_city_scale and
// bench/wallclock: a square urban district with thousands of radios driving
// the Medium's delivery fanout directly.
//
//   - 30% static APs at 20 dBm, beaconing every 102.4 ms (staggered), on
//     channels 1/6/11 — the steady AP↔AP / AP↔phone fanout the pair
//     pathloss cache is built for.
//   - 70% phones at 15 dBm, broadcasting a probe scan every ~2 s (jittered
//     per phone) and walking at ~1.4 m/s toward random waypoints with 1 s
//     position ticks — constant grid churn and pair-cache invalidation.
//
// The builder is deterministic: one seed drives placement, stagger and
// mobility, and every Config delivery mode must produce identical
// transmission/delivery counts (asserted by fig_city_scale and the golden
// campaign test).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "dot11/frame.h"
#include "medium/event_queue.h"
#include "medium/medium.h"
#include "support/rng.h"
#include "support/sim_time.h"

namespace cityhunter::bench {

struct CityScaleParams {
  int radios = 10000;
  double ap_fraction = 0.3;
  /// Side of the square district, metres. 2 km at 10k radios gives ~2.5
  /// radios per 1000 m² — a dense urban block per UJI/Lisbon probe data.
  double area_m = 2000.0;
  support::SimTime duration = support::SimTime::seconds(5.0);
  std::uint64_t seed = 2026;
};

struct CityScaleResult {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Index-efficiency counters (Medium::FanoutStats): bucket entries the
  /// filter kernels streamed, how many passed the fused listening-key
  /// compare, and the difference — entries that cost a cache line only to
  /// be discarded. Channel-partitioned buckets drive wasted to 0; the mixed
  /// layout wastes ~2/3 of loads at the district's 1/6/11 channel plan.
  std::uint64_t candidates_loaded = 0;
  std::uint64_t key_matched = 0;
  std::uint64_t wasted_candidates = 0;
  /// End-of-run occupancy of the live spatial index.
  double mean_bucket_occupancy = 0.0;
  std::uint32_t max_bucket_occupancy = 0;
  double wall_s = 0.0;
  double deliveries_per_s = 0.0;  // wall-clock deliver throughput
};

namespace detail {

class NullSink final : public medium::FrameSink {
 public:
  void on_frame(const dot11::Frame&, const medium::RxInfo&) override {}
};

/// The whole district. Entities re-post their own events, capturing only
/// {this, index} — inline in the event queue's SmallFn, no heap per event.
class City {
 public:
  City(const CityScaleParams& p, medium::Medium::Config cfg)
      : medium_(events_, cfg), rng_(p.seed), params_(p) {
    const std::uint8_t channels[] = {1, 6, 11};
    const int n_aps = static_cast<int>(p.radios * p.ap_fraction);
    const int n_phones = p.radios - n_aps;
    support::Rng mac_rng(p.seed ^ 0xC17Bu);
    beacon_ = dot11::make_beacon(dot11::MacAddress::random_local(mac_rng),
                                 "city-scale-ap", 6, /*open=*/true,
                                 /*timestamp_us=*/0);
    probe_ = dot11::make_broadcast_probe_request(
        dot11::MacAddress::random_local(mac_rng));

    aps_.reserve(static_cast<std::size_t>(n_aps));
    for (int i = 0; i < n_aps; ++i) {
      const medium::Position pos{rng_.uniform(0.0, p.area_m),
                                 rng_.uniform(0.0, p.area_m)};
      aps_.push_back(
          medium_.attach(pos, channels[rng_.index(3)], 20.0, &sink_));
      // Stagger beacons across the interval so airtime is spread evenly.
      schedule_beacon(static_cast<std::size_t>(i),
                      support::SimTime::microseconds(static_cast<std::int64_t>(
                          rng_.uniform(0.0, 102400.0))));
    }
    phones_.reserve(static_cast<std::size_t>(n_phones));
    phone_pos_.reserve(static_cast<std::size_t>(n_phones));
    phone_waypoint_.reserve(static_cast<std::size_t>(n_phones));
    for (int i = 0; i < n_phones; ++i) {
      const medium::Position pos{rng_.uniform(0.0, p.area_m),
                                 rng_.uniform(0.0, p.area_m)};
      phones_.push_back(
          medium_.attach(pos, channels[rng_.index(3)], 15.0, &sink_));
      phone_pos_.push_back(pos);
      phone_waypoint_.push_back({rng_.uniform(0.0, p.area_m),
                                 rng_.uniform(0.0, p.area_m)});
      const auto idx = static_cast<std::size_t>(i);
      schedule_scan(idx, support::SimTime::microseconds(static_cast<
                             std::int64_t>(rng_.uniform(0.0, 2e6))));
      schedule_walk(idx, support::SimTime::microseconds(static_cast<
                             std::int64_t>(rng_.uniform(0.0, 1e6))));
    }
  }

  void run() { events_.run_until(params_.duration); }

  const medium::Medium& medium() const { return medium_; }

 private:
  void schedule_beacon(std::size_t i, support::SimTime at) {
    events_.post_at(at, [this, i] {
      aps_[i].transmit(beacon_);
      schedule_beacon(i, events_.now() +
                             support::SimTime::microseconds(102400));
    });
  }

  void schedule_scan(std::size_t i, support::SimTime at) {
    events_.post_at(at, [this, i] {
      phones_[i].transmit(probe_);
      // Per-phone jitter, drawn from the shared deterministic stream in
      // event order (the queue is FIFO at equal times, so the order is
      // reproducible).
      schedule_scan(i, events_.now() +
                           support::SimTime::microseconds(
                               1500000 + static_cast<std::int64_t>(
                                             rng_.uniform(0.0, 1e6))));
    });
  }

  void schedule_walk(std::size_t i, support::SimTime at) {
    events_.post_at(at, [this, i] {
      constexpr double kStepM = 1.4;  // walking speed × 1 s tick
      medium::Position& pos = phone_pos_[i];
      const medium::Position& wp = phone_waypoint_[i];
      const double dx = wp.x - pos.x;
      const double dy = wp.y - pos.y;
      const double d = std::hypot(dx, dy);
      if (d <= kStepM) {
        pos = wp;
        phone_waypoint_[i] = {rng_.uniform(0.0, params_.area_m),
                              rng_.uniform(0.0, params_.area_m)};
      } else {
        pos.x += dx / d * kStepM;
        pos.y += dy / d * kStepM;
      }
      phones_[i].set_position(pos);
      schedule_walk(i, events_.now() + support::SimTime::seconds(1.0));
    });
  }

  medium::EventQueue events_;
  medium::Medium medium_;
  NullSink sink_;
  support::Rng rng_;
  CityScaleParams params_;
  dot11::Frame beacon_;
  dot11::Frame probe_;
  std::vector<medium::Radio> aps_;
  std::vector<medium::Radio> phones_;
  std::vector<medium::Position> phone_pos_;
  std::vector<medium::Position> phone_waypoint_;
};

}  // namespace detail

/// Build and run the district under `cfg`, timing the event loop only
/// (setup excluded).
inline CityScaleResult run_city_scale(const CityScaleParams& params,
                                      medium::Medium::Config cfg) {
  detail::City city(params, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  city.run();
  const auto t1 = std::chrono::steady_clock::now();
  CityScaleResult r;
  r.transmissions = city.medium().transmissions();
  r.deliveries = city.medium().deliveries();
  r.cache_hits = city.medium().pathloss_cache_hits();
  r.cache_misses = city.medium().pathloss_cache_misses();
  const medium::Medium::FanoutStats& fs = city.medium().fanout_stats();
  r.candidates_loaded = fs.candidates_loaded();
  r.key_matched = fs.key_matched;
  r.wasted_candidates = fs.wasted_candidates();
  const medium::Medium::BucketOccupancy occ = city.medium().bucket_occupancy();
  r.mean_bucket_occupancy = occ.mean();
  r.max_bucket_occupancy = occ.max_occupancy;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.deliveries_per_s =
      r.wall_s > 0.0 ? static_cast<double>(r.deliveries) / r.wall_s : 0.0;
  return r;
}

}  // namespace cityhunter::bench
