// Fig 4: the photo-derived heat map of the city.
//
// Paper: photos geotagged to Instagram render Kowloon's malls and the
// airport red. Here: an ASCII rendering of the synthetic city's photo grid
// (darker = more photos) plus a CSV dump for plotting, and a check that the
// hottest cells coincide with the ground-truth commercial/airport districts.
#include "bench_common.h"
#include "support/atomic_file.h"

using namespace cityhunter;

int main() {
  bench::print_header("Fig 4 — city heat map from geotagged photos",
                      "Fig 4 (Sec IV-B)");
  sim::World world = bench::make_world();
  const auto& heat = world.heat();

  std::printf("\n%zux%zu grid, %.0f m cells, peak cell %.0f photos\n\n",
              heat.cols(), heat.rows(), heat.cell_size(), heat.max_cell());
  std::printf("%s\n", heat.to_ascii(72).c_str());

  std::string csv_error;
  if (support::write_file_atomic("fig4_heatmap.csv", heat.to_csv(),
                                 &csv_error)) {
    std::printf("full grid written to fig4_heatmap.csv\n\n");
  } else {
    std::printf("fig4_heatmap.csv not written: %s\n\n", csv_error.c_str());
  }

  // Shape check: heat at district centres vs a quiet corner.
  for (const auto& d : world.city().districts()) {
    std::printf("  district %-18s (%5.0f,%5.0f)  heat %8.0f\n",
                d.name.c_str(), d.center.x, d.center.y, heat.at(d.center));
  }
  const double corner = heat.at({200, 200});
  std::printf("  quiet corner        ( 200,  200)  heat %8.0f\n", corner);

  double hottest = 0;
  std::string hottest_name;
  for (const auto& d : world.city().districts()) {
    if (heat.at(d.center) > hottest) {
      hottest = heat.at(d.center);
      hottest_name = d.name;
    }
  }
  bench::paper_vs_measured("hot cells = crowded places",
                           "malls, airport red",
                           "hottest district: " + hottest_name);
  return 0;
}
