// Heap-allocation counter for perf smoke tests and micro-benches.
//
// When CITYHUNTER_COUNT_ALLOCS is defined, this header replaces the global
// allocating operator new/new[] (and the matching deletes) with versions
// that bump a process-wide counter, so a test can assert "this hot loop
// performed N allocations" instead of eyeballing a profiler. Without the
// macro only the counter API is compiled and alloc_count() stays at zero.
//
// Include from exactly one translation unit per binary (each test/bench is
// a single-TU executable, so including it from the main source is enough):
// the replacement operators are deliberately non-inline definitions.
#pragma once

#include <atomic>
#include <cstdint>

namespace cityhunter::bench {

namespace detail {
inline std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace detail

/// Heap allocations (operator new / new[]) since process start. Monotonic;
/// sample before and after the region of interest and subtract.
inline std::uint64_t alloc_count() {
  return detail::g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace cityhunter::bench

#ifdef CITYHUNTER_COUNT_ALLOCS

#include <cstdlib>
#include <new>

namespace cityhunter::bench::detail {

inline void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

inline void* counted_alloc(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}

}  // namespace cityhunter::bench::detail

void* operator new(std::size_t size) {
  return cityhunter::bench::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return cityhunter::bench::detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return cityhunter::bench::detail::counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return cityhunter::bench::detail::counted_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // CITYHUNTER_COUNT_ALLOCS
