// Forward-looking ablation: per-scan MAC randomization (the client
// hardening that rolled out broadly after the paper) against City-Hunter.
//
// Randomised MACs break the attacker's per-client untried tracking — every
// scan looks like a brand-new client, so the same top-40 SSIDs get re-sent
// instead of sweeping deeper — and inflate its perceived client counts.
// Ground truth (who actually got lured) comes from the simulator, which the
// attacker cannot see.
#include "bench_common.h"
#include "mobility/population.h"

using namespace cityhunter;

int main() {
  bench::print_header(
      "Ablation — per-scan MAC randomization vs City-Hunter",
      "extension beyond the paper (post-2017 client hardening)");
  sim::World world = bench::make_world();

  support::TextTable t({"randomizing devices", "attacker-perceived clients",
                        "real devices probing", "real h_b (ground truth)",
                        "attacker-perceived h_b"});

  for (const double fraction : {0.0, 0.5, 1.0}) {
    medium::EventQueue events;
    medium::Medium medium(events, world.config().medium);
    support::Rng rng(world.config().seed ^ 0x3AC5);

    core::CityHunter::Config cfg;
    cfg.base.bssid = *dot11::MacAddress::parse("0a:7e:64:c1:7e:01");
    cfg.base.pos = {0, 0};
    core::CityHunter hunter(medium, cfg, rng.fork("sel"));
    const auto venue = mobility::canteen_venue();
    const auto attack_pos = sim::venue_city_position(venue.name);
    core::seed_from_wigle(hunter.database(), world.wigle(), &world.heat(),
                          attack_pos, core::WigleSeedConfig{}, events.now());
    hunter.start();

    // Local copy: the shared World's PNL model is immutable (see
    // sim/scenario.h); locale + person-id counters are per-crowd state.
    world::PnlModel pnl = world.pnl_model();
    world::Locale locale;
    locale.ranked_ssids = world.local_public_ssids(attack_pos, 500.0);
    locale.bias = 0.45;
    pnl.set_locale(std::move(locale));

    auto phone_cfg = world.config().phone;
    phone_cfg.mean_scan_interval =
        support::SimTime::seconds(venue.mean_scan_interval_s);
    mobility::VenuePopulation population(medium, pnl, venue,
                                         phone_cfg, rng.fork("pop"));
    mobility::SlotParams slot;
    slot.expected_clients = 640;
    slot.mac_randomizing_fraction = fraction;
    population.schedule_slot(support::SimTime::minutes(30), slot);
    events.run_until(support::SimTime::minutes(30));

    // Ground truth from the simulator.
    std::size_t real_probing = 0, real_connected = 0;
    for (const auto& phone : population.phones()) {
      if (!phone->ever_probed() || phone->person().sends_direct_probes) {
        continue;
      }
      ++real_probing;
      if (phone->connected_to_attacker()) ++real_connected;
    }
    const auto perceived = stats::analyze(hunter, "x");
    bench::report_channel(stats::medium_stats(medium));

    t.add_row({support::TextTable::pct(fraction, 0),
               std::to_string(perceived.total_clients),
               std::to_string(real_probing),
               support::TextTable::pct(
                   real_probing ? static_cast<double>(real_connected) /
                                      static_cast<double>(real_probing)
                                : 0.0),
               support::TextTable::pct(perceived.h_b())});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("expectation: randomization inflates the attacker's client "
              "count several-fold, collapses its per-client sweep (real h_b "
              "drops towards the single-scan rate), and corrupts its own "
              "metrics.\n");
  return 0;
}
