// Fig 6: breakdown of the SSIDs that successfully hit broadcast clients.
//
// Same runs as Fig 5 (identical seeds), different analysis: each slot's
// broadcast hits are split (i) by database source — WiGLE seed vs SSIDs
// learned from direct probes on site — and (ii) by selection buffer —
// popularity (incl. ghost) vs freshness (incl. ghost).
//
// Paper shape: WiGLE contributes more than direct probes everywhere, but
// the direct-probe share grows in rush hours (passage 1:3.5 at 8-9am vs
// 1:5.1 at 9-10am); popularity contributes more than freshness everywhere,
// but freshness is relatively stronger in the canteen (1:3..1:5.2) than in
// the passage (1:6.3..1:9.9) because diners share social history.
#include "bench_common.h"
#include "sim/parallel.h"

using namespace cityhunter;

int main() {
  bench::print_header("Fig 6 — breakdown of successful SSIDs",
                      "Fig 6(a)-(d) (Sec V-A)");
  sim::World world = bench::make_world();

  const mobility::VenueConfig venues[] = {
      mobility::subway_passage_venue(), mobility::canteen_venue(),
      mobility::shopping_center_venue(), mobility::railway_station_venue()};

  // All 48 slots are independent: fan them across cores (seeds unchanged, so
  // the numbers match the old serial loop exactly).
  std::vector<sim::RunConfig> runs;
  for (int venue_index = 0; venue_index < 4; ++venue_index) {
    const auto& venue = venues[venue_index];
    for (int slot = 0; slot < 12; ++slot) {
      sim::RunConfig run;
      run.kind = sim::AttackerKind::kCityHunter;
      run.venue = venue;
      run.slot.expected_clients =
          venue.hourly_clients[static_cast<std::size_t>(slot)];
      run.slot.group_fraction =
          venue.hourly_group_fraction[static_cast<std::size_t>(slot)];
      run.duration = support::SimTime::hours(1);
      run.run_seed = static_cast<std::uint64_t>(venue_index * 100 + slot + 1);
      runs.push_back(std::move(run));
    }
  }
  bench::apply_obs_env(runs);
  const auto outputs = sim::run_campaigns(world, runs);
  bench::report_failed_runs(outputs);
  bench::report_channel(outputs);
  bench::write_trace_if_requested(outputs);

  int venue_index = 0;
  for (const auto& venue : venues) {
    std::printf("\n--- %s ---\n", venue.name.c_str());
    std::printf("%-9s | %5s | %13s | %6s | %13s | %6s\n", "slot", "hits",
                "wigle/direct", "w:d", "pop/fresh", "p:f");
    double sum_wd = 0, sum_pf = 0;
    int n_wd = 0, n_pf = 0;
    for (int slot = 0; slot < 12; ++slot) {
      const auto& out =
          outputs[static_cast<std::size_t>(venue_index * 12 + slot)];
      const auto& r = out.result;

      char wd[32], pf[32];
      std::snprintf(wd, sizeof(wd), "%zu/%zu", r.hits_from_wigle,
                    r.hits_from_direct_db);
      std::snprintf(pf, sizeof(pf), "%zu/%zu", r.hits_via_popularity,
                    r.hits_via_freshness);
      std::printf("%-9s | %5zu | %13s | %6.1f | %13s | %6.1f\n",
                  mobility::slot_label(slot).c_str(), r.broadcast_connected,
                  wd, r.wigle_to_direct_ratio(), pf,
                  r.popularity_to_freshness_ratio());
      if (r.hits_from_direct_db > 0) {
        sum_wd += r.wigle_to_direct_ratio();
        ++n_wd;
      }
      if (r.hits_via_freshness > 0) {
        sum_pf += r.popularity_to_freshness_ratio();
        ++n_pf;
      }
    }
    if (n_wd) {
      bench::paper_vs_measured(
          "avg WiGLE:direct ratio",
          venue_index == 0 ? "3.5..5.1 (passage)" : "WiGLE dominates",
          support::TextTable::num(sum_wd / n_wd, 1) + ":1");
    }
    if (n_pf) {
      bench::paper_vs_measured(
          "avg popularity:freshness ratio",
          venue_index == 1 ? "3..5.2 (canteen)" : "6.3..9.9 (passage)",
          support::TextTable::num(sum_pf / n_pf, 1) + ":1");
    }
    ++venue_index;
  }
  std::printf("\nshape check: popularity > freshness everywhere; freshness "
              "relatively stronger in the canteen than in the passage\n");
  return 0;
}
