// Micro-benchmarks: attacker data-structure hot paths (google-benchmark).
// The selection/cache loops report allocs_per_op so allocation regressions
// on the attacker side are visible next to the time/op numbers.
#include "alloc_counter.h"

#include <benchmark/benchmark.h>

#include "cache/arc_cache.h"
#include "core/buffers.h"
#include "core/ssid_db.h"
#include "support/rng.h"

using namespace cityhunter;

namespace {

core::SsidDatabase make_db(int n) {
  core::SsidDatabase db;
  for (int i = 0; i < n; ++i) {
    db.add("SSID-" + std::to_string(i), static_cast<double>(n - i),
           core::SsidSource::kWiglePopular, support::SimTime::zero());
  }
  return db;
}

void BM_SsidDbAdd(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::SsidDatabase db;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      db.add("SSID-" + std::to_string(i), static_cast<double>(i),
             core::SsidSource::kDirectProbe, support::SimTime::zero());
    }
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_SsidDbAdd)->Arg(100)->Arg(500);

void BM_SsidDbByWeight(benchmark::State& state) {
  auto db = make_db(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto v = db.by_weight();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SsidDbByWeight)->Arg(100)->Arg(500)->Arg(2000);

void BM_BufferSelect(benchmark::State& state) {
  auto db = make_db(static_cast<int>(state.range(0)));
  support::Rng rng(3);
  // Mark a handful as fresh so both buffers engage.
  for (int i = 0; i < 30; ++i) {
    db.record_hit("SSID-" + std::to_string(i * 7),
                  1.0, support::SimTime::seconds(i));
  }
  core::BufferSelector selector(core::BufferSelectorConfig{}, rng.fork("s"));
  const auto by_weight = db.by_weight();
  const auto by_fresh = db.by_freshness();
  std::unordered_set<std::string> sent;
  for (int i = 0; i < 60; ++i) sent.insert("SSID-" + std::to_string(i));
  const auto a0 = bench::alloc_count();
  for (auto _ : state) {
    auto choices = selector.select(by_weight, by_fresh, &sent);
    benchmark::DoNotOptimize(choices);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 40);
  state.counters["allocs_per_op"] =
      static_cast<double>(bench::alloc_count() - a0) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_BufferSelect)->Arg(300)->Arg(1000);

void BM_ArcCacheMixed(benchmark::State& state) {
  cache::ArcCache<int, int> arc(static_cast<std::size_t>(state.range(0)));
  support::Rng rng(11);
  const auto a0 = bench::alloc_count();
  for (auto _ : state) {
    const int key = static_cast<int>(rng.zipf(1000, 0.8));
    if (!arc.get(key)) arc.put(key, key * 2);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["allocs_per_op"] =
      static_cast<double>(bench::alloc_count() - a0) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_ArcCacheMixed)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
