// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "sim/scenario.h"
#include "stats/report.h"
#include "support/histogram.h"
#include "support/table.h"

namespace cityhunter::bench {

inline constexpr std::uint64_t kDefaultSeed = 42;

inline sim::World make_world(std::uint64_t seed = kDefaultSeed) {
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  return sim::World(cfg);
}

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper reference: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

/// "paper: X | measured: Y" one-liner for EXPERIMENTS.md bookkeeping.
inline void paper_vs_measured(const char* metric, const char* paper,
                              const std::string& measured) {
  std::printf("  %-34s paper: %-18s measured: %s\n", metric, paper,
              measured.c_str());
}

}  // namespace cityhunter::bench
