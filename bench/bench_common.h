// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

// Heap-allocation counter (active only under CITYHUNTER_COUNT_ALLOCS; see
// bench/CMakeLists.txt for which targets enable it).
#include "alloc_counter.h"

#include "obs/trace.h"
#include "sim/parallel.h"
#include "sim/scenario.h"
#include "stats/report.h"
#include "support/atomic_file.h"
#include "support/histogram.h"
#include "support/table.h"

namespace cityhunter::bench {

inline constexpr std::uint64_t kDefaultSeed = 42;

inline sim::World make_world(std::uint64_t seed = kDefaultSeed) {
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  return sim::World(cfg);
}

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper reference: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

/// "paper: X | measured: Y" one-liner for EXPERIMENTS.md bookkeeping.
inline void paper_vs_measured(const char* metric, const char* paper,
                              const std::string& measured) {
  std::printf("  %-34s paper: %-18s measured: %s\n", metric, paper,
              measured.c_str());
}

/// Print each failed run's error and a partial-campaign banner. Returns the
/// failed-run count so callers can skip figures that need every run.
inline std::size_t report_failed_runs(
    const std::vector<sim::RunOutput>& outputs) {
  const std::size_t failed = sim::failed_runs(outputs);
  if (failed == 0) return 0;
  for (const auto& out : outputs) {
    if (out.error.failed()) {
      std::printf("  !! failed run: %s\n", out.error.str().c_str());
    }
  }
  std::printf("  !! %zu of %zu runs failed; results below are partial\n",
              failed, outputs.size());
  return failed;
}

/// Sum the channel-side counters across a campaign's runs.
inline stats::MediumStats aggregate_medium_stats(
    const std::vector<sim::RunOutput>& outputs) {
  stats::MediumStats agg;
  for (const auto& out : outputs) {
    agg.transmissions += out.medium_stats.transmissions;
    agg.deliveries += out.medium_stats.deliveries;
    agg.frames_lost += out.medium_stats.frames_lost;
    agg.frames_corrupted += out.medium_stats.frames_corrupted;
    agg.retries += out.medium_stats.retries;
  }
  return agg;
}

/// Print the channel loss line whenever any fault counter is nonzero, so a
/// lossy configuration is never silently reported as a clean channel.
inline void report_channel(const stats::MediumStats& m) {
  if (m.frames_lost == 0 && m.frames_corrupted == 0 && m.retries == 0) return;
  std::printf("  channel: %s\n", stats::loss_line(m).c_str());
}

inline void report_channel(const std::vector<sim::RunOutput>& outputs) {
  report_channel(aggregate_medium_stats(outputs));
}

inline void report_channel(const sim::RunOutput& output) {
  report_channel(output.medium_stats);
}

/// Path from CITYHUNTER_TRACE, or null when tracing was not requested.
inline const char* trace_env_path() {
  const char* path = std::getenv("CITYHUNTER_TRACE");
  return (path != nullptr && *path != '\0') ? path : nullptr;
}

/// Enable per-run observability on every run config when CITYHUNTER_TRACE
/// is set. The ring capacity can be tuned with CITYHUNTER_TRACE_CAPACITY
/// (records per run).
inline void apply_obs_env(std::vector<sim::RunConfig>& runs) {
  if (trace_env_path() == nullptr) return;
  obs::Config cfg;
  cfg.enabled = true;
  if (const char* cap = std::getenv("CITYHUNTER_TRACE_CAPACITY")) {
    const long v = std::atol(cap);
    if (v > 0) cfg.trace_capacity = static_cast<std::size_t>(v);
  }
  for (auto& run : runs) run.obs = cfg;
}

/// Merge every traced run into one Chrome trace_event file at the
/// CITYHUNTER_TRACE path. Streams are keyed by input-order run index (the
/// Chrome pid), so the file is byte-identical at any worker-thread count.
inline void write_trace_if_requested(
    const std::vector<sim::RunOutput>& outputs) {
  const char* path = trace_env_path();
  if (path == nullptr) return;
  std::vector<obs::TraceStream> streams;
  streams.reserve(outputs.size());
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    obs::TraceStream s;
    s.pid = static_cast<int>(i);
    s.name = "run-" + std::to_string(i);
    if (outputs[i].error.failed()) s.name += " (failed)";
    s.records = outputs[i].trace;
    dropped += outputs[i].trace_dropped;
    streams.push_back(std::move(s));
  }
  // Render in memory, publish with one atomic rename: a crash mid-write
  // never leaves a truncated trace that chrome://tracing rejects.
  std::ostringstream rendered;
  obs::write_chrome_trace(rendered, streams);
  std::string error;
  if (!support::write_file_atomic(path, rendered.str(), &error)) {
    std::printf("  !! CITYHUNTER_TRACE: %s\n", error.c_str());
    return;
  }
  std::printf("  trace: %s (%zu runs%s) — open in chrome://tracing or "
              "ui.perfetto.dev\n",
              path, streams.size(),
              dropped > 0
                  ? (", " + std::to_string(dropped) + " records dropped")
                        .c_str()
                  : "");
}

}  // namespace cityhunter::bench
