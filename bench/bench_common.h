// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

// Heap-allocation counter (active only under CITYHUNTER_COUNT_ALLOCS; see
// bench/CMakeLists.txt for which targets enable it).
#include "alloc_counter.h"

#include "sim/parallel.h"
#include "sim/scenario.h"
#include "stats/report.h"
#include "support/histogram.h"
#include "support/table.h"

namespace cityhunter::bench {

inline constexpr std::uint64_t kDefaultSeed = 42;

inline sim::World make_world(std::uint64_t seed = kDefaultSeed) {
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  return sim::World(cfg);
}

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper reference: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

/// "paper: X | measured: Y" one-liner for EXPERIMENTS.md bookkeeping.
inline void paper_vs_measured(const char* metric, const char* paper,
                              const std::string& measured) {
  std::printf("  %-34s paper: %-18s measured: %s\n", metric, paper,
              measured.c_str());
}

/// Print each failed run's error and a partial-campaign banner. Returns the
/// failed-run count so callers can skip figures that need every run.
inline std::size_t report_failed_runs(
    const std::vector<sim::RunOutput>& outputs) {
  const std::size_t failed = sim::failed_runs(outputs);
  if (failed == 0) return 0;
  for (const auto& out : outputs) {
    if (!out.error.empty()) std::printf("  !! failed run: %s\n",
                                        out.error.c_str());
  }
  std::printf("  !! %zu of %zu runs failed; results below are partial\n",
              failed, outputs.size());
  return failed;
}

}  // namespace cityhunter::bench
