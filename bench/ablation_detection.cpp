// Countermeasure evaluation (paper §VI's closing claim): existing evil-twin
// detection still works against City-Hunter. Deploys a passive detector and
// an operator monitor alongside each attacker generation in the canteen and
// reports time-to-detection. The irony the paper acknowledges: the better
// the attacker (more SSIDs offered per victim), the louder its multi-SSID
// signature.
#include "bench_common.h"
#include "defense/detector.h"

using namespace cityhunter;

int main() {
  bench::print_header("Countermeasures — detecting the attacker generations",
                      "Sec VI (countermeasures remain effective)");
  sim::World world = bench::make_world();

  // The detection sweep needs its own wiring (run_campaign has no detector
  // hook by design — detection is an observer of the same medium).
  support::TextTable t({"attacker", "h_b", "detected", "time-to-detect",
                        "ssids seen from rogue bssid"});

  for (const auto kind :
       {sim::AttackerKind::kKarma, sim::AttackerKind::kMana,
        sim::AttackerKind::kPrelim, sim::AttackerKind::kCityHunter}) {
    medium::EventQueue events;
    medium::Medium medium(events, world.config().medium);
    support::Rng rng(world.config().seed ^ 0xD37EC7);

    core::Attacker::BaseConfig base;
    base.bssid = *dot11::MacAddress::parse("0a:7e:64:c1:7e:01");
    base.pos = {0, 0};

    std::unique_ptr<core::Attacker> attacker;
    const auto venue = mobility::canteen_venue();
    const auto attack_pos = sim::venue_city_position(venue.name);
    switch (kind) {
      case sim::AttackerKind::kKarma:
        attacker = std::make_unique<core::KarmaAttacker>(medium, base);
        break;
      case sim::AttackerKind::kMana: {
        core::ManaAttacker::Config c;
        c.base = base;
        attacker = std::make_unique<core::ManaAttacker>(medium, c);
        break;
      }
      case sim::AttackerKind::kPrelim: {
        core::CityHunterPrelim::Config c;
        c.base = base;
        attacker = std::make_unique<core::CityHunterPrelim>(medium, c);
        core::WigleSeedConfig seed;
        seed.ranking = core::PopularRanking::kApCount;
        core::seed_from_wigle(attacker->database(), world.wigle(), nullptr,
                              attack_pos, seed, events.now());
        break;
      }
      case sim::AttackerKind::kCityHunter: {
        core::CityHunter::Config c;
        c.base = base;
        auto ch = std::make_unique<core::CityHunter>(medium, c,
                                                     rng.fork("sel"));
        core::seed_from_wigle(ch->database(), world.wigle(), &world.heat(),
                              attack_pos, core::WigleSeedConfig{},
                              events.now());
        attacker = std::move(ch);
        break;
      }
    }
    attacker->start();

    defense::EvilTwinDetector detector(medium, {12, 5}, 6,
                                       defense::EvilTwinDetector::Config{});
    detector.start();

    // Local copy: the shared World's PNL model is immutable (see
    // sim/scenario.h); locale + person-id counters are per-crowd state.
    world::PnlModel pnl = world.pnl_model();
    world::Locale locale;
    locale.ranked_ssids = world.local_public_ssids(attack_pos, 500.0);
    locale.bias = 0.45;
    pnl.set_locale(std::move(locale));

    auto phone_cfg = world.config().phone;
    phone_cfg.mean_scan_interval =
        support::SimTime::seconds(venue.mean_scan_interval_s);
    mobility::VenuePopulation population(medium, pnl, venue,
                                         phone_cfg, rng.fork("pop"));
    mobility::SlotParams slot;
    slot.expected_clients = 640;
    population.schedule_slot(support::SimTime::minutes(30), slot);
    events.run_until(support::SimTime::minutes(30));

    const auto result = stats::analyze(*attacker, sim::to_string(kind));
    bench::report_channel(stats::medium_stats(medium));
    const auto detect_time = detector.first_detection(base.bssid);
    t.add_row({sim::to_string(kind), support::TextTable::pct(result.h_b()),
               detect_time ? "yes" : "no",
               detect_time ? detect_time->str() : "-",
               std::to_string(detector.ssid_count(base.bssid))});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("expectation: every generation is detected; the stronger the "
              "attacker, the earlier (more SSIDs per response train). KARMA "
              "is detected only once a long-PNL legacy device walks by.\n");
  return 0;
}
