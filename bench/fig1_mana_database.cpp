// Fig 1: why a growing MANA database does not help.
//
// (a) SSID-database size and cumulative broadcast clients connected over a
//     30-minute canteen run — both grow steadily, but growth of the first
//     does not accelerate the second.
// (b) real-time broadcast hit rate h_b^r per 2-minute window — flat, no
//     upward trend despite the database tripling.
#include "bench_common.h"

using namespace cityhunter;

int main() {
  bench::print_header("Fig 1 — MANA database growth vs efficiency",
                      "Fig 1(a), Fig 1(b) (Sec III-A)");
  sim::World world = bench::make_world();

  sim::RunConfig run;
  run.kind = sim::AttackerKind::kMana;
  run.venue = mobility::canteen_venue();
  run.slot.expected_clients = 640;
  run.duration = support::SimTime::minutes(30);
  run.sample_every = support::SimTime::minutes(1);
  const auto out = sim::run_campaign(world, run);
  bench::report_channel(out);

  std::printf("\nFig 1(a): minute | db size | broadcast clients connected\n");
  for (const auto& p : out.series) {
    std::printf("  %6.0f | %7zu | %zu\n", p.time.min(), p.db_size,
                p.broadcast_connected);
  }

  std::printf("\nFig 1(b): 2-minute window | broadcast clients | h_b^r\n");
  for (const auto& w : out.window_rates) {
    std::printf("  %4.0f-%2.0fmin | %4zu | %s\n", w.start.min(),
                w.start.min() + 2.0, w.broadcast_clients,
                support::TextTable::pct(w.rate()).c_str());
  }

  // Shape check: correlation between db growth and windowed rate should be
  // weak — compute the h_b^r spread across the first and second half.
  double first_half = 0, second_half = 0;
  std::size_t nf = 0, ns = 0;
  for (std::size_t i = 0; i < out.window_rates.size(); ++i) {
    const auto& w = out.window_rates[i];
    if (w.broadcast_clients == 0) continue;
    if (i < out.window_rates.size() / 2) {
      first_half += w.rate();
      ++nf;
    } else {
      second_half += w.rate();
      ++ns;
    }
  }
  if (nf) first_half /= static_cast<double>(nf);
  if (ns) second_half /= static_cast<double>(ns);
  std::printf("\n");
  bench::paper_vs_measured("db size grows steadily", "yes (Fig 1a)",
                           std::to_string(out.series.empty()
                                              ? 0
                                              : out.series.back().db_size) +
                               " SSIDs after 30 min");
  bench::paper_vs_measured(
      "h_b^r flat despite db growth", "yes (Fig 1b)",
      "first-half avg " + support::TextTable::pct(first_half) +
          ", second-half avg " + support::TextTable::pct(second_half));
  return 0;
}
