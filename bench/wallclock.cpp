// Wall-clock benchmark harness — the repo's performance trajectory anchor.
//
// Times the fig6 campaign mix (4 venues × 12 slots, all independent) run
// serially and through sim::run_campaigns at 1/2/N worker threads, asserts
// the parallel outputs are bit-identical to the serial loop, and writes
// BENCH_wallclock.json so future PRs can compare against this one.
//
// Measurement hygiene learned from the PR4 numbers: the serial loop used to
// run first on a cold container, so every later pass (including the
// "parallel, 1 thread" sweep entry) was compared against an unfairly slow
// baseline and speedups drifted below 1.0. The mix is now run once untimed
// as warmup, and each pass reports its PhaseProfile split (setup/sim/
// analysis) so a real regression in the runner's setup path would show up
// as a setup_s delta instead of hiding inside a single wallclock number.
// PR8 finished the job: every pass that gets *compared* (serial baseline,
// tracing, parallel sweep, supervised, warm-start) is best-of-2 on both
// sides of the division, which removes the negative overhead artifacts the
// one-shot comparisons used to publish on a 1-CPU container.
//
// Thread counts above the machine's actual hardware concurrency are skipped
// (oversubscribed numbers on a smaller machine say nothing about the
// runner), and the JSON records std::thread::hardware_concurrency() itself,
// not the CITYHUNTER_THREADS override.
//
// When a BENCH_wallclock.json from a previous revision already exists in the
// working directory, its serial time is read back first and the run prints a
// speedup-vs-previous summary line, so the committed JSON always carries a
// before/after pair. Heap allocations over the serial loop are counted
// (bench/alloc_counter.h) and reported per delivered frame. A city-scale
// district (bench/city_scale.h) is timed next: batched SoA pipeline vs the
// pre-PR grid reference, plus the intra-run fanout trajectory (scalar vs
// SIMD, then 2/4/8 sharding workers up to the hardware) recorded under
// city_scale.intra_run with per-entry delivery-identity flags. The sharded
// multi-district city (sim/shard) is timed last: 100k radios at 1/2/4/8
// shards plus a pinned-worker row and a handoff-heavy identity check, all
// digest-verified against the single-Medium baseline, under "sharded_city".
//
// Overheads that divide two best-of-2 walls (tracing, checkpointing) are
// reported alongside a noise floor — the larger relative spread between a
// side's two passes. A reading inside the floor is clamped to 0 in the
// headline field; the raw value is kept in *_raw_pct.
//
// Usage: wallclock [slot_minutes]
//   slot_minutes — simulated minutes per slot (default 10; the paper's
//   slots are 60 — pass 60 for the full-fidelity mix).
// CITYHUNTER_THREADS overrides the "N" (all cores) thread count.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "city_scale.h"
#include "sim/parallel.h"
#include "sim/shard.h"
#include "support/atomic_file.h"
#include "support/thread_pool.h"

using namespace cityhunter;

namespace {

/// Full RunOutput equality: every field a bench could print.
bool identical(const sim::RunOutput& a, const sim::RunOutput& b) {
  return a.result == b.result && a.series == b.series &&
         a.window_rates == b.window_rates &&
         a.final_pb_size == b.final_pb_size &&
         a.final_fb_size == b.final_fb_size &&
         a.db_final_size == b.db_final_size &&
         a.db_from_direct == b.db_from_direct &&
         a.deauths_sent == b.deauths_sent &&
         a.frames_transmitted == b.frames_transmitted &&
         a.frames_delivered == b.frames_delivered &&
         a.queue_stats == b.queue_stats;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Sum of the per-run PhaseProfiles of one pass over the mix.
sim::PhaseProfile sum_phases(const std::vector<sim::RunOutput>& outputs) {
  sim::PhaseProfile total;
  for (const auto& out : outputs) {
    total.setup_s += out.phases.setup_s;
    total.sim_s += out.phases.sim_s;
    total.analysis_s += out.phases.analysis_s;
  }
  return total;
}

void print_phases(const sim::PhaseProfile& p) {
  std::printf("             phases: setup %.3f s, sim %.3f s, "
              "analysis %.3f s\n",
              p.setup_s, p.sim_s, p.analysis_s);
}

/// An overhead measurement with its own noise floor. Both sides of the
/// division ran twice; the relative spread between a side's two passes is
/// the measurement jitter on this machine right now, and an overhead whose
/// magnitude sits inside the larger of the two spreads is indistinguishable
/// from that jitter. Earlier revisions printed checkpoint overhead as
/// -2.17% — readers take a signed number for a real effect, so the clamped
/// value reports 0 inside the floor and the raw reading is kept alongside.
struct Overhead {
  double raw_pct = 0.0;
  double noise_floor_pct = 0.0;
  double clamped_pct = 0.0;
};

Overhead measure_overhead(const double (&base_walls)[2],
                          const double (&over_walls)[2]) {
  const double base = std::min(base_walls[0], base_walls[1]);
  const double over = std::min(over_walls[0], over_walls[1]);
  Overhead o;
  if (base <= 0.0 || over <= 0.0) return o;
  o.raw_pct = 100.0 * (over - base) / base;
  const double base_spread = std::abs(base_walls[0] - base_walls[1]) / base;
  const double over_spread = std::abs(over_walls[0] - over_walls[1]) / over;
  o.noise_floor_pct = 100.0 * std::max(base_spread, over_spread);
  o.clamped_pct = std::abs(o.raw_pct) <= o.noise_floor_pct ? 0.0 : o.raw_pct;
  return o;
}

/// Serial time recorded by a previous revision's BENCH_wallclock.json in the
/// working directory, if any. Deliberately naive parsing: the file is our
/// own output, one "serial_s" key.
std::optional<double> previous_serial_s(const char* path,
                                        double slot_minutes) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const auto value_of = [&text](const char* key) -> std::optional<double> {
    const auto pos = text.find(key);
    if (pos == std::string::npos) return std::nullopt;
    return std::atof(text.c_str() + pos + std::strlen(key));
  };
  // Only comparable when the previous run used the same per-slot duration.
  const auto prev_minutes = value_of("\"slot_minutes\": ");
  if (!prev_minutes || *prev_minutes != slot_minutes) return std::nullopt;
  return value_of("\"serial_s\": ");
}

}  // namespace

int main(int argc, char** argv) {
  const double slot_minutes = argc > 1 ? std::atof(argv[1]) : 10.0;
  bench::print_header("Wall-clock — parallel campaign runner",
                      "perf harness (no paper figure)");
  sim::World world = bench::make_world();

  const mobility::VenueConfig venues[] = {
      mobility::subway_passage_venue(), mobility::canteen_venue(),
      mobility::shopping_center_venue(), mobility::railway_station_venue()};
  std::vector<sim::RunConfig> runs;
  for (int venue_index = 0; venue_index < 4; ++venue_index) {
    const auto& venue = venues[venue_index];
    for (int slot = 0; slot < 12; ++slot) {
      sim::RunConfig run;
      run.kind = sim::AttackerKind::kCityHunter;
      run.venue = venue;
      run.slot.expected_clients =
          venue.hourly_clients[static_cast<std::size_t>(slot)] *
          (slot_minutes / 60.0);
      run.slot.group_fraction =
          venue.hourly_group_fraction[static_cast<std::size_t>(slot)];
      run.duration = support::SimTime::minutes(slot_minutes);
      run.run_seed = static_cast<std::uint64_t>(venue_index * 100 + slot + 1);
      runs.push_back(std::move(run));
    }
  }

  const std::size_t hardware_threads = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::printf("mix: %zu runs × %.0f simulated minutes, hardware threads: "
              "%zu, default workers: %zu\n\n",
              runs.size(), slot_minutes, hardware_threads,
              support::ThreadPool::default_workers());

  // Read the previous revision's serial time before we overwrite the file.
  const auto prev_serial_s =
      previous_serial_s("BENCH_wallclock.json", slot_minutes);

  // Warmup pass: run the whole mix once, untimed. The first pass over a
  // cold container pays page faults, lazy dynamic linking and CPU frequency
  // ramp; without it the serial baseline (which always ran first) looked
  // slower than every later pass and per-thread speedups drifted below 1.0
  // even on an idle machine.
  const auto t_warm = std::chrono::steady_clock::now();
  {
    std::vector<sim::RunOutput> warm;
    warm.reserve(runs.size());
    for (const auto& run : runs) warm.push_back(sim::run_campaign(world, run));
    std::printf("%-10s %8.2f s   (cold pass, discarded)\n", "warmup",
                seconds_since(t_warm));
    print_phases(sum_phases(warm));
  }

  // Timing hygiene round two (PR8): every pass that gets compared against
  // the serial baseline — tracing, supervised — is best-of-2, so the
  // baseline must be too, and the serial/traced passes are *interleaved*
  // (serial, traced, serial, traced) so both sides of the overhead
  // division see the same frequency/cache drift. One-shot ordered passes
  // on a 1-CPU container let the *rerun* catch the scheduler in a better
  // mood than the baseline, which is exactly how earlier revisions
  // published negative tracing (-10%) and checkpoint (-2.9%) overheads
  // that no code change explained.
  std::vector<sim::RunConfig> traced_runs = runs;
  for (auto& run : traced_runs) run.obs.enabled = true;
  std::vector<sim::RunOutput> serial;
  double serial_walls[2] = {0.0, 0.0};
  double traced_walls[2] = {0.0, 0.0};
  double serial_s = 0.0;
  std::uint64_t serial_allocs = 0;
  bool traced_same = true;
  for (int pass = 0; pass < 2; ++pass) {
    const std::uint64_t a0 = bench::alloc_count();
    const auto t_serial = std::chrono::steady_clock::now();
    std::vector<sim::RunOutput> outputs;
    outputs.reserve(runs.size());
    for (const auto& run : runs) {
      outputs.push_back(sim::run_campaign(world, run));
    }
    serial_walls[pass] = seconds_since(t_serial);
    if (pass == 0 || serial_walls[pass] < serial_s) {
      serial_s = serial_walls[pass];
      serial_allocs = bench::alloc_count() - a0;
      serial = std::move(outputs);
    }

    // Tracing overhead pass, back to back with the serial pass it will be
    // divided against. The results must not change; identity is checked on
    // every pass, not just the fast one.
    const auto t_traced = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < traced_runs.size(); ++i) {
      const auto out = sim::run_campaign(world, traced_runs[i]);
      traced_same = traced_same && identical(serial[i], out);
    }
    traced_walls[pass] = seconds_since(t_traced);
  }
  const double traced_s = std::min(traced_walls[0], traced_walls[1]);
  const Overhead trace_overhead = measure_overhead(serial_walls, traced_walls);
  const sim::PhaseProfile serial_phases = sum_phases(serial);

  std::uint64_t frames = 0;
  for (const auto& out : serial) frames += out.frames_delivered;
  const double allocs_per_frame =
      static_cast<double>(serial_allocs) / static_cast<double>(frames);
  std::printf("%-10s %8.2f s   %10.0f frames/s   speedup 1.00   (baseline)\n",
              "serial", serial_s, static_cast<double>(frames) / serial_s);
  print_phases(serial_phases);

  // EventQueue lifetime counters aggregated over the mix. Peak pending is
  // the max across runs (each run owns its queue).
  medium::EventQueue::Stats queue_agg;
  for (const auto& out : serial) {
    queue_agg.scheduled += out.queue_stats.scheduled;
    queue_agg.processed += out.queue_stats.processed;
    queue_agg.slab_slots += out.queue_stats.slab_slots;
    queue_agg.slab_reuses += out.queue_stats.slab_reuses;
    queue_agg.peak_pending =
        std::max(queue_agg.peak_pending, out.queue_stats.peak_pending);
  }
  std::printf("event queue: %llu events processed, peak pending %llu, "
              "slab reuse %.1f%% (%llu slots ever allocated)\n",
              static_cast<unsigned long long>(queue_agg.processed),
              static_cast<unsigned long long>(queue_agg.peak_pending),
              100.0 * queue_agg.slab_reuse_ratio(),
              static_cast<unsigned long long>(queue_agg.slab_slots));

  std::printf("tracing on: %6.2f s serial (overhead %+.1f%%, raw %+.1f%%, "
              "noise floor \xc2\xb1%.1f%%)   %s\n",
              traced_s, trace_overhead.clamped_pct, trace_overhead.raw_pct,
              trace_overhead.noise_floor_pct,
              traced_same ? "results identical"
                          : "MISMATCH vs untraced serial");

  std::vector<std::size_t> thread_counts = {1, 2,
                                            support::ThreadPool::default_workers()};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());
  // Oversubscribing a smaller machine measures the scheduler, not the
  // runner — drop those sweep entries instead of publishing junk numbers.
  for (const std::size_t threads : thread_counts) {
    if (threads > hardware_threads) {
      std::printf("%zu threads: skipped (exceeds %zu hardware threads)\n",
                  threads, hardware_threads);
    }
  }
  std::erase_if(thread_counts, [hardware_threads](std::size_t threads) {
    return threads > hardware_threads;
  });

  // Built in memory and published with one atomic rename at the end: a
  // crash mid-bench can no longer leave a torn half-JSON where the previous
  // revision's numbers used to be.
  std::ostringstream json;
  json << "{\n"
       << "  \"mix\": \"fig6 4x12\",\n"
       << "  \"runs\": " << runs.size() << ",\n"
       << "  \"slot_minutes\": " << slot_minutes << ",\n"
       << "  \"frames_delivered\": " << frames << ",\n"
       << "  \"hardware_threads\": " << hardware_threads << ",\n"
       << "  \"serial_s\": " << serial_s << ",\n"
       << "  \"serial_phases\": {\"setup_s\": " << serial_phases.setup_s
       << ", \"sim_s\": " << serial_phases.sim_s
       << ", \"analysis_s\": " << serial_phases.analysis_s << "},\n"
       << "  \"serial_allocs_per_frame\": " << allocs_per_frame << ",\n"
       << "  \"traced_serial_s\": " << traced_s << ",\n"
       << "  \"trace_overhead_pct\": " << trace_overhead.clamped_pct << ",\n"
       << "  \"trace_overhead_raw_pct\": " << trace_overhead.raw_pct << ",\n"
       << "  \"trace_noise_floor_pct\": " << trace_overhead.noise_floor_pct
       << ",\n"
       << "  \"queue_events_processed\": " << queue_agg.processed << ",\n"
       << "  \"queue_peak_pending\": " << queue_agg.peak_pending << ",\n"
       << "  \"queue_slab_reuse_ratio\": " << queue_agg.slab_reuse_ratio()
       << ",\n";
  if (prev_serial_s) {
    json << "  \"previous_serial_s\": " << *prev_serial_s << ",\n"
         << "  \"speedup_vs_previous\": " << *prev_serial_s / serial_s
         << ",\n";
  }
  json << "  \"parallel\": [";

  bool all_identical = true;
  bool first = true;
  for (const std::size_t threads : thread_counts) {
    // Best-of-2, matching the serial baseline the speedup divides by.
    sim::ParallelStats pstats;
    std::vector<sim::RunOutput> parallel;
    double wall_s = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
      const auto t0 = std::chrono::steady_clock::now();
      sim::ParallelStats pass_stats;
      auto outputs =
          sim::run_campaigns(world, runs, sim::ParallelConfig{threads},
                             &pass_stats);
      const double wall = seconds_since(t0);
      if (pass == 0 || wall < wall_s) {
        wall_s = wall;
        pstats = pass_stats;
        parallel = std::move(outputs);
      }
    }
    bool same = parallel.size() == serial.size();
    for (std::size_t i = 0; same && i < serial.size(); ++i) {
      same = identical(serial[i], parallel[i]);
    }
    all_identical = all_identical && same;

    const sim::PhaseProfile pphases = sum_phases(parallel);
    const double speedup = serial_s / wall_s;
    char label[32];
    std::snprintf(label, sizeof(label), "%zu thread%s", threads,
                  threads == 1 ? "" : "s");
    std::printf("%-10s %8.2f s   %10.0f frames/s   speedup %.2f   "
                "util %3.0f%%   %s\n",
                label, wall_s, static_cast<double>(frames) / wall_s, speedup,
                100.0 * pstats.utilization(),
                same ? "bit-identical to serial" : "MISMATCH vs serial");
    print_phases(pphases);
    for (std::size_t w = 0; w < pstats.loads.size(); ++w) {
      std::printf("             worker %zu: %zu runs, busy %.2f s\n", w,
                  pstats.loads[w].runs, pstats.loads[w].busy_s);
    }

    json << (first ? "" : ",") << "\n    {\"threads\": " << threads
         << ", \"wall_s\": " << wall_s << ", \"speedup\": " << speedup
         << ", \"frames_per_s\": " << static_cast<double>(frames) / wall_s
         << ", \"utilization\": " << pstats.utilization()
         << ", \"setup_s\": " << pphases.setup_s
         << ", \"sim_s\": " << pphases.sim_s
         << ", \"identical\": " << (same ? "true" : "false") << "}";
    first = false;
  }
  json << "\n  ],\n";

  // Supervisor pass: the same mix at the widest sweep width, but with
  // crash-safe checkpointing every 8 completions — the configuration a
  // long unattended campaign would actually run. Reports the supervisor
  // counters and the checkpoint overhead vs its own plain baseline, timed
  // interleaved (plain, checkpointed, plain, checkpointed) so both sides
  // of the division see the same machine drift — borrowing the sweep's
  // wall time from minutes earlier is how the checkpoint overhead used to
  // come out negative. The <2% overhead ceiling is enforced by
  // tests/perf_smoke_test.
  {
    const std::size_t threads = thread_counts.back();
    sim::ParallelConfig plain_cfg;
    plain_cfg.threads = threads;
    sim::ParallelConfig ckpt_cfg;
    ckpt_cfg.threads = threads;
    ckpt_cfg.checkpoint_path = "BENCH_wallclock.ckpt";
    ckpt_cfg.checkpoint_every = 8;
    sim::ParallelStats sstats;
    std::vector<sim::RunOutput> supervised;
    double plain_walls[2] = {0.0, 0.0};
    double ckpt_walls[2] = {0.0, 0.0};
    double ckpt_wall_s = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
      const auto t_plain = std::chrono::steady_clock::now();
      (void)sim::run_campaigns(world, runs, plain_cfg);
      plain_walls[pass] = seconds_since(t_plain);

      const auto t0 = std::chrono::steady_clock::now();
      sim::ParallelStats pass_stats;
      auto outputs = sim::run_campaigns(world, runs, ckpt_cfg, &pass_stats);
      ckpt_walls[pass] = seconds_since(t0);
      if (pass == 0 || ckpt_walls[pass] < ckpt_wall_s) {
        ckpt_wall_s = ckpt_walls[pass];
        sstats = pass_stats;
        supervised = std::move(outputs);
      }
    }
    std::remove("BENCH_wallclock.ckpt");

    bool same = supervised.size() == serial.size();
    for (std::size_t i = 0; same && i < serial.size(); ++i) {
      same = identical(serial[i], supervised[i]);
    }
    all_identical = all_identical && same;
    const Overhead ckpt_overhead = measure_overhead(plain_walls, ckpt_walls);
    std::printf("supervised: %6.2f s at %zu threads with checkpoint every 8 "
                "(overhead %+.1f%%, raw %+.1f%%, noise floor \xc2\xb1%.1f%%) "
                "— %llu checkpoint writes, %llu bytes, "
                "%llu retries, %llu timeouts   %s\n",
                ckpt_wall_s, threads, ckpt_overhead.clamped_pct,
                ckpt_overhead.raw_pct, ckpt_overhead.noise_floor_pct,
                static_cast<unsigned long long>(sstats.checkpoint_writes),
                static_cast<unsigned long long>(sstats.checkpoint_bytes),
                static_cast<unsigned long long>(sstats.retries),
                static_cast<unsigned long long>(sstats.timeouts),
                same ? "bit-identical to serial" : "MISMATCH vs serial");
    json << "  \"supervisor\": {\"threads\": " << threads
         << ", \"checkpoint_every\": 8"
         << ", \"wall_s\": " << ckpt_wall_s
         << ", \"checkpoint_overhead_pct\": " << ckpt_overhead.clamped_pct
         << ", \"checkpoint_overhead_raw_pct\": " << ckpt_overhead.raw_pct
         << ", \"checkpoint_noise_floor_pct\": "
         << ckpt_overhead.noise_floor_pct
         << ", \"retries\": " << sstats.retries
         << ", \"timeouts\": " << sstats.timeouts
         << ", \"event_budget_trips\": " << sstats.event_budget_trips
         << ", \"checkpoint_writes\": " << sstats.checkpoint_writes
         << ", \"checkpoint_bytes\": " << sstats.checkpoint_bytes
         << ", \"checkpoint_write_failures\": "
         << sstats.checkpoint_write_failures
         << ", \"identical\": " << (same ? "true" : "false") << "},\n";
  }

  // Warm-start setup sharing: the same 48-run mix serially through
  // run_campaigns, cold (warm_start_setup off — every run rebuilds its
  // WiGLE seed and venue locale from scratch) vs warm (one SetupCache
  // snapshot per distinct setup, copied per run). Outputs must stay
  // bit-identical; the whole win is setup_s. Best-of-2 per side, like every
  // other comparison row.
  bool warm_same = true;
  {
    const auto best_of_2 = [&](const sim::ParallelConfig& cfg,
                               std::vector<sim::RunOutput>& keep) {
      sim::PhaseProfile best{};
      double best_wall = 0.0;
      for (int pass = 0; pass < 2; ++pass) {
        const auto t0 = std::chrono::steady_clock::now();
        auto outputs = sim::run_campaigns(world, runs, cfg);
        const double wall = seconds_since(t0);
        if (pass == 0 || wall < best_wall) {
          best_wall = wall;
          best = sum_phases(outputs);
          keep = std::move(outputs);
        }
      }
      return best;
    };
    sim::ParallelConfig cold_cfg{1};
    cold_cfg.warm_start_setup = false;
    sim::ParallelConfig warm_cfg{1};
    warm_cfg.warm_start_setup = true;
    std::vector<sim::RunOutput> cold_out;
    std::vector<sim::RunOutput> warm_out;
    const sim::PhaseProfile cold_phases = best_of_2(cold_cfg, cold_out);
    const sim::PhaseProfile warm_phases = best_of_2(warm_cfg, warm_out);
    warm_same = cold_out.size() == serial.size() &&
                warm_out.size() == serial.size();
    for (std::size_t i = 0; warm_same && i < serial.size(); ++i) {
      warm_same = identical(serial[i], cold_out[i]) &&
                  identical(serial[i], warm_out[i]);
    }
    all_identical = all_identical && warm_same;
    const double setup_speedup = warm_phases.setup_s > 0.0
                                     ? cold_phases.setup_s / warm_phases.setup_s
                                     : 0.0;
    std::printf("warm start: setup %.3f s cold -> %.3f s warm (%.2fx) over "
                "%zu serial runs   %s\n",
                cold_phases.setup_s, warm_phases.setup_s, setup_speedup,
                runs.size(),
                warm_same ? "bit-identical to serial" : "MISMATCH vs serial");
    json << "  \"warm_start\": {\"runs\": " << runs.size()
         << ", \"setup_cold_s\": " << cold_phases.setup_s
         << ", \"setup_warm_s\": " << warm_phases.setup_s
         << ", \"setup_speedup\": " << setup_speedup
         << ", \"identical\": " << (warm_same ? "true" : "false") << "},\n";
  }

  // City-scale district (bench/city_scale.h): the batched SoA delivery
  // pipeline vs the pre-PR grid reference, at a size the harness can afford
  // to rerun every revision. fig_city_scale covers the full 5k–20k sweep.
  {
    bench::CityScaleParams params;
    params.radios = 5000;
    params.duration = support::SimTime::seconds(3.0);
    medium::Medium::Config grid_cfg;
    grid_cfg.batched_fanout = false;
    grid_cfg.pathloss_lut = false;
    grid_cfg.pathloss_cache = false;
    const bench::CityScaleResult batched =
        bench::run_city_scale(params, medium::Medium::Config{});
    const bench::CityScaleResult grid =
        bench::run_city_scale(params, grid_cfg);
    // The pre-PR8 index: same batched pipeline, but per-cell buckets mix
    // all channels, so the filter kernels stream (and discard) every
    // co-located off-channel radio. Same deliveries, different loads.
    medium::Medium::Config mixed_cfg;
    mixed_cfg.channel_buckets = false;
    const bench::CityScaleResult mixed =
        bench::run_city_scale(params, mixed_cfg);
    const bool agree = batched.transmissions == grid.transmissions &&
                       batched.deliveries == grid.deliveries &&
                       mixed.transmissions == batched.transmissions &&
                       mixed.deliveries == batched.deliveries;
    all_identical = all_identical && agree;
    const double cs_speedup =
        batched.wall_s > 0.0 ? grid.wall_s / batched.wall_s : 0.0;
    const double cs_hit_rate =
        batched.cache_hits + batched.cache_misses > 0
            ? static_cast<double>(batched.cache_hits) /
                  static_cast<double>(batched.cache_hits +
                                      batched.cache_misses)
            : 0.0;
    const double index_speedup =
        batched.wall_s > 0.0 ? mixed.wall_s / batched.wall_s : 0.0;
    const double waste_reduction =
        static_cast<double>(mixed.wasted_candidates) /
        static_cast<double>(std::max<std::uint64_t>(
            batched.wasted_candidates, 1));
    std::printf("city scale: %d radios, %.0f s sim — grid %.3f s, batched "
                "%.3f s (%.2fx), %.3gM deliveries/s   %s\n",
                params.radios, params.duration.sec(), grid.wall_s,
                batched.wall_s, cs_speedup, batched.deliveries_per_s / 1e6,
                agree ? "pipelines agree" : "PIPELINE MISMATCH");
    std::printf("  index: mixed-channel buckets %.3f s, wasted %llu of %llu "
                "loads; partitioned wasted %llu (%.0fx fewer), "
                "occupancy mean %.1f max %u\n",
                mixed.wall_s,
                static_cast<unsigned long long>(mixed.wasted_candidates),
                static_cast<unsigned long long>(mixed.candidates_loaded),
                static_cast<unsigned long long>(batched.wasted_candidates),
                waste_reduction, batched.mean_bucket_occupancy,
                batched.max_bucket_occupancy);
    json << "  \"city_scale\": {\"radios\": " << params.radios
         << ", \"sim_s\": " << params.duration.sec()
         << ", \"deliveries\": " << batched.deliveries
         << ", \"grid_wall_s\": " << grid.wall_s
         << ", \"batched_wall_s\": " << batched.wall_s
         << ", \"batched_speedup\": " << cs_speedup
         << ", \"deliveries_per_s\": " << batched.deliveries_per_s
         << ", \"pathloss_cache_hit_rate\": " << cs_hit_rate
         << ", \"candidates_loaded\": " << batched.candidates_loaded
         << ", \"key_matched\": " << batched.key_matched
         << ", \"wasted_candidates\": " << batched.wasted_candidates
         << ", \"mean_bucket_occupancy\": " << batched.mean_bucket_occupancy
         << ", \"max_bucket_occupancy\": " << batched.max_bucket_occupancy
         << ", \"identical\": " << (agree ? "true" : "false") << ",\n"
         << "    \"mixed_index\": {\"wall_s\": " << mixed.wall_s
         << ", \"candidates_loaded\": " << mixed.candidates_loaded
         << ", \"wasted_candidates\": " << mixed.wasted_candidates
         << ", \"speedup_vs_mixed\": " << index_speedup
         << ", \"waste_reduction_x\": " << waste_reduction << "},\n";

    // Intra-run fanout trajectory on the same district: scalar vs SIMD at
    // one worker, then sharded worker counts the hardware can actually host
    // (oversubscribed counts follow the sweep policy above and are
    // dropped). Speedups are against the scalar serial run, so one column
    // tells the whole intra-run story: vector lanes first, then threads.
    struct IntraEntry {
      int workers;
      bool simd;
      bench::CityScaleResult r;
    };
    medium::Medium::Config scalar_cfg;
    scalar_cfg.simd_fanout = false;
    std::vector<IntraEntry> intra;
    intra.push_back({1, false, bench::run_city_scale(params, scalar_cfg)});
    intra.push_back({1, true, batched});
    for (const int workers : {2, 4, 8}) {
      if (static_cast<std::size_t>(workers) > hardware_threads) continue;
      medium::Medium::Config cfg;
      cfg.intra_run_workers = workers;
      intra.push_back({workers, true, bench::run_city_scale(params, cfg)});
    }
    const double scalar_wall_s = intra.front().r.wall_s;
    json << "    \"intra_run\": [";
    for (std::size_t i = 0; i < intra.size(); ++i) {
      const IntraEntry& e = intra[i];
      const bool same = e.r.transmissions == batched.transmissions &&
                        e.r.deliveries == batched.deliveries;
      all_identical = all_identical && same;
      const double sp = e.r.wall_s > 0.0 ? scalar_wall_s / e.r.wall_s : 0.0;
      std::printf("  intra-run: %d worker%s %-6s — %.3f s (%.2fx vs scalar)"
                  "   %s\n",
                  e.workers, e.workers == 1 ? " " : "s",
                  e.simd ? "simd" : "scalar", e.r.wall_s, sp,
                  same ? "deliveries identical" : "DELIVERY MISMATCH");
      json << (i == 0 ? "" : ",") << "\n      {\"workers\": " << e.workers
           << ", \"simd\": " << (e.simd ? "true" : "false")
           << ", \"wall_s\": " << e.r.wall_s << ", \"speedup\": " << sp
           << ", \"identical\": " << (same ? "true" : "false") << "}";
    }
    json << "\n    ]},\n";
  }

  // Sharded city (sim/shard): deliver throughput vs shard count on the
  // multi-district world. Every row simulates the same 100k-radio city;
  // identity is the order-independent delivery digest (plus the raw
  // transmission/delivery/gap counters) against the single-Medium baseline,
  // checked at every shard count and again at a pinned worker count. Auto
  // worker counts (workers = 0) resolve to min(shards, hardware) inside
  // run_sharded_city, so a single-core host still publishes honest
  // (parallelism-free) walls; the >= 3x acceptance number for the 4-shard
  // row is only expected on a >= 4-thread machine (tests/perf_smoke_test
  // asserts it there).
  {
    sim::ShardedCityConfig scfg;
    scfg.radios = 100000;
    scfg.grid.rows = 2;
    scfg.duration = support::SimTime::seconds(0.5);
    {
      auto warm = scfg;
      warm.shards = 1;
      warm.duration = support::SimTime::seconds(0.125);
      (void)sim::run_sharded_city(warm);
    }
    json << "  \"sharded_city\": {\"radios\": " << scfg.radios
         << ", \"sim_s\": " << scfg.duration.sec() << ",\n    \"rows\": [";
    sim::ShardedCityResult sc_base;
    bool first_row = true;
    const auto sc_row = [&](int shards, std::size_t workers) {
      auto cfg = scfg;
      cfg.shards = shards;
      cfg.workers = workers;
      // Best-of-2, like every other compared pass in this harness.
      sim::ShardedCityResult r = sim::run_sharded_city(cfg);
      sim::ShardedCityResult again = sim::run_sharded_city(cfg);
      if (again.wall_s < r.wall_s) r = std::move(again);
      const bool same = shards == 1 ||
                        (r.transmissions == sc_base.transmissions &&
                         r.deliveries == sc_base.deliveries &&
                         r.gap_silences == sc_base.gap_silences &&
                         r.delivery_digest == sc_base.delivery_digest);
      all_identical = all_identical && same;
      const double sp = shards == 1
                            ? 1.0
                            : (r.wall_s > 0.0 ? sc_base.wall_s / r.wall_s
                                              : 0.0);
      std::printf("sharded city: %d shard%s, %zu worker%s — %.3f s (%.2fx), "
                  "%.3gM deliveries/s   %s\n",
                  shards, shards == 1 ? " " : "s", r.workers,
                  r.workers == 1 ? " " : "s", r.wall_s, sp,
                  r.deliveries_per_s / 1e6,
                  same ? "deliveries identical" : "DELIVERY MISMATCH");
      json << (first_row ? "" : ",") << "\n      {\"shards\": " << shards
           << ", \"workers\": " << r.workers << ", \"wall_s\": " << r.wall_s
           << ", \"speedup\": " << sp
           << ", \"deliveries_per_s\": " << r.deliveries_per_s
           << ", \"handoffs\": " << r.handoffs
           << ", \"identical\": " << (same ? "true" : "false") << "}";
      first_row = false;
      if (shards == 1) sc_base = std::move(r);
    };
    for (const int shards : {1, 2, 4, 8}) sc_row(shards, 0);
    sc_row(4, 2);  // worker-count invariance at a fixed partition
    json << "\n    ],\n";

    // Handoff-heavy identity row: compact districts over a long horizon so
    // walkers actually cross shard midlines — at 0.5 s on 500 m districts
    // no phone gets near a boundary and the rows above exercise only the
    // partitioned fanout, not the migration machinery.
    sim::ShardedCityConfig hcfg;
    hcfg.radios = 2000;
    hcfg.ap_tx_dbm = 5.0;
    hcfg.phone_tx_dbm = 0.0;
    hcfg.grid.district_m = 60.0;
    hcfg.grid.gap_m = 70.0;
    hcfg.duration = support::SimTime::seconds(120.0);
    const sim::ShardedCityResult h1 = sim::run_sharded_city(hcfg);
    auto hcfg4 = hcfg;
    hcfg4.shards = 4;
    const sim::ShardedCityResult h4 = sim::run_sharded_city(hcfg4);
    const bool hand_same = h4.transmissions == h1.transmissions &&
                           h4.deliveries == h1.deliveries &&
                           h4.gap_silences == h1.gap_silences &&
                           h4.delivery_digest == h1.delivery_digest;
    all_identical = all_identical && hand_same;
    std::printf("sharded city: handoff check — %llu handoffs across 4 "
                "shards, %llu deliveries   %s\n",
                static_cast<unsigned long long>(h4.handoffs),
                static_cast<unsigned long long>(h4.deliveries),
                hand_same ? "deliveries identical" : "DELIVERY MISMATCH");
    json << "    \"handoff_check\": {\"radios\": " << hcfg.radios
         << ", \"sim_s\": " << hcfg.duration.sec()
         << ", \"shards\": " << hcfg4.shards
         << ", \"handoffs\": " << h4.handoffs
         << ", \"identical\": " << (hand_same ? "true" : "false") << "}}\n";
  }
  json << "}\n";

  std::string write_error;
  const bool json_written = support::write_file_atomic(
      "BENCH_wallclock.json", json.str(), &write_error);
  if (!json_written) {
    std::printf("  !! BENCH_wallclock.json not written: %s\n",
                write_error.c_str());
  }

  std::printf("\nserial heap allocations: %llu (%.4f per delivered frame)\n",
              static_cast<unsigned long long>(serial_allocs),
              allocs_per_frame);
  if (prev_serial_s) {
    std::printf("speedup vs previous BENCH_wallclock.json: %.2fx "
                "(serial %.2f s -> %.2f s)\n",
                *prev_serial_s / serial_s, *prev_serial_s, serial_s);
  }
  if (json_written) std::printf("\nwritten: BENCH_wallclock.json\n");
  if (!all_identical) {
    std::printf("ERROR: parallel output diverged from the serial loop\n");
    return 1;
  }
  if (!traced_same) {
    std::printf("ERROR: tracing changed the simulation results\n");
    return 1;
  }
  return 0;
}
