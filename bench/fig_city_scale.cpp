// City-scale delivery throughput: the headline scenario for the batched SoA
// pipeline. A 2 km urban district with 5k–20k radios (30% static APs
// beaconing at 9.77 Hz, 70% phones scanning every ~2 s while walking)
// drives the Medium fanout through each Config delivery mode:
//
//   batched  — SoA gather, slot-ordered merge, d² filter, LUT + pair cache
//   grid     — pre-PR reference: grid gather + std::sort + exact math
//   scan     — legacy full scan (smallest size only; O(n) per frame)
//
// Every mode must produce identical transmission/delivery counts — the
// pipelines are behaviorally interchangeable — and the batched/grid ratio
// is the PR's ≥3x acceptance number at 10k radios.
//
// A second table sweeps the intra-run fanout: SIMD off vs on, then 2/4/8
// sharding workers, each run checked delivery-identical to the serial
// baseline and reported as deliveries/s + speedup per worker count.
//
// Usage: fig_city_scale [--smoke]
//   --smoke: one small size (2k radios, 2 s, 2-worker sweep), used by
//   ctest -L perf.
#include "bench_common.h"
#include "city_scale.h"

#include <algorithm>
#include <cstring>
#include <thread>

namespace {

using cityhunter::bench::CityScaleParams;
using cityhunter::bench::CityScaleResult;
using cityhunter::bench::run_city_scale;
using cityhunter::medium::Medium;

Medium::Config batched_config() { return Medium::Config{}; }

Medium::Config grid_config() {
  Medium::Config cfg;
  cfg.batched_fanout = false;
  cfg.pathloss_lut = false;
  cfg.pathloss_cache = false;
  return cfg;
}

Medium::Config scan_config() {
  Medium::Config cfg = grid_config();
  cfg.spatial_grid = false;
  return cfg;
}

Medium::Config no_simd_config() {
  Medium::Config cfg;
  cfg.simd_fanout = false;
  return cfg;
}

Medium::Config workers_config(int workers) {
  Medium::Config cfg;
  cfg.intra_run_workers = workers;
  return cfg;
}

int g_failures = 0;

void check_equal(const char* what, std::uint64_t a, std::uint64_t b) {
  if (a != b) {
    std::printf("  MISMATCH %s: %llu vs %llu\n", what,
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
    ++g_failures;
  }
}

void run_size(int radios, double sim_s, bool with_scan) {
  CityScaleParams params;
  params.radios = radios;
  params.duration = cityhunter::support::SimTime::seconds(sim_s);

  const CityScaleResult batched = run_city_scale(params, batched_config());
  const CityScaleResult grid = run_city_scale(params, grid_config());
  check_equal("transmissions", batched.transmissions, grid.transmissions);
  check_equal("deliveries", batched.deliveries, grid.deliveries);
  if (with_scan) {
    const CityScaleResult scan = run_city_scale(params, scan_config());
    check_equal("scan deliveries", batched.deliveries, scan.deliveries);
  }

  const double speedup =
      batched.wall_s > 0.0 ? grid.wall_s / batched.wall_s : 0.0;
  const double hit_rate =
      batched.cache_hits + batched.cache_misses > 0
          ? static_cast<double>(batched.cache_hits) /
                static_cast<double>(batched.cache_hits + batched.cache_misses)
          : 0.0;
  std::printf(
      "  %6d | %9.2fM | %8.3fs | %8.3fs | %6.2fx | %9.3gM/s | %5.1f%%\n",
      radios, static_cast<double>(batched.deliveries) / 1e6, grid.wall_s,
      batched.wall_s, speedup, batched.deliveries_per_s / 1e6,
      hit_rate * 100.0);
}

Medium::Config mixed_index_config() {
  Medium::Config cfg;
  cfg.channel_buckets = false;
  return cfg;
}

// Index efficiency: the channel-partitioned buckets vs the pre-PR8
// mixed-channel layout on the same district. Deliveries must agree exactly;
// the table shows what partitioning removes — every off-channel candidate
// the filter kernels used to load, test and discard (~2/3 of all loads on
// the district's 1/6/11 plan).
void run_index_efficiency(int radios, double sim_s) {
  CityScaleParams params;
  params.radios = radios;
  params.duration = cityhunter::support::SimTime::seconds(sim_s);

  // Warm pass, then best-of-2 per layout: same hygiene as run_scaling.
  (void)run_city_scale(params, batched_config());
  const auto best_of = [&params](const Medium::Config& cfg) {
    CityScaleResult best = run_city_scale(params, cfg);
    const CityScaleResult again = run_city_scale(params, cfg);
    if (again.wall_s < best.wall_s) best = again;
    return best;
  };
  const CityScaleResult part = best_of(batched_config());
  const CityScaleResult mixed = best_of(mixed_index_config());
  check_equal("mixed-index transmissions", part.transmissions,
              mixed.transmissions);
  check_equal("mixed-index deliveries", part.deliveries, mixed.deliveries);

  const auto ratio = [](const CityScaleResult& r) {
    return r.candidates_loaded > 0
               ? static_cast<double>(r.wasted_candidates) /
                     static_cast<double>(r.candidates_loaded)
               : 0.0;
  };
  std::printf(
      "\n  index efficiency at %d radios (channel plan 1/6/11)\n"
      "  layout      | wall     | loaded      | wasted      | waste%% | "
      "occupancy mean/max\n"
      "  partitioned | %8.3fs | %11llu | %11llu | %5.1f%% | %.1f / %u\n"
      "  mixed       | %8.3fs | %11llu | %11llu | %5.1f%% | %.1f / %u\n"
      "  speedup vs mixed: %.2fx, wasted loads cut %.0fx\n",
      radios, part.wall_s,
      static_cast<unsigned long long>(part.candidates_loaded),
      static_cast<unsigned long long>(part.wasted_candidates),
      100.0 * ratio(part), part.mean_bucket_occupancy,
      part.max_bucket_occupancy, mixed.wall_s,
      static_cast<unsigned long long>(mixed.candidates_loaded),
      static_cast<unsigned long long>(mixed.wasted_candidates),
      100.0 * ratio(mixed), mixed.mean_bucket_occupancy,
      mixed.max_bucket_occupancy,
      part.wall_s > 0.0 ? mixed.wall_s / part.wall_s : 0.0,
      static_cast<double>(mixed.wasted_candidates) /
          static_cast<double>(std::max<std::uint64_t>(part.wasted_candidates,
                                                      1)));
}

// Intra-run scaling: the same district once per worker count, every run
// checked delivery-identical to the serial baseline (the sharded merge must
// reorder nothing). Counts above the hardware are measured anyway — the
// oversubscription penalty belongs in the figure — but flagged, since their
// wall-clock says nothing about the speedup acceptance number.
void run_scaling(int radios, double sim_s, bool smoke) {
  CityScaleParams params;
  params.radios = radios;
  params.duration = cityhunter::support::SimTime::seconds(sim_s);
  const unsigned hw = std::thread::hardware_concurrency();

  // One untimed pass first: the scalar/SIMD delta is a few tens of percent,
  // small enough for cold caches and CPU frequency ramp to swamp it.
  (void)run_city_scale(params, batched_config());

  const CityScaleResult simd = run_city_scale(params, batched_config());
  const CityScaleResult scalar = run_city_scale(params, no_simd_config());
  check_equal("no-simd transmissions", simd.transmissions,
              scalar.transmissions);
  check_equal("no-simd deliveries", simd.deliveries, scalar.deliveries);
  std::printf(
      "\n  intra-run scaling at %d radios (%u hardware threads)\n"
      "  config     | wall     | speedup | throughput | identical\n"
      "  scalar     | %8.3fs | %6.2fx | %9.3gM/s | yes\n"
      "  simd       | %8.3fs | %6.2fx | %9.3gM/s | yes\n",
      radios, hw, scalar.wall_s, 1.0, scalar.deliveries_per_s / 1e6,
      simd.wall_s, simd.wall_s > 0.0 ? scalar.wall_s / simd.wall_s : 0.0,
      simd.deliveries_per_s / 1e6);

  for (const int workers : smoke ? std::vector<int>{2}
                                 : std::vector<int>{2, 4, 8}) {
    const CityScaleResult sharded =
        run_city_scale(params, workers_config(workers));
    check_equal("sharded transmissions", simd.transmissions,
                sharded.transmissions);
    check_equal("sharded deliveries", simd.deliveries, sharded.deliveries);
    std::printf("  %d workers%s | %8.3fs | %6.2fx | %9.3gM/s | yes\n",
                workers,
                static_cast<unsigned>(workers) > hw ? " (oversub)" : "",
                sharded.wall_s,
                sharded.wall_s > 0.0 ? simd.wall_s / sharded.wall_s : 0.0,
                sharded.deliveries_per_s / 1e6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  cityhunter::bench::print_header(
      "city-scale deliver throughput (batched SoA pipeline vs reference)",
      "ROADMAP north star: city-sized populations, as fast as the hardware "
      "allows");
  std::printf(
      "  radios | delivered | grid     | batched  | speedup | throughput | "
      "cache hit\n");
  if (smoke) {
    run_size(2000, 2.0, /*with_scan=*/true);
    run_index_efficiency(2000, 2.0);
    run_scaling(2000, 2.0, /*smoke=*/true);
  } else {
    run_size(5000, 5.0, /*with_scan=*/true);
    run_size(10000, 5.0, /*with_scan=*/false);
    run_size(20000, 3.0, /*with_scan=*/false);
    run_index_efficiency(20000, 3.0);
    run_scaling(10000, 3.0, /*smoke=*/false);
  }
  if (g_failures != 0) {
    std::printf("FAILED: %d pipeline mismatches\n", g_failures);
    return 1;
  }
  std::printf("OK: all delivery pipelines agree\n");
  return 0;
}
