// Continuous sharded city: deliver throughput vs shard count on the
// multi-district world (sim/shard). Every row simulates the SAME city —
// identical geometry, entity streams and frames — split across 1/2/4/8
// spatial shards, each owning its districts' slice of the Medium behind a
// conservative time-sync barrier with deterministic cross-shard handoffs.
//
// The identity column is the whole point: the order-independent delivery
// digest (obs/delivery_log.h) must match the single-Medium baseline bit for
// bit at every shard count and worker count, or the speedup numbers are
// measuring a different simulation. Mismatches fail the binary.
//
// The sweep holds radio density constant by growing district rows with the
// population, so per-fanout cost stays flat and the shard columns carry
// equal load. On a >= 4-thread host the 100k-radio / 4-shard row is the
// ISSUE 10 acceptance number (>= 3x the single-Medium throughput); single-
// core hosts still verify identity and report honest (parallelism-free)
// walls.
//
// Usage: fig_sharded_city [--smoke]
//   --smoke: 4k radios, 0.5 s — the ctest -L perf equality check.
#include "bench_common.h"

#include <cstring>
#include <thread>
#include <vector>

#include "sim/shard.h"

namespace {

using cityhunter::sim::ShardedCityConfig;
using cityhunter::sim::ShardedCityResult;
using cityhunter::sim::run_sharded_city;

int g_failures = 0;

bool check_identical(const ShardedCityResult& baseline,
                     const ShardedCityResult& r) {
  const bool ok = r.transmissions == baseline.transmissions &&
                  r.deliveries == baseline.deliveries &&
                  r.gap_silences == baseline.gap_silences &&
                  r.delivery_digest == baseline.delivery_digest;
  if (!ok) {
    std::printf(
        "  MISMATCH at %d shards / %zu workers: deliveries %llu vs %llu, "
        "digest %016llx vs %016llx\n",
        r.shards, r.workers, static_cast<unsigned long long>(r.deliveries),
        static_cast<unsigned long long>(baseline.deliveries),
        static_cast<unsigned long long>(r.delivery_digest),
        static_cast<unsigned long long>(baseline.delivery_digest));
    ++g_failures;
  }
  return ok;
}

// Smoke geometry: a compact city (60 m districts, 70 m gaps, low TX powers
// so the gaps stay RF-safe) over a long horizon, so walkers actually cross
// shard boundaries and the equality check covers the handoff machinery —
// at 0.5 s on the full-size grid no phone gets near a midline and the
// shard populations would be trivially disjoint.
ShardedCityConfig smoke_config() {
  ShardedCityConfig cfg;
  cfg.radios = 2000;
  cfg.ap_tx_dbm = 5.0;
  cfg.phone_tx_dbm = 0.0;
  cfg.grid.district_m = 60.0;
  cfg.grid.gap_m = 70.0;
  cfg.duration = cityhunter::support::SimTime::seconds(120.0);
  return cfg;
}

void run_sweep(ShardedCityConfig cfg, const char* note) {
  const int radios = cfg.radios;
  const double sim_s = cfg.duration.sec();
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf(
      "\n  %d radios, 8x%d districts%s, %.2f s horizon (%u hardware "
      "threads)\n"
      "  shards | workers | wall     | throughput | speedup | handoffs | "
      "identical\n",
      radios, cfg.grid.rows, note, sim_s, hw);

  // Warm pass at 1 shard: page in the arenas, ramp the clocks.
  auto warm = cfg;
  warm.shards = 1;
  warm.duration = cityhunter::support::SimTime::seconds(sim_s / 4.0);
  (void)run_sharded_city(warm);

  ShardedCityResult baseline;
  for (const int shards : {1, 2, 4, 8}) {
    auto row_cfg = cfg;
    row_cfg.shards = shards;
    // Best-of-2: the barrier loop is jitter-sensitive at short horizons.
    ShardedCityResult r = run_sharded_city(row_cfg);
    ShardedCityResult again = run_sharded_city(row_cfg);
    if (again.wall_s < r.wall_s) r = std::move(again);
    const bool identical = shards == 1 || check_identical(baseline, r);
    std::printf(
        "  %6d | %7zu | %7.3fs | %8.3gM/s | %6.2fx | %8llu | %s\n", shards,
        r.workers, r.wall_s, r.deliveries_per_s / 1e6,
        shards == 1 ? 1.0 : (r.wall_s > 0.0 ? baseline.wall_s / r.wall_s : 0.0),
        static_cast<unsigned long long>(r.handoffs),
        identical ? "yes" : "NO");
    if (shards == 1) baseline = std::move(r);
  }

  // Worker-count invariance at a fixed shard count: same partition, fewer
  // threads — the deliveries (and even per-shard event counts) must not
  // notice who executed each epoch.
  auto pinned = cfg;
  pinned.shards = 4;
  pinned.workers = 2;
  const ShardedCityResult two_workers = run_sharded_city(pinned);
  check_identical(baseline, two_workers);
  std::printf("  %6d | %7zu | %7.3fs | %8.3gM/s | %6s | %8llu | %s\n",
              pinned.shards, two_workers.workers, two_workers.wall_s,
              two_workers.deliveries_per_s / 1e6, "-",
              static_cast<unsigned long long>(two_workers.handoffs),
              two_workers.delivery_digest == baseline.delivery_digest
                  ? "yes"
                  : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  cityhunter::bench::print_header(
      "sharded city: deliver throughput vs shard count (deterministic "
      "handoff)",
      "ROADMAP north star: city-sized populations, as fast as the hardware "
      "allows");
  if (smoke) {
    run_sweep(smoke_config(), " (compact, handoff-heavy)");
  } else {
    const auto city = [](int radios, int rows, double sim_s) {
      ShardedCityConfig cfg;
      cfg.radios = radios;
      cfg.grid.rows = rows;
      cfg.duration = cityhunter::support::SimTime::seconds(sim_s);
      return cfg;
    };
    run_sweep(smoke_config(), " (compact, handoff-heavy)");
    run_sweep(city(100000, 2, 0.5), "");
    run_sweep(city(300000, 6, 0.2), "");
    run_sweep(city(1000000, 20, 0.05), "");
  }
  if (g_failures != 0) {
    std::printf("FAILED: %d shard-count identity mismatches\n", g_failures);
    return 1;
  }
  std::printf("\nOK: deliveries byte-identical at every shard/worker count\n");
  return 0;
}
