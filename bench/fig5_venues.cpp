// Fig 5: full City-Hunter across four venues, twelve 1-hour slots each
// (8am-8pm), database re-initialised before every test as in the paper.
//
// Paper shape: client volume shows commuting rushes (passage, railway) and
// mealtime peaks (canteen); h > h_b in every slot; average h_b ~12% passage,
// ~17.9% canteen, ~14% shopping centre, ~16.6% railway station; both rates
// are higher in rush hours.
#include "bench_common.h"
#include "sim/parallel.h"

using namespace cityhunter;

int main() {
  bench::print_header("Fig 5 — City-Hunter in four venues, 8am-8pm",
                      "Fig 5(a)-(d) (Sec V-A)");
  sim::World world = bench::make_world();

  const mobility::VenueConfig venues[] = {
      mobility::subway_passage_venue(), mobility::canteen_venue(),
      mobility::shopping_center_venue(), mobility::railway_station_venue()};
  const char* paper_avg_hb[] = {"12%", "17.86%", "~14%", "16.6%"};

  // Same 48 runs (and seeds) as the old serial loop, fanned across cores.
  std::vector<sim::RunConfig> runs;
  for (int venue_index = 0; venue_index < 4; ++venue_index) {
    const auto& venue = venues[venue_index];
    for (int slot = 0; slot < 12; ++slot) {
      sim::RunConfig run;
      run.kind = sim::AttackerKind::kCityHunter;
      run.venue = venue;
      run.slot.expected_clients = venue.hourly_clients[
          static_cast<std::size_t>(slot)];
      run.slot.group_fraction =
          venue.hourly_group_fraction[static_cast<std::size_t>(slot)];
      run.duration = support::SimTime::hours(1);
      run.run_seed = static_cast<std::uint64_t>(venue_index * 100 + slot + 1);
      runs.push_back(std::move(run));
    }
  }
  bench::apply_obs_env(runs);
  const auto outputs = sim::run_campaigns(world, runs);
  bench::report_failed_runs(outputs);
  bench::report_channel(outputs);
  bench::write_trace_if_requested(outputs);

  int venue_index = 0;
  for (const auto& venue : venues) {
    std::printf("\n--- %s ---\n", venue.name.c_str());
    std::printf("%-9s | %5s | %5s | %5s | %5s | %6s | %6s\n", "slot",
                "total", "bc+", "bc-", "dir+/dir-", "h", "h_b");
    double sum_h = 0, sum_hb = 0;
    double rush_hb = 0, off_hb = 0;
    int rush_n = 0, off_n = 0;
    for (int slot = 0; slot < 12; ++slot) {
      const auto& out =
          outputs[static_cast<std::size_t>(venue_index * 12 + slot)];
      const auto& r = out.result;

      char dir[32];
      std::snprintf(dir, sizeof(dir), "%zu/%zu", r.direct_connected,
                    r.direct_clients - r.direct_connected);
      std::printf("%-9s | %5zu | %5zu | %5zu | %9s | %5s | %5s\n",
                  mobility::slot_label(slot).c_str(), r.total_clients,
                  r.broadcast_connected,
                  r.broadcast_clients - r.broadcast_connected, dir,
                  support::TextTable::pct(r.h()).c_str(),
                  support::TextTable::pct(r.h_b()).c_str());
      sum_h += r.h();
      sum_hb += r.h_b();
      // A venue's "rush" slots are its own two busiest hours (commute peaks
      // for the passage/railway, lunch+dinner for the canteen, evening for
      // the mall).
      int top1 = 0, top2 = 1;
      for (int s = 1; s < 12; ++s) {
        if (venue.hourly_clients[static_cast<std::size_t>(s)] >
            venue.hourly_clients[static_cast<std::size_t>(top1)]) {
          top2 = top1;
          top1 = s;
        } else if (s != top1 &&
                   venue.hourly_clients[static_cast<std::size_t>(s)] >
                       venue.hourly_clients[static_cast<std::size_t>(top2)]) {
          top2 = s;
        }
      }
      const bool rush = slot == top1 || slot == top2;
      (rush ? rush_hb : off_hb) += r.h_b();
      ++(rush ? rush_n : off_n);
    }
    std::printf("average: h %s, h_b %s\n",
                support::TextTable::pct(sum_h / 12).c_str(),
                support::TextTable::pct(sum_hb / 12).c_str());
    bench::paper_vs_measured("average h_b", paper_avg_hb[venue_index],
                             support::TextTable::pct(sum_hb / 12));
    bench::paper_vs_measured(
        "rush-hour h_b > off-peak h_b", "yes",
        support::TextTable::pct(rush_hb / rush_n) + " vs " +
            support::TextTable::pct(off_hb / off_n));
    ++venue_index;
  }
  return 0;
}
