// Fig 2: distributions of SSIDs tried per client.
//
// (a) canteen, connected clients only: 20..250 tried, average ~130 — the
//     untried sweep digs deeper the longer a victim stays;
// (b) subway passage, all broadcast clients: quantised at multiples of 40
//     (one scan = one 40-SSID train), ~70% get one train, ~22% two.
#include "bench_common.h"
#include "sim/parallel.h"

using namespace cityhunter;

int main() {
  bench::print_header("Fig 2 — SSIDs tried per client", "Fig 2(a), Fig 2(b)");
  sim::World world = bench::make_world();

  // Both panels are independent runs: execute them in parallel.
  std::vector<sim::RunConfig> runs(2);
  runs[0].kind = sim::AttackerKind::kPrelim;
  runs[0].venue = mobility::canteen_venue();
  runs[0].slot.expected_clients = 640;
  runs[0].duration = support::SimTime::minutes(30);
  runs[0].run_seed = 3;
  runs[1].kind = sim::AttackerKind::kPrelim;
  runs[1].venue = mobility::subway_passage_venue();
  runs[1].slot.expected_clients = 1450;
  runs[1].duration = support::SimTime::hours(1);
  runs[1].run_seed = 4;
  bench::apply_obs_env(runs);
  const auto outputs = sim::run_campaigns(world, runs);
  bench::report_failed_runs(outputs);
  bench::report_channel(outputs);
  bench::write_trace_if_requested(outputs);

  // (a) canteen, preliminary attacker (the configuration Fig 2a reports).
  {
    const auto& out = outputs[0];
    support::Histogram hist(20.0);
    support::Summary sum;
    for (const int n : out.result.ssids_sent_connected) {
      hist.add(static_cast<double>(n));
      sum.add(n);
    }
    std::printf("\nFig 2(a): canteen, SSIDs sent to each CONNECTED client "
                "(bucket = 20):\n%s",
                hist.ascii(40).c_str());
    bench::paper_vs_measured(
        "range and mean", "20..250, mean ~130",
        support::TextTable::num(sum.min(), 0) + ".." +
            support::TextTable::num(sum.max(), 0) + ", mean " +
            support::TextTable::num(sum.mean(), 0));
  }

  // (b) passage, all broadcast clients.
  {
    const auto& out = outputs[1];
    support::Histogram hist(40.0);
    for (const int n : out.result.ssids_sent_all_broadcast) {
      hist.add(static_cast<double>(n));
    }
    std::printf("\nFig 2(b): passage, SSIDs tried per broadcast client "
                "(bucket = 40):\n%s",
                hist.ascii(40).c_str());
    bench::paper_vs_measured(
        "one train / two trains", "~70% / ~22%",
        support::TextTable::pct(hist.fraction_in_bucket(40.0)) + " / " +
            support::TextTable::pct(hist.fraction_in_bucket(80.0)));
  }
  return 0;
}
