// Micro-benchmarks for the Medium delivery hot path.
//
// Compares the delivery pipelines Medium::Config can select, at venue scale:
// radios are spread over ±600 m while a 20 dBm transmitter reaches only
// ~60 m, so receiver culling dominates the fanout cost.
//
//   Batched      — SoA gather, slot-ordered merge (no per-frame sort),
//                  squared-distance filter (AVX2 when the CPU has it),
//                  path-loss LUT + pair cache.
//   BatchedNoSimd — same with Config::simd_fanout off: prices the vector
//                  gather/filter + LUT lanes against the scalar loops.
//   BatchedShardedN — same as Batched plus N intra-run workers with
//                  shard_min_candidates = 0, pricing the fork-join.
//   BatchedNoCache — same, pair cache off: prices the cache separately.
//   Grid         — the pre-PR reference: grid gather + std::sort by id +
//                  exact hypot/log10 per candidate.
//   LegacyScan   — no grid at all, full scan over every attached radio.
//
// Moving variants displace one radio before each transmit to price the
// incremental grid maintenance (and pair-cache invalidation) into the win.
//
// Each case reports allocs_per_tx next to delivered_per_tx: the pooled
// transmission objects, inline event storage, flat radio table and reused
// gather scratch should hold the static cases at ~0 heap allocations per
// transmit. delivered_per_tx must be identical across all modes at the same
// radio count — the pipelines are behaviorally interchangeable.
#include "alloc_counter.h"

#include <benchmark/benchmark.h>

#include "dot11/frame.h"
#include "medium/event_queue.h"
#include "medium/medium.h"
#include "support/rng.h"

namespace cityhunter::medium {
namespace {

class CountingSink : public FrameSink {
 public:
  void on_frame(const dot11::Frame&, const RxInfo&) override { ++frames; }
  std::uint64_t frames = 0;
};

enum class Mode {
  kBatched,
  kBatchedNoSimd,
  kBatchedSharded,
  kBatchedNoCache,
  kGrid,
  kLegacyScan
};

Medium::Config mode_config(Mode mode, int workers) {
  Medium::Config cfg;
  cfg.intra_run_workers = workers;
  switch (mode) {
    case Mode::kBatched:
      break;  // defaults: grid + batched fanout + SIMD + LUT + pair cache
    case Mode::kBatchedNoSimd:
      cfg.simd_fanout = false;  // scalar gather/filter, same results
      break;
    case Mode::kBatchedSharded:
      // Shard every fanout, even small ones: the point is to price the
      // fork-join overhead against the SIMD fanout at this crowd size.
      cfg.shard_min_candidates = 0;
      break;
    case Mode::kBatchedNoCache:
      cfg.pathloss_cache = false;
      break;
    case Mode::kGrid:
      cfg.batched_fanout = false;
      cfg.pathloss_lut = false;
      cfg.pathloss_cache = false;
      break;
    case Mode::kLegacyScan:
      cfg.spatial_grid = false;
      cfg.batched_fanout = false;
      cfg.pathloss_lut = false;
      cfg.pathloss_cache = false;
      break;
  }
  return cfg;
}

struct Crowd {
  EventQueue events;
  Medium medium;
  CountingSink sink;
  std::vector<Radio> receivers;
  Radio tx;

  Crowd(int radios, Mode mode, int workers)
      : medium(events, mode_config(mode, workers)) {
    support::Rng rng(7);
    for (int i = 0; i < radios; ++i) {
      receivers.push_back(medium.attach(
          {rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0)}, 6, 15.0,
          &sink));
    }
    tx = medium.attach({0, 0}, 6, 20.0);
  }
};

void deliver_loop(benchmark::State& state, Mode mode, bool move,
                  int workers = 1) {
  Crowd crowd(static_cast<int>(state.range(0)), mode, workers);
  support::Rng rng(11);
  const auto frame = dot11::make_probe_response(
      dot11::MacAddress::random_local(rng), dot11::MacAddress::random_local(rng),
      "bench-ssid", 6, true);
  std::size_t mover = 0;
  // One warm transmit outside the timed loop fills the transmission pool,
  // event slab and deliver scratch.
  crowd.tx.transmit(frame);
  crowd.events.run_all();
  const auto a0 = cityhunter::bench::alloc_count();
  for (auto _ : state) {
    if (move) {
      auto& r = crowd.receivers[mover++ % crowd.receivers.size()];
      r.set_position({rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0)});
    }
    crowd.tx.transmit(frame);
    crowd.events.run_all();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["delivered_per_tx"] =
      static_cast<double>(crowd.sink.frames) /
      static_cast<double>(state.iterations());
  state.counters["allocs_per_tx"] =
      static_cast<double>(cityhunter::bench::alloc_count() - a0) /
      static_cast<double>(state.iterations());
}

void BM_DeliverBatched(benchmark::State& state) {
  deliver_loop(state, Mode::kBatched, /*move=*/false);
}
void BM_DeliverBatchedNoSimd(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedNoSimd, /*move=*/false);
}
// Sharded fanout at 2/4/8 intra-run workers. delivered_per_tx stays
// identical to every other mode — the merge reorders nothing — while the
// time column shows where fork-join overhead crosses into profit on this
// machine. Worker counts beyond the hardware are still measured (the
// helpers time-slice) so the oversubscription penalty is visible too.
void BM_DeliverBatchedSharded2(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedSharded, /*move=*/false, /*workers=*/2);
}
void BM_DeliverBatchedSharded4(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedSharded, /*move=*/false, /*workers=*/4);
}
void BM_DeliverBatchedSharded8(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedSharded, /*move=*/false, /*workers=*/8);
}
void BM_DeliverBatchedNoCache(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedNoCache, /*move=*/false);
}
void BM_DeliverGrid(benchmark::State& state) {
  deliver_loop(state, Mode::kGrid, /*move=*/false);
}
void BM_DeliverLegacyScan(benchmark::State& state) {
  deliver_loop(state, Mode::kLegacyScan, /*move=*/false);
}
void BM_DeliverBatchedMoving(benchmark::State& state) {
  deliver_loop(state, Mode::kBatched, /*move=*/true);
}
void BM_DeliverGridMoving(benchmark::State& state) {
  deliver_loop(state, Mode::kGrid, /*move=*/true);
}

BENCHMARK(BM_DeliverBatched)->Arg(100)->Arg(1000)->Arg(4000)->Arg(10000);
BENCHMARK(BM_DeliverBatchedNoSimd)->Arg(1000)->Arg(4000)->Arg(10000);
BENCHMARK(BM_DeliverBatchedSharded2)->Arg(4000)->Arg(10000);
BENCHMARK(BM_DeliverBatchedSharded4)->Arg(4000)->Arg(10000);
BENCHMARK(BM_DeliverBatchedSharded8)->Arg(10000);
BENCHMARK(BM_DeliverBatchedNoCache)->Arg(1000)->Arg(10000);
BENCHMARK(BM_DeliverGrid)->Arg(100)->Arg(1000)->Arg(4000)->Arg(10000);
BENCHMARK(BM_DeliverLegacyScan)->Arg(100)->Arg(1000)->Arg(4000);
BENCHMARK(BM_DeliverBatchedMoving)->Arg(1000)->Arg(4000);
BENCHMARK(BM_DeliverGridMoving)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace cityhunter::medium

BENCHMARK_MAIN();
