// Micro-benchmarks for the Medium delivery hot path.
//
// Compares the delivery pipelines Medium::Config can select, at venue scale:
// radios are spread over ±600 m while a 20 dBm transmitter reaches only
// ~60 m, so receiver culling dominates the fanout cost.
//
//   Batched      — SoA gather, slot-ordered merge (no per-frame sort),
//                  squared-distance filter (AVX2 when the CPU has it),
//                  path-loss LUT + pair cache.
//   BatchedNoSimd — same with Config::simd_fanout off: prices the vector
//                  gather/filter + LUT lanes against the scalar loops.
//   BatchedShardedN — same as Batched plus N intra-run workers with
//                  shard_min_candidates = 0, pricing the fork-join.
//   BatchedNoCache — same, pair cache off: prices the cache separately.
//   Grid         — the pre-PR reference: grid gather + std::sort by id +
//                  exact hypot/log10 per candidate.
//   LegacyScan   — no grid at all, full scan over every attached radio.
//
// Moving variants displace one radio before each transmit to price the
// incremental grid maintenance (and pair-cache invalidation) into the win.
//
// Each case reports allocs_per_tx next to delivered_per_tx: the pooled
// transmission objects, inline event storage, flat radio table and reused
// gather scratch should hold the static cases at ~0 heap allocations per
// transmit. delivered_per_tx must be identical across all modes at the same
// radio count — the pipelines are behaviorally interchangeable.
#include "alloc_counter.h"

#include <benchmark/benchmark.h>

#include "dot11/frame.h"
#include "medium/event_queue.h"
#include "medium/medium.h"
#include "support/rng.h"

namespace cityhunter::medium {
namespace {

class CountingSink : public FrameSink {
 public:
  void on_frame(const dot11::Frame&, const RxInfo&) override { ++frames; }
  std::uint64_t frames = 0;
};

enum class Mode {
  kBatched,
  kBatchedNoSimd,
  kBatchedSharded,
  kBatchedNoCache,
  kBatchedMixedIndex,  // channel_buckets off: the pre-PR mixed-channel cells
  kBatchedEagerLutSimd,  // simd_lut_min_elems = 1: the pre-fix LUT dispatch
  kGrid,
  kLegacyScan
};

Medium::Config mode_config(Mode mode, int workers) {
  Medium::Config cfg;
  cfg.intra_run_workers = workers;
  switch (mode) {
    case Mode::kBatched:
      break;  // defaults: grid + batched fanout + SIMD + LUT + pair cache
    case Mode::kBatchedNoSimd:
      cfg.simd_fanout = false;  // scalar gather/filter, same results
      break;
    case Mode::kBatchedSharded:
      // Shard every fanout, even small ones: the point is to price the
      // fork-join overhead against the SIMD fanout at this crowd size.
      cfg.shard_min_candidates = 0;
      break;
    case Mode::kBatchedNoCache:
      cfg.pathloss_cache = false;
      break;
    case Mode::kBatchedMixedIndex:
      cfg.channel_buckets = false;  // same results, off-channel loads return
      break;
    case Mode::kBatchedEagerLutSimd:
      // Vectorize the LUT stage for any survivor chunk at all — the
      // pre-fix dispatch that made city-scale SIMD runs slower than scalar
      // (the gather-bound kernel needs ~kSimdLutMinElems survivors to
      // amortize its AVX entry cost). Kept as a benchmark-only regression
      // row; results are bit-identical either way.
      cfg.simd_lut_min_elems = 1;
      break;
    case Mode::kGrid:
      cfg.batched_fanout = false;
      cfg.pathloss_lut = false;
      cfg.pathloss_cache = false;
      break;
    case Mode::kLegacyScan:
      cfg.spatial_grid = false;
      cfg.batched_fanout = false;
      cfg.pathloss_lut = false;
      cfg.pathloss_cache = false;
      break;
  }
  return cfg;
}

struct Crowd {
  EventQueue events;
  Medium medium;
  CountingSink sink;
  std::vector<Radio> receivers;
  Radio tx;

  /// mixed_channels spreads receivers over 1/6/11 (the urban channel plan)
  /// instead of co-channel with the transmitter — the workload where the
  /// channel-partitioned index stops paying for off-channel neighbours.
  Crowd(int radios, Mode mode, int workers, bool mixed_channels = false)
      : medium(events, mode_config(mode, workers)) {
    support::Rng rng(7);
    const std::uint8_t channels[] = {1, 6, 11};
    for (int i = 0; i < radios; ++i) {
      const std::uint8_t ch = mixed_channels ? channels[rng.index(3)] : 6;
      receivers.push_back(medium.attach(
          {rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0)}, ch, 15.0,
          &sink));
    }
    tx = medium.attach({0, 0}, 6, 20.0);
  }
};

void deliver_loop(benchmark::State& state, Mode mode, bool move,
                  int workers = 1, bool mixed_channels = false) {
  Crowd crowd(static_cast<int>(state.range(0)), mode, workers,
              mixed_channels);
  support::Rng rng(11);
  const auto frame = dot11::make_probe_response(
      dot11::MacAddress::random_local(rng), dot11::MacAddress::random_local(rng),
      "bench-ssid", 6, true);
  std::size_t mover = 0;
  // One warm transmit outside the timed loop fills the transmission pool,
  // event slab and deliver scratch.
  crowd.tx.transmit(frame);
  crowd.events.run_all();
  const auto a0 = cityhunter::bench::alloc_count();
  const auto loaded0 = crowd.medium.fanout_stats().candidates_loaded();
  const auto matched0 = crowd.medium.fanout_stats().key_matched;
  for (auto _ : state) {
    if (move) {
      auto& r = crowd.receivers[mover++ % crowd.receivers.size()];
      r.set_position({rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0)});
    }
    crowd.tx.transmit(frame);
    crowd.events.run_all();
  }
  state.SetItemsProcessed(state.iterations());
  const double iters = static_cast<double>(state.iterations());
  state.counters["delivered_per_tx"] =
      static_cast<double>(crowd.sink.frames) / iters;
  state.counters["allocs_per_tx"] =
      static_cast<double>(cityhunter::bench::alloc_count() - a0) / iters;
  // Index efficiency over the timed loop: bucket entries streamed into the
  // filter kernels vs those that passed the fused key compare. The delta is
  // pure waste — 0 with channel-partitioned buckets, every co-located
  // off-channel radio with the mixed layout.
  const auto loaded =
      crowd.medium.fanout_stats().candidates_loaded() - loaded0;
  const auto matched = crowd.medium.fanout_stats().key_matched - matched0;
  state.counters["candidates_per_tx"] = static_cast<double>(loaded) / iters;
  state.counters["wasted_per_tx"] =
      static_cast<double>(loaded - matched) / iters;
}

/// Retune-dominated churn: every iteration hops one receiver to the next
/// channel in the 1/6/11 plan (a bucket-to-bucket migration under the
/// partitioned index) and every kTransmitEvery-th iteration broadcasts.
/// Prices the append-and-deferred-merge insert against the churn rate; the
/// mixed-index variant shows what the migration work buys back at probe
/// time.
void churn_loop(benchmark::State& state, Mode mode) {
  constexpr int kTransmitEvery = 8;
  Crowd crowd(static_cast<int>(state.range(0)), mode, /*workers=*/1,
              /*mixed_channels=*/true);
  support::Rng rng(11);
  const auto frame = dot11::make_probe_response(
      dot11::MacAddress::random_local(rng),
      dot11::MacAddress::random_local(rng), "bench-ssid", 6, true);
  const std::uint8_t channels[] = {1, 6, 11};
  std::size_t tick = 0;
  crowd.tx.transmit(frame);
  crowd.events.run_all();
  const auto a0 = cityhunter::bench::alloc_count();
  for (auto _ : state) {
    auto& r = crowd.receivers[tick % crowd.receivers.size()];
    r.set_channel(channels[tick % 3]);
    if (tick % kTransmitEvery == 0) {
      crowd.tx.transmit(frame);
      crowd.events.run_all();
    }
    ++tick;
  }
  state.SetItemsProcessed(state.iterations());
  const double iters = static_cast<double>(state.iterations());
  state.counters["allocs_per_op"] =
      static_cast<double>(cityhunter::bench::alloc_count() - a0) / iters;
  state.counters["delivered"] = static_cast<double>(crowd.sink.frames);
}

/// Attach/detach storm: each iteration detaches the oldest live receiver
/// and attaches a fresh one (slot growth, bucket create/recycle, arena
/// compaction); periodic transmits keep the probe path honest.
void attach_churn_loop(benchmark::State& state, Mode mode) {
  constexpr int kTransmitEvery = 8;
  Crowd crowd(static_cast<int>(state.range(0)), mode, /*workers=*/1,
              /*mixed_channels=*/true);
  support::Rng rng(11);
  const auto frame = dot11::make_probe_response(
      dot11::MacAddress::random_local(rng),
      dot11::MacAddress::random_local(rng), "bench-ssid", 6, true);
  const std::uint8_t channels[] = {1, 6, 11};
  std::size_t tick = 0;
  crowd.tx.transmit(frame);
  crowd.events.run_all();
  for (auto _ : state) {
    auto& victim = crowd.receivers[tick % crowd.receivers.size()];
    if (victim.valid()) crowd.medium.detach(victim);
    victim = crowd.medium.attach(
        {rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0)},
        channels[tick % 3], 15.0, &crowd.sink);
    if (tick % kTransmitEvery == 0) {
      crowd.tx.transmit(frame);
      crowd.events.run_all();
    }
    ++tick;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["delivered"] = static_cast<double>(crowd.sink.frames);
}

void BM_DeliverBatched(benchmark::State& state) {
  deliver_loop(state, Mode::kBatched, /*move=*/false);
}
void BM_DeliverBatchedNoSimd(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedNoSimd, /*move=*/false);
}
// Sharded fanout at 2/4/8 intra-run workers. delivered_per_tx stays
// identical to every other mode — the merge reorders nothing — while the
// time column shows where fork-join overhead crosses into profit on this
// machine. Worker counts beyond the hardware are still measured (the
// helpers time-slice) so the oversubscription penalty is visible too.
void BM_DeliverBatchedSharded2(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedSharded, /*move=*/false, /*workers=*/2);
}
void BM_DeliverBatchedSharded4(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedSharded, /*move=*/false, /*workers=*/4);
}
void BM_DeliverBatchedSharded8(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedSharded, /*move=*/false, /*workers=*/8);
}
void BM_DeliverBatchedNoCache(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedNoCache, /*move=*/false);
}
void BM_DeliverGrid(benchmark::State& state) {
  deliver_loop(state, Mode::kGrid, /*move=*/false);
}
void BM_DeliverLegacyScan(benchmark::State& state) {
  deliver_loop(state, Mode::kLegacyScan, /*move=*/false);
}
void BM_DeliverBatchedMoving(benchmark::State& state) {
  deliver_loop(state, Mode::kBatched, /*move=*/true);
}
void BM_DeliverGridMoving(benchmark::State& state) {
  deliver_loop(state, Mode::kGrid, /*move=*/true);
}
// Channel-mixed crowds: the partitioned index streams only co-channel
// candidates (wasted_per_tx = 0); the mixed layout pays ~2/3 of its loads
// to the key filter on the 1/6/11 plan.
void BM_DeliverBatchedChannelMixed(benchmark::State& state) {
  deliver_loop(state, Mode::kBatched, /*move=*/false, /*workers=*/1,
               /*mixed_channels=*/true);
}
void BM_DeliverMixedIndexChannelMixed(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedMixedIndex, /*move=*/false, /*workers=*/1,
               /*mixed_channels=*/true);
}
// The city-shape LUT dispatch split (satellite of the sharded-city PR): at
// urban density the filter admits only a few dozen survivors per fanout,
// below the gather-bound LUT kernel's profit point. The default dispatch
// (LUT vectorized only from kSimdLutMinElems survivors) must be >= the
// scalar row on this crowd; the eager row re-creates the pre-fix dispatch
// whose AVX entry cost made `simd: true` ~7% SLOWER than scalar in
// BENCH_wallclock.json's city_scale.intra_run.
void BM_DeliverNoSimdChannelMixed(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedNoSimd, /*move=*/false, /*workers=*/1,
               /*mixed_channels=*/true);
}
void BM_DeliverEagerLutSimdChannelMixed(benchmark::State& state) {
  deliver_loop(state, Mode::kBatchedEagerLutSimd, /*move=*/false,
               /*workers=*/1, /*mixed_channels=*/true);
}
void BM_ChurnSetChannelStorm(benchmark::State& state) {
  churn_loop(state, Mode::kBatched);
}
void BM_ChurnSetChannelStormMixedIndex(benchmark::State& state) {
  churn_loop(state, Mode::kBatchedMixedIndex);
}
void BM_ChurnAttachDetach(benchmark::State& state) {
  attach_churn_loop(state, Mode::kBatched);
}
void BM_ChurnAttachDetachMixedIndex(benchmark::State& state) {
  attach_churn_loop(state, Mode::kBatchedMixedIndex);
}

BENCHMARK(BM_DeliverBatched)->Arg(100)->Arg(1000)->Arg(4000)->Arg(10000);
BENCHMARK(BM_DeliverBatchedNoSimd)->Arg(1000)->Arg(4000)->Arg(10000);
BENCHMARK(BM_DeliverBatchedSharded2)->Arg(4000)->Arg(10000);
BENCHMARK(BM_DeliverBatchedSharded4)->Arg(4000)->Arg(10000);
BENCHMARK(BM_DeliverBatchedSharded8)->Arg(10000);
BENCHMARK(BM_DeliverBatchedNoCache)->Arg(1000)->Arg(10000);
BENCHMARK(BM_DeliverGrid)->Arg(100)->Arg(1000)->Arg(4000)->Arg(10000);
BENCHMARK(BM_DeliverLegacyScan)->Arg(100)->Arg(1000)->Arg(4000);
BENCHMARK(BM_DeliverBatchedMoving)->Arg(1000)->Arg(4000);
BENCHMARK(BM_DeliverGridMoving)->Arg(1000)->Arg(4000);
BENCHMARK(BM_DeliverBatchedChannelMixed)->Arg(1000)->Arg(4000)->Arg(20000);
BENCHMARK(BM_DeliverMixedIndexChannelMixed)->Arg(1000)->Arg(4000)->Arg(20000);
BENCHMARK(BM_DeliverNoSimdChannelMixed)->Arg(4000)->Arg(20000);
BENCHMARK(BM_DeliverEagerLutSimdChannelMixed)->Arg(4000)->Arg(20000);
BENCHMARK(BM_ChurnSetChannelStorm)->Arg(1000)->Arg(10000);
BENCHMARK(BM_ChurnSetChannelStormMixedIndex)->Arg(1000)->Arg(10000);
BENCHMARK(BM_ChurnAttachDetach)->Arg(1000)->Arg(10000);
BENCHMARK(BM_ChurnAttachDetachMixedIndex)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace cityhunter::medium

BENCHMARK_MAIN();
