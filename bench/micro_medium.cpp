// Micro-benchmarks for the Medium delivery hot path.
//
// Compares the spatial-grid receiver culling against the legacy scan over
// every attached radio, at venue scale: radios are spread over ±600 m while
// a 20 dBm transmitter reaches only ~60 m, so the grid should cull the vast
// majority of candidates. A third case moves a radio before each transmit to
// price the incremental grid maintenance into the win.
//
// Each case reports allocs_per_tx next to delivered_per_tx: the pooled
// transmission objects, inline event storage and flat radio table should
// hold the static cases at ~0 heap allocations per transmit.
#include "alloc_counter.h"

#include <benchmark/benchmark.h>

#include "dot11/frame.h"
#include "medium/event_queue.h"
#include "medium/medium.h"
#include "support/rng.h"

namespace cityhunter::medium {
namespace {

class CountingSink : public FrameSink {
 public:
  void on_frame(const dot11::Frame&, const RxInfo&) override { ++frames; }
  std::uint64_t frames = 0;
};

struct Crowd {
  EventQueue events;
  Medium medium;
  CountingSink sink;
  std::vector<Radio> receivers;
  Radio tx;

  Crowd(int radios, bool spatial_grid)
      : medium(events, [&] {
          Medium::Config cfg;
          cfg.spatial_grid = spatial_grid;
          return cfg;
        }()) {
    support::Rng rng(7);
    for (int i = 0; i < radios; ++i) {
      receivers.push_back(medium.attach(
          {rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0)}, 6, 15.0,
          &sink));
    }
    tx = medium.attach({0, 0}, 6, 20.0);
  }
};

void deliver_loop(benchmark::State& state, bool spatial_grid, bool move) {
  Crowd crowd(static_cast<int>(state.range(0)), spatial_grid);
  support::Rng rng(11);
  const auto frame = dot11::make_probe_response(
      dot11::MacAddress::random_local(rng), dot11::MacAddress::random_local(rng),
      "bench-ssid", 6, true);
  std::size_t mover = 0;
  // One warm transmit outside the timed loop fills the transmission pool,
  // event slab and deliver scratch.
  crowd.tx.transmit(frame);
  crowd.events.run_all();
  const auto a0 = cityhunter::bench::alloc_count();
  for (auto _ : state) {
    if (move) {
      auto& r = crowd.receivers[mover++ % crowd.receivers.size()];
      r.set_position({rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0)});
    }
    crowd.tx.transmit(frame);
    crowd.events.run_all();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["delivered_per_tx"] =
      static_cast<double>(crowd.sink.frames) /
      static_cast<double>(state.iterations());
  state.counters["allocs_per_tx"] =
      static_cast<double>(cityhunter::bench::alloc_count() - a0) /
      static_cast<double>(state.iterations());
}

void BM_DeliverGrid(benchmark::State& state) {
  deliver_loop(state, /*spatial_grid=*/true, /*move=*/false);
}
void BM_DeliverLegacyScan(benchmark::State& state) {
  deliver_loop(state, /*spatial_grid=*/false, /*move=*/false);
}
void BM_DeliverGridMoving(benchmark::State& state) {
  deliver_loop(state, /*spatial_grid=*/true, /*move=*/true);
}

BENCHMARK(BM_DeliverGrid)->Arg(100)->Arg(1000)->Arg(4000);
BENCHMARK(BM_DeliverLegacyScan)->Arg(100)->Arg(1000)->Arg(4000);
BENCHMARK(BM_DeliverGridMoving)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace cityhunter::medium

BENCHMARK_MAIN();
