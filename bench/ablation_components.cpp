// Ablation: contribution of each City-Hunter ingredient.
//
// Strips one design element at a time — WiGLE seeding, untried tracking,
// the freshness buffer, heat-based weighting — and compares against the
// full attacker and the MANA baseline in both a static and a flow venue.
#include "bench_common.h"
#include "sim/parallel.h"

using namespace cityhunter;

int main() {
  bench::print_header("Ablation — City-Hunter component contributions",
                      "Sec III & IV (cumulative design)");
  sim::World world = bench::make_world();

  const mobility::VenueConfig venues[] = {mobility::canteen_venue(),
                                          mobility::subway_passage_venue()};
  for (const auto& venue : venues) {
    std::printf("\n--- %s ---\n", venue.name.c_str());
    support::TextTable t({"variant", "h", "h_b"});

    // Variants share one crowd (run_seed 21) but are independent runs:
    // collect them all, then fan out across cores.
    std::vector<const char*> names;
    std::vector<sim::RunConfig> runs;
    auto add_one = [&](const char* name, sim::AttackerKind kind,
                       auto mutate) {
      sim::RunConfig run;
      run.kind = kind;
      run.venue = venue;
      run.slot.expected_clients = venue.hourly_clients[4];  // midday slot
      run.slot.group_fraction = venue.hourly_group_fraction[4];
      run.duration = support::SimTime::hours(1);
      run.run_seed = 21;  // same crowd for all variants
      mutate(run);
      names.push_back(name);
      runs.push_back(std::move(run));
    };

    add_one("MANA baseline", sim::AttackerKind::kMana, [](auto&) {});
    add_one("prelim (unordered sweep)", sim::AttackerKind::kPrelim,
            [](auto&) {});
    add_one("full City-Hunter", sim::AttackerKind::kCityHunter, [](auto&) {});
    add_one("- WiGLE seed", sim::AttackerKind::kCityHunter, [](auto& run) {
      run.wigle_seed.nearby_count = 0;
      run.wigle_seed.popular_count = 0;
    });
    add_one("- untried tracking", sim::AttackerKind::kCityHunter,
            [](auto& run) { run.cityhunter.untried_tracking = false; });
    add_one("- freshness buffer", sim::AttackerKind::kCityHunter,
            [](auto& run) { run.cityhunter.buffers.use_freshness = false; });
    add_one("- heat weights (AP count)", sim::AttackerKind::kCityHunter,
            [](auto& run) {
              run.wigle_seed.ranking = core::PopularRanking::kApCount;
            });

    const auto outputs = sim::run_campaigns(world, runs);
    bench::report_failed_runs(outputs);
    bench::report_channel(outputs);
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      t.add_row({names[i], support::TextTable::pct(outputs[i].result.h()),
                 support::TextTable::pct(outputs[i].result.h_b())});
    }

    std::printf("%s", t.str().c_str());
  }
  std::printf("\nexpectation: every removal costs h_b; WiGLE seeding and "
              "untried tracking are the largest contributors (Table II), "
              "ordering MANA < prelim < full holds in both venues\n");
  return 0;
}
