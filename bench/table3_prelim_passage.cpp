// Table III: preliminary City-Hunter in the subway passage.
//
// Paper: 1356 probes (178 direct / 1178 broadcast), 37 direct + 49
// broadcast connected, h 6.3%, h_b 4.1% — the unordered untried sweep
// collapses when each victim only receives ~40 SSIDs before walking away.
// Fig 2(b): ~70% of broadcast clients were tried with exactly 40 SSIDs,
// ~22% with 80.
#include "bench_common.h"

using namespace cityhunter;

int main() {
  bench::print_header(
      "Table III — preliminary City-Hunter in the subway passage",
      "Table III, Fig 2(b) (Sec III-C)");
  sim::World world = bench::make_world();

  sim::RunConfig run;
  run.kind = sim::AttackerKind::kPrelim;
  run.venue = mobility::subway_passage_venue();
  run.slot.expected_clients = 1450;  // off-peak hour, like the paper's test
  run.duration = support::SimTime::hours(1);
  auto out = sim::run_campaign(world, run);
  out.result.label = "Subway Passage (prelim)";

  std::printf("%s\n", stats::comparison_table({out.result}).c_str());
  bench::report_channel(out);

  bench::paper_vs_measured("prelim h in passage", "6.3%",
                           support::TextTable::pct(out.result.h()));
  bench::paper_vs_measured("prelim h_b in passage", "4.1%",
                           support::TextTable::pct(out.result.h_b()));

  support::Histogram hist(40.0);
  for (const int n : out.result.ssids_sent_all_broadcast) {
    hist.add(static_cast<double>(n));
  }
  std::printf("\nFig 2(b): SSIDs tried per broadcast client (bucket = 40):\n%s",
              hist.ascii(40).c_str());
  bench::paper_vs_measured(
      "clients tried with exactly one 40-train", "~70%",
      support::TextTable::pct(hist.fraction_in_bucket(40.0)));
  bench::paper_vs_measured(
      "clients tried with two trains (80)", "~22%",
      support::TextTable::pct(hist.fraction_in_bucket(80.0)));
  return 0;
}
