// Ablation: the §V-B extensions — de-authentication of clients parked on a
// legitimate AP, and seeding carrier hotspot SSIDs for iOS subscribers.
#include "bench_common.h"
#include "sim/parallel.h"

using namespace cityhunter;

int main() {
  bench::print_header("Ablation — §V-B extensions (deauth, carrier SSIDs)",
                      "Sec V-B (further improvements)");
  sim::World world = bench::make_world();

  // --- De-authentication: half the canteen is already associated to the
  // venue AP and never probes until kicked off. ---
  {
    std::printf("\n--- deauth attack (canteen, 50%% pre-associated) ---\n");
    support::TextTable t(
        {"variant", "clients seen", "h", "h_b", "deauths sent"});
    std::vector<sim::RunConfig> runs;
    for (const bool enable : {false, true}) {
      sim::RunConfig run;
      run.kind = sim::AttackerKind::kCityHunter;
      run.venue = mobility::canteen_venue();
      run.slot.expected_clients = 640;
      run.duration = support::SimTime::hours(1);
      run.run_seed = 31;
      sim::DeauthScenario d;
      d.pre_associated_fraction = 0.5;
      d.enable_deauth = enable;
      run.deauth = d;
      runs.push_back(std::move(run));
    }
    const auto outputs = sim::run_campaigns(world, runs);
    bench::report_failed_runs(outputs);
    bench::report_channel(outputs);
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      const auto& out = outputs[i];
      t.add_row({i == 1 ? "with deauth" : "without deauth",
                 std::to_string(out.result.total_clients),
                 support::TextTable::pct(out.result.h()),
                 support::TextTable::pct(out.result.h_b()),
                 std::to_string(out.deauths_sent)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("expectation: deauth forces parked clients back into "
                "scanning, so the attacker sees (and lures) more of them\n");
  }

  // --- Carrier SSID seeding: iOS subscribers carry 'PCCW1x' etc., which
  // neither WiGLE nor direct probes can supply. ---
  {
    std::printf("\n--- carrier SSID seeding (passage) ---\n");
    support::TextTable t({"variant", "h_b", "carrier-seed hits"});
    std::vector<sim::RunConfig> runs;
    for (const bool enable : {false, true}) {
      sim::RunConfig run;
      run.kind = sim::AttackerKind::kCityHunter;
      run.venue = mobility::subway_passage_venue();
      run.slot.expected_clients = 1450;
      run.duration = support::SimTime::hours(1);
      run.run_seed = 32;
      run.seed_carrier_ssids = enable;
      runs.push_back(std::move(run));
    }
    const auto outputs = sim::run_campaigns(world, runs);
    bench::report_failed_runs(outputs);
    bench::report_channel(outputs);
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      const auto& out = outputs[i];
      t.add_row({i == 1 ? "with carrier seed" : "without carrier seed",
                 support::TextTable::pct(out.result.h_b()),
                 std::to_string(out.result.hits_from_carrier_seed)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("expectation: carrier seeding adds hits unreachable by any "
                "other source (iOS preloaded PNL entries)\n");
  }
  return 0;
}
