// Table II: MANA vs preliminary City-Hunter in the canteen.
//
// Paper: MANA h 6.6% / h_b 3%; City-Hunter (prelim: untried tracking +
// WiGLE seed) h 19.1% / h_b 15.9%, with ~74% of broadcast hits coming from
// WiGLE-sourced SSIDs, and 20..250 SSIDs (avg ~130) tried per connected
// client (Fig 2a).
#include "bench_common.h"

using namespace cityhunter;

int main() {
  bench::print_header(
      "Table II — MANA vs preliminary City-Hunter in the canteen",
      "Table II, Fig 2(a) (Sec III-C)");
  sim::World world = bench::make_world();

  auto base_run = [&](sim::AttackerKind kind, std::uint64_t run_seed) {
    sim::RunConfig run;
    run.kind = kind;
    run.venue = mobility::canteen_venue();
    run.slot.expected_clients = 640;
    run.duration = support::SimTime::minutes(30);
    run.run_seed = run_seed;
    return sim::run_campaign(world, run);
  };

  const auto mana = base_run(sim::AttackerKind::kMana, 2);
  auto prelim = base_run(sim::AttackerKind::kPrelim, 3);
  prelim.result.label = "City-Hunter (prelim)";

  std::printf("%s\n",
              stats::comparison_table({mana.result, prelim.result}).c_str());
  bench::report_channel({mana, prelim});

  const auto& r = prelim.result;
  const double wigle_share =
      r.broadcast_connected
          ? static_cast<double>(r.hits_from_wigle) /
                static_cast<double>(r.broadcast_connected)
          : 0.0;
  bench::paper_vs_measured("prelim h", "19.1%", support::TextTable::pct(r.h()));
  bench::paper_vs_measured("prelim h_b", "15.9%",
                           support::TextTable::pct(r.h_b()));
  bench::paper_vs_measured("broadcast hits from WiGLE", "~74%",
                           support::TextTable::pct(wigle_share));

  support::Summary tried;
  for (const int n : r.ssids_sent_connected) tried.add(n);
  bench::paper_vs_measured(
      "SSIDs tried per connected client", "20..250, avg ~130",
      support::TextTable::num(tried.min(), 0) + ".." +
          support::TextTable::num(tried.max(), 0) + ", avg " +
          support::TextTable::num(tried.mean(), 0));
  return 0;
}
