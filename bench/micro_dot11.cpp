// Micro-benchmarks: 802.11 codec throughput (google-benchmark).
//
// Every frame in the simulator crosses serialize() + parse(), so codec cost
// bounds simulation throughput. The legacy allocating API is benchmarked
// next to the buffer-reusing serialize_into/parse_into hot-path variants;
// each benchmark also reports heap allocations per operation
// (bench/alloc_counter.h) — the _into variants must sit at 0 once warm.
#include "alloc_counter.h"

#include <benchmark/benchmark.h>

#include "dot11/crc32.h"
#include "dot11/serialize.h"
#include "support/rng.h"

using namespace cityhunter;

namespace {

void report_allocs_per_op(benchmark::State& state, std::uint64_t before) {
  state.counters["allocs_per_op"] =
      static_cast<double>(bench::alloc_count() - before) /
      static_cast<double>(state.iterations());
}

dot11::Frame sample_probe_response() {
  support::Rng rng(7);
  const auto bssid = dot11::MacAddress::random_local(rng);
  const auto client = dot11::MacAddress::random_local(rng);
  return dot11::make_probe_response(bssid, client, "7-Eleven Free Wifi", 6,
                                    /*open=*/true, 42);
}

void BM_SerializeProbeResponse(benchmark::State& state) {
  const auto frame = sample_probe_response();
  const auto a0 = bench::alloc_count();
  for (auto _ : state) {
    auto bytes = dot11::serialize(frame);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  report_allocs_per_op(state, a0);
}
BENCHMARK(BM_SerializeProbeResponse);

void BM_SerializeIntoProbeResponse(benchmark::State& state) {
  const auto frame = sample_probe_response();
  std::vector<std::uint8_t> scratch;
  dot11::serialize_into(frame, scratch);  // warm the buffer
  const auto a0 = bench::alloc_count();
  for (auto _ : state) {
    auto n = dot11::serialize_into(frame, scratch);
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  report_allocs_per_op(state, a0);
}
BENCHMARK(BM_SerializeIntoProbeResponse);

void BM_ParseProbeResponse(benchmark::State& state) {
  const auto bytes = dot11::serialize(sample_probe_response());
  const auto a0 = bench::alloc_count();
  for (auto _ : state) {
    auto frame = dot11::parse(bytes);
    benchmark::DoNotOptimize(frame);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  report_allocs_per_op(state, a0);
}
BENCHMARK(BM_ParseProbeResponse);

void BM_ParseIntoProbeResponse(benchmark::State& state) {
  const auto bytes = dot11::serialize(sample_probe_response());
  dot11::Frame slot;
  dot11::parse_into(bytes, slot);  // warm the slot's IE storage
  const auto a0 = bench::alloc_count();
  for (auto _ : state) {
    auto ok = dot11::parse_into(bytes, slot);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(&slot);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  report_allocs_per_op(state, a0);
}
BENCHMARK(BM_ParseIntoProbeResponse);

void BM_RoundTripBeacon(benchmark::State& state) {
  support::Rng rng(9);
  const auto frame = dot11::make_beacon(dot11::MacAddress::random_local(rng),
                                        "#HKAirport Free WiFi", 11,
                                        /*open=*/true, 123456, 7);
  const auto a0 = bench::alloc_count();
  for (auto _ : state) {
    auto parsed = dot11::parse(dot11::serialize(frame));
    benchmark::DoNotOptimize(parsed);
  }
  report_allocs_per_op(state, a0);
}
BENCHMARK(BM_RoundTripBeacon);

void BM_RoundTripBeaconInto(benchmark::State& state) {
  support::Rng rng(9);
  const auto frame = dot11::make_beacon(dot11::MacAddress::random_local(rng),
                                        "#HKAirport Free WiFi", 11,
                                        /*open=*/true, 123456, 7);
  std::vector<std::uint8_t> scratch;
  dot11::Frame slot;
  dot11::serialize_into(frame, scratch);
  dot11::parse_into(scratch, slot);
  const auto a0 = bench::alloc_count();
  for (auto _ : state) {
    dot11::serialize_into(frame, scratch);
    auto ok = dot11::parse_into(scratch, slot);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(&slot);
  }
  report_allocs_per_op(state, a0);
}
BENCHMARK(BM_RoundTripBeaconInto);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    auto c = dot11::crc32(data);
    benchmark::DoNotOptimize(c);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
