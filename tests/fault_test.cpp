#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <vector>

#include "dot11/serialize.h"
#include "dot11/timing.h"
#include "medium/event_queue.h"
#include "medium/fault.h"
#include "medium/medium.h"
#include "sim/parallel.h"
#include "support/rng.h"

namespace cityhunter {
namespace {

using dot11::MacAddress;
using medium::EventQueue;
using medium::FaultModel;
using medium::FrameSink;
using medium::Medium;
using medium::RxInfo;
using support::Rng;
using support::SimTime;

class Collector : public FrameSink {
 public:
  void on_frame(const dot11::Frame& frame, const RxInfo&) override {
    frames.push_back(frame);
  }
  std::vector<dot11::Frame> frames;
};

// --- FaultModel unit behaviour ---

TEST(FaultModel, PerIsMonotonicInDistance) {
  FaultModel fault(FaultModel::Config{.enabled = true});
  medium::LogDistancePathLoss prop;
  double last = -1.0;
  for (double d = 1.0; d <= 120.0; d += 1.0) {
    const double p = fault.per(prop.rx_power_dbm(20.0, d));
    EXPECT_GE(p, last) << "PER must not decrease with distance, d=" << d;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    last = p;
  }
  // The curve actually moves: near-field is clean, edge-of-range is lossy.
  EXPECT_LT(fault.per(prop.rx_power_dbm(20.0, 5.0)), 0.01);
  EXPECT_GT(fault.per(prop.rx_power_dbm(20.0, 100.0)), 0.5);
}

TEST(FaultModel, LinkLossCombinesAmbientFloor) {
  FaultModel::Config cfg;
  cfg.enabled = true;
  cfg.ambient_loss = 0.3;
  FaultModel fault(cfg);
  // Even at infinite SNR the ambient floor remains.
  EXPECT_NEAR(fault.link_loss(100.0), 0.3, 1e-6);
  // At terrible SNR the total approaches 1, never exceeding it.
  EXPECT_GT(fault.link_loss(-100.0), 0.99);
  EXPECT_LE(fault.link_loss(-100.0), 1.0);
}

TEST(FaultModel, StreamIsPureFunctionOfKey) {
  FaultModel fault(FaultModel::Config{.enabled = true});
  Rng a = fault.stream(3, 7);
  Rng b = fault.stream(3, 7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()());
  }
  Rng c = fault.stream(3, 8);
  Rng d = fault.stream(4, 7);
  EXPECT_NE(c.engine()(), d.engine()());
}

TEST(FaultModel, CorruptFlipsBoundedBitCount) {
  FaultModel::Config cfg;
  cfg.enabled = true;
  cfg.max_bit_flips = 3;
  FaultModel fault(cfg);
  Rng rng(1);
  const std::vector<std::uint8_t> original(64, 0x00);
  for (int round = 0; round < 50; ++round) {
    auto wire = original;
    fault.corrupt(wire, rng);
    ASSERT_EQ(wire.size(), original.size());
    int flipped = 0;
    for (std::size_t i = 0; i < wire.size(); ++i) {
      for (int b = 0; b < 8; ++b) {
        if (((wire[i] ^ original[i]) >> b) & 1) ++flipped;
      }
    }
    EXPECT_GE(flipped, 1);
    EXPECT_LE(flipped, 3);
  }
}

TEST(FaultModel, BackoffIsBoundedByContentionWindow) {
  FaultModel::Config cfg;
  cfg.enabled = true;
  cfg.cw_min = 15;
  cfg.cw_max = 63;
  cfg.slot_time_us = 20.0;
  FaultModel fault(cfg);
  Rng rng(2);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    for (int i = 0; i < 20; ++i) {
      const SimTime b = fault.backoff(attempt, rng);
      EXPECT_GE(b, SimTime::zero());
      EXPECT_LE(b, SimTime::microseconds(63 * 20));
    }
  }
}

// --- Config validation ---

TEST(FaultConfig, RejectsNonsense) {
  EventQueue events;
  {
    Medium::Config cfg;
    cfg.contention_factor = 0.0;
    EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
  }
  {
    Medium::Config cfg;
    cfg.contention_factor = -2.0;
    EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
  }
  {
    Medium::Config cfg;
    cfg.mgmt_rate_mbps = 0.0;
    EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
  }
  {
    Medium::Config cfg;
    cfg.fault.ambient_loss = 1.5;
    EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
  }
  {
    Medium::Config cfg;
    cfg.fault.corruption_rate = -0.1;
    EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
  }
  {
    Medium::Config cfg;
    cfg.fault.per_width_db = 0.0;
    EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
  }
  {
    Medium::Config cfg;
    cfg.fault.cw_max = 3;
    cfg.fault.cw_min = 7;
    EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
  }
  {
    Medium::Config cfg;
    cfg.fault.retry_limit = -1;
    EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
  }
  EXPECT_NO_THROW(Medium(events, Medium::Config{}));
}

// --- Lossy medium end to end ---

Medium::Config lossy_config(double ambient, double corruption,
                            int retry_limit = 4) {
  Medium::Config cfg;
  cfg.fault.enabled = true;
  cfg.fault.ambient_loss = ambient;
  cfg.fault.corruption_rate = corruption;
  cfg.fault.retry_limit = retry_limit;
  return cfg;
}

TEST(LossyMedium, ErasuresAreCountedAndConserved) {
  EventQueue events;
  Medium medium(events, lossy_config(0.5, 0.0));
  Rng rng(1);
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0, &rx);
  const int sent = 400;
  for (int i = 0; i < sent; ++i) {
    a.transmit(dot11::make_broadcast_probe_request(
        MacAddress::random_local(rng)));
  }
  events.run_until(SimTime::seconds(30.0));
  // At 10 m the SNR PER is negligible; ambient loss halves the deliveries.
  EXPECT_GT(rx.frames.size(), 130u);
  EXPECT_LT(rx.frames.size(), 270u);
  // Every decodable frame was either delivered or counted lost.
  EXPECT_EQ(rx.frames.size() + medium.frames_lost(),
            static_cast<std::uint64_t>(sent));
  EXPECT_EQ(b.frames_received(), rx.frames.size());
  EXPECT_EQ(b.frames_lost(), medium.frames_lost());
  EXPECT_EQ(medium.frames_corrupted(), 0u);
  EXPECT_EQ(medium.retries(), 0u);
}

TEST(LossyMedium, SnrLossGrowsWithDistance) {
  // Same traffic, receiver near vs at the edge of range: the far receiver
  // must lose a strictly larger share (PER monotonicity through the whole
  // delivery path, not just the curve).
  auto lost_at = [](double distance) {
    EventQueue events;
    Medium medium(events, lossy_config(0.0, 0.0));
    Rng rng(1);
    Collector rx;
    auto a = medium.attach({0, 0}, 6, 20.0);
    medium.attach({distance, 0}, 6, 15.0, &rx);
    for (int i = 0; i < 300; ++i) {
      a.transmit(dot11::make_broadcast_probe_request(
          MacAddress::random_local(rng)));
    }
    events.run_until(SimTime::seconds(30.0));
    return medium.frames_lost();
  };
  const auto near = lost_at(10.0);
  const auto mid = lost_at(45.0);
  const auto far = lost_at(58.0);
  EXPECT_LE(near, mid);
  EXPECT_LT(mid, far);
}

TEST(LossyMedium, RetriesRepairAmbientCollisionsOnUnicast) {
  // 802.11 semantics: a collision at the receiver means no ACK, which
  // triggers the retransmission — so ambient loss on unicast frames is
  // largely repaired by the retry budget (at airtime cost), while a
  // retry-less configuration eats it raw.
  auto lost_with_retries = [](int retry_limit) {
    EventQueue events;
    Medium medium(events, lossy_config(0.5, 0.0, retry_limit));
    Rng rng(1);
    Collector rx;
    auto a = medium.attach({0, 0}, 6, 20.0);
    medium.attach({10, 0}, 6, 15.0, &rx);
    const auto client = MacAddress::random_local(rng);
    for (int i = 0; i < 200; ++i) {
      a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                            client, "SSID", 6, true));
    }
    events.run_until(SimTime::seconds(120.0));
    return std::tuple{medium.frames_lost(), medium.retries(),
                      rx.frames.size()};
  };
  const auto [lost_raw, retries_raw, rx_raw] = lost_with_retries(0);
  const auto [lost_rep, retries_rep, rx_rep] = lost_with_retries(4);
  EXPECT_EQ(retries_raw, 0u);
  EXPECT_GT(retries_rep, 50u);
  // Residual loss after 4 retries at p=0.5 is 0.5^5 ~ 3%; raw is ~50%.
  EXPECT_GT(lost_raw, 60u);
  EXPECT_LT(lost_rep, 20u);
  EXPECT_GT(rx_rep, rx_raw);
}

TEST(LossyMedium, RetryBudgetExhaustion) {
  // corruption_rate = 1: every attempt is corrupted, so a unicast frame
  // burns its full retry budget and still arrives too damaged to parse.
  EventQueue events;
  Medium medium(events, lossy_config(0.0, 1.0, /*retry_limit=*/3));
  Rng rng(1);
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                        MacAddress::random_local(rng),
                                        "CoffeeShop", 6, true));
  events.run_until(SimTime::seconds(5.0));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_EQ(medium.retries(), 3u);
  EXPECT_EQ(a.tx_retries(), 3u);
  EXPECT_EQ(medium.frames_corrupted(), 1u);
  EXPECT_EQ(medium.frames_lost(), 0u);  // killed at TX, not on the link
  EXPECT_EQ(a.frames_sent(), 1u);       // one logical frame
}

TEST(LossyMedium, RetriesConsumeAirtime) {
  // With corruption_rate = 1 and 3 retries, the radio holds the air for at
  // least 4 frame airtimes — loss now interacts with the scan budget.
  EventQueue events;
  Medium medium(events, lossy_config(0.0, 1.0, /*retry_limit=*/3));
  Rng rng(1);
  auto a = medium.attach({0, 0}, 6, 20.0);
  const auto frame = dot11::make_probe_response(
      MacAddress::random_local(rng), MacAddress::random_local(rng), "X", 6,
      true);
  const SimTime air =
      dot11::airtime(dot11::wire_size(frame), medium.config().mgmt_rate_mbps) *
      medium.config().contention_factor;
  a.transmit(frame);
  a.transmit(frame);  // queued behind the whole retry train
  events.run_until(air * 3.9);
  EXPECT_EQ(a.frames_sent(), 0u);  // first train still occupying the air
  events.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(a.frames_sent(), 2u);
}

TEST(LossyMedium, BroadcastFramesAreNeverRetried) {
  EventQueue events;
  Medium medium(events, lossy_config(0.0, 1.0, /*retry_limit=*/7));
  Rng rng(1);
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  for (int i = 0; i < 5; ++i) {
    a.transmit(dot11::make_broadcast_probe_request(
        MacAddress::random_local(rng)));
  }
  events.run_until(SimTime::seconds(5.0));
  EXPECT_TRUE(rx.frames.empty());  // all corrupted, FCS rejects
  EXPECT_EQ(medium.retries(), 0u);
  EXPECT_EQ(medium.frames_corrupted(), 5u);
}

TEST(LossyMedium, DisabledFaultModelIsPerfectChannel) {
  EventQueue events;
  Medium medium(events);  // default config: fault off
  Rng rng(1);
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  for (int i = 0; i < 100; ++i) {
    a.transmit(dot11::make_broadcast_probe_request(
        MacAddress::random_local(rng)));
  }
  events.run_until(SimTime::seconds(30.0));
  EXPECT_EQ(rx.frames.size(), 100u);
  EXPECT_EQ(medium.frames_lost(), 0u);
  EXPECT_EQ(medium.frames_corrupted(), 0u);
  EXPECT_EQ(medium.retries(), 0u);
}

TEST(LossyMedium, IdenticalRunsAreBitIdentical) {
  auto run_once = [] {
    EventQueue events;
    Medium medium(events, lossy_config(0.2, 0.1));
    Rng rng(7);
    Collector rx;
    auto a = medium.attach({0, 0}, 6, 20.0);
    medium.attach({40, 0}, 6, 15.0, &rx);
    for (int i = 0; i < 200; ++i) {
      a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                            MacAddress::random_local(rng),
                                            "SSID", 6, true));
    }
    events.run_until(SimTime::seconds(60.0));
    return std::tuple{rx.frames.size(), medium.frames_lost(),
                      medium.frames_corrupted(), medium.retries()};
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- Lossy campaigns across thread counts ---

sim::ScenarioConfig small_scenario() {
  sim::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.aps.residential_ap_count = 800;
  cfg.aps.small_venue_count = 400;
  cfg.aps.enterprise_ap_count = 150;
  cfg.photos.photo_count = 8000;
  return cfg;
}

std::vector<sim::RunConfig> lossy_runs(const sim::World& world) {
  const sim::AttackerKind kinds[] = {sim::AttackerKind::kMana,
                                     sim::AttackerKind::kCityHunter};
  std::vector<sim::RunConfig> runs;
  for (int i = 0; i < 6; ++i) {
    sim::RunConfig run;
    run.kind = kinds[i % 2];
    run.venue = (i % 2 == 0) ? mobility::canteen_venue()
                             : mobility::subway_passage_venue();
    run.slot.expected_clients = 60 + 20 * i;
    run.duration = support::SimTime::minutes(4);
    run.run_seed = static_cast<std::uint64_t>(i + 1);
    medium::Medium::Config medium_cfg = world.config().medium;
    medium_cfg.fault.enabled = true;
    medium_cfg.fault.ambient_loss = 0.15;
    medium_cfg.fault.corruption_rate = 0.05;
    run.medium = medium_cfg;
    runs.push_back(std::move(run));
  }
  return runs;
}

void expect_identical(const sim::RunOutput& a, const sim::RunOutput& b) {
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.db_final_size, b.db_final_size);
  EXPECT_EQ(a.frames_transmitted, b.frames_transmitted);
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.medium_stats, b.medium_stats);
  EXPECT_EQ(a.error, b.error);
}

TEST(LossyCampaigns, BitIdenticalAtAnyThreadCount) {
  sim::World world(small_scenario());
  const auto runs = lossy_runs(world);

  std::vector<sim::RunOutput> serial;
  for (const auto& run : runs) {
    serial.push_back(sim::run_campaign(world, run));
  }
  // A lossy run actually loses frames (the fault path is exercised)...
  std::uint64_t lost = 0;
  for (const auto& out : serial) lost += out.medium_stats.frames_lost;
  EXPECT_GT(lost, 0u);

  // ...and 1/2/4 worker threads reproduce the serial results bit for bit.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const auto parallel =
        sim::run_campaigns(world, runs, sim::ParallelConfig{threads});
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads << " run="
                                      << i);
      expect_identical(serial[i], parallel[i]);
    }
  }
}

TEST(LossyCampaigns, LossReducesDeliveriesVersusPerfectChannel) {
  sim::World world(small_scenario());
  sim::RunConfig perfect;
  perfect.kind = sim::AttackerKind::kCityHunter;
  perfect.slot.expected_clients = 120;
  perfect.duration = support::SimTime::minutes(4);
  perfect.run_seed = 3;

  sim::RunConfig lossy = perfect;
  medium::Medium::Config medium_cfg = world.config().medium;
  medium_cfg.fault.enabled = true;
  medium_cfg.fault.ambient_loss = 0.4;
  lossy.medium = medium_cfg;

  const auto clean_out = sim::run_campaign(world, perfect);
  const auto lossy_out = sim::run_campaign(world, lossy);
  EXPECT_EQ(clean_out.medium_stats.frames_lost, 0u);
  EXPECT_GT(lossy_out.medium_stats.frames_lost, 0u);
  // Broadcast traffic eats the 40% ambient floor per receiver; unicast
  // traffic mostly survives via retries and is overheard by every radio in
  // range at near-zero SNR loss, so the aggregate rate sits far below the
  // ambient floor while the absolute counts stay visibly non-zero.
  EXPECT_GT(lossy_out.medium_stats.loss_rate(), 0.005);
  EXPECT_LT(lossy_out.medium_stats.loss_rate(), 0.55);
  EXPECT_GT(lossy_out.medium_stats.retries, 0u);
}

}  // namespace
}  // namespace cityhunter
