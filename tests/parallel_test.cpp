#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/parallel.h"
#include "support/thread_pool.h"

namespace cityhunter {
namespace {

using support::ThreadPool;

// --- ThreadPool ---

TEST(ThreadPool, ReturnsFutureValues) {
  ThreadPool pool(2);
  auto a = pool.submit([] { return 21 * 2; });
  auto b = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, TasksMaySubmitFollowUps) {
  // A task enqueuing more work must not deadlock (workers never hold the
  // queue lock while running a task).
  ThreadPool pool(1);
  std::atomic<int> count{0};
  auto outer = pool.submit([&] {
    ++count;
    return pool.submit([&count] { ++count; });
  });
  outer.get().get();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, QueuedTasksFinishBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { ++count; });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DefaultWorkersHonoursEnvOverride) {
  ::setenv("CITYHUNTER_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_workers(), 3u);
  ::setenv("CITYHUNTER_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_workers(), 1u);
  ::unsetenv("CITYHUNTER_THREADS");
  EXPECT_GE(ThreadPool::default_workers(), 1u);
}

// --- run_campaigns ---

sim::ScenarioConfig small_scenario() {
  sim::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.aps.residential_ap_count = 800;
  cfg.aps.small_venue_count = 400;
  cfg.aps.enterprise_ap_count = 150;
  cfg.photos.photo_count = 8000;
  return cfg;
}

/// Eight runs cycling through every attacker kind with varied seeds and
/// venues; two of them also sample a series.
std::vector<sim::RunConfig> mixed_runs() {
  const sim::AttackerKind kinds[] = {
      sim::AttackerKind::kKarma, sim::AttackerKind::kMana,
      sim::AttackerKind::kPrelim, sim::AttackerKind::kCityHunter};
  std::vector<sim::RunConfig> runs;
  for (int i = 0; i < 8; ++i) {
    sim::RunConfig run;
    run.kind = kinds[i % 4];
    run.venue = (i % 2 == 0) ? mobility::canteen_venue()
                             : mobility::subway_passage_venue();
    run.slot.expected_clients = 80 + 20 * i;
    run.duration = support::SimTime::minutes(5);
    run.run_seed = static_cast<std::uint64_t>(i + 1);
    if (i % 3 == 0) run.sample_every = support::SimTime::minutes(1);
    runs.push_back(std::move(run));
  }
  return runs;
}

void expect_identical(const sim::RunOutput& a, const sim::RunOutput& b) {
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.window_rates, b.window_rates);
  EXPECT_EQ(a.final_pb_size, b.final_pb_size);
  EXPECT_EQ(a.final_fb_size, b.final_fb_size);
  EXPECT_EQ(a.db_final_size, b.db_final_size);
  EXPECT_EQ(a.db_from_direct, b.db_from_direct);
  EXPECT_EQ(a.deauths_sent, b.deauths_sent);
  EXPECT_EQ(a.frames_transmitted, b.frames_transmitted);
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.medium_stats, b.medium_stats);
  EXPECT_EQ(a.error, b.error);
}

TEST(RunCampaigns, ParallelIsBitIdenticalToSerial) {
  sim::World world(small_scenario());
  const auto runs = mixed_runs();

  std::vector<sim::RunOutput> serial;
  serial.reserve(runs.size());
  for (const auto& run : runs) {
    serial.push_back(sim::run_campaign(world, run));
  }

  const auto parallel =
      sim::run_campaigns(world, runs, sim::ParallelConfig{4});
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
  }
}

// --- Warm-start setup cache ---

TEST(RunCampaigns, WarmStartSetupIsBitIdenticalToColdSetup) {
  // The doc contract on sim::SetupCache: sharing the memoized WiGLE seed
  // and venue locale across runs must be observably invisible. Run every
  // mixed config cold (no cache), then twice against one cache — the
  // second sweep hits the snapshot for every run — and demand identical
  // outputs throughout.
  sim::World world(small_scenario());
  const auto runs = mixed_runs();

  sim::SetupCache cache;
  for (const auto& run : runs) {
    const auto cold = sim::run_campaign(world, run);
    const auto warm_miss = sim::run_campaign(world, run, &cache);
    expect_identical(cold, warm_miss);
  }
  const auto misses_after_first_sweep = cache.misses();
  EXPECT_GT(misses_after_first_sweep, 0u);
  for (const auto& run : runs) {
    const auto cold = sim::run_campaign(world, run);
    const auto warm_hit = sim::run_campaign(world, run, &cache);
    expect_identical(cold, warm_hit);
  }
  // The second sweep built nothing new: every lookup was a hit.
  EXPECT_EQ(cache.misses(), misses_after_first_sweep);
  EXPECT_GE(cache.hits(), runs.size());
}

TEST(RunCampaigns, WarmStartToggleDoesNotChangeCampaignOutputs) {
  sim::World world(small_scenario());
  const auto runs = mixed_runs();

  sim::ParallelConfig cold_cfg{1};
  cold_cfg.warm_start_setup = false;
  sim::ParallelConfig warm_cfg{1};
  warm_cfg.warm_start_setup = true;

  const auto cold = sim::run_campaigns(world, runs, cold_cfg);
  const auto warm = sim::run_campaigns(world, runs, warm_cfg);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(cold[i], warm[i]);
  }
}

TEST(RunCampaigns, SetupCacheIsBoundToOneWorld) {
  // A snapshot seeded from one world must never leak into another: the
  // cache binds to the first world it sees and rejects the rest loudly.
  sim::World world_a(small_scenario());
  sim::ScenarioConfig other = small_scenario();
  other.seed = 8;
  sim::World world_b(other);

  sim::SetupCache cache;
  sim::RunConfig run;
  run.kind = sim::AttackerKind::kCityHunter;
  run.duration = support::SimTime::minutes(1);
  run.run_seed = 1;
  (void)sim::run_campaign(world_a, run, &cache);
  EXPECT_THROW((void)sim::run_campaign(world_b, run, &cache),
               std::logic_error);
}

TEST(RunCampaigns, OutputsPreserveInputOrder) {
  sim::World world(small_scenario());
  // Same run at different seeds: outputs must line up with their configs,
  // not with completion order.
  std::vector<sim::RunConfig> runs(3);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    runs[i].kind = sim::AttackerKind::kMana;
    runs[i].slot.expected_clients = 100;
    runs[i].duration = support::SimTime::minutes(5);
    runs[i].run_seed = i + 1;
  }
  const auto outputs = sim::run_campaigns(world, runs, sim::ParallelConfig{3});
  ASSERT_EQ(outputs.size(), 3u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto expected = sim::run_campaign(world, runs[i]);
    SCOPED_TRACE(i);
    expect_identical(expected, outputs[i]);
  }
}

// --- Failure isolation ---

/// Three short runs; the middle one carries a medium override that the
/// Medium constructor rejects, so it deterministically throws inside
/// run_campaign.
std::vector<sim::RunConfig> runs_with_poison(const sim::World& world) {
  std::vector<sim::RunConfig> runs(3);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    runs[i].kind = sim::AttackerKind::kMana;
    runs[i].slot.expected_clients = 80;
    runs[i].duration = support::SimTime::minutes(2);
    runs[i].run_seed = i + 1;
  }
  medium::Medium::Config bad = world.config().medium;
  bad.contention_factor = -1.0;
  runs[1].medium = bad;
  return runs;
}

void expect_failure_isolated(const sim::World& world,
                             const std::vector<sim::RunConfig>& runs,
                             const std::vector<sim::RunOutput>& outputs) {
  ASSERT_EQ(outputs.size(), runs.size());
  // The poisoned run reports its identity and the exception text instead of
  // taking the campaign down. Both attempts throw (the bad config is part
  // of the run), so the default one-retry budget is exhausted.
  EXPECT_EQ(sim::failed_runs(outputs), 1u);
  EXPECT_EQ(outputs[1].error.kind, sim::RunErrorKind::kRetryExhausted)
      << outputs[1].error.str();
  EXPECT_EQ(outputs[1].error.attempts, 2u);
  EXPECT_NE(outputs[1].error.message.find("run_seed=2"), std::string::npos)
      << outputs[1].error.message;
  EXPECT_NE(outputs[1].error.message.find("contention_factor"),
            std::string::npos)
      << outputs[1].error.message;
  EXPECT_EQ(outputs[1].result.total_clients, 0u);
  // Healthy neighbours are untouched: bit-identical to standalone runs.
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    SCOPED_TRACE(i);
    EXPECT_FALSE(outputs[i].error.failed()) << outputs[i].error.str();
    expect_identical(sim::run_campaign(world, runs[i]), outputs[i]);
  }
}

TEST(RunCampaigns, ThrowingRunIsIsolatedInThePool) {
  sim::World world(small_scenario());
  const auto runs = runs_with_poison(world);
  const auto outputs =
      sim::run_campaigns(world, runs, sim::ParallelConfig{4});
  expect_failure_isolated(world, runs, outputs);
}

TEST(RunCampaigns, ThrowingRunIsIsolatedOnTheSerialPath) {
  sim::World world(small_scenario());
  const auto runs = runs_with_poison(world);
  const auto outputs =
      sim::run_campaigns(world, runs, sim::ParallelConfig{1});
  expect_failure_isolated(world, runs, outputs);
}

TEST(RunCampaigns, FailedRunsCountsEveryError) {
  std::vector<sim::RunOutput> outputs(4);
  EXPECT_EQ(sim::failed_runs(outputs), 0u);
  outputs[0].error.kind = sim::RunErrorKind::kException;
  outputs[0].error.message = "run_seed=1 venue=v attacker=a: boom";
  outputs[3].error.kind = sim::RunErrorKind::kDeadlineExceeded;
  outputs[3].error.message = "run_seed=4 venue=v attacker=a: slow";
  EXPECT_EQ(sim::failed_runs(outputs), 2u);
}

TEST(RunCampaigns, SingleThreadAndEmptyInputWork) {
  sim::World world(small_scenario());
  EXPECT_TRUE(sim::run_campaigns(world, {}).empty());

  std::vector<sim::RunConfig> one(1);
  one[0].kind = sim::AttackerKind::kKarma;
  one[0].slot.expected_clients = 60;
  one[0].duration = support::SimTime::minutes(2);
  const auto outputs = sim::run_campaigns(world, one, sim::ParallelConfig{1});
  ASSERT_EQ(outputs.size(), 1u);
  expect_identical(sim::run_campaign(world, one[0]), outputs[0]);
}

}  // namespace
}  // namespace cityhunter
