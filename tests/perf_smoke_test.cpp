// Hot-path allocation budget smoke test (ctest label: perf).
//
// Counts global operator new calls (bench/alloc_counter.h, enabled via
// CITYHUNTER_COUNT_ALLOCS on this target only) across a steady-state
// transmit→schedule→deliver→parse loop and fails if the per-frame
// allocation budget is exceeded. This is the enforcement half of the
// pooled-codec / inline-event / flat-radio-table overhaul: a regression
// that reintroduces a std::function heap capture, a per-transmit wire
// buffer, or per-parse IE storage shows up here as a hard failure, not a
// gradual wallclock slide.
#include "alloc_counter.h"  // must precede any allocation in this TU

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "city_scale.h"
#include "dot11/frame.h"
#include "medium/event_queue.h"
#include "medium/medium.h"
#include "obs/trace.h"
#include "sim/parallel.h"
#include "sim/shard.h"

namespace cityhunter {
namespace {

class CountingSink : public medium::FrameSink {
 public:
  void on_frame(const dot11::Frame& frame, const medium::RxInfo&) override {
    ++frames;
    last_subtype = frame.subtype();
  }
  std::uint64_t frames = 0;
  dot11::MgmtSubtype last_subtype{};
};

// Steady state after warm-up: one full transmit→deliver round trip per
// frame must average at most kBudgetPerFrame heap allocations (the design
// target is zero on the fault-off path; the budget leaves headroom for
// incidental growth such as a heap/backlog vector doubling mid-run).
constexpr std::uint64_t kBudgetPerFrame = 1;

TEST(PerfSmokeTest, SteadyStateTransmitStaysWithinAllocationBudget) {
  medium::EventQueue events;
  medium::Medium med(events);

  CountingSink rx;
  auto ap = med.attach({0, 0}, 6, 20.0);
  auto phone = med.attach({25, 0}, 6, 15.0, &rx);
  (void)phone;

  const dot11::MacAddress bssid({0x02, 0xaa, 0, 0, 0, 1});
  const dot11::MacAddress client({0x02, 0xbb, 0, 0, 0, 2});

  dot11::Frame scratch;
  std::uint16_t seq = 0;
  const auto send_one = [&] {
    dot11::make_probe_response_into(scratch, bssid, client, "golden-cafe", 6,
                                    /*open=*/true, seq = (seq + 1) & 0x0fff);
    ap.transmit(scratch);
    events.run_all();
  };

  // Warm up: first frames populate the transmission pool, event slab, IE
  // backing buffers and deliver scratch.
  for (int i = 0; i < 256; ++i) send_one();
  const std::uint64_t frames_before = rx.frames;

  constexpr std::uint64_t kFrames = 1000;
  const std::uint64_t allocs_before = bench::alloc_count();
  for (std::uint64_t i = 0; i < kFrames; ++i) send_one();
  const std::uint64_t allocs = bench::alloc_count() - allocs_before;

  EXPECT_EQ(rx.frames - frames_before, kFrames)
      << "every measured frame must actually be delivered";
  EXPECT_EQ(rx.last_subtype, dot11::MgmtSubtype::kProbeResponse);
  EXPECT_LE(allocs, kFrames * kBudgetPerFrame)
      << "steady-state hot path exceeded the per-frame allocation budget: "
      << allocs << " allocations for " << kFrames << " frames";
}

// Same loop with structured tracing attached. The trace ring is storage
// allocated once up front; record() is an array store, so tracing may add at
// most 1 allocation per 100 frames of incidental slack on top of the normal
// per-frame budget.
TEST(PerfSmokeTest, TracingEnabledStaysWithinAllocationCeiling) {
  medium::EventQueue events;
  medium::Medium med(events);
  obs::TraceBuffer trace(4096);  // allocated here, before the measured loop
  med.set_trace(&trace);

  CountingSink rx;
  auto ap = med.attach({0, 0}, 6, 20.0);
  auto phone = med.attach({25, 0}, 6, 15.0, &rx);
  (void)phone;

  const dot11::MacAddress bssid({0x02, 0xaa, 0, 0, 0, 1});
  const dot11::MacAddress client({0x02, 0xbb, 0, 0, 0, 2});

  dot11::Frame scratch;
  std::uint16_t seq = 0;
  const auto send_one = [&] {
    dot11::make_probe_response_into(scratch, bssid, client, "golden-cafe", 6,
                                    /*open=*/true, seq = (seq + 1) & 0x0fff);
    ap.transmit(scratch);
    events.run_all();
  };

  for (int i = 0; i < 256; ++i) send_one();
  const std::uint64_t frames_before = rx.frames;
  const std::uint64_t recorded_before = trace.total_recorded();

  constexpr std::uint64_t kFrames = 1000;
  const std::uint64_t allocs_before = bench::alloc_count();
  for (std::uint64_t i = 0; i < kFrames; ++i) send_one();
  const std::uint64_t allocs = bench::alloc_count() - allocs_before;

  EXPECT_EQ(rx.frames - frames_before, kFrames);
  // Each frame traces at least its transmit + deliver, so tracing was live.
  EXPECT_GE(trace.total_recorded() - recorded_before, 2 * kFrames);
  EXPECT_LE(allocs, kFrames * kBudgetPerFrame + kFrames / 100)
      << "tracing-enabled hot path exceeded the allocation ceiling: "
      << allocs << " allocations for " << kFrames << " frames";
}

// Deliver-throughput floor on the batched SoA pipeline (the Medium default):
// a 1024-radio crowd fanning broadcast probes out to ~30 neighbours each
// must sustain a floor set ~25x below what this path measures on a single
// modest core (≥1M deliveries/s in bench/fig_city_scale), so only a
// wholesale regression — e.g. the per-frame sort or exact log10 creeping
// back into the fanout — trips it, not scheduler jitter. The same loop
// enforces the ≤1 allocation/frame ceiling on the batched path.
TEST(PerfSmokeTest, BatchedDeliverThroughputStaysAboveFloor) {
  medium::EventQueue events;
  medium::Medium med(events);  // default config == batched SoA pipeline

  CountingSink rx;
  std::vector<medium::Radio> radios;
  constexpr int kSide = 32;  // 1024 radios, 18 m pitch
  radios.reserve(kSide * kSide);
  for (int y = 0; y < kSide; ++y) {
    for (int x = 0; x < kSide; ++x) {
      radios.push_back(med.attach({x * 18.0, y * 18.0}, 6, 20.0, &rx));
    }
  }

  const dot11::Frame probe = dot11::make_broadcast_probe_request(
      dot11::MacAddress({0x02, 0xcc, 0, 0, 0, 3}));
  std::size_t next = 0;
  const auto send_one = [&] {
    radios[next].transmit(probe);
    next = (next + 1) % radios.size();
    events.run_all();
  };

  for (int i = 0; i < 256; ++i) send_one();  // warm pools, slab, scratch

  constexpr std::uint64_t kTransmits = 2000;
  const std::uint64_t frames_before = rx.frames;
  const std::uint64_t allocs_before = bench::alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kTransmits; ++i) send_one();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::uint64_t allocs = bench::alloc_count() - allocs_before;
  const std::uint64_t delivered = rx.frames - frames_before;

  ASSERT_GT(delivered, kTransmits * 10)
      << "crowd geometry must actually fan out";
  constexpr double kFloorDeliveriesPerSec = 50'000.0;
  EXPECT_GE(static_cast<double>(delivered) / wall_s, kFloorDeliveriesPerSec)
      << delivered << " deliveries in " << wall_s << " s";
  EXPECT_LE(allocs, kTransmits * kBudgetPerFrame)
      << "batched fanout exceeded the per-frame allocation budget: " << allocs
      << " allocations for " << kTransmits << " transmitted frames";
}

// Intra-run sharding must actually buy wall-clock on real multicore
// hardware: the 10k-radio district (the ISSUE's acceptance scenario scaled
// to smoke duration) at 4 intra-run workers versus the serial batched run.
// Skipped below 4 hardware threads — there is nothing to scale onto — and
// under sanitizers, whose instrumentation distorts timing far beyond the
// asserted margin. Best-of-2 per configuration damps scheduler jitter.
TEST(PerfSmokeTest, IntraRunShardingScalesOnMulticore) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "sanitizer build: timing assertions are meaningless";
#else
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have " << hw;
  }
  bench::CityScaleParams params;
  params.radios = 10000;
  params.duration = support::SimTime::seconds(2.0);

  medium::Medium::Config serial_cfg;  // defaults: batched + SIMD, 1 worker
  medium::Medium::Config sharded_cfg;
  sharded_cfg.intra_run_workers = 4;

  const auto best_of = [&](const medium::Medium::Config& cfg) {
    bench::CityScaleResult best = bench::run_city_scale(params, cfg);
    const bench::CityScaleResult again = bench::run_city_scale(params, cfg);
    if (again.wall_s < best.wall_s) best = again;
    return best;
  };
  const auto serial = best_of(serial_cfg);
  const auto sharded = best_of(sharded_cfg);

  // Bit-identical output is non-negotiable regardless of timing.
  ASSERT_EQ(serial.transmissions, sharded.transmissions);
  ASSERT_EQ(serial.deliveries, sharded.deliveries);

  EXPECT_GE(serial.wall_s / sharded.wall_s, 2.0)
      << "4-worker sharded run must be >= 2x the serial batched run: serial "
      << serial.wall_s << " s, sharded " << sharded.wall_s << " s";
#endif
}

// Checkpointing must be close to free at the default cadence: the fig6 mix
// scaled to smoke size (all 4 venues, the first 6 hourly slots each, 1-min
// runs), run serially with and without a checkpoint file, may differ by at
// most 2% wallclock. Each write re-encodes every completed output and
// fsyncs twice, so this ceiling is what keeps the cadence writer honest
// about staying off the hot path — and the short runs make it the HARDER
// version of the ISSUE's full-mix ceiling, since the fixed per-write cost
// amortises over less wall. Best-of-3 interleaved passes damp scheduler
// jitter; skipped under sanitizers like every other timing assertion here.
TEST(PerfSmokeTest, CheckpointCadenceOverheadStaysUnderTwoPercent) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "sanitizer build: timing assertions are meaningless";
#else
  sim::ScenarioConfig scenario;
  scenario.seed = 42;
  scenario.aps.residential_ap_count = 800;
  scenario.aps.small_venue_count = 400;
  scenario.aps.enterprise_ap_count = 150;
  scenario.photos.photo_count = 8000;
  const sim::World world(scenario);

  const mobility::VenueConfig venues[] = {
      mobility::subway_passage_venue(), mobility::canteen_venue(),
      mobility::shopping_center_venue(), mobility::railway_station_venue()};
  std::vector<sim::RunConfig> runs;
  for (int venue_index = 0; venue_index < 4; ++venue_index) {
    for (int slot = 0; slot < 6; ++slot) {
      sim::RunConfig run;
      run.kind = sim::AttackerKind::kCityHunter;
      run.venue = venues[venue_index];
      run.slot.expected_clients =
          run.venue.hourly_clients[static_cast<std::size_t>(slot)];
      run.duration = support::SimTime::minutes(1);
      run.run_seed = static_cast<std::uint64_t>(venue_index * 100 + slot + 1);
      runs.push_back(std::move(run));
    }
  }

  const std::string ckpt_path =
      std::string(::testing::TempDir()) + "perf_cadence.ckpt";
  sim::ParallelConfig plain{1};
  sim::ParallelConfig checkpointed{1};
  checkpointed.checkpoint_path = ckpt_path;
  checkpointed.checkpoint_every = 8;

  double best_plain_s = 0.0, best_ckpt_s = 0.0;
  std::uint64_t writes = 0;
  for (int pass = 0; pass < 3; ++pass) {
    sim::ParallelStats stats;
    (void)sim::run_campaigns(world, runs, plain, &stats);
    if (pass == 0 || stats.wall_s < best_plain_s) best_plain_s = stats.wall_s;
    (void)sim::run_campaigns(world, runs, checkpointed, &stats);
    if (pass == 0 || stats.wall_s < best_ckpt_s) best_ckpt_s = stats.wall_s;
    ASSERT_EQ(stats.checkpoint_write_failures, 0u);
    writes = stats.checkpoint_writes;
  }
  std::remove(ckpt_path.c_str());

  // 24 runs at cadence 8: the boundary writes at 8, 16, 24 and no others.
  EXPECT_EQ(writes, 3u);
  ASSERT_GT(best_plain_s, 0.0);
  EXPECT_LE(best_ckpt_s, best_plain_s * 1.02)
      << "checkpointing every 8 runs cost "
      << 100.0 * (best_ckpt_s / best_plain_s - 1.0)
      << "% on the fig6 mix: plain " << best_plain_s << " s, checkpointed "
      << best_ckpt_s << " s";
#endif
}

// Index-efficiency floor on the channel-mixed district: counter-based, so
// it runs everywhere (sanitizers included) — no timing involved. The
// channel-partitioned index may stream essentially nothing past the fused
// key filter (pinned ceiling: 0.1% of loads), while the pre-PR8 mixed
// layout must be paying at least 5x more wasted loads on the same
// workload — the margin the ISSUE's acceptance criterion names for
// machines where a wallclock comparison would only measure noise.
TEST(PerfSmokeTest, ChannelPartitionedIndexWasteStaysBelowCeiling) {
  bench::CityScaleParams params;
  params.radios = 2000;
  params.area_m = 900.0;
  params.duration = support::SimTime::seconds(2.0);

  medium::Medium::Config mixed_cfg;
  mixed_cfg.channel_buckets = false;
  const bench::CityScaleResult part =
      bench::run_city_scale(params, medium::Medium::Config{});
  const bench::CityScaleResult mixed =
      bench::run_city_scale(params, mixed_cfg);

  // Identical behaviour is a precondition for comparing the counters.
  ASSERT_EQ(part.transmissions, mixed.transmissions);
  ASSERT_EQ(part.deliveries, mixed.deliveries);
  ASSERT_GT(part.candidates_loaded, 0u);

  const double waste_ratio =
      static_cast<double>(part.wasted_candidates) /
      static_cast<double>(part.candidates_loaded);
  EXPECT_LE(waste_ratio, 0.001)
      << part.wasted_candidates << " wasted of " << part.candidates_loaded
      << " loaded candidates";
  EXPECT_GE(mixed.wasted_candidates,
            5 * std::max<std::uint64_t>(part.wasted_candidates, 1))
      << "mixed-channel index wasted " << mixed.wasted_candidates
      << " loads vs " << part.wasted_candidates << " partitioned";
}

// The sharded city's scaling claim (ISSUE 10 acceptance): on a >= 4-thread
// host, the 4-shard city must deliver at >= 3x the single-Medium throughput
// — with byte-identical deliveries, asserted before any timing is trusted.
// The smoke shrinks the acceptance scenario's 100k radios to 20k so ctest
// stays fast; the geometry, the conservative barrier and the handoff
// machinery are exactly the full-size ones. Skipped below 4 hardware
// threads and under sanitizers, like every timing assertion in this file.
TEST(PerfSmokeTest, ShardedCityScalesOnMulticore) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "sanitizer build: timing assertions are meaningless";
#else
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have " << hw;
  }
  sim::ShardedCityConfig cfg;  // default 8x2 districts, 136 m gaps
  cfg.radios = 20000;
  cfg.duration = support::SimTime::seconds(8.0);

  const auto best_of = [](const sim::ShardedCityConfig& c) {
    sim::ShardedCityResult best = sim::run_sharded_city(c);
    sim::ShardedCityResult again = sim::run_sharded_city(c);
    if (again.wall_s < best.wall_s) best = std::move(again);
    return best;
  };
  auto single_cfg = cfg;
  single_cfg.shards = 1;
  auto sharded_cfg = cfg;
  sharded_cfg.shards = 4;
  sharded_cfg.workers = 4;
  const auto single = best_of(single_cfg);
  const auto sharded = best_of(sharded_cfg);

  // Byte-identical output is non-negotiable regardless of timing.
  ASSERT_GT(single.deliveries, 0u);
  ASSERT_EQ(single.transmissions, sharded.transmissions);
  ASSERT_EQ(single.deliveries, sharded.deliveries);
  ASSERT_EQ(single.gap_silences, sharded.gap_silences);
  ASSERT_EQ(single.delivery_digest, sharded.delivery_digest);

  EXPECT_GE(single.wall_s / sharded.wall_s, 3.0)
      << "4-shard city must deliver >= 3x the single-Medium throughput: "
      << "single " << single.wall_s << " s, sharded " << sharded.wall_s
      << " s (" << sharded.handoffs << " handoffs)";
#endif
}

TEST(PerfSmokeTest, CounterIsLive) {
  // Guard against the counter silently compiling out (e.g. the macro not
  // reaching this target): an explicit heap allocation must register.
  const std::uint64_t before = bench::alloc_count();
  auto* p = new std::uint64_t(42);
  const std::uint64_t after = bench::alloc_count();
  delete p;
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace cityhunter
