#include <gtest/gtest.h>

#include "cache/arc_cache.h"
#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"
#include "support/rng.h"

namespace cityhunter::cache {
namespace {

// --- LRU ---

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  EXPECT_TRUE(c.get(1).has_value());  // touch 1 -> 2 becomes LRU
  c.put(3, 30);
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(3));
}

TEST(LruCache, PutUpdatesValueAndRecency) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  c.put(1, 11);  // refresh 1
  c.put(3, 30);  // evicts 2
  EXPECT_EQ(c.get(1).value_or(-1), 11);
  EXPECT_FALSE(c.contains(2));
}

TEST(LruCache, PeekDoesNotTouch) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  EXPECT_EQ(c.peek(1).value_or(-1), 10);  // no recency change
  c.put(3, 30);                           // 1 still LRU -> evicted
  EXPECT_FALSE(c.contains(1));
}

TEST(LruCache, CapacityInvariant) {
  LruCache<int, int> c(5);
  for (int i = 0; i < 100; ++i) c.put(i, i);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_THROW((LruCache<int, int>(0)), std::invalid_argument);
}

// --- LFU ---

TEST(LfuCache, EvictsLeastFrequentlyUsed) {
  LfuCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  c.get(1);
  c.get(1);  // freq(1)=3, freq(2)=1
  c.put(3, 30);
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(1));
}

TEST(LfuCache, TracksFrequency) {
  LfuCache<int, int> c(3);
  c.put(7, 70);
  EXPECT_EQ(c.frequency(7), 1u);
  c.get(7);
  c.get(7);
  EXPECT_EQ(c.frequency(7), 3u);
  EXPECT_EQ(c.frequency(99), 0u);
}

TEST(LfuCache, LruTieBreakWithinFrequencyClass) {
  LfuCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);  // both freq 1; 1 is older
  c.put(3, 30);  // evict LRU of freq-1 class = 1
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(LfuCache, CapacityInvariant) {
  LfuCache<int, int> c(4);
  support::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const int k = static_cast<int>(rng.uniform_int(0, 50));
    if (!c.get(k)) c.put(k, k);
    ASSERT_LE(c.size(), 4u);
  }
}

// --- ARC ---

TEST(ArcCache, BasicHitMiss) {
  ArcCache<int, int> c(4);
  EXPECT_FALSE(c.get(1).has_value());
  c.put(1, 10);
  EXPECT_EQ(c.get(1).value_or(-1), 10);
  EXPECT_TRUE(c.contains(1));
  EXPECT_EQ(c.size(), 1u);
}

TEST(ArcCache, NeverExceedsCapacity) {
  ArcCache<int, int> c(8);
  support::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const int k = static_cast<int>(rng.zipf(100, 0.8));
    if (!c.get(k)) c.put(k, k * 2);
    ASSERT_LE(c.size(), 8u);
    ASSERT_LE(c.t1_size() + c.b1_size(), 8u);  // ARC invariant |T1|+|B1| <= c
    ASSERT_LE(c.t1_size() + c.t2_size() + c.b1_size() + c.b2_size(), 16u);
  }
}

TEST(ArcCache, EvictedKeyGoesToGhost) {
  ArcCache<int, int> c(2);
  c.put(1, 1);
  c.put(2, 2);
  c.get(1);     // promote 1 to T2; T1 = {2}
  c.put(3, 3);  // REPLACE demotes T1's LRU (2) into ghost B1
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.in_ghost(2));
  EXPECT_FALSE(c.contains(2));
}

TEST(ArcCache, FullT1EvictsWithoutGhosting) {
  // ARC Case IV(a), |T1| == c with B1 empty: the LRU of T1 leaves the cache
  // entirely (Megiddo & Modha delete it without recording a ghost).
  ArcCache<int, int> c(2);
  c.put(1, 1);
  c.put(2, 2);
  c.put(3, 3);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.contains(1));
  EXPECT_FALSE(c.in_ghost(1));
}

TEST(ArcCache, GhostHitAdaptsRecencyTarget) {
  ArcCache<int, int> c(2);
  c.put(1, 1);
  c.put(2, 2);
  c.get(1);     // 1 -> T2, T1 = {2}
  c.put(3, 3);  // 2 -> B1 ghost
  ASSERT_TRUE(c.in_ghost(2));
  const auto p_before = c.recency_target();
  c.put(2, 2);  // ghost hit in B1: p must grow (favour recency)
  EXPECT_GT(c.recency_target(), p_before);
  EXPECT_TRUE(c.contains(2));
}

TEST(ArcCache, FrequentItemsSurviveScanFlood) {
  // The signature ARC behaviour: a scan of one-shot keys must not wipe out
  // the frequently reused working set (unlike LRU).
  ArcCache<int, int> arc(10);
  LruCache<int, int> lru(10);
  // Establish a hot working set, reused many times.
  for (int round = 0; round < 5; ++round) {
    for (int k = 0; k < 5; ++k) {
      if (!arc.get(k)) arc.put(k, k);
      if (!lru.get(k)) lru.put(k, k);
    }
  }
  // Flood with 100 one-shot keys.
  for (int k = 1000; k < 1100; ++k) {
    arc.put(k, k);
    lru.put(k, k);
  }
  int arc_kept = 0, lru_kept = 0;
  for (int k = 0; k < 5; ++k) {
    if (arc.contains(k)) ++arc_kept;
    if (lru.contains(k)) ++lru_kept;
  }
  EXPECT_EQ(lru_kept, 0);      // LRU lost everything
  EXPECT_GT(arc_kept, 2);      // ARC kept most of the hot set
}

TEST(ArcCache, HitRateBeatsLruOnMixedWorkload) {
  // Zipf-skewed reuse plus periodic scans: ARC should match or beat LRU.
  ArcCache<int, int> arc(32);
  LruCache<int, int> lru(32);
  support::Rng rng(11);
  int arc_hits = 0, lru_hits = 0, total = 0;
  for (int i = 0; i < 20000; ++i) {
    int k;
    if (i % 10 == 9) {
      k = 100000 + i;  // scan key, never reused
    } else {
      k = static_cast<int>(rng.zipf(200, 1.1));
    }
    ++total;
    if (arc.get(k)) {
      ++arc_hits;
    } else {
      arc.put(k, k);
    }
    if (lru.get(k)) {
      ++lru_hits;
    } else {
      lru.put(k, k);
    }
  }
  EXPECT_GE(arc_hits, lru_hits) << "ARC " << arc_hits << " vs LRU "
                                << lru_hits << " of " << total;
}

TEST(ArcCache, UpdateExistingKey) {
  ArcCache<int, int> c(4);
  c.put(1, 10);
  c.put(1, 11);
  EXPECT_EQ(c.get(1).value_or(-1), 11);
  EXPECT_EQ(c.size(), 1u);
}

TEST(ArcCache, GhostResurrectionRestoresValueFreshly) {
  ArcCache<int, int> c(2);
  c.put(1, 111);
  c.put(2, 2);
  c.get(1);       // 1 -> T2
  c.put(3, 3);    // 2 ghosted, value dropped
  ASSERT_TRUE(c.in_ghost(2));
  c.put(2, 999);  // resurrect via ghost-hit path
  EXPECT_EQ(c.get(2).value_or(-1), 999);
}

TEST(ArcCache, RejectsZeroCapacity) {
  EXPECT_THROW((ArcCache<int, int>(0)), std::invalid_argument);
}

// Parameterised sweep: for several capacities, a pure-recency workload keeps
// working-set keys resident.
class ArcCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArcCapacity, SequentialWorkingSetFits) {
  const std::size_t cap = GetParam();
  ArcCache<int, int> c(cap);
  // Touch keys 0..cap-1 twice: all should be resident afterwards.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t k = 0; k < cap; ++k) {
      if (!c.get(static_cast<int>(k))) c.put(static_cast<int>(k), 1);
    }
  }
  for (std::size_t k = 0; k < cap; ++k) {
    EXPECT_TRUE(c.contains(static_cast<int>(k))) << "cap=" << cap << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, ArcCapacity,
                         ::testing::Values(1, 2, 3, 8, 40, 129));

}  // namespace
}  // namespace cityhunter::cache
