// Chaos harness drills (ctest label: chaos, tsan-clean).
//
// Proves the run supervisor survives everything the chaos layer can throw
// at it:
//   * injected throw    -> retried clean, final output byte-identical;
//   * injected hang     -> watchdog classifies kDeadlineExceeded, retry
//                          recovers, backoff schedule is deterministic;
//   * poisoned schedule -> PastScheduleError surfaces as a classified
//                          kException, not an anonymous crash;
//   * event budget      -> kEventBudgetExceeded;
//   * cancellation      -> kCancelled and never retried;
//   * SIGKILL mid-campaign (subprocess, fork+exec of this binary with
//     --chaos-child) -> resume from the checkpoint converges to the
//     byte-identical uninterrupted output, at 1 and 4 workers.
//
// The RunGuard primitives in medium/event_queue get their unit coverage
// here too, next to the supervisor behaviour they exist for.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "medium/event_queue.h"
#include "sim/checkpoint.h"
#include "sim/parallel.h"
#include "support/atomic_file.h"

namespace cityhunter {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* name)
      : path_(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

sim::ScenarioConfig chaos_scenario() {
  sim::ScenarioConfig cfg;
  cfg.seed = 13;
  cfg.aps.residential_ap_count = 800;
  cfg.aps.small_venue_count = 400;
  cfg.aps.enterprise_ap_count = 150;
  cfg.photos.photo_count = 8000;
  return cfg;
}

std::vector<sim::RunConfig> chaos_runs(std::size_t count = 6) {
  std::vector<sim::RunConfig> runs(count);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    runs[i].kind = (i % 2 == 0) ? sim::AttackerKind::kMana
                                : sim::AttackerKind::kCityHunter;
    runs[i].venue = (i % 2 == 0) ? mobility::canteen_venue()
                                 : mobility::subway_passage_venue();
    runs[i].slot.expected_clients = 50.0 + 10.0 * static_cast<double>(i);
    runs[i].duration = support::SimTime::minutes(2);
    runs[i].run_seed = i + 1;
  }
  return runs;
}

/// Length-prefixed concatenation of every output's canonical bytes — the
/// unit of byte-identity the kill-and-resume drill compares across
/// processes.
std::string outputs_blob(const std::vector<sim::RunOutput>& outputs) {
  std::string blob;
  for (const auto& out : outputs) {
    const std::string bytes = sim::run_output_bytes(out);
    const std::uint32_t n = static_cast<std::uint32_t>(bytes.size());
    blob.append(reinterpret_cast<const char*>(&n), sizeof(n));
    blob.append(bytes);
  }
  return blob;
}

// --- RunGuard / EventQueue primitives ---

TEST(RunGuard, EventBudgetTripsWithItsOwnKind) {
  medium::EventQueue events;
  // A self-rescheduling tick would run forever; the budget must cut it off.
  std::uint64_t fired = 0;
  const auto schedule = [&events, &fired](auto&& self) -> void {
    events.post_in(support::SimTime::microseconds(1), [&fired, self]() mutable {
      ++fired;
      self(self);
    });
  };
  schedule(schedule);
  medium::RunGuard guard;
  guard.max_events = 100;
  events.arm_guard(guard);
  try {
    events.run_until(support::SimTime::seconds(10));
    FAIL() << "budget never tripped (fired " << fired << ")";
  } catch (const medium::RunAbortError& e) {
    EXPECT_EQ(e.kind(), medium::RunAbortError::Kind::kEventBudgetExceeded);
  }
  EXPECT_LE(fired, 100u);
}

TEST(RunGuard, DeadlineTripsWithItsOwnKind) {
  medium::EventQueue events;
  const auto schedule = [&events](auto&& self) -> void {
    events.post_in(support::SimTime::microseconds(1),
                   [self]() mutable { self(self); });
  };
  schedule(schedule);
  medium::RunGuard guard;
  guard.deadline_s = 1e-9;  // already elapsed by the first stride check
  events.arm_guard(guard);
  EXPECT_THROW(
      {
        try {
          events.run_until(support::SimTime::seconds(10));
        } catch (const medium::RunAbortError& e) {
          EXPECT_EQ(e.kind(), medium::RunAbortError::Kind::kDeadlineExceeded);
          throw;
        }
      },
      medium::RunAbortError);
}

TEST(RunGuard, CancelFlagTripsWithItsOwnKind) {
  medium::EventQueue events;
  events.post_in(support::SimTime::microseconds(1), [] {});
  std::atomic<bool> cancel{true};
  medium::RunGuard guard;
  guard.cancel = &cancel;
  events.arm_guard(guard);
  EXPECT_THROW(
      {
        try {
          events.run_until(support::SimTime::seconds(1));
        } catch (const medium::RunAbortError& e) {
          EXPECT_EQ(e.kind(), medium::RunAbortError::Kind::kCancelled);
          throw;
        }
      },
      medium::RunAbortError);
}

TEST(RunGuard, DefaultGuardNeverTrips) {
  medium::EventQueue events;
  int fired = 0;
  for (int i = 0; i < 5000; ++i) {
    events.post_in(support::SimTime::microseconds(i), [&fired] { ++fired; });
  }
  events.arm_guard(medium::RunGuard{});
  events.run_all();
  EXPECT_EQ(fired, 5000);
}

TEST(EventQueue, PastSchedulingIsAStructuredError) {
  medium::EventQueue events;
  events.post_in(support::SimTime::seconds(1), [] {});
  events.run_all();  // now() == 1s
  try {
    events.post_at(support::SimTime::microseconds(10), [] {});
    FAIL() << "scheduling in the past was accepted";
  } catch (const medium::PastScheduleError& e) {
    EXPECT_EQ(e.now(), support::SimTime::seconds(1));
    EXPECT_EQ(e.requested(), support::SimTime::microseconds(10));
    EXPECT_NE(std::string(e.what()).find("scheduling in the past"),
              std::string::npos)
        << e.what();
  }
}

// --- deterministic backoff ---

TEST(RetryBackoff, ScheduleIsPureAndExponential) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    for (std::uint32_t attempt = 0; attempt < 6; ++attempt) {
      SCOPED_TRACE(attempt);
      const double d = sim::retry_backoff_s(seed, attempt);
      // Re-evaluation gives the exact same delay: no wallclock, no global
      // RNG.
      EXPECT_EQ(d, sim::retry_backoff_s(seed, attempt));
      // Exponential envelope: base 1ms * 2^attempt plus jitter < base.
      const double base = 0.001 * static_cast<double>(1u << attempt);
      EXPECT_GE(d, base);
      EXPECT_LT(d, 2.0 * base);
    }
  }
  // Different seeds jitter differently (with overwhelming likelihood for
  // these fixed inputs — asserted as a regression pin, not a probability).
  EXPECT_NE(sim::retry_backoff_s(1, 0), sim::retry_backoff_s(2, 0));
}

// --- ChaosConfig env parsing ---

TEST(ChaosConfig, ParsesEnvKnobs) {
  ::setenv("CITYHUNTER_CHAOS", "throw=1,hang=2,poison=0,kill_after=7", 1);
  const auto c = sim::ChaosConfig::from_env();
  EXPECT_EQ(c.throw_run, 1);
  EXPECT_EQ(c.hang_run, 2);
  EXPECT_EQ(c.poison_run, 0);
  EXPECT_EQ(c.kill_after, 7);
  ::setenv("CITYHUNTER_CHAOS", "hang=3,garbage,alpha=beta", 1);
  const auto partial = sim::ChaosConfig::from_env();
  EXPECT_EQ(partial.hang_run, 3);
  EXPECT_EQ(partial.throw_run, -1);
  ::unsetenv("CITYHUNTER_CHAOS");
  EXPECT_FALSE(sim::ChaosConfig::from_env().any());
}

// --- supervisor recovery (shared World, built once per process) ---

class ChaosCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new sim::World(chaos_scenario()); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static sim::World* world_;
};

sim::World* ChaosCampaignTest::world_ = nullptr;

TEST_F(ChaosCampaignTest, InjectedThrowIsRetriedToIdenticalOutput) {
  const auto runs = chaos_runs(3);
  const auto clean = sim::run_campaigns(*world_, runs, {1});
  ASSERT_EQ(sim::failed_runs(clean), 0u);

  sim::ParallelConfig cfg{1};
  cfg.chaos.throw_run = 1;
  sim::ParallelStats stats;
  const auto chaosed = sim::run_campaigns(*world_, runs, cfg, &stats);
  EXPECT_EQ(sim::failed_runs(chaosed), 0u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(outputs_blob(clean), outputs_blob(chaosed));
}

TEST_F(ChaosCampaignTest, InjectedHangIsClassifiedDeadlineAndRecovered) {
  const auto runs = chaos_runs(2);
  const auto clean = sim::run_campaigns(*world_, runs, {1});
  ASSERT_EQ(sim::failed_runs(clean), 0u);

  sim::ParallelConfig cfg{1};
  cfg.chaos.hang_run = 0;
  sim::ParallelStats stats;
  const auto chaosed = sim::run_campaigns(*world_, runs, cfg, &stats);
  // The watchdog caught the hang (classified kDeadlineExceeded -> timeouts
  // counter), the retry ran clean, and the final output is unscathed.
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(sim::failed_runs(chaosed), 0u);
  EXPECT_EQ(outputs_blob(clean), outputs_blob(chaosed));
}

TEST_F(ChaosCampaignTest, HangWithoutRetriesSurfacesDeadlineExceeded) {
  auto runs = chaos_runs(1);
  runs[0].max_retries = 0;
  sim::ParallelConfig cfg{1};
  cfg.chaos.hang_run = 0;
  sim::ParallelStats stats;
  const auto outputs = sim::run_campaigns(*world_, runs, cfg, &stats);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].error.kind, sim::RunErrorKind::kDeadlineExceeded)
      << outputs[0].error.str();
  EXPECT_EQ(outputs[0].error.attempts, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_NE(outputs[0].error.message.find("run_seed=1"), std::string::npos)
      << outputs[0].error.message;
}

TEST_F(ChaosCampaignTest, PoisonedScheduleIsAClassifiedException) {
  auto runs = chaos_runs(1);
  runs[0].max_retries = 0;
  sim::ParallelConfig cfg{1};
  cfg.chaos.poison_run = 0;
  const auto outputs = sim::run_campaigns(*world_, runs, cfg);
  ASSERT_EQ(outputs.size(), 1u);
  // Regression net for the taxonomy satellite: the queue's past-scheduling
  // guard must arrive as a classified failure with its structured message,
  // not as an unhandled std::runtime_error killing the campaign.
  EXPECT_EQ(outputs[0].error.kind, sim::RunErrorKind::kException)
      << outputs[0].error.str();
  EXPECT_NE(outputs[0].error.message.find("scheduling in the past"),
            std::string::npos)
      << outputs[0].error.message;
}

TEST_F(ChaosCampaignTest, EventBudgetTripSurfacesItsOwnKind) {
  auto runs = chaos_runs(1);
  runs[0].max_sim_events = 500;  // a 2-minute venue run needs far more
  runs[0].max_retries = 0;
  sim::ParallelStats stats;
  const auto outputs = sim::run_campaigns(*world_, runs, {1}, &stats);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].error.kind, sim::RunErrorKind::kEventBudgetExceeded)
      << outputs[0].error.str();
  EXPECT_EQ(stats.event_budget_trips, 1u);
}

TEST_F(ChaosCampaignTest, ExhaustedRetriesKeepTheLastFailure) {
  auto runs = chaos_runs(1);
  runs[0].max_sim_events = 500;  // trips on every attempt
  runs[0].max_retries = 2;
  sim::ParallelStats stats;
  const auto outputs = sim::run_campaigns(*world_, runs, {1}, &stats);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].error.kind, sim::RunErrorKind::kRetryExhausted)
      << outputs[0].error.str();
  EXPECT_EQ(outputs[0].error.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.event_budget_trips, 3u);
}

TEST_F(ChaosCampaignTest, CancelledRunIsNeverRetried) {
  auto runs = chaos_runs(1);
  std::atomic<bool> cancel{true};
  runs[0].cancel = &cancel;
  sim::ParallelStats stats;
  const auto outputs = sim::run_campaigns(*world_, runs, {1}, &stats);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].error.kind, sim::RunErrorKind::kCancelled)
      << outputs[0].error.str();
  EXPECT_EQ(outputs[0].error.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST_F(ChaosCampaignTest, SupervisorLimitsAreValidated) {
  auto runs = chaos_runs(1);
  runs[0].deadline_s = -1.0;
  EXPECT_THROW(
      { (void)sim::run_campaign(*world_, runs[0]); }, std::invalid_argument);

  runs[0].deadline_s = 0.0;
  runs[0].max_retries = 9;
  EXPECT_THROW(
      { (void)sim::run_campaign(*world_, runs[0]); }, std::invalid_argument);

  // Through the supervisor the same bad config is classified, not thrown.
  sim::ParallelStats stats;
  const auto outputs = sim::run_campaigns(*world_, runs, {1}, &stats);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].error.kind, sim::RunErrorKind::kRetryExhausted)
      << outputs[0].error.str();
  EXPECT_NE(outputs[0].error.message.find("max_retries"), std::string::npos)
      << outputs[0].error.message;
}

// --- kill-and-resume drill (subprocess) ---

constexpr int kKillAfter = 3;
constexpr int kResumeFailedExit = 7;

/// Child entry (invoked via --chaos-child). mode "crash": run the campaign
/// with the chaos kill switch armed — the process dies by SIGKILL mid-
/// campaign. mode "resume": resume from the checkpoint and publish the
/// final outputs blob for the parent to compare.
int chaos_child_main(std::string_view mode, const char* ckpt_path,
                     const char* blob_path, std::size_t workers) {
  sim::World world(chaos_scenario());
  const auto runs = chaos_runs();
  sim::ParallelConfig cfg{workers};
  cfg.checkpoint_path = ckpt_path;
  cfg.checkpoint_every = 2;
  if (mode == "crash") {
    cfg.chaos.kill_after = kKillAfter;
    (void)sim::run_campaigns(world, runs, cfg);
    return 1;  // unreachable when the kill switch works
  }
  try {
    const auto outputs = sim::resume_campaigns(world, runs, cfg);
    std::string error;
    if (!support::write_file_atomic(blob_path, outputs_blob(outputs),
                                    &error)) {
      std::fprintf(stderr, "blob write failed: %s\n", error.c_str());
      return 2;
    }
    return 0;
  } catch (const sim::CheckpointResumeError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kResumeFailedExit;
  }
}

/// fork+exec this binary in child mode and return its wait status.
int spawn_child(const char* mode, const std::string& ckpt,
                const std::string& blob, std::size_t workers) {
  const std::string workers_arg = std::to_string(workers);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: exec immediately (async-signal-safe between fork and exec;
    // also what keeps this drill clean under TSan).
    ::execl("/proc/self/exe", "/proc/self/exe", "--chaos-child", mode,
            ckpt.c_str(), blob.c_str(), workers_arg.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

class ChaosKillResumeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChaosKillResumeTest, KilledCampaignResumesByteIdentical) {
  const std::size_t workers = GetParam();
  TempFile ckpt(workers == 1 ? "kill1.ckpt" : "kill4.ckpt");
  TempFile blob(workers == 1 ? "kill1.blob" : "kill4.blob");

  // The oracle: the same campaign, uninterrupted, in this process.
  sim::World world(chaos_scenario());
  const auto runs = chaos_runs();
  const auto expected = sim::run_campaigns(world, runs, {workers});
  ASSERT_EQ(sim::failed_runs(expected), 0u);

  // Phase 1: the crash. The child must die by SIGKILL, not exit.
  const int crash_status =
      spawn_child("crash", ckpt.path(), blob.path(), workers);
  ASSERT_TRUE(WIFSIGNALED(crash_status))
      << "crash child exited instead of dying, status " << crash_status;
  ASSERT_EQ(WTERMSIG(crash_status), SIGKILL);
  // It died past a checkpoint boundary: the file exists and is loadable.
  std::ifstream ckpt_exists(ckpt.path());
  ASSERT_TRUE(ckpt_exists.good())
      << "no checkpoint survived the kill at " << ckpt.path();

  // Phase 2: the resume. A fresh process continues from the checkpoint.
  const int resume_status =
      spawn_child("resume", ckpt.path(), blob.path(), workers);
  ASSERT_TRUE(WIFEXITED(resume_status));
  ASSERT_EQ(WEXITSTATUS(resume_status), 0);

  std::ifstream in(blob.path(), std::ios::binary);
  ASSERT_TRUE(in.good());
  const std::string resumed_blob((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  EXPECT_EQ(outputs_blob(expected), resumed_blob)
      << "resumed campaign diverged from the uninterrupted one";
}

INSTANTIATE_TEST_SUITE_P(Workers, ChaosKillResumeTest,
                         ::testing::Values(std::size_t{1}, std::size_t{4}));

}  // namespace

/// Exposed for main(): dispatch --chaos-child before gtest sees argv.
int chaos_child_entry(int argc, char** argv) {
  // argv: --chaos-child <mode> <ckpt> <blob> <workers>
  if (argc < 6) return 64;
  return chaos_child_main(argv[2], argv[3], argv[4],
                          static_cast<std::size_t>(std::atoi(argv[5])));
}

}  // namespace cityhunter

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--chaos-child") {
      return cityhunter::chaos_child_entry(argc, argv);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
