#include <gtest/gtest.h>

#include "core/karma.h"
#include "mobility/population.h"
#include "mobility/venue.h"
#include "support/rng.h"
#include "world/ap_generator.h"

namespace cityhunter::mobility {
namespace {

using support::Rng;
using support::SimTime;

// --- Venue presets ---

TEST(VenuePresets, FourVenuesWithExpectedPatterns) {
  EXPECT_EQ(subway_passage_venue().pattern, MobilityPattern::kFlow);
  EXPECT_EQ(canteen_venue().pattern, MobilityPattern::kStatic);
  EXPECT_EQ(shopping_center_venue().pattern, MobilityPattern::kHybrid);
  EXPECT_EQ(railway_station_venue().pattern, MobilityPattern::kHybrid);
}

TEST(VenuePresets, PassageHasTwoCommutePeaks) {
  const auto v = subway_passage_venue();
  // 8-9am and 6-7pm are the two largest slots.
  double max1 = 0, max2 = 0;
  int i1 = -1, i2 = -1;
  for (int i = 0; i < 12; ++i) {
    const double c = v.hourly_clients[static_cast<std::size_t>(i)];
    if (c > max1) {
      max2 = max1;
      i2 = i1;
      max1 = c;
      i1 = i;
    } else if (c > max2) {
      max2 = c;
      i2 = i;
    }
  }
  EXPECT_TRUE((i1 == 0 && i2 == 10) || (i1 == 10 && i2 == 0));
}

TEST(VenuePresets, CanteenPeaksAtMealtimes) {
  const auto v = canteen_venue();
  // Lunch (12-1pm, slot 4) beats mid-afternoon (3-4pm, slot 7).
  EXPECT_GT(v.hourly_clients[4], 2 * v.hourly_clients[7]);
  // Dinner (6-7pm, slot 10) beats mid-afternoon too.
  EXPECT_GT(v.hourly_clients[10], 2 * v.hourly_clients[7]);
}

TEST(VenuePresets, GroupFractionRisesInRushHours) {
  for (const auto& v : {subway_passage_venue(), railway_station_venue()}) {
    EXPECT_GT(v.hourly_group_fraction[0], v.hourly_group_fraction[2]);
  }
}

TEST(VenuePresets, SlotLabels) {
  EXPECT_EQ(slot_label(0), "8am-9am");
  EXPECT_EQ(slot_label(4), "12pm-1pm");
  EXPECT_EQ(slot_label(11), "7pm-8pm");
  EXPECT_EQ(slot_label(-1), "?");
  EXPECT_EQ(slot_label(12), "?");
}

// --- VenuePopulation ---

class PopulationTest : public ::testing::Test {
 protected:
  PopulationTest()
      : medium_(events_),
        rng_(7),
        city_(),
        aps_(world::generate_aps(city_, rng_, world::default_ap_population())),
        pnl_(city_, aps_) {}

  medium::EventQueue events_;
  medium::Medium medium_;
  Rng rng_;
  world::CityModel city_;
  std::vector<world::AccessPointInfo> aps_;
  world::PnlModel pnl_;
};

TEST_F(PopulationTest, SpawnsRoughlyExpectedClients) {
  VenuePopulation pop(medium_, pnl_, canteen_venue(),
                      client::SmartphoneConfig{}, rng_.fork("pop"));
  SlotParams slot;
  slot.expected_clients = 300;
  pop.schedule_slot(SimTime::minutes(30), slot);
  events_.run_until(SimTime::minutes(30));
  EXPECT_GT(pop.clients_spawned(), 200u);
  EXPECT_LT(pop.clients_spawned(), 420u);
}

TEST_F(PopulationTest, FlowClientsCrossAndDepart) {
  auto venue = subway_passage_venue();
  VenuePopulation pop(medium_, pnl_, venue, client::SmartphoneConfig{},
                      rng_.fork("pop"));
  SlotParams slot;
  slot.expected_clients = 100;
  pop.schedule_slot(SimTime::minutes(10), slot);
  // After venue crossing time everyone spawned early has stopped.
  events_.run_until(SimTime::minutes(20));
  std::size_t started = 0, still_connected_radio = 0;
  for (const auto& phone : pop.phones()) {
    if (!phone->started()) continue;
    ++started;
    // Position must have advanced beyond the entry edge.
    EXPECT_GT(phone->position().x, -venue.extent_m / 2);
  }
  EXPECT_GT(started, 50u);
  (void)still_connected_radio;
}

TEST_F(PopulationTest, StaticClientsStayPut) {
  VenuePopulation pop(medium_, pnl_, canteen_venue(),
                      client::SmartphoneConfig{}, rng_.fork("pop"));
  SlotParams slot;
  slot.expected_clients = 50;
  pop.schedule_slot(SimTime::minutes(5), slot);
  events_.run_until(SimTime::minutes(5));
  ASSERT_GT(pop.clients_spawned(), 10u);
  // Record positions, advance time, positions unchanged.
  std::vector<medium::Position> before;
  for (const auto& phone : pop.phones()) before.push_back(phone->position());
  events_.run_until(SimTime::minutes(8));
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(pop.phones()[i]->position(), before[i]);
  }
}

TEST_F(PopulationTest, GroupsArriveTogether) {
  auto venue = canteen_venue();
  venue.group_fraction = 1.0;  // groups only
  VenuePopulation pop(medium_, pnl_, venue, client::SmartphoneConfig{},
                      rng_.fork("pop"));
  SlotParams slot;
  slot.expected_clients = 60;
  pop.schedule_slot(SimTime::minutes(10), slot);
  events_.run_until(SimTime::minutes(10));
  // Every spawned person belongs to a group, and group members sit close.
  std::map<std::uint64_t, std::vector<const client::Smartphone*>> groups;
  for (const auto& phone : pop.phones()) {
    ASSERT_NE(phone->person().group_id, 0u);
    groups[phone->person().group_id].push_back(phone.get());
  }
  EXPECT_GT(groups.size(), 5u);
  for (const auto& [gid, members] : groups) {
    ASSERT_GE(members.size(), 2u);
    for (std::size_t i = 1; i < members.size(); ++i) {
      EXPECT_LT(medium::distance(members[0]->position(),
                                 members[i]->position()),
                10.0);
    }
  }
}

TEST_F(PopulationTest, PreAssociatedFractionHoldsOffProbing) {
  // With every client pre-associated to a (absent) legit AP, an attacker
  // hears nothing for the whole slot.
  core::Attacker::BaseConfig base;
  base.bssid = *dot11::MacAddress::parse("0a:00:00:00:00:55");
  base.pos = {0, 0};
  core::KarmaAttacker attacker(medium_, base);
  attacker.start();

  VenuePopulation pop(medium_, pnl_, canteen_venue(),
                      client::SmartphoneConfig{}, rng_.fork("pop"));
  SlotParams slot;
  slot.expected_clients = 60;
  slot.pre_associated_fraction = 1.0;
  slot.legit_ap = *dot11::MacAddress::parse("02:00:00:00:00:01");
  pop.schedule_slot(SimTime::minutes(10), slot);
  events_.run_until(SimTime::minutes(10));
  EXPECT_GT(pop.clients_spawned(), 20u);
  EXPECT_EQ(attacker.clients_seen(), 0u);
}

TEST_F(PopulationTest, ZeroClientsIsFine) {
  VenuePopulation pop(medium_, pnl_, canteen_venue(),
                      client::SmartphoneConfig{}, rng_.fork("pop"));
  SlotParams slot;
  slot.expected_clients = 0;
  pop.schedule_slot(SimTime::minutes(5), slot);
  events_.run_until(SimTime::minutes(5));
  EXPECT_EQ(pop.clients_spawned(), 0u);
}

}  // namespace
}  // namespace cityhunter::mobility
