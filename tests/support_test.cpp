#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "support/histogram.h"
#include "support/rng.h"
#include "support/sim_time.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace cityhunter::support {
namespace {

// --- TaskTeam ---

TEST(TaskTeam, EveryHelperRunsExactlyOncePerDispatch) {
  TaskTeam team(3);
  ASSERT_EQ(team.helpers(), 3u);
  struct Ctx {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> index_sum{0};
  } ctx;
  const auto fn = +[](void* c, std::size_t i) {
    auto* x = static_cast<Ctx*>(c);
    x->hits.fetch_add(1);
    x->index_sum.fetch_add(i);
  };
  for (int round = 1; round <= 50; ++round) {
    team.dispatch(fn, &ctx);
    team.wait();
    EXPECT_EQ(ctx.hits.load(), static_cast<std::uint64_t>(3 * round));
  }
  // Helper indices 0+1+2 per round: every helper ran, none twice.
  EXPECT_EQ(ctx.index_sum.load(), 50u * 3u);
}

TEST(TaskTeam, WaitPublishesHelperWrites) {
  // Data written by helpers before finishing must be visible to the caller
  // after wait() without any extra synchronization (release/acquire on the
  // done counter).
  TaskTeam team(4);
  struct Ctx {
    std::uint64_t lane[4] = {};  // plain, non-atomic: ordering must carry it
  } ctx;
  const auto fn = +[](void* c, std::size_t i) {
    static_cast<Ctx*>(c)->lane[i] = i * 1000 + 7;
  };
  for (int round = 0; round < 20; ++round) {
    for (auto& v : ctx.lane) v = 0;
    team.dispatch(fn, &ctx);
    team.wait();
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_EQ(ctx.lane[i], i * 1000 + 7) << "round " << round;
    }
  }
}

TEST(TaskTeam, ZeroHelpersIsAValidDegenerateTeam) {
  // A 1-worker fork-join has no helpers: dispatch/wait must be no-ops.
  TaskTeam team(0);
  EXPECT_EQ(team.helpers(), 0u);
  int touched = 0;
  team.dispatch(+[](void*, std::size_t) {}, &touched);
  team.wait();
  EXPECT_EQ(touched, 0);
}

TEST(TaskTeam, DestructionWhileParkedJoinsCleanly) {
  // Helpers park on the epoch futex between dispatches; the destructor must
  // wake and join them without a dispatch in flight.
  for (int i = 0; i < 8; ++i) {
    TaskTeam team(2);
    if (i % 2 == 0) {
      std::atomic<int> n{0};
      team.dispatch(+[](void* c, std::size_t) {
        static_cast<std::atomic<int>*>(c)->fetch_add(1);
      }, &n);
      team.wait();
      EXPECT_EQ(n.load(), 2);
    }
  }
}

// --- SimTime ---

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::milliseconds(1).us(), 1000);
  EXPECT_EQ(SimTime::seconds(1.0).us(), 1000000);
  EXPECT_EQ(SimTime::minutes(1.0).us(), 60000000);
  EXPECT_EQ(SimTime::hours(1.0).us(), 3600000000LL);
}

TEST(SimTime, Arithmetic) {
  const auto t = SimTime::seconds(2.0) + SimTime::milliseconds(500);
  EXPECT_DOUBLE_EQ(t.sec(), 2.5);
  EXPECT_DOUBLE_EQ((t - SimTime::seconds(1.0)).sec(), 1.5);
  EXPECT_DOUBLE_EQ((SimTime::seconds(10.0) * 0.5).sec(), 5.0);
}

TEST(SimTime, ComparisonIsTotal) {
  EXPECT_LT(SimTime::zero(), SimTime::microseconds(1));
  EXPECT_LE(SimTime::seconds(1.0), SimTime::milliseconds(1000));
  EXPECT_EQ(SimTime::seconds(1.0), SimTime::milliseconds(1000));
  EXPECT_GT(SimTime::max(), SimTime::hours(10000));
}

TEST(SimTime, HumanReadableString) {
  EXPECT_EQ(SimTime::milliseconds(250).str(), "250.000ms");
  EXPECT_EQ(SimTime::seconds(5.0).str(), "5.0s");
  EXPECT_EQ(SimTime::minutes(2.5).str(), "2m30.0s");
  EXPECT_EQ(SimTime::hours(3.25).str(), "3h15m");
}

// --- Rng determinism ---

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsStableAndIndependent) {
  Rng parent(77);
  Rng c1 = parent.fork("mobility");
  Rng c2 = Rng(77).fork("mobility");
  // Same parent seed + same label => same child stream.
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
  }
  // Different labels => different streams.
  Rng c3 = Rng(77).fork("world");
  Rng c4 = Rng(77).fork("mobility");
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (std::abs(c3.uniform() - c4.uniform()) < 1e-12) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ZipfRankOneIsMostProbable) {
  Rng rng(9);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 20000; ++i) {
    const int r = rng.zipf(10, 1.0);
    ASSERT_GE(r, 1);
    ASSERT_LE(r, 10);
    ++counts[static_cast<std::size_t>(r)];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], 0);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(9);
  EXPECT_EQ(rng.zipf(1, 1.0), 1);
  EXPECT_THROW(rng.zipf(0, 1.0), std::invalid_argument);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(11);
  std::vector<double> w{1.0, 0.0, 9.0};
  int c0 = 0, c2 = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto idx = rng.weighted_index(w);
    ASSERT_NE(idx, 1u);  // zero weight never picked
    if (idx == 0) ++c0;
    if (idx == 2) ++c2;
  }
  EXPECT_NEAR(static_cast<double>(c2) / (c0 + c2), 0.9, 0.03);
}

TEST(Rng, WeightedIndexRejectsEmptyAndZero) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    auto idx = rng.sample_indices(20, 7);
    ASSERT_EQ(idx.size(), 7u);
    std::sort(idx.begin(), idx.end());
    EXPECT_TRUE(std::adjacent_find(idx.begin(), idx.end()) == idx.end());
    EXPECT_LT(idx.back(), 20u);
  }
  // k > n clamps to n.
  EXPECT_EQ(rng.sample_indices(3, 10).size(), 3u);
}

TEST(Rng, PoissonMeanRoughlyCorrect) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += rng.poisson(4.0);
  EXPECT_NEAR(sum / 10000.0, 4.0, 0.1);
}

// --- Histogram ---

TEST(Histogram, BucketsAndStats) {
  Histogram h(10.0);
  for (const double v : {5.0, 15.0, 15.5, 25.0, 25.0, 25.0}) h.add(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
  EXPECT_NEAR(h.mean(), 18.42, 0.01);
  EXPECT_DOUBLE_EQ(h.fraction_in_bucket(0.0), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(h.fraction_in_bucket(10.0), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(h.fraction_in_bucket(20.0), 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(h.fraction_in_bucket(90.0), 0.0);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].first, 0.0);
  EXPECT_EQ(buckets[2].second, 3u);
}

TEST(Histogram, RejectsNonPositiveWidth) {
  EXPECT_THROW(Histogram(0.0), std::invalid_argument);
  EXPECT_THROW(Histogram(-1.0), std::invalid_argument);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h(1.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.ascii(), "(empty)\n");
}

TEST(Summary, RunningStats) {
  Summary s;
  for (const double v : {2.0, 4.0, 6.0, 8.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.stddev(), 2.582, 0.001);
}

// --- TextTable ---

TEST(TextTable, AlignsColumnsAndPadsMissingCells) {
  TextTable t({"a", "long-header"});
  t.add_row({"x"});
  t.add_row({"longer-cell", "y"});
  const auto s = t.str();
  EXPECT_NE(s.find("a           | long-header"), std::string::npos);
  EXPECT_NE(s.find("longer-cell | y"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::pct(0.159), "15.9%");
  EXPECT_EQ(TextTable::pct(0.0366, 2), "3.66%");
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(1234LL), "1234");
}

}  // namespace
}  // namespace cityhunter::support
