// End-to-end integration tests: the paper's qualitative claims must hold on
// full campaign runs. These are the repository's regression net for the
// reproduction itself — if a refactor silently breaks a mechanism (untried
// tracking, WiGLE seeding, freshness), a shape check here fails.
#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace cityhunter::sim {
namespace {

using support::SimTime;

class IntegrationTest : public ::testing::Test {
 protected:
  static ScenarioConfig scenario() {
    ScenarioConfig cfg;
    cfg.seed = 42;
    return cfg;
  }

  static RunOutput run(World& world, AttackerKind kind,
                       mobility::VenueConfig venue, double clients,
                       SimTime duration, std::uint64_t run_seed = 1) {
    RunConfig cfg;
    cfg.kind = kind;
    cfg.venue = std::move(venue);
    cfg.slot.expected_clients = clients;
    cfg.duration = duration;
    cfg.run_seed = run_seed;
    return run_campaign(world, cfg);
  }
};

TEST_F(IntegrationTest, AttackerOrderingHoldsInTheCanteen) {
  // Table I + II: KARMA < MANA < City-Hunter on overall hit rate, and the
  // broadcast hit rate goes 0 -> small -> large.
  World world(scenario());
  const auto karma = run(world, AttackerKind::kKarma,
                         mobility::canteen_venue(), 640,
                         SimTime::minutes(30));
  const auto mana = run(world, AttackerKind::kMana,
                        mobility::canteen_venue(), 640, SimTime::minutes(30));
  const auto hunter = run(world, AttackerKind::kCityHunter,
                          mobility::canteen_venue(), 640,
                          SimTime::minutes(30));

  EXPECT_EQ(karma.result.h_b(), 0.0);
  EXPECT_GT(mana.result.h_b(), 0.005);
  EXPECT_GT(hunter.result.h_b(), 2 * mana.result.h_b());
  EXPECT_GT(hunter.result.h(), karma.result.h());
  // Headline claim: h_b lands in the 12-18% band the paper reports.
  EXPECT_GT(hunter.result.h_b(), 0.10);
  EXPECT_LT(hunter.result.h_b(), 0.25);
}

TEST_F(IntegrationTest, HuntingIsHarderInThePassage) {
  // Fig 5: mobility reduces h_b (canteen > passage for the same attacker).
  World world(scenario());
  const auto canteen = run(world, AttackerKind::kCityHunter,
                           mobility::canteen_venue(), 640,
                           SimTime::minutes(30), 5);
  const auto passage = run(world, AttackerKind::kCityHunter,
                           mobility::subway_passage_venue(), 1000,
                           SimTime::hours(1), 6);
  EXPECT_GT(canteen.result.h_b(), passage.result.h_b());
  EXPECT_GT(passage.result.h_b(), 0.04);  // but still far above MANA
}

TEST_F(IntegrationTest, OverallHitRateAlwaysAtLeastBroadcastRate) {
  // Fig 5 second observation: h > h_b in every venue (direct probers are
  // easier prey).
  World world(scenario());
  for (const auto& venue :
       {mobility::canteen_venue(), mobility::subway_passage_venue(),
        mobility::shopping_center_venue()}) {
    const auto out = run(world, AttackerKind::kCityHunter, venue, 500,
                         SimTime::minutes(30));
    EXPECT_GE(out.result.h(), out.result.h_b()) << venue.name;
  }
}

TEST_F(IntegrationTest, WigleSeedDominatesHitSources) {
  // Fig 6 first observation: WiGLE contributes more successful SSIDs than
  // direct probes; popularity more than freshness.
  World world(scenario());
  const auto out = run(world, AttackerKind::kCityHunter,
                       mobility::canteen_venue(), 640, SimTime::minutes(30));
  EXPECT_GT(out.result.hits_from_wigle, out.result.hits_from_direct_db);
  EXPECT_GT(out.result.hits_via_popularity, out.result.hits_via_freshness);
  EXPECT_GT(out.result.hits_via_freshness, 0u);  // but freshness does work
}

TEST_F(IntegrationTest, PassageTriesAreQuantisedAtFortySsids) {
  // Fig 2(b): in the passage, most broadcast clients receive exactly one
  // 40-SSID train.
  World world(scenario());
  const auto out = run(world, AttackerKind::kCityHunter,
                       mobility::subway_passage_venue(), 1200,
                       SimTime::hours(1));
  std::size_t one_train = 0, total = 0;
  for (const int n : out.result.ssids_sent_all_broadcast) {
    ++total;
    if (n >= 40 && n < 80) ++one_train;
  }
  ASSERT_GT(total, 300u);
  EXPECT_GT(static_cast<double>(one_train) / static_cast<double>(total), 0.5);
}

TEST_F(IntegrationTest, CanteenVictimsReceiveDeepSweeps) {
  // Fig 2(a): connected canteen clients were tried with far more than 40
  // SSIDs on average.
  World world(scenario());
  const auto out = run(world, AttackerKind::kCityHunter,
                       mobility::canteen_venue(), 640, SimTime::minutes(30));
  EXPECT_GT(out.result.mean_ssids_sent_connected(), 40.0);
}

TEST_F(IntegrationTest, ManaEfficiencyDoesNotGrowWithDatabase) {
  // Fig 1: MANA's windowed hit rate must not trend upward even though its
  // database keeps growing.
  World world(scenario());
  RunConfig cfg;
  cfg.kind = AttackerKind::kMana;
  cfg.venue = mobility::canteen_venue();
  cfg.slot.expected_clients = 640;
  cfg.duration = SimTime::minutes(30);
  cfg.sample_every = SimTime::minutes(1);
  const auto out = run_campaign(world, cfg);

  ASSERT_GE(out.series.size(), 2u);
  EXPECT_GT(out.series.back().db_size, 2 * out.series.front().db_size);

  double first = 0, second = 0;
  std::size_t nf = 0, ns = 0;
  for (std::size_t i = 0; i < out.window_rates.size(); ++i) {
    const auto& w = out.window_rates[i];
    if (w.broadcast_clients == 0) continue;
    if (i < out.window_rates.size() / 2) {
      first += w.rate();
      ++nf;
    } else {
      second += w.rate();
      ++ns;
    }
  }
  ASSERT_GT(nf, 0u);
  ASSERT_GT(ns, 0u);
  // No doubling of efficiency despite the database tripling.
  EXPECT_LT(second / ns, 2.0 * (first / nf) + 0.05);
}

TEST_F(IntegrationTest, HeatSeededBeatsApCountSeededWhereCrowdsMatter) {
  // Table IV's purpose: weighting by heat should not be worse than raw AP
  // counts (the airport/hot-area SSIDs are reachable only via heat).
  World world(scenario());
  RunConfig heat_cfg;
  heat_cfg.kind = AttackerKind::kCityHunter;
  heat_cfg.venue = mobility::railway_station_venue();
  heat_cfg.slot.expected_clients = 900;
  heat_cfg.duration = SimTime::minutes(30);
  heat_cfg.run_seed = 9;
  const auto heat = run_campaign(world, heat_cfg);

  auto count_cfg = heat_cfg;
  count_cfg.wigle_seed.ranking = core::PopularRanking::kApCount;
  const auto count = run_campaign(world, count_cfg);

  EXPECT_GE(heat.result.broadcast_connected + 5,
            count.result.broadcast_connected);
}

TEST_F(IntegrationTest, DirectClientCountsMatchPaperScale) {
  // ~14% of clients still send direct probes (85/614 .. 178/1356).
  World world(scenario());
  const auto out = run(world, AttackerKind::kCityHunter,
                       mobility::canteen_venue(), 640, SimTime::minutes(30));
  const double frac = static_cast<double>(out.result.direct_clients) /
                      static_cast<double>(out.result.total_clients);
  EXPECT_GT(frac, 0.08);
  EXPECT_LT(frac, 0.22);
}

TEST_F(IntegrationTest, AdaptiveBuffersMoveTowardFreshnessInGroupVenues) {
  // §IV-C: with strongly grouped crowds, FB-ghost hits should push the
  // split away from the pure-popularity extreme at least sometimes; at
  // minimum the split must stay within bounds.
  World world(scenario());
  const auto out = run(world, AttackerKind::kCityHunter,
                       mobility::canteen_venue(), 900, SimTime::hours(1));
  EXPECT_GE(out.final_pb_size, 2);
  EXPECT_LE(out.final_pb_size, 38);
  EXPECT_EQ(out.final_pb_size + out.final_fb_size, 40);
}

}  // namespace
}  // namespace cityhunter::sim
