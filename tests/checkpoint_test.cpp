// Campaign checkpoint/resume (sim/checkpoint + resume_campaigns).
//
// The load-bearing claims under test:
//   * a resumed campaign's final output vector is byte-identical to an
//     uninterrupted one, at 1 and 4 workers (DESIGN.md §5f);
//   * every flavour of checkpoint damage — truncation, bit flip, version
//     skew, wrong campaign, structural lies — yields its own distinct,
//     actionable error and NEVER a partial resume;
//   * the checkpoint cadence is exactly every K completions plus the final
//     one, through the crash-safe atomic writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <variant>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/parallel.h"
#include "support/atomic_file.h"

namespace cityhunter {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* name)
      : path_(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

sim::ScenarioConfig small_scenario() {
  sim::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.aps.residential_ap_count = 800;
  cfg.aps.small_venue_count = 400;
  cfg.aps.enterprise_ap_count = 150;
  cfg.photos.photo_count = 8000;
  return cfg;
}

/// Six short runs over two venues; one samples a series and one carries obs
/// so the checkpoint exercises the metrics/trace fields too.
std::vector<sim::RunConfig> small_runs() {
  std::vector<sim::RunConfig> runs(6);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    runs[i].kind = (i % 2 == 0) ? sim::AttackerKind::kMana
                                : sim::AttackerKind::kCityHunter;
    runs[i].venue = (i % 2 == 0) ? mobility::canteen_venue()
                                 : mobility::subway_passage_venue();
    runs[i].slot.expected_clients = 60.0 + 10.0 * static_cast<double>(i);
    runs[i].duration = support::SimTime::minutes(2);
    runs[i].run_seed = i + 1;
  }
  runs[2].sample_every = support::SimTime::seconds(30);
  runs[3].obs.enabled = true;
  return runs;
}

void expect_same_bytes(const std::vector<sim::RunOutput>& a,
                       const std::vector<sim::RunOutput>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(sim::run_output_bytes(a[i]), sim::run_output_bytes(b[i]));
  }
}

sim::CheckpointErrorKind decode_kind(const std::string& bytes) {
  auto decoded = sim::decode_checkpoint(bytes);
  const auto* err = std::get_if<sim::CheckpointError>(&decoded);
  EXPECT_NE(err, nullptr) << "damaged checkpoint decoded successfully";
  return err != nullptr ? err->kind : sim::CheckpointErrorKind::kIoError;
}

// --- format round trip and damage taxonomy (no World needed) ---

sim::CampaignCheckpoint tiny_checkpoint() {
  sim::CampaignCheckpoint cp;
  cp.config_hash = 0x1122334455667788ULL;
  cp.total_runs = 4;
  for (std::uint32_t idx : {0u, 2u}) {
    sim::CompletedRun run;
    run.index = idx;
    run.output.result.label = "run-" + std::to_string(idx);
    run.output.result.total_clients = 10 + idx;
    run.output.result.ssids_sent_connected = {1, 2, 3};
    run.output.db_final_size = 42;
    run.output.phases.sim_s = 0.25 * (idx + 1);
    run.output.database.add("cafe-ssid", 2.5, core::SsidSource::kWigleNearby,
                            support::SimTime::seconds(5));
    run.output.database.record_hit("cafe-ssid", 1.0,
                                   support::SimTime::seconds(9));
    run.output.error.kind = idx == 2 ? sim::RunErrorKind::kDeadlineExceeded
                                     : sim::RunErrorKind::kNone;
    if (idx == 2) {
      run.output.error.message = "run_seed=3 venue=v attacker=a: slow";
      run.output.error.attempts = 2;
    }
    cp.completed.push_back(std::move(run));
  }
  return cp;
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  const sim::CampaignCheckpoint cp = tiny_checkpoint();
  const std::string bytes = sim::encode_checkpoint(cp);
  auto decoded = sim::decode_checkpoint(bytes);
  ASSERT_TRUE(std::holds_alternative<sim::CampaignCheckpoint>(decoded))
      << std::get<sim::CheckpointError>(decoded).str();
  const auto& back = std::get<sim::CampaignCheckpoint>(decoded);
  EXPECT_EQ(back.config_hash, cp.config_hash);
  EXPECT_EQ(back.total_runs, cp.total_runs);
  ASSERT_EQ(back.completed.size(), cp.completed.size());
  for (std::size_t i = 0; i < cp.completed.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(back.completed[i].index, cp.completed[i].index);
    EXPECT_EQ(sim::run_output_bytes(back.completed[i].output),
              sim::run_output_bytes(cp.completed[i].output));
    // Wallclock phases ride through the file verbatim even though the
    // deterministic canon above deliberately excludes them.
    EXPECT_EQ(back.completed[i].output.phases.sim_s,
              cp.completed[i].output.phases.sim_s);
    // The restored database behaves like the original, not just stores the
    // same records: lookups and orderings go through the rebuilt index.
    const auto* rec = back.completed[i].output.database.find("cafe-ssid");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->hits, 1);
  }
  // A structured error survives the trip.
  EXPECT_EQ(back.completed[1].output.error.kind,
            sim::RunErrorKind::kDeadlineExceeded);
  EXPECT_EQ(back.completed[1].output.error.attempts, 2u);
}

TEST(Checkpoint, TruncationIsItsOwnError) {
  const std::string bytes = sim::encode_checkpoint(tiny_checkpoint());
  // Cut in the payload, in the header, and down to almost nothing: all
  // truncation, never a CRC complaint or a partial parse.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{20}, std::size_t{3}}) {
    SCOPED_TRACE(keep);
    EXPECT_EQ(decode_kind(bytes.substr(0, keep)),
              sim::CheckpointErrorKind::kTruncated);
  }
}

TEST(Checkpoint, BitFlipIsCrcMismatch) {
  const std::string bytes = sim::encode_checkpoint(tiny_checkpoint());
  // Flip one payload bit well past the header fields the decoder
  // interprets before the CRC check.
  for (const std::size_t at : {bytes.size() / 2, bytes.size() - 5}) {
    SCOPED_TRACE(at);
    std::string damaged = bytes;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x40);
    EXPECT_EQ(decode_kind(damaged), sim::CheckpointErrorKind::kCrcMismatch);
  }
}

TEST(Checkpoint, WrongVersionIsItsOwnError) {
  std::string bytes = sim::encode_checkpoint(tiny_checkpoint());
  bytes[4] = static_cast<char>(sim::CampaignCheckpoint::kFormatVersion + 1);
  EXPECT_EQ(decode_kind(bytes), sim::CheckpointErrorKind::kBadVersion);
}

TEST(Checkpoint, ForeignFileIsBadMagic) {
  EXPECT_EQ(decode_kind("JSON{\"not\": \"a checkpoint\"} padding padding"),
            sim::CheckpointErrorKind::kBadMagic);
}

TEST(Checkpoint, StructuralLiesAreMalformed) {
  // An index >= total_runs with a freshly sealed CRC: the container is
  // intact, the content lies.
  sim::CampaignCheckpoint cp = tiny_checkpoint();
  cp.completed[1].index = cp.total_runs;
  EXPECT_EQ(decode_kind(sim::encode_checkpoint(cp)),
            sim::CheckpointErrorKind::kMalformed);
}

TEST(Checkpoint, MissingFileIsIoError) {
  auto loaded = sim::load_checkpoint(
      std::string(::testing::TempDir()) + "no-such-checkpoint.ckpt", 0);
  const auto* err = std::get_if<sim::CheckpointError>(&loaded);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->kind, sim::CheckpointErrorKind::kIoError);
}

TEST(Checkpoint, LoadRejectsForeignCampaignHash) {
  TempFile file("foreign.ckpt");
  const sim::CampaignCheckpoint cp = tiny_checkpoint();
  std::string error;
  ASSERT_TRUE(sim::write_checkpoint(file.path(), cp, &error)) << error;
  auto loaded = sim::load_checkpoint(file.path(), cp.config_hash + 1);
  const auto* err = std::get_if<sim::CheckpointError>(&loaded);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->kind, sim::CheckpointErrorKind::kConfigMismatch);
}

// --- end-to-end against real campaigns (shared World, built once) ---

class CheckpointCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new sim::World(small_scenario()); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static sim::World* world_;
};

sim::World* CheckpointCampaignTest::world_ = nullptr;

TEST_F(CheckpointCampaignTest, ConfigHashSeparatesCampaigns) {
  const auto runs = small_runs();
  const std::uint64_t base = sim::campaign_config_hash(*world_, runs);
  EXPECT_EQ(sim::campaign_config_hash(*world_, runs), base)
      << "hash must be a pure function of the configs";
  auto reseeded = runs;
  reseeded[3].run_seed = 99;
  EXPECT_NE(sim::campaign_config_hash(*world_, reseeded), base);
  auto longer = runs;
  longer[1].duration = support::SimTime::minutes(3);
  EXPECT_NE(sim::campaign_config_hash(*world_, longer), base);
}

TEST_F(CheckpointCampaignTest, WritesEveryKCompletionsAndAtTheEnd) {
  TempFile file("cadence.ckpt");
  const auto runs = small_runs();
  sim::ParallelConfig cfg{1};
  cfg.checkpoint_path = file.path();
  cfg.checkpoint_every = 2;
  sim::ParallelStats stats;
  const auto outputs = sim::run_campaigns(*world_, runs, cfg, &stats);
  EXPECT_EQ(sim::failed_runs(outputs), 0u);
  // 6 runs, every 2 -> writes at 2, 4 and 6 completions.
  EXPECT_EQ(stats.checkpoint_writes, 3u);
  EXPECT_GT(stats.checkpoint_bytes, 0u);
  EXPECT_EQ(stats.checkpoint_write_failures, 0u);

  // The final file on disk holds every run, verbatim.
  auto loaded = sim::load_checkpoint(
      file.path(), sim::campaign_config_hash(*world_, runs));
  ASSERT_TRUE(std::holds_alternative<sim::CampaignCheckpoint>(loaded))
      << std::get<sim::CheckpointError>(loaded).str();
  const auto& cp = std::get<sim::CampaignCheckpoint>(loaded);
  ASSERT_EQ(cp.completed.size(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(cp.completed[i].index, i);
    EXPECT_EQ(sim::run_output_bytes(cp.completed[i].output),
              sim::run_output_bytes(outputs[i]));
  }
}

TEST_F(CheckpointCampaignTest, ResumeIsByteIdenticalToUninterrupted) {
  const auto runs = small_runs();
  const auto uninterrupted = sim::run_campaigns(*world_, runs, {1});
  ASSERT_EQ(sim::failed_runs(uninterrupted), 0u);

  // Simulate a crash after 3 completions: a checkpoint holding only runs
  // 0-2, exactly as the cadence writer would have left it.
  sim::CampaignCheckpoint partial;
  partial.config_hash = sim::campaign_config_hash(*world_, runs);
  partial.total_runs = static_cast<std::uint32_t>(runs.size());
  for (std::uint32_t i = 0; i < 3; ++i) {
    partial.completed.push_back({i, uninterrupted[i]});
  }

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(workers);
    TempFile file("resume.ckpt");
    std::string error;
    ASSERT_TRUE(sim::write_checkpoint(file.path(), partial, &error)) << error;

    sim::ParallelConfig cfg{workers};
    cfg.checkpoint_path = file.path();
    cfg.checkpoint_every = 2;
    sim::ParallelStats stats;
    const auto resumed = sim::resume_campaigns(*world_, runs, cfg, &stats);
    EXPECT_EQ(stats.resumed_runs, 3u);
    expect_same_bytes(uninterrupted, resumed);
  }
}

TEST_F(CheckpointCampaignTest, ResumeRefusesWrongCampaign) {
  TempFile file("wrong.ckpt");
  const auto runs = small_runs();
  sim::CampaignCheckpoint cp;
  cp.config_hash = sim::campaign_config_hash(*world_, runs) ^ 0xdead;
  cp.total_runs = static_cast<std::uint32_t>(runs.size());
  std::string error;
  ASSERT_TRUE(sim::write_checkpoint(file.path(), cp, &error)) << error;

  sim::ParallelConfig cfg{1};
  cfg.checkpoint_path = file.path();
  try {
    sim::resume_campaigns(*world_, runs, cfg);
    FAIL() << "resume accepted a foreign campaign's checkpoint";
  } catch (const sim::CheckpointResumeError& e) {
    EXPECT_EQ(e.error().kind, sim::CheckpointErrorKind::kConfigMismatch);
  }
}

TEST_F(CheckpointCampaignTest, ResumeRefusesCorruptCheckpoint) {
  TempFile file("corrupt.ckpt");
  const auto runs = small_runs();
  sim::CampaignCheckpoint cp;
  cp.config_hash = sim::campaign_config_hash(*world_, runs);
  cp.total_runs = static_cast<std::uint32_t>(runs.size());
  std::string bytes = sim::encode_checkpoint(cp);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  std::string error;
  ASSERT_TRUE(support::write_file_atomic(file.path(), bytes, &error)) << error;

  sim::ParallelConfig cfg{1};
  cfg.checkpoint_path = file.path();
  try {
    sim::resume_campaigns(*world_, runs, cfg);
    FAIL() << "resume accepted a bit-flipped checkpoint";
  } catch (const sim::CheckpointResumeError& e) {
    EXPECT_EQ(e.error().kind, sim::CheckpointErrorKind::kCrcMismatch);
  }
}

TEST_F(CheckpointCampaignTest, ResumeRequiresAPath) {
  const auto runs = small_runs();
  EXPECT_THROW(sim::resume_campaigns(*world_, runs, sim::ParallelConfig{1}),
               std::invalid_argument);
}

TEST_F(CheckpointCampaignTest, CheckpointEveryIsValidated) {
  const auto runs = small_runs();
  sim::ParallelConfig cfg{1};
  cfg.checkpoint_every = 0;
  EXPECT_THROW(sim::run_campaigns(*world_, runs, cfg), std::invalid_argument);
}

// --- atomic file writer (support/atomic_file) ---

TEST(AtomicFile, WriteReplacesWholeFile) {
  TempFile file("atomic.txt");
  std::string error;
  ASSERT_TRUE(support::write_file_atomic(file.path(), "first", &error))
      << error;
  ASSERT_TRUE(support::write_file_atomic(file.path(), "second-longer", &error))
      << error;
  std::ifstream in(file.path(), std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second-longer");
}

TEST(AtomicFile, ReportsUnwritableDirectory) {
  std::string error;
  EXPECT_FALSE(support::write_file_atomic(
      "/no-such-dir-cityhunter/x.txt", "bytes", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace cityhunter
