#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dot11/pcap.h"
#include "dot11/serialize.h"
#include "medium/medium.h"
#include "medium/pcap_recorder.h"
#include "support/rng.h"

namespace cityhunter::dot11 {
namespace {

using support::Rng;
using support::SimTime;

class TempFile {
 public:
  explicit TempFile(const char* name)
      : path_(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Pcap, WriteReadRoundTrip) {
  TempFile file("roundtrip.pcap");
  Rng rng(1);
  const auto client = MacAddress::random_local(rng);
  const auto bssid = MacAddress::random_local(rng);
  std::vector<Frame> frames = {
      make_broadcast_probe_request(client, 1),
      make_probe_response(bssid, client, "7-Eleven Free Wifi", 6, true, 2),
      make_auth_request(client, bssid, 3),
      make_assoc_response(bssid, client, StatusCode::kSuccess, 1, 4),
  };
  {
    PcapWriter writer(file.path());
    for (std::size_t i = 0; i < frames.size(); ++i) {
      writer.write(frames[i], SimTime::milliseconds(
                                  static_cast<std::int64_t>(i) * 10));
    }
    EXPECT_EQ(writer.frames_written(), frames.size());
  }
  const auto records = read_pcap(file.path());
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ((*records)[i].timestamp,
              SimTime::milliseconds(static_cast<std::int64_t>(i) * 10));
    const auto parsed = parse((*records)[i].bytes);
    ASSERT_TRUE(parsed.has_value()) << "record " << i;
    EXPECT_EQ(*parsed, frames[i]);
  }
}

TEST(Pcap, GlobalHeaderIsWellFormed) {
  TempFile file("header.pcap");
  { PcapWriter writer(file.path()); }
  std::ifstream in(file.path(), std::ios::binary);
  unsigned char header[24];
  ASSERT_TRUE(in.read(reinterpret_cast<char*>(header), 24));
  // Magic a1b2c3d4 little-endian.
  EXPECT_EQ(header[0], 0xd4);
  EXPECT_EQ(header[1], 0xc3);
  EXPECT_EQ(header[2], 0xb2);
  EXPECT_EQ(header[3], 0xa1);
  // Link type 105 at offset 20.
  EXPECT_EQ(header[20], 105);
  EXPECT_EQ(header[21], 0);
}

TEST(Pcap, TimestampSplitsSecondsAndMicros) {
  TempFile file("ts.pcap");
  Rng rng(2);
  {
    PcapWriter writer(file.path());
    writer.write(make_broadcast_probe_request(MacAddress::random_local(rng)),
                 SimTime::microseconds(3 * 1000000 + 250000));
  }
  const auto records = read_pcap(file.path());
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].timestamp.us(), 3250000);
}

TEST(Pcap, ReadRejectsGarbage) {
  TempFile file("garbage.pcap");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "this is not a pcap file at all, sorry";
  }
  EXPECT_FALSE(read_pcap(file.path()).has_value());
  EXPECT_FALSE(read_pcap("/nonexistent/path.pcap").has_value());
}

TEST(Pcap, ReadRejectsTruncatedRecord) {
  TempFile file("trunc.pcap");
  Rng rng(3);
  {
    PcapWriter writer(file.path());
    writer.write(make_broadcast_probe_request(MacAddress::random_local(rng)),
                 SimTime::zero());
  }
  // Chop the last 5 bytes off.
  std::ifstream in(file.path(), std::ios::binary);
  std::vector<char> all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  in.close();
  all.resize(all.size() - 5);
  std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
  out.write(all.data(), static_cast<std::streamsize>(all.size()));
  out.close();
  EXPECT_FALSE(read_pcap(file.path()).has_value());
}

TEST(Pcap, WriterThrowsOnUnopenablePath) {
  EXPECT_THROW(PcapWriter("/nonexistent-dir/x.pcap"), std::runtime_error);
}

TEST(PcapRecorder, CapturesLiveTraffic) {
  TempFile file("live.pcap");
  medium::EventQueue events;
  medium::Medium medium(events);
  Rng rng(4);
  {
    medium::PcapRecorder recorder(file.path());
    auto monitor = medium.attach({5, 0}, 6, 0.0, &recorder);
    auto tx = medium.attach({0, 0}, 6, 20.0);
    for (int i = 0; i < 7; ++i) {
      tx.transmit(make_broadcast_probe_request(MacAddress::random_local(rng),
                                               static_cast<std::uint16_t>(i)));
    }
    events.run_until(SimTime::seconds(1));
    EXPECT_EQ(recorder.writer().frames_written(), 7u);
    recorder.writer().flush();
    medium.detach(monitor);
    medium.detach(tx);
  }
  const auto records = read_pcap(file.path());
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 7u);
  // Timestamps are monotone (serialized transmissions).
  for (std::size_t i = 1; i < records->size(); ++i) {
    EXPECT_GT((*records)[i].timestamp, (*records)[i - 1].timestamp);
  }
  // Every captured frame is parseable 802.11.
  for (const auto& rec : *records) {
    EXPECT_TRUE(parse(rec.bytes).has_value());
  }
}

// A flush makes the file readable mid-run, and the record count read back
// matches frames_written() at the moment of the flush — the cross-reference
// a trace + pcap pair from the same run relies on. The destructor flushes
// the tail.
TEST(PcapRecorder, MidRunFlushCrossReference) {
  TempFile file("midrun.pcap");
  medium::EventQueue events;
  medium::Medium medium(events);
  Rng rng(5);
  {
    medium::PcapRecorder recorder(file.path());
    auto monitor = medium.attach({5, 0}, 6, 0.0, &recorder);
    auto tx = medium.attach({0, 0}, 6, 20.0);
    for (int i = 0; i < 5; ++i) {
      tx.transmit(make_broadcast_probe_request(MacAddress::random_local(rng),
                                               static_cast<std::uint16_t>(i)));
    }
    events.run_until(SimTime::seconds(1));
    recorder.flush();
    const auto mid = read_pcap(file.path());
    ASSERT_TRUE(mid.has_value());
    EXPECT_EQ(mid->size(), recorder.frames_written());
    EXPECT_EQ(mid->size(), 5u);

    // Keep recording after the flush; the destructor flushes the rest.
    for (int i = 5; i < 9; ++i) {
      tx.transmit(make_broadcast_probe_request(MacAddress::random_local(rng),
                                               static_cast<std::uint16_t>(i)));
    }
    events.run_until(SimTime::seconds(2));
    EXPECT_EQ(recorder.frames_written(), 9u);
    medium.detach(monitor);
    medium.detach(tx);
  }
  const auto records = read_pcap(file.path());
  ASSERT_TRUE(records.has_value());
  EXPECT_EQ(records->size(), 9u);
}

}  // namespace
}  // namespace cityhunter::dot11
