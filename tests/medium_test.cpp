#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dot11/serialize.h"
#include "dot11/timing.h"
#include "medium/event_queue.h"
#include "medium/fanout_simd.h"
#include "medium/medium.h"
#include "medium/propagation.h"
#include "support/rng.h"

namespace cityhunter::medium {
namespace {

using dot11::MacAddress;
using support::Rng;
using support::SimTime;

// --- EventQueue ---

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::seconds(3.0), [&] { order.push_back(3); });
  q.schedule_at(SimTime::seconds(1.0), [&] { order.push_back(1); });
  q.schedule_at(SimTime::seconds(2.0), [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), SimTime::seconds(3.0));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(SimTime::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilAdvancesClockEvenWhenEmpty) {
  EventQueue q;
  q.run_until(SimTime::minutes(5.0));
  EXPECT_EQ(q.now(), SimTime::minutes(5.0));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime::seconds(1.0), [&] { ++fired; });
  q.schedule_at(SimTime::seconds(10.0), [&] { ++fired; });
  q.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule_in(SimTime::seconds(1.0), [&] { ++fired; });
  h.cancel();
  q.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelTwiceIsSafe) {
  EventQueue q;
  auto h = q.schedule_in(SimTime::seconds(1.0), [] {});
  h.cancel();
  h.cancel();
  q.run_all();
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(SimTime::seconds(1.0), recurse);
  };
  q.schedule_in(SimTime::seconds(1.0), recurse);
  q.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), SimTime::seconds(5.0));
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(SimTime::seconds(2.0), [] {});
  q.run_until(SimTime::seconds(3.0));
  EXPECT_THROW(q.schedule_at(SimTime::seconds(1.0), [] {}),
               std::invalid_argument);
}

TEST(EventQueue, PastSchedulingErrorNamesBothTimes) {
  EventQueue q;
  q.run_until(SimTime::seconds(3.0));
  try {
    q.schedule_at(SimTime::seconds(1.0), [] {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("now="), std::string::npos) << what;
    EXPECT_NE(what.find("requested="), std::string::npos) << what;
    EXPECT_NE(what.find(SimTime::seconds(3.0).str()), std::string::npos)
        << what;
    EXPECT_NE(what.find(SimTime::seconds(1.0).str()), std::string::npos)
        << what;
  }
}

// --- Propagation ---

TEST(Propagation, PowerDecreasesWithDistance) {
  LogDistancePathLoss model;
  const double p10 = model.rx_power_dbm(20.0, 10.0);
  const double p50 = model.rx_power_dbm(20.0, 50.0);
  EXPECT_GT(p10, p50);
}

TEST(Propagation, ClampInsideReferenceDistance) {
  LogDistancePathLoss model;
  EXPECT_DOUBLE_EQ(model.rx_power_dbm(20.0, 0.1),
                   model.rx_power_dbm(20.0, 1.0));
}

TEST(Propagation, MaxRangeConsistentWithDeliverable) {
  LogDistancePathLoss model;
  const double r = model.max_range(20.0);
  EXPECT_TRUE(model.deliverable(20.0, r * 0.99));
  EXPECT_FALSE(model.deliverable(20.0, r * 1.01));
}

TEST(Propagation, DefaultRangeMatchesRaspberryPiScale) {
  LogDistancePathLoss model;
  const double r = model.max_range(20.0);  // 100 mW attacker
  EXPECT_GT(r, 40.0);
  EXPECT_LT(r, 90.0);
}

TEST(Propagation, DbmConversion) {
  EXPECT_DOUBLE_EQ(dbm_from_milliwatts(100.0), 20.0);
  EXPECT_DOUBLE_EQ(dbm_from_milliwatts(1.0), 0.0);
}

// --- Medium ---

class Collector : public FrameSink {
 public:
  void on_frame(const dot11::Frame& frame, const RxInfo& info) override {
    frames.push_back(frame);
    infos.push_back(info);
  }
  std::vector<dot11::Frame> frames;
  std::vector<RxInfo> infos;
};

class MediumTest : public ::testing::Test {
 protected:
  EventQueue events;
  Medium medium{events};
  Rng rng{1};
};

TEST_F(MediumTest, DeliversWithinRange) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({30, 0}, 6, 15.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_EQ(rx.frames[0].subtype(), dot11::MgmtSubtype::kProbeRequest);
  EXPECT_LT(rx.infos[0].rssi_dbm, -30.0);
  (void)b;
}

TEST_F(MediumTest, DropsBeyondRange) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({5000, 0}, 6, 15.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, ChannelIsolation) {
  Collector rx6, rx11;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx6);
  medium.attach({10, 0}, 11, 15.0, &rx11);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(rx6.frames.size(), 1u);
  EXPECT_TRUE(rx11.frames.empty());
}

TEST_F(MediumTest, SenderDoesNotHearItself) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, TransmissionsAreSerializedWithAirtime) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  const auto client = MacAddress::random_local(rng);
  for (int i = 0; i < 10; ++i) {
    a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                          client, "X", 6, true));
  }
  // After one frame's effective airtime only the first frame has landed.
  const auto one_frame =
      dot11::airtime(dot11::wire_size(dot11::make_probe_response(
                         MacAddress::random_local(rng), client, "X", 6, true)),
                     medium.config().mgmt_rate_mbps) *
      medium.config().contention_factor;
  events.run_until(one_frame + SimTime::microseconds(10));
  EXPECT_EQ(rx.frames.size(), 1u);
  events.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(rx.frames.size(), 10u);
}

TEST_F(MediumTest, FortyResponsesFitInScanWindow) {
  // End-to-end confirmation of the paper's 40-response budget: a full
  // 40-frame train completes within the 20 ms listen window, a longer train
  // does not.
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  const auto client = MacAddress::random_local(rng);
  for (int i = 0; i < 100; ++i) {
    a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                          client, "SSID-xx", 6, true));
  }
  events.run_until(dot11::kMinChannelTime + dot11::kMaxChannelTime);
  EXPECT_GE(rx.frames.size(), 35u);
  EXPECT_LE(rx.frames.size(), 45u);
}

TEST_F(MediumTest, ClearTxQueueAbortsPendingFrames) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  const auto client = MacAddress::random_local(rng);
  for (int i = 0; i < 20; ++i) {
    a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                          client, "Y", 6, true));
  }
  a.clear_tx_queue();
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_EQ(a.tx_backlog(), 0u);
}

TEST_F(MediumTest, MovedRadioStopsReceiving) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0, &rx);
  b.set_position({4000, 4000});
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, DetachedRadioIsGone) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0, &rx);
  medium.detach(b);
  EXPECT_FALSE(b.valid());
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, CountersTrack) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(a.frames_sent(), 1u);
  EXPECT_EQ(b.frames_received(), 1u);
  EXPECT_EQ(medium.transmissions(), 1u);
  EXPECT_EQ(medium.deliveries(), 1u);
}

TEST_F(MediumTest, SinkMayDetachRadiosDuringDelivery) {
  // A sink that detaches another radio mid-fanout must not crash delivery.
  struct Detacher : FrameSink {
    Medium* medium = nullptr;
    Radio* victim = nullptr;
    void on_frame(const dot11::Frame&, const RxInfo&) override {
      if (victim->valid()) medium->detach(*victim);
    }
  };
  Detacher d;
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({5, 0}, 6, 15.0, &d);
  auto c = medium.attach({10, 0}, 6, 15.0, &rx);
  d.medium = &medium;
  d.victim = &c;
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_FALSE(c.valid());
  EXPECT_TRUE(rx.frames.empty());  // c was detached before its delivery
  (void)b;
}

TEST_F(MediumTest, SlotTableBoundaryIdsResolveSafely) {
  // Regression for the slot_of() bounds check: the comparison now happens in
  // RadioId's unsigned 64-bit domain, so the id one past the table — and
  // ids far wider than 32 bits — must resolve to "no radio", while the last
  // issued id stays live.
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0);
  auto c = medium.attach({20, 0}, 6, 15.0);
  ASSERT_EQ(c.id(), 3u);  // 3 slots issued: table size is exactly 3
  EXPECT_TRUE(medium.has_radio(1));
  EXPECT_TRUE(medium.has_radio(3));   // boundary: last row of the table
  EXPECT_FALSE(medium.has_radio(0));
  EXPECT_FALSE(medium.has_radio(4));  // boundary: one past the table
  EXPECT_FALSE(medium.has_radio((std::uint64_t{1} << 32) + 1));
  EXPECT_FALSE(medium.has_radio(~std::uint64_t{0}));

  // Detaching the last radio keeps the table size but kills the id; a stale
  // copy of its handle must throw, not read a recycled slot.
  Radio stale = c;
  medium.detach(c);
  EXPECT_FALSE(medium.has_radio(3));
  EXPECT_THROW(stale.position(), std::logic_error);
  (void)a;
  (void)b;
}

// --- Fanout SIMD kernels ---

// The vector filter must agree with the scalar filter bit for bit: same
// survivor set, same order, same gathered d² — across block sizes that
// exercise full lanes, tails, and key/self/range rejections in every lane
// position.
TEST(FanoutSimd, FilterMatchesScalarBitwise) {
  Rng rng(71);
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 37u, 256u}) {
    std::vector<std::uint32_t> slots(n);
    std::vector<double> xs(n), ys(n);
    std::vector<std::uint16_t> keys(n);
    for (std::size_t i = 0; i < n; ++i) {
      slots[i] = static_cast<std::uint32_t>(i * 3);  // sorted, gappy
      xs[i] = rng.uniform(-120.0, 120.0);
      ys[i] = rng.uniform(-120.0, 120.0);
      keys[i] = static_cast<std::uint16_t>(rng.index(3) == 0 ? 7 : 5);
    }
    const double range_sq = 60.0 * 60.0;
    const std::uint32_t self = n > 2 ? slots[n / 2] : 0;
    std::vector<FanoutCandidate> simd_out(n), scalar_out(n);
    const std::size_t ns =
        fanout_filter(slots.data(), xs.data(), ys.data(), keys.data(), n,
                      3.0, -4.0, range_sq, 7, self, /*use_simd=*/true,
                      simd_out.data());
    const std::size_t nc =
        fanout_filter(slots.data(), xs.data(), ys.data(), keys.data(), n,
                      3.0, -4.0, range_sq, 7, self, /*use_simd=*/false,
                      scalar_out.data());
    ASSERT_EQ(ns, nc) << "n=" << n;
    for (std::size_t i = 0; i < ns; ++i) {
      EXPECT_EQ(simd_out[i].slot, scalar_out[i].slot) << "n=" << n;
      // Bitwise, not approximate: the lanes use the exact scalar op order.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(simd_out[i].dist_sq),
                std::bit_cast<std::uint64_t>(scalar_out[i].dist_sq))
          << "n=" << n << " i=" << i;
      // The frozen position is the exact gather-time input, both paths.
      const auto src = static_cast<std::size_t>(simd_out[i].slot) / 3;
      EXPECT_EQ(simd_out[i].x, xs[src]) << "n=" << n << " i=" << i;
      EXPECT_EQ(simd_out[i].y, ys[src]) << "n=" << n << " i=" << i;
      EXPECT_EQ(scalar_out[i].x, xs[src]) << "n=" << n << " i=" << i;
      EXPECT_EQ(scalar_out[i].y, ys[src]) << "n=" << n << " i=" << i;
    }
  }
}

// Negative range_sq (negative link budget) must reject everything, exactly
// like the scalar `!(d² <= range²)` test — in every lane.
TEST(FanoutSimd, FilterNegativeRangeRejectsAll) {
  std::vector<std::uint32_t> slots{0, 1, 2, 3, 4, 5};
  std::vector<double> xs{0, 1, 2, 3, 4, 5}, ys(6, 0.0);
  std::vector<std::uint16_t> keys(6, 7);
  std::vector<FanoutCandidate> out(6);
  for (const bool simd : {true, false}) {
    EXPECT_EQ(fanout_filter(slots.data(), xs.data(), ys.data(), keys.data(),
                            6, 0.0, 0.0, -1.0, 7, 99, simd, out.data()),
              0u);
  }
}

// The vector LUT evaluation must reproduce PathLossLut::rx_power_dbm_sq bit
// for bit — including the d² <= 1 m² reference clamp and the top-segment
// index clamp — for full lanes and scalar tails alike.
TEST(FanoutSimd, LutEvalMatchesScalarBitwise) {
  LogDistancePathLoss::Config cfg;
  PathLossLut lut(cfg, 600.0);
  Rng rng(72);
  for (const std::size_t n : {0u, 1u, 4u, 7u, 33u, 500u}) {
    std::vector<FanoutCandidate> simd_c(n), scalar_c(n);
    for (std::size_t i = 0; i < n; ++i) {
      double d2;
      const std::size_t kind = rng.index(8);
      if (kind == 0) {
        d2 = rng.uniform(0.0, 1.0);  // reference-clamp lanes
      } else if (kind == 1) {
        d2 = lut.max_dist_sq();  // top-segment clamp boundary
      } else {
        d2 = rng.uniform(1.0, lut.max_dist_sq());
      }
      simd_c[i].dist_sq = scalar_c[i].dist_sq = d2;
      simd_c[i].slot = scalar_c[i].slot = static_cast<std::uint32_t>(i);
    }
    fanout_lut_eval(lut, 20.0, simd_c.data(), n, /*use_simd=*/true);
    fanout_lut_eval(lut, 20.0, scalar_c.data(), n, /*use_simd=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(simd_c[i].rx_dbm),
                std::bit_cast<std::uint64_t>(scalar_c[i].rx_dbm))
          << "n=" << n << " i=" << i << " d2=" << simd_c[i].dist_sq;
      // And both must equal the member-function lookup exactly.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(scalar_c[i].rx_dbm),
                std::bit_cast<std::uint64_t>(
                    lut.rx_power_dbm_sq(20.0, scalar_c[i].dist_sq)));
    }
  }
}

// --- PathLossLut ---

TEST(PathLossLut, MonotoneAndWithinErrorBound) {
  LogDistancePathLoss::Config cfg;
  LogDistancePathLoss exact(cfg);
  PathLossLut lut(cfg, 600.0);
  ASSERT_TRUE(lut.covers(600.0 * 600.0));
  // The analytic per-segment bound must be tiny versus RSSI quantization.
  EXPECT_GT(lut.max_error_db(), 0.0);
  EXPECT_LT(lut.max_error_db(), 0.002);

  double prev_rx = 1e300;
  Rng rng(99);
  for (int i = 0; i <= 20000; ++i) {
    const double d = 1.0 + (600.0 - 1.0) * i / 20000.0;
    const double approx = lut.rx_power_dbm_sq(20.0, d * d);
    const double truth = exact.rx_power_dbm(20.0, d);
    // The chord sits below the concave PL curve, so the approximation never
    // understates path loss by more than the bound and never overstates it.
    EXPECT_LE(truth - approx, 1e-12) << "d=" << d;
    EXPECT_LE(approx - truth, lut.max_error_db() + 1e-12) << "d=" << d;
    EXPECT_LE(approx, prev_rx + 1e-15) << "d=" << d;  // monotone in distance
    prev_rx = approx;
    // Random spot checks too, not just the uniform sweep.
    const double rd = rng.uniform(1.0, 600.0);
    const double delta =
        lut.rx_power_dbm_sq(20.0, rd * rd) - exact.rx_power_dbm(20.0, rd);
    EXPECT_LE(std::abs(delta), lut.max_error_db() + 1e-12);
  }
}

TEST(PathLossLut, ClampMatchesExactInsideReferenceDistance) {
  LogDistancePathLoss::Config cfg;
  LogDistancePathLoss exact(cfg);
  PathLossLut lut(cfg, 100.0);
  EXPECT_DOUBLE_EQ(lut.rx_power_dbm_sq(20.0, 0.25),
                   exact.rx_power_dbm(20.0, 0.5));
  EXPECT_DOUBLE_EQ(lut.rx_power_dbm_sq(20.0, 1.0),
                   exact.rx_power_dbm(20.0, 1.0));
}

// --- Batched-vs-reference equivalence fuzz ---

// One recorded delivery: which receiver, when, at what RSSI.
struct DeliveryRecord {
  std::uint64_t rx_id = 0;
  std::int64_t t_us = 0;
  double rssi_dbm = 0.0;
  std::uint8_t channel = 0;

  bool operator==(const DeliveryRecord&) const = default;
};

// A Medium plus a population of radios whose sinks log every delivery into
// one shared sequence — the observable behavior two pipelines must agree on.
struct FuzzRig {
  struct LoggingSink : FrameSink {
    std::vector<DeliveryRecord>* log = nullptr;
    std::uint64_t id = 0;
    void on_frame(const dot11::Frame&, const RxInfo& info) override {
      log->push_back({id, info.time.us(), info.rssi_dbm, info.channel});
    }
  };

  EventQueue events;
  Medium medium;
  std::vector<std::unique_ptr<LoggingSink>> sinks;
  std::vector<Radio> radios;
  std::vector<DeliveryRecord> log;

  explicit FuzzRig(Medium::Config cfg) : medium(events, cfg) {}

  void attach(Position pos, std::uint8_t channel, double dbm) {
    auto sink = std::make_unique<LoggingSink>();
    sink->log = &log;
    radios.push_back(medium.attach(pos, channel, dbm, sink.get()));
    sink->id = radios.back().id();
    sinks.push_back(std::move(sink));
  }
};

// Scripted operations, generated once and replayed against every rig.
struct FuzzOp {
  enum Kind { kAttach, kDetach, kMove, kSetChannel, kTransmit } kind;
  std::size_t target = 0;    // radio index (mod population)
  Position pos;
  std::uint8_t channel = 6;
  double dbm = 15.0;
  bool broadcast = true;
};

std::vector<FuzzOp> make_fuzz_script(std::uint64_t seed, int ops) {
  Rng rng(seed);
  std::vector<FuzzOp> script;
  const std::uint8_t channels[] = {1, 6, 11};
  // Positions span ±200 m with ~60 m cells: moves routinely cross cell
  // boundaries and transmissions straddle several buckets.
  const auto pos = [&rng]() -> Position {
    return {rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0)};
  };
  for (int i = 0; i < 12; ++i) {  // initial population
    script.push_back({FuzzOp::kAttach, 0, pos(),
                      channels[rng.index(3)],
                      rng.chance(0.3) ? 20.0 : 15.0, true});
  }
  for (int i = 0; i < ops; ++i) {
    const double roll = rng.uniform(0.0, 1.0);
    FuzzOp op;
    op.target = rng.index(64);
    op.pos = pos();
    op.channel = channels[rng.index(3)];
    op.dbm = rng.chance(0.3) ? 20.0 : 15.0;
    op.broadcast = rng.chance(0.5);
    if (roll < 0.12) {
      op.kind = FuzzOp::kAttach;
    } else if (roll < 0.2) {
      op.kind = FuzzOp::kDetach;
    } else if (roll < 0.38) {
      op.kind = FuzzOp::kMove;
    } else if (roll < 0.46) {
      op.kind = FuzzOp::kSetChannel;
    } else {
      op.kind = FuzzOp::kTransmit;
    }
    script.push_back(op);
  }
  return script;
}

void replay(FuzzRig& rig, const std::vector<FuzzOp>& script) {
  Rng frame_rng(4242);  // same MACs in every rig
  std::size_t alive_guess = 0;
  for (const FuzzOp& op : script) {
    const std::size_t n = rig.radios.size();
    switch (op.kind) {
      case FuzzOp::kAttach:
        rig.attach(op.pos, op.channel, op.dbm);
        ++alive_guess;
        break;
      case FuzzOp::kDetach: {
        if (n == 0) break;
        Radio& r = rig.radios[op.target % n];
        if (r.valid()) rig.medium.detach(r);
        break;
      }
      case FuzzOp::kMove: {
        if (n == 0) break;
        Radio& r = rig.radios[op.target % n];
        if (r.valid()) r.set_position(op.pos);
        break;
      }
      case FuzzOp::kSetChannel: {
        if (n == 0) break;
        Radio& r = rig.radios[op.target % n];
        if (r.valid()) r.set_channel(op.channel);
        break;
      }
      case FuzzOp::kTransmit: {
        if (n == 0) break;
        Radio& r = rig.radios[op.target % n];
        const auto src = MacAddress::random_local(frame_rng);
        const auto dst = MacAddress::random_local(frame_rng);
        if (!r.valid()) break;
        if (op.broadcast) {
          r.transmit(dot11::make_broadcast_probe_request(src));
        } else {
          r.transmit(
              dot11::make_probe_response(src, dst, "fuzz-ssid", r.channel(),
                                         true));
        }
        rig.events.run_all();
        break;
      }
    }
  }
  (void)alive_guess;
}

Medium::Config fuzz_config(bool batched, bool lut, bool cache, bool grid,
                           bool fault) {
  Medium::Config cfg;
  cfg.spatial_grid = grid;
  cfg.batched_fanout = batched;
  cfg.pathloss_lut = lut;
  cfg.pathloss_cache = cache;
  if (fault) {
    cfg.fault.enabled = true;
    cfg.fault.seed = 77;
    cfg.fault.ambient_loss = 0.05;
    cfg.fault.corruption_rate = 0.02;
  }
  return cfg;
}

TEST(MediumEquivalence, BatchedMatchesReferenceUnderChurn) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const auto script = make_fuzz_script(seed, 300);

    // Exact-math rigs: every delivery must match bit for bit.
    FuzzRig reference(fuzz_config(false, false, false, true, false));
    FuzzRig scan(fuzz_config(false, false, false, false, false));
    FuzzRig batched_exact(fuzz_config(true, false, false, true, false));
    FuzzRig batched_cached(fuzz_config(true, false, true, true, false));
    replay(reference, script);
    replay(scan, script);
    replay(batched_exact, script);
    replay(batched_cached, script);
    EXPECT_EQ(reference.log, scan.log) << "seed " << seed;
    EXPECT_EQ(reference.log, batched_exact.log) << "seed " << seed;
    EXPECT_EQ(reference.log, batched_cached.log) << "seed " << seed;

    // LUT rig: identical delivery set/order/timing; RSSI within the LUT's
    // analytic error bound (far below RSSI quantization).
    FuzzRig batched_lut(fuzz_config(true, true, true, true, false));
    replay(batched_lut, script);
    ASSERT_EQ(batched_lut.log.size(), reference.log.size()) << "seed " << seed;
    const PathLossLut bound_lut(Medium::Config{}.propagation, 1000.0);
    for (std::size_t i = 0; i < reference.log.size(); ++i) {
      EXPECT_EQ(batched_lut.log[i].rx_id, reference.log[i].rx_id);
      EXPECT_EQ(batched_lut.log[i].t_us, reference.log[i].t_us);
      EXPECT_EQ(batched_lut.log[i].channel, reference.log[i].channel);
      EXPECT_LE(std::abs(batched_lut.log[i].rssi_dbm -
                         reference.log[i].rssi_dbm),
                bound_lut.max_error_db() + 1e-12);
    }
  }
}

TEST(MediumEquivalence, LossyRunsAreBitIdenticalAcrossPipelines) {
  // With fault injection on, every pipeline takes the exact-math road for
  // the erasure draw, so lossy runs must agree bit for bit — RSSI, loss
  // pattern, and counters alike.
  for (const std::uint64_t seed : {5u, 6u}) {
    const auto script = make_fuzz_script(seed, 300);
    FuzzRig reference(fuzz_config(false, false, false, true, true));
    FuzzRig batched(fuzz_config(true, true, true, true, true));
    FuzzRig scan(fuzz_config(false, false, false, false, true));
    replay(reference, script);
    replay(batched, script);
    replay(scan, script);
    EXPECT_EQ(reference.log, batched.log) << "seed " << seed;
    EXPECT_EQ(reference.log, scan.log) << "seed " << seed;
    EXPECT_EQ(reference.medium.frames_lost(), batched.medium.frames_lost());
    EXPECT_EQ(reference.medium.drops(), batched.medium.drops());
    EXPECT_EQ(reference.medium.retries(), batched.medium.retries());
  }
}

// --- SIMD / sharded fanout equivalence ---

TEST(MediumEquivalence, SimdAndScalarFanoutsAreBitIdentical) {
  // simd_fanout toggles nothing observable: the vector kernels replicate the
  // scalar operation order exactly, so the full default pipeline (LUT +
  // cache) must agree bit for bit, lossless and lossy alike. (On hardware
  // without AVX2 both rigs run scalar and this degenerates to a self-check.)
  for (const bool fault : {false, true}) {
    const auto script = make_fuzz_script(fault ? 44u : 43u, 300);
    Medium::Config simd_cfg = fuzz_config(true, true, true, true, fault);
    Medium::Config scalar_cfg = simd_cfg;
    scalar_cfg.simd_fanout = false;
    FuzzRig simd_rig(simd_cfg);
    FuzzRig scalar_rig(scalar_cfg);
    replay(simd_rig, script);
    replay(scalar_rig, script);
    EXPECT_EQ(simd_rig.log, scalar_rig.log) << "fault=" << fault;
    EXPECT_EQ(simd_rig.medium.pathloss_cache_hits(),
              scalar_rig.medium.pathloss_cache_hits());
    EXPECT_EQ(simd_rig.medium.frames_lost(),
              scalar_rig.medium.frames_lost());
  }
}

TEST(MediumEquivalence, ShardedFanoutMatchesLegacyScanAtAnyWorkerCount) {
  // Exact-math sharded rigs vs the legacy full scan: byte-identical
  // deliveries at 1, 2 and 8 workers. shard_min_candidates = 0 forces every
  // fanout through the fork-join path, so the merge really is exercised.
  for (const std::uint64_t seed : {11u, 22u}) {
    const auto script = make_fuzz_script(seed, 300);
    FuzzRig scan(fuzz_config(false, false, false, false, false));
    replay(scan, script);
    for (const int workers : {1, 2, 8}) {
      Medium::Config cfg = fuzz_config(true, false, false, true, false);
      cfg.intra_run_workers = workers;
      cfg.shard_min_candidates = 0;
      FuzzRig rig(cfg);
      replay(rig, script);
      EXPECT_EQ(scan.log, rig.log) << "seed " << seed << " workers "
                                   << workers;
    }
  }
}

TEST(MediumEquivalence, ShardedLossyRunsAreBitIdenticalToLegacyScan) {
  // The faulty path under sharding: erasure draws consume on the calling
  // thread in merged slot order, so the loss pattern must match the legacy
  // scan bit for bit at any worker count.
  for (const std::uint64_t seed : {5u, 6u}) {
    const auto script = make_fuzz_script(seed, 300);
    FuzzRig scan(fuzz_config(false, false, false, false, true));
    replay(scan, script);
    for (const int workers : {1, 2, 8}) {
      Medium::Config cfg = fuzz_config(true, true, true, true, true);
      cfg.intra_run_workers = workers;
      cfg.shard_min_candidates = 0;
      FuzzRig rig(cfg);
      replay(rig, script);
      EXPECT_EQ(scan.log, rig.log) << "seed " << seed << " workers "
                                   << workers;
      EXPECT_EQ(scan.medium.frames_lost(), rig.medium.frames_lost());
      EXPECT_EQ(scan.medium.drops(), rig.medium.drops());
      EXPECT_EQ(scan.medium.retries(), rig.medium.retries());
    }
  }
}

// Churn harness for the mid-delivery mutation test: sinks that move,
// detach and attach radios from inside on_frame, off a deterministic tick
// shared by the whole population.
struct ChurnSink;
struct ChurnState {
  Medium* medium = nullptr;
  std::vector<Radio> radios;
  std::vector<std::unique_ptr<ChurnSink>> sinks;
  std::vector<DeliveryRecord> log;
  std::uint64_t tick = 0;

  void attach(Position pos, std::uint8_t channel, double dbm);
};
struct ChurnSink : FrameSink {
  ChurnState* s = nullptr;
  std::uint64_t id = 0;
  void on_frame(const dot11::Frame&, const RxInfo& info) override {
    s->log.push_back({id, info.time.us(), info.rssi_dbm, info.channel});
    const std::uint64_t t = s->tick++;
    auto& radios = s->radios;
    if (t % 3 == 0) {  // drag a peer across cells mid-fanout
      Radio& r = radios[t % radios.size()];
      if (r.valid()) {
        r.set_position({static_cast<double>(t % 173) - 86.0,
                        static_cast<double>(t % 59) - 29.0});
      }
    }
    if (t % 7 == 2) {  // detach a peer mid-fanout
      Radio& r = radios[(t / 7) % radios.size()];
      if (r.valid()) s->medium->detach(r);
    }
    if (t % 11 == 4) {  // attach mid-fanout (slot > every candidate)
      s->attach({static_cast<double>(t % 97) - 48.0, 10.0}, 6, 15.0);
    }
  }
};

void ChurnState::attach(Position pos, std::uint8_t channel, double dbm) {
  auto sink = std::make_unique<ChurnSink>();
  sink->s = this;
  radios.push_back(medium->attach(pos, channel, dbm, sink.get()));
  sink->id = radios.back().id();
  sinks.push_back(std::move(sink));
}

TEST(MediumEquivalence, ShardedFanoutSurvivesSinkChurnMidDelivery) {
  // Sinks that mutate the topology *during* the fanout — moving peers,
  // detaching them, attaching new radios — from inside on_frame. The shard
  // stage snapshots survivors before any sink runs, so every pipeline and
  // worker count must deliver the same sequence as the legacy scan.
  const auto run = [](Medium::Config cfg) {
    EventQueue events;
    Medium medium(events, cfg);
    ChurnState state;
    state.medium = &medium;
    Rng rng(313);
    for (int i = 0; i < 24; ++i) {
      state.attach({rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)},
                   6, rng.chance(0.25) ? 20.0 : 15.0);
    }
    auto& radios = state.radios;
    Rng mac_rng(99);
    for (int i = 0; i < 80; ++i) {
      Radio& tx = radios[static_cast<std::size_t>(i * 7) % radios.size()];
      if (!tx.valid()) continue;
      if (i % 2 == 0) {
        tx.transmit(dot11::make_broadcast_probe_request(
            MacAddress::random_local(mac_rng)));
      } else {
        tx.transmit(dot11::make_probe_response(
            MacAddress::random_local(mac_rng),
            MacAddress::random_local(mac_rng), "churn", tx.channel(), true));
      }
      events.run_all();
    }
    return state.log;
  };

  const auto scan_log = run(fuzz_config(false, false, false, false, false));
  ASSERT_FALSE(scan_log.empty());
  for (const int workers : {1, 2, 8}) {
    Medium::Config cfg = fuzz_config(true, false, false, true, false);
    cfg.intra_run_workers = workers;
    cfg.shard_min_candidates = 0;
    const auto log = run(cfg);
    ASSERT_EQ(log.size(), scan_log.size()) << "workers " << workers;
    for (std::size_t i = 0; i < log.size(); ++i) {
      ASSERT_EQ(log[i].rx_id, scan_log[i].rx_id)
          << "workers " << workers << " record " << i;
      ASSERT_EQ(log[i].t_us, scan_log[i].t_us)
          << "workers " << workers << " record " << i;
      const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
      ASSERT_EQ(bits(log[i].rssi_dbm), bits(scan_log[i].rssi_dbm))
          << "workers " << workers << " record " << i;
      ASSERT_EQ(log[i].channel, scan_log[i].channel)
          << "workers " << workers << " record " << i;
    }
  }
}

// --- Channel-partitioned index: set_channel storms and layout toggles ---

// A script that hammers the channel-bucket migration path: a bigger
// population than the regular fuzz mix, and more than half of all ops are
// set_channel calls (bursts of retunes between transmits). Every retune
// migrates the radio between per-channel buckets — erase from one
// partition, insert into another — so this stresses bucket create/recycle,
// deferred-merge normalization and arena compaction far harder than
// make_fuzz_script's 8% retune rate.
std::vector<FuzzOp> make_channel_storm_script(std::uint64_t seed, int ops) {
  Rng rng(seed);
  std::vector<FuzzOp> script;
  const std::uint8_t channels[] = {1, 6, 11};
  const auto pos = [&rng]() -> Position {
    return {rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0)};
  };
  for (int i = 0; i < 24; ++i) {  // initial population
    script.push_back({FuzzOp::kAttach, 0, pos(), channels[rng.index(3)],
                      rng.chance(0.3) ? 20.0 : 15.0, true});
  }
  for (int i = 0; i < ops; ++i) {
    const double roll = rng.uniform(0.0, 1.0);
    FuzzOp op;
    op.target = rng.index(64);
    op.pos = pos();
    op.channel = channels[rng.index(3)];
    op.dbm = rng.chance(0.3) ? 20.0 : 15.0;
    op.broadcast = rng.chance(0.5);
    if (roll < 0.04) {
      op.kind = FuzzOp::kAttach;
    } else if (roll < 0.10) {
      op.kind = FuzzOp::kDetach;
    } else if (roll < 0.22) {
      op.kind = FuzzOp::kMove;
    } else if (roll < 0.78) {
      op.kind = FuzzOp::kSetChannel;
    } else {
      op.kind = FuzzOp::kTransmit;
    }
    script.push_back(op);
  }
  return script;
}

TEST(MediumEquivalence, SetChannelStormMatchesLegacyScanAcrossPipelines) {
  // Byte-identity under retune-dominated churn: the channel-partitioned
  // rigs must agree with the legacy full scan (which has no index at all)
  // at every worker count, exact-math and faulty alike.
  for (const std::uint64_t seed : {101u, 202u}) {
    const auto script = make_channel_storm_script(seed, 500);
    for (const bool fault : {false, true}) {
      FuzzRig scan(fuzz_config(false, false, false, false, fault));
      replay(scan, script);
      ASSERT_FALSE(scan.log.empty()) << "seed " << seed;
      for (const int workers : {1, 2, 8}) {
        // Exact rigs run plain batched math; lossy rigs get the full LUT +
        // cache pipeline, which the fault path degrades to exact math.
        Medium::Config cfg = fault ? fuzz_config(true, true, true, true, true)
                                   : fuzz_config(true, false, false, true,
                                                 false);
        cfg.intra_run_workers = workers;
        cfg.shard_min_candidates = 0;
        FuzzRig rig(cfg);
        replay(rig, script);
        EXPECT_EQ(scan.log, rig.log)
            << "seed " << seed << " fault " << fault << " workers " << workers;
        if (fault) {
          EXPECT_EQ(scan.medium.frames_lost(), rig.medium.frames_lost());
          EXPECT_EQ(scan.medium.drops(), rig.medium.drops());
          EXPECT_EQ(scan.medium.retries(), rig.medium.retries());
        }
      }
    }
  }
}

TEST(MediumEquivalence, ChannelBucketLayoutTogglesAreBitIdentical) {
  // channel_buckets = false keeps the old mixed-channel per-cell buckets.
  // The partitioned layout must be observably invisible: identical delivery
  // bytes and loss counters over both the regular fuzz mix and the retune
  // storm. Only the waste counter may differ — the partitioned index
  // streams no mismatched-key candidates at all, while the mixed layout
  // pays for every co-located off-channel radio.
  for (const bool fault : {false, true}) {
    for (const bool storm : {false, true}) {
      const std::uint64_t seed = storm ? 909u : 808u;
      const auto script = storm ? make_channel_storm_script(seed, 500)
                                : make_fuzz_script(seed, 300);
      Medium::Config part_cfg = fuzz_config(true, true, true, true, fault);
      Medium::Config mixed_cfg = part_cfg;
      mixed_cfg.channel_buckets = false;
      FuzzRig part(part_cfg);
      FuzzRig mixed(mixed_cfg);
      replay(part, script);
      replay(mixed, script);
      EXPECT_EQ(part.log, mixed.log) << "fault " << fault << " storm "
                                     << storm;
      EXPECT_EQ(part.medium.frames_lost(), mixed.medium.frames_lost());
      EXPECT_EQ(part.medium.drops(), mixed.medium.drops());
      // Same candidates pass the key filter either way; the partitioned
      // index just never loads the ones that would fail it.
      EXPECT_EQ(part.medium.fanout_stats().key_matched,
                mixed.medium.fanout_stats().key_matched);
      EXPECT_EQ(part.medium.fanout_stats().wasted_candidates(), 0u);
      EXPECT_GE(mixed.medium.fanout_stats().wasted_candidates(),
                part.medium.fanout_stats().wasted_candidates());
    }
  }
}

TEST(MediumEquivalence, ChannelStormSurvivesShardedFaultyMigration) {
  // The nastiest combination in one rig: retune-dominated churn, fault
  // injection, forced sharding, LUT + cache — replayed twice to check the
  // rig itself is deterministic (arena compaction and bucket recycling must
  // not leak allocation order into deliveries).
  const auto script = make_channel_storm_script(321u, 600);
  const auto run_once = [&script]() {
    Medium::Config cfg = fuzz_config(true, true, true, true, true);
    cfg.intra_run_workers = 8;
    cfg.shard_min_candidates = 0;
    FuzzRig rig(cfg);
    replay(rig, script);
    return rig.log;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// Move-dominated churn spread over a wide area (most radios alone in their
// ~60 m cell), so nearly every move vacates a bucket and turns its whole
// capacity into arena garbage. A few thousand ops push the garbage counter
// past the compaction trigger (garbage >= 4096 and garbage > live) several
// times over while the live population stays ~24 — exactly the regime
// maybe_compact_arena exists for. Interleaved transmits make the probes
// bracket the compactions, so a botched rewrite would corrupt deliveries.
std::vector<FuzzOp> make_compaction_storm_script(std::uint64_t seed,
                                                 int ops) {
  Rng rng(seed);
  std::vector<FuzzOp> script;
  const std::uint8_t channels[] = {1, 6, 11};
  const auto pos = [&rng]() -> Position {
    return {rng.uniform(-480.0, 480.0), rng.uniform(-480.0, 480.0)};
  };
  for (int i = 0; i < 24; ++i) {  // initial population
    script.push_back({FuzzOp::kAttach, 0, pos(), channels[rng.index(3)],
                      rng.chance(0.3) ? 20.0 : 15.0, true});
  }
  for (int i = 0; i < ops; ++i) {
    const double roll = rng.uniform(0.0, 1.0);
    FuzzOp op;
    op.target = rng.index(64);
    op.pos = pos();
    op.channel = channels[rng.index(3)];
    op.dbm = rng.chance(0.3) ? 20.0 : 15.0;
    op.broadcast = rng.chance(0.5);
    if (roll < 0.04) {
      op.kind = FuzzOp::kAttach;
    } else if (roll < 0.08) {
      op.kind = FuzzOp::kDetach;
    } else if (roll < 0.14) {
      op.kind = FuzzOp::kSetChannel;
    } else if (roll < 0.92) {
      op.kind = FuzzOp::kMove;
    } else {
      op.kind = FuzzOp::kTransmit;
    }
    script.push_back(op);
  }
  return script;
}

TEST(MediumEquivalence, CompactionStormMatchesLegacyScanAcrossPipelines) {
  // Slab-arena compaction under fire: the storm must actually trip the
  // compactor (asserted via the arena counters, not inferred), and every
  // delivery before and after each rewrite must match the legacy full scan
  // — which has no arena to compact — byte for byte, at any worker count,
  // exact-math and faulty alike.
  const auto script = make_compaction_storm_script(555u, 7000);
  for (const bool fault : {false, true}) {
    FuzzRig scan(fuzz_config(false, false, false, false, fault));
    replay(scan, script);
    ASSERT_FALSE(scan.log.empty()) << "fault " << fault;
    EXPECT_EQ(scan.medium.arena_stats().compactions, 0u);  // no index at all
    for (const int workers : {1, 8}) {
      Medium::Config cfg = fault ? fuzz_config(true, true, true, true, true)
                                 : fuzz_config(true, false, false, true,
                                               false);
      cfg.intra_run_workers = workers;
      cfg.shard_min_candidates = 0;
      FuzzRig rig(cfg);
      replay(rig, script);
      const auto arena = rig.medium.arena_stats();
      EXPECT_GT(arena.compactions, 0u)
          << "storm never tripped the compactor (garbage " << arena.garbage
          << ", live " << arena.live << ") — the test lost its teeth";
      // Between compactions the garbage stays under the trigger: compaction
      // fires as soon as both arms (>= 4096 and > live) hold.
      EXPECT_TRUE(arena.garbage < 4096 || arena.garbage <= arena.live)
          << "garbage " << arena.garbage << " live " << arena.live;
      EXPECT_EQ(scan.log, rig.log)
          << "fault " << fault << " workers " << workers;
      if (fault) {
        EXPECT_EQ(scan.medium.frames_lost(), rig.medium.frames_lost());
        EXPECT_EQ(scan.medium.drops(), rig.medium.drops());
        EXPECT_EQ(scan.medium.retries(), rig.medium.retries());
      }
    }
  }
}

TEST(MediumConfig, RejectsBadIntraRunWorkers) {
  EventQueue events;
  Medium::Config cfg;
  cfg.intra_run_workers = 0;
  EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
  cfg.intra_run_workers = 17;
  EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
  cfg.intra_run_workers = 2;
  cfg.shard_min_candidates = -1;
  EXPECT_THROW(Medium(events, cfg), std::invalid_argument);
}

// --- Pair pathloss cache ---

TEST(MediumPairCache, EpochInvalidationOnMoveAndExactValues) {
  // LUT off + cache on: cached RSSI must equal the exact model bitwise,
  // before and after the receiver moves (the move bumps its link epoch and
  // must invalidate the pair entry).
  Medium::Config cfg;
  cfg.pathloss_lut = false;
  EventQueue events;
  Medium medium(events, cfg);
  Rng rng(3);

  Collector rx;
  auto ap = medium.attach({0, 0}, 6, 20.0);
  auto phone = medium.attach({30, 0}, 6, 15.0, &rx);
  const auto beacon =
      dot11::make_broadcast_probe_request(MacAddress::random_local(rng));

  ap.transmit(beacon);
  events.run_all();
  ASSERT_EQ(rx.infos.size(), 1u);
  EXPECT_EQ(medium.pathloss_cache_misses(), 1u);
  EXPECT_EQ(medium.pathloss_cache_hits(), 0u);
  EXPECT_DOUBLE_EQ(rx.infos[0].rssi_dbm,
                   medium.propagation().rx_power_dbm(20.0, 30.0));

  ap.transmit(beacon);  // static pair: second beacon hits the cache
  events.run_all();
  ASSERT_EQ(rx.infos.size(), 2u);
  EXPECT_EQ(medium.pathloss_cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(rx.infos[1].rssi_dbm, rx.infos[0].rssi_dbm);

  phone.set_position({50, 0});  // invalidates every entry touching the phone
  ap.transmit(beacon);
  events.run_all();
  ASSERT_EQ(rx.infos.size(), 3u);
  EXPECT_EQ(medium.pathloss_cache_misses(), 2u);
  EXPECT_EQ(medium.pathloss_cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(rx.infos[2].rssi_dbm,
                   medium.propagation().rx_power_dbm(20.0, 50.0));
  (void)phone;
}

TEST(MediumPairCache, TxPowerChangeInvalidatesWithoutMove) {
  Medium::Config cfg;
  cfg.pathloss_lut = false;
  EventQueue events;
  Medium medium(events, cfg);
  Rng rng(4);

  Collector rx;
  auto ap = medium.attach({0, 0}, 6, 20.0);
  medium.attach({25, 0}, 6, 15.0, &rx);
  const auto beacon =
      dot11::make_broadcast_probe_request(MacAddress::random_local(rng));

  ap.transmit(beacon);
  events.run_all();
  ap.set_tx_power_dbm(17.0);  // entry keyed by tx power: stale value unusable
  ap.transmit(beacon);
  events.run_all();
  ASSERT_EQ(rx.infos.size(), 2u);
  EXPECT_DOUBLE_EQ(rx.infos[0].rssi_dbm,
                   medium.propagation().rx_power_dbm(20.0, 25.0));
  EXPECT_DOUBLE_EQ(rx.infos[1].rssi_dbm,
                   medium.propagation().rx_power_dbm(17.0, 25.0));
  EXPECT_EQ(medium.pathloss_cache_misses(), 2u);
}

}  // namespace
}  // namespace cityhunter::medium
