#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dot11/serialize.h"
#include "dot11/timing.h"
#include "medium/event_queue.h"
#include "medium/medium.h"
#include "medium/propagation.h"
#include "support/rng.h"

namespace cityhunter::medium {
namespace {

using dot11::MacAddress;
using support::Rng;
using support::SimTime;

// --- EventQueue ---

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::seconds(3.0), [&] { order.push_back(3); });
  q.schedule_at(SimTime::seconds(1.0), [&] { order.push_back(1); });
  q.schedule_at(SimTime::seconds(2.0), [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), SimTime::seconds(3.0));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(SimTime::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilAdvancesClockEvenWhenEmpty) {
  EventQueue q;
  q.run_until(SimTime::minutes(5.0));
  EXPECT_EQ(q.now(), SimTime::minutes(5.0));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime::seconds(1.0), [&] { ++fired; });
  q.schedule_at(SimTime::seconds(10.0), [&] { ++fired; });
  q.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule_in(SimTime::seconds(1.0), [&] { ++fired; });
  h.cancel();
  q.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelTwiceIsSafe) {
  EventQueue q;
  auto h = q.schedule_in(SimTime::seconds(1.0), [] {});
  h.cancel();
  h.cancel();
  q.run_all();
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(SimTime::seconds(1.0), recurse);
  };
  q.schedule_in(SimTime::seconds(1.0), recurse);
  q.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), SimTime::seconds(5.0));
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(SimTime::seconds(2.0), [] {});
  q.run_until(SimTime::seconds(3.0));
  EXPECT_THROW(q.schedule_at(SimTime::seconds(1.0), [] {}),
               std::invalid_argument);
}

TEST(EventQueue, PastSchedulingErrorNamesBothTimes) {
  EventQueue q;
  q.run_until(SimTime::seconds(3.0));
  try {
    q.schedule_at(SimTime::seconds(1.0), [] {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("now="), std::string::npos) << what;
    EXPECT_NE(what.find("requested="), std::string::npos) << what;
    EXPECT_NE(what.find(SimTime::seconds(3.0).str()), std::string::npos)
        << what;
    EXPECT_NE(what.find(SimTime::seconds(1.0).str()), std::string::npos)
        << what;
  }
}

// --- Propagation ---

TEST(Propagation, PowerDecreasesWithDistance) {
  LogDistancePathLoss model;
  const double p10 = model.rx_power_dbm(20.0, 10.0);
  const double p50 = model.rx_power_dbm(20.0, 50.0);
  EXPECT_GT(p10, p50);
}

TEST(Propagation, ClampInsideReferenceDistance) {
  LogDistancePathLoss model;
  EXPECT_DOUBLE_EQ(model.rx_power_dbm(20.0, 0.1),
                   model.rx_power_dbm(20.0, 1.0));
}

TEST(Propagation, MaxRangeConsistentWithDeliverable) {
  LogDistancePathLoss model;
  const double r = model.max_range(20.0);
  EXPECT_TRUE(model.deliverable(20.0, r * 0.99));
  EXPECT_FALSE(model.deliverable(20.0, r * 1.01));
}

TEST(Propagation, DefaultRangeMatchesRaspberryPiScale) {
  LogDistancePathLoss model;
  const double r = model.max_range(20.0);  // 100 mW attacker
  EXPECT_GT(r, 40.0);
  EXPECT_LT(r, 90.0);
}

TEST(Propagation, DbmConversion) {
  EXPECT_DOUBLE_EQ(dbm_from_milliwatts(100.0), 20.0);
  EXPECT_DOUBLE_EQ(dbm_from_milliwatts(1.0), 0.0);
}

// --- Medium ---

class Collector : public FrameSink {
 public:
  void on_frame(const dot11::Frame& frame, const RxInfo& info) override {
    frames.push_back(frame);
    infos.push_back(info);
  }
  std::vector<dot11::Frame> frames;
  std::vector<RxInfo> infos;
};

class MediumTest : public ::testing::Test {
 protected:
  EventQueue events;
  Medium medium{events};
  Rng rng{1};
};

TEST_F(MediumTest, DeliversWithinRange) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({30, 0}, 6, 15.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_EQ(rx.frames[0].subtype(), dot11::MgmtSubtype::kProbeRequest);
  EXPECT_LT(rx.infos[0].rssi_dbm, -30.0);
  (void)b;
}

TEST_F(MediumTest, DropsBeyondRange) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({5000, 0}, 6, 15.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, ChannelIsolation) {
  Collector rx6, rx11;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx6);
  medium.attach({10, 0}, 11, 15.0, &rx11);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(rx6.frames.size(), 1u);
  EXPECT_TRUE(rx11.frames.empty());
}

TEST_F(MediumTest, SenderDoesNotHearItself) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, TransmissionsAreSerializedWithAirtime) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  const auto client = MacAddress::random_local(rng);
  for (int i = 0; i < 10; ++i) {
    a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                          client, "X", 6, true));
  }
  // After one frame's effective airtime only the first frame has landed.
  const auto one_frame =
      dot11::airtime(dot11::wire_size(dot11::make_probe_response(
                         MacAddress::random_local(rng), client, "X", 6, true)),
                     medium.config().mgmt_rate_mbps) *
      medium.config().contention_factor;
  events.run_until(one_frame + SimTime::microseconds(10));
  EXPECT_EQ(rx.frames.size(), 1u);
  events.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(rx.frames.size(), 10u);
}

TEST_F(MediumTest, FortyResponsesFitInScanWindow) {
  // End-to-end confirmation of the paper's 40-response budget: a full
  // 40-frame train completes within the 20 ms listen window, a longer train
  // does not.
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  const auto client = MacAddress::random_local(rng);
  for (int i = 0; i < 100; ++i) {
    a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                          client, "SSID-xx", 6, true));
  }
  events.run_until(dot11::kMinChannelTime + dot11::kMaxChannelTime);
  EXPECT_GE(rx.frames.size(), 35u);
  EXPECT_LE(rx.frames.size(), 45u);
}

TEST_F(MediumTest, ClearTxQueueAbortsPendingFrames) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  const auto client = MacAddress::random_local(rng);
  for (int i = 0; i < 20; ++i) {
    a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                          client, "Y", 6, true));
  }
  a.clear_tx_queue();
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_EQ(a.tx_backlog(), 0u);
}

TEST_F(MediumTest, MovedRadioStopsReceiving) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0, &rx);
  b.set_position({4000, 4000});
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, DetachedRadioIsGone) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0, &rx);
  medium.detach(b);
  EXPECT_FALSE(b.valid());
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, CountersTrack) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(a.frames_sent(), 1u);
  EXPECT_EQ(b.frames_received(), 1u);
  EXPECT_EQ(medium.transmissions(), 1u);
  EXPECT_EQ(medium.deliveries(), 1u);
}

TEST_F(MediumTest, SinkMayDetachRadiosDuringDelivery) {
  // A sink that detaches another radio mid-fanout must not crash delivery.
  struct Detacher : FrameSink {
    Medium* medium = nullptr;
    Radio* victim = nullptr;
    void on_frame(const dot11::Frame&, const RxInfo&) override {
      if (victim->valid()) medium->detach(*victim);
    }
  };
  Detacher d;
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({5, 0}, 6, 15.0, &d);
  auto c = medium.attach({10, 0}, 6, 15.0, &rx);
  d.medium = &medium;
  d.victim = &c;
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_FALSE(c.valid());
  EXPECT_TRUE(rx.frames.empty());  // c was detached before its delivery
  (void)b;
}

// --- PathLossLut ---

TEST(PathLossLut, MonotoneAndWithinErrorBound) {
  LogDistancePathLoss::Config cfg;
  LogDistancePathLoss exact(cfg);
  PathLossLut lut(cfg, 600.0);
  ASSERT_TRUE(lut.covers(600.0 * 600.0));
  // The analytic per-segment bound must be tiny versus RSSI quantization.
  EXPECT_GT(lut.max_error_db(), 0.0);
  EXPECT_LT(lut.max_error_db(), 0.002);

  double prev_rx = 1e300;
  Rng rng(99);
  for (int i = 0; i <= 20000; ++i) {
    const double d = 1.0 + (600.0 - 1.0) * i / 20000.0;
    const double approx = lut.rx_power_dbm_sq(20.0, d * d);
    const double truth = exact.rx_power_dbm(20.0, d);
    // The chord sits below the concave PL curve, so the approximation never
    // understates path loss by more than the bound and never overstates it.
    EXPECT_LE(truth - approx, 1e-12) << "d=" << d;
    EXPECT_LE(approx - truth, lut.max_error_db() + 1e-12) << "d=" << d;
    EXPECT_LE(approx, prev_rx + 1e-15) << "d=" << d;  // monotone in distance
    prev_rx = approx;
    // Random spot checks too, not just the uniform sweep.
    const double rd = rng.uniform(1.0, 600.0);
    const double delta =
        lut.rx_power_dbm_sq(20.0, rd * rd) - exact.rx_power_dbm(20.0, rd);
    EXPECT_LE(std::abs(delta), lut.max_error_db() + 1e-12);
  }
}

TEST(PathLossLut, ClampMatchesExactInsideReferenceDistance) {
  LogDistancePathLoss::Config cfg;
  LogDistancePathLoss exact(cfg);
  PathLossLut lut(cfg, 100.0);
  EXPECT_DOUBLE_EQ(lut.rx_power_dbm_sq(20.0, 0.25),
                   exact.rx_power_dbm(20.0, 0.5));
  EXPECT_DOUBLE_EQ(lut.rx_power_dbm_sq(20.0, 1.0),
                   exact.rx_power_dbm(20.0, 1.0));
}

// --- Batched-vs-reference equivalence fuzz ---

// One recorded delivery: which receiver, when, at what RSSI.
struct DeliveryRecord {
  std::uint64_t rx_id = 0;
  std::int64_t t_us = 0;
  double rssi_dbm = 0.0;
  std::uint8_t channel = 0;

  bool operator==(const DeliveryRecord&) const = default;
};

// A Medium plus a population of radios whose sinks log every delivery into
// one shared sequence — the observable behavior two pipelines must agree on.
struct FuzzRig {
  struct LoggingSink : FrameSink {
    std::vector<DeliveryRecord>* log = nullptr;
    std::uint64_t id = 0;
    void on_frame(const dot11::Frame&, const RxInfo& info) override {
      log->push_back({id, info.time.us(), info.rssi_dbm, info.channel});
    }
  };

  EventQueue events;
  Medium medium;
  std::vector<std::unique_ptr<LoggingSink>> sinks;
  std::vector<Radio> radios;
  std::vector<DeliveryRecord> log;

  explicit FuzzRig(Medium::Config cfg) : medium(events, cfg) {}

  void attach(Position pos, std::uint8_t channel, double dbm) {
    auto sink = std::make_unique<LoggingSink>();
    sink->log = &log;
    radios.push_back(medium.attach(pos, channel, dbm, sink.get()));
    sink->id = radios.back().id();
    sinks.push_back(std::move(sink));
  }
};

// Scripted operations, generated once and replayed against every rig.
struct FuzzOp {
  enum Kind { kAttach, kDetach, kMove, kSetChannel, kTransmit } kind;
  std::size_t target = 0;    // radio index (mod population)
  Position pos;
  std::uint8_t channel = 6;
  double dbm = 15.0;
  bool broadcast = true;
};

std::vector<FuzzOp> make_fuzz_script(std::uint64_t seed, int ops) {
  Rng rng(seed);
  std::vector<FuzzOp> script;
  const std::uint8_t channels[] = {1, 6, 11};
  // Positions span ±200 m with ~60 m cells: moves routinely cross cell
  // boundaries and transmissions straddle several buckets.
  const auto pos = [&rng]() -> Position {
    return {rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0)};
  };
  for (int i = 0; i < 12; ++i) {  // initial population
    script.push_back({FuzzOp::kAttach, 0, pos(),
                      channels[rng.index(3)],
                      rng.chance(0.3) ? 20.0 : 15.0, true});
  }
  for (int i = 0; i < ops; ++i) {
    const double roll = rng.uniform(0.0, 1.0);
    FuzzOp op;
    op.target = rng.index(64);
    op.pos = pos();
    op.channel = channels[rng.index(3)];
    op.dbm = rng.chance(0.3) ? 20.0 : 15.0;
    op.broadcast = rng.chance(0.5);
    if (roll < 0.12) {
      op.kind = FuzzOp::kAttach;
    } else if (roll < 0.2) {
      op.kind = FuzzOp::kDetach;
    } else if (roll < 0.38) {
      op.kind = FuzzOp::kMove;
    } else if (roll < 0.46) {
      op.kind = FuzzOp::kSetChannel;
    } else {
      op.kind = FuzzOp::kTransmit;
    }
    script.push_back(op);
  }
  return script;
}

void replay(FuzzRig& rig, const std::vector<FuzzOp>& script) {
  Rng frame_rng(4242);  // same MACs in every rig
  std::size_t alive_guess = 0;
  for (const FuzzOp& op : script) {
    const std::size_t n = rig.radios.size();
    switch (op.kind) {
      case FuzzOp::kAttach:
        rig.attach(op.pos, op.channel, op.dbm);
        ++alive_guess;
        break;
      case FuzzOp::kDetach: {
        if (n == 0) break;
        Radio& r = rig.radios[op.target % n];
        if (r.valid()) rig.medium.detach(r);
        break;
      }
      case FuzzOp::kMove: {
        if (n == 0) break;
        Radio& r = rig.radios[op.target % n];
        if (r.valid()) r.set_position(op.pos);
        break;
      }
      case FuzzOp::kSetChannel: {
        if (n == 0) break;
        Radio& r = rig.radios[op.target % n];
        if (r.valid()) r.set_channel(op.channel);
        break;
      }
      case FuzzOp::kTransmit: {
        if (n == 0) break;
        Radio& r = rig.radios[op.target % n];
        const auto src = MacAddress::random_local(frame_rng);
        const auto dst = MacAddress::random_local(frame_rng);
        if (!r.valid()) break;
        if (op.broadcast) {
          r.transmit(dot11::make_broadcast_probe_request(src));
        } else {
          r.transmit(
              dot11::make_probe_response(src, dst, "fuzz-ssid", r.channel(),
                                         true));
        }
        rig.events.run_all();
        break;
      }
    }
  }
  (void)alive_guess;
}

Medium::Config fuzz_config(bool batched, bool lut, bool cache, bool grid,
                           bool fault) {
  Medium::Config cfg;
  cfg.spatial_grid = grid;
  cfg.batched_fanout = batched;
  cfg.pathloss_lut = lut;
  cfg.pathloss_cache = cache;
  if (fault) {
    cfg.fault.enabled = true;
    cfg.fault.seed = 77;
    cfg.fault.ambient_loss = 0.05;
    cfg.fault.corruption_rate = 0.02;
  }
  return cfg;
}

TEST(MediumEquivalence, BatchedMatchesReferenceUnderChurn) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const auto script = make_fuzz_script(seed, 300);

    // Exact-math rigs: every delivery must match bit for bit.
    FuzzRig reference(fuzz_config(false, false, false, true, false));
    FuzzRig scan(fuzz_config(false, false, false, false, false));
    FuzzRig batched_exact(fuzz_config(true, false, false, true, false));
    FuzzRig batched_cached(fuzz_config(true, false, true, true, false));
    replay(reference, script);
    replay(scan, script);
    replay(batched_exact, script);
    replay(batched_cached, script);
    EXPECT_EQ(reference.log, scan.log) << "seed " << seed;
    EXPECT_EQ(reference.log, batched_exact.log) << "seed " << seed;
    EXPECT_EQ(reference.log, batched_cached.log) << "seed " << seed;

    // LUT rig: identical delivery set/order/timing; RSSI within the LUT's
    // analytic error bound (far below RSSI quantization).
    FuzzRig batched_lut(fuzz_config(true, true, true, true, false));
    replay(batched_lut, script);
    ASSERT_EQ(batched_lut.log.size(), reference.log.size()) << "seed " << seed;
    const PathLossLut bound_lut(Medium::Config{}.propagation, 1000.0);
    for (std::size_t i = 0; i < reference.log.size(); ++i) {
      EXPECT_EQ(batched_lut.log[i].rx_id, reference.log[i].rx_id);
      EXPECT_EQ(batched_lut.log[i].t_us, reference.log[i].t_us);
      EXPECT_EQ(batched_lut.log[i].channel, reference.log[i].channel);
      EXPECT_LE(std::abs(batched_lut.log[i].rssi_dbm -
                         reference.log[i].rssi_dbm),
                bound_lut.max_error_db() + 1e-12);
    }
  }
}

TEST(MediumEquivalence, LossyRunsAreBitIdenticalAcrossPipelines) {
  // With fault injection on, every pipeline takes the exact-math road for
  // the erasure draw, so lossy runs must agree bit for bit — RSSI, loss
  // pattern, and counters alike.
  for (const std::uint64_t seed : {5u, 6u}) {
    const auto script = make_fuzz_script(seed, 300);
    FuzzRig reference(fuzz_config(false, false, false, true, true));
    FuzzRig batched(fuzz_config(true, true, true, true, true));
    FuzzRig scan(fuzz_config(false, false, false, false, true));
    replay(reference, script);
    replay(batched, script);
    replay(scan, script);
    EXPECT_EQ(reference.log, batched.log) << "seed " << seed;
    EXPECT_EQ(reference.log, scan.log) << "seed " << seed;
    EXPECT_EQ(reference.medium.frames_lost(), batched.medium.frames_lost());
    EXPECT_EQ(reference.medium.drops(), batched.medium.drops());
    EXPECT_EQ(reference.medium.retries(), batched.medium.retries());
  }
}

// --- Pair pathloss cache ---

TEST(MediumPairCache, EpochInvalidationOnMoveAndExactValues) {
  // LUT off + cache on: cached RSSI must equal the exact model bitwise,
  // before and after the receiver moves (the move bumps its link epoch and
  // must invalidate the pair entry).
  Medium::Config cfg;
  cfg.pathloss_lut = false;
  EventQueue events;
  Medium medium(events, cfg);
  Rng rng(3);

  Collector rx;
  auto ap = medium.attach({0, 0}, 6, 20.0);
  auto phone = medium.attach({30, 0}, 6, 15.0, &rx);
  const auto beacon =
      dot11::make_broadcast_probe_request(MacAddress::random_local(rng));

  ap.transmit(beacon);
  events.run_all();
  ASSERT_EQ(rx.infos.size(), 1u);
  EXPECT_EQ(medium.pathloss_cache_misses(), 1u);
  EXPECT_EQ(medium.pathloss_cache_hits(), 0u);
  EXPECT_DOUBLE_EQ(rx.infos[0].rssi_dbm,
                   medium.propagation().rx_power_dbm(20.0, 30.0));

  ap.transmit(beacon);  // static pair: second beacon hits the cache
  events.run_all();
  ASSERT_EQ(rx.infos.size(), 2u);
  EXPECT_EQ(medium.pathloss_cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(rx.infos[1].rssi_dbm, rx.infos[0].rssi_dbm);

  phone.set_position({50, 0});  // invalidates every entry touching the phone
  ap.transmit(beacon);
  events.run_all();
  ASSERT_EQ(rx.infos.size(), 3u);
  EXPECT_EQ(medium.pathloss_cache_misses(), 2u);
  EXPECT_EQ(medium.pathloss_cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(rx.infos[2].rssi_dbm,
                   medium.propagation().rx_power_dbm(20.0, 50.0));
  (void)phone;
}

TEST(MediumPairCache, TxPowerChangeInvalidatesWithoutMove) {
  Medium::Config cfg;
  cfg.pathloss_lut = false;
  EventQueue events;
  Medium medium(events, cfg);
  Rng rng(4);

  Collector rx;
  auto ap = medium.attach({0, 0}, 6, 20.0);
  medium.attach({25, 0}, 6, 15.0, &rx);
  const auto beacon =
      dot11::make_broadcast_probe_request(MacAddress::random_local(rng));

  ap.transmit(beacon);
  events.run_all();
  ap.set_tx_power_dbm(17.0);  // entry keyed by tx power: stale value unusable
  ap.transmit(beacon);
  events.run_all();
  ASSERT_EQ(rx.infos.size(), 2u);
  EXPECT_DOUBLE_EQ(rx.infos[0].rssi_dbm,
                   medium.propagation().rx_power_dbm(20.0, 25.0));
  EXPECT_DOUBLE_EQ(rx.infos[1].rssi_dbm,
                   medium.propagation().rx_power_dbm(17.0, 25.0));
  EXPECT_EQ(medium.pathloss_cache_misses(), 2u);
}

}  // namespace
}  // namespace cityhunter::medium
