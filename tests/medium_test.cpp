#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dot11/serialize.h"
#include "dot11/timing.h"
#include "medium/event_queue.h"
#include "medium/medium.h"
#include "medium/propagation.h"
#include "support/rng.h"

namespace cityhunter::medium {
namespace {

using dot11::MacAddress;
using support::Rng;
using support::SimTime;

// --- EventQueue ---

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::seconds(3.0), [&] { order.push_back(3); });
  q.schedule_at(SimTime::seconds(1.0), [&] { order.push_back(1); });
  q.schedule_at(SimTime::seconds(2.0), [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), SimTime::seconds(3.0));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(SimTime::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilAdvancesClockEvenWhenEmpty) {
  EventQueue q;
  q.run_until(SimTime::minutes(5.0));
  EXPECT_EQ(q.now(), SimTime::minutes(5.0));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime::seconds(1.0), [&] { ++fired; });
  q.schedule_at(SimTime::seconds(10.0), [&] { ++fired; });
  q.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule_in(SimTime::seconds(1.0), [&] { ++fired; });
  h.cancel();
  q.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelTwiceIsSafe) {
  EventQueue q;
  auto h = q.schedule_in(SimTime::seconds(1.0), [] {});
  h.cancel();
  h.cancel();
  q.run_all();
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(SimTime::seconds(1.0), recurse);
  };
  q.schedule_in(SimTime::seconds(1.0), recurse);
  q.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), SimTime::seconds(5.0));
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(SimTime::seconds(2.0), [] {});
  q.run_until(SimTime::seconds(3.0));
  EXPECT_THROW(q.schedule_at(SimTime::seconds(1.0), [] {}),
               std::invalid_argument);
}

TEST(EventQueue, PastSchedulingErrorNamesBothTimes) {
  EventQueue q;
  q.run_until(SimTime::seconds(3.0));
  try {
    q.schedule_at(SimTime::seconds(1.0), [] {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("now="), std::string::npos) << what;
    EXPECT_NE(what.find("requested="), std::string::npos) << what;
    EXPECT_NE(what.find(SimTime::seconds(3.0).str()), std::string::npos)
        << what;
    EXPECT_NE(what.find(SimTime::seconds(1.0).str()), std::string::npos)
        << what;
  }
}

// --- Propagation ---

TEST(Propagation, PowerDecreasesWithDistance) {
  LogDistancePathLoss model;
  const double p10 = model.rx_power_dbm(20.0, 10.0);
  const double p50 = model.rx_power_dbm(20.0, 50.0);
  EXPECT_GT(p10, p50);
}

TEST(Propagation, ClampInsideReferenceDistance) {
  LogDistancePathLoss model;
  EXPECT_DOUBLE_EQ(model.rx_power_dbm(20.0, 0.1),
                   model.rx_power_dbm(20.0, 1.0));
}

TEST(Propagation, MaxRangeConsistentWithDeliverable) {
  LogDistancePathLoss model;
  const double r = model.max_range(20.0);
  EXPECT_TRUE(model.deliverable(20.0, r * 0.99));
  EXPECT_FALSE(model.deliverable(20.0, r * 1.01));
}

TEST(Propagation, DefaultRangeMatchesRaspberryPiScale) {
  LogDistancePathLoss model;
  const double r = model.max_range(20.0);  // 100 mW attacker
  EXPECT_GT(r, 40.0);
  EXPECT_LT(r, 90.0);
}

TEST(Propagation, DbmConversion) {
  EXPECT_DOUBLE_EQ(dbm_from_milliwatts(100.0), 20.0);
  EXPECT_DOUBLE_EQ(dbm_from_milliwatts(1.0), 0.0);
}

// --- Medium ---

class Collector : public FrameSink {
 public:
  void on_frame(const dot11::Frame& frame, const RxInfo& info) override {
    frames.push_back(frame);
    infos.push_back(info);
  }
  std::vector<dot11::Frame> frames;
  std::vector<RxInfo> infos;
};

class MediumTest : public ::testing::Test {
 protected:
  EventQueue events;
  Medium medium{events};
  Rng rng{1};
};

TEST_F(MediumTest, DeliversWithinRange) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({30, 0}, 6, 15.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_EQ(rx.frames[0].subtype(), dot11::MgmtSubtype::kProbeRequest);
  EXPECT_LT(rx.infos[0].rssi_dbm, -30.0);
  (void)b;
}

TEST_F(MediumTest, DropsBeyondRange) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({5000, 0}, 6, 15.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, ChannelIsolation) {
  Collector rx6, rx11;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx6);
  medium.attach({10, 0}, 11, 15.0, &rx11);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(rx6.frames.size(), 1u);
  EXPECT_TRUE(rx11.frames.empty());
}

TEST_F(MediumTest, SenderDoesNotHearItself) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, TransmissionsAreSerializedWithAirtime) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  const auto client = MacAddress::random_local(rng);
  for (int i = 0; i < 10; ++i) {
    a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                          client, "X", 6, true));
  }
  // After one frame's effective airtime only the first frame has landed.
  const auto one_frame =
      dot11::airtime(dot11::wire_size(dot11::make_probe_response(
                         MacAddress::random_local(rng), client, "X", 6, true)),
                     medium.config().mgmt_rate_mbps) *
      medium.config().contention_factor;
  events.run_until(one_frame + SimTime::microseconds(10));
  EXPECT_EQ(rx.frames.size(), 1u);
  events.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(rx.frames.size(), 10u);
}

TEST_F(MediumTest, FortyResponsesFitInScanWindow) {
  // End-to-end confirmation of the paper's 40-response budget: a full
  // 40-frame train completes within the 20 ms listen window, a longer train
  // does not.
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  const auto client = MacAddress::random_local(rng);
  for (int i = 0; i < 100; ++i) {
    a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                          client, "SSID-xx", 6, true));
  }
  events.run_until(dot11::kMinChannelTime + dot11::kMaxChannelTime);
  EXPECT_GE(rx.frames.size(), 35u);
  EXPECT_LE(rx.frames.size(), 45u);
}

TEST_F(MediumTest, ClearTxQueueAbortsPendingFrames) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  medium.attach({10, 0}, 6, 15.0, &rx);
  const auto client = MacAddress::random_local(rng);
  for (int i = 0; i < 20; ++i) {
    a.transmit(dot11::make_probe_response(MacAddress::random_local(rng),
                                          client, "Y", 6, true));
  }
  a.clear_tx_queue();
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_EQ(a.tx_backlog(), 0u);
}

TEST_F(MediumTest, MovedRadioStopsReceiving) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0, &rx);
  b.set_position({4000, 4000});
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, DetachedRadioIsGone) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0, &rx);
  medium.detach(b);
  EXPECT_FALSE(b.valid());
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(MediumTest, CountersTrack) {
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({10, 0}, 6, 15.0, &rx);
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(a.frames_sent(), 1u);
  EXPECT_EQ(b.frames_received(), 1u);
  EXPECT_EQ(medium.transmissions(), 1u);
  EXPECT_EQ(medium.deliveries(), 1u);
}

TEST_F(MediumTest, SinkMayDetachRadiosDuringDelivery) {
  // A sink that detaches another radio mid-fanout must not crash delivery.
  struct Detacher : FrameSink {
    Medium* medium = nullptr;
    Radio* victim = nullptr;
    void on_frame(const dot11::Frame&, const RxInfo&) override {
      if (victim->valid()) medium->detach(*victim);
    }
  };
  Detacher d;
  Collector rx;
  auto a = medium.attach({0, 0}, 6, 20.0);
  auto b = medium.attach({5, 0}, 6, 15.0, &d);
  auto c = medium.attach({10, 0}, 6, 15.0, &rx);
  d.medium = &medium;
  d.victim = &c;
  a.transmit(dot11::make_broadcast_probe_request(
      MacAddress::random_local(rng)));
  events.run_until(SimTime::seconds(1.0));
  EXPECT_FALSE(c.valid());
  EXPECT_TRUE(rx.frames.empty());  // c was detached before its delivery
  (void)b;
}

}  // namespace
}  // namespace cityhunter::medium
