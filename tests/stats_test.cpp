#include <gtest/gtest.h>

#include "core/karma.h"
#include "stats/campaign.h"
#include "stats/report.h"

namespace cityhunter::stats {
namespace {

using core::ClientRecord;
using core::SelectionTag;
using core::SsidChoice;
using core::SsidSource;
using dot11::MacAddress;
using support::SimTime;

/// Attacker stub exposing a hand-built client registry.
class FakeAttacker : public core::KarmaAttacker {
 public:
  FakeAttacker(medium::Medium& medium, core::Attacker::BaseConfig cfg)
      : KarmaAttacker(medium, cfg) {}
};

class CampaignTest : public ::testing::Test {
 protected:
  CampaignTest() : medium_(events_) {
    core::Attacker::BaseConfig cfg;
    cfg.bssid = *MacAddress::parse("0a:00:00:00:00:01");
    attacker_ = std::make_unique<FakeAttacker>(medium_, cfg);
    attacker_->start();  // attaches the radio the response paths transmit on
  }

  /// Feed synthetic frames through the attacker to populate its registry in
  /// a controlled way: a direct or broadcast probe, optionally followed by
  /// the association that marks a hit.
  void add_client(std::uint64_t id, bool direct, bool connected,
                  const std::string& hit_ssid = "",
                  std::optional<SsidChoice> offer = std::nullopt,
                  SimTime when = SimTime::zero()) {
    (void)when;
    MacAddress mac = mac_of(id);
    if (direct) {
      attacker_->on_frame(dot11::make_direct_probe_request(mac, "probe-x"),
                          {});
    } else {
      attacker_->on_frame(dot11::make_broadcast_probe_request(mac), {});
    }
    if (offer) {
      // Emulate the response-train bookkeeping by injecting the offer via a
      // forged direct probe for that SSID (records into `offered`)...
      // Simpler and honest: drive the real path. The base class fills
      // `offered` when *it* responds; for KARMA that's the direct path only.
      // For breakdown tests we instead associate through the real handshake
      // and patch the choice by re-probing the SSID directly.
      attacker_->on_frame(dot11::make_direct_probe_request(mac, offer->ssid),
                          {});
    }
    if (connected) {
      attacker_->on_frame(
          dot11::make_auth_request(mac, attacker_->bssid()), {});
      attacker_->on_frame(
          dot11::make_assoc_request(mac, attacker_->bssid(), hit_ssid), {});
    }
  }

  static MacAddress mac_of(std::uint64_t id) {
    std::array<std::uint8_t, 6> o{0x02, 0x00, 0, 0, 0,
                                  static_cast<std::uint8_t>(id)};
    return MacAddress(o);
  }

  medium::EventQueue events_;
  medium::Medium medium_;
  std::unique_ptr<FakeAttacker> attacker_;
};

TEST_F(CampaignTest, CountsCategoriesAndRates) {
  add_client(1, true, true, "probe-x");     // direct, connected
  add_client(2, true, false);               // direct, not connected
  add_client(3, false, false);              // broadcast, not connected
  add_client(4, false, false);
  const auto r = analyze(*attacker_, "test");
  EXPECT_EQ(r.total_clients, 4u);
  EXPECT_EQ(r.direct_clients, 2u);
  EXPECT_EQ(r.broadcast_clients, 2u);
  EXPECT_EQ(r.direct_connected, 1u);
  EXPECT_EQ(r.broadcast_connected, 0u);
  EXPECT_DOUBLE_EQ(r.h(), 0.25);
  EXPECT_DOUBLE_EQ(r.h_b(), 0.0);
}

TEST_F(CampaignTest, EmptyCampaignIsAllZero) {
  const auto r = analyze(*attacker_, "empty");
  EXPECT_EQ(r.total_clients, 0u);
  EXPECT_DOUBLE_EQ(r.h(), 0.0);
  EXPECT_DOUBLE_EQ(r.h_b(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_ssids_sent_connected(), 0.0);
}

TEST_F(CampaignTest, DirectProberStaysDirectEvenIfItAlsoBroadcasts) {
  const auto mac = mac_of(9);
  attacker_->on_frame(dot11::make_broadcast_probe_request(mac), {});
  attacker_->on_frame(dot11::make_direct_probe_request(mac, "x"), {});
  const auto r = analyze(*attacker_, "t");
  EXPECT_EQ(r.direct_clients, 1u);
  EXPECT_EQ(r.broadcast_clients, 0u);
}

TEST_F(CampaignTest, WindowRatesBucketByFirstSeen) {
  // Client 1 appears at t=0 (window 0); client 2 at t=3min (window 1).
  add_client(1, false, false);
  events_.run_until(SimTime::minutes(3));
  add_client(2, false, false);
  const auto windows =
      realtime_hb(*attacker_, SimTime::minutes(2), SimTime::minutes(6));
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].broadcast_clients, 1u);
  EXPECT_EQ(windows[1].broadcast_clients, 1u);
  EXPECT_EQ(windows[2].broadcast_clients, 0u);
  EXPECT_EQ(windows[0].start, SimTime::zero());
  EXPECT_EQ(windows[1].start, SimTime::minutes(2));
}

TEST_F(CampaignTest, WindowRatesRejectDegenerateWindow) {
  add_client(1, false, false);
  // A non-positive window defines no rate; guard instead of dividing by
  // zero (an infinite loop / empty-modulo before the fix).
  EXPECT_TRUE(
      realtime_hb(*attacker_, SimTime::zero(), SimTime::minutes(6)).empty());
  EXPECT_TRUE(realtime_hb(*attacker_, SimTime::seconds(-1), SimTime::minutes(6))
                  .empty());
}

TEST_F(CampaignTest, WindowRateComputesFraction) {
  WindowRate w;
  w.broadcast_clients = 4;
  w.broadcast_connected = 1;
  EXPECT_DOUBLE_EQ(w.rate(), 0.25);
  WindowRate empty;
  EXPECT_DOUBLE_EQ(empty.rate(), 0.0);
}

TEST(CampaignResult, RatioHelpers) {
  CampaignResult r;
  r.hits_from_wigle = 35;
  r.hits_from_direct_db = 10;
  EXPECT_DOUBLE_EQ(r.wigle_to_direct_ratio(), 3.5);
  r.hits_via_popularity = 63;
  r.hits_via_freshness = 10;
  EXPECT_DOUBLE_EQ(r.popularity_to_freshness_ratio(), 6.3);
  CampaignResult zero;
  EXPECT_DOUBLE_EQ(zero.wigle_to_direct_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(zero.popularity_to_freshness_ratio(), 0.0);
}

TEST(CampaignResult, MeanSsidsSent) {
  CampaignResult r;
  r.ssids_sent_connected = {100, 150, 200};
  EXPECT_DOUBLE_EQ(r.mean_ssids_sent_connected(), 150.0);
}

TEST(Report, ComparisonTableMatchesPaperColumns) {
  CampaignResult karma;
  karma.label = "KARMA";
  karma.total_clients = 614;
  karma.direct_clients = 85;
  karma.broadcast_clients = 529;
  karma.direct_connected = 24;
  const auto table = comparison_table({karma});
  EXPECT_NE(table.find("Attack"), std::string::npos);
  EXPECT_NE(table.find("Total probes"), std::string::npos);
  EXPECT_NE(table.find("KARMA"), std::string::npos);
  EXPECT_NE(table.find("614"), std::string::npos);
  EXPECT_NE(table.find("85/529"), std::string::npos);
  EXPECT_NE(table.find("24 (direct); 0 (broadcast)"), std::string::npos);
  EXPECT_NE(table.find("3.9%"), std::string::npos);
}

TEST(Report, SummaryLine) {
  CampaignResult r;
  r.label = "X";
  r.total_clients = 100;
  r.direct_clients = 20;
  r.broadcast_clients = 80;
  r.direct_connected = 5;
  r.broadcast_connected = 8;
  const auto line = summary_line(r);
  EXPECT_NE(line.find("X: 100 clients"), std::string::npos);
  EXPECT_NE(line.find("h=13.0%"), std::string::npos);
  EXPECT_NE(line.find("h_b=10.0%"), std::string::npos);
}

}  // namespace
}  // namespace cityhunter::stats
