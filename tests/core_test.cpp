#include <gtest/gtest.h>

#include <set>

#include "client/smartphone.h"
#include "core/buffers.h"
#include "core/cityhunter.h"
#include "core/cityhunter_prelim.h"
#include "core/deauth.h"
#include "core/karma.h"
#include "core/mana.h"
#include "core/ssid_db.h"
#include "core/wigle_seed.h"
#include "support/rng.h"

namespace cityhunter::core {
namespace {

using dot11::MacAddress;
using support::Rng;
using support::SimTime;

// --- SsidDatabase ---

TEST(SsidDatabase, AddAndFind) {
  SsidDatabase db;
  EXPECT_TRUE(db.add("a", 10, SsidSource::kWiglePopular, SimTime::zero()));
  EXPECT_FALSE(db.add("a", 5, SsidSource::kDirectProbe, SimTime::zero()));
  EXPECT_EQ(db.size(), 1u);
  const auto* rec = db.find("a");
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(rec->weight, 10.0);  // re-add never downgrades
  EXPECT_EQ(rec->source, SsidSource::kWiglePopular);
  EXPECT_EQ(db.find("zz"), nullptr);
}

TEST(SsidDatabase, ReAddRaisesWeight) {
  SsidDatabase db;
  db.add("a", 5, SsidSource::kDirectProbe, SimTime::zero());
  db.add("a", 50, SsidSource::kWiglePopular, SimTime::zero());
  EXPECT_DOUBLE_EQ(db.find("a")->weight, 50.0);
  // Source stays as first recorded.
  EXPECT_EQ(db.find("a")->source, SsidSource::kDirectProbe);
}

TEST(SsidDatabase, ObserveDirectAddsOrBumps) {
  SsidDatabase db;
  db.observe_direct("new", 60, 15, SimTime::zero());
  EXPECT_DOUBLE_EQ(db.find("new")->weight, 60.0);
  db.observe_direct("new", 60, 15, SimTime::zero());
  EXPECT_DOUBLE_EQ(db.find("new")->weight, 75.0);
}

TEST(SsidDatabase, RecordHitUpdatesEverything) {
  SsidDatabase db;
  db.add("a", 10, SsidSource::kWigleNearby, SimTime::zero());
  db.record_hit("a", 8, SimTime::seconds(30));
  const auto* rec = db.find("a");
  EXPECT_DOUBLE_EQ(rec->weight, 18.0);
  EXPECT_EQ(rec->hits, 1);
  ASSERT_TRUE(rec->last_hit.has_value());
  EXPECT_EQ(*rec->last_hit, SimTime::seconds(30));
  // Hits on unknown SSIDs are ignored, not crashes.
  db.record_hit("unknown", 8, SimTime::seconds(31));
  EXPECT_EQ(db.size(), 1u);
}

TEST(SsidDatabase, ByWeightOrdering) {
  SsidDatabase db;
  db.add("low", 1, SsidSource::kDirectProbe, SimTime::zero());
  db.add("high", 100, SsidSource::kWiglePopular, SimTime::zero());
  db.add("mid", 50, SsidSource::kWigleNearby, SimTime::zero());
  const auto v = db.by_weight();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0]->ssid, "high");
  EXPECT_EQ(v[1]->ssid, "mid");
  EXPECT_EQ(v[2]->ssid, "low");
}

TEST(SsidDatabase, ByWeightTieBreaksByInsertion) {
  SsidDatabase db;
  db.add("first", 10, SsidSource::kDirectProbe, SimTime::zero());
  db.add("second", 10, SsidSource::kDirectProbe, SimTime::zero());
  const auto v = db.by_weight();
  EXPECT_EQ(v[0]->ssid, "first");
  EXPECT_EQ(v[1]->ssid, "second");
}

TEST(SsidDatabase, ByFreshnessOnlyHitRecordsMostRecentFirst) {
  SsidDatabase db;
  db.add("never-hit", 100, SsidSource::kWiglePopular, SimTime::zero());
  db.add("old-hit", 1, SsidSource::kDirectProbe, SimTime::zero());
  db.add("new-hit", 1, SsidSource::kDirectProbe, SimTime::zero());
  db.record_hit("old-hit", 0, SimTime::seconds(10));
  db.record_hit("new-hit", 0, SimTime::seconds(20));
  const auto v = db.by_freshness();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0]->ssid, "new-hit");
  EXPECT_EQ(v[1]->ssid, "old-hit");
}

TEST(SsidDatabase, VersionBumpsOnEveryMutation) {
  SsidDatabase db;
  const auto v0 = db.version();
  db.add("a", 1, SsidSource::kDirectProbe, SimTime::zero());
  const auto v1 = db.version();
  EXPECT_NE(v0, v1);
  db.observe_direct("a", 1, 1, SimTime::zero());
  const auto v2 = db.version();
  EXPECT_NE(v1, v2);
  db.record_hit("a", 1, SimTime::zero());
  EXPECT_NE(v2, db.version());
}

TEST(SsidDatabase, CountFromSource) {
  SsidDatabase db;
  db.add("a", 1, SsidSource::kWiglePopular, SimTime::zero());
  db.add("b", 1, SsidSource::kWiglePopular, SimTime::zero());
  db.add("c", 1, SsidSource::kDirectProbe, SimTime::zero());
  EXPECT_EQ(db.count_from(SsidSource::kWiglePopular), 2u);
  EXPECT_EQ(db.count_from(SsidSource::kDirectProbe), 1u);
  EXPECT_EQ(db.count_from(SsidSource::kCarrierSeed), 0u);
}

// --- BufferSelector ---

SsidDatabase weighted_db(int n) {
  SsidDatabase db;
  for (int i = 0; i < n; ++i) {
    db.add("pop-" + std::to_string(i), static_cast<double>(n - i),
           SsidSource::kWiglePopular, SimTime::zero());
  }
  return db;
}

TEST(BufferSelector, FillsBudgetFromPopularityWhenNothingFresh) {
  auto db = weighted_db(100);
  BufferSelectorConfig cfg;
  BufferSelector sel(cfg, Rng(1));
  const auto choices = sel.select(db.by_weight(), db.by_freshness(), nullptr);
  EXPECT_EQ(choices.size(), 40u);
  // Highest-weight SSIDs come first (modulo the ghost swap at the tail).
  EXPECT_EQ(choices[0].ssid, "pop-0");
  EXPECT_EQ(choices[0].tag, SelectionTag::kPopularity);
}

TEST(BufferSelector, GhostPicksComeFromBeyondTheBuffer) {
  auto db = weighted_db(100);
  BufferSelectorConfig cfg;
  cfg.use_freshness = false;  // single-buffer: budget = 40, 2 ghost picks
  BufferSelector sel(cfg, Rng(2));
  const auto choices = sel.select(db.by_weight(), db.by_freshness(), nullptr);
  ASSERT_EQ(choices.size(), 40u);
  int ghost_count = 0;
  for (const auto& c : choices) {
    if (c.tag == SelectionTag::kPopularityGhost) {
      ++ghost_count;
      // Ghost candidates are ranks 39..58 (0-based): beyond the main 38.
      const int rank = std::stoi(c.ssid.substr(4));
      EXPECT_GE(rank, 38);
      EXPECT_LT(rank, 58);
    }
  }
  EXPECT_EQ(ghost_count, 2);
}

TEST(BufferSelector, NoGhostsWhenDisabled) {
  auto db = weighted_db(100);
  BufferSelectorConfig cfg;
  cfg.use_ghosts = false;
  BufferSelector sel(cfg, Rng(3));
  for (const auto& c :
       sel.select(db.by_weight(), db.by_freshness(), nullptr)) {
    EXPECT_NE(c.tag, SelectionTag::kPopularityGhost);
    EXPECT_NE(c.tag, SelectionTag::kFreshnessGhost);
  }
}

TEST(BufferSelector, FreshEntriesFillTheFreshnessBuffer) {
  auto db = weighted_db(100);
  // Make some low-weight SSIDs fresh.
  for (int i = 90; i < 99; ++i) {
    db.record_hit("pop-" + std::to_string(i), 0.0, SimTime::seconds(i));
  }
  BufferSelectorConfig cfg;
  cfg.initial_pb_size = 32;  // FB = 8
  BufferSelector sel(cfg, Rng(4));
  const auto choices = sel.select(db.by_weight(), db.by_freshness(), nullptr);
  EXPECT_EQ(choices.size(), 40u);
  int fresh = 0;
  for (const auto& c : choices) {
    if (c.tag == SelectionTag::kFreshness ||
        c.tag == SelectionTag::kFreshnessGhost) {
      ++fresh;
    }
  }
  EXPECT_GE(fresh, 6);
  EXPECT_LE(fresh, 8);
}

TEST(BufferSelector, NoDuplicateSsidsInOneSelection) {
  auto db = weighted_db(60);
  for (int i = 0; i < 30; ++i) {
    db.record_hit("pop-" + std::to_string(i), 0.0, SimTime::seconds(i));
  }
  BufferSelector sel(BufferSelectorConfig{}, Rng(5));
  const auto choices = sel.select(db.by_weight(), db.by_freshness(), nullptr);
  std::set<std::string> seen;
  for (const auto& c : choices) {
    EXPECT_TRUE(seen.insert(c.ssid).second) << "duplicate " << c.ssid;
  }
}

TEST(BufferSelector, UntriedFilterSkipsSentSsids) {
  auto db = weighted_db(100);
  std::unordered_set<std::string> sent;
  for (int i = 0; i < 40; ++i) sent.insert("pop-" + std::to_string(i));
  BufferSelector sel(BufferSelectorConfig{}, Rng(6));
  const auto choices = sel.select(db.by_weight(), db.by_freshness(), &sent);
  for (const auto& c : choices) {
    EXPECT_EQ(sent.count(c.ssid), 0u) << c.ssid;
  }
  EXPECT_EQ(choices.size(), 40u);  // ranks 40..99 remain
}

TEST(BufferSelector, ExhaustedDatabaseYieldsShortSelection) {
  auto db = weighted_db(25);
  std::unordered_set<std::string> sent;
  for (int i = 0; i < 20; ++i) sent.insert("pop-" + std::to_string(i));
  BufferSelector sel(BufferSelectorConfig{}, Rng(7));
  const auto choices = sel.select(db.by_weight(), db.by_freshness(), &sent);
  EXPECT_EQ(choices.size(), 5u);
}

TEST(BufferSelector, AdaptationGrowsAndShrinksPb) {
  BufferSelectorConfig cfg;
  cfg.initial_pb_size = 20;
  BufferSelector sel(cfg, Rng(8));
  const int pb0 = sel.pb_size();
  sel.notify_hit(SelectionTag::kPopularityGhost);
  EXPECT_EQ(sel.pb_size(), pb0 + 1);
  sel.notify_hit(SelectionTag::kFreshnessGhost);
  sel.notify_hit(SelectionTag::kFreshnessGhost);
  EXPECT_EQ(sel.pb_size(), pb0 - 1);
  // Non-ghost tags do nothing.
  sel.notify_hit(SelectionTag::kPopularity);
  sel.notify_hit(SelectionTag::kFreshness);
  EXPECT_EQ(sel.pb_size(), pb0 - 1);
  EXPECT_EQ(sel.fb_size(), cfg.budget - sel.pb_size());
}

TEST(BufferSelector, AdaptationClampsAtMinBufferSize) {
  BufferSelectorConfig cfg;
  cfg.min_buffer_size = 2;
  BufferSelector sel(cfg, Rng(9));
  for (int i = 0; i < 100; ++i) sel.notify_hit(SelectionTag::kPopularityGhost);
  EXPECT_EQ(sel.pb_size(), cfg.budget - 2);
  for (int i = 0; i < 200; ++i) sel.notify_hit(SelectionTag::kFreshnessGhost);
  EXPECT_EQ(sel.pb_size(), 2);
}

TEST(BufferSelector, AdaptationDisabledIsFrozen) {
  BufferSelectorConfig cfg;
  cfg.adaptive = false;
  cfg.initial_pb_size = 30;
  BufferSelector sel(cfg, Rng(10));
  for (int i = 0; i < 50; ++i) sel.notify_hit(SelectionTag::kFreshnessGhost);
  EXPECT_EQ(sel.pb_size(), 30);
}

// --- WiGLE seeding ---

TEST(WigleSeed, SeedsNearbyAndPopularWithRankWeights) {
  std::vector<world::AccessPointInfo> recs;
  auto mk = [&](const std::string& ssid, double x, int copies) {
    for (int i = 0; i < copies; ++i) {
      world::AccessPointInfo ap;
      ap.ssid = ssid;
      ap.pos = {x, 0};
      ap.open = true;
      recs.push_back(ap);
    }
  };
  mk("huge-chain", 5000, 50);
  mk("mid-chain", 5000, 10);
  mk("local-cafe", 5, 1);
  const auto wigle = world::WigleDb::from_records(recs);

  SsidDatabase db;
  WigleSeedConfig cfg;
  cfg.nearby_count = 2;
  cfg.popular_count = 2;
  cfg.ranking = PopularRanking::kApCount;
  seed_from_wigle(db, wigle, nullptr, {0, 0}, cfg, SimTime::zero());

  // Popular: huge-chain (weight 2), mid-chain (weight 1).
  ASSERT_NE(db.find("huge-chain"), nullptr);
  EXPECT_DOUBLE_EQ(db.find("huge-chain")->weight, 2.0);
  EXPECT_EQ(db.find("huge-chain")->source, SsidSource::kWiglePopular);
  // Nearby: local-cafe nearest (weight 2).
  ASSERT_NE(db.find("local-cafe"), nullptr);
  EXPECT_DOUBLE_EQ(db.find("local-cafe")->weight, 2.0);
  EXPECT_EQ(db.find("local-cafe")->source, SsidSource::kWigleNearby);
}

TEST(WigleSeed, HeatRankingRequiresHeatMap) {
  const auto wigle = world::WigleDb::from_records({});
  SsidDatabase db;
  WigleSeedConfig cfg;
  cfg.ranking = PopularRanking::kHeat;
  EXPECT_THROW(
      seed_from_wigle(db, wigle, nullptr, {0, 0}, cfg, SimTime::zero()),
      std::invalid_argument);
}

TEST(WigleSeed, CarrierSeedAddsWithGivenWeight) {
  SsidDatabase db;
  seed_carrier_ssids(db, {"PCCW1x", "Y5ZONE"}, 200.0, SimTime::zero());
  EXPECT_EQ(db.size(), 2u);
  EXPECT_DOUBLE_EQ(db.find("PCCW1x")->weight, 200.0);
  EXPECT_EQ(db.find("PCCW1x")->source, SsidSource::kCarrierSeed);
}

// --- Attackers against real smartphones ---

class AttackerTest : public ::testing::Test {
 protected:
  AttackerTest() : medium_(events_) {
    base_.bssid = *MacAddress::parse("0a:00:00:00:00:77");
    base_.pos = {0, 0};
  }

  world::Person person(std::uint64_t id, bool direct,
                       std::vector<world::PnlEntry> pnl) {
    world::Person p;
    p.id = id;
    p.sends_direct_probes = direct;
    p.pnl = std::move(pnl);
    return p;
  }

  client::SmartphoneConfig phone_cfg() {
    client::SmartphoneConfig cfg;
    cfg.mean_scan_interval = SimTime::seconds(20);
    cfg.first_scan_delay_max = SimTime::seconds(1);
    return cfg;
  }

  medium::EventQueue events_;
  medium::Medium medium_;
  Attacker::BaseConfig base_;
  Rng rng_{42};
};

TEST_F(AttackerTest, KarmaLuresDirectProberWithOpenEntry) {
  KarmaAttacker karma(medium_, base_);
  karma.start();
  client::Smartphone victim(
      person(1, true, {{"OpenCafe", true, world::PnlOrigin::kPublicVisit}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("v"));
  victim.start();
  events_.run_until(SimTime::seconds(30));
  EXPECT_TRUE(victim.connected_to_attacker());
  EXPECT_EQ(karma.clients_connected(), 1u);
  const auto& rec = karma.clients().begin()->second;
  EXPECT_TRUE(rec.direct_prober);
  EXPECT_EQ(rec.hit_ssid, "OpenCafe");
  ASSERT_TRUE(rec.hit_choice.has_value());
  EXPECT_EQ(rec.hit_choice->tag, SelectionTag::kDirectReply);
}

TEST_F(AttackerTest, KarmaCannotLureBroadcastClients) {
  KarmaAttacker karma(medium_, base_);
  karma.start();
  client::Smartphone victim(
      person(2, false, {{"OpenCafe", true, world::PnlOrigin::kPublicVisit}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("v"));
  victim.start();
  events_.run_until(SimTime::minutes(3));
  EXPECT_FALSE(victim.connected_to_attacker());
  EXPECT_EQ(karma.clients_connected(), 0u);
  EXPECT_EQ(karma.clients_seen(), 1u);  // probes were recorded
}

TEST_F(AttackerTest, ManaLearnsFromDirectAndReplaysToBroadcast) {
  ManaAttacker::Config cfg;
  cfg.base = base_;
  ManaAttacker mana(medium_, cfg);
  mana.start();

  // The discloser leaks 'SharedNet'; it cannot join (entry protected).
  client::Smartphone discloser(
      person(3, true, {{"SharedNet", false, world::PnlOrigin::kHome}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("d"));
  discloser.start();
  events_.run_until(SimTime::seconds(15));
  EXPECT_EQ(mana.database().size(), 1u);
  ASSERT_NE(mana.database().find("SharedNet"), nullptr);

  // A broadcast-only victim that stored SharedNet as open gets hit.
  client::Smartphone victim(
      person(4, false, {{"SharedNet", true, world::PnlOrigin::kPublicVisit}}),
      medium_, {6, 0}, phone_cfg(), rng_.fork("v"));
  victim.start();
  events_.run_until(SimTime::minutes(2));
  EXPECT_TRUE(victim.connected_to_attacker());
  const auto& rec = mana.clients().at(victim.mac());
  ASSERT_TRUE(rec.hit_choice.has_value());
  EXPECT_EQ(rec.hit_choice->tag, SelectionTag::kPlainDump);
  EXPECT_EQ(rec.hit_choice->source, SsidSource::kDirectProbe);
}

TEST_F(AttackerTest, ManaRepeatsTheSameHeadOfDatabase) {
  ManaAttacker::Config cfg;
  cfg.base = base_;
  ManaAttacker mana(medium_, cfg);
  mana.start();
  // Fill the database with 80 junk SSIDs via add().
  for (int i = 0; i < 80; ++i) {
    mana.database().add("junk-" + std::to_string(i), 1.0,
                        SsidSource::kDirectProbe, SimTime::zero());
  }
  // Victim stores junk-60 (beyond the 40-response budget): never reached,
  // no matter how many times it scans.
  client::Smartphone victim(
      person(5, false, {{"junk-60", true, world::PnlOrigin::kPublicVisit}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("v"));
  victim.start();
  events_.run_until(SimTime::minutes(5));
  EXPECT_FALSE(victim.connected_to_attacker());
  // Whereas a victim of junk-10 connects on the first scan.
  client::Smartphone easy(
      person(6, false, {{"junk-10", true, world::PnlOrigin::kPublicVisit}}),
      medium_, {6, 0}, phone_cfg(), rng_.fork("e"));
  easy.start();
  events_.run_until(SimTime::minutes(7));
  EXPECT_TRUE(easy.connected_to_attacker());
}

TEST_F(AttackerTest, PrelimUntriedSweepEventuallyReachesDeepSsids) {
  CityHunterPrelim::Config cfg;
  cfg.base = base_;
  CityHunterPrelim prelim(medium_, cfg);
  prelim.start();
  for (int i = 0; i < 80; ++i) {
    prelim.database().add("db-" + std::to_string(i), 1.0,
                          SsidSource::kWiglePopular, SimTime::zero());
  }
  // Wherever 'db-60' lands in the hash order, two scans (80 SSIDs) cover
  // the whole 80-entry database.
  client::Smartphone victim(
      person(7, false, {{"db-60", true, world::PnlOrigin::kPublicVisit}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("v"));
  victim.start();
  // A bystander with no matching PNL keeps scanning: its untried sweep must
  // cover the entire 80-entry database across two scans.
  client::Smartphone bystander(person(70, false, {}), medium_, {6, 0},
                               phone_cfg(), rng_.fork("b"));
  bystander.start();
  events_.run_until(SimTime::minutes(3));
  EXPECT_TRUE(victim.connected_to_attacker());
  const auto& rec = prelim.clients().at(victim.mac());
  EXPECT_EQ(rec.hit_choice->tag, SelectionTag::kUntriedSweep);
  EXPECT_EQ(prelim.clients().at(bystander.mac()).ssids_sent, 80);
}

TEST_F(AttackerTest, CityHunterRanksByWeightAndRecordsHit) {
  CityHunter::Config cfg;
  cfg.base = base_;
  CityHunter hunter(medium_, cfg, rng_.fork("h"));
  hunter.start();
  for (int i = 0; i < 200; ++i) {
    hunter.database().add("w-" + std::to_string(i),
                          static_cast<double>(200 - i),
                          SsidSource::kWiglePopular, SimTime::zero());
  }
  // Victim knows the top-weight SSID: hit on the very first scan.
  client::Smartphone victim(
      person(8, false, {{"w-0", true, world::PnlOrigin::kPublicVisit}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("v"));
  victim.start();
  events_.run_until(SimTime::seconds(20));
  EXPECT_TRUE(victim.connected_to_attacker());
  const auto& rec = hunter.clients().at(victim.mac());
  EXPECT_LE(rec.ssids_sent, 40);
  EXPECT_EQ(rec.hit_choice->tag, SelectionTag::kPopularity);
  // The hit bumped the database record.
  EXPECT_EQ(hunter.database().find("w-0")->hits, 1);
  EXPECT_TRUE(hunter.database().find("w-0")->last_hit.has_value());
}

TEST_F(AttackerTest, CityHunterFreshnessReachesCompanions) {
  CityHunter::Config cfg;
  cfg.base = base_;
  CityHunter hunter(medium_, cfg, rng_.fork("h"));
  hunter.start();
  // 500 popular decoys, plus one mid-tail SSID at the bottom.
  for (int i = 0; i < 500; ++i) {
    hunter.database().add("decoy-" + std::to_string(i),
                          static_cast<double>(500 - i),
                          SsidSource::kWiglePopular, SimTime::zero());
  }
  hunter.database().add("family-cafe", 0.5, SsidSource::kDirectProbe,
                        SimTime::zero());
  // Mark it freshly hit (as if a family member just connected through it).
  hunter.database().record_hit("family-cafe", 0.0, SimTime::zero());

  // The companion's only joinable SSID is family-cafe — rank ~501 by weight,
  // but rank 1 by freshness, so the FB must deliver it within one scan.
  client::Smartphone companion(
      person(9, false,
             {{"family-cafe", true, world::PnlOrigin::kGroupShared}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("c"));
  companion.start();
  events_.run_until(SimTime::seconds(20));
  EXPECT_TRUE(companion.connected_to_attacker());
  const auto& rec = hunter.clients().at(companion.mac());
  EXPECT_TRUE(rec.hit_choice->tag == SelectionTag::kFreshness ||
              rec.hit_choice->tag == SelectionTag::kFreshnessGhost);
}

TEST_F(AttackerTest, CityHunterUntriedTrackingSweepsDeep) {
  CityHunter::Config cfg;
  cfg.base = base_;
  CityHunter hunter(medium_, cfg, rng_.fork("h"));
  hunter.start();
  for (int i = 0; i < 200; ++i) {
    hunter.database().add("w-" + std::to_string(i),
                          static_cast<double>(200 - i),
                          SsidSource::kWiglePopular, SimTime::zero());
  }
  // Victim knows only rank ~150: needs several scans of untried sweeps.
  client::Smartphone victim(
      person(10, false, {{"w-150", true, world::PnlOrigin::kPublicVisit}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("v"));
  victim.start();
  events_.run_until(SimTime::minutes(5));
  EXPECT_TRUE(victim.connected_to_attacker());
  EXPECT_GT(hunter.clients().at(victim.mac()).ssids_sent, 100);
}

TEST_F(AttackerTest, CityHunterWithoutUntriedTrackingRepeatsItself) {
  CityHunter::Config cfg;
  cfg.base = base_;
  cfg.untried_tracking = false;
  CityHunter hunter(medium_, cfg, rng_.fork("h"));
  hunter.start();
  for (int i = 0; i < 200; ++i) {
    hunter.database().add("w-" + std::to_string(i),
                          static_cast<double>(200 - i),
                          SsidSource::kWiglePopular, SimTime::zero());
  }
  client::Smartphone victim(
      person(11, false, {{"w-150", true, world::PnlOrigin::kPublicVisit}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("v"));
  victim.start();
  events_.run_until(SimTime::minutes(5));
  // Always the same top-40 (minus ghost randomness): w-150 unreachable
  // through the main buffer; only a lucky ghost pick could reach rank 150,
  // and ghosts only cover ranks ~38-58.
  EXPECT_FALSE(victim.connected_to_attacker());
}

TEST_F(AttackerTest, DirectProbeObservationsEnterCityHunterDb) {
  CityHunter::Config cfg;
  cfg.base = base_;
  CityHunter hunter(medium_, cfg, rng_.fork("h"));
  hunter.start();
  client::Smartphone discloser(
      person(12, true, {{"LeakedNet", false, world::PnlOrigin::kHome}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("d"));
  discloser.start();
  events_.run_until(SimTime::seconds(10));
  const auto* rec = hunter.database().find("LeakedNet");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->source, SsidSource::kDirectProbe);
  EXPECT_DOUBLE_EQ(rec->weight, cfg.direct_initial_weight);
}

TEST_F(AttackerTest, GhostHitAdjustsBufferSplit) {
  CityHunter::Config cfg;
  cfg.base = base_;
  CityHunter hunter(medium_, cfg, rng_.fork("h"));
  const int pb0 = hunter.selector().pb_size();
  // Simulate the hit path directly through the protected interface by
  // sending a crafted association after an offer; simpler: exercise the
  // selector's notify contract via a synthetic ClientRecord in on_hit is
  // private — instead verify through selector() directly.
  hunter.selector().notify_hit(SelectionTag::kFreshnessGhost);
  EXPECT_EQ(hunter.selector().pb_size(), pb0 - 1);
}

// --- DeauthModule ---

TEST_F(AttackerTest, DeauthModuleBroadcastsPerTarget) {
  KarmaAttacker attacker(medium_, base_);
  attacker.start();
  DeauthModule::Config dcfg;
  dcfg.target_bssids = {*MacAddress::parse("02:00:00:00:00:01"),
                        *MacAddress::parse("02:00:00:00:00:02")};
  dcfg.interval = SimTime::seconds(10);
  DeauthModule deauth(medium_, attacker.radio(), dcfg);
  deauth.start();
  events_.run_until(SimTime::seconds(35));
  // Rounds at t=0, 10, 20, 30 -> 4 rounds x 2 targets.
  EXPECT_EQ(deauth.deauths_sent(), 8u);
  deauth.stop();
  events_.run_until(SimTime::minutes(2));
  EXPECT_EQ(deauth.deauths_sent(), 8u);
}

TEST(SelectionTagNames, AllDistinct) {
  std::set<std::string> names;
  for (const auto t :
       {SelectionTag::kDirectReply, SelectionTag::kPlainDump,
        SelectionTag::kUntriedSweep, SelectionTag::kPopularity,
        SelectionTag::kPopularityGhost, SelectionTag::kFreshness,
        SelectionTag::kFreshnessGhost}) {
    names.insert(to_string(t));
  }
  EXPECT_EQ(names.size(), 7u);
}

TEST(SsidSourceNames, AllDistinct) {
  std::set<std::string> names;
  for (const auto s : {SsidSource::kWigleNearby, SsidSource::kWiglePopular,
                       SsidSource::kDirectProbe, SsidSource::kCarrierSeed}) {
    names.insert(to_string(s));
  }
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace cityhunter::core
