#include <gtest/gtest.h>

#include "heatmap/heatmap.h"
#include "support/rng.h"
#include "world/ap_generator.h"
#include "world/city.h"
#include "world/photos.h"

namespace cityhunter::heatmap {
namespace {

using support::Rng;
using world::AccessPointInfo;

TEST(HeatMap, BinsPhotosIntoCells) {
  world::CityModel city;
  Rng rng(1);
  world::PhotoSetConfig cfg;
  cfg.photo_count = 10000;
  const auto photos = world::PhotoSet::generate(city, rng, cfg);
  HeatMap heat(photos, city.width(), city.height(), 250.0);
  EXPECT_EQ(heat.cols(), 40u);
  EXPECT_EQ(heat.rows(), 40u);
  // Total photos across cells equals the photo count (all in bounds).
  double total = 0;
  for (std::size_t r = 0; r < heat.rows(); ++r) {
    for (std::size_t c = 0; c < heat.cols(); ++c) {
      total += heat.cell(c, r);
    }
  }
  // Photos clamped exactly onto the far boundary fall outside the grid.
  EXPECT_GE(total, 9900.0);
  EXPECT_LE(total, 10000.0);
}

TEST(HeatMap, OutOfBoundsQueriesAreZero) {
  world::CityModel city;
  Rng rng(2);
  const auto photos = world::PhotoSet::generate(city, rng, {});
  HeatMap heat(photos, city.width(), city.height());
  EXPECT_DOUBLE_EQ(heat.at({-1, 50}), 0.0);
  EXPECT_DOUBLE_EQ(heat.at({50, -1}), 0.0);
  EXPECT_DOUBLE_EQ(heat.at({city.width() + 1, 50}), 0.0);
}

TEST(HeatMap, RejectsBadDimensions) {
  world::PhotoSet photos;
  EXPECT_THROW(HeatMap(photos, 0, 100), std::invalid_argument);
  EXPECT_THROW(HeatMap(photos, 100, 100, -1), std::invalid_argument);
}

TEST(HeatMap, HotDistrictsBeatQuietCorners) {
  world::CityModel city;
  Rng rng(3);
  world::PhotoSetConfig cfg;
  cfg.photo_count = 50000;
  const auto photos = world::PhotoSet::generate(city, rng, cfg);
  HeatMap heat(photos, city.width(), city.height());
  EXPECT_GT(heat.at({5000, 5000}), heat.at({200, 200}) + 10);  // central core
  EXPECT_GT(heat.at({8800, 1400}), heat.at({9800, 9800}));     // airport
}

TEST(HeatMap, SsidHeatSumsOverFreeAps) {
  world::CityModel city;
  Rng rng(4);
  world::PhotoSetConfig pcfg;
  pcfg.photo_count = 30000;
  const auto photos = world::PhotoSet::generate(city, rng, pcfg);
  HeatMap heat(photos, city.width(), city.height());

  std::vector<AccessPointInfo> recs;
  auto mk = [&](const char* ssid, medium::Position pos, bool open) {
    AccessPointInfo ap;
    ap.ssid = ssid;
    ap.pos = pos;
    ap.open = open;
    recs.push_back(ap);
  };
  mk("hot", {5000, 5000}, true);
  mk("hot", {5050, 5050}, true);
  mk("hot-but-secure", {5000, 5000}, false);
  mk("cold", {200, 9800}, true);
  const auto wigle = world::WigleDb::from_records(recs);

  EXPECT_GT(heat.ssid_heat(wigle, "hot"), heat.ssid_heat(wigle, "cold"));
  // Secure APs contribute nothing.
  EXPECT_DOUBLE_EQ(heat.ssid_heat(wigle, "hot-but-secure"), 0.0);
}

TEST(HeatMap, CsvHasRowPerGridRow) {
  world::CityModel city;
  Rng rng(5);
  const auto photos = world::PhotoSet::generate(city, rng, {});
  HeatMap heat(photos, city.width(), city.height(), 500.0);
  const auto csv = heat.to_csv();
  std::size_t lines = 0;
  for (const char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, heat.rows());
}

TEST(HeatMap, AsciiRenderIsNonEmpty) {
  world::CityModel city;
  Rng rng(6);
  world::PhotoSetConfig cfg;
  cfg.photo_count = 5000;
  const auto photos = world::PhotoSet::generate(city, rng, cfg);
  HeatMap heat(photos, city.width(), city.height());
  const auto ascii = heat.to_ascii(40);
  EXPECT_GT(ascii.size(), 100u);
  EXPECT_NE(ascii.find('@'), std::string::npos);  // a peak cell exists
}

// --- ranking helpers ---

TEST(Ranking, TopByApCountOrdersByCount) {
  std::vector<AccessPointInfo> recs;
  for (int i = 0; i < 5; ++i) {
    AccessPointInfo ap;
    ap.ssid = "many";
    ap.open = true;
    recs.push_back(ap);
  }
  AccessPointInfo one;
  one.ssid = "few";
  one.open = true;
  recs.push_back(one);
  const auto wigle = world::WigleDb::from_records(recs);
  const auto top = top_by_ap_count(wigle, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].ssid, "many");
  EXPECT_DOUBLE_EQ(top[0].score, 5.0);
  EXPECT_EQ(top[1].ssid, "few");
}

TEST(Ranking, TopKTruncates) {
  std::vector<AccessPointInfo> recs;
  for (int i = 0; i < 10; ++i) {
    AccessPointInfo ap;
    ap.ssid = "ssid-" + std::to_string(i);
    ap.open = true;
    recs.push_back(ap);
  }
  const auto wigle = world::WigleDb::from_records(recs);
  EXPECT_EQ(top_by_ap_count(wigle, 3).size(), 3u);
}

TEST(Ranking, RankWeightsAreBarronBarrett) {
  const auto w = rank_weights(5);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w[0], 5.0);
  EXPECT_DOUBLE_EQ(w[4], 1.0);
  EXPECT_TRUE(rank_weights(0).empty());
}

TEST(Ranking, HeatPromotesHotAreaSsids) {
  // An SSID with few APs in a hot cell must outrank one with more APs in
  // cold cells — Table IV's core claim, in miniature.
  world::CityModel city;
  Rng rng(7);
  world::PhotoSetConfig cfg;
  cfg.photo_count = 50000;
  const auto photos = world::PhotoSet::generate(city, rng, cfg);
  HeatMap heat(photos, city.width(), city.height());

  std::vector<AccessPointInfo> recs;
  auto mk = [&](const char* ssid, medium::Position pos) {
    AccessPointInfo ap;
    ap.ssid = ssid;
    ap.pos = pos;
    ap.open = true;
    recs.push_back(ap);
  };
  // 'airport-like': 2 APs in the central core (hot).
  mk("airport-like", {5000, 5000});
  mk("airport-like", {5100, 4950});
  // 'suburb-chain': 6 APs in quiet corners.
  for (int i = 0; i < 6; ++i) {
    mk("suburb-chain", {300.0 + i * 50, 9700.0});
  }
  const auto wigle = world::WigleDb::from_records(recs);

  const auto by_count = top_by_ap_count(wigle, 2);
  EXPECT_EQ(by_count[0].ssid, "suburb-chain");
  const auto by_heat = top_by_heat(wigle, heat, 2);
  EXPECT_EQ(by_heat[0].ssid, "airport-like");
}

}  // namespace
}  // namespace cityhunter::heatmap
