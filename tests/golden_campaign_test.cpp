// Campaign-level golden regression: a small fixed-seed campaign must
// produce bit-identical statistics under every (spatial_grid, fault)
// combination, and those statistics must match the values recorded when
// the hot-path allocation overhaul landed.
//
// This is the end-to-end determinism contract: the pooled frame codec,
// inline-storage event queue, flat radio table and reused builder frames
// are pure performance changes — any drift in these numbers means a
// behavioural change slipped into the hot path.
#include <gtest/gtest.h>

#include "city_scale.h"
#include "sim/scenario.h"

namespace cityhunter {
namespace {

struct GoldenRow {
  bool fault;
  std::size_t total_clients;
  std::size_t direct_clients;
  std::size_t broadcast_clients;
  std::size_t direct_connected;
  std::size_t broadcast_connected;
  std::uint64_t frames_transmitted;
  std::uint64_t frames_delivered;
  std::uint64_t frames_lost;
  std::uint64_t frames_corrupted;
  std::uint64_t retries;
  std::size_t db_final_size;
  std::size_t db_from_direct;
  int final_pb_size;
  int final_fb_size;
};

// Recorded from the pre-overhaul tree (canteen, 60 expected clients,
// 3 minutes, world seed 42, run seed 7). The grid and legacy medium paths
// must both reproduce these exactly.
constexpr GoldenRow kGolden[] = {
    {false, 80, 11, 69, 2, 7, 4450, 214318, 0, 0, 0, 240, 24, 32, 8},
    {true, 77, 11, 66, 1, 5, 4002, 199278, 1268, 2, 449, 239, 23, 32, 8},
};

sim::RunOutput run_golden(const sim::World& world, bool grid, bool fault) {
  sim::RunConfig run;
  run.kind = sim::AttackerKind::kCityHunter;
  run.venue = mobility::canteen_venue();
  run.slot.expected_clients = 60;
  run.slot.group_fraction = 0.3;
  run.duration = support::SimTime::minutes(3);
  run.run_seed = 7;
  medium::Medium::Config mcfg;
  mcfg.spatial_grid = grid;
  if (fault) {
    mcfg.fault.enabled = true;
    mcfg.fault.ambient_loss = 0.08;
    mcfg.fault.corruption_rate = 0.02;
  }
  run.medium = mcfg;
  return sim::run_campaign(world, run);
}

class GoldenCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig scfg;
    scfg.seed = 42;
    world_ = new sim::World(scfg);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static sim::World* world_;
};

sim::World* GoldenCampaignTest::world_ = nullptr;

void expect_matches(const sim::RunOutput& out, const GoldenRow& g) {
  EXPECT_FALSE(out.error.failed()) << out.error.str();
  EXPECT_EQ(out.result.total_clients, g.total_clients);
  EXPECT_EQ(out.result.direct_clients, g.direct_clients);
  EXPECT_EQ(out.result.broadcast_clients, g.broadcast_clients);
  EXPECT_EQ(out.result.direct_connected, g.direct_connected);
  EXPECT_EQ(out.result.broadcast_connected, g.broadcast_connected);
  EXPECT_EQ(out.frames_transmitted, g.frames_transmitted);
  EXPECT_EQ(out.frames_delivered, g.frames_delivered);
  EXPECT_EQ(out.medium_stats.frames_lost, g.frames_lost);
  EXPECT_EQ(out.medium_stats.frames_corrupted, g.frames_corrupted);
  EXPECT_EQ(out.medium_stats.retries, g.retries);
  EXPECT_EQ(out.db_final_size, g.db_final_size);
  EXPECT_EQ(out.db_from_direct, g.db_from_direct);
  EXPECT_EQ(out.final_pb_size, g.final_pb_size);
  EXPECT_EQ(out.final_fb_size, g.final_fb_size);
}

TEST_F(GoldenCampaignTest, GridMatchesGolden) {
  for (const auto& g : kGolden) {
    SCOPED_TRACE(g.fault ? "grid, fault on" : "grid, fault off");
    expect_matches(run_golden(*world_, /*grid=*/true, g.fault), g);
  }
}

TEST_F(GoldenCampaignTest, LegacyScanMatchesGolden) {
  for (const auto& g : kGolden) {
    SCOPED_TRACE(g.fault ? "legacy, fault on" : "legacy, fault off");
    expect_matches(run_golden(*world_, /*grid=*/false, g.fault), g);
  }
}

// City-scale district (bench/city_scale.h) at test-budget size: the batched
// SoA pipeline and the pre-PR grid reference must produce exactly these
// traffic totals. Any drift means the batched fanout, the d² range filter,
// the pathloss LUT or the pair cache changed delivery *behaviour* instead
// of just delivery *speed*.
TEST(CityScaleGolden, PinnedCountsAcrossPipelines) {
  bench::CityScaleParams params;
  params.radios = 400;
  params.area_m = 400.0;
  params.duration = support::SimTime::seconds(2.0);

  medium::Medium::Config grid_cfg;
  grid_cfg.batched_fanout = false;
  grid_cfg.pathloss_lut = false;
  grid_cfg.pathloss_cache = false;

  const bench::CityScaleResult batched =
      bench::run_city_scale(params, medium::Medium::Config{});
  const bench::CityScaleResult grid =
      bench::run_city_scale(params, grid_cfg);

  EXPECT_EQ(batched.transmissions, grid.transmissions);
  EXPECT_EQ(batched.deliveries, grid.deliveries);

  // Golden totals recorded when the batched pipeline landed (seed 2026,
  // 400 radios on 400 m, 2 simulated seconds).
  EXPECT_EQ(batched.transmissions, 2638u);
  EXPECT_EQ(batched.deliveries, 21061u);
  // The static AP↔AP beacon fanout must actually exercise the pair cache.
  EXPECT_GT(batched.cache_hits, 0u);
}

TEST(CityScaleGolden, ChannelMixedDistrictPinnedForBothIndexLayouts) {
  // The district spreads radios over channels 1/6/11, so it is the exact
  // workload the channel-partitioned index targets. Both layouts must land
  // on the same golden totals, and the efficiency counters must show what
  // the partitioning buys: the mixed layout streams every co-located
  // off-channel radio through the key filter, the partitioned one streams
  // none.
  bench::CityScaleParams params;
  params.radios = 400;
  params.area_m = 400.0;
  params.duration = support::SimTime::seconds(2.0);

  medium::Medium::Config mixed_cfg;
  mixed_cfg.channel_buckets = false;

  const bench::CityScaleResult part =
      bench::run_city_scale(params, medium::Medium::Config{});
  const bench::CityScaleResult mixed =
      bench::run_city_scale(params, mixed_cfg);

  EXPECT_EQ(part.transmissions, 2638u);
  EXPECT_EQ(part.deliveries, 21061u);
  EXPECT_EQ(mixed.transmissions, part.transmissions);
  EXPECT_EQ(mixed.deliveries, part.deliveries);

  // Same radios pass the key filter either way; only the loads differ.
  EXPECT_EQ(part.key_matched, mixed.key_matched);
  EXPECT_EQ(part.wasted_candidates, 0u);
  // ~2/3 of mixed-layout loads are off-channel at a 3-channel plan.
  EXPECT_GT(mixed.wasted_candidates, mixed.key_matched);
  EXPECT_GT(part.mean_bucket_occupancy, 0.0);
  EXPECT_GE(mixed.max_bucket_occupancy, part.max_bucket_occupancy);
}

TEST_F(GoldenCampaignTest, RepeatedRunsAreBitIdentical) {
  // Pooled transmissions and recycled event slots must not leak state
  // between runs against the same world.
  const auto a = run_golden(*world_, /*grid=*/true, /*fault=*/true);
  const auto b = run_golden(*world_, /*grid=*/true, /*fault=*/true);
  EXPECT_EQ(a.frames_transmitted, b.frames_transmitted);
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.medium_stats.frames_lost, b.medium_stats.frames_lost);
  EXPECT_EQ(a.db_final_size, b.db_final_size);
  EXPECT_EQ(a.result.total_clients, b.result.total_clients);
  EXPECT_EQ(a.series, b.series);
}

}  // namespace
}  // namespace cityhunter
