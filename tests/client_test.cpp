#include <gtest/gtest.h>

#include "client/legit_ap.h"
#include "client/smartphone.h"
#include "dot11/timing.h"
#include "medium/medium.h"
#include "support/rng.h"

namespace cityhunter::client {
namespace {

using dot11::Frame;
using dot11::MacAddress;
using support::Rng;
using support::SimTime;

world::Person make_person(bool direct_probes,
                          std::vector<world::PnlEntry> pnl,
                          std::uint64_t id = 1) {
  world::Person p;
  p.id = id;
  p.sends_direct_probes = direct_probes;
  p.pnl = std::move(pnl);
  return p;
}

/// A scripted rogue AP: mimics every probed SSID as open and accepts every
/// handshake (a minimal KARMA).
class ScriptedRogue : public medium::FrameSink {
 public:
  ScriptedRogue(medium::Medium& medium, MacAddress bssid)
      : medium_(medium), bssid_(bssid) {
    radio_ = medium_.attach({5, 0}, 6, 20.0, this);
  }
  ~ScriptedRogue() override { medium_.detach(radio_); }

  /// SSIDs to offer on any broadcast probe (as open networks).
  std::vector<std::string> broadcast_menu;
  /// If false, never answers broadcast probes (KARMA style).
  bool mimic_direct = true;
  bool advertise_open = true;

  std::vector<std::string> probed_ssids;
  int broadcast_probes = 0;
  std::vector<MacAddress> associated;

  void on_frame(const Frame& frame, const medium::RxInfo&) override {
    switch (frame.subtype()) {
      case dot11::MgmtSubtype::kProbeRequest: {
        const auto* body = frame.as<dot11::ProbeRequest>();
        if (body->is_broadcast()) {
          ++broadcast_probes;
          for (const auto& ssid : broadcast_menu) {
            radio_.transmit(dot11::make_probe_response(
                bssid_, frame.header.addr2, ssid, 6, advertise_open, seq_++));
          }
        } else if (mimic_direct) {
          probed_ssids.push_back(*body->ies.ssid());
          radio_.transmit(dot11::make_probe_response(
              bssid_, frame.header.addr2, *body->ies.ssid(), 6,
              advertise_open, seq_++));
        }
        return;
      }
      case dot11::MgmtSubtype::kAuthentication:
        if (frame.header.addr1 == bssid_) {
          radio_.transmit(dot11::make_auth_response(
              bssid_, frame.header.addr2, dot11::StatusCode::kSuccess,
              seq_++));
        }
        return;
      case dot11::MgmtSubtype::kAssociationRequest:
        if (frame.header.addr1 == bssid_) {
          associated.push_back(frame.header.addr2);
          radio_.transmit(dot11::make_assoc_response(
              bssid_, frame.header.addr2, dot11::StatusCode::kSuccess, 1,
              seq_++));
        }
        return;
      default:
        return;
    }
  }

  medium::Medium& medium_;
  MacAddress bssid_;
  medium::Radio radio_;
  std::uint16_t seq_ = 0;
};

class SmartphoneTest : public ::testing::Test {
 protected:
  SmartphoneTest()
      : medium_(events_),
        bssid_(*MacAddress::parse("0a:00:00:00:00:99")),
        rogue_(medium_, bssid_) {}

  SmartphoneConfig phone_cfg() {
    SmartphoneConfig cfg;
    cfg.mean_scan_interval = SimTime::seconds(30);
    cfg.first_scan_delay_max = SimTime::seconds(2);
    return cfg;
  }

  medium::EventQueue events_;
  medium::Medium medium_;
  MacAddress bssid_;
  ScriptedRogue rogue_;
  Rng rng_{1};
};

TEST_F(SmartphoneTest, ModernDeviceSendsOnlyBroadcastProbes) {
  auto person = make_person(false, {{"SomeNet", true,
                                     world::PnlOrigin::kPublicVisit}});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"));
  phone.start();
  events_.run_until(SimTime::seconds(10));
  EXPECT_GE(rogue_.broadcast_probes, 1);
  EXPECT_TRUE(rogue_.probed_ssids.empty());
}

TEST_F(SmartphoneTest, LegacyDeviceDisclosesPnl) {
  auto person = make_person(
      true, {{"HiddenHome", false, world::PnlOrigin::kHome},
             {"WorkNet", false, world::PnlOrigin::kWork}});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"));
  phone.start();
  events_.run_until(SimTime::seconds(10));
  ASSERT_GE(rogue_.probed_ssids.size(), 2u);
  EXPECT_EQ(rogue_.probed_ssids[0], "HiddenHome");
  EXPECT_EQ(rogue_.probed_ssids[1], "WorkNet");
}

TEST_F(SmartphoneTest, JoinsOpenPnlNetworkFromBroadcastMenu) {
  rogue_.broadcast_menu = {"Starbucks", "Other"};
  auto person = make_person(false, {{"Starbucks", true,
                                     world::PnlOrigin::kPublicVisit}});
  bool connected_cb = false;
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"));
  phone.on_connected = [&](Smartphone&) { connected_cb = true; };
  phone.start();
  events_.run_until(SimTime::seconds(10));
  EXPECT_TRUE(phone.connected_to_attacker());
  EXPECT_TRUE(connected_cb);
  EXPECT_EQ(phone.lured_ssid().value_or(""), "Starbucks");
  ASSERT_EQ(rogue_.associated.size(), 1u);
  EXPECT_EQ(rogue_.associated[0], phone.mac());
}

TEST_F(SmartphoneTest, IgnoresUnknownSsids) {
  rogue_.broadcast_menu = {"NotInPnl-1", "NotInPnl-2"};
  auto person = make_person(false, {{"MyNet", true,
                                     world::PnlOrigin::kPublicVisit}});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"));
  phone.start();
  events_.run_until(SimTime::minutes(2));
  EXPECT_FALSE(phone.connected_to_attacker());
}

TEST_F(SmartphoneTest, WillNotJoinNetworkStoredAsProtected) {
  // PNL has the SSID but as a protected network: an open evil twin is a
  // security downgrade the client rejects.
  rogue_.broadcast_menu = {"CorpNet"};
  auto person = make_person(false, {{"CorpNet", false,
                                     world::PnlOrigin::kWork}});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"));
  phone.start();
  events_.run_until(SimTime::minutes(2));
  EXPECT_FALSE(phone.connected_to_attacker());
}

TEST_F(SmartphoneTest, WillNotJoinProtectedResponseForOpenEntry) {
  rogue_.broadcast_menu = {"FreeNet"};
  rogue_.advertise_open = false;  // response carries privacy bit + RSN
  auto person = make_person(false, {{"FreeNet", true,
                                     world::PnlOrigin::kPublicVisit}});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"));
  phone.start();
  events_.run_until(SimTime::minutes(2));
  EXPECT_FALSE(phone.connected_to_attacker());
}

TEST_F(SmartphoneTest, StopsScanningAfterConnecting) {
  rogue_.broadcast_menu = {"Net"};
  auto person = make_person(false, {{"Net", true,
                                     world::PnlOrigin::kPublicVisit}});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"));
  phone.start();
  events_.run_until(SimTime::seconds(10));
  ASSERT_TRUE(phone.connected_to_attacker());
  const int probes_at_connect = rogue_.broadcast_probes;
  events_.run_until(SimTime::minutes(5));
  EXPECT_EQ(rogue_.broadcast_probes, probes_at_connect);
}

TEST_F(SmartphoneTest, RespectsProbeResponseBudget) {
  // Offer 100 unknown SSIDs: the device must only take in ~40 per scan.
  for (int i = 0; i < 100; ++i) {
    rogue_.broadcast_menu.push_back("Filler-" + std::to_string(i));
  }
  auto person = make_person(false, {{"Wanted", true,
                                     world::PnlOrigin::kPublicVisit}});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"));
  phone.start();
  events_.run_until(SimTime::seconds(8));
  // One scan completed; can't verify internals directly, but the rogue can
  // append the wanted SSID at position 90 and the client must NOT join.
  EXPECT_FALSE(phone.connected_to_attacker());
  rogue_.broadcast_menu.push_back("Wanted");  // position 101: never delivered
  events_.run_until(SimTime::minutes(3));
  EXPECT_FALSE(phone.connected_to_attacker());
}

TEST_F(SmartphoneTest, ScanCountsAdvance) {
  auto person = make_person(false, {{"x", true,
                                     world::PnlOrigin::kPublicVisit}});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"));
  phone.start();
  EXPECT_FALSE(phone.ever_probed());
  events_.run_until(SimTime::minutes(3));
  EXPECT_TRUE(phone.ever_probed());
  EXPECT_GE(phone.scans_completed(), 3);
}

TEST_F(SmartphoneTest, StopDetachesAndSilences) {
  auto person = make_person(false, {{"x", true,
                                     world::PnlOrigin::kPublicVisit}});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"));
  phone.start();
  events_.run_until(SimTime::seconds(5));
  const int before = rogue_.broadcast_probes;
  phone.stop();
  events_.run_until(SimTime::minutes(3));
  EXPECT_EQ(rogue_.broadcast_probes, before);
}

TEST_F(SmartphoneTest, MacDerivedFromPersonIsStable) {
  auto person = make_person(false, {}, 4242);
  const auto m1 = Smartphone::mac_for_person(person);
  const auto m2 = Smartphone::mac_for_person(person);
  EXPECT_EQ(m1, m2);
  EXPECT_TRUE(m1.is_locally_administered());
  auto other = make_person(false, {}, 4243);
  EXPECT_NE(m1, Smartphone::mac_for_person(other));
}

TEST_F(SmartphoneTest, PreAssociatedDeviceDoesNotProbeUntilDeauth) {
  const auto ap_bssid = *MacAddress::parse("02:00:00:00:00:01");
  auto person = make_person(false, {{"VenueNet", true,
                                     world::PnlOrigin::kVenueLocal}});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"),
                   ap_bssid);
  phone.start();
  events_.run_until(SimTime::minutes(2));
  EXPECT_EQ(rogue_.broadcast_probes, 0);

  // Forge a deauth in the AP's name: the device must resume scanning.
  auto tx = medium_.attach({2, 0}, 6, 20.0);
  tx.transmit(dot11::make_deauth(ap_bssid, MacAddress::broadcast(), ap_bssid,
                                 dot11::ReasonCode::kDeauthLeaving));
  events_.run_until(SimTime::minutes(4));
  EXPECT_GT(rogue_.broadcast_probes, 0);
}

TEST_F(SmartphoneTest, DeauthFromWrongBssidIsIgnored) {
  const auto ap_bssid = *MacAddress::parse("02:00:00:00:00:01");
  const auto other_bssid = *MacAddress::parse("02:00:00:00:00:02");
  auto person = make_person(false, {});
  Smartphone phone(person, medium_, {0, 0}, phone_cfg(), rng_.fork("p"),
                   ap_bssid);
  phone.start();
  auto tx = medium_.attach({2, 0}, 6, 20.0);
  tx.transmit(dot11::make_deauth(other_bssid, MacAddress::broadcast(),
                                 other_bssid,
                                 dot11::ReasonCode::kDeauthLeaving));
  events_.run_until(SimTime::minutes(3));
  EXPECT_EQ(rogue_.broadcast_probes, 0);
}

TEST_F(SmartphoneTest, RandomizedMacChangesPerScan) {
  auto cfg = phone_cfg();
  cfg.randomize_mac_per_scan = true;
  auto person = make_person(false, {{"nothing-known", true,
                                     world::PnlOrigin::kPublicVisit}});
  Smartphone phone(person, medium_, {0, 0}, cfg, rng_.fork("p"));
  phone.start();
  events_.run_until(SimTime::seconds(5));
  const auto mac_scan1 = phone.mac();
  events_.run_until(SimTime::minutes(1));
  ASSERT_GE(phone.scans_completed(), 2);
  EXPECT_NE(phone.mac(), mac_scan1);
  EXPECT_TRUE(phone.mac().is_locally_administered());
}

TEST_F(SmartphoneTest, RandomizedMacStillCompletesHandshake) {
  rogue_.broadcast_menu = {"Known-Open"};
  auto cfg = phone_cfg();
  cfg.randomize_mac_per_scan = true;
  auto person = make_person(false, {{"Known-Open", true,
                                     world::PnlOrigin::kPublicVisit}});
  Smartphone phone(person, medium_, {0, 0}, cfg, rng_.fork("p"));
  phone.start();
  events_.run_until(SimTime::seconds(10));
  EXPECT_TRUE(phone.connected_to_attacker());
  // The association used the scan's randomized MAC.
  ASSERT_EQ(rogue_.associated.size(), 1u);
  EXPECT_EQ(rogue_.associated[0], phone.mac());
  EXPECT_NE(rogue_.associated[0], Smartphone::mac_for_person(person));
}

// --- LegitimateAp ---

TEST(LegitimateApTest, AnswersProbesAndAssociates) {
  medium::EventQueue events;
  medium::Medium medium(events);
  Rng rng(2);

  LegitimateAp::Config cfg;
  cfg.ssid = "VenueNet";
  cfg.bssid = *MacAddress::parse("02:00:00:00:00:10");
  cfg.pos = {10, 0};
  LegitimateAp ap(medium, cfg);
  ap.start();

  world::Person person;
  person.id = 7;
  person.pnl = {{"VenueNet", true, world::PnlOrigin::kVenueLocal}};
  SmartphoneConfig pcfg;
  pcfg.first_scan_delay_max = SimTime::seconds(1);
  Smartphone phone(person, medium, {0, 0}, pcfg, rng.fork("p"));
  phone.start();

  events.run_until(SimTime::seconds(10));
  EXPECT_TRUE(phone.connected_to_attacker());  // "attacker" = any rogue/AP
  EXPECT_EQ(ap.associated_count(), 1u);
  EXPECT_TRUE(ap.is_associated(phone.mac()));
}

TEST(LegitimateApTest, IgnoresDirectProbesForOtherSsids) {
  medium::EventQueue events;
  medium::Medium medium(events);
  Rng rng(3);

  LegitimateAp::Config cfg;
  cfg.ssid = "VenueNet";
  cfg.bssid = *MacAddress::parse("02:00:00:00:00:10");
  cfg.pos = {10, 0};
  LegitimateAp ap(medium, cfg);
  ap.start();

  // A phone probing for a different SSID gets nothing back.
  world::Person person;
  person.id = 8;
  person.sends_direct_probes = true;
  person.pnl = {{"SomethingElse", true, world::PnlOrigin::kPublicVisit}};
  SmartphoneConfig pcfg;
  pcfg.first_scan_delay_max = SimTime::seconds(1);
  Smartphone phone(person, medium, {0, 0}, pcfg, rng.fork("p"));
  phone.start();
  events.run_until(SimTime::minutes(1));
  EXPECT_FALSE(phone.connected_to_attacker());
}

TEST(LegitimateApTest, DeauthRemovesAssociation) {
  medium::EventQueue events;
  medium::Medium medium(events);
  Rng rng(4);

  LegitimateAp::Config cfg;
  cfg.ssid = "VenueNet";
  cfg.bssid = *MacAddress::parse("02:00:00:00:00:10");
  cfg.pos = {10, 0};
  LegitimateAp ap(medium, cfg);
  ap.start();

  world::Person person;
  person.id = 9;
  person.pnl = {{"VenueNet", true, world::PnlOrigin::kVenueLocal}};
  SmartphoneConfig pcfg;
  pcfg.first_scan_delay_max = SimTime::seconds(1);
  Smartphone phone(person, medium, {0, 0}, pcfg, rng.fork("p"));
  phone.start();
  events.run_until(SimTime::seconds(10));
  ASSERT_EQ(ap.associated_count(), 1u);

  auto tx = medium.attach({0, 0}, 6, 20.0);
  tx.transmit(dot11::make_deauth(phone.mac(), cfg.bssid, cfg.bssid,
                                 dot11::ReasonCode::kDeauthLeaving));
  events.run_until(SimTime::seconds(12));
  EXPECT_EQ(ap.associated_count(), 0u);
}

}  // namespace
}  // namespace cityhunter::client
