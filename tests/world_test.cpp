#include <gtest/gtest.h>

#include <set>

#include "support/rng.h"
#include "world/ap_generator.h"
#include "world/city.h"
#include "world/photos.h"
#include "world/pnl.h"
#include "world/wigle.h"

namespace cityhunter::world {
namespace {

using support::Rng;

CityModel default_city() { return CityModel(); }

std::vector<AccessPointInfo> default_aps(Rng& rng) {
  const auto city = default_city();
  return generate_aps(city, rng, default_ap_population());
}

// --- CityModel ---

TEST(CityModel, DensityPeaksAtDistrictCentres) {
  const auto city = default_city();
  for (const auto& d : city.districts()) {
    const double at_centre = city.density(d.center);
    const double far_away =
        city.density({d.center.x + 4 * d.sigma_m, d.center.y});
    EXPECT_GT(at_centre, far_away) << d.name;
  }
}

TEST(CityModel, SamplesStayInBounds) {
  const auto city = default_city();
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto p = city.sample_location(rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, city.width());
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, city.height());
  }
}

TEST(CityModel, KindFilteredSamplingLandsNearMatchingDistricts) {
  const auto city = default_city();
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto p = city.sample_location_of_kind(rng, DistrictKind::kAirport);
    // The single airport district is at (8800, 1400) with sigma 500.
    EXPECT_LT(medium::distance(p, {8800, 1400}), 2500.0);
  }
}

TEST(CityModel, DefaultHasAllKinds) {
  const auto city = default_city();
  std::set<DistrictKind> kinds;
  for (const auto& d : city.districts()) kinds.insert(d.kind);
  EXPECT_EQ(kinds.size(), 4u);
}

// --- AP generator ---

TEST(ApGenerator, HonoursChainCounts) {
  Rng rng(5);
  const auto aps = default_aps(rng);
  std::map<std::string, int> counts;
  for (const auto& ap : aps) ++counts[ap.ssid];
  EXPECT_EQ(counts["7-Eleven Free Wifi"], 924);
  EXPECT_EQ(counts["#HKAirport Free WiFi"], 231);
  EXPECT_EQ(counts["-Free HKBN Wi-Fi-"], 1150);
}

TEST(ApGenerator, ChainAndHotAreaApsAreOpen) {
  Rng rng(5);
  for (const auto& ap : default_aps(rng)) {
    if (ap.category == ApCategory::kChain ||
        ap.category == ApCategory::kHotArea) {
      EXPECT_TRUE(ap.open) << ap.ssid;
    }
    if (ap.category == ApCategory::kEnterprise) {
      EXPECT_FALSE(ap.open) << ap.ssid;
    }
  }
}

TEST(ApGenerator, ResidentialMostlyProtected) {
  Rng rng(6);
  int open = 0, total = 0;
  for (const auto& ap : default_aps(rng)) {
    if (ap.category != ApCategory::kResidential) continue;
    ++total;
    if (ap.open) ++open;
  }
  EXPECT_GT(total, 1000);
  EXPECT_LT(static_cast<double>(open) / total, 0.08);
}

TEST(ApGenerator, HotAreaApsSitInTheirDistrictKind) {
  Rng rng(7);
  const auto city = default_city();
  for (const auto& ap : default_aps(rng)) {
    if (ap.ssid != "#HKAirport Free WiFi") continue;
    EXPECT_LT(medium::distance(ap.pos, {8800, 1400}), 2500.0);
  }
}

TEST(ApGenerator, BssidsAreUnique) {
  Rng rng(8);
  const auto aps = default_aps(rng);
  std::set<dot11::MacAddress> seen;
  for (const auto& ap : aps) seen.insert(ap.bssid);
  // Collisions possible in principle but vanishingly unlikely.
  EXPECT_GT(seen.size(), aps.size() - 3);
}

TEST(ApGenerator, DeterministicInSeed) {
  Rng rng1(9), rng2(9);
  const auto city = default_city();
  const auto a = generate_aps(city, rng1, default_ap_population());
  const auto b = generate_aps(city, rng2, default_ap_population());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].ssid, b[i].ssid);
    EXPECT_EQ(a[i].bssid, b[i].bssid);
  }
}

// --- WigleDb ---

TEST(WigleDb, SnapshotExcludesCarriers) {
  Rng rng(10);
  const auto aps = default_aps(rng);
  const auto db = WigleDb::snapshot(aps, rng, WigleCoverage{});
  for (const auto& rec : db.records()) {
    EXPECT_NE(rec.category, ApCategory::kCarrier) << rec.ssid;
  }
}

TEST(WigleDb, CoverageIsPartial) {
  Rng rng(11);
  const auto aps = default_aps(rng);
  const auto db = WigleDb::snapshot(aps, rng, WigleCoverage{});
  EXPECT_LT(db.size(), aps.size());
  EXPECT_GT(db.size(), aps.size() / 3);
}

TEST(WigleDb, NearestFreeSsidsSortedByDistanceAndDeduped) {
  std::vector<AccessPointInfo> recs;
  auto mk = [&](const char* ssid, double x, bool open) {
    AccessPointInfo ap;
    ap.ssid = ssid;
    ap.pos = {x, 0};
    ap.open = open;
    recs.push_back(ap);
  };
  mk("far", 100, true);
  mk("near", 10, true);
  mk("secure", 1, false);   // excluded: not free
  mk("near", 12, true);     // duplicate SSID
  mk("mid", 50, true);
  const auto db = WigleDb::from_records(recs);
  const auto out = db.nearest_free_ssids({0, 0}, 10);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "near");
  EXPECT_EQ(out[1], "mid");
  EXPECT_EQ(out[2], "far");
}

TEST(WigleDb, FreeApCountsOnlyCountOpen) {
  std::vector<AccessPointInfo> recs;
  for (int i = 0; i < 5; ++i) {
    AccessPointInfo ap;
    ap.ssid = "chain";
    ap.open = i < 3;
    recs.push_back(ap);
  }
  const auto db = WigleDb::from_records(recs);
  EXPECT_EQ(db.free_ap_counts().at("chain"), 3);
}

TEST(WigleDb, FreeApPositions) {
  std::vector<AccessPointInfo> recs;
  AccessPointInfo ap;
  ap.ssid = "x";
  ap.open = true;
  ap.pos = {7, 8};
  recs.push_back(ap);
  const auto db = WigleDb::from_records(recs);
  const auto pos = db.free_ap_positions("x");
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_DOUBLE_EQ(pos[0].x, 7);
  EXPECT_TRUE(db.free_ap_positions("unknown").empty());
}

// --- PhotoSet ---

TEST(PhotoSet, GeneratesRequestedCount) {
  const auto city = default_city();
  Rng rng(12);
  PhotoSetConfig cfg;
  cfg.photo_count = 5000;
  const auto photos = PhotoSet::generate(city, rng, cfg);
  EXPECT_EQ(photos.size(), 5000u);
}

TEST(PhotoSet, TouristBiasFavoursHotDistricts) {
  const auto city = default_city();
  Rng rng(13);
  PhotoSetConfig cfg;
  cfg.photo_count = 20000;
  cfg.tourist_fraction = 0.8;
  const auto photos = PhotoSet::generate(city, rng, cfg);
  int near_airport = 0, near_residential = 0;
  for (const auto& p : photos.positions()) {
    if (medium::distance(p, {8800, 1400}) < 1000) ++near_airport;
    if (medium::distance(p, {1200, 4800}) < 1000) ++near_residential;
  }
  EXPECT_GT(near_airport, near_residential);
}

// --- PnlModel ---

class PnlModelTest : public ::testing::Test {
 protected:
  PnlModelTest() : rng_(14), aps_(default_aps(rng_)), city_(default_city()) {}
  Rng rng_;
  std::vector<AccessPointInfo> aps_;
  CityModel city_;
};

TEST_F(PnlModelTest, EveryoneHasAHomeNetwork) {
  PnlModel model(city_, aps_);
  for (int i = 0; i < 100; ++i) {
    const auto p = model.make_person(rng_);
    bool has_home = false;
    for (const auto& e : p.pnl) has_home |= e.origin == PnlOrigin::kHome;
    EXPECT_TRUE(has_home);
  }
}

TEST_F(PnlModelTest, UniquePersonAndHomeIds) {
  PnlModel model(city_, aps_);
  std::set<std::uint64_t> ids;
  std::set<std::string> homes;
  for (int i = 0; i < 200; ++i) {
    const auto p = model.make_person(rng_);
    ids.insert(p.id);
    for (const auto& e : p.pnl) {
      if (e.origin == PnlOrigin::kHome) homes.insert(e.ssid);
    }
  }
  EXPECT_EQ(ids.size(), 200u);
  EXPECT_EQ(homes.size(), 200u);
}

TEST_F(PnlModelTest, NonUsersCarryNoPublicSsids) {
  PnlModel model(city_, aps_);
  for (int i = 0; i < 300; ++i) {
    const auto p = model.make_person(rng_);
    if (p.public_wifi_user) continue;
    for (const auto& e : p.pnl) {
      EXPECT_NE(e.origin, PnlOrigin::kVenueLocal);
    }
  }
}

TEST_F(PnlModelTest, DirectProbeFractionRoughlyConfigured) {
  PnlModelConfig cfg;
  cfg.direct_probe_fraction = 0.14;
  PnlModel model(city_, aps_, cfg);
  int direct = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    if (model.make_person(rng_).sends_direct_probes) ++direct;
  }
  EXPECT_NEAR(static_cast<double>(direct) / n, 0.14, 0.03);
}

TEST_F(PnlModelTest, RankedPublicSsidsExcludeHomesAndCarriers) {
  PnlModel model(city_, aps_);
  for (const auto& ssid : model.ranked_public_ssids()) {
    EXPECT_EQ(ssid.rfind("HOME-", 0), std::string::npos);
    EXPECT_NE(ssid, "PCCW1x");
    EXPECT_NE(ssid, "CMCC-AUTO");
  }
}

TEST_F(PnlModelTest, PopularSsidsRankAboveTail) {
  PnlModel model(city_, aps_);
  const auto& ranked = model.ranked_public_ssids();
  ASSERT_GT(ranked.size(), 100u);
  // Big chains must rank within the top slice.
  const auto find_rank = [&](const std::string& ssid) {
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i] == ssid) return static_cast<long>(i);
    }
    return -1L;
  };
  const long hkbn = find_rank("-Free HKBN Wi-Fi-");
  ASSERT_GE(hkbn, 0);
  EXPECT_LT(hkbn, 20);
}

TEST_F(PnlModelTest, GroupsShareSsidsAndGroupId) {
  PnlModelConfig cfg;
  cfg.public_wifi_user_fraction = 1.0;  // everyone adopts at the full rate
  cfg.group_adopt_prob = 1.0;
  PnlModel model(city_, aps_, cfg);
  int shared_groups = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto group = model.make_group(rng_, 3);
    ASSERT_EQ(group.size(), 3u);
    EXPECT_NE(group[0].group_id, 0u);
    EXPECT_EQ(group[0].group_id, group[1].group_id);
    EXPECT_EQ(group[1].group_id, group[2].group_id);
    // Count pairwise common open SSIDs beyond coincidence.
    for (const auto& e : group[0].pnl) {
      if (e.origin == PnlOrigin::kGroupShared && group[1].knows(e.ssid)) {
        ++shared_groups;
        break;
      }
    }
  }
  EXPECT_GT(shared_groups, 40);
}

TEST_F(PnlModelTest, GroupsGetDistinctIds) {
  PnlModel model(city_, aps_);
  const auto g1 = model.make_group(rng_, 2);
  const auto g2 = model.make_group(rng_, 2);
  EXPECT_NE(g1[0].group_id, g2[0].group_id);
}

TEST_F(PnlModelTest, SingletonGroupHasNoGroupId) {
  PnlModel model(city_, aps_);
  const auto g = model.make_group(rng_, 1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].group_id, 0u);
}

TEST_F(PnlModelTest, VenueRegularsComeFromUsers) {
  PnlModel model(city_, aps_);
  const std::vector<std::string> venue{"Canteen-X"};
  int regulars = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto p = model.make_person(rng_, venue, 1.0);
    const bool has = p.knows("Canteen-X");
    if (has) {
      ++regulars;
      EXPECT_TRUE(p.public_wifi_user);
    }
  }
  EXPECT_GT(regulars, 50);
}

TEST_F(PnlModelTest, CarrierEntriesOnlyOnIosNonLegacy) {
  PnlModel model(city_, aps_);
  for (int i = 0; i < 500; ++i) {
    const auto p = model.make_person(rng_);
    if (p.carrier.empty()) continue;
    EXPECT_EQ(p.os, Os::kIos);
    EXPECT_FALSE(p.sends_direct_probes);
    bool has_carrier_entry = false;
    for (const auto& e : p.pnl) {
      has_carrier_entry |= e.origin == PnlOrigin::kCarrier && e.open;
    }
    EXPECT_TRUE(has_carrier_entry);
  }
}

TEST_F(PnlModelTest, LocaleBiasSkewsDraws) {
  PnlModelConfig cfg;
  cfg.public_wifi_user_fraction = 1.0;  // everyone draws
  PnlModel model(city_, aps_, cfg);
  Locale locale;
  locale.ranked_ssids = {"LOCAL-ONLY-A", "LOCAL-ONLY-B", "LOCAL-ONLY-C"};
  locale.bias = 1.0;
  model.set_locale(locale);
  int local_draws = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    const auto p = model.make_person(rng_);
    for (const auto& e : p.pnl) {
      if (e.origin != PnlOrigin::kPublicVisit) continue;
      if (e.ssid.rfind("Hotel-Guest-", 0) == 0) continue;  // stale junk
      ++total;
      if (e.ssid.rfind("LOCAL-ONLY-", 0) == 0) ++local_draws;
    }
  }
  EXPECT_GT(total, 100);
  EXPECT_EQ(local_draws, total);
}

TEST_F(PnlModelTest, HasOpenEntryAndKnows) {
  Person p;
  p.pnl = {{"a", false, PnlOrigin::kHome}, {"b", true, PnlOrigin::kPublicVisit}};
  EXPECT_TRUE(p.has_open_entry());
  EXPECT_TRUE(p.knows("a"));
  EXPECT_FALSE(p.knows("c"));
  p.pnl.pop_back();
  EXPECT_FALSE(p.has_open_entry());
}

}  // namespace
}  // namespace cityhunter::world
