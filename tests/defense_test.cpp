#include <gtest/gtest.h>

#include "client/legit_ap.h"
#include "client/smartphone.h"
#include "core/cityhunter.h"
#include "core/deauth.h"
#include "core/karma.h"
#include "defense/detector.h"
#include "support/rng.h"

namespace cityhunter::defense {
namespace {

using dot11::MacAddress;
using support::Rng;
using support::SimTime;

class DefenseTest : public ::testing::Test {
 protected:
  DefenseTest() : medium_(events_) {}

  world::Person person(std::uint64_t id, bool direct,
                       std::vector<world::PnlEntry> pnl) {
    world::Person p;
    p.id = id;
    p.sends_direct_probes = direct;
    p.pnl = std::move(pnl);
    return p;
  }

  client::SmartphoneConfig phone_cfg() {
    client::SmartphoneConfig cfg;
    cfg.mean_scan_interval = SimTime::seconds(20);
    cfg.first_scan_delay_max = SimTime::seconds(1);
    return cfg;
  }

  medium::EventQueue events_;
  medium::Medium medium_;
  Rng rng_{1};
};

TEST_F(DefenseTest, FlagsCityHunterByMultiSsidSignature) {
  core::CityHunter::Config cfg;
  cfg.base.bssid = *MacAddress::parse("0a:00:00:00:00:66");
  cfg.base.pos = {0, 0};
  core::CityHunter hunter(medium_, cfg, rng_.fork("h"));
  for (int i = 0; i < 100; ++i) {
    hunter.database().add("ssid-" + std::to_string(i),
                          static_cast<double>(100 - i),
                          core::SsidSource::kWiglePopular, SimTime::zero());
  }
  hunter.start();

  EvilTwinDetector detector(medium_, {10, 0}, 6, EvilTwinDetector::Config{});
  detector.start();

  // One broadcast-probing client triggers a 40-SSID response train; the
  // detector flags the BSSID within that single train.
  client::Smartphone probe(person(1, false, {}), medium_, {5, 0}, phone_cfg(),
                           rng_.fork("p"));
  probe.start();
  events_.run_until(SimTime::seconds(10));

  EXPECT_TRUE(detector.flagged(cfg.base.bssid));
  ASSERT_FALSE(detector.alerts().empty());
  EXPECT_EQ(detector.alerts()[0].type, AlertType::kMultiSsidBssid);
  EXPECT_GT(detector.ssid_count(cfg.base.bssid), 8u);
  // Detection is fast: within the first scan exchange.
  const auto t = detector.first_detection(cfg.base.bssid);
  ASSERT_TRUE(t.has_value());
  EXPECT_LT(*t, SimTime::seconds(5));
}

TEST_F(DefenseTest, FlagsKarmaOnlyAfterEnoughDirectMimicry) {
  core::Attacker::BaseConfig base;
  base.bssid = *MacAddress::parse("0a:00:00:00:00:67");
  base.pos = {0, 0};
  core::KarmaAttacker karma(medium_, base);
  karma.start();

  EvilTwinDetector::Config dcfg;
  dcfg.max_ssids_per_bssid = 4;
  EvilTwinDetector detector(medium_, {10, 0}, 6, dcfg);
  detector.start();

  // A legacy device with a long PNL makes KARMA mimic many SSIDs at once.
  std::vector<world::PnlEntry> pnl;
  for (int i = 0; i < 8; ++i) {
    pnl.push_back({"net-" + std::to_string(i), false,
                   world::PnlOrigin::kPublicVisit});
  }
  client::Smartphone legacy(person(2, true, pnl), medium_, {5, 0},
                            phone_cfg(), rng_.fork("l"));
  legacy.start();
  events_.run_until(SimTime::seconds(10));
  EXPECT_TRUE(detector.flagged(base.bssid));
}

TEST_F(DefenseTest, DoesNotFlagAnHonestSingleSsidAp) {
  client::LegitimateAp::Config ap_cfg;
  ap_cfg.ssid = "HonestNet";
  ap_cfg.bssid = *MacAddress::parse("02:00:00:00:00:20");
  ap_cfg.pos = {0, 0};
  client::LegitimateAp ap(medium_, ap_cfg);
  ap.start();

  EvilTwinDetector detector(medium_, {10, 0}, 6, EvilTwinDetector::Config{});
  detector.start();

  client::Smartphone probe(
      person(3, false, {{"HonestNet", true, world::PnlOrigin::kVenueLocal}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("p"));
  probe.start();
  events_.run_until(SimTime::minutes(2));
  EXPECT_FALSE(detector.flagged(ap_cfg.bssid));
  EXPECT_TRUE(detector.alerts().empty());
  EXPECT_EQ(detector.ssid_count(ap_cfg.bssid), 1u);
}

TEST_F(DefenseTest, ReportsSecurityDowngrade) {
  core::Attacker::BaseConfig base;
  base.bssid = *MacAddress::parse("0a:00:00:00:00:68");
  base.pos = {0, 0};
  core::KarmaAttacker karma(medium_, base);
  karma.start();

  EvilTwinDetector::Config dcfg;
  dcfg.known_protected_ssids = {"MyCorpWifi"};
  EvilTwinDetector detector(medium_, {10, 0}, 6, dcfg);
  detector.start();

  // The victim asks for its protected corporate network; KARMA mimics it as
  // open — the downgrade signature.
  client::Smartphone victim(
      person(4, true, {{"MyCorpWifi", false, world::PnlOrigin::kWork}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("v"));
  victim.start();
  events_.run_until(SimTime::seconds(10));
  ASSERT_FALSE(detector.alerts().empty());
  bool downgrade = false;
  for (const auto& a : detector.alerts()) {
    downgrade |= a.type == AlertType::kSecurityDowngrade &&
                 a.ssid == "MyCorpWifi";
  }
  EXPECT_TRUE(downgrade);
}

TEST_F(DefenseTest, OperatorMonitorSpotsForeignTwin) {
  const auto real_bssid = *MacAddress::parse("02:00:00:00:00:30");
  RogueApMonitor::Config mcfg;
  mcfg.authorized_bssids = {real_bssid};
  mcfg.operator_ssids = {"Venue-WiFi"};
  RogueApMonitor monitor(medium_, {15, 0}, 6, mcfg);
  monitor.start();

  // An attacker mimics the operator's SSID from a foreign BSSID.
  core::Attacker::BaseConfig base;
  base.bssid = *MacAddress::parse("0a:00:00:00:00:69");
  base.pos = {0, 0};
  core::KarmaAttacker karma(medium_, base);
  karma.start();
  client::Smartphone victim(
      person(5, true, {{"Venue-WiFi", true, world::PnlOrigin::kVenueLocal}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("v"));
  victim.start();
  events_.run_until(SimTime::seconds(10));

  EXPECT_TRUE(monitor.twin_detected());
  ASSERT_FALSE(monitor.alerts().empty());
  EXPECT_EQ(monitor.alerts()[0].type, AlertType::kForeignTwin);
  EXPECT_EQ(monitor.alerts()[0].bssid, base.bssid);
}

TEST_F(DefenseTest, OperatorMonitorIgnoresItsOwnAps) {
  const auto real_bssid = *MacAddress::parse("02:00:00:00:00:31");
  RogueApMonitor::Config mcfg;
  mcfg.authorized_bssids = {real_bssid};
  mcfg.operator_ssids = {"Venue-WiFi"};
  RogueApMonitor monitor(medium_, {15, 0}, 6, mcfg);
  monitor.start();

  client::LegitimateAp::Config ap_cfg;
  ap_cfg.ssid = "Venue-WiFi";
  ap_cfg.bssid = real_bssid;
  ap_cfg.pos = {0, 0};
  client::LegitimateAp ap(medium_, ap_cfg);
  ap.start();
  client::Smartphone guest(
      person(6, false, {{"Venue-WiFi", true, world::PnlOrigin::kVenueLocal}}),
      medium_, {5, 0}, phone_cfg(), rng_.fork("g"));
  guest.start();
  events_.run_until(SimTime::minutes(1));
  EXPECT_FALSE(monitor.twin_detected());
}

TEST_F(DefenseTest, OperatorMonitorCatchesDeauthForgery) {
  const auto real_bssid = *MacAddress::parse("02:00:00:00:00:32");
  RogueApMonitor::Config mcfg;
  mcfg.authorized_bssids = {real_bssid};
  mcfg.deauth_alarm_threshold = 5;
  RogueApMonitor monitor(medium_, {15, 0}, 6, mcfg);
  monitor.start();

  core::Attacker::BaseConfig base;
  base.bssid = *MacAddress::parse("0a:00:00:00:00:6a");
  base.pos = {0, 0};
  core::KarmaAttacker attacker(medium_, base);
  attacker.start();
  core::DeauthModule::Config dm;
  dm.target_bssids = {real_bssid};
  dm.interval = SimTime::seconds(10);
  core::DeauthModule deauth(medium_, attacker.radio(), dm);
  deauth.start();

  events_.run_until(SimTime::seconds(15));
  EXPECT_FALSE(monitor.deauth_forgery_detected());  // only 2 so far
  events_.run_until(SimTime::minutes(2));
  EXPECT_TRUE(monitor.deauth_forgery_detected());
}

TEST(AlertTypeNames, Distinct) {
  std::set<std::string> names;
  for (const auto t :
       {AlertType::kMultiSsidBssid, AlertType::kSecurityDowngrade,
        AlertType::kForeignTwin, AlertType::kDeauthForgery}) {
    names.insert(to_string(t));
  }
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace cityhunter::defense
