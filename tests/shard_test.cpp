// Tests for the continuous sharded city (sim/shard) and its building
// blocks: the district-grid geometry, the conservative barrier, the
// self-determined walker, the delivery-log canonical form, and the
// Medium's boundary radio export/import. The headline assertions are the
// determinism contract from shard.h: byte-identical delivery multisets at
// any shard count and any worker count.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "medium/event_queue.h"
#include "medium/medium.h"
#include "mobility/district_walk.h"
#include "obs/delivery_log.h"
#include "sim/shard.h"
#include "sim/shard_barrier.h"
#include "support/rng.h"
#include "support/sim_time.h"
#include "world/district_grid.h"

namespace cityhunter {
namespace {

using support::Rng;
using support::SimTime;
using world::DistrictGrid;

// ---------------------------------------------------------------------------
// DistrictGrid geometry

TEST(DistrictGridTest, PartitionsThePlaneAtGapMidlines) {
  DistrictGrid::Config cfg;
  cfg.cols = 8;
  cfg.rows = 2;
  cfg.district_m = 500.0;
  cfg.gap_m = 136.0;
  const DistrictGrid grid(cfg);

  EXPECT_EQ(grid.districts(), 16);
  EXPECT_DOUBLE_EQ(grid.pitch(), 636.0);
  EXPECT_DOUBLE_EQ(grid.width(), 8 * 636.0 - 136.0);

  // Inside the first district square.
  EXPECT_TRUE(grid.in_district({250.0, 250.0}));
  EXPECT_EQ(grid.owner_column({250.0, 250.0}), 0);
  // In the first vertical gap, just before its midline: still column 0.
  EXPECT_TRUE(grid.in_gap({500.0 + 67.9, 250.0}));
  EXPECT_EQ(grid.owner_column({500.0 + 67.9, 250.0}), 0);
  // Just past the midline: column 1, even though still in the gap.
  EXPECT_TRUE(grid.in_gap({500.0 + 68.1, 250.0}));
  EXPECT_EQ(grid.owner_column({500.0 + 68.1, 250.0}), 1);
  // Horizontal gaps never change the owner column.
  EXPECT_TRUE(grid.in_gap({250.0, 550.0}));
  EXPECT_EQ(grid.owner_column({250.0, 550.0}), 0);
  // Off-city positions clamp to the edge columns.
  EXPECT_EQ(grid.owner_column({-50.0, 0.0}), 0);
  EXPECT_EQ(grid.owner_column({1e9, 0.0}), 7);

  // Shard ownership: contiguous column groups.
  EXPECT_EQ(grid.owner_shard({250.0, 250.0}, 4), 0);
  EXPECT_EQ(grid.owner_shard({500.0 + 68.1, 250.0}, 4), 0);  // col 1, pair 0
  EXPECT_EQ(grid.owner_shard({2 * 636.0 + 250.0, 250.0}, 4), 1);  // col 2
  EXPECT_EQ(grid.owner_shard({250.0, 250.0}, 1), 0);
  EXPECT_EQ(grid.owner_shard({7 * 636.0 + 250.0, 250.0}, 8), 7);
}

TEST(DistrictGridTest, SamplesStrictlyInsideTheDistrict) {
  const DistrictGrid grid({});
  Rng rng(7);
  for (int d = 0; d < grid.districts(); ++d) {
    const auto cell = grid.cell(d);
    const auto origin = grid.district_origin(cell);
    for (int i = 0; i < 32; ++i) {
      const auto p = grid.sample_in(cell, rng);
      EXPECT_TRUE(grid.in_district(p));
      EXPECT_GT(p.x, origin.x);
      EXPECT_LT(p.x, origin.x + grid.config().district_m);
      EXPECT_GT(p.y, origin.y);
      EXPECT_LT(p.y, origin.y + grid.config().district_m);
    }
  }
}

TEST(DistrictGridTest, RejectsDegenerateConfigs) {
  DistrictGrid::Config cfg;
  cfg.cols = 0;
  EXPECT_THROW(DistrictGrid{cfg}, std::invalid_argument);
  cfg = {};
  cfg.gap_m = -1.0;
  EXPECT_THROW(DistrictGrid{cfg}, std::invalid_argument);
  cfg = {};
  cfg.district_m = 0.0;
  EXPECT_THROW(DistrictGrid{cfg}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Conservative barrier

TEST(ConservativeBarrierTest, CutsTheHorizonIntoEpochs) {
  const sim::ConservativeBarrier barrier(
      {SimTime::seconds(3.0), SimTime::seconds(10.0)});
  ASSERT_EQ(barrier.epochs(), 4u);
  EXPECT_EQ(barrier.epoch_end(0), SimTime::seconds(3.0));
  EXPECT_EQ(barrier.epoch_end(2), SimTime::seconds(9.0));
  EXPECT_EQ(barrier.epoch_end(3), SimTime::seconds(10.0));  // truncated

  // A horizon shorter than the lookahead is one truncated epoch.
  const sim::ConservativeBarrier one(
      {SimTime::seconds(5.0), SimTime::seconds(2.0)});
  ASSERT_EQ(one.epochs(), 1u);
  EXPECT_EQ(one.epoch_end(0), SimTime::seconds(2.0));

  EXPECT_THROW(sim::ConservativeBarrier(
                   {SimTime::microseconds(0), SimTime::seconds(1.0)}),
               std::invalid_argument);
}

TEST(ConservativeBarrierTest, LookaheadBoundsWalkerPenetration) {
  // gap 136, range 60, speed 1.4, tick 1, margin 2: the walker may penetrate
  // speed * (tick + epoch) + margin past the midline, which must stay short
  // of gap/2 - range = 8 m. epoch = (8 - 2) / 1.4 - 1 ~= 3.2857 s.
  const SimTime epoch = sim::ConservativeBarrier::max_safe_lookahead(
      136.0, 60.0, 1.4, 1.0, 2.0);
  EXPECT_NEAR(epoch.sec(), 6.0 / 1.4 - 1.0, 1e-6);
  const double penetration = 1.4 * (1.0 + epoch.sec()) + 2.0;
  EXPECT_LE(penetration, 136.0 / 2.0 - 60.0 + 1e-9);

  // A gap that cannot host any positive epoch throws.
  EXPECT_THROW(
      sim::ConservativeBarrier::max_safe_lookahead(120.0, 60.0, 1.4, 1.0, 2.0),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// DistrictWalker

TEST(DistrictWalkerTest, ForkedStreamReplaysTheExactTrajectory) {
  const DistrictGrid grid({});
  const Rng root(99);
  mobility::DistrictWalker a(&grid, root.fork("walker-3"), 1.4);
  mobility::DistrictWalker b(&grid, root.fork("walker-3"), 1.4);
  ASSERT_EQ(a.pos().x, b.pos().x);
  ASSERT_EQ(a.pos().y, b.pos().y);
  for (int i = 0; i < 2000; ++i) {
    const auto pa = a.step(1.0);
    const auto pb = b.step(1.0);
    ASSERT_EQ(pa.x, pb.x);
    ASSERT_EQ(pa.y, pb.y);
  }
  // And a different fork diverges immediately.
  mobility::DistrictWalker c(&grid, root.fork("walker-4"), 1.4);
  EXPECT_TRUE(c.pos().x != a.pos().x || c.pos().y != a.pos().y);
}

TEST(DistrictWalkerTest, WaypointsAlwaysLandInsideDistricts) {
  const DistrictGrid grid({});
  mobility::DistrictWalker w(&grid, Rng(5), 1.4);
  EXPECT_TRUE(grid.in_district(w.pos()));
  for (int i = 0; i < 5000; ++i) {
    w.step(1.0);
    EXPECT_TRUE(grid.in_district(w.waypoint()));
  }
}

// ---------------------------------------------------------------------------
// DeliveryLog canonical form

TEST(DeliveryLogTest, DigestIsOrderIndependentAndMultiplicityAware) {
  obs::DeliveryLog forward(true);
  obs::DeliveryLog backward(true);
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    forward.record(i * 100, 1, 2, -60.0 - i, 6);
  }
  for (int i = n - 1; i >= 0; --i) {
    backward.record(i * 100, 1, 2, -60.0 - i, 6);
  }
  EXPECT_EQ(forward.digest(), backward.digest());
  EXPECT_EQ(forward.count(), backward.count());

  // Sum (not xor): a duplicated record changes the digest.
  obs::DeliveryLog once;
  obs::DeliveryLog twice;
  once.record(42, 7, 8, -70.0, 1);
  twice.record(42, 7, 8, -70.0, 1);
  twice.record(42, 7, 8, -70.0, 1);
  EXPECT_NE(once.digest(), twice.digest());

  // Partitioning the same records over two logs leaves the combined digest
  // unchanged — the shard-count invariance in miniature.
  obs::DeliveryLog left;
  obs::DeliveryLog right;
  for (int i = 0; i < n; ++i) {
    (i % 3 == 0 ? left : right).record(i * 100, 1, 2, -60.0 - i, 6);
  }
  const obs::DeliveryLog* split[] = {&left, &right};
  const obs::DeliveryLog* whole[] = {&forward};
  EXPECT_EQ(obs::combined_digest(split), obs::combined_digest(whole));
}

TEST(DeliveryLogTest, MergeFollowsInputOrder) {
  obs::DeliveryLog a(true);
  obs::DeliveryLog b(true);
  a.record(10, 1, 2, -50.0, 1);
  b.record(5, 3, 4, -55.0, 6);
  a.record(20, 1, 2, -51.0, 1);
  const obs::DeliveryLog* logs[] = {&a, &b};
  const auto merged = obs::merge_by_input_order(logs);
  ASSERT_EQ(merged.size(), 3u);
  // Log a's records first (input order), then log b's — not time order.
  EXPECT_EQ(merged[0].time_us, 10);
  EXPECT_EQ(merged[1].time_us, 20);
  EXPECT_EQ(merged[2].time_us, 5);
}

// ---------------------------------------------------------------------------
// Medium boundary export/import

TEST(MediumExportImportTest, SnapshotCarriesCountersAcrossMediums) {
  struct CountingSink final : medium::FrameSink {
    int frames = 0;
    void on_frame(const dot11::Frame&, const medium::RxInfo&) override {
      ++frames;
    }
  };

  medium::EventQueue events_a;
  medium::Medium city_a(events_a);
  CountingSink rx_sink;
  auto rx = city_a.attach({10.0, 0.0}, 6, 15.0, &rx_sink);
  auto tx = city_a.attach({0.0, 0.0}, 6, 15.0, nullptr);
  const auto probe =
      dot11::make_broadcast_probe_request(dot11::MacAddress::broadcast());
  tx.transmit(probe);
  tx.transmit(probe);
  events_a.run_until(SimTime::seconds(1.0));
  ASSERT_EQ(tx.frames_sent(), 2u);
  ASSERT_EQ(rx_sink.frames, 2);

  // Hand the transmitter off to a second Medium.
  const auto snapshot = city_a.export_radio(tx);
  EXPECT_EQ(snapshot.frames_sent, 2u);
  EXPECT_EQ(snapshot.channel, 6);
  EXPECT_DOUBLE_EQ(snapshot.tx_power_dbm, 15.0);

  medium::EventQueue events_b;
  medium::Medium city_b(events_b);
  CountingSink rx_sink_b;
  auto rx_b = city_b.attach({10.0, 0.0}, 6, 15.0, &rx_sink_b);
  auto tx_b = city_b.import_radio(snapshot);
  EXPECT_EQ(tx_b.frames_sent(), 2u);  // counters continue, not reset
  EXPECT_EQ(tx_b.channel(), 6);
  tx_b.transmit(probe);
  events_b.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(tx_b.frames_sent(), 3u);
  EXPECT_EQ(rx_sink_b.frames, 1);
  (void)rx;
  (void)rx_b;
}

// ---------------------------------------------------------------------------
// The sharded city itself

// A compact city tuned so the test is fast but every mechanism fires: low
// TX powers shrink the radio ranges, which lets the guard gaps (and so the
// walkers' gap transits) shrink with them, so plenty of phones cross shard
// boundaries within the simulated window.
sim::ShardedCityConfig test_city() {
  sim::ShardedCityConfig cfg;
  cfg.radios = 160;
  cfg.ap_fraction = 0.25;
  cfg.ap_tx_dbm = 5.0;     // ~23 m range
  cfg.phone_tx_dbm = 0.0;  // ~17 m range
  cfg.grid.cols = 8;
  cfg.grid.rows = 1;
  cfg.grid.district_m = 60.0;
  cfg.grid.gap_m = 70.0;
  cfg.duration = SimTime::seconds(120.0);
  cfg.seed = 1234;
  cfg.keep_deliveries = true;
  return cfg;
}

std::vector<obs::DeliveryRecord> sorted_records(
    const sim::ShardedCityResult& r) {
  auto records = r.delivery_records;
  std::sort(records.begin(), records.end());
  return records;
}

TEST(ShardedCityTest, DeliveriesAreByteIdenticalAtAnyShardCount) {
  const auto cfg = test_city();
  const auto baseline = sim::run_sharded_city(cfg);
  ASSERT_GT(baseline.deliveries, 0u);
  ASSERT_GT(baseline.gap_silences, 0u);  // walkers do transit gaps
  ASSERT_EQ(baseline.handoffs, 0u);      // single shard: nothing to hand off
  ASSERT_EQ(baseline.delivery_records.size(), baseline.deliveries);
  const auto golden = sorted_records(baseline);

  for (int shards : {2, 4, 8}) {
    auto sharded_cfg = cfg;
    sharded_cfg.shards = shards;
    const auto r = sim::run_sharded_city(sharded_cfg);
    SCOPED_TRACE(testing::Message() << shards << " shards");
    EXPECT_GT(r.handoffs, 0u) << "no client ever crossed a shard boundary";
    EXPECT_EQ(r.transmissions, baseline.transmissions);
    EXPECT_EQ(r.deliveries, baseline.deliveries);
    EXPECT_EQ(r.gap_silences, baseline.gap_silences);
    EXPECT_EQ(r.delivery_digest, baseline.delivery_digest);
    // The digest is the benches' proxy; here the full multiset backs it up.
    EXPECT_TRUE(sorted_records(r) == golden);
  }
}

TEST(ShardedCityTest, DeliveriesAreByteIdenticalAtAnyWorkerCount) {
  auto cfg = test_city();
  cfg.shards = 4;
  cfg.workers = 1;
  const auto serial = sim::run_sharded_city(cfg);
  ASSERT_GT(serial.handoffs, 0u);

  for (std::size_t workers : {2u, 4u}) {
    cfg.workers = workers;
    const auto r = sim::run_sharded_city(cfg);
    SCOPED_TRACE(testing::Message() << workers << " workers");
    EXPECT_EQ(r.workers, workers);
    EXPECT_EQ(r.handoffs, serial.handoffs);
    EXPECT_EQ(r.transmissions, serial.transmissions);
    EXPECT_EQ(r.deliveries, serial.deliveries);
    EXPECT_EQ(r.gap_silences, serial.gap_silences);
    EXPECT_EQ(r.delivery_digest, serial.delivery_digest);
    EXPECT_TRUE(sorted_records(r) == sorted_records(serial));
    // Threading must not even change per-shard event counts: the partition
    // of work is fixed, only who executes it varies.
    ASSERT_EQ(r.per_shard.size(), serial.per_shard.size());
    for (std::size_t s = 0; s < r.per_shard.size(); ++s) {
      EXPECT_EQ(r.per_shard[s].events_processed,
                serial.per_shard[s].events_processed);
      EXPECT_EQ(r.per_shard[s].handoffs_in, serial.per_shard[s].handoffs_in);
      EXPECT_EQ(r.per_shard[s].handoffs_out,
                serial.per_shard[s].handoffs_out);
    }
  }
}

TEST(ShardedCityTest, HandoffBookkeepingBalances) {
  auto cfg = test_city();
  cfg.shards = 4;
  const auto r = sim::run_sharded_city(cfg);
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  for (const auto& s : r.per_shard) {
    in += s.handoffs_in;
    out += s.handoffs_out;
  }
  EXPECT_EQ(in, out);
  EXPECT_EQ(in, r.handoffs);
  EXPECT_EQ(r.epochs, sim::ConservativeBarrier(
                          {sim::sharded_city_epoch(cfg), cfg.duration})
                          .epochs());
}

TEST(ShardedCityTest, RejectsConfigsThatBreakTheDeterminismContract) {
  // Shards must divide the district columns.
  auto cfg = test_city();
  cfg.shards = 3;
  EXPECT_THROW(sim::run_sharded_city(cfg), std::invalid_argument);

  // A gap narrower than twice the radio range cannot isolate the shards.
  cfg = test_city();
  cfg.grid.gap_m = 40.0;
  cfg.ap_tx_dbm = 20.0;  // ~60 m range
  EXPECT_THROW(sim::run_sharded_city(cfg), std::invalid_argument);

  // An explicit epoch longer than the RF-safe lookahead is refused.
  cfg = test_city();
  cfg.epoch = SimTime::seconds(60.0);
  EXPECT_THROW(sim::run_sharded_city(cfg), std::invalid_argument);

  // The same epoch is fine when it respects the bound.
  cfg.epoch = SimTime::seconds(1.0);
  cfg.duration = SimTime::seconds(5.0);
  EXPECT_NO_THROW(sim::run_sharded_city(cfg));
}

TEST(ShardedCityTest, EventBudgetGuardTripsInsteadOfHanging) {
  auto cfg = test_city();
  cfg.duration = SimTime::seconds(30.0);
  cfg.max_sim_events_per_shard = 200;  // far below what 30 s generates
  EXPECT_THROW(sim::run_sharded_city(cfg), medium::RunAbortError);
}

}  // namespace
}  // namespace cityhunter
