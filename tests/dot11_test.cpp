#include <gtest/gtest.h>

#include "dot11/crc32.h"
#include "dot11/frame.h"
#include "dot11/ie.h"
#include "dot11/mac_address.h"
#include "dot11/serialize.h"
#include "dot11/timing.h"
#include "support/rng.h"

namespace cityhunter::dot11 {
namespace {

using support::Rng;

// --- MacAddress ---

TEST(MacAddress, ParseAndFormatRoundTrip) {
  const auto m = MacAddress::parse("0a:1b:2c:3d:4e:5f");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->str(), "0a:1b:2c:3d:4e:5f");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("0a:1b:2c:3d:4e").has_value());
  EXPECT_FALSE(MacAddress::parse("0a:1b:2c:3d:4e:5f:6a").has_value());
  EXPECT_FALSE(MacAddress::parse("0a-1b-2c-3d-4e-5f").has_value());
  EXPECT_FALSE(MacAddress::parse("zz:1b:2c:3d:4e:5f").has_value());
  EXPECT_FALSE(MacAddress::parse("0a:1b:2c:3d:4e:5").has_value());
}

TEST(MacAddress, BroadcastProperties) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  const auto m = MacAddress::parse("0a:00:00:00:00:01");
  EXPECT_FALSE(m->is_broadcast());
}

TEST(MacAddress, RandomLocalIsLocalUnicast) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto m = MacAddress::random_local(rng);
    EXPECT_TRUE(m.is_locally_administered());
    EXPECT_FALSE(m.is_multicast());
  }
}

TEST(MacAddress, FromOuiKeepsOui) {
  Rng rng(2);
  const auto m = MacAddress::from_oui({0x00, 0x1d, 0xaa}, rng);
  EXPECT_EQ(m.octets()[0], 0x00);
  EXPECT_EQ(m.octets()[1], 0x1d);
  EXPECT_EQ(m.octets()[2], 0xaa);
  EXPECT_FALSE(m.is_multicast());
}

TEST(MacAddress, OrderingAndHash) {
  const auto a = *MacAddress::parse("00:00:00:00:00:01");
  const auto b = *MacAddress::parse("00:00:00:00:00:02");
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<MacAddress>{}(a), std::hash<MacAddress>{}(b));
}

// --- CRC32 ---

TEST(Crc32, KnownVector) {
  // The canonical check value: CRC32("123456789") = 0xCBF43926.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  std::vector<std::uint8_t> data(100, 0xAB);
  const auto base = crc32(data);
  data[50] ^= 0x01;
  EXPECT_NE(crc32(data), base);
}

// --- Information elements ---

TEST(IeList, SsidElement) {
  IeList ies;
  ies.add_ssid("CoffeeShop");
  ASSERT_TRUE(ies.ssid().has_value());
  EXPECT_EQ(*ies.ssid(), "CoffeeShop");
}

TEST(IeList, EmptySsidIsWildcard) {
  IeList ies;
  ies.add_ssid("");
  ASSERT_TRUE(ies.ssid().has_value());
  EXPECT_TRUE(ies.ssid()->empty());
}

TEST(IeList, SsidLengthLimit) {
  IeList ies;
  EXPECT_NO_THROW(ies.add_ssid(std::string(32, 'a')));
  EXPECT_THROW(ies.add_ssid(std::string(33, 'a')), std::length_error);
}

TEST(IeList, BodyLengthLimit) {
  IeList ies;
  EXPECT_THROW(
      ies.add(ElementId::kVendorSpecific, std::vector<std::uint8_t>(256)),
      std::length_error);
}

TEST(IeList, ChannelAndRsn) {
  IeList ies;
  ies.add_ds_param(11);
  EXPECT_EQ(ies.channel().value_or(0), 11);
  EXPECT_FALSE(ies.has_rsn());
  ies.add_rsn_wpa2_psk();
  EXPECT_TRUE(ies.has_rsn());
}

TEST(IeList, SerializeParseRoundTrip) {
  IeList ies;
  ies.add_ssid("Net-1");
  ies.add_supported_rates();
  ies.add_ds_param(6);
  ies.add_rsn_wpa2_psk();
  std::vector<std::uint8_t> wire;
  ies.serialize_to(wire);
  EXPECT_EQ(wire.size(), ies.wire_size());
  const auto parsed = IeList::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ies);
}

TEST(IeList, ParseRejectsTruncation) {
  IeList ies;
  ies.add_ssid("Hello");
  std::vector<std::uint8_t> wire;
  ies.serialize_to(wire);
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    const auto parsed =
        IeList::parse(std::span(wire.data(), wire.size() - cut));
    EXPECT_FALSE(parsed.has_value()) << "cut=" << cut;
  }
}

TEST(IeList, SupportedRatesEncoding) {
  IeList ies;
  const double rates[] = {1.0, 5.5, 11.0};
  ies.add_supported_rates(rates);
  const auto e = ies.find(ElementId::kSupportedRates);
  ASSERT_TRUE(e.has_value());
  ASSERT_EQ(e->body.size(), 3u);
  EXPECT_EQ(e->body[0], 0x80 | 2);   // 1 Mb/s
  EXPECT_EQ(e->body[1], 0x80 | 11);  // 5.5 Mb/s
  EXPECT_EQ(e->body[2], 0x80 | 22);  // 11 Mb/s
}

// --- Frame builders ---

TEST(Frame, BroadcastProbeRequestShape) {
  Rng rng(3);
  const auto client = MacAddress::random_local(rng);
  const auto f = make_broadcast_probe_request(client, 7);
  EXPECT_EQ(f.subtype(), MgmtSubtype::kProbeRequest);
  EXPECT_TRUE(f.header.addr1.is_broadcast());
  EXPECT_EQ(f.header.addr2, client);
  EXPECT_EQ(f.header.sequence, 7);
  ASSERT_NE(f.as<ProbeRequest>(), nullptr);
  EXPECT_TRUE(f.as<ProbeRequest>()->is_broadcast());
}

TEST(Frame, DirectProbeRequestDisclosesSsid) {
  Rng rng(3);
  const auto f =
      make_direct_probe_request(MacAddress::random_local(rng), "HomeNet");
  ASSERT_NE(f.as<ProbeRequest>(), nullptr);
  EXPECT_FALSE(f.as<ProbeRequest>()->is_broadcast());
  EXPECT_EQ(f.as<ProbeRequest>()->ies.ssid().value_or(""), "HomeNet");
}

TEST(Frame, ProbeResponseOpenVsProtected) {
  Rng rng(4);
  const auto bssid = MacAddress::random_local(rng);
  const auto client = MacAddress::random_local(rng);
  const auto open = make_probe_response(bssid, client, "X", 6, true);
  EXPECT_FALSE(open.as<ProbeResponse>()->capability.privacy());
  EXPECT_FALSE(open.as<ProbeResponse>()->ies.has_rsn());
  const auto sec = make_probe_response(bssid, client, "X", 6, false);
  EXPECT_TRUE(sec.as<ProbeResponse>()->capability.privacy());
  EXPECT_TRUE(sec.as<ProbeResponse>()->ies.has_rsn());
}

TEST(Frame, DeauthSpoofsSource) {
  Rng rng(5);
  const auto ap = MacAddress::random_local(rng);
  const auto f = make_deauth(ap, MacAddress::broadcast(), ap,
                             ReasonCode::kDeauthLeaving);
  EXPECT_EQ(f.subtype(), MgmtSubtype::kDeauthentication);
  EXPECT_EQ(f.header.addr2, ap);
  EXPECT_EQ(f.header.addr3, ap);
  EXPECT_TRUE(f.header.addr1.is_broadcast());
}

TEST(Frame, SubtypeNames) {
  EXPECT_EQ(subtype_name(MgmtSubtype::kBeacon), "beacon");
  EXPECT_EQ(subtype_name(MgmtSubtype::kProbeRequest), "probe-req");
  EXPECT_EQ(subtype_name(MgmtSubtype::kDeauthentication), "deauth");
}

// --- Wire serialization: round-trip over every frame type ---

class FrameRoundTrip : public ::testing::TestWithParam<int> {};

Frame sample_frame(int kind) {
  Rng rng(100 + kind);
  const auto a = MacAddress::random_local(rng);
  const auto b = MacAddress::random_local(rng);
  switch (kind) {
    case 0: return make_broadcast_probe_request(a, 1);
    case 1: return make_direct_probe_request(a, "My Home Net", 2);
    case 2: return make_probe_response(a, b, "7-Eleven Free Wifi", 6, true, 3);
    case 3: return make_probe_response(a, b, "Secure-Net", 11, false, 4);
    case 4: return make_beacon(a, "#HKAirport Free WiFi", 1, true, 99999, 5);
    case 5: return make_auth_request(a, b, 6);
    case 6: return make_auth_response(a, b, StatusCode::kSuccess, 7);
    case 7: return make_assoc_request(a, b, "CSL", 8);
    case 8: return make_assoc_response(a, b, StatusCode::kSuccess, 42, 9);
    case 9: return make_deauth(a, b, a, ReasonCode::kInactivity, 10);
    default: {
      Frame f{{a, b, a, 11}, Disassociation{ReasonCode::kDeauthLeaving}};
      return f;
    }
  }
}

TEST_P(FrameRoundTrip, SerializeParseIdentity) {
  const auto frame = sample_frame(GetParam());
  const auto bytes = serialize(frame);
  EXPECT_EQ(bytes.size(), wire_size(frame));
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, frame);
}

TEST_P(FrameRoundTrip, FcsCorruptionIsDetected) {
  const auto frame = sample_frame(GetParam());
  auto bytes = serialize(frame);
  // Flip one bit in each octet position; every corruption must be caught.
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    auto corrupted = bytes;
    corrupted[i] ^= 0x40;
    EXPECT_FALSE(parse(corrupted).has_value()) << "octet " << i;
  }
}

TEST_P(FrameRoundTrip, TruncationIsRejected) {
  const auto bytes = serialize(sample_frame(GetParam()));
  for (std::size_t len = 0; len < bytes.size(); len += 5) {
    EXPECT_FALSE(parse(std::span(bytes.data(), len)).has_value());
  }
}

// Exhaustive deterministic fuzz: the fault model flips arbitrary bits in the
// wire buffer, so *every* single-bit corruption of *every* frame kind must be
// rejected by the FCS (CRC-32 catches all single-bit errors) and must never
// throw out of parse().
TEST_P(FrameRoundTrip, EverySingleBitFlipIsRejected) {
  const auto bytes = serialize(sample_frame(GetParam()));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = bytes;
      mutated[i] ^= static_cast<std::uint8_t>(1u << bit);
      std::optional<Frame> parsed;
      EXPECT_NO_THROW(parsed = parse(mutated))
          << "octet " << i << " bit " << bit;
      EXPECT_FALSE(parsed.has_value()) << "octet " << i << " bit " << bit;
    }
  }
}

// Exhaustive truncation: every prefix length short of the full frame parses
// to nullopt without throwing.
TEST_P(FrameRoundTrip, EveryTruncationIsRejected) {
  const auto bytes = serialize(sample_frame(GetParam()));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::optional<Frame> parsed;
    EXPECT_NO_THROW(parsed = parse(std::span(bytes.data(), len))) << len;
    EXPECT_FALSE(parsed.has_value()) << "len=" << len;
  }
}

// --- Allocation-free codec variants: equivalence with the legacy API ---
// serialize_into / parse_into are the hot-path entry points (reused caller
// buffers, reused Frame slot). They must be bit- and value-identical to
// serialize() / parse() for every frame kind, including when the output
// slot still holds a previous — different — frame.

TEST_P(FrameRoundTrip, SerializeIntoMatchesLegacy) {
  const auto frame = sample_frame(GetParam());
  const auto legacy = serialize(frame);

  std::vector<std::uint8_t> scratch;
  // Poison the scratch with a larger previous frame: serialize_into must
  // fully replace the contents, not append or leave a stale tail.
  scratch.assign(legacy.size() + 64, 0xEE);
  const std::size_t n = serialize_into(frame, scratch);
  EXPECT_EQ(n, scratch.size());
  EXPECT_EQ(n, wire_size(frame));
  EXPECT_EQ(scratch, legacy);

  // Second pass into the same warm buffer stays identical.
  EXPECT_EQ(serialize_into(frame, scratch), legacy.size());
  EXPECT_EQ(scratch, legacy);
}

TEST_P(FrameRoundTrip, ParseIntoMatchesLegacy) {
  const auto frame = sample_frame(GetParam());
  const auto bytes = serialize(frame);
  const auto legacy = parse(bytes);
  ASSERT_TRUE(legacy.has_value());

  Frame slot;
  ASSERT_TRUE(parse_into(bytes, slot));
  EXPECT_EQ(slot, *legacy);
  EXPECT_EQ(slot, frame);

  // Corrupted input must report failure through the same slot without
  // throwing (the slot's value is unspecified afterwards).
  auto bad = bytes;
  bad[bytes.size() / 2] ^= 0x10;
  EXPECT_FALSE(parse_into(bad, slot));
}

TEST(Serialize, ParseIntoReusesSlotAcrossSubtypes) {
  // Cycle one Frame slot through every frame kind twice, in an order that
  // forces subtype switches (variant re-emplace) and subtype repeats (IE
  // storage reuse). Every decode must equal the legacy parse.
  Frame slot;
  std::vector<std::uint8_t> scratch;
  const int order[] = {0, 1, 1, 4, 2, 3, 2, 9, 10, 5, 6, 7, 8, 0, 4, 4};
  for (const int kind : order) {
    const auto frame = sample_frame(kind);
    serialize_into(frame, scratch);
    ASSERT_TRUE(parse_into(scratch, slot)) << "kind=" << kind;
    EXPECT_EQ(slot, frame) << "kind=" << kind;
    EXPECT_EQ(serialize(slot), scratch) << "kind=" << kind;
  }
}

TEST(Frame, BuilderIntoVariantsMatchLegacyBuilders) {
  Rng rng(60);
  const auto client = MacAddress::random_local(rng);
  const auto bssid = MacAddress::random_local(rng);

  Frame out;
  // Seed the slot with an unrelated frame so every field and IE must be
  // overwritten, not merely appended.
  out = make_beacon(bssid, "stale-ssid", 11, false, 123456, 99);

  make_broadcast_probe_request_into(out, client, 5);
  EXPECT_EQ(out, make_broadcast_probe_request(client, 5));

  make_direct_probe_request_into(out, client, "HomeNet", 6);
  EXPECT_EQ(out, make_direct_probe_request(client, "HomeNet", 6));

  make_probe_response_into(out, bssid, client, "Cafe", 6, true, 7);
  EXPECT_EQ(out, make_probe_response(bssid, client, "Cafe", 6, true, 7));

  // open=false adds an RSN IE; rebuilding as open again must drop it.
  make_probe_response_into(out, bssid, client, "Sec", 11, false, 8);
  EXPECT_EQ(out, make_probe_response(bssid, client, "Sec", 11, false, 8));
  make_probe_response_into(out, bssid, client, "Cafe", 6, true, 9);
  EXPECT_EQ(out, make_probe_response(bssid, client, "Cafe", 6, true, 9));

  make_beacon_into(out, bssid, "Beacon-Net", 1, true, 424242, 10);
  EXPECT_EQ(out, make_beacon(bssid, "Beacon-Net", 1, true, 424242, 10));
}

INSTANTIATE_TEST_SUITE_P(AllFrameKinds, FrameRoundTrip,
                         ::testing::Range(0, 11));

TEST(Serialize, SequenceNumberSurvives) {
  Rng rng(6);
  const auto client = MacAddress::random_local(rng);
  for (const std::uint16_t seq : {0, 1, 2047, 4095}) {
    const auto f = make_broadcast_probe_request(client, seq);
    const auto parsed = parse(serialize(f));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.sequence, seq);
  }
}

TEST(Serialize, NonManagementTypeRejected) {
  Rng rng(7);
  auto bytes = serialize(
      make_broadcast_probe_request(MacAddress::random_local(rng)));
  // Set type bits (2-3 of the first octet) to data (10).
  bytes[0] = static_cast<std::uint8_t>((bytes[0] & ~0x0C) | 0x08);
  // Recompute FCS so only the type check can reject.
  const auto fcs = crc32(std::span(bytes.data(), bytes.size() - 4));
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xff);
  }
  EXPECT_FALSE(parse(bytes).has_value());
}

// --- Parser robustness: mutation fuzzing ---
// Property: for any single-byte mutation of a valid frame, parse() either
// rejects (almost always, thanks to the FCS) or returns a frame that
// re-serializes to the same mutated bytes if the FCS is also fixed up.
// Either way it must never crash or read out of bounds.

class ParseFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParseFuzz, MutatedFramesNeverCrashParser) {
  Rng rng(500 + GetParam());
  const auto frame = sample_frame(GetParam() % 11);
  const auto bytes = serialize(frame);
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = bytes;
    const auto pos = rng.index(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    const auto parsed = parse(mutated);
    if (parsed.has_value()) {
      // Only possible when the FCS happened to still match: re-serializing
      // must reproduce the mutated buffer exactly.
      EXPECT_EQ(serialize(*parsed), mutated);
    }
  }
}

TEST_P(ParseFuzz, RandomBytesNeverCrashParser) {
  Rng rng(900 + GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 200)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const auto parsed = parse(junk);
    // Random bytes essentially never carry a valid CRC-32 tail.
    EXPECT_FALSE(parsed.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseFuzz, ::testing::Range(0, 8));

// --- Timing constants ---

TEST(Timing, FortyResponsesFitTheScanWindow) {
  // The core arithmetic of §III-A: the 20 ms listen window divided by the
  // effective per-response airtime gives the 40-SSID budget.
  const auto window = kMinChannelTime + kMaxChannelTime;
  const double per_response_ms = kProbeResponseAirtime.ms() * 2.0;  // contention
  EXPECT_EQ(static_cast<int>(window.ms() / per_response_ms),
            kProbeResponseBudget);
}

TEST(Timing, AirtimeMatchesPaperEstimate) {
  // A typical probe response is ~80-120 octets; at 11 Mb/s plus preamble the
  // paper's 0.25 ms estimate should hold.
  const auto t = airtime(90, kMgmtRateMbps);
  EXPECT_NEAR(t.ms(), 0.25, 0.05);
}

}  // namespace
}  // namespace cityhunter::dot11
