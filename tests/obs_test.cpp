// Observability layer tests (ctest label: obs; also in the asan/tsan sets).
//
// Covers the determinism contracts the layer is built on: ring wraparound
// keeps the most recent records, hostile SSIDs cannot break the JSON sinks,
// the Chrome trace serialization is byte-stable (golden fixture), and the
// metrics/trace harvest of a campaign is identical at any worker count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/probe.h"
#include "obs/trace.h"
#include "sim/parallel.h"

namespace cityhunter {
namespace {

using obs::Category;
using obs::Event;
using obs::TraceBuffer;
using obs::TraceRecord;
using obs::TraceStream;
using support::SimTime;

// --- TraceBuffer ---

TEST(TraceBuffer, FillsAsAPlainPrefixBeforeWrapping) {
  TraceBuffer buf(8);
  EXPECT_EQ(buf.capacity(), 8u);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    buf.record(SimTime::microseconds(static_cast<std::int64_t>(i)),
               Category::kMedium, Event::kTransmit, i);
  }
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.total_recorded(), 5u);
  EXPECT_EQ(buf.dropped(), 0u);
  const auto records = buf.chronological();
  ASSERT_EQ(records.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(records[i].seq, i);
    EXPECT_EQ(records[i].a, i);
  }
}

TEST(TraceBuffer, WraparoundKeepsTheMostRecentRecords) {
  TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    buf.record(SimTime::microseconds(static_cast<std::int64_t>(i) * 100),
               Category::kMedium, Event::kDeliver, i, i * 2);
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total_recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto records = buf.chronological();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first, and only the final four survive: seq 6, 7, 8, 9.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].seq, 6 + i);
    EXPECT_EQ(records[i].a, 6 + i);
    EXPECT_EQ(records[i].b, (6 + i) * 2);
    EXPECT_EQ(records[i].time_us, static_cast<std::int64_t>(6 + i) * 100);
  }
}

TEST(TraceBuffer, ExactlyFullIsNotADrop) {
  TraceBuffer buf(3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    buf.record(SimTime::zero(), Category::kQueue, Event::kTransmit, i);
  }
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_EQ(buf.chronological().front().seq, 0u);
}

TEST(TraceBuffer, ZeroCapacityIsRejected) {
  EXPECT_THROW(TraceBuffer(0), std::invalid_argument);
}

// --- json_escape ---

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(obs::json_escape("plain cafe wifi"), "plain cafe wifi");
  EXPECT_EQ(obs::json_escape("say \"free\" wifi"), "say \\\"free\\\" wifi");
  EXPECT_EQ(obs::json_escape("back\\slash"), "back\\\\slash");
}

TEST(JsonEscape, ControlBytesBecomeUEscapes) {
  EXPECT_EQ(obs::json_escape(std::string("a\nb\tc")), "a\\u000ab\\u0009c");
  EXPECT_EQ(obs::json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(obs::json_escape("\x1b[31m"), "\\u001b[31m");
}

TEST(JsonEscape, WellFormedUtf8PassesThrough) {
  // 2-, 3- and 4-byte sequences: é, 中, 😀.
  const std::string ssid = "caf\xc3\xa9 \xe4\xb8\xad \xf0\x9f\x98\x80";
  EXPECT_EQ(obs::json_escape(ssid), ssid);
}

TEST(JsonEscape, InvalidUtf8BecomesReplacementCharacter) {
  const std::string fffd = "\xef\xbf\xbd";
  // Stray continuation byte.
  EXPECT_EQ(obs::json_escape("a\x80z"), "a" + fffd + "z");
  // Truncated 3-byte sequence at end of string.
  EXPECT_EQ(obs::json_escape("x\xe4\xb8"), "x" + fffd + fffd);
  // Lead byte followed by a non-continuation: both bytes replaced
  // independently ('A' is kept).
  EXPECT_EQ(obs::json_escape("\xc3" "Ab"), fffd + "Ab");
  // 0xFE/0xFF never appear in UTF-8.
  EXPECT_EQ(obs::json_escape("\xfe\xff"), fffd + fffd);
}

TEST(JsonEscape, HostileSsidYieldsParseableJson) {
  // The worst realistic input: an SSID read off the air mixing quotes,
  // escapes, control bytes and garbage. Embedding the escaped form in a
  // string literal must produce output with no raw quotes/controls left.
  const std::string hostile = "\"},\n\x01evil\\\x90\xff";
  const std::string escaped = obs::json_escape(hostile);
  for (const char c : escaped) {
    const auto byte = static_cast<unsigned char>(c);
    EXPECT_GE(byte, 0x20u);
  }
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\') {
      // Every backslash must open a valid escape; consume it whole.
      ASSERT_LT(i + 1, escaped.size()) << "dangling backslash";
      const char next = escaped[i + 1];
      EXPECT_TRUE(next == '"' || next == '\\' || next == 'u')
          << "bad escape '\\" << next << "' at index " << i;
      i += (next == 'u') ? 5 : 1;
    } else {
      EXPECT_NE(escaped[i], '"') << "bare quote at index " << i;
    }
  }
}

// --- Sinks (golden fixtures) ---

std::vector<TraceRecord> fixture_records() {
  TraceBuffer buf(8);
  buf.record(SimTime::microseconds(100), Category::kMedium, Event::kTransmit,
             1, 42);
  buf.record(SimTime::microseconds(250), Category::kAttacker,
             Event::kScanWindowFill, 12, 40);
  buf.record(SimTime::microseconds(900), Category::kFault,
             Event::kDropErasure, 7, 1);
  return buf.chronological();
}

TEST(TraceSinks, JsonlGolden) {
  const auto records = fixture_records();
  const TraceStream stream{3, "run-3", records};
  std::ostringstream os;
  obs::write_jsonl(os, {&stream, 1});
  EXPECT_EQ(
      os.str(),
      "{\"ts\":100,\"seq\":0,\"cat\":\"medium\",\"ev\":\"transmit\","
      "\"a\":1,\"b\":42,\"pid\":3}\n"
      "{\"ts\":250,\"seq\":1,\"cat\":\"attacker\",\"ev\":\"scan-window-fill\","
      "\"a\":12,\"b\":40,\"pid\":3}\n"
      "{\"ts\":900,\"seq\":2,\"cat\":\"fault\",\"ev\":\"drop-erasure\","
      "\"a\":7,\"b\":1,\"pid\":3}\n");
}

TEST(TraceSinks, ChromeTraceGolden) {
  // Byte-exact fixture: this is the serialization the "identical at any
  // thread count" acceptance check compares, so lock it down.
  const auto records = fixture_records();
  const TraceStream stream{0, "run-0 (canteen)", records};
  std::ostringstream os;
  obs::write_chrome_trace(os, {&stream, 1});
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"run-0 (canteen)\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"queue\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"medium\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":2,"
      "\"args\":{\"name\":\"fault\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":3,"
      "\"args\":{\"name\":\"attacker\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":4,"
      "\"args\":{\"name\":\"sim\"}},\n"
      "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"transmit\",\"pid\":0,\"tid\":1,"
      "\"ts\":100,\"seq\":0,\"cat\":\"medium\",\"ev\":\"transmit\","
      "\"a\":1,\"b\":42},\n"
      "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"scan-window-fill\",\"pid\":0,"
      "\"tid\":3,\"ts\":250,\"seq\":1,\"cat\":\"attacker\","
      "\"ev\":\"scan-window-fill\",\"a\":12,\"b\":40},\n"
      "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"drop-erasure\",\"pid\":0,"
      "\"tid\":2,\"ts\":900,\"seq\":2,\"cat\":\"fault\","
      "\"ev\":\"drop-erasure\",\"a\":7,\"b\":1}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

// --- MetricsRegistry ---

TEST(MetricsRegistry, CountersGaugesAndDistributions) {
  obs::MetricsRegistry m;
  const auto c = m.counter("frames");
  const auto g = m.gauge("pb_size");
  const auto d = m.distribution("fill", 1.0);
  m.add(c);
  m.add(c, 9);
  m.set(g, 12.0);
  m.set(g, 8.0);
  m.observe(d, 2.0);
  m.observe(d, 4.0);

  const auto snap = m.snapshot();
  const auto* frames = snap.find("frames");
  ASSERT_NE(frames, nullptr);
  EXPECT_EQ(frames->kind, obs::MetricKind::kCounter);
  EXPECT_EQ(frames->count, 10u);

  const auto* pb = snap.find("pb_size");
  ASSERT_NE(pb, nullptr);
  EXPECT_EQ(pb->kind, obs::MetricKind::kGauge);
  EXPECT_EQ(pb->count, 2u);
  EXPECT_EQ(pb->value, 8.0);
  EXPECT_EQ(pb->min, 8.0);
  EXPECT_EQ(pb->max, 12.0);

  const auto* fill = snap.find("fill");
  ASSERT_NE(fill, nullptr);
  EXPECT_EQ(fill->count, 2u);
  EXPECT_EQ(fill->value, 3.0);  // mean
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(MetricsRegistry, ReRegistrationDedupsAndKindMismatchThrows) {
  obs::MetricsRegistry m;
  const auto a = m.counter("x");
  EXPECT_EQ(m.counter("x"), a);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_THROW(m.gauge("x"), std::invalid_argument);
}

TEST(MetricsRegistry, DeterministicViewStripsTimers) {
  obs::MetricsRegistry m;
  m.add(m.counter("events"), 3);
  m.record_seconds(m.timer("phase.sim"), 0.5);
  const auto snap = m.snapshot();
  EXPECT_NE(snap.find("phase.sim"), nullptr);
  const auto det = snap.deterministic();
  EXPECT_EQ(det.find("phase.sim"), nullptr);
  ASSERT_NE(det.find("events"), nullptr);
  EXPECT_EQ(det.find("events")->count, 3u);
}

// --- Probe ---

TEST(Probe, DisabledProbeHasNullSinks) {
  obs::Probe off{obs::Config{}};
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.trace(), nullptr);
  EXPECT_EQ(off.metrics(), nullptr);

  obs::Config cfg;
  cfg.enabled = true;
  cfg.trace_capacity = 64;
  obs::Probe on{cfg};
  EXPECT_TRUE(on.enabled());
  ASSERT_NE(on.trace(), nullptr);
  EXPECT_EQ(on.trace()->capacity(), 64u);
  EXPECT_NE(on.metrics(), nullptr);
}

// --- Campaign-level determinism across thread counts ---

sim::ScenarioConfig small_scenario() {
  sim::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.aps.residential_ap_count = 800;
  cfg.aps.small_venue_count = 400;
  cfg.aps.enterprise_ap_count = 150;
  cfg.photos.photo_count = 8000;
  return cfg;
}

std::vector<sim::RunConfig> traced_runs() {
  const sim::AttackerKind kinds[] = {sim::AttackerKind::kMana,
                                     sim::AttackerKind::kCityHunter};
  std::vector<sim::RunConfig> runs;
  for (int i = 0; i < 4; ++i) {
    sim::RunConfig run;
    run.kind = kinds[i % 2];
    run.venue = (i < 2) ? mobility::canteen_venue()
                        : mobility::subway_passage_venue();
    run.slot.expected_clients = 60 + 30 * i;
    run.duration = support::SimTime::minutes(5);
    run.run_seed = static_cast<std::uint64_t>(i + 1);
    run.obs.enabled = true;
    run.obs.trace_capacity = 4096;
    runs.push_back(std::move(run));
  }
  return runs;
}

TEST(ObsCampaign, HarvestIsIdenticalAtAnyThreadCount) {
  const sim::World world(small_scenario());
  const auto runs = traced_runs();

  std::vector<std::vector<sim::RunOutput>> by_threads;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    by_threads.push_back(
        sim::run_campaigns(world, runs, sim::ParallelConfig{threads}));
    ASSERT_EQ(by_threads.back().size(), runs.size());
  }

  const auto& base = by_threads.front();
  for (const auto& out : base) {
    ASSERT_FALSE(out.error.failed()) << out.error.str();
    // The snapshot actually covers the promised series.
    const auto& snap = out.metrics;
    for (const char* name :
         {"queue.scheduled", "queue.processed", "queue.peak_pending",
          "medium.transmissions", "medium.deliveries", "fault.drop_erasure",
          "fault.drop_collision", "attacker.scan_windows",
          "attacker.responses_sent", "trace.dropped", "phase.sim"}) {
      EXPECT_NE(snap.find(name), nullptr) << name;
    }
    EXPECT_EQ(snap.find("queue.processed")->count, out.queue_stats.processed);
    EXPECT_FALSE(out.trace.empty());
  }

  for (std::size_t t = 1; t < by_threads.size(); ++t) {
    for (std::size_t i = 0; i < runs.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "threads-case " << t << " run " << i);
      const auto& a = base[i];
      const auto& b = by_threads[t][i];
      // Wallclock timers differ run to run; everything else must not.
      EXPECT_EQ(a.metrics.deterministic(), b.metrics.deterministic());
      EXPECT_EQ(a.trace, b.trace);
      EXPECT_EQ(a.trace_dropped, b.trace_dropped);
      EXPECT_EQ(a.queue_stats, b.queue_stats);
      EXPECT_EQ(a.result, b.result);
    }
  }
}

TEST(ObsCampaign, TracingDoesNotChangeTheSimulation) {
  const sim::World world(small_scenario());
  auto run = traced_runs().front();
  const auto traced = sim::run_campaign(world, run);
  run.obs.enabled = false;
  const auto plain = sim::run_campaign(world, run);
  EXPECT_EQ(plain.result, traced.result);
  EXPECT_EQ(plain.frames_transmitted, traced.frames_transmitted);
  EXPECT_EQ(plain.frames_delivered, traced.frames_delivered);
  EXPECT_EQ(plain.queue_stats, traced.queue_stats);
  EXPECT_EQ(plain.medium_stats, traced.medium_stats);
  // The disabled run carries no harvest.
  EXPECT_TRUE(plain.metrics.points.empty());
  EXPECT_TRUE(plain.trace.empty());
}

}  // namespace
}  // namespace cityhunter
