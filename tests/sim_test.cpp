#include <gtest/gtest.h>

#include <algorithm>

#include "sim/export.h"
#include "sim/scenario.h"

namespace cityhunter::sim {
namespace {

using support::SimTime;

ScenarioConfig small_scenario(std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  // Shrink the world so these tests stay fast.
  cfg.aps.residential_ap_count = 800;
  cfg.aps.small_venue_count = 400;
  cfg.aps.enterprise_ap_count = 150;
  cfg.photos.photo_count = 8000;
  return cfg;
}

RunConfig small_run(AttackerKind kind) {
  RunConfig run;
  run.kind = kind;
  run.venue = mobility::canteen_venue();
  run.slot.expected_clients = 120;
  run.duration = SimTime::minutes(10);
  return run;
}

TEST(World, BuildsAllPieces) {
  World world(small_scenario());
  EXPECT_GT(world.aps().size(), 1000u);
  EXPECT_GT(world.wigle().size(), 500u);
  EXPECT_LT(world.wigle().size(), world.aps().size());
  EXPECT_GT(world.heat().max_cell(), 0.0);
  EXPECT_FALSE(world.pnl_model().ranked_public_ssids().empty());
}

TEST(World, VenueApsExistForEveryVenue) {
  World world(small_scenario());
  std::set<std::string> ssids;
  for (const auto& ap : world.aps()) ssids.insert(ap.ssid);
  EXPECT_TRUE(ssids.count("MTR Free Wi-Fi"));
  EXPECT_TRUE(ssids.count("Canteen-Free-WiFi"));
  EXPECT_TRUE(ssids.count("HarbourMall-Guest"));
  EXPECT_TRUE(ssids.count("RailwayStation-Free"));
}

TEST(World, VenuePositionsAreDistinct) {
  std::set<std::pair<double, double>> seen;
  for (const char* name : {"subway-passage", "canteen", "shopping-center",
                           "railway-station"}) {
    const auto p = venue_city_position(name);
    EXPECT_TRUE(seen.insert({p.x, p.y}).second) << name;
  }
  // Unknown venue falls back to the city centre.
  const auto fallback = venue_city_position("nowhere");
  EXPECT_DOUBLE_EQ(fallback.x, 5000);
}

TEST(World, LocalPublicSsidsAreNearby) {
  World world(small_scenario());
  const auto pos = venue_city_position("canteen");
  const auto local = world.local_public_ssids(pos, 500.0);
  EXPECT_FALSE(local.empty());
  // Every returned SSID has at least one open AP within the radius.
  for (const auto& ssid : local) {
    bool found = false;
    for (const auto& ap : world.aps()) {
      if (ap.ssid == ssid && ap.open &&
          medium::distance(ap.pos, pos) <= 500.0) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << ssid;
  }
}

TEST(RunCampaign, DeterministicForSameSeeds) {
  World world(small_scenario());
  auto run = small_run(AttackerKind::kCityHunter);
  const auto a = run_campaign(world, run);
  // run_campaign is pure in the world (the PNL model is copied per run), so
  // rerunning against the *same* World is bit-identical.
  const auto b = run_campaign(world, run);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.window_rates, b.window_rates);
  EXPECT_EQ(a.db_final_size, b.db_final_size);
}

TEST(RunCampaign, DifferentRunSeedsDiffer) {
  World world(small_scenario());
  auto run = small_run(AttackerKind::kCityHunter);
  run.run_seed = 1;
  const auto a = run_campaign(world, run);
  run.run_seed = 2;
  const auto b = run_campaign(world, run);
  EXPECT_NE(a.result.total_clients, b.result.total_clients);
}

TEST(RunCampaign, KarmaGetsZeroBroadcastHits) {
  World world(small_scenario());
  const auto out = run_campaign(world, small_run(AttackerKind::kKarma));
  EXPECT_EQ(out.result.broadcast_connected, 0u);
  EXPECT_EQ(out.db_final_size, 0u);  // KARMA keeps no database
}

TEST(RunCampaign, ManaDatabaseComesOnlyFromDirectProbes) {
  World world(small_scenario());
  const auto out = run_campaign(world, small_run(AttackerKind::kMana));
  EXPECT_GT(out.db_final_size, 0u);
  EXPECT_EQ(out.db_from_direct, out.db_final_size);
}

TEST(RunCampaign, CityHunterDatabaseIsSeededPlusLearned) {
  World world(small_scenario());
  const auto out = run_campaign(world, small_run(AttackerKind::kCityHunter));
  EXPECT_GT(out.db_final_size, 150u);  // WiGLE seed present
  EXPECT_GT(out.db_from_direct, 0u);   // plus on-site learning
  EXPECT_LT(out.db_from_direct, out.db_final_size);
  EXPECT_GT(out.final_pb_size, 0);
  EXPECT_EQ(out.final_pb_size + out.final_fb_size, 40);
}

TEST(RunCampaign, SamplingProducesMonotonicSeries) {
  World world(small_scenario());
  auto run = small_run(AttackerKind::kMana);
  run.sample_every = SimTime::minutes(1);
  const auto out = run_campaign(world, run);
  ASSERT_EQ(out.series.size(), 10u);
  for (std::size_t i = 1; i < out.series.size(); ++i) {
    EXPECT_GE(out.series[i].db_size, out.series[i - 1].db_size);
    EXPECT_GE(out.series[i].broadcast_connected,
              out.series[i - 1].broadcast_connected);
    EXPECT_GT(out.series[i].time, out.series[i - 1].time);
  }
}

TEST(RunCampaign, WindowRatesCoverTheDuration) {
  World world(small_scenario());
  auto run = small_run(AttackerKind::kCityHunter);
  const auto out = run_campaign(world, run);
  EXPECT_EQ(out.window_rates.size(), 5u);  // 10 min / 2 min
  std::size_t total = 0;
  for (const auto& w : out.window_rates) total += w.broadcast_clients;
  EXPECT_EQ(total, out.result.broadcast_clients);
}

TEST(RunCampaign, CarrierSeedProducesCarrierHits) {
  World world(small_scenario());
  auto run = small_run(AttackerKind::kCityHunter);
  run.slot.expected_clients = 400;
  run.duration = SimTime::minutes(20);
  run.seed_carrier_ssids = true;
  const auto out = run_campaign(world, run);
  EXPECT_GT(out.result.hits_from_carrier_seed, 0u);
}

TEST(RunCampaign, DeauthScenarioReachesParkedClients) {
  World world(small_scenario());
  auto run = small_run(AttackerKind::kCityHunter);
  run.slot.expected_clients = 250;
  run.duration = SimTime::minutes(20);
  DeauthScenario d;
  d.pre_associated_fraction = 1.0;  // everyone starts parked
  d.enable_deauth = false;
  run.deauth = d;
  const auto baseline = run_campaign(world, run);
  EXPECT_EQ(baseline.result.total_clients, 0u);  // nobody ever probes

  d.enable_deauth = true;
  run.deauth = d;
  const auto attacked = run_campaign(world, run);
  EXPECT_GT(attacked.deauths_sent, 0u);
  EXPECT_GT(attacked.result.total_clients, 50u);
}

TEST(RunCampaign, WarmStartCarriesLearnedSsids) {
  World world(small_scenario());
  auto run = small_run(AttackerKind::kCityHunter);
  const auto first = run_campaign(world, run);
  ASSERT_GT(first.db_from_direct, 0u);

  auto warm = small_run(AttackerKind::kCityHunter);
  warm.run_seed = 2;
  warm.initial_database = first.database;
  const auto second = run_campaign(world, warm);
  // The warm DB contains everything the first slot learned plus new WiGLE
  // seeding (idempotent) plus the second slot's own learning.
  EXPECT_GE(second.db_final_size, first.db_final_size);
  EXPECT_GE(second.db_from_direct, first.db_from_direct);
}

TEST(Export, ResultsCsvShape) {
  stats::CampaignResult r;
  r.label = "X";
  r.total_clients = 10;
  r.direct_clients = 2;
  r.broadcast_clients = 8;
  r.broadcast_connected = 4;
  r.hits_from_wigle = 3;
  const auto csv = results_csv({r});
  EXPECT_NE(csv.find("label,total,direct"), std::string::npos);
  EXPECT_NE(csv.find("\"X\",10,2,8,0,4,0.4,0.5,3,0,0,0,0"), std::string::npos);
  // Header + 1 row = 2 newlines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Export, SeriesAndWindowsCsv) {
  std::vector<SeriesPoint> series{
      {support::SimTime::minutes(1), 100, 5},
      {support::SimTime::minutes(2), 120, 9},
  };
  const auto s = series_csv(series);
  EXPECT_NE(s.find("minutes,db_size,broadcast_connected"), std::string::npos);
  EXPECT_NE(s.find("1,100,5"), std::string::npos);
  EXPECT_NE(s.find("2,120,9"), std::string::npos);

  std::vector<stats::WindowRate> windows(1);
  windows[0].start = support::SimTime::minutes(4);
  windows[0].broadcast_clients = 8;
  windows[0].broadcast_connected = 2;
  const auto w = windows_csv(windows);
  EXPECT_NE(w.find("4,8,0.25"), std::string::npos);
}

TEST(AttackerKindNames, Distinct) {
  std::set<std::string> names;
  for (const auto k : {AttackerKind::kKarma, AttackerKind::kMana,
                       AttackerKind::kPrelim, AttackerKind::kCityHunter}) {
    names.insert(to_string(k));
  }
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace cityhunter::sim
