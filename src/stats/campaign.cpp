#include "stats/campaign.h"

#include <numeric>

namespace cityhunter::stats {

double CampaignResult::mean_ssids_sent_connected() const {
  if (ssids_sent_connected.empty()) return 0.0;
  const double sum = std::accumulate(ssids_sent_connected.begin(),
                                     ssids_sent_connected.end(), 0.0);
  return sum / static_cast<double>(ssids_sent_connected.size());
}

CampaignResult analyze(const core::Attacker& attacker,
                       const std::string& label) {
  CampaignResult r;
  r.label = label;
  for (const auto& [mac, c] : attacker.clients()) {
    ++r.total_clients;
    if (c.direct_prober) {
      ++r.direct_clients;
      if (c.connected) ++r.direct_connected;
      continue;
    }
    ++r.broadcast_clients;
    r.ssids_sent_all_broadcast.push_back(c.ssids_sent);
    if (!c.connected) continue;
    ++r.broadcast_connected;
    r.ssids_sent_connected.push_back(c.ssids_sent);

    if (!c.hit_choice) continue;
    switch (c.hit_choice->source) {
      case core::SsidSource::kWigleNearby:
      case core::SsidSource::kWiglePopular:
        ++r.hits_from_wigle;
        break;
      case core::SsidSource::kDirectProbe:
        ++r.hits_from_direct_db;
        break;
      case core::SsidSource::kCarrierSeed:
        ++r.hits_from_carrier_seed;
        break;
    }
    switch (c.hit_choice->tag) {
      case core::SelectionTag::kPopularity:
        ++r.hits_via_popularity;
        break;
      case core::SelectionTag::kPopularityGhost:
        ++r.hits_via_popularity;
        ++r.hits_via_popularity_ghost;
        break;
      case core::SelectionTag::kFreshness:
        ++r.hits_via_freshness;
        break;
      case core::SelectionTag::kFreshnessGhost:
        ++r.hits_via_freshness;
        ++r.hits_via_freshness_ghost;
        break;
      default:
        break;  // plain dump / untried sweep: no buffer attribution
    }
  }
  return r;
}

MediumStats medium_stats(const medium::Medium& medium) {
  MediumStats m;
  m.transmissions = medium.transmissions();
  m.deliveries = medium.deliveries();
  m.frames_lost = medium.frames_lost();
  m.frames_corrupted = medium.frames_corrupted();
  m.retries = medium.retries();
  return m;
}

std::vector<WindowRate> realtime_hb(const core::Attacker& attacker,
                                    SimTime window, SimTime duration) {
  if (window.us() <= 0) return {};  // degenerate window: no rate is defined
  const auto n = static_cast<std::size_t>(
      (duration.us() + window.us() - 1) / window.us());
  std::vector<WindowRate> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].start = SimTime::microseconds(static_cast<std::int64_t>(i) *
                                         window.us());
  }
  for (const auto& [mac, c] : attacker.clients()) {
    if (c.direct_prober) continue;
    const auto idx = static_cast<std::size_t>(c.first_seen.us() / window.us());
    if (idx >= n) continue;
    ++out[idx].broadcast_clients;
    if (c.connected) ++out[idx].broadcast_connected;
  }
  return out;
}

}  // namespace cityhunter::stats
