#include "stats/report.h"

#include <sstream>

#include "support/table.h"

namespace cityhunter::stats {

std::string comparison_table(const std::vector<CampaignResult>& rows) {
  support::TextTable t({"Attack", "Total probes", "Direct/Broadcast",
                        "Clients connected", "h", "h_b"});
  for (const auto& r : rows) {
    std::ostringstream split;
    split << r.direct_clients << "/" << r.broadcast_clients;
    std::ostringstream conn;
    conn << r.direct_connected << " (direct); " << r.broadcast_connected
         << " (broadcast)";
    t.add_row({r.label,
               support::TextTable::num(
                   static_cast<long long>(r.total_clients)),
               split.str(), conn.str(), support::TextTable::pct(r.h()),
               support::TextTable::pct(r.h_b())});
  }
  return t.str();
}

std::string summary_line(const CampaignResult& r) {
  std::ostringstream os;
  os << r.label << ": " << r.total_clients << " clients ("
     << r.direct_clients << " direct / " << r.broadcast_clients
     << " broadcast), connected " << r.direct_connected << "+"
     << r.broadcast_connected << ", h=" << support::TextTable::pct(r.h())
     << ", h_b=" << support::TextTable::pct(r.h_b());
  return os.str();
}

std::string loss_line(const MediumStats& m) {
  std::ostringstream os;
  os << "tx=" << m.transmissions << " delivered=" << m.deliveries
     << " lost=" << m.frames_lost << " ("
     << support::TextTable::pct(m.loss_rate()) << ") corrupted="
     << m.frames_corrupted << " retries=" << m.retries;
  return os.str();
}

}  // namespace cityhunter::stats
