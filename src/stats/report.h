// Rendering of campaign results in the paper's table formats.
#pragma once

#include <string>
#include <vector>

#include "stats/campaign.h"

namespace cityhunter::stats {

/// Render rows shaped like Tables I-III:
///   Attack | Total probes | Direct/Broadcast | Clients connected | h | h_b
std::string comparison_table(const std::vector<CampaignResult>& rows);

/// One-line summary for logs.
std::string summary_line(const CampaignResult& r);

/// One-line channel summary for logs and lossy-channel benches, e.g.
///   "tx=1200 delivered=3400 lost=510 (13.0%) corrupted=24 retries=96".
std::string loss_line(const MediumStats& m);

}  // namespace cityhunter::stats
