// Rendering of campaign results in the paper's table formats.
#pragma once

#include <string>
#include <vector>

#include "stats/campaign.h"

namespace cityhunter::stats {

/// Render rows shaped like Tables I-III:
///   Attack | Total probes | Direct/Broadcast | Clients connected | h | h_b
std::string comparison_table(const std::vector<CampaignResult>& rows);

/// One-line summary for logs.
std::string summary_line(const CampaignResult& r);

}  // namespace cityhunter::stats
