// Campaign analysis: turns an attacker's client registry into the metrics
// the paper reports.
//
//   h    — overall hit rate: connected clients / clients whose probes were
//          received (Table I-III).
//   h_b  — broadcast hit rate: connected broadcast-only clients / all
//          broadcast-only clients (the paper's headline metric).
//   h_b^r — real-time broadcast hit rate over fixed windows (Fig 1b).
// Plus the Fig 2 per-client "SSIDs tried" distributions and the Fig 6
// breakdown of successful SSIDs by database source (WiGLE vs direct probes)
// and by selection buffer (popularity vs freshness, ghosts included).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/attacker.h"
#include "medium/medium.h"
#include "support/sim_time.h"

namespace cityhunter::stats {

using support::SimTime;

/// Channel-side counters for one run: what the medium transmitted,
/// delivered, lost, corrupted and retried. The fault-injection complement
/// to the attacker-side CampaignResult; all fault fields stay zero while
/// the medium's FaultModel is disabled.
struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t frames_lost = 0;      // per-receiver erasures
  std::uint64_t frames_corrupted = 0; // TX bursts that kept bit damage
  std::uint64_t retries = 0;          // 802.11 retransmissions

  /// Fraction of otherwise-decodable deliveries the fault model erased.
  double loss_rate() const {
    const std::uint64_t reachable = deliveries + frames_lost;
    return reachable ? static_cast<double>(frames_lost) /
                           static_cast<double>(reachable)
                     : 0.0;
  }

  bool operator==(const MediumStats&) const = default;
};

/// Snapshot the medium's counters after (or during) a run.
MediumStats medium_stats(const medium::Medium& medium);

struct CampaignResult {
  std::string label;

  std::size_t total_clients = 0;
  std::size_t direct_clients = 0;     // sent at least one direct probe
  std::size_t broadcast_clients = 0;  // broadcast-only
  std::size_t direct_connected = 0;
  std::size_t broadcast_connected = 0;

  double h() const {
    return total_clients
               ? static_cast<double>(direct_connected + broadcast_connected) /
                     static_cast<double>(total_clients)
               : 0.0;
  }
  double h_b() const {
    return broadcast_clients ? static_cast<double>(broadcast_connected) /
                                   static_cast<double>(broadcast_clients)
                             : 0.0;
  }

  // --- Fig 6: breakdown of broadcast-hit SSIDs ---
  std::size_t hits_from_wigle = 0;
  std::size_t hits_from_direct_db = 0;  // SSIDs learned from direct probes
  std::size_t hits_from_carrier_seed = 0;
  std::size_t hits_via_popularity = 0;  // PB incl. its ghost list
  std::size_t hits_via_popularity_ghost = 0;
  std::size_t hits_via_freshness = 0;  // FB incl. its ghost list
  std::size_t hits_via_freshness_ghost = 0;

  double wigle_to_direct_ratio() const {
    return hits_from_direct_db
               ? static_cast<double>(hits_from_wigle) /
                     static_cast<double>(hits_from_direct_db)
               : 0.0;
  }
  double popularity_to_freshness_ratio() const {
    return hits_via_freshness
               ? static_cast<double>(hits_via_popularity) /
                     static_cast<double>(hits_via_freshness)
               : 0.0;
  }

  // --- Fig 2 ---
  /// Distinct SSIDs offered to each *connected broadcast* client (Fig 2a).
  std::vector<int> ssids_sent_connected;
  /// Distinct SSIDs offered to every broadcast client (Fig 2b).
  std::vector<int> ssids_sent_all_broadcast;

  double mean_ssids_sent_connected() const;

  bool operator==(const CampaignResult&) const = default;
};

/// Analyse an attacker after (or during) a run.
CampaignResult analyze(const core::Attacker& attacker,
                       const std::string& label);

/// Real-time broadcast hit rate per window (Fig 1b): window i covers
/// [i*window, (i+1)*window). A client is counted in the window of its first
/// appearance; it counts as hit if it ever connected.
struct WindowRate {
  SimTime start;
  std::size_t broadcast_clients = 0;
  std::size_t broadcast_connected = 0;
  double rate() const {
    return broadcast_clients ? static_cast<double>(broadcast_connected) /
                                   static_cast<double>(broadcast_clients)
                             : 0.0;
  }

  bool operator==(const WindowRate&) const = default;
};

std::vector<WindowRate> realtime_hb(const core::Attacker& attacker,
                                    SimTime window, SimTime duration);

}  // namespace cityhunter::stats
