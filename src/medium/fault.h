// Deterministic fault injection for the simulated medium.
//
// The paper's attack runs over real 2.4 GHz air in crowded venues: probe
// responses are lost to collisions, absorption and contention, and the
// 40-response scan budget only matters *because* the channel is imperfect.
// FaultModel makes the simulated channel imperfect in a reproducible way:
//
//   * Per-receiver erasure with an SNR-derived packet-error rate (logistic
//     curve over log-distance RX power above a configurable noise floor),
//     plus an SNR-independent ambient collision floor.
//   * Interference bursts that flip real bits in the serialized buffer, so
//     corrupted frames are rejected by the CRC-32 FCS in dot11::parse — the
//     same path a real NIC uses to drop bad frames.
//   * 802.11 retransmission for unicast management frames: an attempt that
//     collides (the addressed receiver gets nothing, so no ACK comes back)
//     or is hit by a burst is retried up to `retry_limit` times with
//     exponential contention backoff, consuming airtime per attempt — the
//     link layer repairs ambient loss by spending scan-budget time. Only
//     the edge-of-range SNR loss, which no retransmission repairs, still
//     erases unicast frames per receiver. Broadcasts are unacknowledged and
//     get exactly one attempt with the full per-receiver loss, as per the
//     standard.
//
// Every draw comes from a dedicated stream that is a pure function of
// (seed, tx radio, frame sequence), so a lossy run is bit-identical no
// matter how campaigns are interleaved across threads.
//
// Disabled by default: with `Config{}.enabled == false` the medium makes no
// RNG draws and no timing changes, and every existing figure stays
// byte-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"
#include "support/sim_time.h"

namespace cityhunter::medium {

using support::SimTime;

class FaultModel {
 public:
  struct Config {
    /// Master switch. Off = perfect channel, zero overhead, no RNG draws.
    bool enabled = false;

    /// Receiver noise floor (thermal + steady interference). SNR of a frame
    /// is its log-distance RX power minus this.
    double noise_floor_dbm = -92.0;

    /// Logistic PER curve: per(snr) = 1 / (1 + exp((snr - mid) / width)).
    /// Monotonically increasing in distance by construction.
    double per_snr_mid_db = 8.0;
    double per_width_db = 2.0;

    /// SNR-independent collision probability: hidden-node collisions and
    /// foreign bursts that no link budget predicts. Applied per delivery
    /// for broadcasts; per TX attempt (inside the ACK-driven retry loop)
    /// for unicast frames.
    double ambient_loss = 0.0;

    /// Probability that one TX attempt is corrupted by an interference
    /// burst. Corruption flips real bits in the wire bytes; the FCS check
    /// rejects the frame at every receiver.
    double corruption_rate = 0.0;
    /// Bits flipped per corrupted attempt (1..max_bit_flips, uniform).
    int max_bit_flips = 4;

    /// dot11ShortRetryLimit for unicast management frames.
    int retry_limit = 4;
    /// Contention window bounds (slots) for exponential backoff: retry k
    /// waits uniform[0, min(cw_max, (cw_min + 1) << k  - 1)] slots.
    int cw_min = 15;
    int cw_max = 1023;
    /// 802.11b long slot time.
    double slot_time_us = 20.0;

    /// Root of the fault streams. run_campaign() overrides this per run
    /// from the run's labelled RNG fork.
    std::uint64_t seed = 0xC17B0A7ULL;
  };

  FaultModel() = default;
  /// Validates the config; throws std::invalid_argument on nonsense
  /// (probabilities outside [0,1], non-positive PER width, cw_max < cw_min).
  explicit FaultModel(Config cfg);

  const Config& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled; }

  double snr_db(double rx_power_dbm) const {
    return rx_power_dbm - cfg_.noise_floor_dbm;
  }

  /// SNR-derived packet-error rate at a given RX power. Monotonically
  /// non-increasing in RX power (so non-decreasing in distance).
  double per(double rx_power_dbm) const;

  /// Total per-link erasure probability for an unacknowledged (broadcast)
  /// delivery: SNR-derived PER combined with the ambient collision floor
  /// (independent events). Unicast deliveries pay the ambient floor in the
  /// TX retry loop instead and use bare per() at the receiver.
  double link_loss(double rx_power_dbm) const;

  /// Dedicated stream for one transmission, a pure function of
  /// (config seed, tx radio id, per-radio frame sequence). Delivery order
  /// and thread scheduling cannot perturb it.
  support::Rng stream(std::uint64_t tx_radio, std::uint64_t frame_seq) const;

  /// Flip 1..max_bit_flips distinct bits of `wire` in place.
  void corrupt(std::vector<std::uint8_t>& wire, support::Rng& rng) const;

  /// Contention backoff before retry `attempt` (1-based): uniform slots in
  /// [0, cw(attempt)] at slot_time_us per slot.
  SimTime backoff(int attempt, support::Rng& rng) const;

 private:
  Config cfg_{};
};

}  // namespace cityhunter::medium
