// The simulated wireless medium.
//
// Replaces the monitor-mode NIC + real airspace of the paper's testbed.
// Frames are serialized to wire bytes and parsed back on transmit, so the
// dot11 codec is on the hot path of every simulation — an attacker can only
// act on information that survives the actual 802.11 wire format.
//
// Delivery fanout is culled by a uniform spatial grid over radio positions:
// the cell size tracks the maximum deliverable range of the strongest
// attached transmitter, so a transmission only probes the few cells its own
// range box overlaps instead of scanning every radio in the venue.
//
// Batched SoA delivery pipeline (default): radio position and a fused
// listening key (attached ∧ has-sink ∧ channel) are mirrored into flat
// parallel arrays indexed by slot. Slots are issued monotonically and never
// recycled (slot ≡ id − 1), so slot order IS radio-id order: grid buckets
// keep their slots sorted, the 3x3 cell probe gathers per-cell runs that are
// already ordered, and a ≤9-way merge walks them in global id order — the
// per-frame std::sort of candidates is gone, yet the fanout order (and with
// it the fault-stream draw order) is bit-identical to the legacy id-sorted
// scan. Candidates are filtered in the squared-distance domain against a
// precomputed per-tx-power range², so sqrt/log10 never run for radios that
// turn out to be out of range; survivors get their RX power from a monotone
// piecewise-linear path-loss LUT over d² (error ≪ RSSI quantization) fronted
// by an epoch-invalidated per-(tx,rx) slot-pair cache that makes static
// AP↔AP beacon fanout transcendental-free. Exact log-distance math is
// retained behind Config toggles and always used on the fault path, where
// the erasure draw must see bit-identical RX power.
//
// Spatial index (default layout): buckets are keyed by (cell, fused
// listening key), so the 3x3 probe streams only radios that can actually
// hear the transmission's channel — at city channel mixes, two thirds of a
// mixed bucket used to cost a cache line each just to fail the key compare.
// Bucket storage (slots/xs/ys/keys) lives in one compacted slab arena of
// four parallel arrays instead of per-cell heap vectors scattered by the
// cell map, so a probe's candidate stream is contiguous lines. Churn
// (attach/detach/set_position/set_channel/set_sink) migrates radios between
// buckets incrementally: out-of-order arrivals append to a per-bucket
// unsorted tail that is merged into the sorted prefix lazily, at the
// bucket's next probe — an attach storm into one cell is amortized O(1) per
// radio instead of the old O(occupancy) sorted insert. Buckets still expose
// ascending slot order to every probe, so the merge fanout (and the fault
// draw order with it) is unchanged; Config::channel_buckets = false keeps
// the PR-6 one-mixed-bucket-per-cell layout for A/B benchmarks, with
// byte-identical results either way.
//
// The gather/filter and LUT stages additionally run through 4-wide AVX2
// lanes (medium/fanout_simd, runtime-detected, bit-identical scalar
// fallback) and can be sharded across intra-run worker threads: contiguous
// chunks of the candidate buckets fill private survivor scratches in
// parallel, then a fixed-order merge hands survivors to the single-threaded
// delivery loop in ascending slot order — sink callbacks and fault draws
// never leave the calling thread, so output is bit-identical at any worker
// count and with SIMD on or off.
//
// Hot-path storage: radio state lives in a dense slab indexed by slot, and
// each in-flight transmission borrows a pooled object that owns the wire
// buffer, the decoded frame every receiver shares, and the fault RNG. At
// steady state a transmit→deliver round trip performs no heap allocation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dot11/frame.h"
#include "medium/event_queue.h"
#include "medium/fanout_simd.h"
#include "medium/fault.h"
#include "medium/geometry.h"
#include "medium/propagation.h"
#include "medium/radio.h"

namespace cityhunter::obs {
class TraceBuffer;
}

namespace cityhunter::support {
class TaskTeam;
}

namespace cityhunter::medium {

class Medium {
 public:
  struct Config {
    LogDistancePathLoss::Config propagation{};
    /// Effective airtime multiplier for channel contention: 2.0 means half
    /// the channel is consumed by other traffic, which turns the 20 ms scan
    /// listen window into the paper's 40-response budget (20 ms / (0.25 ms
    /// * 2) = 40).
    double contention_factor = 2.0;
    /// Management frame rate used for airtime computation.
    double mgmt_rate_mbps = 11.0;
    /// Spatial-grid receiver culling in deliver(). Disable to force the
    /// legacy scan over every attached radio (kept for the micro-bench
    /// comparison in bench/micro_medium; results are identical either way).
    bool spatial_grid = true;
    /// Batched SoA fanout: slot-ordered merge over sorted grid buckets with
    /// squared-distance filtering. Disable to fall back to the gather +
    /// std::sort + exact-math reference path (requires spatial_grid).
    /// Results are identical either way.
    bool batched_fanout = true;
    /// Piecewise-linear path-loss LUT for survivor RX power on the batched
    /// path. Disable for exact log10 math on every survivor. The LUT error
    /// (< PathLossLut::max_error_db(), ~4.5e-4 dB at default exponent) is
    /// orders of magnitude below RSSI quantization.
    bool pathloss_lut = true;
    /// Per-(tx slot, rx slot) RX-power cache, invalidated by per-radio link
    /// epochs (bumped on every move / TX-power change). Static AP↔AP pairs
    /// hit it on every beacon. Stores exactly what the LUT/exact path would
    /// compute, so toggling it cannot change results.
    bool pathloss_cache = true;
    /// Partition grid buckets by the fused listening key (channel + 1, or 0
    /// for radios that cannot receive): the 3x3 probe then streams only
    /// matching-channel listeners instead of loading every co-located radio
    /// and discarding off-channel ones in the filter kernel. Disable to keep
    /// one mixed bucket per cell (the pre-partition layout, for A/B
    /// benchmarks). Results are byte-identical either way — the kernel
    /// still applies the key compare, buckets stay slot-sorted, and the
    /// merge order is unchanged.
    bool channel_buckets = true;
    /// 4-wide SIMD lanes (AVX2, runtime-detected) for the batched fanout's
    /// gather/filter and LUT stages. The vector kernels replicate the scalar
    /// operation order exactly (no FMA), so results are bit-identical either
    /// way; disable only to benchmark the scalar path.
    bool simd_fanout = true;
    /// Minimum survivor count before the LUT evaluation stage dispatches to
    /// its AVX2 kernel. The LUT kernel is gather-bound (one i64gather per 4
    /// survivors), so on memory-bound district shapes — many fanouts with a
    /// few dozen survivors each — the AVX entry cost plus the gathers lose
    /// to the scalar loop well past the filter kernel's crossover; see
    /// kSimdLutMinElems in fanout_simd.h. 0 (default) uses that library
    /// default; results are bit-identical at any value.
    std::size_t simd_lut_min_elems = 0;
    /// Intra-run fanout parallelism: total workers (including the calling
    /// thread) that fill private survivor scratches from contiguous chunks
    /// of the candidate buckets. Delivery itself — sink callbacks and fault
    /// draws — always runs on the calling thread in ascending slot order via
    /// a fixed-order merge, so output is bit-identical at any worker count.
    /// 1 (default) keeps the run strictly serial; valid range [1, 16].
    int intra_run_workers = 1;
    /// Minimum candidate count (bucket entries in the 3x3 probe) before a
    /// fanout is sharded across workers; smaller fanouts stay on the calling
    /// thread to dodge the fork-join latency. Purely a performance knob —
    /// results are identical at any value.
    int shard_min_candidates = 192;
    /// Deterministic fault injection (loss, corruption, retries). Disabled
    /// by default: the perfect channel stays byte-identical to the seed.
    FaultModel::Config fault{};
  };

  explicit Medium(EventQueue& events);
  /// Throws std::invalid_argument when `cfg` is nonsense
  /// (contention_factor <= 0, mgmt_rate_mbps <= 0, intra_run_workers outside
  /// [1, 16], negative shard_min_candidates, bad fault config).
  Medium(EventQueue& events, Config cfg);
  ~Medium();

  /// Create a radio at `pos` on `channel` with `tx_power_dbm`.
  Radio attach(Position pos, std::uint8_t channel, double tx_power_dbm,
               FrameSink* sink = nullptr);

  /// Remove a radio; its handle becomes invalid and queued frames are
  /// dropped.
  void detach(Radio& radio);

  /// Boundary radio handoff for the sharded city (sim/shard): everything a
  /// destination shard's Medium needs to continue a radio that just crossed
  /// a shard boundary. Local radio ids stay monotone per Medium and never
  /// transfer — the importing Medium issues a fresh id — so the snapshot
  /// carries the radio's physical state and lifetime counters instead.
  struct RadioSnapshot {
    Position pos;
    std::uint8_t channel = 1;
    double tx_power_dbm = 0.0;
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t tx_seq = 0;
    std::uint64_t tx_retries = 0;
    std::uint64_t rx_lost = 0;
  };

  /// Snapshot `radio` and detach it. Precondition: the radio is idle (no
  /// queued or in-flight transmission) — the sharded city guarantees this
  /// by keeping clients radio-silent in the guard gaps, so a handoff never
  /// races a fanout. Detaching runs the normal epoch invalidation, so any
  /// stale pair-cache entries and bucket slots die with the local id.
  RadioSnapshot export_radio(Radio& radio);

  /// Attach a radio from another Medium's snapshot, restoring its counters
  /// and fault-stream sequence so the radio's observable behaviour
  /// continues exactly where the exporting shard left off.
  Radio import_radio(const RadioSnapshot& snapshot,
                     FrameSink* sink = nullptr);

  EventQueue& events() { return events_; }
  const Config& config() const { return cfg_; }
  const LogDistancePathLoss& propagation() const { return propagation_; }
  const FaultModel& fault() const { return fault_; }

  /// Whether `id` currently names an attached radio. Safe for any 64-bit
  /// id: values outside the slot table (0, one past the last issued id,
  /// anything larger) resolve to false rather than indexing out of bounds.
  bool has_radio(RadioId id) const { return slot_of(id) != kNoSlot; }

  /// Total frames ever delivered (for tests/benches).
  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t transmissions() const { return transmissions_; }
  /// Fault-injection totals: per-receiver erasures, transmissions whose
  /// final attempt was bit-corrupted, and 802.11 retransmissions. All zero
  /// while the fault model is disabled.
  std::uint64_t frames_lost() const { return frames_lost_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  std::uint64_t retries() const { return retries_; }

  /// Pathloss pair-cache effectiveness (batched, fault-free path only).
  std::uint64_t pathloss_cache_hits() const { return pathloss_cache_hits_; }
  std::uint64_t pathloss_cache_misses() const {
    return pathloss_cache_misses_;
  }

  /// Batched-fanout stage counters: how much work the SIMD lanes and the
  /// intra-run shards actually saw. Candidate counts are bucket entries fed
  /// to the filter kernels (vector counts include their scalar tails).
  struct FanoutStats {
    std::uint64_t batched_fanouts = 0;   // deliver_batched invocations
    std::uint64_t simd_candidates = 0;   // entries through the AVX2 filter
    std::uint64_t scalar_candidates = 0; // entries through the scalar filter
    std::uint64_t sharded_fanouts = 0;   // fanouts split across workers
    std::uint64_t shard_chunks = 0;      // total chunks dispatched
    /// Candidates that passed the fused listening-key compare (before the
    /// self/range tests). loaded − key_matched is pure index waste: bucket
    /// entries that cost a cache line only to be discarded by the key
    /// filter. Zero waste with channel-partitioned buckets — the partition
    /// key IS the fused key, so every streamed entry matches.
    std::uint64_t key_matched = 0;

    /// Total bucket entries streamed into the filter kernels.
    std::uint64_t candidates_loaded() const {
      return simd_candidates + scalar_candidates;
    }
    std::uint64_t wasted_candidates() const {
      return candidates_loaded() - key_matched;
    }
  };
  const FanoutStats& fanout_stats() const { return fanout_stats_; }

  /// Occupancy snapshot of the live spatial index (metrics/bench surface).
  struct BucketOccupancy {
    std::uint64_t buckets = 0;       // live (non-empty) buckets
    std::uint64_t radios = 0;        // sum of bucket occupancies
    std::uint32_t max_occupancy = 0;

    double mean() const {
      return buckets > 0
                 ? static_cast<double>(radios) / static_cast<double>(buckets)
                 : 0.0;
    }
  };
  BucketOccupancy bucket_occupancy() const;

  /// Slab-arena health counters (see DESIGN.md §5g): elements filed in live
  /// buckets, abandoned (unreachable) elements awaiting compaction, and how
  /// many times maybe_compact_arena() actually rebuilt the arena. Lets
  /// tests drive the `garbage > live && garbage >= 4096` trigger explicitly
  /// instead of inferring it from timing.
  struct ArenaStats {
    std::size_t live = 0;
    std::size_t garbage = 0;
    std::uint64_t compactions = 0;
  };
  ArenaStats arena_stats() const {
    return {arena_live_, arena_garbage_, arena_compactions_};
  }

  /// Visit every live bucket as (partition key, occupancy). Traversal order
  /// follows the cell map — callers must be order-insensitive (histogram
  /// and min/max/sum aggregation are).
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (const auto& [cell, ce] : cells_) {
      for (const auto& [part, bid] : ce.parts) {
        fn(part, buckets_[bid].size);
      }
    }
  }

  /// Why frames died, split by cause. Additive to the aggregate counters
  /// above (frames_lost == erasure + collision; a crc_reject is one
  /// frames_corrupted transmission whose bytes every receiver then refused).
  struct DropCounters {
    std::uint64_t erasure = 0;      // per-receiver SNR/collision draw in
                                    // deliver() erased the frame on one link
    std::uint64_t collision = 0;    // retry budget exhausted on a collision:
                                    // the frame never left the sender
    std::uint64_t crc_reject = 0;   // bit damage survived the retries; the
                                    // FCS check rejected the frame at RX
    std::uint64_t retry_exhausted = 0;  // unicast attempts that ran the full
                                        // 802.11 retry budget and still died

    bool operator==(const DropCounters&) const = default;
  };
  const DropCounters& drops() const { return drops_; }

  /// Attach (or detach with nullptr) a structured trace sink. Disabled cost
  /// is one pointer test per hook.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

 private:
  friend class Radio;

  /// Slot-table marker for "no slot": the radio id was detached (or never
  /// existed).
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  struct RadioState {
    Position pos;
    std::uint8_t channel = 1;
    bool attached = true;           // false once detached; slots never recycle
    double tx_power_dbm = 0.0;
    FrameSink* sink = nullptr;
    SimTime tx_busy_until;
    std::uint64_t queue_epoch = 0;  // bumped by clear_tx_queue()
    std::size_t tx_backlog = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t tx_seq = 0;       // fault-stream key, one per transmit()
    std::uint64_t tx_retries = 0;   // 802.11 retransmissions by this radio
    std::uint64_t rx_lost = 0;      // frames erased on the way to this radio
    std::uint64_t cell = 0;         // current grid cell key (valid iff in_grid)
    /// Partition key the radio is filed under within its cell (valid iff
    /// in_grid): the fused listening key with channel_buckets, 0 in the
    /// mixed-bucket layout. Lets erase/migrate find the bucket without
    /// recomputing the key from possibly-already-mutated state.
    std::uint16_t part = 0;
    // Explicit membership flag: every 64-bit key is a legal cell (the cell
    // at (-1,-1) packs to all ones), so no in-band sentinel exists.
    bool in_grid = false;
  };

  /// An in-flight transmission. Pooled: the wire buffer, the decoded frame
  /// every receiver shares, and the fault RNG keep their storage across
  /// transmissions, and the delivery closure captures only {this, txn}.
  struct Transmission {
    RadioId from = 0;
    std::uint64_t epoch = 0;       // sender's queue_epoch at transmit time
    Position tx_pos;
    double tx_dbm = 0.0;
    std::uint8_t channel = 1;
    bool erased = false;           // collided away after the retry budget
    bool frame_ok = false;         // wire bytes decoded (FCS intact)
    std::vector<std::uint8_t> wire;
    dot11::Frame frame;            // valid iff frame_ok
    std::optional<support::Rng> fault_rng;
  };

  /// A reference-path fanout candidate: id for identity (stable forever),
  /// slot for O(1) state access while the topology is unchanged.
  struct Candidate {
    RadioId id = 0;
    std::uint32_t slot = kNoSlot;
    /// Transmitter→receiver distance frozen at gather time. Delivery
    /// semantics: the frame is in flight, so the receiver set and link
    /// budget are fixed when the transmission fans out; a sink callback
    /// moving radios mid-fanout cannot change who hears this frame or at
    /// what power (only detach revokes delivery). The batched pipeline
    /// snapshots positions the same way, keeping both paths bit-identical
    /// under mid-fanout churn.
    double d = 0.0;
  };

  /// Directory entry of one slab-resident bucket: a [offset, offset + size)
  /// window into the arena's four parallel arrays (slots/xs/ys/keys at the
  /// same index). The prefix [0, sorted) is ascending by slot (== radio-id
  /// order); [sorted, size) is the unsorted churn tail — out-of-order
  /// arrivals land there in O(1) and are merged into the prefix lazily, the
  /// next time the bucket is probed (bucket_normalize). Growth abandons the
  /// old window (tracked as garbage and reclaimed by arena compaction).
  struct BucketRef {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint32_t capacity = 0;
    std::uint32_t sorted = 0;
  };

  /// Partition directory of one cell: (partition key → bucket id), sorted
  /// by key. One entry per listening key present in the cell (typically the
  /// venue's 1–3 channels plus the non-listener partition), or a single
  /// part-0 entry in the mixed-bucket layout.
  struct CellEntry {
    std::vector<std::pair<std::uint16_t, std::uint32_t>> parts;
  };

  /// Read-only window over one normalized (fully sorted) bucket, captured
  /// at probe time. The filter kernels in medium/fanout_simd stream these
  /// contiguous arrays directly — no per-slot indirection into
  /// soa_x_/soa_y_/soa_key_ on the gather path, and 4 adjacent members load
  /// as one vector lane. Valid only until the arena mutates: views are read
  /// exclusively during the filter stage, which completes before any sink
  /// callback (the only source of mutation) can run.
  struct BucketView {
    const std::uint32_t* slots = nullptr;
    const double* xs = nullptr;
    const double* ys = nullptr;
    const std::uint16_t* keys = nullptr;
    std::uint32_t size = 0;
  };

  /// Per-worker fanout scratch: the chunk's in-range survivors plus the
  /// sorted runs they form (one run per bucket the chunk overlaps — a chunk
  /// is contiguous over the ≤9-bucket probe, so ≤9 runs).
  struct ShardScratch {
    struct Run {
      std::uint32_t begin = 0;
      std::uint32_t end = 0;
    };
    std::vector<FanoutCandidate> cand;
    Run runs[9];
    int nruns = 0;
    /// Chunk entries that passed the fused-key compare (FanoutStats
    /// bookkeeping; summed on the calling thread after the join).
    std::size_t key_matched = 0;
  };

  /// Everything a shard worker needs, published once per sharded fanout
  /// (TaskTeam's dispatch orders the stores before helpers read it). Chunk k
  /// covers concatenated-bucket element range [split[k], split[k+1]).
  struct ShardJob {
    Medium* medium = nullptr;
    BucketView views[9];  // the range box spans at most 3x3 cells
    int nbuckets = 0;
    std::size_t split[17] = {};
    double tx_x = 0.0;
    double tx_y = 0.0;
    double range_sq = -1.0;
    double tx_dbm = 0.0;
    std::uint16_t want = 0;
    std::uint32_t self_slot = kNoSlot;
    bool use_simd = false;
    bool precompute = false;  // LUT rx_dbm filled per survivor in-shard
    /// Config::simd_lut_min_elems resolved against the library default.
    std::size_t lut_min_elems = 0;
  };

  /// One entry of the pair pathloss cache. Valid for a lookup iff key,
  /// tx_dbm and both link epochs match; any move or power change of either
  /// endpoint bumps its epoch and silently invalidates every entry touching
  /// it. Stores exactly the RX power the LUT/exact path computes, so a hit
  /// is behaviorally indistinguishable from a recompute.
  struct PairEntry {
    std::uint64_t key = ~std::uint64_t{0};  // (tx_slot << 32) | rx_slot
    double tx_dbm = 0.0;
    double rx_dbm = 0.0;
    std::uint32_t tx_epoch = 0;
    std::uint32_t rx_epoch = 0;
  };

  /// Slot for `id`: ids are issued monotonically and slots never recycle,
  /// so slot ≡ id − 1 for the radio's whole lifetime. kNoSlot once detached.
  /// The bound compares in RadioId's own unsigned 64-bit domain (slots_
  /// .size() cast up, never id narrowed down), so an id one past the table —
  /// or wider than 32 bits — can never alias a live slot.
  std::uint32_t slot_of(RadioId id) const {
    if (id < 1 || id > static_cast<RadioId>(slots_.size())) return kNoSlot;
    const std::size_t idx = static_cast<std::size_t>(id - 1);
    return slots_[idx].attached ? static_cast<std::uint32_t>(idx) : kNoSlot;
  }

  RadioState& state(RadioId id);
  const RadioState& state(RadioId id) const;

  void transmit(RadioId from, const dot11::Frame& frame);
  /// Completion of a scheduled transmission: backlog/epoch bookkeeping, then
  /// delivery fanout (unless the frame was erased or failed its FCS).
  void finish_transmission(Transmission& t);
  /// `fault_rng` is the transmission's dedicated fault stream (nullptr when
  /// fault injection is off); per-receiver erasure draws consume from it in
  /// id-sorted fanout order (which the batched path reproduces as slot
  /// order), so delivery stays deterministic.
  void deliver(RadioId from, const dot11::Frame& frame, std::uint8_t channel,
               Position tx_pos, double tx_power_dbm,
               support::Rng* fault_rng = nullptr);
  /// Batched SoA fanout: sorted-bucket gather through the SIMD filter
  /// kernels (optionally sharded across intra-run workers), fixed-order
  /// merge in slot order, LUT/cached RX power for survivors.
  void deliver_batched(RadioId from, const dot11::Frame& frame,
                       std::uint8_t channel, Position tx_pos,
                       double tx_power_dbm, support::Rng* fault_rng);
  /// Fill `scratch` with chunk `chunk`'s survivors: filter every bucket
  /// slice the chunk overlaps (recording one sorted run per slice), then
  /// LUT-evaluate them when the job asks for precompute. Runs on helper
  /// threads for chunks >= 1; touches only the job's read-only inputs and
  /// the private scratch.
  void run_shard_chunk(const ShardJob& job, std::size_t chunk,
                       ShardScratch& scratch) const;
  static void shard_entry(void* ctx, std::size_t helper_index);

  Transmission& acquire_txn();

  /// Radio moved: update its grid cell membership in O(cell occupancy) and
  /// invalidate its pair-cache entries via the link epoch.
  void set_position(RadioId id, Position pos);
  /// TX power raised: the grid cell size may need to grow to keep a range
  /// box within a 3x3 cell neighbourhood (and the LUT coverage with it).
  void set_tx_power(RadioId id, double dbm);
  void set_channel(RadioId id, std::uint8_t ch);
  void set_sink(RadioId id, FrameSink* sink);

  /// Refresh the radio's fused SoA listening key: 0 when it cannot receive
  /// (detached or no sink), channel + 1 otherwise. One uint16 compare in the
  /// gather loop then covers the attached/sink/channel filters at once.
  /// While the radio is in the grid, a key change migrates it to its new
  /// (cell, key) bucket under channel_buckets — the partition IS the key —
  /// or refreshes the in-place key mirror in the mixed layout.
  void update_soa_key(std::uint32_t slot);

  /// Propagate soa_key_[slot] into the radio's bucket mirror (mixed-bucket
  /// layout: the key is data, not the partition).
  void bucket_sync_key(std::uint32_t slot);

  /// Memoized per-TX-power range data (venues use a handful of power
  /// classes): the cull-box radius (exactly the legacy max_range) and the
  /// squared-distance acceptance threshold, -1 when the link budget is
  /// negative so the filter matches the exact `deliverable()` predicate at
  /// both ends.
  struct RangeEntry {
    double dbm = 0.0;
    double box_r = 0.0;
    double range_sq = -1.0;
  };
  const RangeEntry& range_for(double tx_power_dbm);

  /// Survivor RX power through the pair cache (batched fault-free path).
  /// When `precomputed` is non-null it holds the LUT value the shard stage
  /// already evaluated for this survivor — bit-identical to what a miss
  /// would recompute, so the cache's contents and hit/miss counters are
  /// unchanged by the precompute.
  double pair_cached_rx_dbm(std::uint32_t tx_slot, std::uint32_t rx_slot,
                            double tx_dbm, double dist_sq, Position tx_pos,
                            Position rx_pos,
                            const double* precomputed = nullptr);
  /// Survivor RX power: LUT when enabled and covering, exact (fresh hypot,
  /// bit-identical to the reference path) otherwise. `rx_pos` is the
  /// receiver position frozen at gather time — the link budget must not see
  /// moves a sink callback makes mid-fanout.
  double survivor_rx_dbm(double tx_dbm, double dist_sq, Position tx_pos,
                         Position rx_pos) const;

  /// (Re)build the d² path-loss LUT to cover the strongest transmitter.
  void rebuild_lut();
  /// Grow the pair cache with the population (attach-time only; clears it,
  /// which is invisible — entries are pure memoization).
  void maybe_grow_pair_cache();

  static std::uint64_t cell_key(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int64_t cell_coord(double v) const;
  std::uint64_t cell_of(Position pos) const;
  /// Partition key a radio files under: its fused listening key with
  /// channel_buckets, 0 (one mixed bucket per cell) otherwise.
  std::uint16_t partition_of(std::uint32_t slot) const {
    return cfg_.channel_buckets ? soa_key_[slot] : 0;
  }
  void grid_insert(std::uint32_t slot, RadioState& st);
  void grid_erase(RadioState& st, std::uint32_t slot);
  /// Recompute the cell size from the strongest transmitter and re-bucket
  /// every radio (rare: only when a new power class appears). Rebuilds the
  /// arena from scratch — fully sorted, zero garbage.
  void grid_rebuild();

  /// --- Slab arena management (see DESIGN.md §5g). ---
  static constexpr std::size_t kNpos = ~std::size_t{0};
  /// Reserve `cap` fresh elements at the arena tail; returns their offset.
  std::uint32_t arena_alloc(std::uint32_t cap);
  /// Double the bucket's window (the old one becomes garbage).
  void bucket_grow(BucketRef& b);
  /// Rewrite every live bucket contiguously once abandoned windows outgrow
  /// the live population. Layout-only: member order inside each bucket is
  /// preserved, so probe results cannot change. Never runs during a fanout —
  /// only insert paths call it, and those run from sink callbacks or
  /// top-level code, never while a filter is streaming the arena.
  void maybe_compact_arena();
  /// The cell's bucket for `part`, nullptr when absent.
  BucketRef* find_bucket(std::uint64_t cell, std::uint16_t part);
  BucketRef* find_bucket_in(CellEntry& ce, std::uint16_t part);
  /// Find-or-create, registering a fresh bucket in the cell's partition
  /// directory (bucket ids are recycled via free_buckets_).
  BucketRef& find_or_create_bucket(std::uint64_t cell, std::uint16_t part);
  /// Merge the bucket's unsorted churn tail into the sorted prefix (in
  /// place, backward merge — no arena growth, so captured views of other
  /// buckets stay valid). Called before a bucket is probed.
  void bucket_normalize(BucketRef& b);
  /// Index of `slot` within the bucket (binary search over the sorted
  /// prefix, linear scan over the tail), kNpos when absent.
  std::size_t bucket_locate(const BucketRef& b, std::uint32_t slot) const;

  EventQueue& events_;
  Config cfg_;
  LogDistancePathLoss propagation_;
  FaultModel fault_;
  RadioId next_id_ = 1;

  // Flat radio table, indexed by slot ≡ id − 1. Slots are never recycled:
  // the table grows with every attach (~200 bytes per radio ever attached),
  // buying the slot-order ≡ id-order invariant the batched fanout relies
  // on. active_slots_ stays sorted — slots only ever increase, so attach
  // appends.
  std::vector<RadioState> slots_;
  std::vector<std::uint32_t> active_slots_;
  /// Bumped on attach/detach; lets the reference path trust cached
  /// candidate slots until the topology actually changes under a sink
  /// callback.
  std::uint64_t topology_epoch_ = 0;

  // SoA mirror of the per-slot fields the gather loop touches, kept in sync
  // by attach/detach/set_position/set_channel/set_sink. Separate arrays keep
  // the gather's memory traffic at 18 bytes/radio instead of the ~200-byte
  // RadioState stride.
  std::vector<double> soa_x_;
  std::vector<double> soa_y_;
  std::vector<std::uint16_t> soa_key_;
  /// Per-slot link epoch for the pair cache: bumped on set_position (power
  /// changes are caught by the entry's stored tx_dbm).
  std::vector<std::uint32_t> link_epoch_;

  // Pair pathloss cache: open-addressed, overwrite-on-collision, sized as a
  // power of two at attach time. Never touched by the fault path (which
  // needs exact math anyway) and never resized mid-frame.
  std::vector<PairEntry> pair_cache_;
  std::uint64_t pair_mask_ = 0;
  std::uint64_t pathloss_cache_hits_ = 0;
  std::uint64_t pathloss_cache_misses_ = 0;

  // Memoized range data per distinct TX power, linear-scanned (a venue has
  // a handful of power classes).
  std::vector<RangeEntry> range_cache_;

  PathLossLut lut_;

  // Transmission pool. all_txns_ owns; free_txns_ holds the idle ones.
  std::vector<std::unique_ptr<Transmission>> all_txns_;
  std::vector<Transmission*> free_txns_;

  // deliver() fanout scratch, reused across calls (depth-guarded: reentrant
  // delivery falls back to a local vector).
  std::vector<Candidate> deliver_scratch_;
  int deliver_depth_ = 0;

  // Intra-run fanout team: intra_run_workers − 1 parked helper threads (the
  // calling thread is worker 0), null when the run is serial. One scratch
  // per worker, reused across fanouts; nested (reentrant) delivery uses a
  // local scratch and never shards.
  std::unique_ptr<support::TaskTeam> team_;
  std::vector<ShardScratch> shard_scratch_;
  /// simd_fanout ∧ the CPU actually has AVX2, resolved once.
  bool use_simd_ = false;
  /// Config::simd_lut_min_elems, resolved against kSimdLutMinElems once.
  std::size_t lut_min_elems_ = 0;
  FanoutStats fanout_stats_;

  double cell_size_ = 0.0;
  double max_tx_power_dbm_ = -1e300;
  /// Spatial index: cell map → partition directory → slab-resident buckets.
  /// Buckets hold slots sorted ascending (== ascending radio id, modulo the
  /// lazily-merged churn tail), so per-cell gather runs come out pre-sorted
  /// for the merge fanout.
  std::unordered_map<std::uint64_t, CellEntry> cells_;
  std::vector<BucketRef> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  /// The arena: four parallel arrays every bucket windows into. Grown at
  /// the tail; abandoned windows are tracked as garbage and reclaimed by
  /// maybe_compact_arena().
  std::vector<std::uint32_t> arena_slots_;
  std::vector<double> arena_xs_;
  std::vector<double> arena_ys_;
  std::vector<std::uint16_t> arena_keys_;
  std::size_t arena_live_ = 0;     // elements currently filed in buckets
  std::size_t arena_garbage_ = 0;  // abandoned (unreachable) elements
  std::uint64_t arena_compactions_ = 0;  // maybe_compact_arena rebuilds
  /// bucket_normalize scratch for the churn tail, reused across calls
  /// (normalize never suspends — no sink runs inside it — so one scratch
  /// serves nested delivery too).
  struct TailEntry {
    std::uint32_t slot;
    double x;
    double y;
    std::uint16_t key;
  };
  std::vector<TailEntry> tail_scratch_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t retries_ = 0;
  DropCounters drops_;
  obs::TraceBuffer* trace_ = nullptr;  // null = tracing off
};

}  // namespace cityhunter::medium
