// The simulated wireless medium.
//
// Replaces the monitor-mode NIC + real airspace of the paper's testbed.
// Frames are serialized to wire bytes on transmit and parsed on delivery, so
// the dot11 codec is on the hot path of every simulation — an attacker can
// only act on information that survives the actual 802.11 wire format.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dot11/frame.h"
#include "medium/event_queue.h"
#include "medium/geometry.h"
#include "medium/propagation.h"
#include "medium/radio.h"

namespace cityhunter::medium {

class Medium {
 public:
  struct Config {
    LogDistancePathLoss::Config propagation{};
    /// Effective airtime multiplier for channel contention: 2.0 means half
    /// the channel is consumed by other traffic, which turns the 20 ms scan
    /// listen window into the paper's 40-response budget (20 ms / (0.25 ms
    /// * 2) = 40).
    double contention_factor = 2.0;
    /// Management frame rate used for airtime computation.
    double mgmt_rate_mbps = 11.0;
  };

  explicit Medium(EventQueue& events);
  Medium(EventQueue& events, Config cfg);

  /// Create a radio at `pos` on `channel` with `tx_power_dbm`.
  Radio attach(Position pos, std::uint8_t channel, double tx_power_dbm,
               FrameSink* sink = nullptr);

  /// Remove a radio; its handle becomes invalid and queued frames are
  /// dropped.
  void detach(Radio& radio);

  EventQueue& events() { return events_; }
  const Config& config() const { return cfg_; }
  const LogDistancePathLoss& propagation() const { return propagation_; }

  /// Total frames ever delivered (for tests/benches).
  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t transmissions() const { return transmissions_; }

 private:
  friend class Radio;

  struct RadioState {
    Position pos;
    std::uint8_t channel = 1;
    double tx_power_dbm = 0.0;
    FrameSink* sink = nullptr;
    SimTime tx_busy_until;
    std::uint64_t queue_epoch = 0;  // bumped by clear_tx_queue()
    std::size_t tx_backlog = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
  };

  RadioState& state(RadioId id);
  const RadioState& state(RadioId id) const;

  void transmit(RadioId from, const dot11::Frame& frame);
  void deliver(RadioId from, const std::vector<std::uint8_t>& bytes,
               std::uint8_t channel, Position tx_pos, double tx_power_dbm);

  EventQueue& events_;
  Config cfg_;
  LogDistancePathLoss propagation_;
  RadioId next_id_ = 1;
  std::map<RadioId, RadioState> radios_;  // ordered for deterministic fanout
  std::uint64_t deliveries_ = 0;
  std::uint64_t transmissions_ = 0;
};

}  // namespace cityhunter::medium
