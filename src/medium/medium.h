// The simulated wireless medium.
//
// Replaces the monitor-mode NIC + real airspace of the paper's testbed.
// Frames are serialized to wire bytes and parsed back on transmit, so the
// dot11 codec is on the hot path of every simulation — an attacker can only
// act on information that survives the actual 802.11 wire format.
//
// Delivery fanout is culled by a uniform spatial grid over radio positions:
// the cell size tracks the maximum deliverable range of the strongest
// attached transmitter, so a transmission only probes the few cells its own
// range box overlaps instead of scanning every radio in the venue. The grid
// is maintained incrementally on attach/detach/set_position; candidates are
// sorted by radio id before fanout, so delivery order (and therefore every
// simulation result) is bit-identical to the legacy full scan.
//
// Hot-path storage: radio state lives in a dense slab indexed through a
// per-id slot table (ids are never reused, so the id-sorted fanout order —
// and with it the fault-stream draw order — is unaffected by slot
// recycling), and each in-flight transmission borrows a pooled object that
// owns the wire buffer, the decoded frame every receiver shares, and the
// fault RNG. At steady state a transmit→deliver round trip performs no heap
// allocation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dot11/frame.h"
#include "medium/event_queue.h"
#include "medium/fault.h"
#include "medium/geometry.h"
#include "medium/propagation.h"
#include "medium/radio.h"

namespace cityhunter::obs {
class TraceBuffer;
}

namespace cityhunter::medium {

class Medium {
 public:
  struct Config {
    LogDistancePathLoss::Config propagation{};
    /// Effective airtime multiplier for channel contention: 2.0 means half
    /// the channel is consumed by other traffic, which turns the 20 ms scan
    /// listen window into the paper's 40-response budget (20 ms / (0.25 ms
    /// * 2) = 40).
    double contention_factor = 2.0;
    /// Management frame rate used for airtime computation.
    double mgmt_rate_mbps = 11.0;
    /// Spatial-grid receiver culling in deliver(). Disable to force the
    /// legacy scan over every attached radio (kept for the micro-bench
    /// comparison in bench/micro_medium; results are identical either way).
    bool spatial_grid = true;
    /// Deterministic fault injection (loss, corruption, retries). Disabled
    /// by default: the perfect channel stays byte-identical to the seed.
    FaultModel::Config fault{};
  };

  explicit Medium(EventQueue& events);
  /// Throws std::invalid_argument when `cfg` is nonsense
  /// (contention_factor <= 0, mgmt_rate_mbps <= 0, bad fault config).
  Medium(EventQueue& events, Config cfg);

  /// Create a radio at `pos` on `channel` with `tx_power_dbm`.
  Radio attach(Position pos, std::uint8_t channel, double tx_power_dbm,
               FrameSink* sink = nullptr);

  /// Remove a radio; its handle becomes invalid and queued frames are
  /// dropped.
  void detach(Radio& radio);

  EventQueue& events() { return events_; }
  const Config& config() const { return cfg_; }
  const LogDistancePathLoss& propagation() const { return propagation_; }
  const FaultModel& fault() const { return fault_; }

  /// Total frames ever delivered (for tests/benches).
  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t transmissions() const { return transmissions_; }
  /// Fault-injection totals: per-receiver erasures, transmissions whose
  /// final attempt was bit-corrupted, and 802.11 retransmissions. All zero
  /// while the fault model is disabled.
  std::uint64_t frames_lost() const { return frames_lost_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  std::uint64_t retries() const { return retries_; }

  /// Why frames died, split by cause. Additive to the aggregate counters
  /// above (frames_lost == erasure + collision; a crc_reject is one
  /// frames_corrupted transmission whose bytes every receiver then refused).
  struct DropCounters {
    std::uint64_t erasure = 0;      // per-receiver SNR/collision draw in
                                    // deliver() erased the frame on one link
    std::uint64_t collision = 0;    // retry budget exhausted on a collision:
                                    // the frame never left the sender
    std::uint64_t crc_reject = 0;   // bit damage survived the retries; the
                                    // FCS check rejected the frame at RX
    std::uint64_t retry_exhausted = 0;  // unicast attempts that ran the full
                                        // 802.11 retry budget and still died

    bool operator==(const DropCounters&) const = default;
  };
  const DropCounters& drops() const { return drops_; }

  /// Attach (or detach with nullptr) a structured trace sink. Disabled cost
  /// is one pointer test per hook.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

 private:
  friend class Radio;

  /// Slot-table marker for "no slot": the radio id was detached (or never
  /// existed).
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  struct RadioState {
    Position pos;
    std::uint8_t channel = 1;
    double tx_power_dbm = 0.0;
    FrameSink* sink = nullptr;
    SimTime tx_busy_until;
    std::uint64_t queue_epoch = 0;  // bumped by clear_tx_queue()
    std::size_t tx_backlog = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t tx_seq = 0;       // fault-stream key, one per transmit()
    std::uint64_t tx_retries = 0;   // 802.11 retransmissions by this radio
    std::uint64_t rx_lost = 0;      // frames erased on the way to this radio
    std::uint64_t cell = 0;         // current grid cell key (valid iff in_grid)
    // Explicit membership flag: every 64-bit key is a legal cell (the cell
    // at (-1,-1) packs to all ones), so no in-band sentinel exists.
    bool in_grid = false;
  };

  /// An in-flight transmission. Pooled: the wire buffer, the decoded frame
  /// every receiver shares, and the fault RNG keep their storage across
  /// transmissions, and the delivery closure captures only {this, txn}.
  struct Transmission {
    RadioId from = 0;
    std::uint64_t epoch = 0;       // sender's queue_epoch at transmit time
    Position tx_pos;
    double tx_dbm = 0.0;
    std::uint8_t channel = 1;
    bool erased = false;           // collided away after the retry budget
    bool frame_ok = false;         // wire bytes decoded (FCS intact)
    std::vector<std::uint8_t> wire;
    dot11::Frame frame;            // valid iff frame_ok
    std::optional<support::Rng> fault_rng;
  };

  /// A fanout candidate: id for identity (stable forever), slot for O(1)
  /// state access while the topology is unchanged.
  struct Candidate {
    RadioId id = 0;
    std::uint32_t slot = kNoSlot;
  };

  /// Slot for `id`, kNoSlot when detached/unknown. O(1).
  std::uint32_t slot_of(RadioId id) const {
    return id < slot_by_id_.size() ? slot_by_id_[id] : kNoSlot;
  }

  RadioState& state(RadioId id);
  const RadioState& state(RadioId id) const;

  void transmit(RadioId from, const dot11::Frame& frame);
  /// Completion of a scheduled transmission: backlog/epoch bookkeeping, then
  /// delivery fanout (unless the frame was erased or failed its FCS).
  void finish_transmission(Transmission& t);
  /// `fault_rng` is the transmission's dedicated fault stream (nullptr when
  /// fault injection is off); per-receiver erasure draws consume from it in
  /// the sorted fanout order, so delivery stays deterministic.
  void deliver(RadioId from, const dot11::Frame& frame, std::uint8_t channel,
               Position tx_pos, double tx_power_dbm,
               support::Rng* fault_rng = nullptr);

  Transmission& acquire_txn();

  /// Radio moved: update its grid cell membership in O(cell occupancy).
  void set_position(RadioId id, Position pos);
  /// TX power raised: the grid cell size may need to grow to keep a range
  /// box within a 3x3 cell neighbourhood.
  void set_tx_power(RadioId id, double dbm);

  static std::uint64_t cell_key(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int64_t cell_coord(double v) const;
  std::uint64_t cell_of(Position pos) const;
  void grid_insert(RadioId id, RadioState& st);
  void grid_erase(RadioState& st, RadioId id);
  /// Recompute the cell size from the strongest transmitter and re-bucket
  /// every radio. Rare: only when a new power class appears.
  void grid_rebuild();

  EventQueue& events_;
  Config cfg_;
  LogDistancePathLoss propagation_;
  FaultModel fault_;
  RadioId next_id_ = 1;

  // Flat radio table. slot_by_id_ grows monotonically with next_id_ (4
  // bytes per id ever issued); slots are recycled through free_slots_.
  // active_ids_ stays sorted — ids only ever increase, so attach appends.
  std::vector<RadioState> slots_;
  std::vector<std::uint32_t> slot_by_id_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<RadioId> active_ids_;
  /// Bumped on attach/detach; lets deliver() trust cached candidate slots
  /// until the topology actually changes under a sink callback.
  std::uint64_t topology_epoch_ = 0;

  // Transmission pool. all_txns_ owns; free_txns_ holds the idle ones.
  std::vector<std::unique_ptr<Transmission>> all_txns_;
  std::vector<Transmission*> free_txns_;

  // deliver() fanout scratch, reused across calls (depth-guarded: reentrant
  // delivery falls back to a local vector).
  std::vector<Candidate> deliver_scratch_;
  int deliver_depth_ = 0;

  double cell_size_ = 0.0;
  double max_tx_power_dbm_ = -1e300;
  std::unordered_map<std::uint64_t, std::vector<RadioId>> cells_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t retries_ = 0;
  DropCounters drops_;
  obs::TraceBuffer* trace_ = nullptr;  // null = tracing off
};

}  // namespace cityhunter::medium
