#include "medium/medium.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dot11/serialize.h"
#include "dot11/timing.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace cityhunter::medium {

Medium::Medium(EventQueue& events) : Medium(events, Config()) {}

Medium::Medium(EventQueue& events, Config cfg)
    : events_(events),
      cfg_(cfg),
      propagation_(cfg.propagation),
      fault_(cfg.fault) {
  // Negated comparisons so NaN is rejected too.
  if (!(cfg_.contention_factor > 0.0)) {
    throw std::invalid_argument(
        "Medium: contention_factor must be positive");
  }
  if (!(cfg_.mgmt_rate_mbps > 0.0)) {
    throw std::invalid_argument("Medium: mgmt_rate_mbps must be positive");
  }
  if (cfg_.intra_run_workers < 1 || cfg_.intra_run_workers > 16) {
    throw std::invalid_argument(
        "Medium: intra_run_workers must be in [1, 16]");
  }
  if (cfg_.shard_min_candidates < 0) {
    throw std::invalid_argument(
        "Medium: shard_min_candidates must be non-negative");
  }
  use_simd_ = cfg_.simd_fanout && fanout_simd_available();
  lut_min_elems_ = cfg_.simd_lut_min_elems != 0 ? cfg_.simd_lut_min_elems
                                                : kSimdLutMinElems;
  shard_scratch_.resize(static_cast<std::size_t>(cfg_.intra_run_workers));
  if (cfg_.intra_run_workers > 1) {
    team_ = std::make_unique<support::TaskTeam>(
        static_cast<std::size_t>(cfg_.intra_run_workers - 1));
  }
}

Medium::~Medium() = default;

Radio Medium::attach(Position pos, std::uint8_t channel, double tx_power_dbm,
                     FrameSink* sink) {
  if (slots_.size() >= static_cast<std::size_t>(kNoSlot) - 1) {
    throw std::length_error("Medium: radio id space exhausted");
  }
  const RadioId id = next_id_++;
  // Slots are never recycled: slot ≡ id − 1 for the radio's whole lifetime,
  // which makes slot order identical to id order and lets the batched
  // fanout merge sorted grid buckets instead of sorting candidates.
  const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  RadioState& st = slots_.back();
  st.pos = pos;
  st.channel = channel;
  st.tx_power_dbm = tx_power_dbm;
  st.sink = sink;
  st.tx_busy_until = events_.now();
  soa_x_.push_back(pos.x);
  soa_y_.push_back(pos.y);
  soa_key_.push_back(0);
  link_epoch_.push_back(0);
  update_soa_key(slot);
  active_slots_.push_back(slot);  // slots increase monotonically: stays sorted
  ++topology_epoch_;
  maybe_grow_pair_cache();
  if (cfg_.spatial_grid) {
    if (tx_power_dbm > max_tx_power_dbm_) {
      max_tx_power_dbm_ = tx_power_dbm;
      rebuild_lut();
      if (propagation_.max_range(max_tx_power_dbm_) > cell_size_) {
        grid_rebuild();  // re-buckets the new radio too
        return Radio(this, id);
      }
    }
    grid_insert(slot, st);
  }
  return Radio(this, id);
}

void Medium::detach(Radio& radio) {
  const std::uint32_t slot = slot_of(radio.id_);
  if (slot != kNoSlot) {
    RadioState& st = slots_[slot];
    grid_erase(st, slot);
    st.attached = false;
    st.sink = nullptr;
    soa_key_[slot] = 0;
    const auto it =
        std::lower_bound(active_slots_.begin(), active_slots_.end(), slot);
    if (it != active_slots_.end() && *it == slot) active_slots_.erase(it);
    ++topology_epoch_;
  }
  radio.medium_ = nullptr;
}

Medium::RadioSnapshot Medium::export_radio(Radio& radio) {
  const RadioState& st = state(radio.id_);
  const RadioSnapshot snapshot{st.pos,         st.channel,
                               st.tx_power_dbm, st.frames_sent,
                               st.frames_received, st.tx_seq,
                               st.tx_retries,  st.rx_lost};
  detach(radio);
  return snapshot;
}

Radio Medium::import_radio(const RadioSnapshot& snapshot, FrameSink* sink) {
  Radio radio =
      attach(snapshot.pos, snapshot.channel, snapshot.tx_power_dbm, sink);
  RadioState& st = state(radio.id_);
  st.frames_sent = snapshot.frames_sent;
  st.frames_received = snapshot.frames_received;
  st.tx_seq = snapshot.tx_seq;
  st.tx_retries = snapshot.tx_retries;
  st.rx_lost = snapshot.rx_lost;
  return radio;
}

Medium::RadioState& Medium::state(RadioId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  return slots_[slot];
}

const Medium::RadioState& Medium::state(RadioId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  return slots_[slot];
}

std::int64_t Medium::cell_coord(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_size_));
}

std::uint64_t Medium::cell_of(Position pos) const {
  return cell_key(cell_coord(pos.x), cell_coord(pos.y));
}

std::uint32_t Medium::arena_alloc(std::uint32_t cap) {
  const std::size_t off = arena_slots_.size();
  arena_slots_.resize(off + cap);
  arena_xs_.resize(off + cap);
  arena_ys_.resize(off + cap);
  arena_keys_.resize(off + cap);
  return static_cast<std::uint32_t>(off);
}

void Medium::bucket_grow(BucketRef& b) {
  const std::uint32_t new_cap = std::max<std::uint32_t>(4, b.capacity * 2);
  const std::uint32_t off = arena_alloc(new_cap);
  std::copy_n(arena_slots_.begin() + b.offset, b.size,
              arena_slots_.begin() + off);
  std::copy_n(arena_xs_.begin() + b.offset, b.size, arena_xs_.begin() + off);
  std::copy_n(arena_ys_.begin() + b.offset, b.size, arena_ys_.begin() + off);
  std::copy_n(arena_keys_.begin() + b.offset, b.size,
              arena_keys_.begin() + off);
  arena_garbage_ += b.capacity;
  b.offset = off;
  b.capacity = new_cap;
}

void Medium::maybe_compact_arena() {
  // Compact once abandoned windows outgrow the live population (and are
  // worth the rewrite at all): arena length stays O(live), and steady-state
  // churn — which grows buckets only until their capacity fits the cell —
  // almost never trips it.
  constexpr std::size_t kMinGarbage = 4096;
  if (arena_garbage_ < kMinGarbage || arena_garbage_ <= arena_live_) return;
  std::vector<std::uint32_t> slots;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::uint16_t> keys;
  const std::size_t want = arena_live_ + arena_live_ / 4 + 64;
  slots.reserve(want);
  xs.reserve(want);
  ys.reserve(want);
  keys.reserve(want);
  for (auto& [cell, ce] : cells_) {
    for (auto& [part, bid] : ce.parts) {
      BucketRef& b = buckets_[bid];
      // Quarter-headroom per bucket so the next few inserts don't regrow
      // immediately; slack is reserved capacity, not garbage.
      const std::uint32_t cap = b.size + b.size / 4 + 2;
      const std::uint32_t off = static_cast<std::uint32_t>(slots.size());
      slots.insert(slots.end(), arena_slots_.begin() + b.offset,
                   arena_slots_.begin() + b.offset + b.size);
      xs.insert(xs.end(), arena_xs_.begin() + b.offset,
                arena_xs_.begin() + b.offset + b.size);
      ys.insert(ys.end(), arena_ys_.begin() + b.offset,
                arena_ys_.begin() + b.offset + b.size);
      keys.insert(keys.end(), arena_keys_.begin() + b.offset,
                  arena_keys_.begin() + b.offset + b.size);
      slots.resize(off + cap);
      xs.resize(off + cap);
      ys.resize(off + cap);
      keys.resize(off + cap);
      b.offset = off;
      b.capacity = cap;
    }
  }
  arena_slots_.swap(slots);
  arena_xs_.swap(xs);
  arena_ys_.swap(ys);
  arena_keys_.swap(keys);
  arena_garbage_ = 0;
  ++arena_compactions_;
}

Medium::BucketRef* Medium::find_bucket_in(CellEntry& ce, std::uint16_t part) {
  for (auto& [p, bid] : ce.parts) {
    if (p == part) return &buckets_[bid];
    if (p > part) break;  // directory is sorted by partition key
  }
  return nullptr;
}

Medium::BucketRef* Medium::find_bucket(std::uint64_t cell,
                                       std::uint16_t part) {
  const auto it = cells_.find(cell);
  if (it == cells_.end()) return nullptr;
  return find_bucket_in(it->second, part);
}

Medium::BucketRef& Medium::find_or_create_bucket(std::uint64_t cell,
                                                 std::uint16_t part) {
  CellEntry& ce = cells_[cell];
  const auto it = std::lower_bound(
      ce.parts.begin(), ce.parts.end(), part,
      [](const auto& e, std::uint16_t p) { return e.first < p; });
  if (it != ce.parts.end() && it->first == part) return buckets_[it->second];
  std::uint32_t id;
  if (!free_buckets_.empty()) {
    id = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  ce.parts.insert(it, {part, id});
  BucketRef& b = buckets_[id];
  b.capacity = 4;
  b.offset = arena_alloc(b.capacity);
  b.size = 0;
  b.sorted = 0;
  return b;
}

std::size_t Medium::bucket_locate(const BucketRef& b,
                                  std::uint32_t slot) const {
  const std::uint32_t* first = arena_slots_.data() + b.offset;
  const std::uint32_t* last = first + b.sorted;
  const std::uint32_t* p = std::lower_bound(first, last, slot);
  if (p != last && *p == slot) return static_cast<std::size_t>(p - first);
  for (std::size_t k = b.sorted; k < b.size; ++k) {
    if (first[k] == slot) return k;
  }
  return kNpos;
}

void Medium::bucket_normalize(BucketRef& b) {
  if (b.sorted == b.size) return;
  const std::size_t off = b.offset;
  const std::size_t nt = b.size - b.sorted;
  tail_scratch_.clear();
  tail_scratch_.reserve(nt);
  for (std::size_t k = b.sorted; k < b.size; ++k) {
    tail_scratch_.push_back({arena_slots_[off + k], arena_xs_[off + k],
                             arena_ys_[off + k], arena_keys_[off + k]});
  }
  std::sort(tail_scratch_.begin(), tail_scratch_.end(),
            [](const TailEntry& a, const TailEntry& b) {
              return a.slot < b.slot;
            });
  // Backward merge of the sorted tail into the sorted prefix, in place. A
  // slot lives in exactly one bucket, so there are no duplicates and the
  // strict comparison suffices.
  std::size_t i = b.sorted;
  std::size_t j = nt;
  std::size_t dst = b.size;
  while (j > 0) {
    --dst;
    if (i > 0 && arena_slots_[off + i - 1] > tail_scratch_[j - 1].slot) {
      --i;
      arena_slots_[off + dst] = arena_slots_[off + i];
      arena_xs_[off + dst] = arena_xs_[off + i];
      arena_ys_[off + dst] = arena_ys_[off + i];
      arena_keys_[off + dst] = arena_keys_[off + i];
    } else {
      --j;
      const TailEntry& e = tail_scratch_[j];
      arena_slots_[off + dst] = e.slot;
      arena_xs_[off + dst] = e.x;
      arena_ys_[off + dst] = e.y;
      arena_keys_[off + dst] = e.key;
    }
  }
  b.sorted = b.size;
}

void Medium::grid_insert(std::uint32_t slot, RadioState& st) {
  st.cell = cell_of(st.pos);
  st.part = partition_of(slot);
  st.in_grid = true;
  BucketRef& b = find_or_create_bucket(st.cell, st.part);
  if (b.size == b.capacity) bucket_grow(b);
  const std::size_t at = static_cast<std::size_t>(b.offset) + b.size;
  arena_slots_[at] = slot;
  arena_xs_[at] = soa_x_[slot];
  arena_ys_[at] = soa_y_[slot];
  arena_keys_[at] = soa_key_[slot];
  // A fresh attach is the global slot maximum: the append extends the
  // sorted prefix in O(1). Churn migration (move / channel change) appends
  // to the unsorted tail instead — also O(1) — and the tail is merged at
  // the bucket's next probe, so a churn storm never pays the old
  // per-element O(occupancy) sorted insert.
  if (b.sorted == b.size &&
      (b.size == 0 || arena_slots_[b.offset + b.size - 1] < slot)) {
    ++b.sorted;
  }
  ++b.size;
  ++arena_live_;
  maybe_compact_arena();
}

void Medium::grid_erase(RadioState& st, std::uint32_t slot) {
  if (!st.in_grid) return;
  st.in_grid = false;
  const auto it = cells_.find(st.cell);
  if (it == cells_.end()) return;
  CellEntry& ce = it->second;
  const auto pit = std::lower_bound(
      ce.parts.begin(), ce.parts.end(), st.part,
      [](const auto& e, std::uint16_t p) { return e.first < p; });
  if (pit == ce.parts.end() || pit->first != st.part) return;
  const std::uint32_t bid = pit->second;
  BucketRef& b = buckets_[bid];
  const std::size_t off = b.offset;
  const std::size_t idx = bucket_locate(b, slot);
  if (idx == kNpos) return;
  if (idx < b.sorted) {
    // Shift the rest left; the prefix stays sorted and the tail stays
    // contiguous (its internal order is free).
    std::copy(arena_slots_.begin() + off + idx + 1,
              arena_slots_.begin() + off + b.size,
              arena_slots_.begin() + off + idx);
    std::copy(arena_xs_.begin() + off + idx + 1,
              arena_xs_.begin() + off + b.size, arena_xs_.begin() + off + idx);
    std::copy(arena_ys_.begin() + off + idx + 1,
              arena_ys_.begin() + off + b.size, arena_ys_.begin() + off + idx);
    std::copy(arena_keys_.begin() + off + idx + 1,
              arena_keys_.begin() + off + b.size,
              arena_keys_.begin() + off + idx);
    --b.sorted;
  } else {
    // Tail member: swap the last tail element into the hole.
    const std::size_t last = b.size - 1;
    arena_slots_[off + idx] = arena_slots_[off + last];
    arena_xs_[off + idx] = arena_xs_[off + last];
    arena_ys_[off + idx] = arena_ys_[off + last];
    arena_keys_[off + idx] = arena_keys_[off + last];
  }
  --b.size;
  --arena_live_;
  if (b.size == 0) {
    arena_garbage_ += b.capacity;
    free_buckets_.push_back(bid);
    ce.parts.erase(pit);
    if (ce.parts.empty()) cells_.erase(it);
  }
}

void Medium::update_soa_key(std::uint32_t slot) {
  const RadioState& st = slots_[slot];
  const std::uint16_t key = st.attached && st.sink != nullptr
                                ? static_cast<std::uint16_t>(st.channel) + 1
                                : 0;
  const std::uint16_t old = soa_key_[slot];
  soa_key_[slot] = key;
  if (!st.in_grid || key == old) return;
  if (cfg_.channel_buckets) {
    // The partition IS the fused key: a key change moves the radio to its
    // new (cell, key) bucket. The erase pays at most one prefix shift; the
    // re-insert is an O(1) churn-tail append.
    RadioState& mut = slots_[slot];
    grid_erase(mut, slot);
    grid_insert(slot, mut);
  } else {
    bucket_sync_key(slot);
  }
}

void Medium::bucket_sync_key(std::uint32_t slot) {
  const RadioState& st = slots_[slot];
  BucketRef* b = find_bucket(st.cell, st.part);
  if (b == nullptr) return;
  const std::size_t idx = bucket_locate(*b, slot);
  if (idx != kNpos) arena_keys_[b->offset + idx] = soa_key_[slot];
}

Medium::BucketOccupancy Medium::bucket_occupancy() const {
  BucketOccupancy occ;
  for_each_bucket([&occ](std::uint16_t, std::uint32_t size) {
    ++occ.buckets;
    occ.radios += size;
    occ.max_occupancy = std::max(occ.max_occupancy, size);
  });
  return occ;
}

void Medium::grid_rebuild() {
  cells_.clear();
  buckets_.clear();
  free_buckets_.clear();
  arena_slots_.clear();
  arena_xs_.clear();
  arena_ys_.clear();
  arena_keys_.clear();
  arena_live_ = 0;
  arena_garbage_ = 0;
  cell_size_ = std::max(1.0, propagation_.max_range(max_tx_power_dbm_));
  // active_slots_ is sorted, so every bucket is built by pure sorted-prefix
  // appends.
  for (const std::uint32_t slot : active_slots_) {
    grid_insert(slot, slots_[slot]);
  }
}

void Medium::rebuild_lut() {
  if (!cfg_.pathloss_lut) return;
  lut_ = PathLossLut(cfg_.propagation,
                     propagation_.max_range(max_tx_power_dbm_));
}

void Medium::maybe_grow_pair_cache() {
  if (!cfg_.pathloss_cache) return;
  std::size_t want = 1024;
  while (want < slots_.size() * 2 && want < (std::size_t{1} << 16)) {
    want <<= 1;
  }
  if (want <= pair_cache_.size()) return;
  // Growing clears the cache; invisible — entries are pure memoization —
  // and only ever happens at attach time, never mid-frame.
  pair_cache_.assign(want, PairEntry{});
  pair_mask_ = want - 1;
}

const Medium::RangeEntry& Medium::range_for(double tx_power_dbm) {
  for (const RangeEntry& e : range_cache_) {
    if (e.dbm == tx_power_dbm) return e;
  }
  RangeEntry e;
  e.dbm = tx_power_dbm;
  e.box_r = propagation_.max_range(tx_power_dbm);
  // A negative link budget means the exact model rejects every distance
  // (below sensitivity even at the 1 m clamp); range_sq = -1 rejects every
  // d² the same way. At budget >= 0, d² <= max_range² accepts exactly the
  // distances the exact `deliverable()` predicate accepts.
  const auto& p = propagation_.config();
  const double budget =
      tx_power_dbm - p.reference_loss_db - p.rx_sensitivity_dbm;
  if (budget >= 0.0) e.range_sq = e.box_r * e.box_r;
  range_cache_.push_back(e);
  return range_cache_.back();
}

double Medium::survivor_rx_dbm(double tx_dbm, double dist_sq, Position tx_pos,
                               Position rx_pos) const {
  if (cfg_.pathloss_lut && lut_.covers(dist_sq)) {
    return lut_.rx_power_dbm_sq(tx_dbm, dist_sq);
  }
  return propagation_.rx_power_dbm(tx_dbm, distance(tx_pos, rx_pos));
}

double Medium::pair_cached_rx_dbm(std::uint32_t tx_slot,
                                  std::uint32_t rx_slot, double tx_dbm,
                                  double dist_sq, Position tx_pos,
                                  Position rx_pos,
                                  const double* precomputed) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(tx_slot) << 32) | rx_slot;
  // SplitMix-style finalizer spreads adjacent slot pairs across the table.
  std::uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  PairEntry& e = pair_cache_[h & pair_mask_];
  const std::uint32_t te = link_epoch_[tx_slot];
  const std::uint32_t re = link_epoch_[rx_slot];
  if (e.key == key && e.tx_dbm == tx_dbm && e.tx_epoch == te &&
      e.rx_epoch == re) {
    ++pathloss_cache_hits_;
    return e.rx_dbm;
  }
  ++pathloss_cache_misses_;
  // The shard stage may have LUT-evaluated this survivor already; the value
  // is bit-identical to what survivor_rx_dbm would return here.
  const double rx = precomputed != nullptr
                        ? *precomputed
                        : survivor_rx_dbm(tx_dbm, dist_sq, tx_pos, rx_pos);
  // Store only while the frozen receiver position is still live: a sink
  // callback moving the radio mid-fanout bumped its epoch already, and
  // caching this frame's frozen value under the *new* epoch would serve a
  // stale power to the next fanout. Skipping the store is invisible — the
  // cache is pure memoization.
  const Position live = slots_[rx_slot].pos;
  if (live.x == rx_pos.x && live.y == rx_pos.y) {
    e.key = key;
    e.tx_dbm = tx_dbm;
    e.rx_dbm = rx;
    e.tx_epoch = te;
    e.rx_epoch = re;
  }
  return rx;
}

void Medium::set_position(RadioId id, Position pos) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  RadioState& st = slots_[slot];
  st.pos = pos;
  soa_x_[slot] = pos.x;
  soa_y_[slot] = pos.y;
  ++link_epoch_[slot];  // invalidates every pair-cache entry touching us
  if (!cfg_.spatial_grid) return;
  const std::uint64_t key = cell_of(pos);
  if (st.in_grid && key == st.cell) {
    // Same cell: refresh the bucket's position mirror in place.
    BucketRef* b = find_bucket(st.cell, st.part);
    if (b != nullptr) {
      const std::size_t idx = bucket_locate(*b, slot);
      if (idx != kNpos) {
        arena_xs_[b->offset + idx] = pos.x;
        arena_ys_[b->offset + idx] = pos.y;
      }
    }
    return;
  }
  grid_erase(st, slot);
  grid_insert(slot, st);
}

void Medium::set_tx_power(RadioId id, double dbm) {
  auto& st = state(id);
  st.tx_power_dbm = dbm;
  if (!cfg_.spatial_grid) return;
  if (dbm > max_tx_power_dbm_) {
    max_tx_power_dbm_ = dbm;
    rebuild_lut();
    if (propagation_.max_range(max_tx_power_dbm_) > cell_size_) grid_rebuild();
  }
}

void Medium::set_channel(RadioId id, std::uint8_t ch) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  slots_[slot].channel = ch;
  update_soa_key(slot);
}

void Medium::set_sink(RadioId id, FrameSink* sink) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  slots_[slot].sink = sink;
  update_soa_key(slot);
}

Medium::Transmission& Medium::acquire_txn() {
  if (free_txns_.empty()) {
    all_txns_.push_back(std::make_unique<Transmission>());
    free_txns_.push_back(all_txns_.back().get());
  }
  Transmission* t = free_txns_.back();
  free_txns_.pop_back();
  return *t;
}

void Medium::transmit(RadioId from, const dot11::Frame& frame) {
  auto& st = state(from);
  ++transmissions_;

  Transmission& t = acquire_txn();
  t.from = from;
  t.epoch = st.queue_epoch;
  t.tx_pos = st.pos;
  t.tx_dbm = st.tx_power_dbm;
  t.channel = st.channel;
  t.erased = false;
  t.frame_ok = false;
  t.fault_rng.reset();

  // Round-trip through the wire format once, at transmit time: every
  // receiver shares the parsed result instead of deliver() re-parsing the
  // byte vector per transmission. Receivers still only ever see what
  // survives serialization. The one serialization also yields the wire
  // size, so airtime needs no second walk over the frame tree.
  const std::size_t bytes = dot11::serialize_into(frame, t.wire);
  const SimTime air =
      dot11::airtime(bytes, cfg_.mgmt_rate_mbps) * cfg_.contention_factor;
  SimTime occupancy = air;

  if (trace_ != nullptr) {
    trace_->record(events_.now(), obs::Category::kMedium,
                   obs::Event::kTransmit, from, bytes);
  }

  // Fault injection. The stream is a pure function of (seed, radio, frame
  // sequence), so the draws below cannot be perturbed by anything else in
  // the simulation. A failed attempt of a *unicast* management frame — an
  // ambient collision at the addressed receiver (no ACK comes back) or an
  // interference burst corrupting the attempt — is retransmitted up to
  // retry_limit times, each retry paying a contention backoff (scaled like
  // airtime by the contention factor) plus the frame's airtime again: the
  // link layer repairs loss by spending the 40-response scan budget.
  // Broadcasts are unacknowledged and get exactly one attempt, eating the
  // full per-receiver loss in deliver().
  if (fault_.enabled()) {
    t.fault_rng = fault_.stream(from, st.tx_seq++);
    support::Rng& rng = *t.fault_rng;
    const bool unicast = !frame.header.addr1.is_multicast();
    // Per attempt: collision at the receiver, then a corruption burst.
    // Both are drawn every attempt so the stream layout is fixed.
    bool collided = unicast && rng.chance(fault_.config().ambient_loss);
    bool corrupted = rng.chance(fault_.config().corruption_rate);
    int attempt = 0;
    while ((collided || corrupted) && unicast &&
           attempt < fault_.config().retry_limit) {
      ++attempt;
      ++st.tx_retries;
      ++retries_;
      occupancy +=
          fault_.backoff(attempt, rng) * cfg_.contention_factor + air;
      if (trace_ != nullptr) {
        trace_->record(events_.now(), obs::Category::kFault,
                       obs::Event::kRetry, from,
                       static_cast<std::uint64_t>(attempt));
      }
      collided = rng.chance(fault_.config().ambient_loss);
      corrupted = rng.chance(fault_.config().corruption_rate);
    }
    if (unicast && (collided || corrupted)) ++drops_.retry_exhausted;
    if (collided) {
      // Retry budget exhausted on a collision: the frame never reached its
      // receiver at all.
      t.erased = true;
      ++frames_lost_;
      ++drops_.collision;
      if (trace_ != nullptr) {
        trace_->record(events_.now(), obs::Category::kFault,
                       obs::Event::kDropCollision, from,
                       static_cast<std::uint64_t>(attempt));
      }
    } else if (corrupted) {
      // Retry budget exhausted on a burst (or a corrupted broadcast): the
      // delivered bytes carry real bit damage and every receiver's FCS
      // check will reject them.
      ++frames_corrupted_;
      fault_.corrupt(t.wire, rng);
    }
  }

  // Decode into the transmission's own frame slot (reusing IE storage from
  // the slot's previous use). Skipped when the frame was erased — it will
  // never be delivered.
  if (!t.erased) t.frame_ok = dot11::parse_into(t.wire, t.frame);

  const SimTime start = std::max(events_.now(), st.tx_busy_until);
  const SimTime done = start + occupancy;
  st.tx_busy_until = done;
  ++st.tx_backlog;

  // Everything the delivery needs lives in the pooled transmission, so the
  // closure is two pointers — inline in the event queue's SmallFn, no heap.
  events_.post_at(done, [this, txn = &t] {
    finish_transmission(*txn);
    free_txns_.push_back(txn);
  });
}

void Medium::finish_transmission(Transmission& t) {
  const std::uint32_t slot = slot_of(t.from);
  if (slot != kNoSlot) {
    RadioState& st = slots_[slot];
    if (st.queue_epoch != t.epoch) return;  // queue was cleared
    --st.tx_backlog;
    ++st.frames_sent;
  }
  if (t.erased) return;  // collided away after the full retry budget
  if (!t.frame_ok) {
    // Corrupted on the wire — a real receiver drops bad-FCS frames silently.
    ++drops_.crc_reject;
    if (trace_ != nullptr) {
      trace_->record(events_.now(), obs::Category::kFault,
                     obs::Event::kDropCrcReject, t.from, t.wire.size());
    }
    return;
  }
  deliver(t.from, t.frame, t.channel, t.tx_pos, t.tx_dbm,
          t.fault_rng ? &*t.fault_rng : nullptr);
}

void Medium::run_shard_chunk(const ShardJob& job, std::size_t chunk,
                             ShardScratch& scratch) const {
  scratch.cand.clear();
  scratch.nruns = 0;
  scratch.key_matched = 0;
  const std::size_t lo = job.split[chunk];
  const std::size_t hi = job.split[chunk + 1];
  // The ≤9 bucket slices live in different arena windows, so the filter's
  // first touch of each can be a cold line: profiled at city scale, memory
  // latency — not arithmetic — dominates the per-slice cost. Kick off the
  // next slice's key/coordinate loads while the current one filters.
  const auto prefetch_bucket = [](const BucketView& b) {
    __builtin_prefetch(b.keys);
    __builtin_prefetch(b.xs);
    __builtin_prefetch(b.ys);
  };
  if (job.nbuckets > 0) prefetch_bucket(job.views[0]);
  std::size_t base = 0;  // first concatenated index of the current bucket
  for (int i = 0; i < job.nbuckets && base < hi; ++i) {
    const BucketView& b = job.views[i];
    if (i + 1 < job.nbuckets) prefetch_bucket(job.views[i + 1]);
    const std::size_t count = b.size;
    const std::size_t from = std::max(lo, base);
    const std::size_t to = std::min(hi, base + count);
    base += count;
    if (from >= to) continue;
    const std::size_t off = from - (base - count);
    const std::size_t len = to - from;
    const std::size_t start = scratch.cand.size();
    scratch.cand.resize(start + len);
    const std::size_t got = fanout_filter(
        b.slots + off, b.xs + off, b.ys + off, b.keys + off, len, job.tx_x,
        job.tx_y, job.range_sq, job.want, job.self_slot, job.use_simd,
        scratch.cand.data() + start, &scratch.key_matched);
    scratch.cand.resize(start + got);
    if (got > 0) {
      // A chunk is contiguous over the ≤9-bucket probe, so it overlaps at
      // most 9 bucket slices: runs[9] can never overflow.
      scratch.runs[scratch.nruns++] = {
          static_cast<std::uint32_t>(start),
          static_cast<std::uint32_t>(start + got)};
    }
  }
  if (job.precompute) {
    fanout_lut_eval(lut_, job.tx_dbm, scratch.cand.data(),
                    scratch.cand.size(), job.use_simd, job.lut_min_elems);
  }
}

void Medium::shard_entry(void* ctx, std::size_t helper_index) {
  ShardJob* job = static_cast<ShardJob*>(ctx);
  // Helper i owns chunk i + 1; the calling thread runs chunk 0 itself.
  const std::size_t chunk = helper_index + 1;
  job->medium->run_shard_chunk(*job, chunk,
                               job->medium->shard_scratch_[chunk]);
}

void Medium::deliver_batched(RadioId from, const dot11::Frame& frame,
                             std::uint8_t channel, Position tx_pos,
                             double tx_power_dbm, support::Rng* fault_rng) {
  // Survivors are snapshotted into scratch before any sink runs: a sink
  // callback may attach/detach radios or move them, mutating the buckets
  // under us. The member scratches are reused across calls; reentrant
  // delivery (a sink pumping the event queue) falls back to a local scratch
  // and never shards.
  const bool nested = deliver_depth_ != 0;
  ++deliver_depth_;
  struct DepthGuard {
    int& depth;
    ~DepthGuard() { --depth; }
  } guard{deliver_depth_};

  const RangeEntry re = range_for(tx_power_dbm);
  const std::uint32_t self = static_cast<std::uint32_t>(from - 1);
  const std::uint16_t want = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(channel) + 1);

  // Collect the candidate buckets of the 3x3 probe. With channel_buckets
  // the probe streams only the (cell, want-key) partition — radios on other
  // channels (and non-listeners, parked in partition 0) never cost a cache
  // line; without it, the single partition-0 bucket holds the whole cell and
  // the kernel's fused uint16 key compare does the filtering, exactly as
  // before. Either way the range check happens in the squared-distance
  // domain — no sqrt/log10 for radios that turn out to be out of range —
  // and buckets are normalized to ascending slot order here (merging any
  // churn tail) so every filtered slice comes out pre-sorted for the merge
  // below. Views are captured AFTER all normalization: normalize mutates
  // arena contents in place but never reallocates, and inserts (which can
  // grow/compact the arena) only happen from sink callbacks, which run
  // strictly after the filter stage reads these views.
  ShardJob job;
  job.medium = this;
  const std::uint16_t probe_part = cfg_.channel_buckets ? want : 0;
  int nbuckets = 0;
  std::size_t total = 0;
  const std::int64_t cx0 = cell_coord(tx_pos.x - re.box_r);
  const std::int64_t cx1 = cell_coord(tx_pos.x + re.box_r);
  const std::int64_t cy0 = cell_coord(tx_pos.y - re.box_r);
  const std::int64_t cy1 = cell_coord(tx_pos.y + re.box_r);
  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      const auto cell = cells_.find(cell_key(cx, cy));
      if (cell == cells_.end()) continue;
      BucketRef* b = find_bucket_in(cell->second, probe_part);
      if (b == nullptr || b->size == 0) continue;
      bucket_normalize(*b);
      BucketView& v = job.views[nbuckets++];
      v.slots = arena_slots_.data() + b->offset;
      v.xs = arena_xs_.data() + b->offset;
      v.ys = arena_ys_.data() + b->offset;
      v.keys = arena_keys_.data() + b->offset;
      v.size = b->size;
      total += b->size;
    }
  }

  ++fanout_stats_.batched_fanouts;
  (use_simd_ ? fanout_stats_.simd_candidates
             : fanout_stats_.scalar_candidates) += total;

  job.nbuckets = nbuckets;
  job.tx_x = tx_pos.x;
  job.tx_y = tx_pos.y;
  job.range_sq = re.range_sq;
  job.tx_dbm = tx_power_dbm;
  job.want = want;
  job.self_slot = self;
  job.use_simd = use_simd_;
  job.lut_min_elems = lut_min_elems_;
  // Lossy runs always recompute exact RX power at delivery time (the
  // erasure draw must see bit-identical values to the reference path), so
  // the LUT precompute only runs fault-free. covers(range_sq) implies
  // covers(dist_sq) for every survivor — checked once per fanout.
  job.precompute =
      fault_rng == nullptr && cfg_.pathloss_lut && lut_.covers(re.range_sq);

  // Shard or stay serial. Chunks split the concatenated bucket elements
  // evenly; each worker filters (and LUT-evaluates) its chunk into a
  // private scratch. Chunk boundaries only ever split a sorted bucket slice
  // into sorted sub-slices, so the merge below — which never assumes how
  // many runs a bucket contributed — reproduces the exact serial order.
  std::size_t chunks = 1;
  if (!nested && team_ != nullptr &&
      total >= static_cast<std::size_t>(cfg_.shard_min_candidates)) {
    chunks = team_->helpers() + 1;
  }
  for (std::size_t k = 0; k <= chunks; ++k) {
    job.split[k] = total * k / chunks;
  }

  ShardScratch local;  // only touched by nested (reentrant) delivery
  ShardScratch* scratches = nested ? &local : shard_scratch_.data();
  if (chunks > 1) {
    ++fanout_stats_.sharded_fanouts;
    fanout_stats_.shard_chunks += chunks;
    team_->dispatch(&Medium::shard_entry, &job);
    run_shard_chunk(job, 0, scratches[0]);
    team_->wait();
    if (trace_ != nullptr) {
      trace_->record(events_.now(), obs::Category::kMedium,
                     obs::Event::kShardFanout, from, chunks);
    }
  } else {
    run_shard_chunk(job, 0, scratches[0]);
  }
  // Summed on the calling thread after the join — workers only touch their
  // private scratch.
  for (std::size_t k = 0; k < chunks; ++k) {
    fanout_stats_.key_matched += scratches[k].key_matched;
  }

  // Fixed-order merge by repeated min-pick over every worker's sorted runs:
  // survivors come out in global slot order == radio-id order, so the
  // fanout (and with it the fault-stream draw order) is bit-identical to
  // the legacy id-sorted path at any worker count. Run heads live in flat
  // arrays the min-scan reads without indirection; an exhausted run parks
  // at kNoSlot, which no live slot can beat, so the scan needs no
  // emptiness branches. Capacity: 9 bucket slices + (chunks − 1) extra
  // boundaries ≤ 9 + 15 = 24 runs.
  const FanoutCandidate* run_cur[24];
  const FanoutCandidate* run_end[24];
  std::uint32_t head_slot[24];
  int nruns = 0;
  for (std::size_t k = 0; k < chunks; ++k) {
    const ShardScratch& s = scratches[k];
    for (int i = 0; i < s.nruns; ++i) {
      run_cur[nruns] = s.cand.data() + s.runs[i].begin;
      run_end[nruns] = s.cand.data() + s.runs[i].end;
      head_slot[nruns] = run_cur[nruns]->slot;
      ++nruns;
    }
  }

  const bool multicast = frame.header.addr1.is_multicast();
  while (nruns > 0) {
    int best = 0;
    for (int i = 1; i < nruns; ++i) {
      if (head_slot[i] < head_slot[best]) best = i;
    }
    if (head_slot[best] == kNoSlot) break;  // every run exhausted
    const FanoutCandidate c = *run_cur[best]++;
    head_slot[best] =
        run_cur[best] != run_end[best] ? run_cur[best]->slot : kNoSlot;
    RadioState& st = slots_[c.slot];
    // A sink callback from an earlier candidate may have detached this
    // radio (or cleared its sink) mid-fanout; skip before any fault draw is
    // consumed, exactly as the reference path does.
    if (!st.attached || st.sink == nullptr) continue;
    const Position rx_pos{c.x, c.y};  // frozen at gather time
    double rx_dbm;
    if (fault_rng != nullptr) {
      // The erasure draw below must see bit-identical RX power to the
      // reference path, so lossy runs always take the exact hypot + log10
      // road; survivors then reuse the same value as their RSSI.
      rx_dbm =
          propagation_.rx_power_dbm(tx_power_dbm, distance(tx_pos, rx_pos));
      if (fault_rng->chance(multicast ? fault_.link_loss(rx_dbm)
                                      : fault_.per(rx_dbm))) {
        ++st.rx_lost;
        ++frames_lost_;
        ++drops_.erasure;
        if (trace_ != nullptr) {
          trace_->record(events_.now(), obs::Category::kFault,
                         obs::Event::kDropErasure,
                         static_cast<RadioId>(c.slot) + 1, from);
        }
        continue;
      }
    } else if (cfg_.pathloss_cache && !pair_cache_.empty()) {
      rx_dbm =
          pair_cached_rx_dbm(self, c.slot, tx_power_dbm, c.dist_sq, tx_pos,
                             rx_pos, job.precompute ? &c.rx_dbm : nullptr);
    } else if (job.precompute) {
      rx_dbm = c.rx_dbm;
    } else {
      rx_dbm = survivor_rx_dbm(tx_power_dbm, c.dist_sq, tx_pos, rx_pos);
    }
    RxInfo info;
    info.rssi_dbm = rx_dbm;
    info.time = events_.now();
    info.channel = channel;
    ++st.frames_received;
    ++deliveries_;
    if (trace_ != nullptr) {
      trace_->record(events_.now(), obs::Category::kMedium,
                     obs::Event::kDeliver, static_cast<RadioId>(c.slot) + 1,
                     from);
    }
    st.sink->on_frame(frame, info);
  }
}

void Medium::deliver(RadioId from, const dot11::Frame& frame,
                     std::uint8_t channel, Position tx_pos,
                     double tx_power_dbm, support::Rng* fault_rng) {
  if (cfg_.spatial_grid && cfg_.batched_fanout && !cells_.empty()) {
    deliver_batched(from, frame, channel, tx_pos, tx_power_dbm, fault_rng);
    return;
  }

  // Reference paths (Config toggles): gather + std::sort over the grid, or
  // the legacy full scan — exact per-candidate math either way. Snapshot
  // receiver candidates first: a sink callback may attach/detach radios.
  // The member scratch vector is reused across calls; reentrant delivery (a
  // sink pumping the event queue) falls back to a local.
  std::vector<Candidate> local;
  std::vector<Candidate>& targets =
      deliver_depth_ == 0 ? deliver_scratch_ : local;
  targets.clear();
  ++deliver_depth_;
  struct DepthGuard {
    int& depth;
    ~DepthGuard() { --depth; }
  } guard{deliver_depth_};

  if (cfg_.spatial_grid && !cells_.empty()) {
    // Probe only the cells overlapping the transmission's own range box.
    const double r = propagation_.max_range(tx_power_dbm);
    const std::int64_t cx0 = cell_coord(tx_pos.x - r);
    const std::int64_t cx1 = cell_coord(tx_pos.x + r);
    const std::int64_t cy0 = cell_coord(tx_pos.y - r);
    const std::int64_t cy1 = cell_coord(tx_pos.y + r);
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
        const auto cell = cells_.find(cell_key(cx, cy));
        if (cell == cells_.end()) continue;
        // Every partition of the cell is scanned and filtered on live state
        // (the sort below erases partition order), so this reference path is
        // insensitive to how channel_buckets splits the cell.
        for (const auto& [part, bid] : cell->second.parts) {
          const BucketRef& b = buckets_[bid];
          for (std::uint32_t k = 0; k < b.size; ++k) {
            const std::uint32_t slot = arena_slots_[b.offset + k];
            const RadioState& st = slots_[slot];
            const RadioId id = static_cast<RadioId>(slot) + 1;
            if (id == from || st.channel != channel || st.sink == nullptr) {
              continue;
            }
            targets.push_back({id, slot, distance(tx_pos, st.pos)});
          }
        }
      }
    }
    // Buckets come back in hash/partition order; sort so the fanout matches
    // the legacy id-ordered scan bit for bit.
    std::sort(targets.begin(), targets.end(),
              [](const Candidate& a, const Candidate& b) { return a.id < b.id; });
  } else {
    targets.reserve(active_slots_.size());
    for (const std::uint32_t slot : active_slots_) {
      const RadioState& st = slots_[slot];
      const RadioId id = static_cast<RadioId>(slot) + 1;
      if (id == from || st.channel != channel || st.sink == nullptr) continue;
      targets.push_back({id, slot, distance(tx_pos, st.pos)});
    }
  }

  // Candidate slots stay valid until the topology changes; only after a
  // sink callback attaches or detaches a radio do we pay the id lookup
  // again (a detached candidate is skipped, as before). The distance was
  // frozen into the candidate at gather time — see Candidate::d — so a
  // callback moving radios mid-fanout does not alter this frame's fanout.
  const std::uint64_t epoch = topology_epoch_;
  for (const Candidate& c : targets) {
    std::uint32_t slot = c.slot;
    if (topology_epoch_ != epoch) {
      slot = slot_of(c.id);
      if (slot == kNoSlot) continue;  // detached by an earlier callback
    }
    auto& st = slots_[slot];
    if (st.sink == nullptr) continue;  // sink revoked by an earlier callback
    const double d = c.d;
    if (!propagation_.deliverable(tx_power_dbm, d)) continue;
    const double rx_dbm = propagation_.rx_power_dbm(tx_power_dbm, d);
    if (fault_rng != nullptr &&
        fault_rng->chance(frame.header.addr1.is_multicast()
                              ? fault_.link_loss(rx_dbm)
                              : fault_.per(rx_dbm))) {
      // Erased on this link. Broadcasts eat the full loss (SNR-derived PER
      // plus the ambient collision floor); unicast frames already paid the
      // ambient floor in the ACK-driven retry loop at TX, so only the
      // edge-of-range SNR loss — which no retransmission repairs — applies
      // here. Draws consume from the transmission's own stream in sorted
      // receiver order, keeping lossy runs bit-identical.
      ++st.rx_lost;
      ++frames_lost_;
      ++drops_.erasure;
      if (trace_ != nullptr) {
        trace_->record(events_.now(), obs::Category::kFault,
                       obs::Event::kDropErasure, c.id, from);
      }
      continue;
    }
    RxInfo info;
    info.rssi_dbm = rx_dbm;
    info.time = events_.now();
    info.channel = channel;
    ++st.frames_received;
    ++deliveries_;
    if (trace_ != nullptr) {
      trace_->record(events_.now(), obs::Category::kMedium,
                     obs::Event::kDeliver, c.id, from);
    }
    FrameSink* sink = st.sink;
    sink->on_frame(frame, info);
  }
}

// --- Radio handle methods ---

Position Radio::position() const { return medium_->state(id_).pos; }
void Radio::set_position(Position p) { medium_->set_position(id_, p); }
std::uint8_t Radio::channel() const { return medium_->state(id_).channel; }
void Radio::set_channel(std::uint8_t ch) { medium_->set_channel(id_, ch); }
double Radio::tx_power_dbm() const { return medium_->state(id_).tx_power_dbm; }
void Radio::set_tx_power_dbm(double dbm) { medium_->set_tx_power(id_, dbm); }
void Radio::set_sink(FrameSink* sink) { medium_->set_sink(id_, sink); }

void Radio::transmit(const dot11::Frame& frame) {
  medium_->transmit(id_, frame);
}

std::size_t Radio::tx_backlog() const { return medium_->state(id_).tx_backlog; }

void Radio::clear_tx_queue() {
  auto& st = medium_->state(id_);
  ++st.queue_epoch;
  st.tx_backlog = 0;
  st.tx_busy_until = medium_->events_.now();
}

std::uint64_t Radio::frames_sent() const {
  return medium_->state(id_).frames_sent;
}
std::uint64_t Radio::frames_received() const {
  return medium_->state(id_).frames_received;
}
std::uint64_t Radio::tx_retries() const {
  return medium_->state(id_).tx_retries;
}
std::uint64_t Radio::frames_lost() const {
  return medium_->state(id_).rx_lost;
}

}  // namespace cityhunter::medium
