#include "medium/medium.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dot11/serialize.h"
#include "dot11/timing.h"
#include "obs/trace.h"

namespace cityhunter::medium {

Medium::Medium(EventQueue& events) : Medium(events, Config()) {}

Medium::Medium(EventQueue& events, Config cfg)
    : events_(events),
      cfg_(cfg),
      propagation_(cfg.propagation),
      fault_(cfg.fault) {
  // Negated comparisons so NaN is rejected too.
  if (!(cfg_.contention_factor > 0.0)) {
    throw std::invalid_argument(
        "Medium: contention_factor must be positive");
  }
  if (!(cfg_.mgmt_rate_mbps > 0.0)) {
    throw std::invalid_argument("Medium: mgmt_rate_mbps must be positive");
  }
}

Radio Medium::attach(Position pos, std::uint8_t channel, double tx_power_dbm,
                     FrameSink* sink) {
  const RadioId id = next_id_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = RadioState{};
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  RadioState& st = slots_[slot];
  st.pos = pos;
  st.channel = channel;
  st.tx_power_dbm = tx_power_dbm;
  st.sink = sink;
  st.tx_busy_until = events_.now();
  if (id >= slot_by_id_.size()) slot_by_id_.resize(id + 1, kNoSlot);
  slot_by_id_[id] = slot;
  active_ids_.push_back(id);  // ids increase monotonically: stays sorted
  ++topology_epoch_;
  if (cfg_.spatial_grid) {
    if (tx_power_dbm > max_tx_power_dbm_) {
      max_tx_power_dbm_ = tx_power_dbm;
      if (propagation_.max_range(max_tx_power_dbm_) > cell_size_) {
        grid_rebuild();  // re-buckets the new radio too
        return Radio(this, id);
      }
    }
    grid_insert(id, st);
  }
  return Radio(this, id);
}

void Medium::detach(Radio& radio) {
  const std::uint32_t slot = slot_of(radio.id_);
  if (slot != kNoSlot) {
    grid_erase(slots_[slot], radio.id_);
    slot_by_id_[radio.id_] = kNoSlot;
    free_slots_.push_back(slot);
    const auto it = std::lower_bound(active_ids_.begin(), active_ids_.end(),
                                     radio.id_);
    if (it != active_ids_.end() && *it == radio.id_) active_ids_.erase(it);
    ++topology_epoch_;
  }
  radio.medium_ = nullptr;
}

Medium::RadioState& Medium::state(RadioId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  return slots_[slot];
}

const Medium::RadioState& Medium::state(RadioId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  return slots_[slot];
}

std::int64_t Medium::cell_coord(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_size_));
}

std::uint64_t Medium::cell_of(Position pos) const {
  return cell_key(cell_coord(pos.x), cell_coord(pos.y));
}

void Medium::grid_insert(RadioId id, RadioState& st) {
  st.cell = cell_of(st.pos);
  st.in_grid = true;
  cells_[st.cell].push_back(id);
}

void Medium::grid_erase(RadioState& st, RadioId id) {
  if (!st.in_grid) return;
  auto it = cells_.find(st.cell);
  if (it != cells_.end()) {
    auto& ids = it->second;
    const auto pos = std::find(ids.begin(), ids.end(), id);
    if (pos != ids.end()) {
      // Swap-pop: bucket order is irrelevant, deliver() sorts candidates.
      *pos = ids.back();
      ids.pop_back();
    }
    if (ids.empty()) cells_.erase(it);
  }
  st.in_grid = false;
}

void Medium::grid_rebuild() {
  cells_.clear();
  cell_size_ = std::max(1.0, propagation_.max_range(max_tx_power_dbm_));
  for (const RadioId id : active_ids_) {
    grid_insert(id, slots_[slot_by_id_[id]]);
  }
}

void Medium::set_position(RadioId id, Position pos) {
  auto& st = state(id);
  st.pos = pos;
  if (!cfg_.spatial_grid) return;
  const std::uint64_t key = cell_of(pos);
  if (st.in_grid && key == st.cell) return;
  grid_erase(st, id);
  grid_insert(id, st);
}

void Medium::set_tx_power(RadioId id, double dbm) {
  auto& st = state(id);
  st.tx_power_dbm = dbm;
  if (!cfg_.spatial_grid) return;
  if (dbm > max_tx_power_dbm_) {
    max_tx_power_dbm_ = dbm;
    if (propagation_.max_range(max_tx_power_dbm_) > cell_size_) grid_rebuild();
  }
}

Medium::Transmission& Medium::acquire_txn() {
  if (free_txns_.empty()) {
    all_txns_.push_back(std::make_unique<Transmission>());
    free_txns_.push_back(all_txns_.back().get());
  }
  Transmission* t = free_txns_.back();
  free_txns_.pop_back();
  return *t;
}

void Medium::transmit(RadioId from, const dot11::Frame& frame) {
  auto& st = state(from);
  ++transmissions_;

  Transmission& t = acquire_txn();
  t.from = from;
  t.epoch = st.queue_epoch;
  t.tx_pos = st.pos;
  t.tx_dbm = st.tx_power_dbm;
  t.channel = st.channel;
  t.erased = false;
  t.frame_ok = false;
  t.fault_rng.reset();

  // Round-trip through the wire format once, at transmit time: every
  // receiver shares the parsed result instead of deliver() re-parsing the
  // byte vector per transmission. Receivers still only ever see what
  // survives serialization. The one serialization also yields the wire
  // size, so airtime needs no second walk over the frame tree.
  const std::size_t bytes = dot11::serialize_into(frame, t.wire);
  const SimTime air =
      dot11::airtime(bytes, cfg_.mgmt_rate_mbps) * cfg_.contention_factor;
  SimTime occupancy = air;

  if (trace_ != nullptr) {
    trace_->record(events_.now(), obs::Category::kMedium,
                   obs::Event::kTransmit, from, bytes);
  }

  // Fault injection. The stream is a pure function of (seed, radio, frame
  // sequence), so the draws below cannot be perturbed by anything else in
  // the simulation. A failed attempt of a *unicast* management frame — an
  // ambient collision at the addressed receiver (no ACK comes back) or an
  // interference burst corrupting the attempt — is retransmitted up to
  // retry_limit times, each retry paying a contention backoff (scaled like
  // airtime by the contention factor) plus the frame's airtime again: the
  // link layer repairs loss by spending the 40-response scan budget.
  // Broadcasts are unacknowledged and get exactly one attempt, eating the
  // full per-receiver loss in deliver().
  if (fault_.enabled()) {
    t.fault_rng = fault_.stream(from, st.tx_seq++);
    support::Rng& rng = *t.fault_rng;
    const bool unicast = !frame.header.addr1.is_multicast();
    // Per attempt: collision at the receiver, then a corruption burst.
    // Both are drawn every attempt so the stream layout is fixed.
    bool collided = unicast && rng.chance(fault_.config().ambient_loss);
    bool corrupted = rng.chance(fault_.config().corruption_rate);
    int attempt = 0;
    while ((collided || corrupted) && unicast &&
           attempt < fault_.config().retry_limit) {
      ++attempt;
      ++st.tx_retries;
      ++retries_;
      occupancy +=
          fault_.backoff(attempt, rng) * cfg_.contention_factor + air;
      if (trace_ != nullptr) {
        trace_->record(events_.now(), obs::Category::kFault,
                       obs::Event::kRetry, from,
                       static_cast<std::uint64_t>(attempt));
      }
      collided = rng.chance(fault_.config().ambient_loss);
      corrupted = rng.chance(fault_.config().corruption_rate);
    }
    if (unicast && (collided || corrupted)) ++drops_.retry_exhausted;
    if (collided) {
      // Retry budget exhausted on a collision: the frame never reached its
      // receiver at all.
      t.erased = true;
      ++frames_lost_;
      ++drops_.collision;
      if (trace_ != nullptr) {
        trace_->record(events_.now(), obs::Category::kFault,
                       obs::Event::kDropCollision, from,
                       static_cast<std::uint64_t>(attempt));
      }
    } else if (corrupted) {
      // Retry budget exhausted on a burst (or a corrupted broadcast): the
      // delivered bytes carry real bit damage and every receiver's FCS
      // check will reject them.
      ++frames_corrupted_;
      fault_.corrupt(t.wire, rng);
    }
  }

  // Decode into the transmission's own frame slot (reusing IE storage from
  // the slot's previous use). Skipped when the frame was erased — it will
  // never be delivered.
  if (!t.erased) t.frame_ok = dot11::parse_into(t.wire, t.frame);

  const SimTime start = std::max(events_.now(), st.tx_busy_until);
  const SimTime done = start + occupancy;
  st.tx_busy_until = done;
  ++st.tx_backlog;

  // Everything the delivery needs lives in the pooled transmission, so the
  // closure is two pointers — inline in the event queue's SmallFn, no heap.
  events_.post_at(done, [this, txn = &t] {
    finish_transmission(*txn);
    free_txns_.push_back(txn);
  });
}

void Medium::finish_transmission(Transmission& t) {
  const std::uint32_t slot = slot_of(t.from);
  if (slot != kNoSlot) {
    RadioState& st = slots_[slot];
    if (st.queue_epoch != t.epoch) return;  // queue was cleared
    --st.tx_backlog;
    ++st.frames_sent;
  }
  if (t.erased) return;  // collided away after the full retry budget
  if (!t.frame_ok) {
    // Corrupted on the wire — a real receiver drops bad-FCS frames silently.
    ++drops_.crc_reject;
    if (trace_ != nullptr) {
      trace_->record(events_.now(), obs::Category::kFault,
                     obs::Event::kDropCrcReject, t.from, t.wire.size());
    }
    return;
  }
  deliver(t.from, t.frame, t.channel, t.tx_pos, t.tx_dbm,
          t.fault_rng ? &*t.fault_rng : nullptr);
}

void Medium::deliver(RadioId from, const dot11::Frame& frame,
                     std::uint8_t channel, Position tx_pos,
                     double tx_power_dbm, support::Rng* fault_rng) {
  // Snapshot receiver candidates first: a sink callback may attach/detach
  // radios. The member scratch vector is reused across calls; reentrant
  // delivery (a sink pumping the event queue) falls back to a local.
  std::vector<Candidate> local;
  std::vector<Candidate>& targets =
      deliver_depth_ == 0 ? deliver_scratch_ : local;
  targets.clear();
  ++deliver_depth_;
  struct DepthGuard {
    int& depth;
    ~DepthGuard() { --depth; }
  } guard{deliver_depth_};

  if (cfg_.spatial_grid && !cells_.empty()) {
    // Probe only the cells overlapping the transmission's own range box.
    const double r = propagation_.max_range(tx_power_dbm);
    const std::int64_t cx0 = cell_coord(tx_pos.x - r);
    const std::int64_t cx1 = cell_coord(tx_pos.x + r);
    const std::int64_t cy0 = cell_coord(tx_pos.y - r);
    const std::int64_t cy1 = cell_coord(tx_pos.y + r);
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
        const auto cell = cells_.find(cell_key(cx, cy));
        if (cell == cells_.end()) continue;
        for (const RadioId id : cell->second) {
          const std::uint32_t slot = slot_by_id_[id];
          const RadioState& st = slots_[slot];
          if (id == from || st.channel != channel || st.sink == nullptr) {
            continue;
          }
          targets.push_back({id, slot});
        }
      }
    }
    // Buckets come back in hash order; sort so the fanout matches the
    // legacy id-ordered scan bit for bit.
    std::sort(targets.begin(), targets.end(),
              [](const Candidate& a, const Candidate& b) { return a.id < b.id; });
  } else {
    targets.reserve(active_ids_.size());
    for (const RadioId id : active_ids_) {
      const std::uint32_t slot = slot_by_id_[id];
      const RadioState& st = slots_[slot];
      if (id == from || st.channel != channel || st.sink == nullptr) continue;
      targets.push_back({id, slot});
    }
  }

  // Candidate slots stay valid until the topology changes; only after a
  // sink callback attaches or detaches a radio do we pay the id lookup
  // again (a detached candidate is skipped, as before).
  const std::uint64_t epoch = topology_epoch_;
  for (const Candidate& c : targets) {
    std::uint32_t slot = c.slot;
    if (topology_epoch_ != epoch) {
      slot = slot_of(c.id);
      if (slot == kNoSlot) continue;  // detached by an earlier callback
    }
    auto& st = slots_[slot];
    const double d = distance(tx_pos, st.pos);
    if (!propagation_.deliverable(tx_power_dbm, d)) continue;
    const double rx_dbm = propagation_.rx_power_dbm(tx_power_dbm, d);
    if (fault_rng != nullptr &&
        fault_rng->chance(frame.header.addr1.is_multicast()
                              ? fault_.link_loss(rx_dbm)
                              : fault_.per(rx_dbm))) {
      // Erased on this link. Broadcasts eat the full loss (SNR-derived PER
      // plus the ambient collision floor); unicast frames already paid the
      // ambient floor in the ACK-driven retry loop at TX, so only the
      // edge-of-range SNR loss — which no retransmission repairs — applies
      // here. Draws consume from the transmission's own stream in sorted
      // receiver order, keeping lossy runs bit-identical.
      ++st.rx_lost;
      ++frames_lost_;
      ++drops_.erasure;
      if (trace_ != nullptr) {
        trace_->record(events_.now(), obs::Category::kFault,
                       obs::Event::kDropErasure, c.id, from);
      }
      continue;
    }
    RxInfo info;
    info.rssi_dbm = rx_dbm;
    info.time = events_.now();
    info.channel = channel;
    ++st.frames_received;
    ++deliveries_;
    if (trace_ != nullptr) {
      trace_->record(events_.now(), obs::Category::kMedium,
                     obs::Event::kDeliver, c.id, from);
    }
    FrameSink* sink = st.sink;
    sink->on_frame(frame, info);
  }
}

// --- Radio handle methods ---

Position Radio::position() const { return medium_->state(id_).pos; }
void Radio::set_position(Position p) { medium_->set_position(id_, p); }
std::uint8_t Radio::channel() const { return medium_->state(id_).channel; }
void Radio::set_channel(std::uint8_t ch) { medium_->state(id_).channel = ch; }
double Radio::tx_power_dbm() const { return medium_->state(id_).tx_power_dbm; }
void Radio::set_tx_power_dbm(double dbm) { medium_->set_tx_power(id_, dbm); }
void Radio::set_sink(FrameSink* sink) { medium_->state(id_).sink = sink; }

void Radio::transmit(const dot11::Frame& frame) {
  medium_->transmit(id_, frame);
}

std::size_t Radio::tx_backlog() const { return medium_->state(id_).tx_backlog; }

void Radio::clear_tx_queue() {
  auto& st = medium_->state(id_);
  ++st.queue_epoch;
  st.tx_backlog = 0;
  st.tx_busy_until = medium_->events_.now();
}

std::uint64_t Radio::frames_sent() const {
  return medium_->state(id_).frames_sent;
}
std::uint64_t Radio::frames_received() const {
  return medium_->state(id_).frames_received;
}
std::uint64_t Radio::tx_retries() const {
  return medium_->state(id_).tx_retries;
}
std::uint64_t Radio::frames_lost() const {
  return medium_->state(id_).rx_lost;
}

}  // namespace cityhunter::medium
