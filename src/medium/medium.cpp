#include "medium/medium.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dot11/serialize.h"
#include "dot11/timing.h"
#include "obs/trace.h"

namespace cityhunter::medium {

Medium::Medium(EventQueue& events) : Medium(events, Config()) {}

Medium::Medium(EventQueue& events, Config cfg)
    : events_(events),
      cfg_(cfg),
      propagation_(cfg.propagation),
      fault_(cfg.fault) {
  // Negated comparisons so NaN is rejected too.
  if (!(cfg_.contention_factor > 0.0)) {
    throw std::invalid_argument(
        "Medium: contention_factor must be positive");
  }
  if (!(cfg_.mgmt_rate_mbps > 0.0)) {
    throw std::invalid_argument("Medium: mgmt_rate_mbps must be positive");
  }
}

Radio Medium::attach(Position pos, std::uint8_t channel, double tx_power_dbm,
                     FrameSink* sink) {
  if (slots_.size() >= static_cast<std::size_t>(kNoSlot) - 1) {
    throw std::length_error("Medium: radio id space exhausted");
  }
  const RadioId id = next_id_++;
  // Slots are never recycled: slot ≡ id − 1 for the radio's whole lifetime,
  // which makes slot order identical to id order and lets the batched
  // fanout merge sorted grid buckets instead of sorting candidates.
  const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  RadioState& st = slots_.back();
  st.pos = pos;
  st.channel = channel;
  st.tx_power_dbm = tx_power_dbm;
  st.sink = sink;
  st.tx_busy_until = events_.now();
  soa_x_.push_back(pos.x);
  soa_y_.push_back(pos.y);
  soa_key_.push_back(0);
  link_epoch_.push_back(0);
  update_soa_key(slot);
  active_slots_.push_back(slot);  // slots increase monotonically: stays sorted
  ++topology_epoch_;
  maybe_grow_pair_cache();
  if (cfg_.spatial_grid) {
    if (tx_power_dbm > max_tx_power_dbm_) {
      max_tx_power_dbm_ = tx_power_dbm;
      rebuild_lut();
      if (propagation_.max_range(max_tx_power_dbm_) > cell_size_) {
        grid_rebuild();  // re-buckets the new radio too
        return Radio(this, id);
      }
    }
    grid_insert(slot, st);
  }
  return Radio(this, id);
}

void Medium::detach(Radio& radio) {
  const std::uint32_t slot = slot_of(radio.id_);
  if (slot != kNoSlot) {
    RadioState& st = slots_[slot];
    grid_erase(st, slot);
    st.attached = false;
    st.sink = nullptr;
    soa_key_[slot] = 0;
    const auto it =
        std::lower_bound(active_slots_.begin(), active_slots_.end(), slot);
    if (it != active_slots_.end() && *it == slot) active_slots_.erase(it);
    ++topology_epoch_;
  }
  radio.medium_ = nullptr;
}

Medium::RadioState& Medium::state(RadioId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  return slots_[slot];
}

const Medium::RadioState& Medium::state(RadioId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  return slots_[slot];
}

std::int64_t Medium::cell_coord(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_size_));
}

std::uint64_t Medium::cell_of(Position pos) const {
  return cell_key(cell_coord(pos.x), cell_coord(pos.y));
}

void Medium::grid_insert(std::uint32_t slot, RadioState& st) {
  st.cell = cell_of(st.pos);
  st.in_grid = true;
  auto& bucket = cells_[st.cell];
  // Sorted insert keeps every bucket in ascending slot order for the merge
  // fanout. A freshly attached slot is the global maximum, so the common
  // case is an O(1) append; only cell migration pays the shift.
  if (bucket.empty() || bucket.back() < slot) {
    bucket.push_back(slot);
  } else {
    bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), slot), slot);
  }
}

void Medium::grid_erase(RadioState& st, std::uint32_t slot) {
  if (!st.in_grid) return;
  auto it = cells_.find(st.cell);
  if (it != cells_.end()) {
    auto& bucket = it->second;
    const auto pos = std::lower_bound(bucket.begin(), bucket.end(), slot);
    if (pos != bucket.end() && *pos == slot) bucket.erase(pos);
    if (bucket.empty()) cells_.erase(it);
  }
  st.in_grid = false;
}

void Medium::grid_rebuild() {
  cells_.clear();
  cell_size_ = std::max(1.0, propagation_.max_range(max_tx_power_dbm_));
  // active_slots_ is sorted, so every bucket is built by pure appends.
  for (const std::uint32_t slot : active_slots_) {
    grid_insert(slot, slots_[slot]);
  }
}

void Medium::rebuild_lut() {
  if (!cfg_.pathloss_lut) return;
  lut_ = PathLossLut(cfg_.propagation,
                     propagation_.max_range(max_tx_power_dbm_));
}

void Medium::maybe_grow_pair_cache() {
  if (!cfg_.pathloss_cache) return;
  std::size_t want = 1024;
  while (want < slots_.size() * 2 && want < (std::size_t{1} << 16)) {
    want <<= 1;
  }
  if (want <= pair_cache_.size()) return;
  // Growing clears the cache; invisible — entries are pure memoization —
  // and only ever happens at attach time, never mid-frame.
  pair_cache_.assign(want, PairEntry{});
  pair_mask_ = want - 1;
}

const Medium::RangeEntry& Medium::range_for(double tx_power_dbm) {
  for (const RangeEntry& e : range_cache_) {
    if (e.dbm == tx_power_dbm) return e;
  }
  RangeEntry e;
  e.dbm = tx_power_dbm;
  e.box_r = propagation_.max_range(tx_power_dbm);
  // A negative link budget means the exact model rejects every distance
  // (below sensitivity even at the 1 m clamp); range_sq = -1 rejects every
  // d² the same way. At budget >= 0, d² <= max_range² accepts exactly the
  // distances the exact `deliverable()` predicate accepts.
  const auto& p = propagation_.config();
  const double budget =
      tx_power_dbm - p.reference_loss_db - p.rx_sensitivity_dbm;
  if (budget >= 0.0) e.range_sq = e.box_r * e.box_r;
  range_cache_.push_back(e);
  return range_cache_.back();
}

double Medium::survivor_rx_dbm(std::uint32_t rx_slot, double tx_dbm,
                               double dist_sq, Position tx_pos) const {
  if (cfg_.pathloss_lut && lut_.covers(dist_sq)) {
    return lut_.rx_power_dbm_sq(tx_dbm, dist_sq);
  }
  return propagation_.rx_power_dbm(tx_dbm,
                                   distance(tx_pos, slots_[rx_slot].pos));
}

double Medium::pair_cached_rx_dbm(std::uint32_t tx_slot,
                                  std::uint32_t rx_slot, double tx_dbm,
                                  double dist_sq, Position tx_pos) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(tx_slot) << 32) | rx_slot;
  // SplitMix-style finalizer spreads adjacent slot pairs across the table.
  std::uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  PairEntry& e = pair_cache_[h & pair_mask_];
  const std::uint32_t te = link_epoch_[tx_slot];
  const std::uint32_t re = link_epoch_[rx_slot];
  if (e.key == key && e.tx_dbm == tx_dbm && e.tx_epoch == te &&
      e.rx_epoch == re) {
    ++pathloss_cache_hits_;
    return e.rx_dbm;
  }
  ++pathloss_cache_misses_;
  const double rx = survivor_rx_dbm(rx_slot, tx_dbm, dist_sq, tx_pos);
  e.key = key;
  e.tx_dbm = tx_dbm;
  e.rx_dbm = rx;
  e.tx_epoch = te;
  e.rx_epoch = re;
  return rx;
}

void Medium::set_position(RadioId id, Position pos) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  RadioState& st = slots_[slot];
  st.pos = pos;
  soa_x_[slot] = pos.x;
  soa_y_[slot] = pos.y;
  ++link_epoch_[slot];  // invalidates every pair-cache entry touching us
  if (!cfg_.spatial_grid) return;
  const std::uint64_t key = cell_of(pos);
  if (st.in_grid && key == st.cell) return;
  grid_erase(st, slot);
  grid_insert(slot, st);
}

void Medium::set_tx_power(RadioId id, double dbm) {
  auto& st = state(id);
  st.tx_power_dbm = dbm;
  if (!cfg_.spatial_grid) return;
  if (dbm > max_tx_power_dbm_) {
    max_tx_power_dbm_ = dbm;
    rebuild_lut();
    if (propagation_.max_range(max_tx_power_dbm_) > cell_size_) grid_rebuild();
  }
}

void Medium::set_channel(RadioId id, std::uint8_t ch) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  slots_[slot].channel = ch;
  update_soa_key(slot);
}

void Medium::set_sink(RadioId id, FrameSink* sink) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::logic_error("Medium: use of detached radio");
  }
  slots_[slot].sink = sink;
  update_soa_key(slot);
}

Medium::Transmission& Medium::acquire_txn() {
  if (free_txns_.empty()) {
    all_txns_.push_back(std::make_unique<Transmission>());
    free_txns_.push_back(all_txns_.back().get());
  }
  Transmission* t = free_txns_.back();
  free_txns_.pop_back();
  return *t;
}

void Medium::transmit(RadioId from, const dot11::Frame& frame) {
  auto& st = state(from);
  ++transmissions_;

  Transmission& t = acquire_txn();
  t.from = from;
  t.epoch = st.queue_epoch;
  t.tx_pos = st.pos;
  t.tx_dbm = st.tx_power_dbm;
  t.channel = st.channel;
  t.erased = false;
  t.frame_ok = false;
  t.fault_rng.reset();

  // Round-trip through the wire format once, at transmit time: every
  // receiver shares the parsed result instead of deliver() re-parsing the
  // byte vector per transmission. Receivers still only ever see what
  // survives serialization. The one serialization also yields the wire
  // size, so airtime needs no second walk over the frame tree.
  const std::size_t bytes = dot11::serialize_into(frame, t.wire);
  const SimTime air =
      dot11::airtime(bytes, cfg_.mgmt_rate_mbps) * cfg_.contention_factor;
  SimTime occupancy = air;

  if (trace_ != nullptr) {
    trace_->record(events_.now(), obs::Category::kMedium,
                   obs::Event::kTransmit, from, bytes);
  }

  // Fault injection. The stream is a pure function of (seed, radio, frame
  // sequence), so the draws below cannot be perturbed by anything else in
  // the simulation. A failed attempt of a *unicast* management frame — an
  // ambient collision at the addressed receiver (no ACK comes back) or an
  // interference burst corrupting the attempt — is retransmitted up to
  // retry_limit times, each retry paying a contention backoff (scaled like
  // airtime by the contention factor) plus the frame's airtime again: the
  // link layer repairs loss by spending the 40-response scan budget.
  // Broadcasts are unacknowledged and get exactly one attempt, eating the
  // full per-receiver loss in deliver().
  if (fault_.enabled()) {
    t.fault_rng = fault_.stream(from, st.tx_seq++);
    support::Rng& rng = *t.fault_rng;
    const bool unicast = !frame.header.addr1.is_multicast();
    // Per attempt: collision at the receiver, then a corruption burst.
    // Both are drawn every attempt so the stream layout is fixed.
    bool collided = unicast && rng.chance(fault_.config().ambient_loss);
    bool corrupted = rng.chance(fault_.config().corruption_rate);
    int attempt = 0;
    while ((collided || corrupted) && unicast &&
           attempt < fault_.config().retry_limit) {
      ++attempt;
      ++st.tx_retries;
      ++retries_;
      occupancy +=
          fault_.backoff(attempt, rng) * cfg_.contention_factor + air;
      if (trace_ != nullptr) {
        trace_->record(events_.now(), obs::Category::kFault,
                       obs::Event::kRetry, from,
                       static_cast<std::uint64_t>(attempt));
      }
      collided = rng.chance(fault_.config().ambient_loss);
      corrupted = rng.chance(fault_.config().corruption_rate);
    }
    if (unicast && (collided || corrupted)) ++drops_.retry_exhausted;
    if (collided) {
      // Retry budget exhausted on a collision: the frame never reached its
      // receiver at all.
      t.erased = true;
      ++frames_lost_;
      ++drops_.collision;
      if (trace_ != nullptr) {
        trace_->record(events_.now(), obs::Category::kFault,
                       obs::Event::kDropCollision, from,
                       static_cast<std::uint64_t>(attempt));
      }
    } else if (corrupted) {
      // Retry budget exhausted on a burst (or a corrupted broadcast): the
      // delivered bytes carry real bit damage and every receiver's FCS
      // check will reject them.
      ++frames_corrupted_;
      fault_.corrupt(t.wire, rng);
    }
  }

  // Decode into the transmission's own frame slot (reusing IE storage from
  // the slot's previous use). Skipped when the frame was erased — it will
  // never be delivered.
  if (!t.erased) t.frame_ok = dot11::parse_into(t.wire, t.frame);

  const SimTime start = std::max(events_.now(), st.tx_busy_until);
  const SimTime done = start + occupancy;
  st.tx_busy_until = done;
  ++st.tx_backlog;

  // Everything the delivery needs lives in the pooled transmission, so the
  // closure is two pointers — inline in the event queue's SmallFn, no heap.
  events_.post_at(done, [this, txn = &t] {
    finish_transmission(*txn);
    free_txns_.push_back(txn);
  });
}

void Medium::finish_transmission(Transmission& t) {
  const std::uint32_t slot = slot_of(t.from);
  if (slot != kNoSlot) {
    RadioState& st = slots_[slot];
    if (st.queue_epoch != t.epoch) return;  // queue was cleared
    --st.tx_backlog;
    ++st.frames_sent;
  }
  if (t.erased) return;  // collided away after the full retry budget
  if (!t.frame_ok) {
    // Corrupted on the wire — a real receiver drops bad-FCS frames silently.
    ++drops_.crc_reject;
    if (trace_ != nullptr) {
      trace_->record(events_.now(), obs::Category::kFault,
                     obs::Event::kDropCrcReject, t.from, t.wire.size());
    }
    return;
  }
  deliver(t.from, t.frame, t.channel, t.tx_pos, t.tx_dbm,
          t.fault_rng ? &*t.fault_rng : nullptr);
}

void Medium::deliver_batched(RadioId from, const dot11::Frame& frame,
                             std::uint8_t channel, Position tx_pos,
                             double tx_power_dbm, support::Rng* fault_rng) {
  // Snapshot in-range candidates first: a sink callback may attach/detach
  // radios or move them. The member scratch vector is reused across calls;
  // reentrant delivery (a sink pumping the event queue) falls back to a
  // local.
  std::vector<BatchCandidate> local;
  std::vector<BatchCandidate>& cand =
      deliver_depth_ == 0 ? batch_scratch_ : local;
  cand.clear();
  ++deliver_depth_;
  struct DepthGuard {
    int& depth;
    ~DepthGuard() { --depth; }
  } guard{deliver_depth_};

  const RangeEntry re = range_for(tx_power_dbm);
  const std::uint32_t self = static_cast<std::uint32_t>(from - 1);
  const std::uint16_t want = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(channel) + 1);

  // Gather per-cell runs of in-range listeners. One uint16 compare covers
  // the attached/sink/channel filters (the fused SoA key), and the range
  // check happens in the squared-distance domain — no sqrt/log10 for
  // radios that turn out to be out of range. Buckets are slot-sorted, so
  // each run comes out pre-sorted for the merge below.
  struct Run {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  Run runs[9];  // the range box spans at most 3x3 cells by construction
  int nruns = 0;
  const std::int64_t cx0 = cell_coord(tx_pos.x - re.box_r);
  const std::int64_t cx1 = cell_coord(tx_pos.x + re.box_r);
  const std::int64_t cy0 = cell_coord(tx_pos.y - re.box_r);
  const std::int64_t cy1 = cell_coord(tx_pos.y + re.box_r);
  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      const auto cell = cells_.find(cell_key(cx, cy));
      if (cell == cells_.end()) continue;
      const std::uint32_t start = static_cast<std::uint32_t>(cand.size());
      for (const std::uint32_t slot : cell->second) {
        if (soa_key_[slot] != want || slot == self) continue;
        const double dx = soa_x_[slot] - tx_pos.x;
        const double dy = soa_y_[slot] - tx_pos.y;
        const double dist_sq = dx * dx + dy * dy;
        if (!(dist_sq <= re.range_sq)) continue;  // rejects NaN too
        cand.push_back({slot, dist_sq});
      }
      const std::uint32_t end = static_cast<std::uint32_t>(cand.size());
      if (end > start && nruns < 9) runs[nruns++] = {start, end};
    }
  }

  // Merge the sorted runs by repeated min-pick: candidates come out in
  // global slot order == radio-id order, so the fanout (and with it the
  // fault-stream draw order) is bit-identical to the legacy id-sorted path
  // without any per-frame sort. The run heads live in one flat array the
  // min-scan reads without indirection; an exhausted run parks at kNoSlot,
  // which no live slot can beat, so the scan needs no emptiness branches.
  std::uint32_t head_slot[9];
  std::uint32_t head_idx[9];
  for (int i = 0; i < nruns; ++i) {
    head_idx[i] = runs[i].begin;
    head_slot[i] = cand[runs[i].begin].slot;
  }
  const bool multicast = frame.header.addr1.is_multicast();
  while (nruns > 0) {
    int best = 0;
    for (int i = 1; i < nruns; ++i) {
      if (head_slot[i] < head_slot[best]) best = i;
    }
    if (head_slot[best] == kNoSlot) break;  // every run exhausted
    const BatchCandidate c = cand[head_idx[best]];
    const std::uint32_t next = head_idx[best] + 1;
    head_idx[best] = next;
    head_slot[best] = next < runs[best].end ? cand[next].slot : kNoSlot;
    RadioState& st = slots_[c.slot];
    // A sink callback from an earlier candidate may have detached this
    // radio (or cleared its sink) mid-fanout; skip before any fault draw is
    // consumed, exactly as the reference path does.
    if (!st.attached || st.sink == nullptr) continue;
    double rx_dbm;
    if (fault_rng != nullptr) {
      // The erasure draw below must see bit-identical RX power to the
      // reference path, so lossy runs always take the exact hypot + log10
      // road; survivors then reuse the same value as their RSSI.
      rx_dbm =
          propagation_.rx_power_dbm(tx_power_dbm, distance(tx_pos, st.pos));
      if (fault_rng->chance(multicast ? fault_.link_loss(rx_dbm)
                                      : fault_.per(rx_dbm))) {
        ++st.rx_lost;
        ++frames_lost_;
        ++drops_.erasure;
        if (trace_ != nullptr) {
          trace_->record(events_.now(), obs::Category::kFault,
                         obs::Event::kDropErasure,
                         static_cast<RadioId>(c.slot) + 1, from);
        }
        continue;
      }
    } else if (cfg_.pathloss_cache && !pair_cache_.empty()) {
      rx_dbm =
          pair_cached_rx_dbm(self, c.slot, tx_power_dbm, c.dist_sq, tx_pos);
    } else {
      rx_dbm = survivor_rx_dbm(c.slot, tx_power_dbm, c.dist_sq, tx_pos);
    }
    RxInfo info;
    info.rssi_dbm = rx_dbm;
    info.time = events_.now();
    info.channel = channel;
    ++st.frames_received;
    ++deliveries_;
    if (trace_ != nullptr) {
      trace_->record(events_.now(), obs::Category::kMedium,
                     obs::Event::kDeliver, static_cast<RadioId>(c.slot) + 1,
                     from);
    }
    st.sink->on_frame(frame, info);
  }
}

void Medium::deliver(RadioId from, const dot11::Frame& frame,
                     std::uint8_t channel, Position tx_pos,
                     double tx_power_dbm, support::Rng* fault_rng) {
  if (cfg_.spatial_grid && cfg_.batched_fanout && !cells_.empty()) {
    deliver_batched(from, frame, channel, tx_pos, tx_power_dbm, fault_rng);
    return;
  }

  // Reference paths (Config toggles): gather + std::sort over the grid, or
  // the legacy full scan — exact per-candidate math either way. Snapshot
  // receiver candidates first: a sink callback may attach/detach radios.
  // The member scratch vector is reused across calls; reentrant delivery (a
  // sink pumping the event queue) falls back to a local.
  std::vector<Candidate> local;
  std::vector<Candidate>& targets =
      deliver_depth_ == 0 ? deliver_scratch_ : local;
  targets.clear();
  ++deliver_depth_;
  struct DepthGuard {
    int& depth;
    ~DepthGuard() { --depth; }
  } guard{deliver_depth_};

  if (cfg_.spatial_grid && !cells_.empty()) {
    // Probe only the cells overlapping the transmission's own range box.
    const double r = propagation_.max_range(tx_power_dbm);
    const std::int64_t cx0 = cell_coord(tx_pos.x - r);
    const std::int64_t cx1 = cell_coord(tx_pos.x + r);
    const std::int64_t cy0 = cell_coord(tx_pos.y - r);
    const std::int64_t cy1 = cell_coord(tx_pos.y + r);
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
        const auto cell = cells_.find(cell_key(cx, cy));
        if (cell == cells_.end()) continue;
        for (const std::uint32_t slot : cell->second) {
          const RadioState& st = slots_[slot];
          const RadioId id = static_cast<RadioId>(slot) + 1;
          if (id == from || st.channel != channel || st.sink == nullptr) {
            continue;
          }
          targets.push_back({id, slot});
        }
      }
    }
    // Buckets come back in hash order; sort so the fanout matches the
    // legacy id-ordered scan bit for bit.
    std::sort(targets.begin(), targets.end(),
              [](const Candidate& a, const Candidate& b) { return a.id < b.id; });
  } else {
    targets.reserve(active_slots_.size());
    for (const std::uint32_t slot : active_slots_) {
      const RadioState& st = slots_[slot];
      const RadioId id = static_cast<RadioId>(slot) + 1;
      if (id == from || st.channel != channel || st.sink == nullptr) continue;
      targets.push_back({id, slot});
    }
  }

  // Candidate slots stay valid until the topology changes; only after a
  // sink callback attaches or detaches a radio do we pay the id lookup
  // again (a detached candidate is skipped, as before).
  const std::uint64_t epoch = topology_epoch_;
  for (const Candidate& c : targets) {
    std::uint32_t slot = c.slot;
    if (topology_epoch_ != epoch) {
      slot = slot_of(c.id);
      if (slot == kNoSlot) continue;  // detached by an earlier callback
    }
    auto& st = slots_[slot];
    const double d = distance(tx_pos, st.pos);
    if (!propagation_.deliverable(tx_power_dbm, d)) continue;
    const double rx_dbm = propagation_.rx_power_dbm(tx_power_dbm, d);
    if (fault_rng != nullptr &&
        fault_rng->chance(frame.header.addr1.is_multicast()
                              ? fault_.link_loss(rx_dbm)
                              : fault_.per(rx_dbm))) {
      // Erased on this link. Broadcasts eat the full loss (SNR-derived PER
      // plus the ambient collision floor); unicast frames already paid the
      // ambient floor in the ACK-driven retry loop at TX, so only the
      // edge-of-range SNR loss — which no retransmission repairs — applies
      // here. Draws consume from the transmission's own stream in sorted
      // receiver order, keeping lossy runs bit-identical.
      ++st.rx_lost;
      ++frames_lost_;
      ++drops_.erasure;
      if (trace_ != nullptr) {
        trace_->record(events_.now(), obs::Category::kFault,
                       obs::Event::kDropErasure, c.id, from);
      }
      continue;
    }
    RxInfo info;
    info.rssi_dbm = rx_dbm;
    info.time = events_.now();
    info.channel = channel;
    ++st.frames_received;
    ++deliveries_;
    if (trace_ != nullptr) {
      trace_->record(events_.now(), obs::Category::kMedium,
                     obs::Event::kDeliver, c.id, from);
    }
    FrameSink* sink = st.sink;
    sink->on_frame(frame, info);
  }
}

// --- Radio handle methods ---

Position Radio::position() const { return medium_->state(id_).pos; }
void Radio::set_position(Position p) { medium_->set_position(id_, p); }
std::uint8_t Radio::channel() const { return medium_->state(id_).channel; }
void Radio::set_channel(std::uint8_t ch) { medium_->set_channel(id_, ch); }
double Radio::tx_power_dbm() const { return medium_->state(id_).tx_power_dbm; }
void Radio::set_tx_power_dbm(double dbm) { medium_->set_tx_power(id_, dbm); }
void Radio::set_sink(FrameSink* sink) { medium_->set_sink(id_, sink); }

void Radio::transmit(const dot11::Frame& frame) {
  medium_->transmit(id_, frame);
}

std::size_t Radio::tx_backlog() const { return medium_->state(id_).tx_backlog; }

void Radio::clear_tx_queue() {
  auto& st = medium_->state(id_);
  ++st.queue_epoch;
  st.tx_backlog = 0;
  st.tx_busy_until = medium_->events_.now();
}

std::uint64_t Radio::frames_sent() const {
  return medium_->state(id_).frames_sent;
}
std::uint64_t Radio::frames_received() const {
  return medium_->state(id_).frames_received;
}
std::uint64_t Radio::tx_retries() const {
  return medium_->state(id_).tx_retries;
}
std::uint64_t Radio::frames_lost() const {
  return medium_->state(id_).rx_lost;
}

}  // namespace cityhunter::medium
