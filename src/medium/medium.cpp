#include "medium/medium.h"

#include <stdexcept>

#include "dot11/serialize.h"
#include "dot11/timing.h"

namespace cityhunter::medium {

Medium::Medium(EventQueue& events) : Medium(events, Config()) {}

Medium::Medium(EventQueue& events, Config cfg)
    : events_(events), cfg_(cfg), propagation_(cfg.propagation) {}

Radio Medium::attach(Position pos, std::uint8_t channel, double tx_power_dbm,
                     FrameSink* sink) {
  const RadioId id = next_id_++;
  RadioState st;
  st.pos = pos;
  st.channel = channel;
  st.tx_power_dbm = tx_power_dbm;
  st.sink = sink;
  st.tx_busy_until = events_.now();
  radios_.emplace(id, std::move(st));
  return Radio(this, id);
}

void Medium::detach(Radio& radio) {
  radios_.erase(radio.id_);
  radio.medium_ = nullptr;
}

Medium::RadioState& Medium::state(RadioId id) {
  auto it = radios_.find(id);
  if (it == radios_.end()) {
    throw std::logic_error("Medium: use of detached radio");
  }
  return it->second;
}

const Medium::RadioState& Medium::state(RadioId id) const {
  auto it = radios_.find(id);
  if (it == radios_.end()) {
    throw std::logic_error("Medium: use of detached radio");
  }
  return it->second;
}

void Medium::transmit(RadioId from, const dot11::Frame& frame) {
  auto& st = state(from);
  const std::size_t bytes = dot11::wire_size(frame);
  const SimTime air =
      dot11::airtime(bytes, cfg_.mgmt_rate_mbps) * cfg_.contention_factor;
  const SimTime start = std::max(events_.now(), st.tx_busy_until);
  const SimTime done = start + air;
  st.tx_busy_until = done;
  ++st.tx_backlog;
  ++transmissions_;

  // Capture everything by value: the sender may move or detach before the
  // frame lands. Queue epoch lets clear_tx_queue() abort in-flight sends.
  auto bytes_out = dot11::serialize(frame);
  const std::uint64_t epoch = st.queue_epoch;
  const Position tx_pos = st.pos;
  const double tx_dbm = st.tx_power_dbm;
  const std::uint8_t channel = st.channel;
  events_.schedule_at(done, [this, from, epoch, bytes_out = std::move(bytes_out),
                             channel, tx_pos, tx_dbm] {
    auto it = radios_.find(from);
    if (it != radios_.end()) {
      if (it->second.queue_epoch != epoch) return;  // queue was cleared
      --it->second.tx_backlog;
      ++it->second.frames_sent;
    }
    deliver(from, bytes_out, channel, tx_pos, tx_dbm);
  });
}

void Medium::deliver(RadioId from, const std::vector<std::uint8_t>& bytes,
                     std::uint8_t channel, Position tx_pos,
                     double tx_power_dbm) {
  const auto frame = dot11::parse(bytes);
  if (!frame) return;  // corrupted on the wire — cannot happen here, but a
                       // real receiver drops bad-FCS frames silently

  // Snapshot receiver ids first: a sink callback may attach/detach radios.
  std::vector<RadioId> targets;
  targets.reserve(radios_.size());
  for (const auto& [id, st] : radios_) {
    if (id == from || st.channel != channel || st.sink == nullptr) continue;
    targets.push_back(id);
  }
  for (const RadioId id : targets) {
    auto it = radios_.find(id);
    if (it == radios_.end()) continue;  // detached by an earlier callback
    auto& st = it->second;
    const double d = distance(tx_pos, st.pos);
    if (!propagation_.deliverable(tx_power_dbm, d)) continue;
    RxInfo info;
    info.rssi_dbm = propagation_.rx_power_dbm(tx_power_dbm, d);
    info.time = events_.now();
    info.channel = channel;
    ++st.frames_received;
    ++deliveries_;
    FrameSink* sink = st.sink;
    sink->on_frame(*frame, info);
  }
}

// --- Radio handle methods ---

Position Radio::position() const { return medium_->state(id_).pos; }
void Radio::set_position(Position p) { medium_->state(id_).pos = p; }
std::uint8_t Radio::channel() const { return medium_->state(id_).channel; }
void Radio::set_channel(std::uint8_t ch) { medium_->state(id_).channel = ch; }
double Radio::tx_power_dbm() const { return medium_->state(id_).tx_power_dbm; }
void Radio::set_tx_power_dbm(double dbm) {
  medium_->state(id_).tx_power_dbm = dbm;
}
void Radio::set_sink(FrameSink* sink) { medium_->state(id_).sink = sink; }

void Radio::transmit(const dot11::Frame& frame) {
  medium_->transmit(id_, frame);
}

std::size_t Radio::tx_backlog() const { return medium_->state(id_).tx_backlog; }

void Radio::clear_tx_queue() {
  auto& st = medium_->state(id_);
  ++st.queue_epoch;
  st.tx_backlog = 0;
  st.tx_busy_until = medium_->events_.now();
}

std::uint64_t Radio::frames_sent() const {
  return medium_->state(id_).frames_sent;
}
std::uint64_t Radio::frames_received() const {
  return medium_->state(id_).frames_received;
}

}  // namespace cityhunter::medium
