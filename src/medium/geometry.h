// 2-D geometry for node placement and mobility (metres).
#pragma once

#include <cmath>

namespace cityhunter::medium {

struct Position {
  double x = 0.0;  // metres
  double y = 0.0;

  bool operator==(const Position&) const = default;

  Position operator+(const Position& o) const { return {x + o.x, y + o.y}; }
  Position operator-(const Position& o) const { return {x - o.x, y - o.y}; }
  Position operator*(double k) const { return {x * k, y * k}; }

  double norm() const { return std::hypot(x, y); }
};

inline double distance(const Position& a, const Position& b) {
  return (a - b).norm();
}

/// Point on the segment a→b at parameter t in [0,1].
inline Position lerp(const Position& a, const Position& b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

}  // namespace cityhunter::medium
