// 2-D geometry for node placement and mobility (metres).
#pragma once

#include <cmath>

namespace cityhunter::medium {

struct Position {
  double x = 0.0;  // metres
  double y = 0.0;

  bool operator==(const Position&) const = default;

  Position operator+(const Position& o) const { return {x + o.x, y + o.y}; }
  Position operator-(const Position& o) const { return {x - o.x, y - o.y}; }
  Position operator*(double k) const { return {x * k, y * k}; }

  double norm() const { return std::hypot(x, y); }
};

inline double distance(const Position& a, const Position& b) {
  return (a - b).norm();
}

/// Squared distance — the batched delivery pipeline filters candidates in
/// this domain against a precomputed range² so no sqrt (or the log10 behind
/// it) is ever evaluated for radios that turn out to be out of range.
inline double distance_sq(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Point on the segment a→b at parameter t in [0,1].
inline Position lerp(const Position& a, const Position& b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

}  // namespace cityhunter::medium
