#include "medium/propagation.h"

#include <algorithm>
#include <cmath>

namespace cityhunter::medium {

double LogDistancePathLoss::rx_power_dbm(double tx_power_dbm, double d) const {
  const double dist = std::max(d, 1.0);  // clamp inside reference distance
  const double pl =
      cfg_.reference_loss_db + 10.0 * cfg_.exponent * std::log10(dist);
  return tx_power_dbm - pl;
}

double LogDistancePathLoss::max_range(double tx_power_dbm) const {
  // Solve rx_power(d) = sensitivity for d.
  const double budget_db =
      tx_power_dbm - cfg_.reference_loss_db - cfg_.rx_sensitivity_dbm;
  if (budget_db <= 0.0) return 1.0;
  return std::pow(10.0, budget_db / (10.0 * cfg_.exponent));
}

double dbm_from_milliwatts(double mw) { return 10.0 * std::log10(mw); }

}  // namespace cityhunter::medium
