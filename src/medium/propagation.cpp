#include "medium/propagation.h"

#include <algorithm>
#include <cmath>

namespace cityhunter::medium {

double LogDistancePathLoss::rx_power_dbm(double tx_power_dbm, double d) const {
  const double dist = std::max(d, 1.0);  // clamp inside reference distance
  const double pl =
      cfg_.reference_loss_db + 10.0 * cfg_.exponent * std::log10(dist);
  return tx_power_dbm - pl;
}

double LogDistancePathLoss::max_range(double tx_power_dbm) const {
  // Solve rx_power(d) = sensitivity for d.
  const double budget_db =
      tx_power_dbm - cfg_.reference_loss_db - cfg_.rx_sensitivity_dbm;
  if (budget_db <= 0.0) return 1.0;
  return std::pow(10.0, budget_db / (10.0 * cfg_.exponent));
}

PathLossLut::PathLossLut(const LogDistancePathLoss::Config& cfg,
                         double max_dist_m) {
  ref_loss_db_ = cfg.reference_loss_db;
  const double span = std::max(1.0, max_dist_m);
  const double max_s = span * span;
  int octaves = 1;
  while (std::ldexp(1.0, octaves) < max_s && octaves < 128) ++octaves;
  max_dist_sq_ = std::ldexp(1.0, octaves);

  const std::size_t n = std::size_t(octaves) << kSegBitsLog2;
  seg_.resize(n);
  const double c10 = 5.0 * cfg.exponent;        // PL = ref + c10·log10(s)
  const double c_ln = c10 / std::log(10.0);     // dPL/d(ln s)
  double worst = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Bit-exact segment endpoints: the same (exponent, top-mantissa-bits)
    // decomposition rx_power_dbm_sq() uses for the lookup.
    const auto knot = [](std::size_t i) {
      return std::bit_cast<double>(
          ((std::uint64_t{1023} << kSegBitsLog2) + i) << (52 - kSegBitsLog2));
    };
    const double s0 = knot(k);
    const double s1 = knot(k + 1);
    const double f0 = ref_loss_db_ + c10 * std::log10(s0);
    const double f1 = ref_loss_db_ + c10 * std::log10(s1);
    const double b = (f1 - f0) / (s1 - s0);
    seg_[k] = {f0 - b * s0, b};
    if (b > 0.0) {
      // PL is concave in s, so the chord sits below the curve; the gap peaks
      // where the tangent parallels the chord, at s* = c_ln / b.
      const double sm = c_ln / b;
      const double gap =
          (ref_loss_db_ + c10 * std::log10(sm)) - (seg_[k].a + b * sm);
      worst = std::max(worst, gap);
    }
  }
  max_error_db_ = worst;
}

double dbm_from_milliwatts(double mw) { return 10.0 * std::log10(mw); }

}  // namespace cityhunter::medium
