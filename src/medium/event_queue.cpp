#include "medium/event_queue.h"

#include <stdexcept>

namespace cityhunter::medium {

EventHandle EventQueue::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    // Spell out both times: retry/backoff scheduling bugs show up as
    // near-miss negative delays, and "in the past" alone is undebuggable.
    throw std::invalid_argument(
        "EventQueue: scheduling in the past (now=" + now_.str() +
        ", requested=" + t.str() + ")");
  }
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{t, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

void EventQueue::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    step();
  }
  now_ = until;
}

void EventQueue::run_all() {
  while (step()) {
  }
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move out via const_cast on the handle —
  // safe because we pop immediately.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  if (*ev.alive) ev.fn();
  return true;
}

}  // namespace cityhunter::medium
