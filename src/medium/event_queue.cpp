#include "medium/event_queue.h"

#include <stdexcept>
#include <utility>

namespace cityhunter::medium {

void EventQueue::push(SimTime t, Callback fn, std::shared_ptr<bool> alive) {
  if (t < now_) {
    // Typed, with both times attached: retry/backoff scheduling bugs show up
    // as near-miss negative delays, and the campaign supervisor classifies
    // the error instead of pattern-matching a what() string.
    throw PastScheduleError(now_, t);
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot].fn = std::move(fn);
    slab_[slot].alive = std::move(alive);
    ++stats_.slab_reuses;
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(Event{std::move(fn), std::move(alive)});
    stats_.slab_slots = slab_.size();
  }
  heap_.push_back(HeapEntry{t, next_seq_++, slot});
  sift_up(heap_.size() - 1);
  ++stats_.scheduled;
  if (heap_.size() > stats_.peak_pending) stats_.peak_pending = heap_.size();
}

void EventQueue::post_at(SimTime t, Callback fn) {
  push(t, std::move(fn), nullptr);
}

EventHandle EventQueue::schedule_at(SimTime t, Callback fn) {
  auto alive = std::make_shared<bool>(true);
  push(t, std::move(fn), alive);
  return EventHandle(std::move(alive));
}

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty() && heap_.front().time <= until) {
    step();
  }
  now_ = until;
}

void EventQueue::run_all() {
  while (step()) {
  }
}

void EventQueue::arm_guard(RunGuard guard) {
  guard_ = guard;
  guard_armed_ = guard.max_events > 0 || guard.deadline_s > 0.0 ||
                 guard.cancel != nullptr;
  guard_events_ = 0;
  if (guard_.deadline_s > 0.0) {
    guard_start_ = std::chrono::steady_clock::now();
  }
}

void EventQueue::check_guard() {
  if (guard_.cancel != nullptr &&
      guard_.cancel->load(std::memory_order_relaxed)) {
    throw RunAbortError(RunAbortError::Kind::kCancelled,
                        "EventQueue: run cancelled after " +
                            std::to_string(guard_events_) +
                            " events (sim time " + now_.str() + ")");
  }
  if (guard_.max_events > 0 && guard_events_ >= guard_.max_events) {
    throw RunAbortError(RunAbortError::Kind::kEventBudgetExceeded,
                        "EventQueue: event budget of " +
                            std::to_string(guard_.max_events) +
                            " exhausted (sim time " + now_.str() + ")");
  }
  if (guard_.deadline_s > 0.0 &&
      guard_events_ % kDeadlineCheckStride == 0) {
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      guard_start_)
            .count();
    if (elapsed_s > guard_.deadline_s) {
      throw RunAbortError(RunAbortError::Kind::kDeadlineExceeded,
                          "EventQueue: wallclock deadline of " +
                              std::to_string(guard_.deadline_s) +
                              " s exceeded after " +
                              std::to_string(guard_events_) +
                              " events (sim time " + now_.str() + ")");
    }
  }
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  if (guard_armed_) {
    // Before the pop: a tripped guard abandons the run with the queue state
    // intact, and the throw unwinds out of run_until() into the supervisor.
    check_guard();
    ++guard_events_;
  }
  const HeapEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);

  now_ = top.time;
  // Move the callable out of the slab and release the slot BEFORE invoking:
  // the callback may schedule new events, which can grow the slab and
  // invalidate references into it.
  Event& ev = slab_[top.slot];
  Callback fn = std::move(ev.fn);
  const bool fire = !ev.alive || *ev.alive;
  ev.alive.reset();
  free_slots_.push_back(top.slot);
  ++stats_.processed;
  if (fire) fn();
  return true;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t best = left;
    if (right < n && earlier(heap_[right], heap_[left])) best = right;
    if (!earlier(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace cityhunter::medium
