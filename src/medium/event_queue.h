// Discrete-event simulation core.
//
// A single-threaded priority queue of (time, sequence, closure). Sequence
// numbers make same-time events FIFO, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "support/sim_time.h"

namespace cityhunter::medium {

using support::SimTime;

/// Handle for cancelling a scheduled event. Cheap to copy; cancelling twice
/// is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (alive_) *alive_ = false;
  }
  bool valid() const { return alive_ != nullptr; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now).
  EventHandle schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after `delay` from now.
  EventHandle schedule_in(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run all events with time <= `until`, advancing now() as they fire.
  /// now() ends at `until` even if the queue drains earlier.
  void run_until(SimTime until);

  /// Run until the queue is empty.
  void run_all();

  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace cityhunter::medium
