// Discrete-event simulation core.
//
// A single-threaded priority queue of (time, sequence, closure). Sequence
// numbers make same-time events FIFO, which keeps runs deterministic.
//
// Hot-path layout: the fat part of an event (its callable, plus the optional
// cancel flag) lives in a slab recycled through a free list, and the binary
// heap orders 24-byte {time, seq, slot} entries — so heap sifts move three
// words, never the callable. Callables are SmallFn (inline storage sized for
// the medium's transmit closure), and the cancel flag is only allocated by
// schedule_at/schedule_in, which hand back an EventHandle; fire-and-forget
// callers use post_at/post_in and pay for neither.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "support/sim_time.h"
#include "support/small_fn.h"

namespace cityhunter::medium {

using support::SimTime;

/// Scheduling an event before now() is always a caller bug (retry/backoff
/// arithmetic gone negative). The structured fields let a supervisor report
/// the near-miss precisely instead of forwarding an opaque string.
class PastScheduleError : public std::invalid_argument {
 public:
  PastScheduleError(SimTime now, SimTime requested)
      : std::invalid_argument("EventQueue: scheduling in the past (now=" +
                              now.str() + ", requested=" + requested.str() +
                              ")"),
        now_(now),
        requested_(requested) {}

  SimTime now() const { return now_; }
  SimTime requested() const { return requested_; }

 private:
  SimTime now_;
  SimTime requested_;
};

/// Thrown out of step()/run_until() when a RunGuard limit trips. Carries a
/// machine-readable kind so the campaign supervisor can classify the failure
/// (deadline_exceeded / event_budget_exceeded / cancelled) without string
/// matching.
class RunAbortError : public std::runtime_error {
 public:
  enum class Kind { kDeadlineExceeded, kEventBudgetExceeded, kCancelled };

  RunAbortError(Kind kind, std::string what)
      : std::runtime_error(std::move(what)), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Cooperative run limits, checked at event-queue granularity: the event
/// budget and cancel flag on every step, the wallclock deadline every
/// kDeadlineCheckStride steps (a steady_clock read per event would dominate
/// the ~100 ns event dispatch). Zero/null fields disable each limit; a
/// default RunGuard never trips.
struct RunGuard {
  /// Max events executed after arming (0 = unlimited).
  std::uint64_t max_events = 0;
  /// Wallclock budget in seconds from arm_guard() (0 = unlimited).
  double deadline_s = 0.0;
  /// External cancellation flag, polled with relaxed loads (nullptr = none).
  const std::atomic<bool>* cancel = nullptr;
};

/// Handle for cancelling a scheduled event. Cheap to copy; cancelling twice
/// is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (alive_) *alive_ = false;
  }
  bool valid() const { return alive_ != nullptr; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  /// Inline capacity fits the medium's finish-transmission closure (two
  /// pointers) with room to spare for multi-capture client callbacks.
  using Callback = support::SmallFn<48>;

  /// Lifetime counters, maintained unconditionally (plain integer stores —
  /// no observable cost on the hot path). `scheduled` counts every accepted
  /// push; `processed` counts executed steps (cancelled events included:
  /// they still pass through the heap).
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t processed = 0;
    std::uint64_t peak_pending = 0;
    std::uint64_t slab_slots = 0;   // distinct slab entries ever allocated
    std::uint64_t slab_reuses = 0;  // pushes served from the free list

    /// Fraction of pushes that recycled an existing slab slot.
    double slab_reuse_ratio() const {
      return scheduled ? static_cast<double>(slab_reuses) /
                             static_cast<double>(scheduled)
                       : 0.0;
    }

    bool operator==(const Stats&) const = default;
  };

  SimTime now() const { return now_; }

  /// Fire-and-forget: schedule `fn` at absolute time `t` (must be >= now).
  /// No cancel flag is allocated — use this on hot paths.
  void post_at(SimTime t, Callback fn);

  /// Fire-and-forget `fn` after `delay` from now.
  void post_in(SimTime delay, Callback fn) {
    post_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `t` (must be >= now) and return a
  /// cancellation handle (allocates the shared cancel flag).
  EventHandle schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` after `delay` from now, with a cancellation handle.
  EventHandle schedule_in(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Arm (or, with a default RunGuard, disarm) the cooperative run limits.
  /// The deadline clock and event count start here. Limits fire from inside
  /// step() as RunAbortError — the run's stack unwinds through run_until(),
  /// and the supervisor classifies the abort.
  void arm_guard(RunGuard guard);

  /// Run all events with time <= `until`, advancing now() as they fire.
  /// now() ends at `until` even if the queue drains earlier.
  void run_until(SimTime until);

  /// Run until the queue is empty.
  void run_all();

  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  std::size_t pending() const { return heap_.size(); }

  const Stats& stats() const { return stats_; }

 private:
  /// Slab-resident part of an event. `alive` is null for post_* events.
  struct Event {
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  /// Heap-resident part: ordering key plus the slab slot index.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// True when `a` fires before `b`.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void push(SimTime t, Callback fn, std::shared_ptr<bool> alive);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  /// Deadline re-check stride: a steady_clock read every event would cost
  /// more than the event dispatch itself; every 2048 events bounds the
  /// overshoot to a few hundred µs of wallclock at worst.
  static constexpr std::uint64_t kDeadlineCheckStride = 2048;
  /// Throws RunAbortError when an armed limit has tripped. Called once per
  /// step, before the event fires.
  void check_guard();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  Stats stats_;
  RunGuard guard_;
  bool guard_armed_ = false;
  std::uint64_t guard_events_ = 0;  // events executed since arm_guard()
  std::chrono::steady_clock::time_point guard_start_{};
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;  // binary min-heap by (time, seq)
};

}  // namespace cityhunter::medium
