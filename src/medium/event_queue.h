// Discrete-event simulation core.
//
// A single-threaded priority queue of (time, sequence, closure). Sequence
// numbers make same-time events FIFO, which keeps runs deterministic.
//
// Hot-path layout: the fat part of an event (its callable, plus the optional
// cancel flag) lives in a slab recycled through a free list, and the binary
// heap orders 24-byte {time, seq, slot} entries — so heap sifts move three
// words, never the callable. Callables are SmallFn (inline storage sized for
// the medium's transmit closure), and the cancel flag is only allocated by
// schedule_at/schedule_in, which hand back an EventHandle; fire-and-forget
// callers use post_at/post_in and pay for neither.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/sim_time.h"
#include "support/small_fn.h"

namespace cityhunter::medium {

using support::SimTime;

/// Handle for cancelling a scheduled event. Cheap to copy; cancelling twice
/// is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (alive_) *alive_ = false;
  }
  bool valid() const { return alive_ != nullptr; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  /// Inline capacity fits the medium's finish-transmission closure (two
  /// pointers) with room to spare for multi-capture client callbacks.
  using Callback = support::SmallFn<48>;

  /// Lifetime counters, maintained unconditionally (plain integer stores —
  /// no observable cost on the hot path). `scheduled` counts every accepted
  /// push; `processed` counts executed steps (cancelled events included:
  /// they still pass through the heap).
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t processed = 0;
    std::uint64_t peak_pending = 0;
    std::uint64_t slab_slots = 0;   // distinct slab entries ever allocated
    std::uint64_t slab_reuses = 0;  // pushes served from the free list

    /// Fraction of pushes that recycled an existing slab slot.
    double slab_reuse_ratio() const {
      return scheduled ? static_cast<double>(slab_reuses) /
                             static_cast<double>(scheduled)
                       : 0.0;
    }

    bool operator==(const Stats&) const = default;
  };

  SimTime now() const { return now_; }

  /// Fire-and-forget: schedule `fn` at absolute time `t` (must be >= now).
  /// No cancel flag is allocated — use this on hot paths.
  void post_at(SimTime t, Callback fn);

  /// Fire-and-forget `fn` after `delay` from now.
  void post_in(SimTime delay, Callback fn) {
    post_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `t` (must be >= now) and return a
  /// cancellation handle (allocates the shared cancel flag).
  EventHandle schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` after `delay` from now, with a cancellation handle.
  EventHandle schedule_in(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run all events with time <= `until`, advancing now() as they fire.
  /// now() ends at `until` even if the queue drains earlier.
  void run_until(SimTime until);

  /// Run until the queue is empty.
  void run_all();

  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  std::size_t pending() const { return heap_.size(); }

  const Stats& stats() const { return stats_; }

 private:
  /// Slab-resident part of an event. `alive` is null for post_* events.
  struct Event {
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  /// Heap-resident part: ordering key plus the slab slot index.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// True when `a` fires before `b`.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void push(SimTime t, Callback fn, std::shared_ptr<bool> alive);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  Stats stats_;
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;  // binary min-heap by (time, seq)
};

}  // namespace cityhunter::medium
