// Radio endpoints attached to the simulated medium.
#pragma once

#include <cstdint>

#include "dot11/frame.h"
#include "medium/geometry.h"
#include "support/sim_time.h"

namespace cityhunter::medium {

using support::SimTime;

/// Per-frame reception metadata (what a radiotap header would carry).
struct RxInfo {
  double rssi_dbm = 0.0;
  SimTime time;
  std::uint8_t channel = 1;
};

/// Receiver callback. The medium delivers *every* decodable frame on the
/// radio's channel (monitor-mode semantics); non-promiscuous consumers filter
/// on addr1 themselves, exactly as a NIC would.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void on_frame(const dot11::Frame& frame, const RxInfo& info) = 0;
};

using RadioId = std::uint64_t;

class Medium;

/// Lightweight handle to a radio owned by the Medium. Copyable; all state
/// lives in the Medium so handles stay valid until detach().
///
/// Radio ids are issued monotonically and never reused; the Medium's slot
/// table keys off id − 1 forever. Setters that affect delivery eligibility
/// (set_channel / set_sink / set_position) are routed through the Medium so
/// its flat SoA mirror — which the batched fanout reads instead of the
/// per-radio state — stays in sync.
class Radio {
 public:
  Radio() = default;

  RadioId id() const { return id_; }
  bool valid() const { return medium_ != nullptr; }

  Position position() const;
  void set_position(Position p);
  std::uint8_t channel() const;
  void set_channel(std::uint8_t ch);
  double tx_power_dbm() const;
  void set_tx_power_dbm(double dbm);
  void set_sink(FrameSink* sink);

  /// Enqueue a frame for transmission. Transmissions from one radio are
  /// serialized: each occupies the air for its airtime (scaled by the
  /// medium's contention factor) before the next may start.
  void transmit(const dot11::Frame& frame);

  /// Frames waiting in this radio's transmit queue (including in flight).
  std::size_t tx_backlog() const;

  /// Drop all queued-but-unsent frames (e.g. the probed client moved away —
  /// the attacker aborts the response train).
  void clear_tx_queue();

  std::uint64_t frames_sent() const;
  std::uint64_t frames_received() const;
  /// Fault-injection counters (zero while the medium's FaultModel is off):
  /// 802.11 retransmissions this radio paid for, and frames erased on their
  /// way to this radio.
  std::uint64_t tx_retries() const;
  std::uint64_t frames_lost() const;

 private:
  friend class Medium;
  Radio(Medium* medium, RadioId id) : medium_(medium), id_(id) {}
  Medium* medium_ = nullptr;
  RadioId id_ = 0;
};

}  // namespace cityhunter::medium
