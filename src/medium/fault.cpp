#include "medium/fault.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cityhunter::medium {

namespace {

/// SplitMix64 finalizer — the same mixer Rng uses for seeding, reproduced
/// here to hash the (seed, radio, sequence) key into a stream seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultModel::FaultModel(Config cfg) : cfg_(cfg) {
  if (!(cfg.per_width_db > 0.0)) {
    throw std::invalid_argument("FaultModel: per_width_db must be positive");
  }
  if (!(cfg.ambient_loss >= 0.0 && cfg.ambient_loss <= 1.0)) {
    throw std::invalid_argument("FaultModel: ambient_loss must be in [0,1]");
  }
  if (!(cfg.corruption_rate >= 0.0 && cfg.corruption_rate <= 1.0)) {
    throw std::invalid_argument("FaultModel: corruption_rate must be in [0,1]");
  }
  if (cfg.max_bit_flips < 1) {
    throw std::invalid_argument("FaultModel: max_bit_flips must be >= 1");
  }
  if (cfg.retry_limit < 0) {
    throw std::invalid_argument("FaultModel: retry_limit must be >= 0");
  }
  if (cfg.cw_min < 0 || cfg.cw_max < cfg.cw_min) {
    throw std::invalid_argument("FaultModel: need 0 <= cw_min <= cw_max");
  }
  if (!(cfg.slot_time_us >= 0.0)) {
    throw std::invalid_argument("FaultModel: slot_time_us must be >= 0");
  }
}

double FaultModel::per(double rx_power_dbm) const {
  const double snr = snr_db(rx_power_dbm);
  return 1.0 / (1.0 + std::exp((snr - cfg_.per_snr_mid_db) /
                               cfg_.per_width_db));
}

double FaultModel::link_loss(double rx_power_dbm) const {
  const double p = per(rx_power_dbm);
  return cfg_.ambient_loss + (1.0 - cfg_.ambient_loss) * p;
}

support::Rng FaultModel::stream(std::uint64_t tx_radio,
                                std::uint64_t frame_seq) const {
  // One stream per (seed, tx radio, frame sequence). Per-receiver erasure
  // draws consume from it sequentially in the medium's fanout order, which
  // is pinned to ascending radio id on every delivery path (the batched
  // pipeline merges slot-sorted grid buckets, and slots never recycle, so
  // slot order ≡ id order): each draw is therefore also keyed by the
  // receiver's rank, and lossy runs are bit-identical at any thread count
  // and under any Config delivery-mode toggle.
  return support::Rng(mix(cfg_.seed ^ mix(tx_radio ^ mix(frame_seq))));
}

void FaultModel::corrupt(std::vector<std::uint8_t>& wire,
                         support::Rng& rng) const {
  if (wire.empty()) return;
  const auto flips =
      static_cast<int>(rng.uniform_int(1, cfg_.max_bit_flips));
  for (int i = 0; i < flips; ++i) {
    const auto bit = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) * 8 - 1));
    wire[bit / 8] = static_cast<std::uint8_t>(wire[bit / 8] ^
                                              (1u << (bit % 8)));
  }
}

SimTime FaultModel::backoff(int attempt, support::Rng& rng) const {
  // cw doubles per retry: cw(k) = min(cw_max, (cw_min + 1) * 2^k - 1).
  const int shift = std::min(attempt, 20);  // avoid overflow for huge limits
  const std::int64_t grown =
      (static_cast<std::int64_t>(cfg_.cw_min) + 1) << shift;
  const std::int64_t cw =
      std::min<std::int64_t>(cfg_.cw_max, grown - 1);
  const std::int64_t slots = rng.uniform_int(0, cw);
  return SimTime::microseconds(static_cast<std::int64_t>(
      static_cast<double>(slots) * cfg_.slot_time_us));
}

}  // namespace cityhunter::medium
