// Radio propagation: log-distance path loss.
#pragma once

#include "medium/geometry.h"

namespace cityhunter::medium {

/// Log-distance path-loss model:
///   PL(d) = PL(d0) + 10 n log10(d / d0)
/// with d0 = 1 m. Defaults approximate 2.4 GHz indoor-open propagation: the
/// paper's Raspberry Pi attacker transmits at 100 mW (20 dBm) and reaches
/// clients within a few tens of metres.
class LogDistancePathLoss {
 public:
  struct Config {
    double reference_loss_db = 40.0;  // PL at 1 m, 2.4 GHz
    /// Crowded indoor environments (bodies absorb 2.4 GHz): with 20 dBm TX
    /// and -84 dBm sensitivity this yields ~60 m of usable range, matching
    /// a Raspberry Pi attacker in a packed passage.
    double exponent = 3.6;
    double rx_sensitivity_dbm = -84.0;
  };

  LogDistancePathLoss() : cfg_(Config()) {}
  explicit LogDistancePathLoss(Config cfg) : cfg_(cfg) {}

  /// Received power at distance `d` metres for `tx_power_dbm`.
  double rx_power_dbm(double tx_power_dbm, double d) const;

  /// Whether a frame sent at `tx_power_dbm` is decodable at distance `d`.
  bool deliverable(double tx_power_dbm, double d) const {
    return rx_power_dbm(tx_power_dbm, d) >= cfg_.rx_sensitivity_dbm;
  }

  /// Maximum decodable distance for `tx_power_dbm`.
  double max_range(double tx_power_dbm) const;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

/// dBm for a milliwatt power (100 mW -> 20 dBm), the unit the paper quotes.
double dbm_from_milliwatts(double mw);

}  // namespace cityhunter::medium
