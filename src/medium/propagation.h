// Radio propagation: log-distance path loss.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "medium/geometry.h"

namespace cityhunter::medium {

/// Log-distance path-loss model:
///   PL(d) = PL(d0) + 10 n log10(d / d0)
/// with d0 = 1 m. Defaults approximate 2.4 GHz indoor-open propagation: the
/// paper's Raspberry Pi attacker transmits at 100 mW (20 dBm) and reaches
/// clients within a few tens of metres.
class LogDistancePathLoss {
 public:
  struct Config {
    double reference_loss_db = 40.0;  // PL at 1 m, 2.4 GHz
    /// Crowded indoor environments (bodies absorb 2.4 GHz): with 20 dBm TX
    /// and -84 dBm sensitivity this yields ~60 m of usable range, matching
    /// a Raspberry Pi attacker in a packed passage.
    double exponent = 3.6;
    double rx_sensitivity_dbm = -84.0;
  };

  LogDistancePathLoss() : cfg_(Config()) {}
  explicit LogDistancePathLoss(Config cfg) : cfg_(cfg) {}

  /// Received power at distance `d` metres for `tx_power_dbm`.
  double rx_power_dbm(double tx_power_dbm, double d) const;

  /// Whether a frame sent at `tx_power_dbm` is decodable at distance `d`.
  bool deliverable(double tx_power_dbm, double d) const {
    return rx_power_dbm(tx_power_dbm, d) >= cfg_.rx_sensitivity_dbm;
  }

  /// Maximum decodable distance for `tx_power_dbm`.
  double max_range(double tx_power_dbm) const;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

/// Monotone piecewise-linear approximation of log-distance path loss as a
/// function of *squared* distance: PL(s) = ref + 5 n log10(s) with s = d².
/// The batched delivery pipeline already has s from its range² filter, so the
/// LUT replaces the hot path's hypot + log10 with one table lookup and one
/// fused multiply-add.
///
/// Segments are addressed directly from the bit pattern of the IEEE double:
/// the exponent plus the top kSegBitsLog2 mantissa bits select one of
/// 2^kSegBitsLog2 equal-ratio segments per octave of s. Each segment stores
/// the chord of PL between its bit-exact endpoints, so the approximation is
/// continuous, strictly increasing in s (PL is strictly increasing and chords
/// interpolate its knots), and below the exact curve by at most
/// max_error_db() — computed analytically per segment at construction and,
/// with 32 segments/octave and n = 3.6, about 4.5e-4 dB: far below the 1 dB
/// RSSI quantization any 802.11 consumer sees.
class PathLossLut {
 public:
  /// log2 of segments per octave of squared distance (32/octave).
  static constexpr int kSegBitsLog2 = 5;

  PathLossLut() = default;

  /// Builds a table covering s ∈ [1, 2^⌈log2(max_dist_m²)⌉].
  PathLossLut(const LogDistancePathLoss::Config& cfg, double max_dist_m);

  bool covers(double dist_sq) const {
    return !seg_.empty() && dist_sq <= max_dist_sq_;
  }

  /// Approximate received power for a squared distance. dist_sq values below
  /// 1 m² clamp to the reference loss, matching the exact model's clamp.
  double rx_power_dbm_sq(double tx_power_dbm, double dist_sq) const {
    if (dist_sq <= 1.0) return tx_power_dbm - ref_loss_db_;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(dist_sq);
    std::size_t idx =
        (bits >> (52 - kSegBitsLog2)) - (std::uint64_t{1023} << kSegBitsLog2);
    if (idx >= seg_.size()) idx = seg_.size() - 1;  // filter keeps s in range
    const Seg& g = seg_[idx];
    return tx_power_dbm - (g.a + g.b * dist_sq);
  }

  /// Largest (exact − approx) path-loss gap over the covered range, in dB.
  double max_error_db() const { return max_error_db_; }
  double max_dist_sq() const { return max_dist_sq_; }

  struct Seg {
    double a = 0.0;  // chord intercept, dB
    double b = 0.0;  // chord slope, dB per m²
  };

  /// Raw segment table + reference clamp for the vector lanes in
  /// medium/fanout_simd: the 4-wide evaluation reproduces rx_power_dbm_sq()
  /// bit for bit (same bit decomposition, same mul-then-add chord — no FMA),
  /// so SIMD and scalar fanouts are interchangeable.
  const Seg* segments() const { return seg_.data(); }
  std::size_t segment_count() const { return seg_.size(); }
  double reference_loss_db() const { return ref_loss_db_; }

 private:
  std::vector<Seg> seg_;
  double ref_loss_db_ = 0.0;
  double max_dist_sq_ = 0.0;
  double max_error_db_ = 0.0;
};

/// dBm for a milliwatt power (100 mW -> 20 dBm), the unit the paper quotes.
double dbm_from_milliwatts(double mw);

}  // namespace cityhunter::medium
