// Passive monitor sink that serializes every frame it hears into a pcap
// file — attach one radio, point it at a path, open the result in Wireshark.
#pragma once

#include <string>

#include "dot11/pcap.h"
#include "medium/radio.h"

namespace cityhunter::medium {

class PcapRecorder : public FrameSink {
 public:
  explicit PcapRecorder(const std::string& path) : writer_(path) {}

  void on_frame(const dot11::Frame& frame, const RxInfo& info) override {
    writer_.write(frame, info.time);
  }

  dot11::PcapWriter& writer() { return writer_; }

 private:
  dot11::PcapWriter writer_;
};

}  // namespace cityhunter::medium
