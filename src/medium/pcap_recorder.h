// Passive monitor sink that serializes every frame it hears into a pcap
// file — attach one radio, point it at a path, open the result in Wireshark.
#pragma once

#include <string>

#include "dot11/pcap.h"
#include "medium/radio.h"

namespace cityhunter::medium {

class PcapRecorder : public FrameSink {
 public:
  explicit PcapRecorder(const std::string& path) : writer_(path) {}
  ~PcapRecorder() override { writer_.flush(); }

  void on_frame(const dot11::Frame& frame, const RxInfo& info) override {
    writer_.write(frame, info.time);
  }

  /// Frames serialized so far. After a flush() this equals the record count
  /// read_pcap() returns for the file, so a trace + pcap pair from the same
  /// run can be cross-referenced while the run is still in progress.
  std::size_t frames_written() const { return writer_.frames_written(); }

  /// Pushes buffered records to disk so the file is readable mid-run.
  /// Also called from the destructor.
  void flush() { writer_.flush(); }

  dot11::PcapWriter& writer() { return writer_; }

 private:
  dot11::PcapWriter writer_;
};

}  // namespace cityhunter::medium
