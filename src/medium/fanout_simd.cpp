#include "medium/fanout_simd.h"

#include <bit>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace cityhunter::medium {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference paths. These mirror Medium::deliver_batched's original
// loops operation for operation; the AVX2 kernels below replicate them lane
// for lane, and the SIMD-vs-scalar fuzz tests hold both to byte identity.

std::size_t filter_scalar(const std::uint32_t* slots, const double* xs,
                          const double* ys, const std::uint16_t* keys,
                          std::size_t n, double tx_x, double tx_y,
                          double range_sq, std::uint16_t want,
                          std::uint32_t self_slot, FanoutCandidate* out,
                          std::size_t& key_matched) {
  std::size_t written = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (keys[i] != want) continue;
    ++key_matched;
    if (slots[i] == self_slot) continue;
    const double dx = xs[i] - tx_x;
    const double dy = ys[i] - tx_y;
    const double dist_sq = dx * dx + dy * dy;
    if (!(dist_sq <= range_sq)) continue;  // NaN-rejecting, like the filter
    out[written].slot = slots[i];
    out[written].dist_sq = dist_sq;
    out[written].x = xs[i];
    out[written].y = ys[i];
    ++written;
  }
  return written;
}

void lut_eval_scalar(const PathLossLut& lut, double tx_dbm,
                     FanoutCandidate* cand, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    cand[i].rx_dbm = lut.rx_power_dbm_sq(tx_dbm, cand[i].dist_sq);
  }
}

#if defined(__x86_64__)

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with a per-function target attribute so the rest of
// ch_medium stays baseline x86-64; selected at runtime via
// __builtin_cpu_supports. No FMA anywhere — the chord evaluation must match
// the scalar `g.a + g.b * dist_sq` (compiled without contraction) bit for
// bit, and vfmadd would keep the intermediate product in infinite precision.
//
// Each kernel ends with an explicit _mm256_zeroupper() before running any
// scalar-tail or caller code. GCC's automatic vzeroupper insertion pass does
// not run for per-function target("avx2") attributes (it is keyed off the
// command-line -mavx), so without this the kernels return with dirty YMM
// uppers and every legacy-SSE instruction afterwards — the scalar tail, the
// delivery loop, libm — pays the AVX↔SSE state-transition penalty. Measured
// here: ~170 ns of flat overhead per kernel call, which swamped the vector
// win at fanout-sized inputs (tens of candidates per call).

__attribute__((target("avx2"))) std::size_t filter_avx2(
    const std::uint32_t* slots, const double* xs, const double* ys,
    const std::uint16_t* keys, std::size_t n, double tx_x, double tx_y,
    double range_sq, std::uint16_t want, std::uint32_t self_slot,
    FanoutCandidate* out, std::size_t& key_matched) {
  std::size_t written = 0;
  const __m256d vtx = _mm256_set1_pd(tx_x);
  const __m256d vty = _mm256_set1_pd(tx_y);
  const __m256d vrange = _mm256_set1_pd(range_sq);
  const __m128i vwant = _mm_set1_epi16(static_cast<short>(want));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // 4 x uint16 listening keys -> per-lane match mask (bit 2j of the
    // 16-bit-element movemask is set iff lane j's key equals `want`; a match
    // sets bits 2j and 2j+1, so popcount/2 counts matching lanes).
    const __m128i vkeys = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(keys + i));
    const int keymask =
        _mm_movemask_epi8(_mm_cmpeq_epi16(vkeys, vwant)) & 0xFF;
    if (keymask == 0) continue;  // whole block tuned out / detached

    // Off-channel radios share the buckets, so at city channel mixes most
    // blocks carry zero or one matching lane. The 256-bit distance math only
    // pays for itself from two lanes up — below that, run the scalar body on
    // the single match (identical op order, so still bit-identical) and keep
    // the 256-bit op density low: on license-throttling CPUs every avoided
    // ymm block also protects the clock of the scalar delivery code around
    // the kernel.
    // Each matching lane sets two movemask bits, so popcount/2 counts the
    // key-matched lanes — tallied before the range test, matching the
    // scalar loop's count.
    key_matched +=
        static_cast<std::size_t>(std::popcount(static_cast<unsigned>(keymask))) / 2;

    if (std::popcount(static_cast<unsigned>(keymask)) == 2) {
      // Exactly one matching lane (each match sets two movemask bits).
      const int j = std::countr_zero(static_cast<unsigned>(keymask)) / 2;
      const std::uint32_t slot = slots[i + j];
      if (slot == self_slot) continue;
      const double dx = xs[i + j] - tx_x;
      const double dy = ys[i + j] - tx_y;
      const double dist_sq = dx * dx + dy * dy;
      if (!(dist_sq <= range_sq)) continue;
      out[written].slot = slot;
      out[written].dist_sq = dist_sq;
      out[written].x = xs[i + j];
      out[written].y = ys[i + j];
      ++written;
      continue;
    }

    const __m256d vx = _mm256_loadu_pd(xs + i);
    const __m256d vy = _mm256_loadu_pd(ys + i);
    // Same op order as the scalar path: sub, mul, mul, add.
    const __m256d dx = _mm256_sub_pd(vx, vtx);
    const __m256d dy = _mm256_sub_pd(vy, vty);
    const __m256d dist_sq =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    // Ordered <= : NaN lanes compare false, matching `!(d² <= range²)`.
    const int inrange = _mm256_movemask_pd(
        _mm256_cmp_pd(dist_sq, vrange, _CMP_LE_OQ));
    if (inrange == 0) continue;

    alignas(32) double d2[4];
    _mm256_store_pd(d2, dist_sq);
    for (int j = 0; j < 4; ++j) {
      if ((inrange & (1 << j)) == 0) continue;
      if ((keymask & (1 << (2 * j))) == 0) continue;
      const std::uint32_t slot = slots[i + j];
      if (slot == self_slot) continue;
      out[written].slot = slot;
      out[written].dist_sq = d2[j];
      out[written].x = xs[i + j];
      out[written].y = ys[i + j];
      ++written;
    }
  }
  _mm256_zeroupper();
  written += filter_scalar(slots + i, xs + i, ys + i, keys + i, n - i, tx_x,
                           tx_y, range_sq, want, self_slot, out + written,
                           key_matched);
  return written;
}

__attribute__((target("avx2"))) void lut_eval_avx2(const PathLossLut& lut,
                                                   double tx_dbm,
                                                   FanoutCandidate* cand,
                                                   std::size_t n) {
  const PathLossLut::Seg* seg = lut.segments();
  const long long seg_count = static_cast<long long>(lut.segment_count());
  const __m256d vtx = _mm256_set1_pd(tx_dbm);
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vref = _mm256_set1_pd(tx_dbm - lut.reference_loss_db());
  const __m256i vbias = _mm256_set1_epi64x(
      static_cast<long long>(std::uint64_t{1023} << PathLossLut::kSegBitsLog2));
  const __m256i vmax = _mm256_set1_epi64x(seg_count - 1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    alignas(32) double d2[4];
    for (int j = 0; j < 4; ++j) d2[j] = cand[i + j].dist_sq;
    const __m256d dist_sq = _mm256_load_pd(d2);

    // Segment index from the double's bit pattern, exactly as the scalar
    // lookup: (bits >> (52 - k)) - (1023 << k), clamped to the top segment.
    // Shifted exponents are far below 2^63, so signed 64-bit compare is safe.
    const __m256i bits = _mm256_castpd_si256(dist_sq);
    __m256i idx = _mm256_sub_epi64(
        _mm256_srli_epi64(bits, 52 - PathLossLut::kSegBitsLog2), vbias);
    idx = _mm256_blendv_epi8(idx, vmax, _mm256_cmpgt_epi64(idx, vmax));
    // Lanes with d² <= 1 m² have a *negative* biased index; their result is
    // replaced by the reference clamp below, but the gather must still stay
    // in bounds — zero those indices.
    idx = _mm256_andnot_si256(
        _mm256_cmpgt_epi64(_mm256_setzero_si256(), idx), idx);

    // Seg is {a, b} = 16 bytes: gather a from idx*2 doubles, b from idx*2+1.
    const __m256i idx2 = _mm256_slli_epi64(idx, 1);
    const double* base = &seg->a;
    const __m256d a = _mm256_i64gather_pd(base, idx2, 8);
    const __m256d b = _mm256_i64gather_pd(
        base, _mm256_add_epi64(idx2, _mm256_set1_epi64x(1)), 8);
    // mul then add (no FMA) to match the scalar chord bit for bit.
    const __m256d rx =
        _mm256_sub_pd(vtx, _mm256_add_pd(a, _mm256_mul_pd(b, dist_sq)));

    // d² <= 1 m² lanes clamp to the reference loss, same as the scalar
    // lookup's early return; the segment gathered for them (index 0) is
    // discarded here.
    const __m256d small = _mm256_cmp_pd(dist_sq, vone, _CMP_LE_OQ);
    const __m256d result = _mm256_blendv_pd(rx, vref, small);

    alignas(32) double outv[4];
    _mm256_store_pd(outv, result);
    for (int j = 0; j < 4; ++j) cand[i + j].rx_dbm = outv[j];
  }
  _mm256_zeroupper();
  lut_eval_scalar(lut, tx_dbm, cand + i, n - i);
}

bool detect_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#else

bool detect_avx2() { return false; }

#endif  // __x86_64__

}  // namespace

bool fanout_simd_available() {
  static const bool available = detect_avx2();
  return available;
}

std::size_t fanout_filter(const std::uint32_t* slots, const double* xs,
                          const double* ys, const std::uint16_t* keys,
                          std::size_t n, double tx_x, double tx_y,
                          double range_sq, std::uint16_t want,
                          std::uint32_t self_slot, bool use_simd,
                          FanoutCandidate* out, std::size_t* key_matched) {
  std::size_t matched_local = 0;
  std::size_t& matched = key_matched != nullptr ? *key_matched : matched_local;
#if defined(__x86_64__)
  if (use_simd && n >= kSimdFilterMinElems && fanout_simd_available()) {
    return filter_avx2(slots, xs, ys, keys, n, tx_x, tx_y, range_sq, want,
                       self_slot, out, matched);
  }
#else
  (void)use_simd;
#endif
  return filter_scalar(slots, xs, ys, keys, n, tx_x, tx_y, range_sq, want,
                       self_slot, out, matched);
}

void fanout_lut_eval(const PathLossLut& lut, double tx_dbm,
                     FanoutCandidate* cand, std::size_t n, bool use_simd,
                     std::size_t simd_min_elems) {
#if defined(__x86_64__)
  if (use_simd && n >= simd_min_elems && fanout_simd_available()) {
    lut_eval_avx2(lut, tx_dbm, cand, n);
    return;
  }
#else
  (void)use_simd;
#endif
  lut_eval_scalar(lut, tx_dbm, cand, n);
}

}  // namespace cityhunter::medium
