// 4-wide vector kernels for the batched delivery fanout.
//
// The two branch-light, per-candidate-independent stages of
// Medium::deliver_batched run here: the gather/filter (fused listening-key
// compare + squared-distance test against range²) and the d²-domain
// path-loss LUT evaluation for survivors. Both have an AVX2 implementation
// compiled behind a per-function target attribute (no special build flags
// needed; the scalar rest of ch_medium stays baseline x86-64) and a portable
// scalar fallback. Dispatch is one cached CPU check at startup.
//
// Bit-identity contract: the vector lanes perform exactly the scalar
// operation sequence — subtract, two multiplies, one add for d²; multiply
// then add (never FMA) for the LUT chord — so SIMD and scalar runs produce
// byte-identical survivor sets and RX powers. The fuzz tests in
// tests/medium_test.cpp enforce this, which is what lets Config::simd_fanout
// default to on without perturbing any golden number.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "medium/propagation.h"

namespace cityhunter::medium {

/// One in-range fanout survivor, in bucket (== slot == radio-id) order.
///
/// Deliberately trivially default-constructible (no member initializers):
/// the shard scratch resizes its survivor vector to the candidate count
/// before each filter call and lets the kernels overwrite only the
/// survivors. With default initializers, that resize would value-initialize
/// — memset 40 bytes per candidate per fanout — pure waste on the hot path.
struct FanoutCandidate {
  std::uint32_t slot;
  double dist_sq;
  /// Receiver position frozen at gather time. Delivery semantics fix the
  /// receiver set and link budget when the transmission fans out, so the
  /// exact-math RX power must come from this snapshot — a sink callback
  /// moving the radio mid-fanout must not change what this frame measures.
  double x;
  double y;
  /// Precomputed LUT RX power; only meaningful when the fault-free LUT
  /// precompute stage ran (see deliver_batched).
  double rx_dbm;
};
static_assert(std::is_trivially_default_constructible_v<FanoutCandidate>);

/// True when the AVX2 path is compiled in and this CPU supports it.
bool fanout_simd_available();

/// Below this many elements the AVX2 *filter* kernel loses to the scalar
/// loop: the vector body covers at most three 4-lane blocks while the call
/// still pays the YMM dirty/clean round trip (vzeroupper plus the first
/// 256-bit op's state transition). Measured: the vector filter wins ~1.6x
/// at 12 elements and is parity at 8, so 12 is the crossover. Dispatch
/// below the threshold is invisible to callers — both paths are
/// bit-identical by construction.
inline constexpr std::size_t kSimdFilterMinElems = 12;

/// The *LUT evaluation* kernel has a much higher crossover than the filter:
/// it is gather-bound (one vpgatherqq of LUT segments per 4 survivors), so
/// its per-element vector win is small while the AVX entry cost is the
/// same. On memory-bound district shapes — thousands of fanouts whose
/// survivor chunks are a few dozen elements — dispatching the LUT stage at
/// the filter's threshold made SIMD runs ~7% SLOWER than scalar overall
/// (BENCH_wallclock.json city_scale.intra_run, pre-fix). Micro-measured on
/// the sparse-district shape the crossover sits past 32 elements; 48 keeps
/// a safety margin while dense crowds (hundreds of survivors per chunk)
/// still vectorize. Overridable per Medium via Config::simd_lut_min_elems.
inline constexpr std::size_t kSimdLutMinElems = 48;

/// Filter one slot-sorted bucket slice: for each index i < n, accept when
/// keys[i] == want, slots[i] != self_slot and (x,y) lies within range_sq of
/// (tx_x, tx_y) in the squared-distance domain (NaN rejects, matching the
/// scalar `!(d² <= range²)` test). Survivors are appended to `out` (which
/// must have room for n) in input order with their gathered d² and frozen
/// (x, y). Returns the number written. `use_simd` selects the vector path
/// when the CPU has it and n is large enough to amortize the AVX entry cost
/// (small slices run the scalar loop regardless); results are bit-identical
/// either way, so the dispatch choice is invisible. When `key_matched` is
/// non-null it is incremented by the number of entries whose key equaled
/// `want` (before the self/range tests) — the complement against n is the
/// index's wasted-candidate count, identical between the SIMD and scalar
/// paths.
std::size_t fanout_filter(const std::uint32_t* slots, const double* xs,
                          const double* ys, const std::uint16_t* keys,
                          std::size_t n, double tx_x, double tx_y,
                          double range_sq, std::uint16_t want,
                          std::uint32_t self_slot, bool use_simd,
                          FanoutCandidate* out,
                          std::size_t* key_matched = nullptr);

/// Evaluate the path-loss LUT for n survivors: cand[i].rx_dbm =
/// lut.rx_power_dbm_sq(tx_dbm, cand[i].dist_sq), including the d² <= 1 m²
/// reference clamp and the top-segment index clamp. Bit-identical between
/// the vector and scalar paths. Every cand[i].dist_sq must satisfy
/// lut.covers() — the caller checks range² once for the whole fanout.
/// `simd_min_elems` is the vector-dispatch cutoff (the gather-bound LUT
/// kernel needs far more elements than the filter to win; see
/// kSimdLutMinElems).
void fanout_lut_eval(const PathLossLut& lut, double tx_dbm,
                     FanoutCandidate* cand, std::size_t n, bool use_simd,
                     std::size_t simd_min_elems = kSimdLutMinElems);

}  // namespace cityhunter::medium
