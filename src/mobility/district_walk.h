// Waypoint mobility over a DistrictGrid, built for the sharded city.
//
// Each walker owns a private forked RNG, so the number and order of its
// draws depend only on its own trajectory (placement, then one waypoint
// draw per arrival) — never on how many other walkers exist, which shard
// simulates it, or how many worker threads advance the shards. That
// self-determined draw schedule is one leg of the sharded city's
// byte-identity guarantee (DESIGN.md §5h); the shared-stream mobility in
// bench/city_scale.h, which draws in global event order, deliberately does
// NOT have this property and cannot be sharded.
//
// Waypoints are sampled inside district squares only, so a walker dwells in
// districts and transits gaps on straight segments; the sharded city keeps
// it radio-silent while in_gap().
#pragma once

#include "medium/geometry.h"
#include "support/rng.h"
#include "world/district_grid.h"

namespace cityhunter::mobility {

class DistrictWalker {
 public:
  /// Inert walker (no grid); step() is invalid until one is assigned. Lets
  /// agent structs be default-constructed before placement.
  DistrictWalker() = default;

  /// Places the walker uniformly inside a uniformly chosen district and
  /// draws its first waypoint, both from `rng` (which the walker keeps).
  DistrictWalker(const world::DistrictGrid* grid, support::Rng rng,
                 double speed_mps);

  medium::Position pos() const { return pos_; }
  medium::Position waypoint() const { return wp_; }

  /// Advance `dt_s` seconds toward the waypoint; on arrival snap to it and
  /// draw the next one. Returns the new position.
  medium::Position step(double dt_s);

 private:
  void pick_waypoint();

  const world::DistrictGrid* grid_ = nullptr;
  support::Rng rng_{0};
  double speed_mps_ = 1.4;
  medium::Position pos_{};
  medium::Position wp_{};
};

}  // namespace cityhunter::mobility
