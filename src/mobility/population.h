// Venue population: spawns people, moves them, removes them.
//
// Arrivals are a Poisson process at the slot's expected volume; each arrival
// is a lone person or a social group (shared PNL entries via
// world::PnlModel::make_group). Static visitors sit at a table for a
// lognormal dwell; flow visitors walk a straight lane through the venue past
// the attacker; hybrid venues mix both. Smartphones attach to the medium on
// arrival and detach on departure, so the attacker only ever sees devices
// that are really in range.
#pragma once

#include <memory>
#include <vector>

#include "client/smartphone.h"
#include "medium/medium.h"
#include "mobility/venue.h"
#include "support/rng.h"
#include "world/pnl.h"

namespace cityhunter::mobility {

using support::SimTime;

struct SlotParams {
  double expected_clients = 600.0;
  /// <= 0 means: use the venue's base group_fraction.
  double group_fraction = -1.0;
  /// Fraction of arrivals already associated to a legitimate AP (they do
  /// not probe until deauthenticated). Used by the §V-B deauth experiment.
  double pre_associated_fraction = 0.0;
  /// BSSID those clients are associated to (the venue's legitimate AP).
  std::optional<dot11::MacAddress> legit_ap;
  /// Fraction of devices randomising their MAC on every scan (a post-2017
  /// client hardening; see bench/ablation_mac_randomization).
  double mac_randomizing_fraction = 0.0;
};

class VenuePopulation {
 public:
  VenuePopulation(medium::Medium& medium, world::PnlModel& pnl,
                  VenueConfig venue, client::SmartphoneConfig phone_cfg,
                  support::Rng rng);
  ~VenuePopulation();

  VenuePopulation(const VenuePopulation&) = delete;
  VenuePopulation& operator=(const VenuePopulation&) = delete;

  /// Schedule arrivals over [now, now + duration). Call once per slot; the
  /// caller then runs the event queue.
  void schedule_slot(SimTime duration, const SlotParams& params);

  std::size_t clients_spawned() const { return phones_.size(); }
  const std::vector<std::unique_ptr<client::Smartphone>>& phones() const {
    return phones_;
  }

 private:
  struct Walk {
    client::Smartphone* phone;
    Position from;
    Position to;
    double speed_mps;
    SimTime start;
  };

  void arrival(const SlotParams& params);
  void spawn_member(world::Person person, const SlotParams& params,
                    Position pos, SimTime dwell, double speed,
                    bool is_static);
  void walk_tick(std::size_t walk_index);
  Position random_static_spot();
  Position lane_entry(double lane_y) const;
  Position lane_exit(double lane_y) const;

  medium::Medium& medium_;
  world::PnlModel& pnl_;
  VenueConfig venue_;
  client::SmartphoneConfig phone_cfg_;
  support::Rng rng_;
  std::vector<std::unique_ptr<client::Smartphone>> phones_;
  std::vector<Walk> walks_;
  std::vector<medium::EventHandle> pending_;
};

}  // namespace cityhunter::mobility
