// Venue models (paper §V-A).
//
// Four deployment sites with distinct mobility patterns:
//   * subway passage — everyone walks through at commuting speed (flow);
//   * canteen — people sit for a meal (static);
//   * shopping centre / railway station — a mixture (hybrid).
// The venue defines geometry and motion; per-hour client volumes and group
// fractions are per-slot parameters so a full 8am-8pm day (Fig 5) can be
// composed of twelve 1-hour tests, each with a freshly initialised attacker
// database, exactly as the paper ran them.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "medium/geometry.h"

namespace cityhunter::mobility {

using medium::Position;

enum class MobilityPattern { kStatic, kFlow, kHybrid };

struct VenueConfig {
  std::string name;
  MobilityPattern pattern = MobilityPattern::kStatic;

  /// Length of the walkable area along x, centred on the attacker.
  double extent_m = 160.0;
  /// Lateral width (seating area radius for static venues, corridor width
  /// for flow venues).
  double width_m = 20.0;

  /// Static dwell time: lognormal with this mean (minutes) and sigma.
  double mean_dwell_min = 22.0;
  double dwell_sigma = 0.45;

  /// Flow walking speed (m/s), truncated normal.
  double mean_speed_mps = 1.3;
  double speed_sd_mps = 0.25;

  /// Hybrid: fraction of arrivals that behave statically.
  double hybrid_static_fraction = 0.45;

  /// Mean scan interval for devices at this venue, in seconds. Phones scan
  /// much more often while moving (motion and screen-on trigger scans) than
  /// when sitting in a pocket at a table. <= 0 uses the scenario default.
  double mean_scan_interval_s = -1.0;

  /// Fraction of arrivals that come as social groups, and the size weights
  /// for groups of 2, 3 and 4.
  double group_fraction = 0.35;
  std::array<double, 3> group_size_weights{0.6, 0.3, 0.1};

  /// Venue-local SSIDs regulars may have stored, and the probability a
  /// visitor is such a regular.
  std::vector<std::string> venue_ssids;
  double venue_regular_prob = 0.15;

  /// 8am..8pm hourly expected client counts (12 slots) for full-day runs.
  std::array<double, 12> hourly_clients{};
  /// Per-slot group fraction override (rush hours see more groups); values
  /// <= 0 fall back to `group_fraction`.
  std::array<double, 12> hourly_group_fraction{};
};

/// Paper-shaped presets. Client volumes echo Fig 5: the passage peaks at the
/// two commuting rushes, the canteen at the three mealtimes, the mall ramps
/// through the afternoon and the railway station stays high with rush bumps.
VenueConfig subway_passage_venue();
VenueConfig canteen_venue();
VenueConfig shopping_center_venue();
VenueConfig railway_station_venue();

/// Slot labels "8am-9am" .. "7pm-8pm".
std::string slot_label(int slot);

}  // namespace cityhunter::mobility
