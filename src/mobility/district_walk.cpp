#include "mobility/district_walk.h"

#include <cmath>

namespace cityhunter::mobility {

DistrictWalker::DistrictWalker(const world::DistrictGrid* grid,
                               support::Rng rng, double speed_mps)
    : grid_(grid), rng_(std::move(rng)), speed_mps_(speed_mps) {
  const auto start = grid_->cell(static_cast<int>(
      rng_.index(static_cast<std::size_t>(grid_->districts()))));
  pos_ = grid_->sample_in(start, rng_);
  pick_waypoint();
}

void DistrictWalker::pick_waypoint() {
  const auto dest = grid_->cell(static_cast<int>(
      rng_.index(static_cast<std::size_t>(grid_->districts()))));
  wp_ = grid_->sample_in(dest, rng_);
}

medium::Position DistrictWalker::step(double dt_s) {
  const double dx = wp_.x - pos_.x;
  const double dy = wp_.y - pos_.y;
  const double d = std::hypot(dx, dy);
  const double step_m = speed_mps_ * dt_s;
  if (d <= step_m) {
    pos_ = wp_;
    pick_waypoint();
  } else {
    pos_.x += dx / d * step_m;
    pos_.y += dy / d * step_m;
  }
  return pos_;
}

}  // namespace cityhunter::mobility
