#include "mobility/population.h"

#include <algorithm>
#include <cmath>

namespace cityhunter::mobility {

VenuePopulation::VenuePopulation(medium::Medium& medium, world::PnlModel& pnl,
                                 VenueConfig venue,
                                 client::SmartphoneConfig phone_cfg,
                                 support::Rng rng)
    : medium_(medium),
      pnl_(pnl),
      venue_(std::move(venue)),
      phone_cfg_(phone_cfg),
      rng_(std::move(rng)) {}

VenuePopulation::~VenuePopulation() {
  for (auto& h : pending_) h.cancel();
}

Position VenuePopulation::random_static_spot() {
  // The attacker sits at the local origin; seats spread around it.
  return {rng_.uniform(-venue_.extent_m / 2, venue_.extent_m / 2),
          rng_.uniform(-venue_.width_m / 2, venue_.width_m / 2)};
}

Position VenuePopulation::lane_entry(double lane_y) const {
  return {-venue_.extent_m / 2, lane_y};
}

Position VenuePopulation::lane_exit(double lane_y) const {
  return {venue_.extent_m / 2, lane_y};
}

void VenuePopulation::schedule_slot(SimTime duration,
                                    const SlotParams& params) {
  const double gf = params.group_fraction > 0 ? params.group_fraction
                                              : venue_.group_fraction;
  double mean_group_size = 0.0;
  {
    const auto& w = venue_.group_size_weights;
    const double total = w[0] + w[1] + w[2];
    mean_group_size = (2 * w[0] + 3 * w[1] + 4 * w[2]) / total;
  }
  const double clients_per_arrival = (1.0 - gf) + gf * mean_group_size;
  const double expected_arrivals =
      params.expected_clients / clients_per_arrival;
  const int arrivals = rng_.poisson(expected_arrivals);

  SlotParams p = params;
  p.group_fraction = gf;
  for (int i = 0; i < arrivals; ++i) {
    const SimTime at = SimTime::microseconds(static_cast<std::int64_t>(
        rng_.uniform(0.0, static_cast<double>(duration.us()))));
    pending_.push_back(
        medium_.events().schedule_in(at, [this, p] { arrival(p); }));
  }
}

void VenuePopulation::arrival(const SlotParams& params) {
  const bool is_group = rng_.chance(params.group_fraction);
  int size = 1;
  if (is_group) {
    const auto& w = venue_.group_size_weights;
    size = 2 + static_cast<int>(
                   rng_.weighted_index({w[0], w[1], w[2]}));
  }
  std::vector<world::Person> people =
      is_group ? pnl_.make_group(rng_, size, venue_.venue_ssids,
                                 venue_.venue_regular_prob)
               : std::vector<world::Person>{pnl_.make_person(
                     rng_, venue_.venue_ssids, venue_.venue_regular_prob)};

  // The whole party behaves alike: same table or same walking lane/speed.
  bool is_static = false;
  switch (venue_.pattern) {
    case MobilityPattern::kStatic: is_static = true; break;
    case MobilityPattern::kFlow: is_static = false; break;
    case MobilityPattern::kHybrid:
      is_static = rng_.chance(venue_.hybrid_static_fraction);
      break;
  }

  Position anchor = random_static_spot();
  double lane_y = rng_.uniform(-venue_.width_m / 2, venue_.width_m / 2);
  const double sigma = venue_.dwell_sigma;
  const double mu = std::log(std::max(1.0, venue_.mean_dwell_min)) -
                    sigma * sigma / 2.0;
  const SimTime dwell = SimTime::minutes(rng_.lognormal(mu, sigma));
  const double speed = std::max(
      0.4, rng_.normal(venue_.mean_speed_mps, venue_.speed_sd_mps));

  for (auto& person : people) {
    Position pos;
    if (is_static) {
      pos = {anchor.x + rng_.uniform(-1.5, 1.5),
             anchor.y + rng_.uniform(-1.5, 1.5)};
    } else {
      pos = lane_entry(lane_y + rng_.uniform(-1.0, 1.0));
    }
    spawn_member(std::move(person), params, pos, dwell, speed, is_static);
  }
}

void VenuePopulation::spawn_member(world::Person person,
                                   const SlotParams& params, Position pos,
                                   SimTime dwell, double speed,
                                   bool is_static) {
  std::optional<dot11::MacAddress> associated;
  if (params.legit_ap && rng_.chance(params.pre_associated_fraction)) {
    associated = params.legit_ap;
  }
  auto member_cfg = phone_cfg_;
  if (rng_.chance(params.mac_randomizing_fraction)) {
    member_cfg.randomize_mac_per_scan = true;
  }
  auto phone = std::make_unique<client::Smartphone>(
      std::move(person), medium_, pos, member_cfg,
      rng_.fork("phone"), associated);
  client::Smartphone* raw = phone.get();
  raw->start();
  phones_.push_back(std::move(phone));

  if (is_static) {
    pending_.push_back(
        medium_.events().schedule_in(dwell, [raw] { raw->stop(); }));
  } else {
    Walk w;
    w.phone = raw;
    w.from = pos;
    w.to = lane_exit(pos.y);
    w.speed_mps = speed;
    w.start = medium_.events().now();
    const std::size_t index = walks_.size();
    walks_.push_back(w);
    pending_.push_back(medium_.events().schedule_in(
        SimTime::seconds(1.0), [this, index] { walk_tick(index); }));
  }
}

void VenuePopulation::walk_tick(std::size_t walk_index) {
  Walk& w = walks_[walk_index];
  if (w.phone == nullptr) return;
  const double elapsed_s = (medium_.events().now() - w.start).sec();
  const double total = medium::distance(w.from, w.to);
  const double walked = w.speed_mps * elapsed_s;
  if (walked >= total) {
    w.phone->stop();
    w.phone = nullptr;
    return;
  }
  w.phone->set_position(medium::lerp(w.from, w.to, walked / total));
  pending_.push_back(medium_.events().schedule_in(
      SimTime::seconds(1.0), [this, walk_index] { walk_tick(walk_index); }));
}

}  // namespace cityhunter::mobility
