#include "mobility/venue.h"

namespace cityhunter::mobility {

VenueConfig subway_passage_venue() {
  VenueConfig v;
  v.name = "subway-passage";
  v.pattern = MobilityPattern::kFlow;
  v.extent_m = 180.0;
  v.width_m = 8.0;
  v.mean_speed_mps = 1.35;
  v.speed_sd_mps = 0.25;
  v.mean_scan_interval_s = 55.0;  // walking commuters scan often
  v.group_fraction = 0.25;
  v.venue_ssids = {"MTR Free Wi-Fi"};
  v.venue_regular_prob = 0.15;
  // Two commuting rushes (8-9am, 6-7pm), echoing Fig 5(a).
  v.hourly_clients = {2550, 1450, 1000, 900, 1100, 1000,
                      900, 950, 1100, 1500, 2300, 1400};
  v.hourly_group_fraction = {0.45, 0.3, 0.25, 0.25, 0.3, 0.3,
                             0.25, 0.25, 0.3, 0.35, 0.45, 0.35};
  return v;
}

VenueConfig canteen_venue() {
  VenueConfig v;
  v.name = "canteen";
  v.pattern = MobilityPattern::kStatic;
  v.extent_m = 60.0;
  v.width_m = 40.0;
  v.mean_dwell_min = 24.0;
  v.dwell_sigma = 0.40;
  v.mean_scan_interval_s = 120.0;  // phones resting on the table
  v.group_fraction = 0.45;
  v.venue_ssids = {"Canteen-Free-WiFi", "CampusNet-Open"};
  v.venue_regular_prob = 0.22;
  // Three meal peaks, echoing Fig 5(b).
  v.hourly_clients = {800, 320, 260, 520, 1280, 980,
                      360, 300, 320, 520, 1150, 720};
  v.hourly_group_fraction = {0.5, 0.35, 0.35, 0.4, 0.55, 0.5,
                             0.35, 0.35, 0.35, 0.4, 0.55, 0.45};
  return v;
}

VenueConfig shopping_center_venue() {
  VenueConfig v;
  v.name = "shopping-center";
  v.pattern = MobilityPattern::kHybrid;
  v.extent_m = 140.0;
  v.width_m = 30.0;
  v.mean_dwell_min = 14.0;
  v.dwell_sigma = 0.5;
  v.mean_speed_mps = 1.0;
  v.speed_sd_mps = 0.3;
  v.hybrid_static_fraction = 0.45;
  v.mean_scan_interval_s = 75.0;
  v.group_fraction = 0.4;
  v.venue_ssids = {"HarbourMall-Guest"};
  v.venue_regular_prob = 0.20;
  // Afternoon/evening ramp, echoing Fig 5(c).
  v.hourly_clients = {220, 360, 620, 820, 1020, 1020,
                      960, 1000, 1100, 1200, 1300, 1100};
  v.hourly_group_fraction = {0.3, 0.3, 0.35, 0.4, 0.45, 0.45,
                             0.4, 0.4, 0.4, 0.45, 0.5, 0.45};
  return v;
}

VenueConfig railway_station_venue() {
  VenueConfig v;
  v.name = "railway-station";
  v.pattern = MobilityPattern::kHybrid;
  v.extent_m = 160.0;
  v.width_m = 40.0;
  v.mean_dwell_min = 9.0;  // waiting for a train
  v.dwell_sigma = 0.5;
  v.mean_speed_mps = 1.3;
  v.speed_sd_mps = 0.25;
  v.hybrid_static_fraction = 0.55;
  v.mean_scan_interval_s = 75.0;
  v.group_fraction = 0.35;
  v.venue_ssids = {"RailwayStation-Free"};
  v.venue_regular_prob = 0.25;
  // High all day with commuting bumps, echoing Fig 5(d).
  v.hourly_clients = {2000, 1400, 1150, 1100, 1250, 1200,
                      1100, 1150, 1300, 1800, 2100, 1350};
  v.hourly_group_fraction = {0.45, 0.35, 0.3, 0.3, 0.35, 0.35,
                             0.3, 0.3, 0.35, 0.4, 0.5, 0.4};
  return v;
}

std::string slot_label(int slot) {
  static const char* kLabels[12] = {
      "8am-9am",  "9am-10am", "10am-11am", "11am-12pm",
      "12pm-1pm", "1pm-2pm",  "2pm-3pm",   "3pm-4pm",
      "4pm-5pm",  "5pm-6pm",  "6pm-7pm",   "7pm-8pm"};
  if (slot < 0 || slot >= 12) return "?";
  return kLabels[slot];
}

}  // namespace cityhunter::mobility
