// Countermeasures (paper §VI).
//
// The paper closes by noting that existing evil-twin detection still works
// against City-Hunter. This module implements both deployment models the
// related-work section cites:
//
//   * EvilTwinDetector — a passive client/auditor-side monitor. The KARMA
//     family has an unmistakable over-the-air signature: one BSSID
//     advertising many distinct SSIDs (a real AP advertises one or a
//     handful). A second client-side check catches the security downgrade:
//     an SSID the client knows as protected being offered open.
//   * RogueApMonitor — an operator-side monitor with a list of authorised
//     BSSIDs: flags foreign BSSIDs advertising the operator's SSIDs (evil
//     twin) and deauthentication frames forged in an authorised BSSID's
//     name (the §V-B extension's footprint — an AP never deauth-broadcasts
//     *about itself* through a foreign transmitter).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dot11/frame.h"
#include "medium/medium.h"

namespace cityhunter::defense {

using support::SimTime;

enum class AlertType {
  kMultiSsidBssid,     // one BSSID advertising too many SSIDs
  kSecurityDowngrade,  // known-protected SSID offered open
  kForeignTwin,        // unauthorised BSSID advertising an operator SSID
  kDeauthForgery,      // deauth traffic in an authorised BSSID's name
};

const char* to_string(AlertType t);

struct Alert {
  AlertType type;
  dot11::MacAddress bssid;
  std::string ssid;  // offending SSID where applicable
  SimTime time;
  /// Evidence magnitude: distinct-SSID count, forged-deauth count, ...
  int evidence = 0;
};

/// Passive client-/auditor-side detector.
class EvilTwinDetector : public medium::FrameSink {
 public:
  struct Config {
    /// Alert when one BSSID has advertised more than this many distinct
    /// SSIDs. Real multi-SSID APs serve ~4-8; KARMA-family attackers serve
    /// dozens within seconds.
    int max_ssids_per_bssid = 8;
    /// SSIDs this station knows to be protected (its own PNL knowledge):
    /// seeing them advertised open raises kSecurityDowngrade.
    std::set<std::string> known_protected_ssids;
  };

  EvilTwinDetector(medium::Medium& medium, medium::Position pos,
                   std::uint8_t channel, Config cfg);
  ~EvilTwinDetector() override;

  EvilTwinDetector(const EvilTwinDetector&) = delete;
  EvilTwinDetector& operator=(const EvilTwinDetector&) = delete;

  void start();
  void stop();

  const std::vector<Alert>& alerts() const { return alerts_; }
  bool flagged(const dot11::MacAddress& bssid) const {
    return flagged_.count(bssid) != 0;
  }
  /// Time of the first alert against `bssid`, if any.
  std::optional<SimTime> first_detection(const dot11::MacAddress& bssid) const;

  /// Distinct SSIDs observed from `bssid` so far.
  std::size_t ssid_count(const dot11::MacAddress& bssid) const;

  // medium::FrameSink
  void on_frame(const dot11::Frame& frame, const medium::RxInfo& info) override;

 private:
  void observe_advertisement(const dot11::MacAddress& bssid,
                             const std::string& ssid, bool open, SimTime now);
  void raise(AlertType type, const dot11::MacAddress& bssid,
             const std::string& ssid, SimTime now, int evidence);

  medium::Medium& medium_;
  medium::Position pos_;
  std::uint8_t channel_;
  Config cfg_;
  medium::Radio radio_;
  bool started_ = false;
  bool stopped_ = false;

  std::map<dot11::MacAddress, std::set<std::string>> ssids_by_bssid_;
  std::set<dot11::MacAddress> flagged_;
  std::set<std::pair<dot11::MacAddress, std::string>> downgrade_reported_;
  std::vector<Alert> alerts_;
};

/// Operator-side monitor with knowledge of the authorised infrastructure.
class RogueApMonitor : public medium::FrameSink {
 public:
  struct Config {
    /// Authorised BSSIDs and the SSIDs the operator serves.
    std::set<dot11::MacAddress> authorized_bssids;
    std::set<std::string> operator_ssids;
    /// Deauth frames per minute in an authorised BSSID's name before the
    /// forgery alarm fires (real APs rarely mass-deauth).
    int deauth_alarm_threshold = 5;
  };

  RogueApMonitor(medium::Medium& medium, medium::Position pos,
                 std::uint8_t channel, Config cfg);
  ~RogueApMonitor() override;

  RogueApMonitor(const RogueApMonitor&) = delete;
  RogueApMonitor& operator=(const RogueApMonitor&) = delete;

  void start();
  void stop();

  const std::vector<Alert>& alerts() const { return alerts_; }
  bool twin_detected() const { return twin_detected_; }
  bool deauth_forgery_detected() const { return deauth_forgery_detected_; }

  void on_frame(const dot11::Frame& frame, const medium::RxInfo& info) override;

 private:
  medium::Medium& medium_;
  medium::Position pos_;
  std::uint8_t channel_;
  Config cfg_;
  medium::Radio radio_;
  bool started_ = false;
  bool stopped_ = false;

  std::set<dot11::MacAddress> reported_twins_;
  std::map<dot11::MacAddress, int> deauth_counts_;
  bool twin_detected_ = false;
  bool deauth_forgery_detected_ = false;
  std::vector<Alert> alerts_;
};

}  // namespace cityhunter::defense
