#include "defense/detector.h"

namespace cityhunter::defense {

using dot11::Frame;

const char* to_string(AlertType t) {
  switch (t) {
    case AlertType::kMultiSsidBssid: return "multi-ssid-bssid";
    case AlertType::kSecurityDowngrade: return "security-downgrade";
    case AlertType::kForeignTwin: return "foreign-twin";
    case AlertType::kDeauthForgery: return "deauth-forgery";
  }
  return "?";
}

EvilTwinDetector::EvilTwinDetector(medium::Medium& medium,
                                   medium::Position pos, std::uint8_t channel,
                                   Config cfg)
    : medium_(medium), pos_(pos), channel_(channel), cfg_(std::move(cfg)) {}

EvilTwinDetector::~EvilTwinDetector() { stop(); }

void EvilTwinDetector::start() {
  if (started_) return;
  started_ = true;
  // Passive monitor: never transmits, so TX power is irrelevant.
  radio_ = medium_.attach(pos_, channel_, 0.0, this);
}

void EvilTwinDetector::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  medium_.detach(radio_);
}

std::optional<SimTime> EvilTwinDetector::first_detection(
    const dot11::MacAddress& bssid) const {
  for (const auto& a : alerts_) {
    if (a.bssid == bssid) return a.time;
  }
  return std::nullopt;
}

std::size_t EvilTwinDetector::ssid_count(
    const dot11::MacAddress& bssid) const {
  auto it = ssids_by_bssid_.find(bssid);
  return it == ssids_by_bssid_.end() ? 0 : it->second.size();
}

void EvilTwinDetector::raise(AlertType type, const dot11::MacAddress& bssid,
                             const std::string& ssid, SimTime now,
                             int evidence) {
  alerts_.push_back(Alert{type, bssid, ssid, now, evidence});
  flagged_.insert(bssid);
}

void EvilTwinDetector::observe_advertisement(const dot11::MacAddress& bssid,
                                             const std::string& ssid,
                                             bool open, SimTime now) {
  auto& ssids = ssids_by_bssid_[bssid];
  const bool inserted = ssids.insert(ssid).second;
  if (inserted &&
      ssids.size() > static_cast<std::size_t>(cfg_.max_ssids_per_bssid) &&
      flagged_.count(bssid) == 0) {
    raise(AlertType::kMultiSsidBssid, bssid, ssid, now,
          static_cast<int>(ssids.size()));
  }
  if (open && cfg_.known_protected_ssids.count(ssid) != 0 &&
      downgrade_reported_.insert({bssid, ssid}).second) {
    raise(AlertType::kSecurityDowngrade, bssid, ssid, now, 1);
  }
}

void EvilTwinDetector::on_frame(const Frame& frame,
                                const medium::RxInfo& info) {
  if (stopped_) return;
  switch (frame.subtype()) {
    case dot11::MgmtSubtype::kProbeResponse: {
      const auto* body = frame.as<dot11::ProbeResponse>();
      const auto ssid = body->ies.ssid();
      if (!ssid || ssid->empty()) return;
      observe_advertisement(frame.header.addr3, *ssid,
                            !body->capability.privacy(), info.time);
      return;
    }
    case dot11::MgmtSubtype::kBeacon: {
      const auto* body = frame.as<dot11::Beacon>();
      const auto ssid = body->ies.ssid();
      if (!ssid || ssid->empty()) return;
      observe_advertisement(frame.header.addr3, *ssid,
                            !body->capability.privacy(), info.time);
      return;
    }
    default:
      return;
  }
}

RogueApMonitor::RogueApMonitor(medium::Medium& medium, medium::Position pos,
                               std::uint8_t channel, Config cfg)
    : medium_(medium), pos_(pos), channel_(channel), cfg_(std::move(cfg)) {}

RogueApMonitor::~RogueApMonitor() { stop(); }

void RogueApMonitor::start() {
  if (started_) return;
  started_ = true;
  radio_ = medium_.attach(pos_, channel_, 0.0, this);
}

void RogueApMonitor::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  medium_.detach(radio_);
}

void RogueApMonitor::on_frame(const Frame& frame,
                              const medium::RxInfo& info) {
  if (stopped_) return;
  switch (frame.subtype()) {
    case dot11::MgmtSubtype::kProbeResponse:
    case dot11::MgmtSubtype::kBeacon: {
      std::optional<std::string> ssid;
      if (const auto* pr = frame.as<dot11::ProbeResponse>()) {
        ssid = pr->ies.ssid();
      } else if (const auto* b = frame.as<dot11::Beacon>()) {
        ssid = b->ies.ssid();
      }
      if (!ssid) return;
      const auto& bssid = frame.header.addr3;
      if (cfg_.operator_ssids.count(*ssid) != 0 &&
          cfg_.authorized_bssids.count(bssid) == 0 &&
          reported_twins_.insert(bssid).second) {
        twin_detected_ = true;
        alerts_.push_back(
            Alert{AlertType::kForeignTwin, bssid, *ssid, info.time, 1});
      }
      return;
    }
    case dot11::MgmtSubtype::kDeauthentication: {
      // A frame claiming to be from an authorised AP. The monitor is wired
      // to the real APs' management plane in this model: every over-the-air
      // deauth in their name that they did not send is a forgery. We use
      // the count threshold to avoid flagging legitimate single deauths.
      const auto& claimed = frame.header.addr3;
      if (cfg_.authorized_bssids.count(claimed) == 0) return;
      const int n = ++deauth_counts_[claimed];
      if (n == cfg_.deauth_alarm_threshold) {
        deauth_forgery_detected_ = true;
        alerts_.push_back(
            Alert{AlertType::kDeauthForgery, claimed, "", info.time, n});
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace cityhunter::defense
