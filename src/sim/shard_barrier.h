// Conservative time-sync barrier for the sharded city (DESIGN.md §5h).
//
// Classic conservative parallel discrete-event simulation: every shard may
// safely advance to the same epoch boundary without synchronising, as long
// as nothing one shard does before the boundary can affect another shard
// until after it. Here the "lookahead" is geometric rather than message-
// based — districts are RF-isolated by guard gaps, so the only cross-shard
// interaction is a walker carrying its radio across a gap midline, and the
// epoch length is chosen so the walker cannot get within radio range of the
// destination shard's districts before the barrier at which it is handed
// off. All shards then run_until(epoch_end) in parallel, exchange handoffs
// single-threaded, and repeat.
#pragma once

#include <cstddef>

#include "support/sim_time.h"

namespace cityhunter::sim {

class ConservativeBarrier {
 public:
  struct Config {
    /// Epoch length: the conservative lookahead. Must be positive.
    support::SimTime lookahead;
    /// Total simulated horizon. The last epoch is truncated to it.
    support::SimTime horizon;
  };

  explicit ConservativeBarrier(Config cfg);

  std::size_t epochs() const { return epochs_; }
  /// End of epoch `i` (0-based): min((i + 1) * lookahead, horizon).
  support::SimTime epoch_end(std::size_t i) const;

  /// The longest lookahead that keeps a walker RF-contained: a client that
  /// crosses a gap midline is detected at its next position tick (up to
  /// `tick_s` late) and handed off at the next barrier (up to the epoch
  /// late), so by then it has penetrated at most speed × (tick + epoch)
  /// past the midline. Containment needs that penetration plus `margin_m`
  /// to stay short of gap/2 − range. Throws std::invalid_argument when the
  /// gap is too narrow for even a zero-length epoch.
  static support::SimTime max_safe_lookahead(double gap_m, double range_m,
                                             double speed_mps, double tick_s,
                                             double margin_m);

 private:
  support::SimTime lookahead_;
  support::SimTime horizon_;
  std::size_t epochs_ = 0;
};

}  // namespace cityhunter::sim
