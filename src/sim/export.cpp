#include "sim/export.h"

#include <sstream>

namespace cityhunter::sim {

std::string results_csv(const std::vector<stats::CampaignResult>& results) {
  std::ostringstream os;
  os << "label,total,direct,broadcast,direct_connected,broadcast_connected,"
        "h,h_b,hits_wigle,hits_direct_db,hits_carrier,hits_popularity,"
        "hits_freshness\n";
  for (const auto& r : results) {
    // Quote the label; our labels never contain quotes.
    os << '"' << r.label << '"' << ',' << r.total_clients << ','
       << r.direct_clients << ',' << r.broadcast_clients << ','
       << r.direct_connected << ',' << r.broadcast_connected << ',' << r.h()
       << ',' << r.h_b() << ',' << r.hits_from_wigle << ','
       << r.hits_from_direct_db << ',' << r.hits_from_carrier_seed << ','
       << r.hits_via_popularity << ',' << r.hits_via_freshness << '\n';
  }
  return os.str();
}

std::string series_csv(const std::vector<SeriesPoint>& series) {
  std::ostringstream os;
  os << "minutes,db_size,broadcast_connected\n";
  for (const auto& p : series) {
    os << p.time.min() << ',' << p.db_size << ',' << p.broadcast_connected
       << '\n';
  }
  return os.str();
}

std::string windows_csv(const std::vector<stats::WindowRate>& windows) {
  std::ostringstream os;
  os << "window_start_min,clients,rate\n";
  for (const auto& w : windows) {
    os << w.start.min() << ',' << w.broadcast_clients << ',' << w.rate()
       << '\n';
  }
  return os.str();
}

}  // namespace cityhunter::sim
