#include "sim/parallel.h"

#include <future>

#include "support/thread_pool.h"

namespace cityhunter::sim {

std::vector<RunOutput> run_campaigns(const World& world,
                                     std::span<const RunConfig> runs,
                                     ParallelConfig cfg) {
  std::vector<RunOutput> outputs;
  outputs.reserve(runs.size());

  std::size_t workers = cfg.threads;
  if (workers == 0) workers = support::ThreadPool::default_workers();
  if (workers <= 1 || runs.size() <= 1) {
    for (const auto& run : runs) outputs.push_back(run_campaign(world, run));
    return outputs;
  }

  support::ThreadPool pool(workers);
  std::vector<std::future<RunOutput>> futures;
  futures.reserve(runs.size());
  for (const auto& run : runs) {
    futures.push_back(
        pool.submit([&world, &run] { return run_campaign(world, run); }));
  }
  for (auto& f : futures) outputs.push_back(f.get());
  return outputs;
}

}  // namespace cityhunter::sim
