#include "sim/parallel.h"

#include <future>
#include <string>
#include <utility>

#include "support/thread_pool.h"

namespace cityhunter::sim {

namespace {

std::string describe_failure(const RunConfig& run, const char* what) {
  return "run_seed=" + std::to_string(run.run_seed) +
         " venue=" + run.venue.name + " attacker=" + to_string(run.kind) +
         ": " + what;
}

/// run_campaign with the exception firewall: a throwing run yields a
/// default RunOutput carrying the failure description instead of
/// propagating and discarding every other run's result.
RunOutput run_guarded(const World& world, const RunConfig& run) {
  try {
    return run_campaign(world, run);
  } catch (const std::exception& e) {
    RunOutput out;
    out.error = describe_failure(run, e.what());
    return out;
  } catch (...) {
    RunOutput out;
    out.error = describe_failure(run, "unknown exception");
    return out;
  }
}

/// Retry each failed run once, each on a fresh thread: a crash caused by a
/// poisoned pool worker (TLS, FP state) should not condemn the rerun. A run
/// that fails twice keeps its second error.
void retry_failed(const World& world, std::span<const RunConfig> runs,
                  std::vector<RunOutput>& outputs) {
  std::vector<std::pair<std::size_t, std::future<RunOutput>>> retries;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].error.empty()) continue;
    retries.emplace_back(
        i, std::async(std::launch::async, [&world, &run = runs[i]] {
          return run_guarded(world, run);
        }));
  }
  for (auto& [i, f] : retries) outputs[i] = f.get();
}

}  // namespace

std::vector<RunOutput> run_campaigns(const World& world,
                                     std::span<const RunConfig> runs,
                                     ParallelConfig cfg) {
  std::vector<RunOutput> outputs;
  outputs.reserve(runs.size());

  std::size_t workers = cfg.threads;
  if (workers == 0) workers = support::ThreadPool::default_workers();
  if (workers <= 1 || runs.size() <= 1) {
    for (const auto& run : runs) outputs.push_back(run_guarded(world, run));
    retry_failed(world, runs, outputs);
    return outputs;
  }

  support::ThreadPool pool(workers);
  std::vector<std::future<RunOutput>> futures;
  futures.reserve(runs.size());
  for (const auto& run : runs) {
    futures.push_back(
        pool.submit([&world, &run] { return run_guarded(world, run); }));
  }
  // run_guarded never throws, so every future resolves and every healthy
  // run's output is collected regardless of failures elsewhere.
  for (auto& f : futures) outputs.push_back(f.get());
  retry_failed(world, runs, outputs);
  return outputs;
}

std::size_t failed_runs(const std::vector<RunOutput>& outputs) {
  std::size_t n = 0;
  for (const auto& out : outputs) {
    if (!out.error.empty()) ++n;
  }
  return n;
}

}  // namespace cityhunter::sim
