#include "sim/parallel.h"

#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "support/thread_pool.h"

namespace cityhunter::sim {

namespace {

/// Accumulates per-OS-thread busy time. Locked once per run (runs last
/// milliseconds to seconds), so contention is irrelevant.
class LoadTracker {
 public:
  void add(double busy_s) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto id = std::this_thread::get_id();
    auto it = index_.find(id);
    if (it == index_.end()) {
      it = index_.emplace(id, loads_.size()).first;
      loads_.emplace_back();
    }
    ++loads_[it->second].runs;
    loads_[it->second].busy_s += busy_s;
  }

  std::vector<ParallelStats::WorkerLoad> take() { return std::move(loads_); }

 private:
  std::mutex mu_;
  std::map<std::thread::id, std::size_t> index_;
  std::vector<ParallelStats::WorkerLoad> loads_;
};

std::string describe_failure(const RunConfig& run, const char* what) {
  return "run_seed=" + std::to_string(run.run_seed) +
         " venue=" + run.venue.name + " attacker=" + to_string(run.kind) +
         ": " + what;
}

/// run_campaign with the exception firewall: a throwing run yields a
/// default RunOutput carrying the failure description instead of
/// propagating and discarding every other run's result.
RunOutput run_guarded(const World& world, const RunConfig& run,
                      LoadTracker* tracker) {
  const auto start = std::chrono::steady_clock::now();
  RunOutput out;
  try {
    out = run_campaign(world, run);
  } catch (const std::exception& e) {
    out = RunOutput{};
    out.error = describe_failure(run, e.what());
  } catch (...) {
    out = RunOutput{};
    out.error = describe_failure(run, "unknown exception");
  }
  if (tracker != nullptr) {
    tracker->add(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count());
  }
  return out;
}

/// Retry each failed run once, each on a fresh thread: a crash caused by a
/// poisoned pool worker (TLS, FP state) should not condemn the rerun. A run
/// that fails twice keeps its second error.
void retry_failed(const World& world, std::span<const RunConfig> runs,
                  std::vector<RunOutput>& outputs, LoadTracker* tracker) {
  std::vector<std::pair<std::size_t, std::future<RunOutput>>> retries;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].error.empty()) continue;
    retries.emplace_back(
        i, std::async(std::launch::async, [&world, &run = runs[i], tracker] {
          return run_guarded(world, run, tracker);
        }));
  }
  for (auto& [i, f] : retries) outputs[i] = f.get();
}

}  // namespace

std::vector<RunOutput> run_campaigns(const World& world,
                                     std::span<const RunConfig> runs,
                                     ParallelConfig cfg,
                                     ParallelStats* stats) {
  const auto wall_start = std::chrono::steady_clock::now();
  LoadTracker tracker_storage;
  LoadTracker* tracker = stats != nullptr ? &tracker_storage : nullptr;
  const auto finish = [&](std::size_t workers,
                          std::vector<RunOutput> outputs) {
    if (stats != nullptr) {
      *stats = ParallelStats{};
      stats->workers = workers;
      stats->wall_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
      stats->loads = tracker_storage.take();
    }
    return outputs;
  };

  std::vector<RunOutput> outputs;
  outputs.reserve(runs.size());

  std::size_t workers = cfg.threads;
  if (workers == 0) workers = support::ThreadPool::default_workers();
  if (workers <= 1 || runs.size() <= 1) {
    for (const auto& run : runs) {
      outputs.push_back(run_guarded(world, run, tracker));
    }
    retry_failed(world, runs, outputs, tracker);
    return finish(1, std::move(outputs));
  }

  support::ThreadPool pool(workers);
  std::vector<std::future<RunOutput>> futures;
  futures.reserve(runs.size());
  for (const auto& run : runs) {
    futures.push_back(pool.submit(
        [&world, &run, tracker] { return run_guarded(world, run, tracker); }));
  }
  // run_guarded never throws, so every future resolves and every healthy
  // run's output is collected regardless of failures elsewhere.
  for (auto& f : futures) outputs.push_back(f.get());
  retry_failed(world, runs, outputs, tracker);
  return finish(workers, std::move(outputs));
}

std::size_t failed_runs(const std::vector<RunOutput>& outputs) {
  std::size_t n = 0;
  for (const auto& out : outputs) {
    if (!out.error.empty()) ++n;
  }
  return n;
}

}  // namespace cityhunter::sim
