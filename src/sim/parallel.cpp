#include "sim/parallel.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "medium/event_queue.h"
#include "support/atomic_file.h"
#include "support/thread_pool.h"

namespace cityhunter::sim {

namespace {

/// Accumulates per-OS-thread busy time. Locked once per run (runs last
/// milliseconds to seconds), so contention is irrelevant.
class LoadTracker {
 public:
  void add(double busy_s) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto id = std::this_thread::get_id();
    auto it = index_.find(id);
    if (it == index_.end()) {
      it = index_.emplace(id, loads_.size()).first;
      loads_.emplace_back();
    }
    ++loads_[it->second].runs;
    loads_[it->second].busy_s += busy_s;
  }

  std::vector<ParallelStats::WorkerLoad> take() { return std::move(loads_); }

 private:
  std::mutex mu_;
  std::map<std::thread::id, std::size_t> index_;
  std::vector<ParallelStats::WorkerLoad> loads_;
};

std::string describe_failure(const RunConfig& run, const char* what) {
  return "run_seed=" + std::to_string(run.run_seed) +
         " venue=" + run.venue.name + " attacker=" + to_string(run.kind) +
         ": " + what;
}

RunErrorKind classify_abort(medium::RunAbortError::Kind k) {
  switch (k) {
    case medium::RunAbortError::Kind::kDeadlineExceeded:
      return RunErrorKind::kDeadlineExceeded;
    case medium::RunAbortError::Kind::kEventBudgetExceeded:
      return RunErrorKind::kEventBudgetExceeded;
    case medium::RunAbortError::Kind::kCancelled:
      return RunErrorKind::kCancelled;
  }
  return RunErrorKind::kException;
}

/// One attempt of one run behind the exception firewall: whatever goes
/// wrong is classified into RunOutput::error instead of propagating and
/// discarding every other run's result. `inject_throw` is the chaos layer's
/// synthetic exception.
RunOutput attempt_run(const World& world, const RunConfig& run,
                      bool inject_throw, LoadTracker* tracker,
                      SetupCache* setup_cache) {
  const auto start = std::chrono::steady_clock::now();
  RunOutput out;
  try {
    if (inject_throw) {
      throw std::runtime_error("chaos: injected failure before the run");
    }
    out = run_campaign(world, run, setup_cache);
  } catch (const medium::RunAbortError& e) {
    out = RunOutput{};
    out.error.kind = classify_abort(e.kind());
    out.error.message = describe_failure(run, e.what());
  } catch (const std::exception& e) {
    // Includes medium::PastScheduleError — a poisoned schedule surfaces as
    // a classified kException with the queue's now/requested message, not
    // an anonymous crash.
    out = RunOutput{};
    out.error.kind = RunErrorKind::kException;
    out.error.message = describe_failure(run, e.what());
  } catch (...) {
    out = RunOutput{};
    out.error.kind = RunErrorKind::kException;
    out.error.message = describe_failure(run, "unknown exception");
  }
  if (tracker != nullptr) {
    tracker->add(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count());
  }
  return out;
}

/// Shared supervision state for one run_campaigns()/resume_campaigns()
/// call: result slots, completion count, checkpoint writer and the chaos
/// kill switch. All completion-side mutation happens under one mutex —
/// completions are seconds apart, contention is irrelevant.
class Supervisor {
 public:
  Supervisor(const World& world, std::span<const RunConfig> runs,
             const ParallelConfig& cfg, LoadTracker* tracker)
      : world_(world),
        runs_(runs),
        cfg_(cfg),
        chaos_(cfg.chaos.any() ? cfg.chaos : ChaosConfig::from_env()),
        tracker_(tracker),
        outputs_(runs.size()),
        done_(runs.size(), false) {
    if (cfg_.checkpoint_every < 1) {
      throw std::invalid_argument(
          "ParallelConfig: checkpoint_every must be >= 1");
    }
    if (!cfg_.checkpoint_path.empty()) {
      config_hash_ = campaign_config_hash(world_, runs_);
    }
  }

  /// Pre-fill slots restored from a checkpoint (resume path).
  void restore(std::vector<CompletedRun> completed) {
    for (CompletedRun& run : completed) {
      outputs_[run.index] = std::move(run.output);
      done_[run.index] = true;
      ++completed_count_;
      ++resumed_runs_;
    }
  }

  bool is_done(std::size_t index) const { return done_[index]; }

  /// The full retry loop for one run: attempt, classify, back off, retry
  /// while retryable, then record the completion (which may checkpoint and
  /// may pull the chaos kill switch). Never throws.
  void supervise(std::size_t index) {
    const RunConfig& base = runs_[index];
    // Defensive clamp: an out-of-range max_retries makes run_campaign
    // throw kException on every attempt; the loop bound must still be sane.
    const int retries_allowed = std::min(std::max(base.max_retries, 0), 8);
    for (int attempt = 0;; ++attempt) {
      RunConfig run = base;
      bool inject_throw = false;
      if (attempt == 0) {
        // Chaos sabotages the first attempt only; retries run clean, so
        // the supervised campaign converges to the unchaosed output.
        if (chaos_.throw_run == static_cast<int>(index)) inject_throw = true;
        if (chaos_.hang_run == static_cast<int>(index)) {
          run.chaos_hang = true;
          if (run.deadline_s <= 0.0) {
            run.deadline_s = ChaosConfig::kHangRescueDeadlineS;
          }
        }
        if (chaos_.poison_run == static_cast<int>(index)) {
          run.chaos_poison_schedule = true;
        }
      }
      RunOutput out = attempt_run(world_, run, inject_throw, tracker_,
                                  cfg_.warm_start_setup ? &setup_cache_ : nullptr);
      if (!out.error.failed()) {
        // error.attempts stays 0 on success — a retried-then-successful
        // run is bit-identical to an undisturbed one. The retry count
        // lives in the supervisor counters instead.
        complete(index, std::move(out));
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        switch (out.error.kind) {
          case RunErrorKind::kDeadlineExceeded: ++timeouts_; break;
          case RunErrorKind::kEventBudgetExceeded: ++event_budget_trips_; break;
          case RunErrorKind::kCancelled: ++cancelled_; break;
          default: break;
        }
      }
      if (out.error.retryable() && attempt < retries_allowed) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++retries_;
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(
            retry_backoff_s(base.run_seed, static_cast<std::uint32_t>(attempt))));
        continue;
      }
      if (out.error.retryable() && retries_allowed > 0) {
        // Every allowed attempt failed; the kind says so, the message
        // keeps the last underlying failure verbatim.
        out.error.kind = RunErrorKind::kRetryExhausted;
      }
      out.error.attempts = static_cast<std::uint32_t>(attempt + 1);
      complete(index, std::move(out));
      return;
    }
  }

  std::vector<RunOutput> take_outputs() { return std::move(outputs_); }

  void fill_stats(ParallelStats& stats) const {
    stats.retries = retries_;
    stats.timeouts = timeouts_;
    stats.event_budget_trips = event_budget_trips_;
    stats.cancelled = cancelled_;
    stats.checkpoint_writes = checkpoint_writes_;
    stats.checkpoint_bytes = checkpoint_bytes_;
    stats.checkpoint_write_failures = checkpoint_write_failures_;
    stats.resumed_runs = resumed_runs_;
  }

 private:
  void complete(std::size_t index, RunOutput&& out) {
    std::lock_guard<std::mutex> lock(mu_);
    outputs_[index] = std::move(out);
    done_[index] = true;
    ++completed_count_;
    if (!cfg_.checkpoint_path.empty() &&
        (completed_count_ % static_cast<std::size_t>(cfg_.checkpoint_every) ==
             0 ||
         completed_count_ == runs_.size())) {
      write_checkpoint_locked();
    }
    if (chaos_.kill_after >= 0 &&
        completed_count_ >= static_cast<std::size_t>(chaos_.kill_after)) {
      // The crash half of the kill-and-resume drill: die exactly like a
      // machine losing power — no flushing, no unwinding. Resume must
      // reconstruct everything past the last checkpoint from seeds alone.
      std::raise(SIGKILL);
    }
  }

  void write_checkpoint_locked() {
    CampaignCheckpoint cp;
    cp.config_hash = config_hash_;
    cp.total_runs = static_cast<std::uint32_t>(runs_.size());
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      if (!done_[i]) continue;
      CompletedRun run;
      run.index = static_cast<std::uint32_t>(i);
      run.output = outputs_[i];
      cp.completed.push_back(std::move(run));
    }
    const std::string bytes = encode_checkpoint(cp);
    std::string error;
    if (support::write_file_atomic(cfg_.checkpoint_path, bytes, &error)) {
      ++checkpoint_writes_;
      checkpoint_bytes_ += bytes.size();
    } else {
      // A checkpoint that cannot be written must not kill the campaign it
      // exists to protect; the failure is surfaced as a counter.
      ++checkpoint_write_failures_;
    }
  }

  const World& world_;
  std::span<const RunConfig> runs_;
  ParallelConfig cfg_;
  ChaosConfig chaos_;
  LoadTracker* tracker_;
  /// Campaign-lifetime memoized setup (cfg_.warm_start_setup); internally
  /// mutex-serialised, shared by every worker's attempts.
  SetupCache setup_cache_;

  std::mutex mu_;
  std::vector<RunOutput> outputs_;
  std::vector<bool> done_;
  std::size_t completed_count_ = 0;
  std::uint64_t config_hash_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t event_budget_trips_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t checkpoint_writes_ = 0;
  std::uint64_t checkpoint_bytes_ = 0;
  std::uint64_t checkpoint_write_failures_ = 0;
  std::uint64_t resumed_runs_ = 0;
};

/// The shared engine behind run_campaigns() and resume_campaigns(): fan the
/// not-yet-done runs over the pool (or run serially), profile, collect.
/// `tracker` is the same object the supervisor profiles into.
std::vector<RunOutput> drive(std::span<const RunConfig> runs,
                             const ParallelConfig& cfg, ParallelStats* stats,
                             Supervisor& supervisor, LoadTracker& tracker) {
  const auto wall_start = std::chrono::steady_clock::now();

  std::vector<std::size_t> pending;
  pending.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!supervisor.is_done(i)) pending.push_back(i);
  }

  std::size_t workers = cfg.threads;
  if (workers == 0) workers = support::ThreadPool::default_workers();
  if (workers <= 1 || pending.size() <= 1) {
    workers = 1;
    for (const std::size_t i : pending) supervisor.supervise(i);
  } else {
    support::ThreadPool pool(workers);
    std::vector<std::future<void>> futures;
    futures.reserve(pending.size());
    for (const std::size_t i : pending) {
      futures.push_back(pool.submit([&supervisor, i] {
        // supervise() never throws, so every future resolves and every
        // healthy run's output is collected regardless of failures
        // elsewhere.
        supervisor.supervise(i);
      }));
    }
    for (auto& f : futures) f.get();
  }

  if (stats != nullptr) {
    *stats = ParallelStats{};
    stats->workers = workers;
    stats->wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    stats->loads = tracker.take();
    supervisor.fill_stats(*stats);
  }
  return supervisor.take_outputs();
}

}  // namespace

ChaosConfig ChaosConfig::from_env() {
  ChaosConfig c;
  const char* env = std::getenv("CITYHUNTER_CHAOS");
  if (env == nullptr || *env == '\0') return c;
  std::string_view rest(env);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = token.substr(0, eq);
    int value = -1;
    try {
      value = std::stoi(std::string(token.substr(eq + 1)));
    } catch (const std::exception&) {
      continue;  // malformed value: leave the knob off
    }
    if (key == "throw") c.throw_run = value;
    else if (key == "hang") c.hang_run = value;
    else if (key == "poison") c.poison_run = value;
    else if (key == "kill_after") c.kill_after = value;
  }
  return c;
}

double retry_backoff_s(std::uint64_t run_seed, std::uint32_t attempt) {
  // splitmix64-style finalizer over (seed, attempt): the schedule is a pure
  // function of the run identity, so a re-executed campaign backs off
  // identically — no wallclock, no global RNG.
  std::uint64_t x =
      run_seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(attempt) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const double base = 0.001 * static_cast<double>(1ULL << std::min(attempt, 7u));
  const double jitter =
      base * (static_cast<double>(x >> 11) * 0x1.0p-53);
  return base + jitter;
}

std::vector<RunOutput> run_campaigns(const World& world,
                                     std::span<const RunConfig> runs,
                                     ParallelConfig cfg,
                                     ParallelStats* stats) {
  LoadTracker tracker;
  Supervisor supervisor(world, runs, cfg,
                        stats != nullptr ? &tracker : nullptr);
  return drive(runs, cfg, stats, supervisor, tracker);
}

std::vector<RunOutput> resume_campaigns(const World& world,
                                        std::span<const RunConfig> runs,
                                        ParallelConfig cfg,
                                        ParallelStats* stats) {
  if (cfg.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "resume_campaigns: checkpoint_path must be set");
  }
  const std::uint64_t expected = campaign_config_hash(world, runs);
  auto loaded = load_checkpoint(cfg.checkpoint_path, expected);
  if (auto* err = std::get_if<CheckpointError>(&loaded)) {
    throw CheckpointResumeError(std::move(*err));
  }
  CampaignCheckpoint cp = std::move(std::get<CampaignCheckpoint>(loaded));
  if (cp.total_runs != runs.size()) {
    CheckpointError err;
    err.kind = CheckpointErrorKind::kConfigMismatch;
    err.message = "checkpoint covers " + std::to_string(cp.total_runs) +
                  " runs, campaign has " + std::to_string(runs.size());
    throw CheckpointResumeError(std::move(err));
  }

  LoadTracker tracker;
  Supervisor supervisor(world, runs, cfg,
                        stats != nullptr ? &tracker : nullptr);
  supervisor.restore(std::move(cp.completed));
  return drive(runs, cfg, stats, supervisor, tracker);
}

std::size_t failed_runs(const std::vector<RunOutput>& outputs) {
  std::size_t n = 0;
  for (const auto& out : outputs) {
    if (out.error.failed()) ++n;
  }
  return n;
}

}  // namespace cityhunter::sim
