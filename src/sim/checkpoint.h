// Crash-safe campaign checkpoints.
//
// A multi-hour campaign must survive the process dying under it. Because
// run_campaign() is pure in (world seed, RunConfig), the minimal sufficient
// snapshot of campaign progress is tiny: WHICH runs have completed and WHAT
// they produced. No simulator state is saved — a resumed campaign simply
// re-derives every missing run from its seed, so the final output vector is
// bit-identical to an uninterrupted campaign (tests/checkpoint_test golden-
// asserts this, byte for byte).
//
// On-disk format (little-endian throughout):
//
//   magic "CHKP" | u32 version | u64 total_length | u64 config_hash |
//   u32 total_runs | u32 completed_count | completed entries... | u32 crc32
//
// where each entry is `u32 run_index | serialized RunOutput` and the CRC-32
// (the same dot11/crc32 the 802.11 FCS path uses) covers every byte before
// it. Files are written via support::write_file_atomic (tmp + fsync +
// rename), so a reader sees either the previous complete checkpoint or the
// new complete checkpoint — never a torn hybrid. Decoding rejects damage
// with a distinct, actionable error per failure mode (truncation, bit flip,
// version skew, wrong campaign); a checkpoint is never partially applied.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "sim/scenario.h"

namespace cityhunter::sim {

enum class CheckpointErrorKind : std::uint8_t {
  kIoError = 0,          // open/read failed (missing file, permissions)
  kTruncated = 1,        // byte count disagrees with the header's length
  kBadMagic = 2,         // not a checkpoint file at all
  kBadVersion = 3,       // produced by an incompatible format revision
  kCrcMismatch = 4,      // bit damage: payload fails the CRC-32
  kConfigMismatch = 5,   // checkpoint belongs to a different campaign
  kMalformed = 6,        // structurally inconsistent despite a valid CRC
};

const char* to_string(CheckpointErrorKind k);

struct CheckpointError {
  CheckpointErrorKind kind = CheckpointErrorKind::kIoError;
  std::string message;

  /// "kind: message" for banners and exception texts.
  std::string str() const;
};

struct CompletedRun {
  std::uint32_t index = 0;  // position in the campaign's RunConfig span
  RunOutput output;
};

struct CampaignCheckpoint {
  static constexpr std::uint32_t kFormatVersion = 1;

  /// campaign_config_hash() of the (world, runs) the checkpoint belongs to.
  std::uint64_t config_hash = 0;
  /// Size of the campaign's RunConfig span — a resume against a different
  /// run count is rejected even if the hash were to collide.
  std::uint32_t total_runs = 0;
  /// Completed runs in ascending index order.
  std::vector<CompletedRun> completed;
};

/// Digest of everything that identifies a campaign: the world seed plus
/// each run's behavioural knobs (kind, seed, venue, duration, slot, limits).
/// FNV-1a over a canonical byte string — a resume guard against feeding a
/// checkpoint to the wrong campaign, not a cryptographic commitment.
std::uint64_t campaign_config_hash(const World& world,
                                   std::span<const RunConfig> runs);

/// Serialize one RunOutput, appending to `out`. Covers every field,
/// including the attacker database, metrics/trace harvest and the
/// structured error — the byte string is a total representation, which is
/// what lets tests assert resumed == uninterrupted byte-for-byte.
void serialize_run_output(std::string& out, const RunOutput& run);

/// The canonical DETERMINISTIC byte representation of one RunOutput: the
/// full serialization with the wallclock stripped — PhaseProfile zeroed and
/// kTimer metric points dropped (MetricsSnapshot::deterministic()). This is
/// the unit of byte-identity for resumed == uninterrupted assertions; the
/// wallclock fields are steady_clock measurements that legitimately differ
/// between an original and a recomputed run, by design.
std::string run_output_bytes(const RunOutput& run);

/// Encode to the on-disk byte format (header + entries + CRC trailer).
std::string encode_checkpoint(const CampaignCheckpoint& cp);

/// Decode and fully validate bytes. Returns the checkpoint or the first
/// distinct failure (truncation / magic / version / CRC / structure).
std::variant<CampaignCheckpoint, CheckpointError> decode_checkpoint(
    std::string_view bytes);

/// Atomically (re)write the checkpoint file. Returns false and fills
/// `error` on I/O failure; the previous checkpoint, if any, is untouched.
bool write_checkpoint(const std::string& path, const CampaignCheckpoint& cp,
                      std::string* error = nullptr);

/// Read + decode + validate against the campaign identified by
/// `expected_config_hash`. Every failure mode yields its distinct kind;
/// there is no partial success.
std::variant<CampaignCheckpoint, CheckpointError> load_checkpoint(
    const std::string& path, std::uint64_t expected_config_hash);

}  // namespace cityhunter::sim
