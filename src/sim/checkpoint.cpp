#include "sim/checkpoint.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "dot11/crc32.h"
#include "support/atomic_file.h"

namespace cityhunter::sim {
namespace {

// --- little-endian byte building/parsing -------------------------------
//
// The format is explicit-width little-endian regardless of host order so a
// checkpoint written on one machine resumes on another. Doubles travel as
// their IEEE-754 bit pattern (bit_cast) — exact round-trip, which the
// byte-identical resume guarantee depends on.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked cursor over the payload. Any overrun latches fail() and
/// every later read returns a zero value, so decoders can parse straight
/// through and test failure once at the end (-> kMalformed).
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (!require(4)) return 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes_[pos_++]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (!require(8)) return 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes_[pos_++]))
           << (8 * i);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    if (!require(n)) return {};
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool fail() const { return fail_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  bool require(std::size_t n) {
    if (fail_ || bytes_.size() - pos_ < n) {
      fail_ = true;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

// --- RunOutput field-by-field ------------------------------------------

void put_sim_time(std::string& out, support::SimTime t) { put_i64(out, t.us()); }

support::SimTime get_sim_time(ByteReader& r) {
  return support::SimTime::microseconds(r.i64());
}

void put_campaign_result(std::string& out, const stats::CampaignResult& r) {
  put_str(out, r.label);
  put_u64(out, r.total_clients);
  put_u64(out, r.direct_clients);
  put_u64(out, r.broadcast_clients);
  put_u64(out, r.direct_connected);
  put_u64(out, r.broadcast_connected);
  put_u64(out, r.hits_from_wigle);
  put_u64(out, r.hits_from_direct_db);
  put_u64(out, r.hits_from_carrier_seed);
  put_u64(out, r.hits_via_popularity);
  put_u64(out, r.hits_via_popularity_ghost);
  put_u64(out, r.hits_via_freshness);
  put_u64(out, r.hits_via_freshness_ghost);
  put_u32(out, static_cast<std::uint32_t>(r.ssids_sent_connected.size()));
  for (const int v : r.ssids_sent_connected) put_i32(out, v);
  put_u32(out, static_cast<std::uint32_t>(r.ssids_sent_all_broadcast.size()));
  for (const int v : r.ssids_sent_all_broadcast) put_i32(out, v);
}

stats::CampaignResult get_campaign_result(ByteReader& r) {
  stats::CampaignResult out;
  out.label = r.str();
  out.total_clients = r.u64();
  out.direct_clients = r.u64();
  out.broadcast_clients = r.u64();
  out.direct_connected = r.u64();
  out.broadcast_connected = r.u64();
  out.hits_from_wigle = r.u64();
  out.hits_from_direct_db = r.u64();
  out.hits_from_carrier_seed = r.u64();
  out.hits_via_popularity = r.u64();
  out.hits_via_popularity_ghost = r.u64();
  out.hits_via_freshness = r.u64();
  out.hits_via_freshness_ghost = r.u64();
  const std::uint32_t nc = r.u32();
  if (!r.fail()) {
    out.ssids_sent_connected.reserve(nc);
    for (std::uint32_t i = 0; i < nc && !r.fail(); ++i) {
      out.ssids_sent_connected.push_back(r.i32());
    }
  }
  const std::uint32_t nb = r.u32();
  if (!r.fail()) {
    out.ssids_sent_all_broadcast.reserve(nb);
    for (std::uint32_t i = 0; i < nb && !r.fail(); ++i) {
      out.ssids_sent_all_broadcast.push_back(r.i32());
    }
  }
  return out;
}

void put_database(std::string& out, const core::SsidDatabase& db) {
  const auto& records = db.records();
  put_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const auto& rec : records) {
    put_str(out, rec.ssid);
    put_f64(out, rec.weight);
    put_u8(out, static_cast<std::uint8_t>(rec.source));
    put_i32(out, rec.hits);
    put_u8(out, rec.last_hit ? 1 : 0);
    if (rec.last_hit) put_sim_time(out, *rec.last_hit);
    put_sim_time(out, rec.added);
    put_u64(out, rec.insertion_order);
  }
}

core::SsidDatabase get_database(ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<core::SsidRecord> records;
  if (!r.fail()) records.reserve(n);
  for (std::uint32_t i = 0; i < n && !r.fail(); ++i) {
    core::SsidRecord rec;
    rec.ssid = r.str();
    rec.weight = r.f64();
    rec.source = static_cast<core::SsidSource>(r.u8());
    rec.hits = r.i32();
    if (r.u8()) rec.last_hit = get_sim_time(r);
    rec.added = get_sim_time(r);
    rec.insertion_order = r.u64();
    records.push_back(std::move(rec));
  }
  core::SsidDatabase db;
  db.restore(std::move(records));
  return db;
}

RunOutput get_run_output(ByteReader& r) {
  RunOutput out;
  out.result = get_campaign_result(r);
  const std::uint32_t ns = r.u32();
  if (!r.fail()) out.series.reserve(ns);
  for (std::uint32_t i = 0; i < ns && !r.fail(); ++i) {
    SeriesPoint p;
    p.time = get_sim_time(r);
    p.db_size = r.u64();
    p.broadcast_connected = r.u64();
    out.series.push_back(p);
  }
  const std::uint32_t nw = r.u32();
  if (!r.fail()) out.window_rates.reserve(nw);
  for (std::uint32_t i = 0; i < nw && !r.fail(); ++i) {
    stats::WindowRate w;
    w.start = get_sim_time(r);
    w.broadcast_clients = r.u64();
    w.broadcast_connected = r.u64();
    out.window_rates.push_back(w);
  }
  out.final_pb_size = r.i32();
  out.final_fb_size = r.i32();
  out.db_final_size = r.u64();
  out.db_from_direct = r.u64();
  out.deauths_sent = r.u64();
  out.frames_transmitted = r.u64();
  out.frames_delivered = r.u64();
  out.medium_stats.transmissions = r.u64();
  out.medium_stats.deliveries = r.u64();
  out.medium_stats.frames_lost = r.u64();
  out.medium_stats.frames_corrupted = r.u64();
  out.medium_stats.retries = r.u64();
  out.database = get_database(r);
  out.queue_stats.scheduled = r.u64();
  out.queue_stats.processed = r.u64();
  out.queue_stats.peak_pending = r.u64();
  out.queue_stats.slab_slots = r.u64();
  out.queue_stats.slab_reuses = r.u64();
  out.phases.setup_s = r.f64();
  out.phases.sim_s = r.f64();
  out.phases.analysis_s = r.f64();
  const std::uint32_t nm = r.u32();
  if (!r.fail()) out.metrics.points.reserve(nm);
  for (std::uint32_t i = 0; i < nm && !r.fail(); ++i) {
    obs::MetricPoint p;
    p.name = r.str();
    p.kind = static_cast<obs::MetricKind>(r.u8());
    p.count = r.u64();
    p.value = r.f64();
    p.min = r.f64();
    p.max = r.f64();
    out.metrics.points.push_back(std::move(p));
  }
  const std::uint32_t nt = r.u32();
  if (!r.fail()) out.trace.reserve(nt);
  for (std::uint32_t i = 0; i < nt && !r.fail(); ++i) {
    obs::TraceRecord t;
    t.time_us = r.i64();
    t.seq = r.u64();
    t.a = r.u64();
    t.b = r.u64();
    t.category = static_cast<obs::Category>(r.u8());
    t.event = static_cast<obs::Event>(r.u8());
    out.trace.push_back(t);
  }
  out.trace_dropped = r.u64();
  out.error.kind = static_cast<RunErrorKind>(r.u8());
  out.error.message = r.str();
  out.error.attempts = r.u32();
  return out;
}

constexpr char kMagic[4] = {'C', 'H', 'K', 'P'};
// magic + version + total_length + config_hash + total_runs + count
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8 + 4 + 4;
constexpr std::size_t kCrcSize = 4;

std::uint32_t crc_of(std::string_view bytes) {
  return dot11::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
}

CheckpointError make_error(CheckpointErrorKind kind, std::string message) {
  CheckpointError e;
  e.kind = kind;
  e.message = std::move(message);
  return e;
}

}  // namespace

const char* to_string(CheckpointErrorKind k) {
  switch (k) {
    case CheckpointErrorKind::kIoError: return "io-error";
    case CheckpointErrorKind::kTruncated: return "truncated";
    case CheckpointErrorKind::kBadMagic: return "bad-magic";
    case CheckpointErrorKind::kBadVersion: return "bad-version";
    case CheckpointErrorKind::kCrcMismatch: return "crc-mismatch";
    case CheckpointErrorKind::kConfigMismatch: return "config-mismatch";
    case CheckpointErrorKind::kMalformed: return "malformed";
  }
  return "?";
}

std::string CheckpointError::str() const {
  std::string out = to_string(kind);
  out += ": ";
  out += message;
  return out;
}

std::uint64_t campaign_config_hash(const World& world,
                                   std::span<const RunConfig> runs) {
  // Canonical byte string of the behavioural identity of the campaign,
  // digested with FNV-1a. Wallclock-only knobs (deadline, retries) are
  // included too: two campaigns that differ in supervision limits may fail
  // differently, so their checkpoints should not be interchangeable.
  std::string canon;
  put_u64(canon, world.config().seed);
  put_u32(canon, static_cast<std::uint32_t>(runs.size()));
  for (const RunConfig& run : runs) {
    put_u8(canon, static_cast<std::uint8_t>(run.kind));
    put_u64(canon, run.run_seed);
    put_sim_time(canon, run.duration);
    const mobility::VenueConfig& v = run.venue;
    put_str(canon, v.name);
    put_u8(canon, static_cast<std::uint8_t>(v.pattern));
    put_f64(canon, v.extent_m);
    put_f64(canon, v.width_m);
    put_f64(canon, v.mean_dwell_min);
    put_f64(canon, v.dwell_sigma);
    put_f64(canon, v.mean_speed_mps);
    put_f64(canon, v.speed_sd_mps);
    put_f64(canon, v.hybrid_static_fraction);
    put_f64(canon, v.mean_scan_interval_s);
    put_f64(canon, v.group_fraction);
    for (const double w : v.group_size_weights) put_f64(canon, w);
    put_u32(canon, static_cast<std::uint32_t>(v.venue_ssids.size()));
    for (const auto& s : v.venue_ssids) put_str(canon, s);
    put_f64(canon, v.venue_regular_prob);
    for (const double c : v.hourly_clients) put_f64(canon, c);
    for (const double g : v.hourly_group_fraction) put_f64(canon, g);
    const mobility::SlotParams& slot = run.slot;
    put_f64(canon, slot.expected_clients);
    put_f64(canon, slot.group_fraction);
    put_f64(canon, slot.pre_associated_fraction);
    put_u8(canon, slot.legit_ap ? 1 : 0);
    if (slot.legit_ap) {
      for (const std::uint8_t o : slot.legit_ap->octets()) put_u8(canon, o);
    }
    put_f64(canon, slot.mac_randomizing_fraction);
    put_u8(canon, run.seed_carrier_ssids ? 1 : 0);
    put_u8(canon, run.deauth ? 1 : 0);
    if (run.deauth) {
      put_f64(canon, run.deauth->pre_associated_fraction);
      put_sim_time(canon, run.deauth->interval);
      put_u8(canon, run.deauth->enable_deauth ? 1 : 0);
    }
    put_u8(canon, run.sample_every ? 1 : 0);
    if (run.sample_every) put_sim_time(canon, *run.sample_every);
    put_u8(canon, run.medium ? 1 : 0);
    put_u8(canon, run.intra_run_workers ? 1 : 0);
    if (run.intra_run_workers) put_i32(canon, *run.intra_run_workers);
    put_u8(canon, run.initial_database ? 1 : 0);
    put_u8(canon, run.obs.enabled ? 1 : 0);
    put_f64(canon, run.deadline_s);
    put_u64(canon, run.max_sim_events);
    put_i32(canon, run.max_retries);
    put_u8(canon, run.chaos_hang ? 1 : 0);
    put_u8(canon, run.chaos_poison_schedule ? 1 : 0);
  }

  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : canon) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

void serialize_run_output(std::string& out, const RunOutput& run) {
  put_campaign_result(out, run.result);
  put_u32(out, static_cast<std::uint32_t>(run.series.size()));
  for (const SeriesPoint& p : run.series) {
    put_sim_time(out, p.time);
    put_u64(out, p.db_size);
    put_u64(out, p.broadcast_connected);
  }
  put_u32(out, static_cast<std::uint32_t>(run.window_rates.size()));
  for (const stats::WindowRate& w : run.window_rates) {
    put_sim_time(out, w.start);
    put_u64(out, w.broadcast_clients);
    put_u64(out, w.broadcast_connected);
  }
  put_i32(out, run.final_pb_size);
  put_i32(out, run.final_fb_size);
  put_u64(out, run.db_final_size);
  put_u64(out, run.db_from_direct);
  put_u64(out, run.deauths_sent);
  put_u64(out, run.frames_transmitted);
  put_u64(out, run.frames_delivered);
  put_u64(out, run.medium_stats.transmissions);
  put_u64(out, run.medium_stats.deliveries);
  put_u64(out, run.medium_stats.frames_lost);
  put_u64(out, run.medium_stats.frames_corrupted);
  put_u64(out, run.medium_stats.retries);
  put_database(out, run.database);
  put_u64(out, run.queue_stats.scheduled);
  put_u64(out, run.queue_stats.processed);
  put_u64(out, run.queue_stats.peak_pending);
  put_u64(out, run.queue_stats.slab_slots);
  put_u64(out, run.queue_stats.slab_reuses);
  put_f64(out, run.phases.setup_s);
  put_f64(out, run.phases.sim_s);
  put_f64(out, run.phases.analysis_s);
  put_u32(out, static_cast<std::uint32_t>(run.metrics.points.size()));
  for (const obs::MetricPoint& p : run.metrics.points) {
    put_str(out, p.name);
    put_u8(out, static_cast<std::uint8_t>(p.kind));
    put_u64(out, p.count);
    put_f64(out, p.value);
    put_f64(out, p.min);
    put_f64(out, p.max);
  }
  put_u32(out, static_cast<std::uint32_t>(run.trace.size()));
  for (const obs::TraceRecord& t : run.trace) {
    put_i64(out, t.time_us);
    put_u64(out, t.seq);
    put_u64(out, t.a);
    put_u64(out, t.b);
    put_u8(out, static_cast<std::uint8_t>(t.category));
    put_u8(out, static_cast<std::uint8_t>(t.event));
  }
  put_u64(out, run.trace_dropped);
  put_u8(out, static_cast<std::uint8_t>(run.error.kind));
  put_str(out, run.error.message);
  put_u32(out, run.error.attempts);
}

std::string run_output_bytes(const RunOutput& run) {
  // Strip the wallclock on a copy: every other field is a pure function of
  // (world, config), but the phase profile and kTimer metric points are
  // steady_clock readings that legitimately differ between an original and
  // a recomputed run.
  RunOutput canon = run;
  canon.phases = PhaseProfile{};
  canon.metrics = run.metrics.deterministic();
  std::string out;
  serialize_run_output(out, canon);
  return out;
}

std::string encode_checkpoint(const CampaignCheckpoint& cp) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, CampaignCheckpoint::kFormatVersion);
  put_u64(out, 0);  // total_length placeholder, patched below
  put_u64(out, cp.config_hash);
  put_u32(out, cp.total_runs);
  put_u32(out, static_cast<std::uint32_t>(cp.completed.size()));
  for (const CompletedRun& run : cp.completed) {
    put_u32(out, run.index);
    serialize_run_output(out, run.output);
  }
  // Patch the real total length (header + payload + CRC trailer) into the
  // header, then seal with the CRC over everything before it. The length
  // field lets decoders distinguish "file got cut short" from "bits
  // flipped" — truncation alters the size, bit rot alters the CRC.
  const std::uint64_t total = out.size() + kCrcSize;
  for (int i = 0; i < 8; ++i) {
    out[8 + i] = static_cast<char>((total >> (8 * i)) & 0xff);
  }
  put_u32(out, crc_of(out));
  return out;
}

std::variant<CampaignCheckpoint, CheckpointError> decode_checkpoint(
    std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic)) {
    return make_error(CheckpointErrorKind::kTruncated,
                      "file shorter than the magic header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return make_error(CheckpointErrorKind::kBadMagic,
                      "not a campaign checkpoint (bad magic)");
  }
  if (bytes.size() < kHeaderSize) {
    return make_error(CheckpointErrorKind::kTruncated,
                      "file shorter than the checkpoint header");
  }
  ByteReader header(bytes.substr(sizeof(kMagic)));
  const std::uint32_t version = header.u32();
  if (version != CampaignCheckpoint::kFormatVersion) {
    std::ostringstream oss;
    oss << "format version " << version << ", expected "
        << CampaignCheckpoint::kFormatVersion;
    return make_error(CheckpointErrorKind::kBadVersion, oss.str());
  }
  const std::uint64_t total_length = header.u64();
  if (bytes.size() != total_length) {
    std::ostringstream oss;
    oss << "file holds " << bytes.size() << " bytes, header promises "
        << total_length;
    return make_error(bytes.size() < total_length
                          ? CheckpointErrorKind::kTruncated
                          : CheckpointErrorKind::kMalformed,
                      oss.str());
  }
  const std::string_view body = bytes.substr(0, bytes.size() - kCrcSize);
  ByteReader trailer(bytes.substr(bytes.size() - kCrcSize));
  const std::uint32_t want_crc = trailer.u32();
  const std::uint32_t got_crc = crc_of(body);
  if (want_crc != got_crc) {
    std::ostringstream oss;
    oss << "payload CRC " << std::hex << got_crc << " != stored " << want_crc;
    return make_error(CheckpointErrorKind::kCrcMismatch, oss.str());
  }

  CampaignCheckpoint cp;
  cp.config_hash = header.u64();
  cp.total_runs = header.u32();
  const std::uint32_t count = header.u32();
  ByteReader payload(body.substr(kHeaderSize));
  std::uint64_t prev_index = 0;
  for (std::uint32_t i = 0; i < count && !payload.fail(); ++i) {
    CompletedRun run;
    run.index = payload.u32();
    run.output = get_run_output(payload);
    if (run.index >= cp.total_runs) {
      return make_error(CheckpointErrorKind::kMalformed,
                        "completed run index out of range");
    }
    if (i > 0 && run.index <= prev_index) {
      return make_error(CheckpointErrorKind::kMalformed,
                        "completed run indices not strictly ascending");
    }
    prev_index = run.index;
    cp.completed.push_back(std::move(run));
  }
  if (payload.fail() || payload.remaining() != 0) {
    return make_error(CheckpointErrorKind::kMalformed,
                      "payload structure disagrees with its own counts");
  }
  return cp;
}

bool write_checkpoint(const std::string& path, const CampaignCheckpoint& cp,
                      std::string* error) {
  return support::write_file_atomic(path, encode_checkpoint(cp), error);
}

std::variant<CampaignCheckpoint, CheckpointError> load_checkpoint(
    const std::string& path, std::uint64_t expected_config_hash) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(CheckpointErrorKind::kIoError,
                      "cannot open checkpoint file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return make_error(CheckpointErrorKind::kIoError,
                      "read failed for checkpoint file " + path);
  }
  const std::string bytes = buf.str();
  auto decoded = decode_checkpoint(bytes);
  if (const auto* err = std::get_if<CheckpointError>(&decoded)) {
    CheckpointError e = *err;
    e.message += " (" + path + ")";
    return e;
  }
  CampaignCheckpoint cp = std::move(std::get<CampaignCheckpoint>(decoded));
  if (cp.config_hash != expected_config_hash) {
    std::ostringstream oss;
    oss << "checkpoint belongs to campaign " << std::hex << cp.config_hash
        << ", this campaign is " << expected_config_hash << " (" << path
        << ")";
    return make_error(CheckpointErrorKind::kConfigMismatch, oss.str());
  }
  return cp;
}

}  // namespace cityhunter::sim
