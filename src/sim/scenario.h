// Scenario wiring: one World (city + APs + WiGLE + photos + heat map + PNL
// model) shared by many campaign runs, and a run_campaign() driver that
// deploys an attacker in a venue for one test slot, exactly as the paper
// deployed its Raspberry Pi.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/legit_ap.h"
#include "client/smartphone.h"
#include "core/cityhunter.h"
#include "core/cityhunter_prelim.h"
#include "core/deauth.h"
#include "core/karma.h"
#include "core/mana.h"
#include "core/wigle_seed.h"
#include "heatmap/heatmap.h"
#include "medium/medium.h"
#include "mobility/population.h"
#include "obs/probe.h"
#include "mobility/venue.h"
#include "sim/run_error.h"
#include "stats/campaign.h"
#include "world/ap_generator.h"
#include "world/city.h"
#include "world/photos.h"
#include "world/pnl.h"
#include "world/wigle.h"

namespace cityhunter::sim {

using support::Rng;
using support::SimTime;

struct ScenarioConfig {
  std::uint64_t seed = 42;
  world::CityModel::Config city{};
  world::ApPopulationConfig aps = world::default_ap_population();
  world::PnlModelConfig pnl{};
  world::PhotoSetConfig photos{};
  world::WigleCoverage wigle_coverage{};
  medium::Medium::Config medium{};
  client::SmartphoneConfig phone{};
};

/// City coordinates where each of the paper's four venues sits (used for
/// the nearest-SSID WiGLE query and for placing the venues' own APs).
medium::Position venue_city_position(const std::string& venue_name);

/// The static world: built once per scenario seed, shared across runs. All
/// accessors are const — campaigns never mutate the world, which is what
/// lets run_campaigns() fan them across threads (see sim/parallel.h).
class World {
 public:
  explicit World(ScenarioConfig cfg);

  const world::CityModel& city() const { return city_; }
  const std::vector<world::AccessPointInfo>& aps() const { return aps_; }
  const world::WigleDb& wigle() const { return wigle_; }
  const heatmap::HeatMap& heat() const { return heat_; }
  /// Shared, immutable PNL model. Anything that needs per-crowd state (the
  /// venue Locale, person-id counters) copies it first — see run_campaign.
  const world::PnlModel& pnl_model() const { return pnl_; }
  const ScenarioConfig& config() const { return cfg_; }

  /// Open public SSIDs with ground-truth APs within `radius_m` of `pos`,
  /// ranked by local visit propensity (for world::Locale).
  std::vector<std::string> local_public_ssids(medium::Position pos,
                                              double radius_m = 800.0) const;

 private:
  ScenarioConfig cfg_;
  /// Root of all world-construction randomness. Each subsystem forks its
  /// own stream off this root with a stable label ("aps", "venue-aps",
  /// "wigle", "photos"); fork() never advances the parent, so adding a new
  /// labelled fork cannot perturb the existing streams. Pick a fresh label
  /// for any new world-level randomness instead of reseeding from cfg_.
  Rng root_rng_;
  world::CityModel city_;
  std::vector<world::AccessPointInfo> aps_;
  world::WigleDb wigle_;
  world::PhotoSet photos_;
  heatmap::HeatMap heat_;
  world::PnlModel pnl_;
};

enum class AttackerKind { kKarma, kMana, kPrelim, kCityHunter };

const char* to_string(AttackerKind k);

struct DeauthScenario {
  double pre_associated_fraction = 0.5;
  SimTime interval = SimTime::seconds(20);
  bool enable_deauth = true;  // false: victims stay associated (baseline)
};

struct RunConfig {
  AttackerKind kind = AttackerKind::kCityHunter;
  mobility::VenueConfig venue = mobility::canteen_venue();
  mobility::SlotParams slot{};
  SimTime duration = SimTime::hours(1);
  std::uint64_t run_seed = 1;  // varies per slot / repetition

  /// WiGLE seeding (prelim uses AP-count ranking, advanced uses heat).
  core::WigleSeedConfig wigle_seed{};
  /// Advanced attacker knobs (buffers, weights, ablation switches).
  core::CityHunter::Config cityhunter{};
  core::ManaAttacker::Config mana{};

  /// §V-B extensions.
  bool seed_carrier_ssids = false;
  std::optional<DeauthScenario> deauth;

  /// Sample the database size at this interval (Fig 1a). Unset = no series.
  std::optional<SimTime> sample_every;

  /// Override the world's medium config for this run. Fault-injection
  /// sweeps (bench/ablation_loss) vary loss settings per run against one
  /// shared — expensive to build — World.
  std::optional<medium::Medium::Config> medium;

  /// Intra-run delivery-fanout workers (medium::Medium::Config::
  /// intra_run_workers), applied on top of whatever medium config the run
  /// resolves to. Results are bit-identical at any worker count; this knob
  /// only trades threads for wall-clock within one run — orthogonal to the
  /// across-run parallelism in sim/parallel.
  std::optional<int> intra_run_workers;

  /// Warm start: carry over a database from a previous slot instead of
  /// re-initialising (the paper re-initialised before every test; this knob
  /// quantifies what that choice cost). Applied after WiGLE seeding, so
  /// learned SSIDs and hit records survive.
  std::optional<core::SsidDatabase> initial_database;

  /// Observability. Off by default — a disabled probe costs one null test
  /// per hook and the run's outputs stay byte-identical.
  obs::Config obs{};

  /// --- Supervisor limits (enforced cooperatively at event-queue
  /// granularity; see sim/parallel and DESIGN.md §5f). run_campaign
  /// validates these in the same style as Medium::Config: deadline_s >= 0
  /// (NaN rejected), max_sim_events any, max_retries in [0, 8]. ---

  /// Per-run wallclock deadline in seconds covering the event loop; 0 = no
  /// deadline. A tripped deadline aborts the run with
  /// RunErrorKind::kDeadlineExceeded.
  double deadline_s = 0.0;
  /// Sim-event budget for the run; 0 = unlimited. Exceeding it aborts with
  /// RunErrorKind::kEventBudgetExceeded.
  std::uint64_t max_sim_events = 0;
  /// Additional attempts the campaign supervisor may spend when this run
  /// fails with a retryable error, in [0, 8]. Retry schedules are
  /// deterministic — see sim::retry_backoff().
  int max_retries = 1;
  /// External cancellation flag polled by the event loop (relaxed loads);
  /// nullptr = not cancellable. A cancelled run is classified
  /// RunErrorKind::kCancelled and never retried.
  const std::atomic<bool>* cancel = nullptr;

  /// --- Chaos injection (set by the supervisor's ChaosConfig on the first
  /// attempt only; both default false and change nothing when unset). ---

  /// Schedule a self-rescheduling busy-wait event so the run burns wallclock
  /// without advancing sim time — a reproducible "hang" for the watchdog to
  /// catch. Requires deadline_s or max_sim_events to terminate.
  bool chaos_hang = false;
  /// Post an event that then schedules into the past, poisoning the queue:
  /// the run dies with medium::PastScheduleError, which the supervisor must
  /// classify (regression net for the structured error taxonomy).
  bool chaos_poison_schedule = false;
};

struct SeriesPoint {
  SimTime time;
  std::size_t db_size = 0;
  std::size_t broadcast_connected = 0;

  bool operator==(const SeriesPoint&) const = default;
};

/// Wallclock split of one run. Always measured (three steady_clock reads);
/// never part of any result comparison — wallclock is not deterministic.
struct PhaseProfile {
  double setup_s = 0.0;     // world wiring: attacker, venue, population
  double sim_s = 0.0;       // the event-queue loop
  double analysis_s = 0.0;  // end-of-run stats extraction
};

struct RunOutput {
  stats::CampaignResult result;
  std::vector<SeriesPoint> series;
  std::vector<stats::WindowRate> window_rates;  // 2-minute h_b^r windows
  int final_pb_size = 0;
  int final_fb_size = 0;
  std::size_t db_final_size = 0;
  std::size_t db_from_direct = 0;
  std::uint64_t deauths_sent = 0;
  /// Medium traffic totals for the run (throughput bookkeeping in
  /// bench/wallclock).
  std::uint64_t frames_transmitted = 0;
  std::uint64_t frames_delivered = 0;
  /// Channel-side counters incl. fault-injection losses/retries (zeros on a
  /// perfect channel).
  stats::MediumStats medium_stats;
  /// Snapshot of the attacker's database at the end of the run (for warm
  /// starting the next slot).
  core::SsidDatabase database;
  /// Event-queue lifetime counters — deterministic, always filled.
  medium::EventQueue::Stats queue_stats;
  /// Wallclock phase split — always filled, never compared.
  PhaseProfile phases;
  /// Observability harvest, empty unless cfg.obs.enabled: the metrics
  /// snapshot (compare .deterministic() across thread counts) and the trace
  /// ring's retained records, oldest first.
  obs::MetricsSnapshot metrics;
  std::vector<obs::TraceRecord> trace;
  /// Records the ring had to overwrite (0 when the capacity sufficed).
  std::uint64_t trace_dropped = 0;
  /// Set by run_campaigns() when this run failed instead of completing:
  /// structured kind (exception / deadline / event budget / retry-exhausted
  /// / cancelled) plus the tagged "run_seed=<seed> venue=<name>
  /// attacker=<kind>: <what>" message and the attempts consumed. kNone on
  /// success; a failed run's other fields are default-initialised.
  RunError error;
};

/// Memoized expensive run setup, shared across the runs of one campaign.
///
/// Profiling (BENCH_wallclock.json): per-run setup is ~18% of serial
/// campaign wallclock, dominated by two pure functions of (World, a few
/// RunConfig fields) recomputed identically for every run — the WiGLE seed
/// scan over the whole AP snapshot and the venue-locale SSID ranking behind
/// the per-run PnlModel copy. The cache keys those inputs with the same
/// FNV-1a construction the checkpoint config hash uses and hands out one
/// immutable snapshot per distinct setup; runs copy from the snapshot
/// (copy-on-write: the attacker's database and the PNL crowd counters
/// mutate per-run, so each run assigns the shared seeded state into its own
/// instances and never writes through the snapshot).
///
/// Byte-identity: the snapshot stores exactly what the incremental path
/// computes — seed_from_wigle / seed_carrier_ssids are pure functions of
/// (wigle, heat, venue position, seed config, t = 0) and every run seeds at
/// sim time 0, so assigning the snapshot database is indistinguishable from
/// reseeding; the PnlModel locale is a pure function of (world, venue). The
/// warm-start equivalence test in tests/parallel_test.cpp pins this.
///
/// Thread safety: lookup_or_build is mutex-serialised (misses build inside
/// the lock — the first run of each distinct setup pays once); the returned
/// snapshot is immutable and safe to read concurrently. A cache binds to
/// the first World it sees and throws on a different one — setup state is
/// world-derived, so sharing across worlds would serve wrong data.
class SetupCache {
 public:
  struct Snapshot {
    /// Database state after WiGLE (and carrier) seeding at sim time 0.
    core::SsidDatabase seeded_db;
    /// World PNL model with the venue Locale already applied.
    world::PnlModel pnl;
  };

  /// The snapshot for `cfg`'s setup-relevant fields, building it on first
  /// use. Throws std::logic_error when called with a different World than
  /// the cache was first used with.
  std::shared_ptr<const Snapshot> lookup_or_build(const World& world,
                                                  const RunConfig& cfg);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  mutable std::mutex mu_;
  const World* world_ = nullptr;  // bound on first lookup
  std::unordered_map<std::uint64_t, std::shared_ptr<const Snapshot>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Deploy `cfg.kind` in `cfg.venue` for `cfg.duration` and analyse. Pure in
/// the world: the output depends only on (world seed, cfg), never on other
/// runs — the per-run RNG is seeded world.seed ^ run_seed*φ and the PNL
/// model is copied, so repeated or concurrent runs are bit-identical.
RunOutput run_campaign(const World& world, const RunConfig& cfg);

/// As above, sharing memoized setup state across runs via `setup_cache`
/// (nullptr = cold setup every run). Output is byte-identical with or
/// without the cache — see SetupCache.
RunOutput run_campaign(const World& world, const RunConfig& cfg,
                       SetupCache* setup_cache);

}  // namespace cityhunter::sim
