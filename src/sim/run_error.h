// Structured run-failure taxonomy.
//
// A campaign run that does not complete is tagged with WHY, as data: the
// supervisor in sim/parallel retries some kinds and not others, benches
// print machine-stable failure banners, and the campaign checkpoint carries
// the classification across a crash. The old free-text RunOutput::error
// string survives as RunError::message — the kind is what code branches on,
// the message is what humans read.
#pragma once

#include <cstdint>
#include <string>

namespace cityhunter::sim {

enum class RunErrorKind : std::uint8_t {
  kNone = 0,                 // the run completed
  kException = 1,            // run_campaign threw (bad config, internal bug)
  kDeadlineExceeded = 2,     // per-run wallclock watchdog tripped
  kEventBudgetExceeded = 3,  // sim-event budget exhausted
  kRetryExhausted = 4,       // every allowed attempt failed; message keeps
                             // the last underlying failure
  kCancelled = 5,            // external cancellation flag was raised
};

const char* to_string(RunErrorKind k);

struct RunError {
  RunErrorKind kind = RunErrorKind::kNone;
  /// Human-readable context: "run_seed=<seed> venue=<name>
  /// attacker=<kind>: <what>". Empty iff kind == kNone.
  std::string message;
  /// Attempts consumed by a failed run (>= 1). Stays 0 on success so a
  /// retried-then-successful run remains bit-identical to an undisturbed
  /// one — attempt bookkeeping for successes lives in ParallelStats.
  std::uint32_t attempts = 0;

  bool failed() const { return kind != RunErrorKind::kNone; }
  /// Retry candidates: everything except success and explicit cancellation
  /// (cancelling and then retrying would defy the cancel).
  bool retryable() const {
    return kind == RunErrorKind::kException ||
           kind == RunErrorKind::kDeadlineExceeded ||
           kind == RunErrorKind::kEventBudgetExceeded;
  }
  /// "kind: message" for banners; empty string on success.
  std::string str() const;

  bool operator==(const RunError&) const = default;
};

}  // namespace cityhunter::sim
