#include "sim/scenario.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>

namespace cityhunter::sim {

namespace {

/// Venue APs appended to the generated population so the nearest-WiGLE seed
/// can discover them (they are real networks of the city, after all).
struct VenueSite {
  const char* name;
  medium::Position pos;
  std::vector<std::string> ssids;
};

std::vector<VenueSite> venue_sites() {
  return {
      {"subway-passage", {5300, 4600}, {"MTR Free Wi-Fi"}},
      {"canteen", {4100, 6200}, {"Canteen-Free-WiFi", "CampusNet-Open"}},
      {"shopping-center", {6200, 4100}, {"HarbourMall-Guest"}},
      {"railway-station", {3300, 7400}, {"RailwayStation-Free"}},
  };
}

/// §V-B operator hotspots, one list for the cold and warm seeding paths so
/// they cannot diverge.
const std::vector<std::string>& carrier_ssid_list() {
  static const std::vector<std::string> kCarriers = {"PCCW1x", "Y5ZONE",
                                                     "CMCC-AUTO"};
  return kCarriers;
}

/// FNV-1a over exactly the RunConfig fields the setup snapshot depends on
/// (same construction as the checkpoint config hash in sim/checkpoint.cpp).
/// Everything else — run seed, duration, medium overrides, deauth, chaos —
/// affects the simulation, not the seeded database or the venue locale.
std::uint64_t setup_hash(const RunConfig& cfg) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(cfg.kind));
  mix(cfg.venue.name.size());
  for (const char c : cfg.venue.name) mix(static_cast<std::uint8_t>(c));
  mix(static_cast<std::uint64_t>(cfg.wigle_seed.nearby_count));
  mix(static_cast<std::uint64_t>(cfg.wigle_seed.popular_count));
  mix(static_cast<std::uint64_t>(cfg.wigle_seed.ranking));
  mix(cfg.seed_carrier_ssids ? 1 : 0);
  return h;
}

/// Chaos hang: a self-rescheduling event that burns ~50 µs of wallclock per
/// firing while advancing sim time 1 µs per event — the run makes no real
/// progress, exactly like a wedged client loop, and only the cooperative
/// watchdog (deadline or event budget) can end it.
void schedule_chaos_hang(medium::EventQueue& events) {
  events.post_in(support::SimTime::microseconds(1), [&events] {
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count() < 50e-6) {
    }
    schedule_chaos_hang(events);
  });
}

}  // namespace

medium::Position venue_city_position(const std::string& venue_name) {
  for (const auto& site : venue_sites()) {
    if (venue_name == site.name) return site.pos;
  }
  return {5000, 5000};  // city centre fallback
}

const char* to_string(AttackerKind k) {
  switch (k) {
    case AttackerKind::kKarma: return "KARMA";
    case AttackerKind::kMana: return "MANA";
    case AttackerKind::kPrelim: return "City-Hunter (prelim)";
    case AttackerKind::kCityHunter: return "City-Hunter";
  }
  return "?";
}

World::World(ScenarioConfig cfg)
    : cfg_(std::move(cfg)),
      root_rng_(cfg_.seed),
      city_(cfg_.city),
      aps_([&] {
        auto rng_aps = root_rng_.fork("aps");
        auto aps = world::generate_aps(city_, rng_aps, cfg_.aps);
        // Venue-local APs: a few open APs per venue SSID around the site.
        auto rng_venues = root_rng_.fork("venue-aps");
        for (const auto& site : venue_sites()) {
          for (const auto& ssid : site.ssids) {
            for (int i = 0; i < 3; ++i) {
              world::AccessPointInfo ap;
              ap.ssid = ssid;
              ap.bssid = dot11::MacAddress::random_local(rng_venues);
              ap.pos = {site.pos.x + rng_venues.uniform(-40, 40),
                        site.pos.y + rng_venues.uniform(-40, 40)};
              ap.open = true;
              ap.channel = 6;
              ap.category = world::ApCategory::kVenueLocal;
              aps.push_back(std::move(ap));
            }
          }
        }
        return aps;
      }()),
      wigle_([&] {
        auto rng_wigle = root_rng_.fork("wigle");
        return world::WigleDb::snapshot(aps_, rng_wigle, cfg_.wigle_coverage);
      }()),
      photos_([&] {
        auto rng_photos = root_rng_.fork("photos");
        return world::PhotoSet::generate(city_, rng_photos, cfg_.photos);
      }()),
      heat_(photos_, city_.width(), city_.height()),
      pnl_(city_, aps_, cfg_.pnl) {}

std::vector<std::string> World::local_public_ssids(medium::Position pos,
                                                   double radius_m) const {
  std::map<std::string, double> propensity;
  for (const auto& ap : aps_) {
    if (!ap.open) continue;
    if (ap.category == world::ApCategory::kResidential ||
        ap.category == world::ApCategory::kCarrier) {
      continue;
    }
    if (medium::distance(ap.pos, pos) > radius_m) continue;
    propensity[ap.ssid] += city_.density(ap.pos);
  }
  std::vector<std::pair<std::string, double>> ranked(propensity.begin(),
                                                     propensity.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (auto& [ssid, w] : ranked) out.push_back(std::move(ssid));
  return out;
}

std::shared_ptr<const SetupCache::Snapshot> SetupCache::lookup_or_build(
    const World& world, const RunConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (world_ == nullptr) {
    world_ = &world;
  } else if (world_ != &world) {
    throw std::logic_error(
        "SetupCache: shared across different Worlds (setup state is "
        "world-derived; use one cache per World)");
  }
  const std::uint64_t h = setup_hash(cfg);
  const auto it = map_.find(h);
  if (it != map_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  Snapshot building{core::SsidDatabase{}, world.pnl_model()};
  const auto attack_city_pos = venue_city_position(cfg.venue.name);
  // Mirror of run_campaign's cold setup, seeding at sim time 0 — exactly
  // when every run's own seeding happens (setup precedes the event loop).
  switch (cfg.kind) {
    case AttackerKind::kKarma:
    case AttackerKind::kMana:
      break;  // no WiGLE seed; the database starts empty
    case AttackerKind::kPrelim: {
      auto seed_cfg = cfg.wigle_seed;
      seed_cfg.ranking = core::PopularRanking::kApCount;  // §III design
      core::seed_from_wigle(building.seeded_db, world.wigle(), nullptr,
                            attack_city_pos, seed_cfg, support::SimTime());
      break;
    }
    case AttackerKind::kCityHunter:
      core::seed_from_wigle(building.seeded_db, world.wigle(), &world.heat(),
                            attack_city_pos, cfg.wigle_seed,
                            support::SimTime());
      break;
  }
  if (cfg.seed_carrier_ssids) {
    core::seed_carrier_ssids(building.seeded_db, carrier_ssid_list(),
                             static_cast<double>(cfg.wigle_seed.popular_count),
                             support::SimTime());
  }
  world::Locale locale;
  locale.ranked_ssids = world.local_public_ssids(attack_city_pos, 500.0);
  locale.bias = 0.45;
  building.pnl.set_locale(std::move(locale));
  auto snap = std::make_shared<const Snapshot>(std::move(building));
  map_.emplace(h, snap);
  return snap;
}

RunOutput run_campaign(const World& world, const RunConfig& cfg) {
  return run_campaign(world, cfg, nullptr);
}

RunOutput run_campaign(const World& world, const RunConfig& cfg,
                       SetupCache* setup_cache) {
  using Clock = std::chrono::steady_clock;
  const auto phase_seconds = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  // Supervisor-field validation, same style as Medium::Config (negated
  // comparison so NaN is rejected too). Inside run_campaign, so a poisoned
  // config fails this one run — isolated and classified by run_campaigns —
  // instead of taking the campaign down.
  if (!(cfg.deadline_s >= 0.0)) {
    throw std::invalid_argument("RunConfig: deadline_s must be non-negative");
  }
  if (cfg.max_retries < 0 || cfg.max_retries > 8) {
    throw std::invalid_argument("RunConfig: max_retries must be in [0, 8]");
  }
  const auto t_setup = Clock::now();

  Rng rng(world.config().seed ^ (cfg.run_seed * 0x9e3779b97f4a7c15ULL));

  obs::Probe probe(cfg.obs);

  medium::EventQueue events;
  medium::Medium::Config medium_cfg =
      cfg.medium ? *cfg.medium : world.config().medium;
  if (medium_cfg.fault.enabled) {
    // Re-key the fault streams per run off the run's labelled RNG root, so
    // repeated slots see different channel noise but every rerun of the
    // same (world seed, run config) is bit-identical at any thread count.
    medium_cfg.fault.seed = rng.fork("fault").engine()();
  }
  if (cfg.intra_run_workers) {
    medium_cfg.intra_run_workers = *cfg.intra_run_workers;
  }
  medium::Medium medium(events, medium_cfg);
  medium.set_trace(probe.trace());

  // Attacker at the local origin of the venue frame.
  core::Attacker::BaseConfig base;
  base.bssid = *dot11::MacAddress::parse("0a:7e:64:c1:7e:01");
  base.pos = {0, 0};
  base.channel = 6;
  base.tx_power_dbm = 20.0;  // 100 mW

  const auto attack_city_pos = venue_city_position(cfg.venue.name);

  // Warm start: fetch (or build, first run only) the memoized setup
  // snapshot. Everything below applies it copy-on-write — the snapshot is
  // shared and immutable; the run assigns into its own database / PnlModel.
  std::shared_ptr<const SetupCache::Snapshot> snap;
  if (setup_cache != nullptr) {
    snap = setup_cache->lookup_or_build(world, cfg);
  }

  std::unique_ptr<core::Attacker> attacker;
  core::CityHunter* hunter = nullptr;
  switch (cfg.kind) {
    case AttackerKind::kKarma:
      attacker = std::make_unique<core::KarmaAttacker>(medium, base);
      break;
    case AttackerKind::kMana: {
      auto mana_cfg = cfg.mana;
      mana_cfg.base = base;
      attacker = std::make_unique<core::ManaAttacker>(medium, mana_cfg);
      break;
    }
    case AttackerKind::kPrelim: {
      core::CityHunterPrelim::Config pc;
      pc.base = base;
      attacker = std::make_unique<core::CityHunterPrelim>(medium, pc);
      if (snap == nullptr) {
        auto seed_cfg = cfg.wigle_seed;
        seed_cfg.ranking = core::PopularRanking::kApCount;  // §III design
        core::seed_from_wigle(attacker->database(), world.wigle(), nullptr,
                              attack_city_pos, seed_cfg, events.now());
      }
      break;
    }
    case AttackerKind::kCityHunter: {
      auto ch_cfg = cfg.cityhunter;
      ch_cfg.base = base;
      auto ch = std::make_unique<core::CityHunter>(medium, ch_cfg,
                                                   rng.fork("selector"));
      hunter = ch.get();
      attacker = std::move(ch);
      if (snap == nullptr) {
        core::seed_from_wigle(attacker->database(), world.wigle(),
                              &world.heat(), attack_city_pos, cfg.wigle_seed,
                              events.now());
      }
      break;
    }
  }
  // Database layering, preserving the cold path's order exactly: WiGLE seed
  // (from the snapshot or recomputed above) → initial_database overwrite →
  // carrier SSIDs on top. The snapshot already folded the carrier seeds into
  // its database, so the warm path only reseeds them when initial_database
  // replaced it.
  if (snap != nullptr && !cfg.initial_database) {
    attacker->database() = snap->seeded_db;
  }
  if (cfg.initial_database) {
    attacker->database() = *cfg.initial_database;
  }
  if (cfg.seed_carrier_ssids && (snap == nullptr || cfg.initial_database)) {
    core::seed_carrier_ssids(
        attacker->database(), carrier_ssid_list(),
        static_cast<double>(cfg.wigle_seed.popular_count), events.now());
  }
  attacker->set_trace(probe.trace());
  attacker->set_metrics(probe.metrics());
  attacker->start();

  // Optional §V-B deauth setup: a legitimate venue AP holding pre-associated
  // clients, and the attacker forging deauths in its name.
  std::unique_ptr<client::LegitimateAp> legit_ap;
  std::unique_ptr<core::DeauthModule> deauth;
  mobility::SlotParams slot = cfg.slot;
  if (cfg.deauth) {
    client::LegitimateAp::Config ap_cfg;
    ap_cfg.ssid = cfg.venue.venue_ssids.empty() ? "Venue-WiFi"
                                                : cfg.venue.venue_ssids[0];
    ap_cfg.bssid = *dot11::MacAddress::parse("02:13:37:00:00:01");
    ap_cfg.pos = {25, 10};  // across the hall from the attacker
    ap_cfg.open = true;
    ap_cfg.channel = 6;
    legit_ap = std::make_unique<client::LegitimateAp>(medium, ap_cfg);
    legit_ap->start();
    slot.pre_associated_fraction = cfg.deauth->pre_associated_fraction;
    slot.legit_ap = ap_cfg.bssid;
    if (cfg.deauth->enable_deauth) {
      core::DeauthModule::Config dm;
      dm.target_bssids = {ap_cfg.bssid};
      dm.interval = cfg.deauth->interval;
      deauth = std::make_unique<core::DeauthModule>(medium, attacker->radio(),
                                                    dm);
      deauth->start();
    }
  }

  // People found at this venue carry locally flavoured PNLs. The run owns a
  // copy of the PNL model: the venue locale and the person/group/home id
  // counters are per-crowd state, and keeping them out of the shared World
  // is what makes concurrent runs independent (and reruns reproducible).
  // Warm start copies the snapshot's locale-applied model — set_locale only
  // assigns the member, so copy-then-set and copy-of-set are identical —
  // and skips the O(aps) venue SSID ranking.
  world::PnlModel pnl = snap != nullptr ? snap->pnl : world.pnl_model();
  if (snap == nullptr) {
    world::Locale locale;
    locale.ranked_ssids = world.local_public_ssids(attack_city_pos, 500.0);
    locale.bias = 0.45;
    pnl.set_locale(std::move(locale));
  }

  auto phone_cfg = world.config().phone;
  if (cfg.venue.mean_scan_interval_s > 0) {
    phone_cfg.mean_scan_interval =
        support::SimTime::seconds(cfg.venue.mean_scan_interval_s);
  }
  mobility::VenuePopulation population(medium, pnl, cfg.venue, phone_cfg,
                                       rng.fork("population"));
  population.schedule_slot(cfg.duration, slot);

  RunOutput out;
  if (cfg.sample_every) {
    const auto interval = *cfg.sample_every;
    for (SimTime t = interval; t <= cfg.duration; t += interval) {
      events.post_at(t, [&out, &events, a = attacker.get()] {
        std::size_t connected_broadcast = 0;
        for (const auto& [mac, c] : a->clients()) {
          if (!c.direct_prober && c.connected) ++connected_broadcast;
        }
        out.series.push_back(SeriesPoint{events.now(), a->database().size(),
                                         connected_broadcast});
      });
    }
  }

  if (cfg.chaos_hang) schedule_chaos_hang(events);
  if (cfg.chaos_poison_schedule) {
    // The poison fires from inside an event so the failure surfaces out of
    // the run loop, exactly where a real backoff-arithmetic bug would.
    events.post_in(support::SimTime::milliseconds(1), [&events] {
      events.post_at(events.now() - support::SimTime::microseconds(1), [] {});
    });
  }

  // Arm the cooperative watchdog for the event loop only: setup cost is the
  // caller's (already profiled as setup_s), and the loop is where a run can
  // actually wedge. A default guard (no deadline, no budget, no cancel
  // flag) never trips and costs one branch per event.
  medium::RunGuard guard;
  guard.max_events = cfg.max_sim_events;
  guard.deadline_s = cfg.deadline_s;
  guard.cancel = cfg.cancel;
  events.arm_guard(guard);

  const auto t_sim = Clock::now();
  events.run_until(cfg.duration);
  const auto t_analysis = Clock::now();

  out.result = stats::analyze(*attacker, to_string(cfg.kind));
  out.window_rates =
      stats::realtime_hb(*attacker, SimTime::minutes(2), cfg.duration);
  out.db_final_size = attacker->database().size();
  out.db_from_direct =
      attacker->database().count_from(core::SsidSource::kDirectProbe);
  if (hunter != nullptr) {
    out.final_pb_size = hunter->selector().pb_size();
    out.final_fb_size = hunter->selector().fb_size();
  }
  if (deauth) out.deauths_sent = deauth->deauths_sent();
  out.frames_transmitted = medium.transmissions();
  out.frames_delivered = medium.deliveries();
  out.medium_stats = stats::medium_stats(medium);
  out.database = attacker->database();
  out.queue_stats = events.stats();

  if (probe.enabled()) {
    // Compose the deterministic metric series from the counters each layer
    // kept during the run. The attacker's scan-window distribution was
    // observed live; everything else is a single store here, so the
    // snapshot is a pure function of the simulation.
    obs::MetricsRegistry& m = *probe.metrics();
    const auto& qs = events.stats();
    m.add(m.counter("queue.scheduled"), qs.scheduled);
    m.add(m.counter("queue.processed"), qs.processed);
    m.add(m.counter("queue.slab_slots"), qs.slab_slots);
    m.add(m.counter("queue.slab_reuses"), qs.slab_reuses);
    m.set(m.gauge("queue.peak_pending"),
          static_cast<double>(qs.peak_pending));
    m.add(m.counter("medium.transmissions"), medium.transmissions());
    m.add(m.counter("medium.deliveries"), medium.deliveries());
    m.add(m.counter("medium.retries"), medium.retries());
    m.add(m.counter("medium.pathloss_cache_hits"),
          medium.pathloss_cache_hits());
    m.add(m.counter("medium.pathloss_cache_misses"),
          medium.pathloss_cache_misses());
    const auto& fanout = medium.fanout_stats();
    m.add(m.counter("medium.fanout_batched"), fanout.batched_fanouts);
    m.add(m.counter("medium.fanout_simd_candidates"), fanout.simd_candidates);
    m.add(m.counter("medium.fanout_scalar_candidates"),
          fanout.scalar_candidates);
    m.add(m.counter("medium.fanout_sharded"), fanout.sharded_fanouts);
    m.add(m.counter("medium.fanout_shard_chunks"), fanout.shard_chunks);
    // Index-waste bookkeeping: loaded − key_matched candidates cost a cache
    // line only to fail the fused-key compare (≈0 with channel_buckets).
    m.add(m.counter("medium.fanout_key_matched"), fanout.key_matched);
    m.add(m.counter("medium.fanout_wasted_candidates"),
          fanout.wasted_candidates());
    // End-of-run occupancy histogram of the live spatial index (the
    // histogram is order-insensitive, so the cell-map traversal order
    // doesn't matter).
    const auto occ_id = m.distribution("medium.bucket_occupancy", 4.0);
    medium.for_each_bucket([&m, occ_id](std::uint16_t, std::uint32_t size) {
      m.observe(occ_id, static_cast<double>(size));
    });
    const auto occ = medium.bucket_occupancy();
    m.set(m.gauge("medium.bucket_max_occupancy"),
          static_cast<double>(occ.max_occupancy));
    const auto& drops = medium.drops();
    m.add(m.counter("fault.drop_erasure"), drops.erasure);
    m.add(m.counter("fault.drop_collision"), drops.collision);
    m.add(m.counter("fault.drop_crc_reject"), drops.crc_reject);
    m.add(m.counter("fault.retry_exhausted"), drops.retry_exhausted);
    m.add(m.counter("attacker.scan_windows"), attacker->scan_windows());
    m.add(m.counter("attacker.responses_sent"), attacker->responses_sent());
    m.add(m.counter("attacker.clients_seen"), attacker->clients_seen());
    m.add(m.counter("attacker.clients_connected"),
          attacker->clients_connected());
    if (hunter != nullptr) {
      m.add(m.counter("attacker.pb_grows"), hunter->selector().pb_grows());
      m.add(m.counter("attacker.pb_shrinks"),
            hunter->selector().pb_shrinks());
      m.set(m.gauge("attacker.pb_size"),
            static_cast<double>(hunter->selector().pb_size()));
      m.set(m.gauge("attacker.fb_size"),
            static_cast<double>(hunter->selector().fb_size()));
    }
    m.add(m.counter("trace.dropped"), probe.trace()->dropped());
    // Wallclock phases — kTimer points, stripped by deterministic().
    m.record_seconds(m.timer("phase.setup"), phase_seconds(t_setup, t_sim));
    m.record_seconds(m.timer("phase.sim"), phase_seconds(t_sim, t_analysis));
    m.record_seconds(m.timer("phase.analysis"),
                     phase_seconds(t_analysis, Clock::now()));
    out.metrics = m.snapshot();
    out.trace = probe.trace()->chronological();
    out.trace_dropped = probe.trace()->dropped();
  }

  out.phases.setup_s = phase_seconds(t_setup, t_sim);
  out.phases.sim_s = phase_seconds(t_sim, t_analysis);
  out.phases.analysis_s = phase_seconds(t_analysis, Clock::now());
  return out;
}

}  // namespace cityhunter::sim
