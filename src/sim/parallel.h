// Parallel campaign execution.
//
// Every bench in bench/ regenerates a paper figure from dozens of mutually
// independent discrete-event runs; run_campaigns() fans those runs across a
// worker pool. Because run_campaign() is pure in the World (const accessors
// only, per-run RNG seeded world.seed ^ run_seed*φ, per-run PnlModel copy),
// the parallel output is bit-identical to running the same configs serially
// in order — scheduling cannot leak into results.
//
// Failure isolation: a run that throws no longer kills the campaign. Its
// exception is captured into RunOutput::error (tagged with run seed, venue
// and attacker kind), the run is retried once on a fresh thread, and every
// healthy run's result survives — benches report partial campaigns with an
// explicit failed-run count instead of dying on the first future::get().
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/scenario.h"

namespace cityhunter::sim {

struct ParallelConfig {
  /// Worker threads. 0 = ThreadPool::default_workers(), i.e. the
  /// CITYHUNTER_THREADS env var if set, else the hardware thread count.
  std::size_t threads = 0;
};

/// Wallclock profile of one run_campaigns() call. Pure profiling output —
/// never feeds back into results, which stay bit-identical regardless.
struct ParallelStats {
  struct WorkerLoad {
    std::size_t runs = 0;
    double busy_s = 0.0;
  };

  std::size_t workers = 0;  // pool size (1 for the serial path)
  double wall_s = 0.0;      // whole call, fan-out to last retry joined
  /// One entry per OS thread that executed at least one run, in first-use
  /// order (retry threads append).
  std::vector<WorkerLoad> loads;

  double busy_s() const {
    double total = 0.0;
    for (const auto& l : loads) total += l.busy_s;
    return total;
  }
  /// Mean fraction of the pool's wallclock spent inside runs. >1 is
  /// impossible; ~1 means the pool never idled.
  double utilization() const {
    return workers > 0 && wall_s > 0.0
               ? busy_s() / (wall_s * static_cast<double>(workers))
               : 0.0;
  }
};

/// Run every config in `runs` against the shared immutable `world` and
/// return the outputs in input order. Never throws for a failing run: see
/// RunOutput::error. When `stats` is non-null it is overwritten with the
/// call's wallclock profile.
std::vector<RunOutput> run_campaigns(const World& world,
                                     std::span<const RunConfig> runs,
                                     ParallelConfig cfg = {},
                                     ParallelStats* stats = nullptr);

/// Number of outputs whose run failed (RunOutput::error set).
std::size_t failed_runs(const std::vector<RunOutput>& outputs);

}  // namespace cityhunter::sim
