// Parallel campaign execution under a run supervisor.
//
// Every bench in bench/ regenerates a paper figure from dozens of mutually
// independent discrete-event runs; run_campaigns() fans those runs across a
// worker pool. Because run_campaign() is pure in the World (const accessors
// only, per-run RNG seeded world.seed ^ run_seed*φ, per-run PnlModel copy),
// the parallel output is bit-identical to running the same configs serially
// in order — scheduling cannot leak into results.
//
// The supervisor layered on top (DESIGN.md §5f) makes long campaigns
// survivable rather than merely parallel:
//   * every failure is CLASSIFIED (sim/run_error.h), not stringly typed —
//     a thrown exception, a tripped wallclock deadline, an exhausted
//     sim-event budget and an external cancel each get their own kind;
//   * retryable failures are re-attempted up to RunConfig::max_retries
//     times with a deterministic per-(seed, attempt) exponential backoff;
//   * progress is checkpointed crash-safely every checkpoint_every
//     completions (sim/checkpoint.h), and resume_campaigns() continues a
//     killed campaign to a byte-identical final output;
//   * a chaos layer (ChaosConfig / CITYHUNTER_CHAOS) injects throws, hangs,
//     queue poison and SIGKILL on demand so all of the above stays tested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/scenario.h"

namespace cityhunter::sim {

/// Deterministic fault injection into the campaign runner. Each knob names
/// a run index (into the `runs` span) whose FIRST attempt is sabotaged;
/// retries run clean, so a supervised campaign under chaos still converges
/// to the byte-identical unchaosed output. -1 = off.
struct ChaosConfig {
  /// Throw std::runtime_error instead of starting this run's first attempt.
  int throw_run = -1;
  /// Inject a busy-wait hang (RunConfig::chaos_hang) into this run's first
  /// attempt. When the run has no deadline of its own, the supervisor arms
  /// kHangRescueDeadlineS so the watchdog — not the user's ctrl-C — ends it.
  int hang_run = -1;
  /// Inject a past-scheduling event (RunConfig::chaos_poison_schedule) into
  /// this run's first attempt.
  int poison_run = -1;
  /// SIGKILL the whole process the moment this many runs have completed —
  /// the crash half of the kill-and-resume drill. -1 = off.
  int kill_after = -1;

  /// Deadline armed for a chaos-hung run that had none (seconds).
  static constexpr double kHangRescueDeadlineS = 0.25;

  bool any() const {
    return throw_run >= 0 || hang_run >= 0 || poison_run >= 0 ||
           kill_after >= 0;
  }

  /// Parse the CITYHUNTER_CHAOS env var: comma-separated key=value with
  /// keys throw, hang, poison, kill_after (e.g. "hang=2,kill_after=5").
  /// Unset/empty env or unrecognised tokens leave the knob off.
  static ChaosConfig from_env();
};

struct ParallelConfig {
  ParallelConfig() = default;
  /// Pool-size-only config — the shape every pre-supervisor call site used
  /// (ParallelConfig{4}); checkpointing and chaos stay off.
  ParallelConfig(std::size_t threads_) : threads(threads_) {}

  /// Worker threads. 0 = ThreadPool::default_workers(), i.e. the
  /// CITYHUNTER_THREADS env var if set, else the hardware thread count.
  std::size_t threads = 0;

  /// Checkpoint file path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write the checkpoint after every this-many run completions (and always
  /// after the final one). Must be >= 1 — validated in the same style as
  /// Medium's intra_run_workers.
  int checkpoint_every = 8;

  /// Share memoized run setup (WiGLE seed, venue locale) across the
  /// campaign's runs via a SetupCache — identical-setup runs build the
  /// expensive state once and copy from one immutable snapshot. Results are
  /// byte-identical with or without it (see sim::SetupCache); disable only
  /// to measure the cold-setup cost.
  bool warm_start_setup = true;

  /// Fault injection; merged with CITYHUNTER_CHAOS (the env var wins only
  /// when this struct is all-off).
  ChaosConfig chaos{};
};

/// Wallclock + supervision profile of one run_campaigns() call. Pure
/// profiling output — never feeds back into results, which stay
/// bit-identical regardless.
struct ParallelStats {
  struct WorkerLoad {
    std::size_t runs = 0;
    double busy_s = 0.0;
  };

  std::size_t workers = 0;  // pool size (1 for the serial path)
  double wall_s = 0.0;      // whole call, fan-out to last retry joined
  /// One entry per OS thread that executed at least one run, in first-use
  /// order (retry threads append).
  std::vector<WorkerLoad> loads;

  /// --- Supervisor counters (bench/wallclock exports these). ---
  std::uint64_t retries = 0;           // re-attempts spent across all runs
  std::uint64_t timeouts = 0;          // deadline-watchdog trips
  std::uint64_t event_budget_trips = 0;
  std::uint64_t cancelled = 0;         // attempts ended by the cancel flag
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t checkpoint_bytes = 0;  // total encoded bytes written
  std::uint64_t checkpoint_write_failures = 0;
  std::uint64_t resumed_runs = 0;      // outputs restored from a checkpoint

  double busy_s() const {
    double total = 0.0;
    for (const auto& l : loads) total += l.busy_s;
    return total;
  }
  /// Mean fraction of the pool's wallclock spent inside runs. >1 is
  /// impossible; ~1 means the pool never idled.
  double utilization() const {
    return workers > 0 && wall_s > 0.0
               ? busy_s() / (wall_s * static_cast<double>(workers))
               : 0.0;
  }
};

/// Deterministic retry backoff for attempt `attempt` (0-based: the delay
/// before re-attempt attempt+1) of the run seeded `run_seed`: exponential
/// 1ms * 2^attempt plus a per-(seed, attempt) hash jitter in [0, base).
/// Pure function — tests assert the exact schedule.
double retry_backoff_s(std::uint64_t run_seed, std::uint32_t attempt);

/// Run every config in `runs` against the shared immutable `world` and
/// return the outputs in input order. Never throws for a failing run: see
/// RunOutput::error for the classified failure. When `stats` is non-null it
/// is overwritten with the call's wallclock + supervision profile.
std::vector<RunOutput> run_campaigns(const World& world,
                                     std::span<const RunConfig> runs,
                                     ParallelConfig cfg = {},
                                     ParallelStats* stats = nullptr);

/// A resume that cannot proceed: the checkpoint is missing, damaged,
/// version-skewed or belongs to a different campaign. Carries the
/// structured CheckpointError; the campaign is never partially resumed.
class CheckpointResumeError : public std::runtime_error {
 public:
  explicit CheckpointResumeError(CheckpointError err)
      : std::runtime_error("resume: " + err.str()), error_(std::move(err)) {}
  const CheckpointError& error() const { return error_; }

 private:
  CheckpointError error_;
};

/// Continue a checkpointed campaign: load cfg.checkpoint_path, verify it
/// matches (world, runs) by config hash and run count, restore every
/// completed output verbatim and run only the missing ones. The returned
/// vector is byte-identical to what an uninterrupted run_campaigns() call
/// would have produced. Throws CheckpointResumeError when the checkpoint
/// cannot be trusted and std::invalid_argument when cfg.checkpoint_path is
/// empty.
std::vector<RunOutput> resume_campaigns(const World& world,
                                        std::span<const RunConfig> runs,
                                        ParallelConfig cfg,
                                        ParallelStats* stats = nullptr);

/// Number of outputs whose run failed (RunOutput::error set).
std::size_t failed_runs(const std::vector<RunOutput>& outputs);

}  // namespace cityhunter::sim
