// Parallel campaign execution.
//
// Every bench in bench/ regenerates a paper figure from dozens of mutually
// independent discrete-event runs; run_campaigns() fans those runs across a
// worker pool. Because run_campaign() is pure in the World (const accessors
// only, per-run RNG seeded world.seed ^ run_seed*φ, per-run PnlModel copy),
// the parallel output is bit-identical to running the same configs serially
// in order — scheduling cannot leak into results.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/scenario.h"

namespace cityhunter::sim {

struct ParallelConfig {
  /// Worker threads. 0 = ThreadPool::default_workers(), i.e. the
  /// CITYHUNTER_THREADS env var if set, else the hardware thread count.
  std::size_t threads = 0;
};

/// Run every config in `runs` against the shared immutable `world` and
/// return the outputs in input order.
std::vector<RunOutput> run_campaigns(const World& world,
                                     std::span<const RunConfig> runs,
                                     ParallelConfig cfg = {});

}  // namespace cityhunter::sim
