#include "sim/shard.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "dot11/frame.h"
#include "medium/event_queue.h"
#include "medium/propagation.h"
#include "mobility/district_walk.h"
#include "sim/shard_barrier.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace cityhunter::sim {
namespace {

using medium::Position;
using support::Rng;
using support::SimTime;

constexpr std::uint8_t kChannels[] = {1, 6, 11};
constexpr std::int64_t kBeaconIntervalUs = 102400;  // 802.11 default TBTT
constexpr std::int64_t kScanBaseUs = 1'500'000;     // probe every 1.5–2.5 s
constexpr std::int64_t kScanJitterUs = 1'000'000;
/// Safety margin past the walker-penetration bound when sizing epochs.
constexpr double kContainmentMarginM = 2.0;

/// Global (world-level) ids ride in the frames themselves: every entity
/// transmits from a locally administered MAC that encodes its id, so a
/// receiving sink can attribute the delivery without any cross-shard state.
dot11::MacAddress mac_from_gid(std::uint64_t gid) {
  return dot11::MacAddress({0x02, static_cast<std::uint8_t>(gid >> 32),
                            static_cast<std::uint8_t>(gid >> 24),
                            static_cast<std::uint8_t>(gid >> 16),
                            static_cast<std::uint8_t>(gid >> 8),
                            static_cast<std::uint8_t>(gid)});
}

std::uint64_t gid_from_mac(const dot11::MacAddress& m) {
  const auto& o = m.octets();
  std::uint64_t v = 0;
  for (int i = 1; i < 6; ++i) v = (v << 8) | o[static_cast<std::size_t>(i)];
  return v;
}

struct Shard;

/// Logs every delivered frame with global ids; one sink per entity, owned
/// next to the Radio it serves so a handoff re-points it atomically.
struct RecordingSink final : medium::FrameSink {
  obs::DeliveryLog* log = nullptr;
  std::uint64_t rx_gid = 0;
  void on_frame(const dot11::Frame& frame,
                const medium::RxInfo& info) override {
    log->record(info.time.us(), gid_from_mac(frame.header.addr2), rx_gid,
                info.rssi_dbm, info.channel);
  }
};

/// Everything that crosses a shard boundary with a mobile client. Each
/// stream (walker waypoints, probe jitter) is a private fork keyed by the
/// global id, so the agent behaves identically wherever it is simulated.
struct PhoneAgent {
  std::uint64_t gid = 0;
  mobility::DistrictWalker walker;
  Rng scan_rng{0};
  dot11::Frame probe;
  std::int64_t next_scan_us = 0;
  std::int64_t next_walk_us = 0;
  medium::Medium::RadioSnapshot radio{};
};

class ShardedCity;

struct Entity {
  Shard* home = nullptr;
  RecordingSink sink;
  medium::Radio radio;
  bool is_ap = false;
  /// Cleared when the entity is handed off; its already-queued events fire
  /// once more as no-ops (cheaper than cancellable handles on this volume).
  bool alive = true;
  /// Set when a walk tick sees a foreign owner; the barrier re-checks.
  bool marked = false;
  // AP-only:
  dot11::Frame beacon;
  std::int64_t next_beacon_us = 0;
  // Phone-only:
  PhoneAgent agent;
};

struct Shard {
  Shard(ShardedCity* city_, int index_, const medium::Medium::Config& mcfg,
        bool keep_deliveries)
      : city(city_), index(index_), medium(events, mcfg),
        log(keep_deliveries) {}

  ShardedCity* city;
  int index;
  medium::EventQueue events;
  medium::Medium medium;
  obs::DeliveryLog log;
  /// Deque: entity addresses are captured in queued events and sinks are
  /// registered with the Medium, so they must never move.
  std::deque<Entity> entities;
  std::vector<Entity*> emigrants;  // marked this epoch, in event order
  std::uint64_t handoffs_in = 0;
  std::uint64_t handoffs_out = 0;
  std::uint64_t gap_silences = 0;
  double busy_s = 0.0;
  std::exception_ptr error;
};

class ShardedCity {
 public:
  explicit ShardedCity(const ShardedCityConfig& cfg)
      : cfg_(cfg), grid_(cfg.grid) {
    validate();
    build();
  }

  ShardedCityResult run();

 private:
  friend struct EpochCtx;

  void validate();
  void build();
  Entity& make_entity(Shard& shard);
  void schedule_beacon(Entity* e);
  void schedule_scan(Entity* e);
  void schedule_walk(Entity* e);
  void advance_shard(Shard& shard, SimTime until);
  void advance_epoch(SimTime until);
  void exchange_handoffs();

  ShardedCityConfig cfg_;
  world::DistrictGrid grid_;
  SimTime epoch_{};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t workers_ = 1;
  std::unique_ptr<support::TaskTeam> team_;
  std::uint64_t handoffs_ = 0;
};

void ShardedCity::validate() {
  if (cfg_.radios < 1) {
    throw std::invalid_argument("ShardedCity: radios must be >= 1");
  }
  if (cfg_.ap_fraction < 0.0 || cfg_.ap_fraction > 1.0) {
    throw std::invalid_argument("ShardedCity: ap_fraction outside [0, 1]");
  }
  if (cfg_.shards < 1 || cfg_.shards > grid_.cols() ||
      grid_.cols() % cfg_.shards != 0) {
    throw std::invalid_argument(
        "ShardedCity: shards must divide the district columns (" +
        std::to_string(grid_.cols()) + "), got " +
        std::to_string(cfg_.shards));
  }
  if (!(cfg_.phone_speed_mps > 0.0) || !(cfg_.walk_tick_s > 0.0)) {
    throw std::invalid_argument(
        "ShardedCity: phone speed and walk tick must be positive");
  }
  // RF-safety: the guard gap must contain max range twice plus the
  // worst-case walker penetration before handoff. max_safe_lookahead throws
  // when the gap cannot host any positive epoch; an explicit epoch must not
  // exceed the bound either.
  const double range_m = sharded_city_max_range_m(cfg_);
  const SimTime max_epoch = ConservativeBarrier::max_safe_lookahead(
      cfg_.grid.gap_m, range_m, cfg_.phone_speed_mps, cfg_.walk_tick_s,
      kContainmentMarginM);
  epoch_ = cfg_.epoch.us() > 0 ? cfg_.epoch : max_epoch;
  if (epoch_ > max_epoch) {
    throw std::invalid_argument(
        "ShardedCity: epoch " + std::to_string(epoch_.sec()) +
        " s exceeds the RF-safe lookahead " +
        std::to_string(max_epoch.sec()) + " s for gap " +
        std::to_string(cfg_.grid.gap_m) + " m / range " +
        std::to_string(range_m) + " m");
  }
}

Entity& ShardedCity::make_entity(Shard& shard) {
  Entity& e = shard.entities.emplace_back();
  e.home = &shard;
  e.sink.log = &shard.log;
  return e;
}

void ShardedCity::build() {
  workers_ = cfg_.workers != 0
                 ? std::min<std::size_t>(cfg_.workers,
                                         static_cast<std::size_t>(cfg_.shards))
                 : std::min<std::size_t>(
                       static_cast<std::size_t>(cfg_.shards),
                       std::max<std::size_t>(
                           1, std::thread::hardware_concurrency()));
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(this, s, cfg_.medium,
                                              cfg_.keep_deliveries));
    if (cfg_.max_sim_events_per_shard > 0) {
      medium::RunGuard guard;
      guard.max_events = cfg_.max_sim_events_per_shard;
      shards_.back()->events.arm_guard(guard);
    }
  }
  if (workers_ > 1) {
    team_ = std::make_unique<support::TaskTeam>(workers_ - 1);
  }

  // Entity builder. Every draw below comes from a stream forked from
  // (seed, gid): the build order is irrelevant, and so is which shard the
  // entity lands in — the bedrock of shard-count invariance. The root is
  // never drawn from, only forked (Rng::fork is const and state-snapshot
  // based, so fork order cannot perturb it either).
  const Rng root(cfg_.seed);
  const int n_aps = static_cast<int>(
      std::lround(static_cast<double>(cfg_.radios) * cfg_.ap_fraction));
  for (int gid = 0; gid < cfg_.radios; ++gid) {
    Rng er = root.fork("entity-" + std::to_string(gid));
    const std::uint64_t ugid = static_cast<std::uint64_t>(gid);
    const std::uint8_t channel = kChannels[er.index(3)];
    if (gid < n_aps) {
      // APs are pinned: round-robin over districts, uniform inside.
      const auto cell = grid_.cell(gid % grid_.districts());
      const Position pos = grid_.sample_in(cell, er);
      Shard& shard = *shards_[static_cast<std::size_t>(
          grid_.owner_shard(pos, cfg_.shards))];
      Entity& e = make_entity(shard);
      e.is_ap = true;
      e.sink.rx_gid = ugid;
      e.beacon = dot11::make_beacon(mac_from_gid(ugid), "city-hunter-ap",
                                    channel, /*open=*/true,
                                    /*timestamp_us=*/0);
      e.next_beacon_us = static_cast<std::int64_t>(
          er.uniform(0.0, static_cast<double>(kBeaconIntervalUs)));
      e.radio = shard.medium.attach(pos, channel, cfg_.ap_tx_dbm, &e.sink);
      schedule_beacon(&e);
    } else {
      PhoneAgent agent;
      agent.gid = ugid;
      agent.walker = mobility::DistrictWalker(&grid_, er.fork("walk"),
                                              cfg_.phone_speed_mps);
      agent.scan_rng = er.fork("scan");
      agent.probe = dot11::make_broadcast_probe_request(mac_from_gid(ugid));
      agent.next_scan_us = static_cast<std::int64_t>(
          er.uniform(0.0, static_cast<double>(kScanBaseUs + kScanJitterUs)));
      agent.next_walk_us = static_cast<std::int64_t>(
          er.uniform(0.0, cfg_.walk_tick_s * 1e6));
      const Position pos = agent.walker.pos();
      Shard& shard = *shards_[static_cast<std::size_t>(
          grid_.owner_shard(pos, cfg_.shards))];
      Entity& e = make_entity(shard);
      e.sink.rx_gid = ugid;
      e.agent = std::move(agent);
      e.radio = shard.medium.attach(pos, channel, cfg_.phone_tx_dbm, &e.sink);
      schedule_scan(&e);
      schedule_walk(&e);
    }
  }
}

void ShardedCity::schedule_beacon(Entity* e) {
  e->home->events.post_at(
      SimTime::microseconds(e->next_beacon_us), [this, e] {
        e->radio.transmit(e->beacon);
        e->next_beacon_us += kBeaconIntervalUs;
        schedule_beacon(e);
      });
}

void ShardedCity::schedule_scan(Entity* e) {
  e->home->events.post_at(
      SimTime::microseconds(e->agent.next_scan_us), [this, e] {
        if (!e->alive) return;  // handed off; the import rescheduled it
        // Gap silence: a client in a guard gap is out of range of every
        // district anyway (that's what the gap width guarantees), so
        // skipping the probe costs nothing observable — and it is what
        // keeps every transmission intra-shard.
        if (grid_.in_gap(e->agent.walker.pos())) {
          ++e->home->gap_silences;
        } else {
          e->radio.transmit(e->agent.probe);
        }
        e->agent.next_scan_us +=
            kScanBaseUs + static_cast<std::int64_t>(e->agent.scan_rng.uniform(
                              0.0, static_cast<double>(kScanJitterUs)));
        schedule_scan(e);
      });
}

void ShardedCity::schedule_walk(Entity* e) {
  e->home->events.post_at(
      SimTime::microseconds(e->agent.next_walk_us), [this, e] {
        if (!e->alive) return;
        const Position pos = e->agent.walker.step(cfg_.walk_tick_s);
        e->radio.set_position(pos);
        if (!e->marked &&
            grid_.owner_shard(pos, cfg_.shards) != e->home->index) {
          e->marked = true;
          e->home->emigrants.push_back(e);
        }
        e->agent.next_walk_us +=
            static_cast<std::int64_t>(cfg_.walk_tick_s * 1e6);
        schedule_walk(e);
      });
}

void ShardedCity::advance_shard(Shard& shard, SimTime until) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    shard.events.run_until(until);
  } catch (...) {
    shard.error = std::current_exception();
  }
  shard.busy_s +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

struct EpochCtx {
  ShardedCity* city;
  SimTime until;

  /// Worker w advances the shards with index ≡ w (mod workers): a fixed
  /// partition, but any partition would do — shards share nothing inside
  /// an epoch, so assignment can never leak into results.
  static void entry(void* ctx, std::size_t helper_index) {
    static_cast<EpochCtx*>(ctx)->run_lane(helper_index + 1);
  }
  void run_lane(std::size_t lane) const {
    for (std::size_t s = lane; s < city->shards_.size();
         s += city->workers_) {
      city->advance_shard(*city->shards_[s], until);
    }
  }
};

void ShardedCity::advance_epoch(SimTime until) {
  if (workers_ <= 1 || shards_.size() <= 1) {
    for (auto& shard : shards_) advance_shard(*shard, until);
  } else {
    EpochCtx ctx{this, until};
    team_->dispatch(&EpochCtx::entry, &ctx);
    ctx.run_lane(0);  // the calling thread is worker 0
    team_->wait();
  }
  for (auto& shard : shards_) {
    if (shard->error) std::rethrow_exception(shard->error);
  }
}

void ShardedCity::exchange_handoffs() {
  // Single-threaded barrier phase: every shard queue rests exactly at the
  // epoch boundary. Collect emigrants (their per-shard discovery order is
  // deterministic — each shard's event loop is single-threaded), then apply
  // in ascending global-id order so every destination Medium assigns its
  // monotone local ids identically no matter how the epoch was threaded.
  struct Handoff {
    PhoneAgent agent;
    int to = 0;
  };
  std::vector<Handoff> moving;
  for (auto& shard : shards_) {
    for (Entity* e : shard->emigrants) {
      e->marked = false;
      if (!e->alive) continue;
      const int owner =
          grid_.owner_shard(e->agent.walker.pos(), cfg_.shards);
      if (owner == shard->index) continue;  // wandered back before the bar
      e->agent.radio = shard->medium.export_radio(e->radio);
      e->alive = false;  // queued scan/walk events become no-ops
      moving.push_back({std::move(e->agent), owner});
      ++shard->handoffs_out;
    }
    shard->emigrants.clear();
  }
  std::sort(moving.begin(), moving.end(),
            [](const Handoff& a, const Handoff& b) {
              return a.agent.gid < b.agent.gid;
            });
  for (Handoff& h : moving) {
    Shard& dest = *shards_[static_cast<std::size_t>(h.to)];
    Entity& e = make_entity(dest);
    e.sink.rx_gid = h.agent.gid;
    e.agent = std::move(h.agent);
    e.radio = dest.medium.import_radio(e.agent.radio, &e.sink);
    // The agent's next event times are strictly past the barrier (anything
    // due earlier already fired in the source shard), so rescheduling here
    // can never violate the queue's no-past-scheduling rule.
    schedule_scan(&e);
    schedule_walk(&e);
    ++dest.handoffs_in;
    ++handoffs_;
  }
}

ShardedCityResult ShardedCity::run() {
  const ConservativeBarrier barrier({epoch_, cfg_.duration});
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < barrier.epochs(); ++i) {
    advance_epoch(barrier.epoch_end(i));
    exchange_handoffs();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ShardedCityResult r;
  r.shards = cfg_.shards;
  r.workers = workers_;
  r.epochs = barrier.epochs();
  r.handoffs = handoffs_;
  r.wall_s = wall;
  std::vector<const obs::DeliveryLog*> logs;
  logs.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats ss;
    ss.transmissions = shard->medium.transmissions();
    ss.deliveries = shard->medium.deliveries();
    ss.handoffs_in = shard->handoffs_in;
    ss.handoffs_out = shard->handoffs_out;
    ss.gap_silences = shard->gap_silences;
    ss.events_processed = shard->events.stats().processed;
    ss.busy_s = shard->busy_s;
    r.transmissions += ss.transmissions;
    r.deliveries += ss.deliveries;
    r.gap_silences += ss.gap_silences;
    r.events_processed += ss.events_processed;
    r.per_shard.push_back(ss);
    logs.push_back(&shard->log);
  }
  r.delivery_digest = obs::combined_digest(logs);
  r.deliveries_per_s =
      wall > 0.0 ? static_cast<double>(r.deliveries) / wall : 0.0;
  if (cfg_.keep_deliveries) {
    r.delivery_records = obs::merge_by_input_order(logs);
  }
  return r;
}

}  // namespace

double sharded_city_max_range_m(const ShardedCityConfig& cfg) {
  const medium::LogDistancePathLoss model(cfg.medium.propagation);
  return model.max_range(std::max(cfg.ap_tx_dbm, cfg.phone_tx_dbm));
}

support::SimTime sharded_city_epoch(const ShardedCityConfig& cfg) {
  if (cfg.epoch.us() > 0) return cfg.epoch;
  return ConservativeBarrier::max_safe_lookahead(
      cfg.grid.gap_m, sharded_city_max_range_m(cfg), cfg.phone_speed_mps,
      cfg.walk_tick_s, kContainmentMarginM);
}

ShardedCityResult run_sharded_city(const ShardedCityConfig& cfg) {
  const auto t_setup = std::chrono::steady_clock::now();
  ShardedCity city(cfg);
  const double setup_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_setup)
          .count();
  ShardedCityResult r = city.run();
  r.phases.setup_s = setup_s;
  r.phases.sim_s = r.wall_s;
  return r;
}

}  // namespace cityhunter::sim
