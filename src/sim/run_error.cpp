#include "sim/run_error.h"

namespace cityhunter::sim {

const char* to_string(RunErrorKind k) {
  switch (k) {
    case RunErrorKind::kNone: return "none";
    case RunErrorKind::kException: return "exception";
    case RunErrorKind::kDeadlineExceeded: return "deadline-exceeded";
    case RunErrorKind::kEventBudgetExceeded: return "event-budget-exceeded";
    case RunErrorKind::kRetryExhausted: return "retry-exhausted";
    case RunErrorKind::kCancelled: return "cancelled";
  }
  return "?";
}

std::string RunError::str() const {
  if (kind == RunErrorKind::kNone) return {};
  std::string out = to_string(kind);
  out += ": ";
  out += message;
  return out;
}

}  // namespace cityhunter::sim
