// Machine-readable exports of campaign results (CSV) for plotting and
// downstream analysis pipelines.
#pragma once

#include <string>
#include <vector>

#include "sim/scenario.h"

namespace cityhunter::sim {

/// One CSV row per CampaignResult with a fixed header:
/// label,total,direct,broadcast,direct_connected,broadcast_connected,
/// h,h_b,hits_wigle,hits_direct_db,hits_carrier,hits_popularity,
/// hits_freshness
std::string results_csv(const std::vector<stats::CampaignResult>& results);

/// Time-series CSV for Fig-1-style plots:
/// minutes,db_size,broadcast_connected
std::string series_csv(const std::vector<SeriesPoint>& series);

/// Windowed-rate CSV for h_b^r plots: window_start_min,clients,rate
std::string windows_csv(const std::vector<stats::WindowRate>& windows);

}  // namespace cityhunter::sim
