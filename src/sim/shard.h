// The continuous sharded city: a multi-district world where each spatial
// shard owns its slice of the Medium (a private slab-arena index, event
// queue and delivery-observation buffer) and mobile clients migrate across
// shard boundaries via deterministic handoff events.
//
// Determinism contract (the whole point — see DESIGN.md §5h for the proof
// sketch): the same ShardedCityConfig produces a byte-identical delivery
// multiset at ANY shard count (1/2/4/8…) and ANY worker count. The pieces:
//
//   * RF isolation — districts are separated by guard gaps wider than twice
//     the maximum radio range (world/district_grid.h), and clients are
//     radio-silent while inside a gap, so no transmission ever crosses an
//     ownership boundary; every delivery is an intra-shard event.
//   * Conservative barrier — shards advance epoch by epoch under
//     sim/shard_barrier.h; the lookahead is sized so a client that crosses
//     a gap midline cannot come within range of the destination shard's
//     districts before the barrier at which it is handed off.
//   * Keyed handoffs — a crossing is detected at the client's own position
//     tick, the handoff applies at the next epoch boundary, and all
//     handoffs of a barrier are applied in ascending global-id order, so
//     the destination Medium's monotone local-id assignment is a pure
//     function of (seed, global id, crossing epoch).
//   * Self-determined randomness — every entity draws placement, channel,
//     stagger, waypoints and probe jitter from RNG streams forked from
//     (seed, global id) alone; no draw order is shared between entities,
//     so partitioning them differently cannot perturb any stream.
//   * Canonical observations — per-shard obs::DeliveryLog buffers merge by
//     shard input order (the PR 4 trace-exporter rule) and compare as a
//     sorted multiset / order-independent digest, because the same
//     deliveries interleave differently between shards.
//
// The single-Medium baseline is simply shards = 1: identical geometry,
// identical behaviour streams, one Medium holding the whole city.
#pragma once

#include <cstdint>
#include <vector>

#include "medium/medium.h"
#include "obs/delivery_log.h"
#include "sim/scenario.h"
#include "support/sim_time.h"
#include "world/district_grid.h"

namespace cityhunter::sim {

struct ShardedCityConfig {
  int radios = 20000;
  double ap_fraction = 0.3;
  world::DistrictGrid::Config grid{};  // 8×2 districts of 500 m, 136 m gaps
  /// Spatial shards: contiguous district-column groups. Must divide
  /// grid.cols so 1/2/4/8 shards partition the same geometry evenly.
  int shards = 1;
  /// Worker threads advancing shards within an epoch (TaskTeam fork-join).
  /// 0 = min(shards, hardware threads). Results are identical at any value.
  std::size_t workers = 0;
  support::SimTime duration = support::SimTime::seconds(5.0);
  /// Conservative-barrier epoch. 0 = the largest RF-safe lookahead for this
  /// geometry (ConservativeBarrier::max_safe_lookahead). Explicit values
  /// are validated against the same bound — a too-long epoch would let a
  /// walker slip into a foreign shard's radio range before its handoff.
  support::SimTime epoch = support::SimTime::microseconds(0);
  std::uint64_t seed = 2026;
  double phone_speed_mps = 1.4;
  double walk_tick_s = 1.0;
  double ap_tx_dbm = 20.0;
  double phone_tx_dbm = 15.0;
  /// Per-shard Medium configuration (index/pipeline toggles). The
  /// propagation model also sizes the RF-safety validation.
  medium::Medium::Config medium{};
  /// Retain every delivery record for test-side sorting/merging. Benches
  /// leave this off and compare streaming digests — a city-scale run logs
  /// millions of deliveries.
  bool keep_deliveries = false;
  /// Per-shard sim-event budget (EventQueue::RunGuard), 0 = unlimited. A
  /// runaway entity loop trips the guard instead of hanging the campaign —
  /// the same supervisor plumbing RunConfig::max_sim_events provides for
  /// venue runs.
  std::uint64_t max_sim_events_per_shard = 0;
};

struct ShardStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t handoffs_in = 0;
  std::uint64_t handoffs_out = 0;
  std::uint64_t gap_silences = 0;
  std::uint64_t events_processed = 0;
  double busy_s = 0.0;  // wall time this shard's event loop ran
};

struct ShardedCityResult {
  // Shard-count/worker-count invariant observables (the identity set):
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t gap_silences = 0;
  /// Order-independent multiset digest of every delivery record
  /// (obs::DeliveryLog). Equal digests at different shard/worker counts are
  /// the byte-identity check benches assert.
  std::uint64_t delivery_digest = 0;

  // Run-shape observables (vary with shard count by design):
  std::uint64_t handoffs = 0;
  std::size_t epochs = 0;
  int shards = 0;
  std::size_t workers = 0;
  std::uint64_t events_processed = 0;
  std::vector<ShardStats> per_shard;

  double wall_s = 0.0;  // event loop + barriers only (setup excluded)
  double deliveries_per_s = 0.0;
  PhaseProfile phases;  // setup vs sim split, as run_campaign reports

  /// Merged per-shard records (shard input order) when keep_deliveries.
  std::vector<obs::DeliveryRecord> delivery_records;
};

/// Maximum radio range under the config's propagation model and TX powers
/// (what the gap width must clear twice).
double sharded_city_max_range_m(const ShardedCityConfig& cfg);

/// The epoch run_sharded_city will use: cfg.epoch, or the auto lookahead.
support::SimTime sharded_city_epoch(const ShardedCityConfig& cfg);

/// Build and run the sharded city. Throws std::invalid_argument when the
/// config violates the determinism prerequisites (shards not dividing the
/// columns, a gap too narrow for the ranges/speeds, a too-long epoch).
ShardedCityResult run_sharded_city(const ShardedCityConfig& cfg);

}  // namespace cityhunter::sim
