#include "sim/shard_barrier.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace cityhunter::sim {

ConservativeBarrier::ConservativeBarrier(Config cfg)
    : lookahead_(cfg.lookahead), horizon_(cfg.horizon) {
  if (lookahead_.us() <= 0) {
    throw std::invalid_argument(
        "ConservativeBarrier: lookahead must be positive, got " +
        std::to_string(lookahead_.us()) + " us");
  }
  if (horizon_.us() < 0) {
    throw std::invalid_argument("ConservativeBarrier: negative horizon");
  }
  // ceil(horizon / lookahead); a zero horizon still runs one (empty) epoch
  // so setup-only scenarios exercise the same code path.
  epochs_ = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (horizon_.us() + lookahead_.us() - 1) /
                                    lookahead_.us()));
}

support::SimTime ConservativeBarrier::epoch_end(std::size_t i) const {
  const std::int64_t end =
      static_cast<std::int64_t>(i + 1) * lookahead_.us();
  return support::SimTime::microseconds(std::min(end, horizon_.us()));
}

support::SimTime ConservativeBarrier::max_safe_lookahead(double gap_m,
                                                         double range_m,
                                                         double speed_mps,
                                                         double tick_s,
                                                         double margin_m) {
  if (!(speed_mps > 0.0) || !(tick_s > 0.0)) {
    throw std::invalid_argument(
        "max_safe_lookahead: speed and tick must be positive");
  }
  // speed * (tick + epoch) + margin <= gap/2 - range, solved for epoch.
  const double budget_m = gap_m / 2.0 - range_m - margin_m;
  const double epoch_s = budget_m / speed_mps - tick_s;
  if (!(epoch_s > 0.0)) {
    throw std::invalid_argument(
        "max_safe_lookahead: gap " + std::to_string(gap_m) +
        " m is too narrow for range " + std::to_string(range_m) +
        " m at " + std::to_string(speed_mps) + " m/s (need gap >= " +
        std::to_string(2.0 * (range_m + margin_m + speed_mps * tick_s)) +
        " m plus room for a positive epoch)");
  }
  return support::SimTime::seconds(epoch_s);
}

}  // namespace cityhunter::sim
