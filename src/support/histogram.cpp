#include "support/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cityhunter::support {

Histogram::Histogram(double bucket_width) : bucket_width_(bucket_width) {
  if (bucket_width <= 0.0) {
    throw std::invalid_argument("Histogram: bucket_width must be positive");
  }
}

void Histogram::add(double value) {
  const long long b = static_cast<long long>(std::floor(value / bucket_width_));
  ++buckets_[b];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
}

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Histogram::fraction_in_bucket(double bucket_lo) const {
  if (count_ == 0) return 0.0;
  const long long b =
      static_cast<long long>(std::floor(bucket_lo / bucket_width_));
  const auto it = buckets_.find(b);
  if (it == buckets_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(count_);
}

std::vector<std::pair<double, std::size_t>> Histogram::buckets() const {
  std::vector<std::pair<double, std::size_t>> out;
  out.reserve(buckets_.size());
  for (const auto& [b, c] : buckets_) {
    out.emplace_back(static_cast<double>(b) * bucket_width_, c);
  }
  return out;
}

std::string Histogram::ascii(int width) const {
  std::ostringstream os;
  std::size_t peak = 0;
  for (const auto& [b, c] : buckets_) peak = std::max(peak, c);
  if (peak == 0) return "(empty)\n";
  for (const auto& [b, c] : buckets_) {
    const double lo = static_cast<double>(b) * bucket_width_;
    const int bar = static_cast<int>(
        std::lround(static_cast<double>(c) / static_cast<double>(peak) *
                    width));
    os << "[" << lo << ", " << lo + bucket_width_ << ")  ";
    for (int i = 0; i < bar; ++i) os << '#';
    os << "  " << c << " ("
       << 100.0 * static_cast<double>(c) / static_cast<double>(count_)
       << "%)\n";
  }
  return os.str();
}

void Summary::add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  sum_ += v;
  sum_sq_ += v * v;
}

double Summary::stddev() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace cityhunter::support
