#include "support/thread_pool.h"

#include <cstdlib>

namespace cityhunter::support {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_workers();
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain remaining tasks before shutdown so every submitted future is
      // eventually satisfied.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into the future
  }
}

std::size_t ThreadPool::default_workers() {
  if (const char* env = std::getenv("CITYHUNTER_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace cityhunter::support
