#include "support/thread_pool.h"

#include <cstdlib>

namespace cityhunter::support {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_workers();
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain remaining tasks before shutdown so every submitted future is
      // eventually satisfied.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into the future
  }
}

namespace {

/// Bounded spin before parking on a futex: long enough to catch a fanout
/// dispatched microseconds later, short enough not to burn a core when the
/// medium goes quiet (or when helpers oversubscribe a small machine — the
/// yield gives the producer thread a chance to actually run).
constexpr int kSpinIterations = 1024;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

TaskTeam::TaskTeam(std::size_t helpers) {
  threads_.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) {
    threads_.emplace_back([this, i] { helper_loop(i); });
  }
}

TaskTeam::~TaskTeam() {
  stopping_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (auto& t : threads_) t.join();
}

void TaskTeam::dispatch(Fn fn, void* ctx) {
  fn_ = fn;
  ctx_ = ctx;
  done_.store(0, std::memory_order_relaxed);
  // The release increment publishes fn_/ctx_ (and everything the caller
  // wrote before dispatch) to helpers that acquire the new epoch.
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
}

void TaskTeam::wait() {
  const std::size_t n = threads_.size();
  int spins = 0;
  for (;;) {
    const std::size_t d = done_.load(std::memory_order_acquire);
    if (d == n) return;
    if (++spins < kSpinIterations) {
      cpu_relax();
    } else {
      done_.wait(d, std::memory_order_acquire);
      spins = 0;
    }
  }
}

void TaskTeam::helper_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    int spins = 0;
    while (e == seen) {
      if (++spins < kSpinIterations) {
        cpu_relax();
      } else {
        epoch_.wait(seen, std::memory_order_acquire);
        spins = 0;
      }
      e = epoch_.load(std::memory_order_acquire);
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    seen = e;
    fn_(ctx_, index);
    done_.fetch_add(1, std::memory_order_release);
    done_.notify_all();
  }
}

std::size_t ThreadPool::default_workers() {
  if (const char* env = std::getenv("CITYHUNTER_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace cityhunter::support
