// Simulated-time primitives.
//
// Everything in the simulator runs on SimTime, a strongly typed microsecond
// tick count. Nothing in the repository reads a wall clock: determinism is a
// design requirement (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace cityhunter::support {

/// A point in simulated time, measured in microseconds since simulation
/// start. Strongly typed to prevent accidental mixing with raw integers or
/// durations in other units.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors: always say the unit at the call site.
  static constexpr SimTime microseconds(std::int64_t us) { return SimTime(us); }
  static constexpr SimTime milliseconds(std::int64_t ms) {
    return SimTime(ms * 1000);
  }
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr SimTime minutes(double m) { return seconds(m * 60.0); }
  static constexpr SimTime hours(double h) { return seconds(h * 3600.0); }

  constexpr std::int64_t us() const { return us_; }
  constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  constexpr double sec() const { return static_cast<double>(us_) / 1e6; }
  constexpr double min() const { return sec() / 60.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime rhs) const {
    return SimTime(us_ + rhs.us_);
  }
  constexpr SimTime operator-(SimTime rhs) const {
    return SimTime(us_ - rhs.us_);
  }
  constexpr SimTime& operator+=(SimTime rhs) {
    us_ += rhs.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    us_ -= rhs.us_;
    return *this;
  }

  /// Scale a duration (e.g. `interval * 0.5`).
  constexpr SimTime operator*(double k) const {
    return SimTime(static_cast<std::int64_t>(static_cast<double>(us_) * k));
  }

  /// Human-readable rendering, e.g. "12m34.5s" — for logs and reports.
  std::string str() const;

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(INT64_MAX);
  }

 private:
  explicit constexpr SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace cityhunter::support
