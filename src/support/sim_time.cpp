#include "support/sim_time.h"

#include <cstdio>

namespace cityhunter::support {

std::string SimTime::str() const {
  char buf[64];
  const double total_sec = sec();
  if (total_sec < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ms());
  } else if (total_sec < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", total_sec);
  } else if (total_sec < 3600.0) {
    const int m = static_cast<int>(total_sec) / 60;
    std::snprintf(buf, sizeof(buf), "%dm%.1fs", m, total_sec - m * 60);
  } else {
    const int h = static_cast<int>(total_sec) / 3600;
    const int m = (static_cast<int>(total_sec) % 3600) / 60;
    std::snprintf(buf, sizeof(buf), "%dh%02dm", h, m);
  }
  return buf;
}

}  // namespace cityhunter::support
