#include "support/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace cityhunter::support {

namespace {

void set_error(std::string* error, const char* op, const std::string& path) {
  if (error == nullptr) return;
  *error = std::string(op) + " failed for " + path + ": " +
           std::strerror(errno);
}

/// Directory part of `path` ("." when the path has no slash) — the rename's
/// durability depends on fsyncing this directory, not the file.
std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view bytes,
                       std::string* error) {
  // Same-directory temp name: rename() is only atomic within a filesystem,
  // and the pid suffix keeps concurrent writers (two benches in one tree)
  // from trampling each other's temp file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, "open", tmp);
    return false;
  }

  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, "write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }

  // File contents must be durable before the rename makes them visible:
  // rename-before-fsync can expose a zero-length file after a crash.
  if (::fsync(fd) != 0) {
    set_error(error, "fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "close", tmp);
    ::unlink(tmp.c_str());
    return false;
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename", tmp);
    ::unlink(tmp.c_str());
    return false;
  }

  // fsync the directory so the rename itself is on disk; failure here is
  // reported but the target already holds complete new contents.
  const std::string dir = dir_of(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    set_error(error, "open(dir)", dir);
    return false;
  }
  const bool dir_synced = ::fsync(dfd) == 0;
  if (!dir_synced) set_error(error, "fsync(dir)", dir);
  ::close(dfd);
  return dir_synced;
}

}  // namespace cityhunter::support
