// Plain-text table rendering for bench output: every bench binary prints the
// same rows the paper's tables report, via this formatter.
#pragma once

#include <string>
#include <vector>

namespace cityhunter::support {

/// Accumulates rows of cells and renders an aligned ASCII table with a
/// header rule, e.g.
///
///   Attack      | Total probes | h     | h_b
///   ------------+--------------+-------+------
///   KARMA       | 614          | 3.9%  | 0%
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric cells.
  static std::string pct(double fraction, int decimals = 1);
  static std::string num(double v, int decimals = 1);
  static std::string num(long long v);

  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cityhunter::support
