// Deterministic random-number generation.
//
// All stochastic behaviour in the simulator is driven by an Rng seeded from a
// scenario seed, so every experiment in bench/ is exactly reproducible. Child
// generators can be forked with independent streams (SplitMix64 over the seed
// and a stream label) so adding randomness to one module does not perturb
// another.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace cityhunter::support {

/// Deterministic RNG wrapper around std::mt19937_64 with convenience
/// distributions used throughout the simulator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix(seed)) {}

  /// Fork an independent child stream. The label keeps streams stable across
  /// code changes: rng.fork("mobility") always yields the same stream for a
  /// given parent seed.
  Rng fork(std::string_view label) const;

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Normal distribution (mean, stddev).
  double normal(double mean, double stddev);

  /// Lognormal by underlying normal parameters.
  double lognormal(double mu, double sigma);

  /// Exponential with the given mean (NOT rate).
  double exponential_mean(double mean);

  /// Poisson-distributed count.
  int poisson(double mean);

  /// Zipf-distributed rank in [1, n] with exponent s. Uses inverse-CDF over a
  /// precomputed table for small n, rejection sampling otherwise.
  int zipf(int n, double s);

  /// Pick a uniformly random element index of a container of size n.
  std::size_t index(std::size_t n);

  /// Weighted index selection: weights need not be normalised.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Sample k distinct indices out of [0, n). Order unspecified.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t splitmix(std::uint64_t x);
  std::mt19937_64 engine_;
};

}  // namespace cityhunter::support
