// Lightweight histogram and summary statistics used by stats/ and bench/.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace cityhunter::support {

/// Fixed-width bucketed histogram over non-negative values.
class Histogram {
 public:
  /// bucket_width must be positive; values are assigned to bucket
  /// floor(v / bucket_width).
  explicit Histogram(double bucket_width);

  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double stddev() const;

  /// Fraction of samples whose bucket lower bound equals `bucket_lo`.
  double fraction_in_bucket(double bucket_lo) const;

  /// (bucket lower bound, count) pairs, sorted by bucket.
  std::vector<std::pair<double, std::size_t>> buckets() const;

  /// Render an ASCII bar chart, `width` chars for the largest bucket.
  std::string ascii(int width = 50) const;

 private:
  double bucket_width_;
  std::map<long long, std::size_t> buckets_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Running mean/min/max/stddev without retaining samples.
class Summary {
 public:
  void add(double v);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cityhunter::support
