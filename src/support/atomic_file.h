// Crash-safe file replacement.
//
// A bench or checkpoint that dies mid-write must never leave a torn file
// behind: a half-written BENCH_wallclock.json silently poisons the next
// revision's speedup-vs-previous comparison, and a torn campaign checkpoint
// would defeat the whole point of having one. write_file_atomic() gives the
// POSIX durability contract: write to a same-directory temp file, fsync the
// file, rename() over the target (atomic on POSIX), then fsync the directory
// so the rename itself survives a power cut. Readers observe either the old
// complete file or the new complete file — never a prefix.
#pragma once

#include <string>
#include <string_view>

namespace cityhunter::support {

/// Atomically replace `path` with `bytes`. Returns true on success; on any
/// failure the target file is left untouched (the temp file is unlinked on a
/// best-effort basis) and `error`, when non-null, receives a description
/// naming the failing syscall and errno.
bool write_file_atomic(const std::string& path, std::string_view bytes,
                       std::string* error = nullptr);

}  // namespace cityhunter::support
