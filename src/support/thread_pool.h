// Fixed-size worker pool for fanning independent work across cores.
//
// Campaigns in bench/ are embarrassingly parallel (one discrete-event world
// per run), so a plain futures-based pool is all the machinery needed: no
// work stealing, no task graphs. Tasks may submit further tasks, but must
// not block on a future produced by the same pool (classic starvation).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cityhunter::support {

class ThreadPool {
 public:
  /// `workers` = 0 picks default_workers().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueue `fn` and get a future for its result. Exceptions thrown by the
  /// task surface from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Worker count used when none is given: the CITYHUNTER_THREADS env var
  /// if set to a positive integer, else std::thread::hardware_concurrency().
  static std::size_t default_workers();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cityhunter::support
