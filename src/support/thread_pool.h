// Fixed-size worker pool for fanning independent work across cores.
//
// Campaigns in bench/ are embarrassingly parallel (one discrete-event world
// per run), so a plain futures-based pool is all the machinery needed: no
// work stealing, no task graphs. Tasks may submit further tasks, but must
// not block on a future produced by the same pool (classic starvation).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cityhunter::support {

class ThreadPool {
 public:
  /// `workers` = 0 picks default_workers().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueue `fn` and get a future for its result. Exceptions thrown by the
  /// task surface from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Worker count used when none is given: the CITYHUNTER_THREADS env var
  /// if set to a positive integer, else std::thread::hardware_concurrency().
  static std::size_t default_workers();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Low-latency fork-join team for intra-run data parallelism.
///
/// ThreadPool's futures-based submit costs a mutex, a packaged_task heap
/// allocation and a condition-variable wakeup per task — fine for campaign
/// runs that last seconds, fatal for a delivery fanout that lasts
/// microseconds. TaskTeam keeps N helper threads parked on one atomic epoch:
/// dispatch() is two plain stores plus a release increment, helpers spin
/// briefly before falling back to atomic::wait (futex), and join is a
/// counter the caller spins on. No allocation, no mutex, no std::function
/// on the dispatch path.
///
/// Protocol (single producer): dispatch(fn, ctx) → caller does its own share
/// of the work → wait(). The callable is a plain function pointer; every
/// helper runs fn(ctx, helper_index) exactly once per dispatch. Memory
/// ordering: writes made by the caller before dispatch() are visible to
/// helpers (release/acquire on the epoch), and writes made by helpers before
/// returning from fn are visible to the caller after wait() (release/acquire
/// on the done counter).
class TaskTeam {
 public:
  using Fn = void (*)(void* ctx, std::size_t helper_index);

  /// Spawns `helpers` parked threads (the caller is not one of them — a
  /// W-way fork-join wants helpers = W − 1).
  explicit TaskTeam(std::size_t helpers);
  ~TaskTeam();

  TaskTeam(const TaskTeam&) = delete;
  TaskTeam& operator=(const TaskTeam&) = delete;

  std::size_t helpers() const { return threads_.size(); }

  /// Launch fn(ctx, i) on every helper i. Must not be called again before
  /// wait() returns; the caller should run its own chunk between the two.
  void dispatch(Fn fn, void* ctx);
  /// Block until every helper finished the current dispatch.
  void wait();

 private:
  void helper_loop(std::size_t index);

  Fn fn_ = nullptr;    // valid between dispatch() and the helpers' done
  void* ctx_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> threads_;
};

}  // namespace cityhunter::support
