#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cityhunter::support {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::pct(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TextTable::num(double v, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TextTable::num(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::str() const {
  std::vector<std::size_t> w(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    w[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      w[i] = std::max(w[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i ? " | " : "") << row[i]
         << std::string(w[i] - row[i].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    os << (i ? "-+-" : "") << std::string(w[i], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace cityhunter::support
