#include "support/rng.h"

#include <cmath>
#include <mutex>
#include <numeric>
#include <stdexcept>

namespace cityhunter::support {

std::uint64_t Rng::splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::fork(std::string_view label) const {
  // FNV-1a over the label mixed with a snapshot of the engine state hash.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  // Combine with the parent's *seed-derived* identity: re-hash a copy of the
  // engine's next output without disturbing the parent (we copy the engine).
  std::mt19937_64 copy = engine_;
  const std::uint64_t parent_word = copy();
  return Rng(splitmix(h ^ parent_word));
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::exponential_mean(double mean) {
  if (mean <= 0.0) return 0.0;
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

int Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  // glibc's lgamma() — called by poisson_distribution's setup and by its
  // large-mean rejection sampler — writes the process-global `signgam`,
  // which is a data race when campaigns run in parallel. Poisson draws are
  // rare (slot scheduling), so serializing them is cheaper than swapping
  // the sampler, and keeps the drawn values bit-identical.
  static std::mutex mutex;
  const std::scoped_lock lock(mutex);
  std::poisson_distribution<int> d(mean);
  return d(engine_);
}

int Rng::zipf(int n, double s) {
  if (n <= 0) throw std::invalid_argument("zipf: n must be positive");
  if (n == 1) return 1;
  // Inverse CDF over the harmonic weights. n in this codebase is at most a
  // few thousand, so a linear scan is fine and exact.
  double norm = 0.0;
  for (int k = 1; k <= n; ++k) norm += 1.0 / std::pow(k, s);
  double u = uniform(0.0, norm);
  double acc = 0.0;
  for (int k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(k, s);
    if (u <= acc) return k;
  }
  return n;
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("index: empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0 || weights.empty()) {
    throw std::invalid_argument("weighted_index: non-positive total weight");
  }
  double u = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace cityhunter::support
