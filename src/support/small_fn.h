// Small-buffer-optimized move-only callable, void() signature.
//
// std::function's type-erasure heap-allocates once a capture outgrows its
// (implementation-defined, typically 16-32 byte) inline buffer — which the
// event queue's transmit closures did on every scheduled frame. SmallFn sizes
// the inline buffer explicitly for the hot-path closure and falls back to the
// heap only for oversized captures, so scheduling stays allocation-free at
// steady state. Move-only: event callbacks are fired exactly once, so there
// is no reason to pay for copyability.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace cityhunter::support {

template <std::size_t Capacity>
class SmallFn {
  static_assert(Capacity >= sizeof(void*),
                "buffer must at least hold the heap-fallback pointer");

 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct dst from src and destroy src.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* src, void* dst) noexcept {
        Fn* s = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* src, void* dst) noexcept {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
  };

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace cityhunter::support
