#include "world/district_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace cityhunter::world {

DistrictGrid::DistrictGrid(Config cfg) : cfg_(cfg) {
  if (cfg_.cols < 1 || cfg_.rows < 1) {
    throw std::invalid_argument("DistrictGrid: cols/rows must be >= 1, got " +
                                std::to_string(cfg_.cols) + "x" +
                                std::to_string(cfg_.rows));
  }
  if (!(cfg_.district_m > 0.0)) {
    throw std::invalid_argument("DistrictGrid: district_m must be > 0");
  }
  if (!(cfg_.gap_m >= 0.0)) {
    throw std::invalid_argument("DistrictGrid: gap_m must be >= 0");
  }
}

bool DistrictGrid::in_district(medium::Position p) const {
  const double pt = pitch();
  const auto local = [pt](double v, int n) -> double {
    const int c = std::clamp(static_cast<int>(std::floor(v / pt)), 0, n - 1);
    return v - c * pt;
  };
  const double lx = local(p.x, cfg_.cols);
  const double ly = local(p.y, cfg_.rows);
  return lx >= 0.0 && lx <= cfg_.district_m && ly >= 0.0 &&
         ly <= cfg_.district_m;
}

int DistrictGrid::owner_column(medium::Position p) const {
  // Shift by half a gap so the boundary between column c and c+1 is the
  // midline of the gap separating them; clamp covers the half gap of slack
  // outside the first/last district.
  const int col =
      static_cast<int>(std::floor((p.x + cfg_.gap_m / 2.0) / pitch()));
  return std::clamp(col, 0, cfg_.cols - 1);
}

medium::Position DistrictGrid::sample_in(Cell c, support::Rng& rng) const {
  constexpr double kInsetM = 0.5;
  const medium::Position o = district_origin(c);
  return {o.x + rng.uniform(kInsetM, cfg_.district_m - kInsetM),
          o.y + rng.uniform(kInsetM, cfg_.district_m - kInsetM)};
}

}  // namespace cityhunter::world
