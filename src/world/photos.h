// Synthetic geotagged photos — the heat-map input.
//
// The paper estimates people density from the number of geotagged photos
// posted per area. We generate photos proportional to the ground-truth city
// density with a tourist bias towards non-residential districts (people
// photograph the airport and malls, not their own flat), which is exactly
// the property the paper exploits: photo density over-weights places many
// *different* people pass through.
#pragma once

#include <vector>

#include "support/rng.h"
#include "world/city.h"

namespace cityhunter::world {

struct PhotoSetConfig {
  int photo_count = 50000;
  /// Share of photos taken by "tourists": locations drawn only from
  /// commercial / transport / airport districts.
  double tourist_fraction = 0.55;
};

class PhotoSet {
 public:
  static PhotoSet generate(const CityModel& city, support::Rng& rng,
                           const PhotoSetConfig& cfg = PhotoSetConfig());

  const std::vector<Position>& positions() const { return positions_; }
  std::size_t size() const { return positions_.size(); }

 private:
  std::vector<Position> positions_;
};

}  // namespace cityhunter::world
