#include "world/pnl.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace cityhunter::world {

bool Person::has_open_entry() const {
  return std::any_of(pnl.begin(), pnl.end(),
                     [](const PnlEntry& e) { return e.open; });
}

bool Person::knows(const std::string& ssid) const {
  return std::any_of(pnl.begin(), pnl.end(),
                     [&](const PnlEntry& e) { return e.ssid == ssid; });
}

PnlModel::PnlModel(const CityModel& city,
                   const std::vector<AccessPointInfo>& ground_truth,
                   PnlModelConfig cfg)
    : cfg_(cfg) {
  // Visit propensity of a public open SSID: total people density summed over
  // its AP locations. Chains with many APs in hot areas rank highest;
  // hot-area SSIDs (airport) rank high despite few APs.
  std::map<std::string, double> propensity;
  double open_homes = 0.0;
  double homes = 0.0;
  for (const auto& ap : ground_truth) {
    switch (ap.category) {
      case ApCategory::kResidential:
        homes += 1.0;
        if (ap.open) open_homes += 1.0;
        break;
      case ApCategory::kEnterprise:
        break;  // protected; never attacker-joinable
      case ApCategory::kCarrier:
        break;  // enters PNLs via subscription, not visits
      default:
        if (ap.open) propensity[ap.ssid] += city.density(ap.pos);
    }
  }
  if (homes > 0.0) home_open_fraction_ = open_homes / homes;

  std::vector<std::pair<std::string, double>> ranked(propensity.begin(),
                                                     propensity.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  ranked_public_.reserve(ranked.size());
  for (auto& [ssid, w] : ranked) ranked_public_.push_back(std::move(ssid));
}

std::string PnlModel::sample_public_ssid(support::Rng& rng) {
  if (!locale_.ranked_ssids.empty() && rng.chance(locale_.bias)) {
    const int n = static_cast<int>(locale_.ranked_ssids.size());
    const int rank = rng.zipf(n, cfg_.zipf_exponent);
    return locale_.ranked_ssids[static_cast<std::size_t>(rank - 1)];
  }
  const int n = static_cast<int>(ranked_public_.size());
  const int rank = rng.zipf(n, cfg_.zipf_exponent);
  return ranked_public_[static_cast<std::size_t>(rank - 1)];
}

std::string PnlModel::sample_tail_ssid(support::Rng& rng) {
  // Groups mostly share *local* history — the cafe around the corner — and
  // those small networks are exactly the ones wardriving under-covers.
  if (!locale_.ranked_ssids.empty() && rng.chance(0.6)) {
    const int n = static_cast<int>(locale_.ranked_ssids.size());
    const int lo = std::min(8, n);
    const int hi = std::min(120, n);
    const int rank = static_cast<int>(rng.uniform_int(lo, hi));
    return locale_.ranked_ssids[static_cast<std::size_t>(rank - 1)];
  }
  const int n = static_cast<int>(ranked_public_.size());
  const int lo = std::min(cfg_.group_tail_min_rank, n);
  const int hi = std::min(cfg_.group_tail_max_rank, n);
  const int rank = static_cast<int>(rng.uniform_int(lo, hi));
  return ranked_public_[static_cast<std::size_t>(rank - 1)];
}

void PnlModel::add_public_entries(support::Rng& rng, Person& p) {
  double user_prob = cfg_.public_wifi_user_fraction;
  if (p.sends_direct_probes) user_prob *= cfg_.direct_prober_user_multiplier;
  p.public_wifi_user = rng.chance(std::min(1.0, user_prob));
  if (!p.public_wifi_user) return;
  const int k = 1 + rng.poisson(cfg_.mean_extra_public_ssids);
  for (int i = 0; i < k; ++i) {
    const std::string ssid = sample_public_ssid(rng);
    if (!p.knows(ssid)) {
      p.pnl.push_back({ssid, true, PnlOrigin::kPublicVisit});
    }
  }
}

Person PnlModel::make_person(support::Rng& rng,
                             const std::vector<std::string>& venue_ssids,
                             double venue_regular_prob) {
  Person p;
  p.id = next_person_id_++;
  p.os = rng.chance(cfg_.ios_fraction) ? Os::kIos : Os::kAndroid;
  p.sends_direct_probes = rng.chance(cfg_.direct_probe_fraction);
  if (p.sends_direct_probes) {
    // Legacy-device population skews old Android in this model.
    p.os = Os::kAndroid;
  }

  // Home network: unique SSID per household.
  char home[32];
  std::snprintf(home, sizeof(home), "HOME-NET-%06llu",
                static_cast<unsigned long long>(next_home_id_++));
  p.pnl.push_back({home, rng.chance(home_open_fraction_), PnlOrigin::kHome});

  if (rng.chance(cfg_.work_network_fraction)) {
    char work[32];
    std::snprintf(work, sizeof(work), "CORP-%03d-5F",
                  static_cast<int>(rng.uniform_int(0, 599)));
    p.pnl.push_back({work, false, PnlOrigin::kWork});
  }

  add_public_entries(rng, p);

  // Stale history: unique networks from past trips and visits.
  const int stale = rng.poisson(cfg_.mean_stale_entries);
  for (int i = 0; i < stale; ++i) {
    char name[40];
    std::snprintf(name, sizeof(name), "Hotel-Guest-%06llX",
                  static_cast<unsigned long long>(
                      rng.uniform_int(0, 0xFFFFFF) |
                      (static_cast<long long>(p.id) << 24)));
    p.pnl.push_back(
        {name, rng.chance(cfg_.stale_open_fraction), PnlOrigin::kPublicVisit});
  }

  if (p.public_wifi_user && !venue_ssids.empty() &&
      rng.chance(venue_regular_prob)) {
    const auto& ssid = venue_ssids[rng.index(venue_ssids.size())];
    if (!p.knows(ssid)) {
      p.pnl.push_back({ssid, true, PnlOrigin::kVenueLocal});
    }
  }

  if (p.os == Os::kIos && !p.sends_direct_probes &&
      rng.chance(cfg_.carrier_subscription_fraction)) {
    static constexpr std::pair<const char*, const char*> kCarriers[] = {
        {"PCCW", "PCCW1x"}, {"Y5", "Y5ZONE"}, {"CMHK", "CMCC-AUTO"}};
    const auto& [carrier, ssid] = kCarriers[rng.index(3)];
    p.carrier = carrier;
    p.pnl.push_back({ssid, true, PnlOrigin::kCarrier});
  }
  return p;
}

std::vector<Person> PnlModel::make_group(
    support::Rng& rng, int n, const std::vector<std::string>& venue_ssids,
    double venue_regular_prob) {
  std::vector<Person> group;
  group.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    group.push_back(make_person(rng, venue_ssids, venue_regular_prob));
  }
  if (n < 2) return group;

  const std::uint64_t gid = next_group_id_++;
  for (auto& p : group) p.group_id = gid;

  // Shared history: the places the group went together. Mid-tail SSIDs —
  // the ones only the freshness mechanism can exploit at scale.
  for (int s = 0; s < cfg_.group_common_ssids; ++s) {
    const std::string ssid = sample_tail_ssid(rng);
    for (auto& p : group) {
      const double adopt = p.public_wifi_user ? cfg_.group_adopt_prob
                                              : cfg_.group_adopt_prob_nonuser;
      if (rng.chance(adopt) && !p.knows(ssid)) {
        p.pnl.push_back({ssid, true, PnlOrigin::kGroupShared});
      }
    }
  }

  // Families share the home network.
  if (rng.chance(cfg_.group_share_home_prob)) {
    const PnlEntry& home = group.front().pnl.front();
    for (std::size_t i = 1; i < group.size(); ++i) {
      auto& pnl = group[i].pnl;
      // Replace their own home entry with the shared one.
      for (auto& e : pnl) {
        if (e.origin == PnlOrigin::kHome) {
          e = home;
          break;
        }
      }
    }
  }
  return group;
}

}  // namespace cityhunter::world
