// Synthetic city model.
//
// Substitutes for Hong Kong in the paper: a rectangular city with districts
// (residential belts, commercial cores, transport hubs, one airport) whose
// ground-truth population density drives both AP placement and where people
// photograph — the two signals the heat-map pipeline (heatmap/) consumes.
#pragma once

#include <string>
#include <vector>

#include "medium/geometry.h"
#include "support/rng.h"

namespace cityhunter::world {

using medium::Position;

enum class DistrictKind {
  kResidential,
  kCommercial,   // malls, office cores — high daytime density
  kTransport,    // railway stations, interchanges
  kAirport,      // few APs, very many distinct visitors
};

/// A Gaussian population blob.
struct District {
  std::string name;
  Position center;
  double sigma_m = 500.0;       // spatial spread
  double people_weight = 1.0;   // relative share of the city's population
  DistrictKind kind = DistrictKind::kResidential;
};

class CityModel {
 public:
  struct Config {
    double width_m = 10000.0;
    double height_m = 10000.0;
    std::vector<District> districts;  // empty -> default_districts()
  };

  CityModel() : CityModel(Config()) {}
  explicit CityModel(Config cfg);

  /// The default synthetic city: 4 residential belts, 3 commercial cores,
  /// 2 railway hubs and 1 airport, echoing the Kowloon/Lantau examples.
  static std::vector<District> default_districts();

  double width() const { return cfg_.width_m; }
  double height() const { return cfg_.height_m; }
  const std::vector<District>& districts() const { return cfg_.districts; }

  /// Relative people density at `p` (sum of district Gaussians; not
  /// normalised).
  double density(Position p) const;

  /// Sample a location with probability proportional to density. The
  /// optional kind filter restricts to districts of that kind.
  Position sample_location(support::Rng& rng) const;
  Position sample_location_of_kind(support::Rng& rng, DistrictKind kind) const;

  /// Uniformly random location in the city rectangle.
  Position sample_uniform(support::Rng& rng) const;

  const District& district(std::size_t i) const { return cfg_.districts[i]; }

 private:
  Position sample_from(support::Rng& rng,
                       const std::vector<std::size_t>& idx) const;
  Config cfg_;
  std::vector<double> weights_;  // per-district people weights
};

}  // namespace cityhunter::world
