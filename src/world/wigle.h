// WigleDb — the offline wireless-network mapping snapshot.
//
// Stands in for wigle.net in the paper: a crowd-sourced database of APs with
// SSIDs, positions and security flags. Built by sampling the ground-truth AP
// population with a coverage probability (wardrivers never see everything),
// it answers the two queries City-Hunter's database initialisation needs:
// the N free APs nearest the attack location, and city-wide AP counts per
// free SSID.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "support/rng.h"
#include "world/ap.h"

namespace cityhunter::world {

/// How completely wardrivers observed each AP category. Street-level
/// wardriving sees chain shops and residential windows well but misses many
/// indoor cafe and enterprise APs — which is why part of the mid-tail can
/// only ever enter the attacker's database through direct probes on site.
struct WigleCoverage {
  double residential = 0.80;
  double enterprise = 0.55;
  double chain = 0.95;
  double hot_area = 0.95;
  double venue_local = 0.20;

  double of(ApCategory cat) const;
};

class WigleDb {
 public:
  /// Snapshot `ground_truth` with uniform observation probability.
  static WigleDb snapshot(const std::vector<AccessPointInfo>& ground_truth,
                          support::Rng& rng, double coverage = 0.85);

  /// Snapshot with per-category coverage.
  static WigleDb snapshot(const std::vector<AccessPointInfo>& ground_truth,
                          support::Rng& rng, const WigleCoverage& coverage);

  /// Build from explicit records (tests).
  static WigleDb from_records(std::vector<AccessPointInfo> records);

  std::size_t size() const { return records_.size(); }
  const std::vector<AccessPointInfo>& records() const { return records_; }

  /// The `n` free (open) APs nearest to `pos`, deduplicated by SSID, nearest
  /// first. This is the "100 SSIDs near the attacker" source.
  std::vector<std::string> nearest_free_ssids(Position pos,
                                              std::size_t n) const;

  /// AP count per SSID over free APs only — the "city-wide distributed"
  /// signal.
  std::map<std::string, int> free_ap_counts() const;

  /// All positions of free APs advertising `ssid` (heat-value input).
  std::vector<Position> free_ap_positions(const std::string& ssid) const;

  /// Distinct free SSIDs.
  std::vector<std::string> free_ssids() const;

 private:
  std::vector<AccessPointInfo> records_;
};

}  // namespace cityhunter::world
