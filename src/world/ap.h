// Access-point ground truth records.
#pragma once

#include <cstdint>
#include <string>

#include "dot11/mac_address.h"
#include "medium/geometry.h"

namespace cityhunter::world {

using medium::Position;

enum class ApCategory {
  kResidential,  // unique home SSIDs, almost always protected
  kChain,        // '7-Eleven Free Wifi' style city-wide brands
  kHotArea,      // '#HKAirport Free WiFi' style: few APs, hot locations
  kVenueLocal,   // APs of the specific venue being attacked
  kCarrier,      // operator hotspots preloaded in iOS PNLs ('PCCW1x')
  kEnterprise,   // office networks, protected
};

struct AccessPointInfo {
  std::string ssid;
  dot11::MacAddress bssid;
  Position pos;
  bool open = false;  // no RSN: association succeeds without credentials
  std::uint8_t channel = 1;
  ApCategory category = ApCategory::kResidential;
};

}  // namespace cityhunter::world
