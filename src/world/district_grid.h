// Multi-district city layout for the sharded simulator (sim/shard).
//
// The continuous city is a cols × rows grid of square districts separated
// by RF guard gaps. A gap of at least 2 × max radio range guarantees that
// no transmission launched inside one district can reach a radio inside
// (or near) another: districts are RF-isolated islands, which is what lets
// each spatial shard own its districts' radios in a private Medium and
// still produce byte-identical deliveries at any shard count.
//
// Ownership is a partition of the whole plane, not just the district
// squares: each gap between two shard column groups is split at its
// midline, so a walker in the gap always has exactly one owner shard and
// the crossing of that midline is the (deterministic, geometric) handoff
// trigger. See DESIGN.md §5h for the containment argument that bounds how
// far a walker can penetrate past the midline before the next conservative
// barrier hands it off.
#pragma once

#include <cstddef>

#include "medium/geometry.h"
#include "support/rng.h"

namespace cityhunter::world {

class DistrictGrid {
 public:
  struct Config {
    int cols = 8;           // 8 columns divide evenly into 1/2/4/8 shards
    int rows = 2;
    double district_m = 500.0;  // side of each square district
    /// Guard gap between adjacent districts. Must be at least
    /// min_gap_m(max range, max penetration) for the sharded city's
    /// isolation argument to hold; run_sharded_city validates this.
    double gap_m = 136.0;
  };

  /// Column/row address of a district.
  struct Cell {
    int col = 0;
    int row = 0;
    bool operator==(const Cell&) const = default;
  };

  explicit DistrictGrid(Config cfg);

  const Config& config() const { return cfg_; }
  int cols() const { return cfg_.cols; }
  int rows() const { return cfg_.rows; }
  int districts() const { return cfg_.cols * cfg_.rows; }

  /// District pitch: one district plus one gap.
  double pitch() const { return cfg_.district_m + cfg_.gap_m; }
  /// City bounding box (first district origin at (0, 0), no trailing gap).
  double width() const { return cfg_.cols * pitch() - cfg_.gap_m; }
  double height() const { return cfg_.rows * pitch() - cfg_.gap_m; }

  /// District cell by flat index (row-major).
  Cell cell(int district_index) const {
    return {district_index % cfg_.cols, district_index / cfg_.cols};
  }
  /// South-west corner of a district square.
  medium::Position district_origin(Cell c) const {
    return {c.col * pitch(), c.row * pitch()};
  }

  /// True when `p` lies inside some district square; false in any gap (or
  /// outside the city box). Gap positions are where mobile clients stay
  /// radio-silent so no transmission ever straddles an ownership boundary.
  bool in_district(medium::Position p) const;
  bool in_gap(medium::Position p) const { return !in_district(p); }

  /// Owner column of `p`: the plane partition that splits every vertical
  /// gap at its midline. Always a valid column (clamped at the city edges).
  int owner_column(medium::Position p) const;

  /// Owner shard of `p` when the columns are split into `shards` contiguous
  /// groups. Requires cols() % shards == 0 (validated by the caller once).
  int owner_shard(medium::Position p, int shards) const {
    return owner_column(p) / (cfg_.cols / shards);
  }

  /// Uniform point inside district `c`, inset 0.5 m from the edges so a
  /// freshly placed radio is strictly inside the square.
  medium::Position sample_in(Cell c, support::Rng& rng) const;

  /// Smallest RF-safe gap: twice (max radio range + the worst-case distance
  /// a walker can penetrate past the gap midline before its handoff barrier
  /// fires). With gap_m >= this, a radio owned by shard S is always out of
  /// range of every radio owned by any other shard.
  static double min_gap_m(double range_m, double max_penetration_m) {
    return 2.0 * (range_m + max_penetration_m);
  }

 private:
  Config cfg_;
};

}  // namespace cityhunter::world
