#include "world/ap_generator.h"

#include <cstdio>

namespace cityhunter::world {

namespace {

dot11::MacAddress random_bssid(support::Rng& rng) {
  // A plausible vendor OUI per AP.
  static constexpr std::array<std::array<std::uint8_t, 3>, 5> kOuis = {{
      {0x00, 0x1d, 0xaa},  // DrayTek
      {0xf4, 0xf2, 0x6d},  // TP-Link
      {0x88, 0x41, 0xfc},  // Arris
      {0x00, 0x25, 0x9c},  // Cisco-Linksys
      {0x5c, 0x49, 0x79},  // AVM
  }};
  return dot11::MacAddress::from_oui(kOuis[rng.index(kOuis.size())], rng);
}

std::uint8_t random_channel(support::Rng& rng) {
  static constexpr std::uint8_t kCommon[] = {1, 6, 11};
  return kCommon[rng.index(3)];
}

Position place(const CityModel& city, support::Rng& rng, double heat_bias) {
  return rng.chance(heat_bias) ? city.sample_location(rng)
                               : city.sample_uniform(rng);
}

}  // namespace

ApPopulationConfig default_ap_population() {
  ApPopulationConfig cfg;
  cfg.chains = {
      // Ranked by AP count: matches "top 5 SSIDs with maximum APs".
      {"-Free HKBN Wi-Fi-", 1150, true, 0.45},
      {"7-Eleven Free Wifi", 924, true, 0.30},
      {"-Circle K Free Wi-Fi-", 780, true, 0.28},
      {"CSL", 700, true, 0.40},
      {"CMCC-WEB", 640, true, 0.35},
      // Fewer APs but deployed where the crowds are: these two overtake the
      // pure-count ranking once heat is considered (Table IV).
      {"Free Public WiFi", 400, true, 0.97},
      {"FREE 3Y5 AdWiFi", 180, true, 0.95},
      // Mid-tail brands.
      {"Starbucks", 150, true, 0.55},
      {"McDonalds Free WiFi", 220, true, 0.50},
      {"MTR Free Wi-Fi", 95, true, 0.85},
      {"Pacific Coffee", 90, true, 0.50},
      {"Maxims-WiFi", 70, true, 0.45},
  };
  cfg.hot_areas = {
      {"#HKAirport Free WiFi", 231, DistrictKind::kAirport},
      {"RailwayStation-Free", 60, DistrictKind::kTransport},
  };
  cfg.carriers = {
      {"PCCW", "PCCW1x", 620},
      {"Y5", "Y5ZONE", 310},
      {"CMHK", "CMCC-AUTO", 260},
  };
  return cfg;
}

std::vector<AccessPointInfo> generate_aps(const CityModel& city,
                                          support::Rng& rng,
                                          const ApPopulationConfig& cfg) {
  std::vector<AccessPointInfo> aps;
  char name[64];

  // Residential: unique SSIDs, overwhelmingly protected, clustered in
  // residential districts.
  for (int i = 0; i < cfg.residential_ap_count; ++i) {
    AccessPointInfo ap;
    std::snprintf(name, sizeof(name), "HOME-%04X",
                  static_cast<unsigned>(rng.uniform_int(0, 0xFFFF)));
    ap.ssid = name;
    ap.bssid = random_bssid(rng);
    ap.pos = city.sample_location_of_kind(rng, DistrictKind::kResidential);
    ap.open = rng.chance(cfg.residential_open_fraction);
    ap.channel = random_channel(rng);
    ap.category = ApCategory::kResidential;
    aps.push_back(std::move(ap));
  }

  // Enterprise: protected, commercial districts.
  for (int i = 0; i < cfg.enterprise_ap_count; ++i) {
    AccessPointInfo ap;
    std::snprintf(name, sizeof(name), "CORP-%03d-5F", i);
    ap.ssid = name;
    ap.bssid = random_bssid(rng);
    ap.pos = city.sample_location_of_kind(rng, DistrictKind::kCommercial);
    ap.open = false;
    ap.channel = random_channel(rng);
    ap.category = ApCategory::kEnterprise;
    aps.push_back(std::move(ap));
  }

  // Small venues: single-AP open networks forming the long popularity tail.
  for (int i = 0; i < cfg.small_venue_count; ++i) {
    AccessPointInfo ap;
    std::snprintf(name, sizeof(name), "Cafe-%04d", i);
    ap.ssid = name;
    ap.bssid = random_bssid(rng);
    ap.pos = place(city, rng, 0.6);
    ap.open = rng.chance(0.7);
    ap.channel = random_channel(rng);
    ap.category = ApCategory::kVenueLocal;
    aps.push_back(std::move(ap));
  }

  // Chains.
  for (const auto& chain : cfg.chains) {
    for (int i = 0; i < chain.ap_count; ++i) {
      AccessPointInfo ap;
      ap.ssid = chain.ssid;
      ap.bssid = random_bssid(rng);
      ap.pos = place(city, rng, chain.heat_bias);
      ap.open = chain.open;
      ap.channel = random_channel(rng);
      ap.category = ApCategory::kChain;
      aps.push_back(std::move(ap));
    }
  }

  // Hot-area SSIDs.
  for (const auto& hot : cfg.hot_areas) {
    for (int i = 0; i < hot.ap_count; ++i) {
      AccessPointInfo ap;
      ap.ssid = hot.ssid;
      ap.bssid = random_bssid(rng);
      ap.pos = city.sample_location_of_kind(rng, hot.kind);
      ap.open = true;
      ap.channel = random_channel(rng);
      ap.category = ApCategory::kHotArea;
      aps.push_back(std::move(ap));
    }
  }

  // Carrier hotspots: open at the MAC layer (EAP-SIM above it — the attack
  // still completes association, which is what the paper counts).
  for (const auto& carrier : cfg.carriers) {
    for (int i = 0; i < carrier.ap_count; ++i) {
      AccessPointInfo ap;
      ap.ssid = carrier.ssid;
      ap.bssid = random_bssid(rng);
      ap.pos = place(city, rng, 0.6);
      ap.open = true;
      ap.channel = random_channel(rng);
      ap.category = ApCategory::kCarrier;
      aps.push_back(std::move(ap));
    }
  }

  return aps;
}

}  // namespace cityhunter::world
