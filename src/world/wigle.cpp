#include "world/wigle.h"

#include <algorithm>
#include <set>

namespace cityhunter::world {

double WigleCoverage::of(ApCategory cat) const {
  switch (cat) {
    case ApCategory::kResidential: return residential;
    case ApCategory::kEnterprise: return enterprise;
    case ApCategory::kChain: return chain;
    case ApCategory::kHotArea: return hot_area;
    case ApCategory::kVenueLocal: return venue_local;
    case ApCategory::kCarrier: return 0.0;  // not obtainable (§V-B)
  }
  return 0.0;
}

WigleDb WigleDb::snapshot(const std::vector<AccessPointInfo>& ground_truth,
                          support::Rng& rng, double coverage) {
  WigleDb db;
  db.records_.reserve(ground_truth.size());
  for (const auto& ap : ground_truth) {
    // Carrier hotspot SSIDs are not obtainable from WiGLE (paper §V-B);
    // the carrier-seed extension supplies them out of band.
    if (ap.category == ApCategory::kCarrier) continue;
    if (rng.chance(coverage)) db.records_.push_back(ap);
  }
  return db;
}

WigleDb WigleDb::snapshot(const std::vector<AccessPointInfo>& ground_truth,
                          support::Rng& rng, const WigleCoverage& coverage) {
  WigleDb db;
  db.records_.reserve(ground_truth.size());
  for (const auto& ap : ground_truth) {
    if (rng.chance(coverage.of(ap.category))) db.records_.push_back(ap);
  }
  return db;
}

WigleDb WigleDb::from_records(std::vector<AccessPointInfo> records) {
  WigleDb db;
  db.records_ = std::move(records);
  return db;
}

std::vector<std::string> WigleDb::nearest_free_ssids(Position pos,
                                                     std::size_t n) const {
  std::vector<const AccessPointInfo*> free;
  free.reserve(records_.size());
  for (const auto& ap : records_) {
    if (ap.open) free.push_back(&ap);
  }
  std::sort(free.begin(), free.end(),
            [&](const AccessPointInfo* a, const AccessPointInfo* b) {
              const double da = medium::distance(a->pos, pos);
              const double db = medium::distance(b->pos, pos);
              if (da != db) return da < db;
              return a->ssid < b->ssid;  // deterministic tie-break
            });
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto* ap : free) {
    if (out.size() >= n) break;
    if (seen.insert(ap->ssid).second) out.push_back(ap->ssid);
  }
  return out;
}

std::map<std::string, int> WigleDb::free_ap_counts() const {
  std::map<std::string, int> counts;
  for (const auto& ap : records_) {
    if (ap.open) ++counts[ap.ssid];
  }
  return counts;
}

std::vector<Position> WigleDb::free_ap_positions(
    const std::string& ssid) const {
  std::vector<Position> out;
  for (const auto& ap : records_) {
    if (ap.open && ap.ssid == ssid) out.push_back(ap.pos);
  }
  return out;
}

std::vector<std::string> WigleDb::free_ssids() const {
  std::set<std::string> seen;
  for (const auto& ap : records_) {
    if (ap.open) seen.insert(ap.ssid);
  }
  return {seen.begin(), seen.end()};
}

}  // namespace cityhunter::world
