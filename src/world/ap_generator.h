// Generator for the city's access-point population.
//
// Produces the ground truth that (a) the WiGLE snapshot samples, (b) the PNL
// model draws visit histories from, and (c) venue simulations place local
// APs from. Default parameters are shaped after the paper's Hong Kong
// examples: a handful of city-wide chains ('7-Eleven Free Wifi', 924 APs),
// hot-area SSIDs with few APs but many visitors ('#HKAirport Free WiFi',
// 231 APs), carrier hotspots preloaded on iOS ('PCCW1x'), and a long tail of
// residential and small-venue networks.
#pragma once

#include <string>
#include <vector>

#include "support/rng.h"
#include "world/ap.h"
#include "world/city.h"

namespace cityhunter::world {

/// A brand with APs spread over the city.
struct ChainSpec {
  std::string ssid;
  int ap_count = 0;
  bool open = true;
  /// Probability that each AP is placed density-weighted (hot areas) rather
  /// than uniformly: 'Free Public WiFi' style deployments target crowds.
  double heat_bias = 0.3;
};

/// An SSID whose APs all sit in districts of one kind (airport, stations).
struct HotAreaSpec {
  std::string ssid;
  int ap_count = 0;
  DistrictKind kind = DistrictKind::kAirport;
};

/// Operator hotspots; subscribers of `carrier` have `ssid` preloaded in
/// their PNL (Sec V-B of the paper).
struct CarrierSpec {
  std::string carrier;
  std::string ssid;
  int ap_count = 0;
};

struct ApPopulationConfig {
  int residential_ap_count = 4000;
  double residential_open_fraction = 0.04;  // forgotten-open home routers
  int enterprise_ap_count = 600;
  int small_venue_count = 1500;  // one-AP cafes etc: the popularity tail
  std::vector<ChainSpec> chains;
  std::vector<HotAreaSpec> hot_areas;
  std::vector<CarrierSpec> carriers;
};

/// Hong-Kong-flavoured default population (Table IV names).
ApPopulationConfig default_ap_population();

/// Generate the full AP list. Deterministic in `rng`.
std::vector<AccessPointInfo> generate_aps(const CityModel& city,
                                          support::Rng& rng,
                                          const ApPopulationConfig& cfg);

}  // namespace cityhunter::world
