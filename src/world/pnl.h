// Preferred-Network-List generation.
//
// Every hit-rate in the paper reduces to one question: what is in people's
// PNLs? We model a person's PNL as:
//   * one home network (unique SSID, almost always protected),
//   * sometimes a work network (protected),
//   * for "public-Wi-Fi users" (a configurable fraction), 1..k public open
//     SSIDs drawn Zipf-like by *visit propensity* — the ground-truth number
//     of people passing each SSID's AP locations. This is the quantity the
//     attacker's photo heat map (heatmap/) merely *estimates*, so the
//     attack's accuracy depends on how well heat approximates propensity,
//     exactly as in the paper;
//   * venue-local networks for "regulars" of the attacked venue (why the
//     100-nearest-WiGLE seed pays off),
//   * a carrier hotspot SSID preloaded on subscribing iOS devices (Sec V-B).
//
// Social groups (families, friends walking together) share extra mid-tail
// SSIDs — the mechanism behind the paper's freshness observation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"
#include "world/ap.h"
#include "world/city.h"

namespace cityhunter::world {

enum class Os { kAndroid, kIos };

enum class PnlOrigin {
  kHome,
  kWork,
  kPublicVisit,
  kVenueLocal,
  kCarrier,
  kGroupShared,
};

struct PnlEntry {
  std::string ssid;
  bool open = false;
  PnlOrigin origin = PnlOrigin::kPublicVisit;

  bool operator==(const PnlEntry&) const = default;
};

struct Person {
  std::uint64_t id = 0;
  Os os = Os::kAndroid;
  std::string carrier;  // empty = no carrier-Wi-Fi subscription
  /// Legacy devices that still disclose their PNL in direct probe requests.
  bool sends_direct_probes = false;
  /// Person uses public Wi-Fi at all. Non-users carry no open public SSIDs,
  /// don't store venue networks, and rarely adopt group-shared ones.
  bool public_wifi_user = false;
  std::uint64_t group_id = 0;  // 0 = walking alone
  std::vector<PnlEntry> pnl;

  bool has_open_entry() const;
  bool knows(const std::string& ssid) const;
};

struct PnlModelConfig {
  double ios_fraction = 0.45;
  /// Fraction of devices still sending direct probes (the paper observes
  /// 85/614 ... 178/1356, i.e. ~13-15%).
  double direct_probe_fraction = 0.14;
  /// Fraction of people with at least one public open SSID in the PNL.
  double public_wifi_user_fraction = 0.14;
  /// Legacy direct-probing devices belong to the least security-conscious
  /// users: they join public Wi-Fi at this multiple of the base rate. This
  /// is what makes their disclosed PNLs worth harvesting (MANA's premise).
  double direct_prober_user_multiplier = 1.3;
  /// Given a public-Wi-Fi user: number of public SSIDs is
  /// 1 + Poisson(mean_extra_public_ssids).
  double mean_extra_public_ssids = 1.1;
  /// Zipf exponent over the propensity-ranked public SSID list.
  double zipf_exponent = 0.75;
  double work_network_fraction = 0.35;
  /// Stale one-off PNL entries (old hotels, friends' flats, conference
  /// networks): unique SSIDs nobody nearby shares. They are what MANA's
  /// first-40 database dump mostly consists of — junk that dilutes it —
  /// while a weight-ranked attacker simply ranks them at the bottom.
  double mean_stale_entries = 1.2;
  double stale_open_fraction = 0.01;
  /// iOS users subscribing to an operator with preloaded hotspot SSIDs.
  double carrier_subscription_fraction = 0.5;
  /// Direct-probe (legacy) devices are old Androids in this model: they
  /// don't carry carrier Wi-Fi profiles.
  /// Group sharing: number of group-common SSIDs and adoption probability.
  int group_common_ssids = 2;
  double group_adopt_prob = 0.6;
  /// Adoption probability for group members who are not public-Wi-Fi users
  /// (dragged along once, rarely stored the network).
  double group_adopt_prob_nonuser = 0.10;
  /// Group-common SSIDs come from the popularity mid-tail (families share
  /// the cafe they went to, not only the chains everyone knows): uniform
  /// rank in [min,max] of the propensity ranking.
  int group_tail_min_rank = 12;
  int group_tail_max_rank = 600;
  /// Probability a family group also shares the home network.
  double group_share_home_prob = 0.5;
};

/// The local flavour of a venue's crowd: people found at a place have
/// histories biased towards networks *near* that place (the campus Wi-Fi,
/// the cafe across the street). This is the correlation that makes both the
/// nearby-100 WiGLE seed and on-site direct-probe learning pay off.
struct Locale {
  /// Open public SSIDs near the venue, ranked by local visit propensity.
  std::vector<std::string> ranked_ssids;
  /// Probability that each public PNL draw comes from the local ranking
  /// instead of the city-wide one.
  double bias = 0.0;
};

class PnlModel {
 public:
  /// `ground_truth` is the full AP population (not the WiGLE snapshot: people
  /// connect to networks whether or not wardrivers mapped them).
  PnlModel(const CityModel& city,
           const std::vector<AccessPointInfo>& ground_truth,
           PnlModelConfig cfg = PnlModelConfig());

  /// Install the locale of the venue whose crowd is being generated.
  void set_locale(Locale locale) { locale_ = std::move(locale); }

  /// Generate one person walking alone. `venue_ssids` are the SSIDs local to
  /// the attacked venue; `venue_regular_prob` is the chance this person is a
  /// regular who stored one of them.
  Person make_person(support::Rng& rng,
                     const std::vector<std::string>& venue_ssids = {},
                     double venue_regular_prob = 0.0);

  /// Generate a social group of n members with shared entries.
  std::vector<Person> make_group(support::Rng& rng, int n,
                                 const std::vector<std::string>& venue_ssids =
                                     {},
                                 double venue_regular_prob = 0.0);

  /// Public open SSIDs ranked by ground-truth visit propensity (descending).
  const std::vector<std::string>& ranked_public_ssids() const {
    return ranked_public_;
  }

  const PnlModelConfig& config() const { return cfg_; }

 private:
  std::string sample_public_ssid(support::Rng& rng);
  std::string sample_tail_ssid(support::Rng& rng);
  void add_public_entries(support::Rng& rng, Person& p);

  PnlModelConfig cfg_;
  std::vector<std::string> ranked_public_;
  Locale locale_;
  std::uint64_t next_person_id_ = 1;
  std::uint64_t next_group_id_ = 1;
  std::uint64_t next_home_id_ = 1;
  double home_open_fraction_ = 0.04;
};

}  // namespace cityhunter::world
