#include "world/city.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cityhunter::world {

CityModel::CityModel(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.districts.empty()) cfg_.districts = default_districts();
  weights_.reserve(cfg_.districts.size());
  for (const auto& d : cfg_.districts) weights_.push_back(d.people_weight);
}

std::vector<District> CityModel::default_districts() {
  // Coordinates in a 10 km x 10 km city.
  return {
      {"north-estates", {2500, 8200}, 900, 2.2, DistrictKind::kResidential},
      {"east-estates", {7800, 6500}, 800, 2.0, DistrictKind::kResidential},
      {"south-hill", {3500, 1800}, 700, 1.2, DistrictKind::kResidential},
      {"west-terrace", {1200, 4800}, 650, 1.0, DistrictKind::kResidential},
      {"central-core", {5000, 5000}, 600, 3.0, DistrictKind::kCommercial},
      {"harbour-mall", {6200, 4100}, 420, 2.2, DistrictKind::kCommercial},
      {"old-market", {4100, 6200}, 380, 1.4, DistrictKind::kCommercial},
      {"central-station", {5300, 4600}, 260, 1.8, DistrictKind::kTransport},
      {"north-interchange", {3300, 7400}, 240, 1.2, DistrictKind::kTransport},
      {"city-airport", {8800, 1400}, 280, 1.6, DistrictKind::kAirport},
  };
}

double CityModel::density(Position p) const {
  double sum = 0.0;
  for (const auto& d : cfg_.districts) {
    const double r2 = (p.x - d.center.x) * (p.x - d.center.x) +
                      (p.y - d.center.y) * (p.y - d.center.y);
    sum += d.people_weight * std::exp(-r2 / (2.0 * d.sigma_m * d.sigma_m));
  }
  return sum;
}

Position CityModel::sample_from(support::Rng& rng,
                                const std::vector<std::size_t>& idx) const {
  if (idx.empty()) {
    throw std::invalid_argument("CityModel: no matching district");
  }
  std::vector<double> w;
  w.reserve(idx.size());
  for (const auto i : idx) w.push_back(cfg_.districts[i].people_weight);
  const auto& d = cfg_.districts[idx[rng.weighted_index(w)]];
  // Sample the district Gaussian, clamped to the city rectangle.
  Position p;
  p.x = std::clamp(rng.normal(d.center.x, d.sigma_m), 0.0, cfg_.width_m);
  p.y = std::clamp(rng.normal(d.center.y, d.sigma_m), 0.0, cfg_.height_m);
  return p;
}

Position CityModel::sample_location(support::Rng& rng) const {
  std::vector<std::size_t> all(cfg_.districts.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return sample_from(rng, all);
}

Position CityModel::sample_location_of_kind(support::Rng& rng,
                                            DistrictKind kind) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < cfg_.districts.size(); ++i) {
    if (cfg_.districts[i].kind == kind) idx.push_back(i);
  }
  return sample_from(rng, idx);
}

Position CityModel::sample_uniform(support::Rng& rng) const {
  return {rng.uniform(0.0, cfg_.width_m), rng.uniform(0.0, cfg_.height_m)};
}

}  // namespace cityhunter::world
