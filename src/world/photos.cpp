#include "world/photos.h"

namespace cityhunter::world {

PhotoSet PhotoSet::generate(const CityModel& city, support::Rng& rng,
                            const PhotoSetConfig& cfg) {
  PhotoSet set;
  set.positions_.reserve(static_cast<std::size_t>(cfg.photo_count));
  // Tourists photograph landmarks disproportionately: the airport is a
  // photo magnet far beyond its share of daily traffic, which is exactly
  // what lets the heat map surface '#HKAirport Free WiFi' despite its
  // modest AP count (Table IV).
  static constexpr DistrictKind kTouristKinds[] = {
      DistrictKind::kCommercial, DistrictKind::kTransport,
      DistrictKind::kAirport};
  const std::vector<double> kind_weights{0.45, 0.15, 0.40};
  for (int i = 0; i < cfg.photo_count; ++i) {
    if (rng.chance(cfg.tourist_fraction)) {
      const auto kind = kTouristKinds[rng.weighted_index(kind_weights)];
      set.positions_.push_back(city.sample_location_of_kind(rng, kind));
    } else {
      set.positions_.push_back(city.sample_location(rng));
    }
  }
  return set;
}

}  // namespace cityhunter::world
