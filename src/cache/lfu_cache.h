// LFU cache: frequency-based baseline replacement policy.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <optional>
#include <stdexcept>
#include <unordered_map>

namespace cityhunter::cache {

/// Fixed-capacity least-frequently-used cache with LRU tie-breaking inside a
/// frequency class.
template <typename K, typename V>
class LfuCache {
 public:
  explicit LfuCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("LfuCache: capacity 0");
  }

  std::optional<V> get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    touch(key, it->second);
    return it->second.value;
  }

  void put(const K& key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      touch(key, it->second);
      return;
    }
    if (map_.size() >= capacity_) evict_one();
    auto& bucket = freq_[1];
    bucket.push_front(key);
    map_.emplace(key, Entry{std::move(value), 1, bucket.begin()});
  }

  bool contains(const K& key) const { return map_.count(key) != 0; }

  /// Current use count of a key (0 if absent).
  std::size_t frequency(const K& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second.freq;
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    V value;
    std::size_t freq;
    typename std::list<K>::iterator pos;
  };

  void touch(const K& key, Entry& e) {
    auto old_it = freq_.find(e.freq);
    old_it->second.erase(e.pos);
    if (old_it->second.empty()) freq_.erase(old_it);
    ++e.freq;
    auto& new_bucket = freq_[e.freq];
    new_bucket.push_front(key);
    e.pos = new_bucket.begin();
  }

  void evict_one() {
    auto fit = freq_.begin();  // lowest frequency class
    auto& bucket = fit->second;
    const K victim = bucket.back();  // LRU within the class
    bucket.pop_back();
    if (bucket.empty()) freq_.erase(fit);
    map_.erase(victim);
  }

  std::size_t capacity_;
  std::map<std::size_t, std::list<K>> freq_;  // freq -> keys, front = MRU
  std::unordered_map<K, Entry> map_;
};

}  // namespace cityhunter::cache
