// LRU cache: baseline replacement policy.
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <stdexcept>
#include <unordered_map>

namespace cityhunter::cache {

/// Fixed-capacity least-recently-used cache. O(1) get/put.
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("LruCache: capacity 0");
  }

  /// Look up and touch (move to MRU). Returns nullopt on miss.
  std::optional<V> get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Peek without touching recency.
  std::optional<V> peek(const K& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second->second;
  }

  /// Insert or update; evicts the LRU entry when full.
  void put(const K& key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      const auto& lru = order_.back();
      map_.erase(lru.first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  bool contains(const K& key) const { return map_.count(key) != 0; }
  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = MRU
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> map_;
};

}  // namespace cityhunter::cache
