// Adaptive Replacement Cache (ARC), after Megiddo & Modha, FAST '03.
//
// ARC keeps two real lists — T1 (recency: seen once recently) and T2
// (frequency: seen at least twice) — plus two same-sized ghost lists B1 and
// B2 holding only the *keys* of recently evicted entries. A hit in ghost B1
// means "recency is under-provisioned" and grows the recency target p; a hit
// in B2 shrinks it. City-Hunter's Popularity/Freshness buffer adaptation
// (core/buffers.h) is the paper's transplant of exactly this mechanism, so we
// ship the real algorithm both as a substrate and for the ablation benches.
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <stdexcept>
#include <unordered_map>

namespace cityhunter::cache {

template <typename K, typename V>
class ArcCache {
 public:
  explicit ArcCache(std::size_t capacity) : c_(capacity) {
    if (capacity == 0) throw std::invalid_argument("ArcCache: capacity 0");
  }

  /// Look up `key`; adapts internal state on hit.
  std::optional<V> get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end() || it->second.where == List::kB1 ||
        it->second.where == List::kB2) {
      return std::nullopt;
    }
    // Hit in T1 or T2: promote to MRU of T2.
    V value = std::move(it->second.value);
    move_to(key, it->second, List::kT2);
    auto& slot = index_.find(key)->second;
    slot.value = std::move(value);
    return slot.value;
  }

  /// Insert or refresh `key`. Implements the full ARC case analysis.
  void put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      switch (it->second.where) {
        case List::kT1:
        case List::kT2:
          // Case I: cache hit — move to MRU of T2.
          it->second.value = std::move(value);
          move_to(key, it->second, List::kT2);
          return;
        case List::kB1:
          // Case II: ghost hit in B1 — favour recency.
          p_ = std::min(c_, p_ + std::max<std::size_t>(
                                   1, b2_.size() / std::max<std::size_t>(
                                                       1, b1_.size())));
          replace(/*in_b2=*/false);
          move_to(key, it->second, List::kT2);
          index_.find(key)->second.value = std::move(value);
          return;
        case List::kB2:
          // Case III: ghost hit in B2 — favour frequency.
          p_ = p_ > 0 ? p_ - std::min(p_, std::max<std::size_t>(
                                              1, b1_.size() /
                                                     std::max<std::size_t>(
                                                         1, b2_.size())))
                      : 0;
          replace(/*in_b2=*/true);
          move_to(key, it->second, List::kT2);
          index_.find(key)->second.value = std::move(value);
          return;
      }
    }
    // Case IV: brand-new key.
    if (t1_.size() + b1_.size() == c_) {
      if (t1_.size() < c_) {
        // B1 full: drop its LRU ghost, then make room.
        erase_lru(b1_, List::kB1);
        replace(false);
      } else {
        // T1 itself is full: evict T1's LRU entirely (no ghost).
        erase_lru(t1_, List::kT1);
      }
    } else if (t1_.size() + b1_.size() < c_) {
      const std::size_t total =
          t1_.size() + t2_.size() + b1_.size() + b2_.size();
      if (total >= c_) {
        if (total == 2 * c_) erase_lru(b2_, List::kB2);
        replace(false);
      }
    }
    insert_mru(key, List::kT1, std::move(value));
  }

  bool contains(const K& key) const {
    auto it = index_.find(key);
    return it != index_.end() &&
           (it->second.where == List::kT1 || it->second.where == List::kT2);
  }

  /// Whether the key currently lives in a ghost list.
  bool in_ghost(const K& key) const {
    auto it = index_.find(key);
    return it != index_.end() &&
           (it->second.where == List::kB1 || it->second.where == List::kB2);
  }

  std::size_t size() const { return t1_.size() + t2_.size(); }
  std::size_t capacity() const { return c_; }

  /// The adaptive recency target p in [0, c]: how much of the cache ARC
  /// currently wants to devote to recency (T1).
  std::size_t recency_target() const { return p_; }

  std::size_t t1_size() const { return t1_.size(); }
  std::size_t t2_size() const { return t2_.size(); }
  std::size_t b1_size() const { return b1_.size(); }
  std::size_t b2_size() const { return b2_.size(); }

 private:
  enum class List { kT1, kT2, kB1, kB2 };

  struct Slot {
    V value{};
    List where;
    typename std::list<K>::iterator pos;
  };

  std::list<K>& list_of(List w) {
    switch (w) {
      case List::kT1: return t1_;
      case List::kT2: return t2_;
      case List::kB1: return b1_;
      case List::kB2: return b2_;
    }
    throw std::logic_error("unreachable");
  }

  void insert_mru(const K& key, List w, V value) {
    auto& l = list_of(w);
    l.push_front(key);
    index_[key] = Slot{std::move(value), w, l.begin()};
  }

  void move_to(const K& key, Slot& slot, List w) {
    list_of(slot.where).erase(slot.pos);
    auto& l = list_of(w);
    l.push_front(key);
    slot.where = w;
    slot.pos = l.begin();
  }

  void erase_lru(std::list<K>& l, List /*w*/) {
    index_.erase(l.back());
    l.pop_back();
  }

  /// REPLACE from the ARC paper: evict from T1 or T2 into the matching ghost
  /// list, guided by the recency target p.
  void replace(bool ghost_hit_in_b2) {
    if (!t1_.empty() &&
        (t1_.size() > p_ || (ghost_hit_in_b2 && t1_.size() == p_))) {
      // Demote T1's LRU to B1.
      const K victim = t1_.back();
      auto& slot = index_.find(victim)->second;
      slot.value = V{};  // ghost entries hold no value
      move_to(victim, slot, List::kB1);
      // move_to pushed to front; ghosts keep recency order the same way.
    } else if (!t2_.empty()) {
      const K victim = t2_.back();
      auto& slot = index_.find(victim)->second;
      slot.value = V{};
      move_to(victim, slot, List::kB2);
    } else if (!t1_.empty()) {
      const K victim = t1_.back();
      auto& slot = index_.find(victim)->second;
      slot.value = V{};
      move_to(victim, slot, List::kB1);
    }
  }

  std::size_t c_;
  std::size_t p_ = 0;  // adaptive target size for T1
  std::list<K> t1_, t2_, b1_, b2_;  // front = MRU
  std::unordered_map<K, Slot> index_;
};

}  // namespace cityhunter::cache
