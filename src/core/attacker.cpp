#include "core/attacker.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cityhunter::core {

using dot11::Frame;

const char* to_string(SelectionTag t) {
  switch (t) {
    case SelectionTag::kDirectReply: return "direct-reply";
    case SelectionTag::kPlainDump: return "plain-dump";
    case SelectionTag::kUntriedSweep: return "untried-sweep";
    case SelectionTag::kPopularity: return "popularity";
    case SelectionTag::kPopularityGhost: return "popularity-ghost";
    case SelectionTag::kFreshness: return "freshness";
    case SelectionTag::kFreshnessGhost: return "freshness-ghost";
  }
  return "?";
}

Attacker::Attacker(medium::Medium& medium, BaseConfig cfg)
    : medium_(medium), cfg_(cfg) {}

Attacker::~Attacker() { stop(); }

void Attacker::start() {
  if (started_) return;
  started_ = true;
  radio_ = medium_.attach(cfg_.pos, cfg_.channel, cfg_.tx_power_dbm, this);
}

void Attacker::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  medium_.detach(radio_);
}

ClientRecord& Attacker::client(const dot11::MacAddress& mac) {
  auto it = clients_.find(mac);
  if (it == clients_.end()) {
    ClientRecord rec;
    rec.mac = mac;
    rec.first_seen = now();
    it = clients_.emplace(mac, std::move(rec)).first;
  }
  return it->second;
}

void Attacker::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    scan_fill_id_ = metrics_->distribution("attacker.scan_window_fill", 1.0);
  }
}

void Attacker::handle_direct_probe_ssid(const std::string&, SimTime) {}

void Attacker::on_hit(const ClientRecord&, const std::string&, SimTime) {}

void Attacker::respond_to_direct_probe(ClientRecord& c,
                                       const std::string& ssid) {
  // KARMA's core move: mimic whatever the victim asks for, as an open AP.
  dot11::make_probe_response_into(tx_frame_, cfg_.bssid, c.mac, ssid,
                                  cfg_.channel, /*open=*/true, next_seq());
  radio_.transmit(tx_frame_);
  c.offered[ssid] =
      SsidChoice{ssid, SelectionTag::kDirectReply, SsidSource::kDirectProbe};
}

void Attacker::respond_to_broadcast_probe(ClientRecord& c) {
  const auto choices = select_ssids(c, cfg_.response_budget);
  ++scan_windows_;
  responses_sent_ += choices.size();
  if (trace_ != nullptr) {
    trace_->record(now(), obs::Category::kAttacker,
                   obs::Event::kScanWindowFill, choices.size(),
                   static_cast<std::uint64_t>(cfg_.response_budget));
  }
  if (metrics_ != nullptr) {
    metrics_->observe(scan_fill_id_, static_cast<double>(choices.size()));
  }
  for (const auto& choice : choices) {
    dot11::make_probe_response_into(tx_frame_, cfg_.bssid, c.mac, choice.ssid,
                                    cfg_.channel, /*open=*/true, next_seq());
    radio_.transmit(tx_frame_);
    if (c.sent.insert(choice.ssid).second) {
      ++c.ssids_sent;
    }
    c.offered[choice.ssid] = choice;
  }
}

void Attacker::on_frame(const Frame& frame, const medium::RxInfo&) {
  if (stopped_) return;
  switch (frame.subtype()) {
    case dot11::MgmtSubtype::kProbeRequest: {
      const auto* body = frame.as<dot11::ProbeRequest>();
      auto& c = client(frame.header.addr2);
      if (c.connected) return;  // already ours
      if (body->is_broadcast()) {
        ++c.broadcast_probes;
        respond_to_broadcast_probe(c);
      } else {
        c.direct_prober = true;
        const auto ssid = body->ies.ssid();
        if (ssid && !ssid->empty()) {
          handle_direct_probe_ssid(*ssid, now());
          respond_to_direct_probe(c, *ssid);
        }
      }
      return;
    }
    case dot11::MgmtSubtype::kAuthentication: {
      if (!(frame.header.addr1 == cfg_.bssid)) return;
      const auto* body = frame.as<dot11::Authentication>();
      if (body->sequence != 1) return;
      radio_.transmit(dot11::make_auth_response(cfg_.bssid, frame.header.addr2,
                                                dot11::StatusCode::kSuccess,
                                                next_seq()));
      return;
    }
    case dot11::MgmtSubtype::kAssociationRequest: {
      if (!(frame.header.addr1 == cfg_.bssid)) return;
      const auto* body = frame.as<dot11::AssociationRequest>();
      auto& c = client(frame.header.addr2);
      radio_.transmit(dot11::make_assoc_response(
          cfg_.bssid, c.mac, dot11::StatusCode::kSuccess, next_aid_++,
          next_seq()));
      if (!c.connected) {
        c.connected = true;
        c.connect_time = now();
        ++connected_count_;
        const auto ssid = body->ies.ssid().value_or("");
        c.hit_ssid = ssid;
        auto it = c.offered.find(ssid);
        if (it != c.offered.end()) c.hit_choice = it->second;
        on_hit(c, ssid, now());
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace cityhunter::core
