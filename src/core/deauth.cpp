#include "core/deauth.h"

namespace cityhunter::core {

DeauthModule::DeauthModule(medium::Medium& medium, medium::Radio& radio,
                           Config cfg)
    : medium_(medium), radio_(radio), cfg_(std::move(cfg)) {}

DeauthModule::~DeauthModule() { stop(); }

void DeauthModule::start() {
  if (running_) return;
  running_ = true;
  next_ = medium_.events().schedule_in(support::SimTime::zero(),
                                       [this] { round(); });
}

void DeauthModule::stop() {
  running_ = false;
  next_.cancel();
}

void DeauthModule::round() {
  if (!running_) return;
  for (const auto& bssid : cfg_.target_bssids) {
    // Spoof the AP: addr2 (transmitter) and addr3 (BSSID) are the victim
    // AP's address; addr1 broadcast reaches every associated client.
    radio_.transmit(dot11::make_deauth(
        bssid, dot11::MacAddress::broadcast(), bssid,
        dot11::ReasonCode::kDeauthLeaving, seq_ = (seq_ + 1) & 0x0fff));
    ++sent_;
  }
  next_ = medium_.events().schedule_in(cfg_.interval, [this] { round(); });
}

}  // namespace cityhunter::core
