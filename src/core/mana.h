// MANA attacker ("loud" mode; Dominic & de Vries, DEF CON 22).
//
// Collects SSIDs from observed direct probes into its database, and answers
// every broadcast probe by replaying the *whole* database in insertion
// order. The flaw the paper dissects in §III-A is reproduced mechanically:
// the client's scan window only admits the first ~40 responses, so the same
// first-40 SSIDs get tried on everyone and database growth buys nothing
// (Fig 1).
#pragma once

#include "core/attacker.h"

namespace cityhunter::core {

class ManaAttacker : public Attacker {
 public:
  struct Config {
    Attacker::BaseConfig base;
    /// Weight given to learned SSIDs (MANA has no weighting; keep them all
    /// equal so insertion order decides).
    double learned_weight = 1.0;
    /// Safety valve for simulation cost: cap the dump length. Real MANA has
    /// no cap; anything >= 3x the client budget behaves identically since
    /// later responses fall outside every scan window.
    int max_dump = 150;
  };

  ManaAttacker(medium::Medium& medium, Config cfg)
      : Attacker(medium, cfg.base), cfg_(cfg) {}

 protected:
  void handle_direct_probe_ssid(const std::string& ssid,
                                SimTime now) override {
    db_.add(ssid, cfg_.learned_weight, SsidSource::kDirectProbe, now);
  }

  std::vector<SsidChoice> select_ssids(const ClientRecord&,
                                       int /*budget*/) override {
    // Deliberately ignores the budget and any per-client history: dump
    // everything, every time.
    std::vector<SsidChoice> out;
    const auto records = db_.by_insertion();
    const auto n = std::min<std::size_t>(
        records.size(), static_cast<std::size_t>(cfg_.max_dump));
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(SsidChoice{records[i]->ssid, SelectionTag::kPlainDump,
                               records[i]->source});
    }
    return out;
  }

 private:
  Config cfg_;
};

}  // namespace cityhunter::core
