// KARMA attacker (Dai Zovi & Macaulay, 2005).
//
// Answers direct probes by mimicking the requested SSID; offers nothing to
// broadcast probes — which is exactly why its broadcast hit rate is zero on
// modern devices (paper Table I).
#pragma once

#include "core/attacker.h"

namespace cityhunter::core {

class KarmaAttacker : public Attacker {
 public:
  using Attacker::Attacker;

 protected:
  std::vector<SsidChoice> select_ssids(const ClientRecord&, int) override {
    return {};
  }
};

}  // namespace cityhunter::core
