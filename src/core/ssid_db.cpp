#include "core/ssid_db.h"

#include <algorithm>

namespace cityhunter::core {

const char* to_string(SsidSource s) {
  switch (s) {
    case SsidSource::kWigleNearby: return "wigle-nearby";
    case SsidSource::kWiglePopular: return "wigle-popular";
    case SsidSource::kDirectProbe: return "direct-probe";
    case SsidSource::kCarrierSeed: return "carrier-seed";
  }
  return "?";
}

bool SsidDatabase::add(const std::string& ssid, double weight,
                       SsidSource source, SimTime now) {
  auto it = index_.find(ssid);
  if (it != index_.end()) {
    auto& rec = records_[it->second];
    rec.weight = std::max(rec.weight, weight);
    ++version_;
    return false;
  }
  SsidRecord rec;
  rec.ssid = ssid;
  rec.weight = weight;
  rec.source = source;
  rec.added = now;
  rec.insertion_order = next_order_++;
  index_.emplace(ssid, records_.size());
  records_.push_back(std::move(rec));
  ++version_;
  return true;
}

void SsidDatabase::observe_direct(const std::string& ssid,
                                  double initial_weight, double seen_bonus,
                                  SimTime now) {
  auto it = index_.find(ssid);
  if (it == index_.end()) {
    add(ssid, initial_weight, SsidSource::kDirectProbe, now);
    return;
  }
  records_[it->second].weight += seen_bonus;
  ++version_;
}

void SsidDatabase::record_hit(const std::string& ssid, double hit_bonus,
                              SimTime now) {
  auto it = index_.find(ssid);
  if (it == index_.end()) return;
  auto& rec = records_[it->second];
  rec.weight += hit_bonus;
  ++rec.hits;
  rec.last_hit = now;
  ++version_;
}

const SsidRecord* SsidDatabase::find(const std::string& ssid) const {
  auto it = index_.find(ssid);
  return it == index_.end() ? nullptr : &records_[it->second];
}

std::vector<const SsidRecord*> SsidDatabase::by_weight() const {
  std::vector<const SsidRecord*> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(&r);
  std::sort(out.begin(), out.end(),
            [](const SsidRecord* a, const SsidRecord* b) {
              if (a->weight != b->weight) return a->weight > b->weight;
              return a->insertion_order < b->insertion_order;
            });
  return out;
}

std::vector<const SsidRecord*> SsidDatabase::by_freshness() const {
  std::vector<const SsidRecord*> out;
  for (const auto& r : records_) {
    if (r.last_hit) out.push_back(&r);
  }
  std::sort(out.begin(), out.end(),
            [](const SsidRecord* a, const SsidRecord* b) {
              if (*a->last_hit != *b->last_hit) {
                return *a->last_hit > *b->last_hit;
              }
              return a->insertion_order < b->insertion_order;
            });
  return out;
}

std::vector<const SsidRecord*> SsidDatabase::by_insertion() const {
  std::vector<const SsidRecord*> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(&r);
  // records_ is already insertion-ordered.
  return out;
}

void SsidDatabase::restore(std::vector<SsidRecord> records) {
  records_ = std::move(records);
  index_.clear();
  next_order_ = 0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    index_.emplace(records_[i].ssid, i);
    next_order_ = std::max(next_order_, records_[i].insertion_order + 1);
  }
  // Any cached sorted view predates the restore by construction; one bump
  // invalidates it. The exact value never feeds into results.
  ++version_;
}

std::size_t SsidDatabase::count_from(SsidSource source) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.source == source) ++n;
  }
  return n;
}

}  // namespace cityhunter::core
