// The advanced City-Hunter attacker (paper §IV, Fig 3).
//
// Implements the four-step loop: (1) database initialisation from WiGLE
// with heat-map rank weights (wigle_seed.h, done by the scenario driver
// before start()), (2) on-line database updating (weight bumps on hits and
// on direct-probe re-observations, freshness timestamps), (3) SSID selection
// through the adaptive Popularity/Freshness buffers with ghost lists
// (buffers.h), and (4) transmission of the chosen probe responses. Per-client
// untried tracking makes successive scans of a static victim sweep ever
// deeper into the database.
#pragma once

#include <cstdint>
#include <optional>

#include "core/attacker.h"
#include "core/buffers.h"
#include "core/ssid_db.h"
#include "support/rng.h"

namespace cityhunter::core {

class CityHunter : public Attacker {
 public:
  struct Config {
    Attacker::BaseConfig base;
    BufferSelectorConfig buffers;
    /// Weight for SSIDs first learned from a direct probe on site (WiGLE
    /// rank weights span 1..200, so this slots learned SSIDs mid-table).
    double direct_initial_weight = 60.0;
    /// Weight bump when a known SSID shows up in another direct probe.
    double direct_seen_bonus = 15.0;
    /// Weight bump on a successful hit. Deliberately small: popularity is
    /// the *long-term* signal. The short-term burst after a hit is the
    /// freshness buffer's job — a large bonus here would vault fresh SSIDs
    /// into the popularity top ranks and make FB redundant.
    double hit_weight_bonus = 8.0;
    /// Ablation: disable the per-client untried filter.
    bool untried_tracking = true;
  };

  CityHunter(medium::Medium& medium, Config cfg, support::Rng rng);

  BufferSelector& selector() { return selector_; }
  const BufferSelector& selector() const { return selector_; }
  const Config& config() const { return cfg_; }

 protected:
  void handle_direct_probe_ssid(const std::string& ssid,
                                SimTime now) override;
  void on_hit(const ClientRecord& client, const std::string& ssid,
              SimTime now) override;
  std::vector<SsidChoice> select_ssids(const ClientRecord& client,
                                       int budget) override;

 private:
  void refresh_views();

  Config cfg_;
  BufferSelector selector_;

  // Sorted-view cache keyed on the database's mutation counter.
  std::uint64_t views_version_ = ~std::uint64_t{0};
  std::vector<const SsidRecord*> by_weight_;
  std::vector<const SsidRecord*> by_freshness_;
};

}  // namespace cityhunter::core
