// Database initialisation from WiGLE (paper §III-B and §IV-B).
//
// Two seed sets, both free-AP only:
//   * the `nearby_count` SSIDs nearest the attack position ("many phones
//     passing by have connected to the nearby APs");
//   * the `popular_count` city-wide SSIDs ranked either by AP count (the
//     preliminary design) or by photo-heat value (the advanced design that
//     promotes '#HKAirport Free WiFi' into the top ranks, Table IV).
// Each set gets Barron-Barrett rank weights: best = set size ... worst = 1.
#pragma once

#include <string>
#include <vector>

#include "core/ssid_db.h"
#include "heatmap/heatmap.h"
#include "medium/geometry.h"
#include "world/wigle.h"

namespace cityhunter::core {

enum class PopularRanking { kHeat, kApCount };

struct WigleSeedConfig {
  int nearby_count = 100;
  int popular_count = 200;
  PopularRanking ranking = PopularRanking::kHeat;
};

/// Populate `db` from the WiGLE snapshot. `heat` may be null when
/// `ranking == kApCount`.
void seed_from_wigle(SsidDatabase& db, const world::WigleDb& wigle,
                     const heatmap::HeatMap* heat, medium::Position attack_pos,
                     const WigleSeedConfig& cfg, support::SimTime now);

/// Sec V-B extension: add operator hotspot SSIDs with top-rank weight.
void seed_carrier_ssids(SsidDatabase& db,
                        const std::vector<std::string>& carrier_ssids,
                        double weight, support::SimTime now);

}  // namespace cityhunter::core
