#include "core/wigle_seed.h"

#include <stdexcept>

namespace cityhunter::core {

void seed_from_wigle(SsidDatabase& db, const world::WigleDb& wigle,
                     const heatmap::HeatMap* heat, medium::Position attack_pos,
                     const WigleSeedConfig& cfg, support::SimTime now) {
  // City-wide popular set first: its weights span [1, popular_count] and
  // should dominate ties with the nearby set.
  std::vector<heatmap::ScoredSsid> popular;
  switch (cfg.ranking) {
    case PopularRanking::kHeat:
      if (heat == nullptr) {
        throw std::invalid_argument(
            "seed_from_wigle: heat ranking requires a HeatMap");
      }
      popular = heatmap::top_by_heat(wigle, *heat,
                                     static_cast<std::size_t>(cfg.popular_count));
      break;
    case PopularRanking::kApCount:
      popular = heatmap::top_by_ap_count(
          wigle, static_cast<std::size_t>(cfg.popular_count));
      break;
  }
  const auto pop_weights = heatmap::rank_weights(popular.size());
  for (std::size_t i = 0; i < popular.size(); ++i) {
    db.add(popular[i].ssid, pop_weights[i], SsidSource::kWiglePopular, now);
  }

  const auto nearby = wigle.nearest_free_ssids(
      attack_pos, static_cast<std::size_t>(cfg.nearby_count));
  const auto near_weights = heatmap::rank_weights(nearby.size());
  for (std::size_t i = 0; i < nearby.size(); ++i) {
    db.add(nearby[i], near_weights[i], SsidSource::kWigleNearby, now);
  }
}

void seed_carrier_ssids(SsidDatabase& db,
                        const std::vector<std::string>& carrier_ssids,
                        double weight, support::SimTime now) {
  for (const auto& ssid : carrier_ssids) {
    db.add(ssid, weight, SsidSource::kCarrierSeed, now);
  }
}

}  // namespace cityhunter::core
