#include "core/buffers.h"

#include <algorithm>

namespace cityhunter::core {

BufferSelector::BufferSelector(BufferSelectorConfig cfg, support::Rng rng)
    : cfg_(cfg), rng_(std::move(rng)), pb_size_(cfg.initial_pb_size) {
  pb_size_ = std::clamp(pb_size_, cfg_.min_buffer_size,
                        cfg_.budget - cfg_.min_buffer_size);
}

std::vector<const SsidRecord*> BufferSelector::collect(
    const std::vector<const SsidRecord*>& ranked, std::size_t want,
    const std::unordered_set<std::string>* already_sent,
    const std::unordered_set<const SsidRecord*>& used) {
  std::vector<const SsidRecord*> out;
  out.reserve(want);
  for (const auto* rec : ranked) {
    if (out.size() >= want) break;
    if (used.count(rec) != 0) continue;
    if (already_sent != nullptr && already_sent->count(rec->ssid) != 0) {
      continue;
    }
    out.push_back(rec);
  }
  return out;
}

void BufferSelector::emit_buffer(
    const std::vector<const SsidRecord*>& candidates, std::size_t main_size,
    SelectionTag main_tag, SelectionTag ghost_tag,
    std::vector<SsidChoice>& out) {
  std::vector<const SsidRecord*> main(
      candidates.begin(),
      candidates.begin() + static_cast<long>(
                               std::min(main_size, candidates.size())));
  std::vector<const SsidRecord*> ghosts(
      candidates.begin() + static_cast<long>(main.size()), candidates.end());

  std::size_t picks = 0;
  if (cfg_.use_ghosts) {
    picks = std::min({static_cast<std::size_t>(cfg_.ghost_picks),
                      ghosts.size(), main.size()});
  }
  // Replace the lowest-ranked `picks` of the buffer with random ghosts.
  main.resize(main.size() - picks);
  for (const auto* rec : main) {
    out.push_back(SsidChoice{rec->ssid, main_tag, rec->source});
  }
  if (picks > 0) {
    const auto idx = rng_.sample_indices(ghosts.size(), picks);
    for (const auto i : idx) {
      out.push_back(SsidChoice{ghosts[i]->ssid, ghost_tag, ghosts[i]->source});
    }
  }
}

std::vector<SsidChoice> BufferSelector::select(
    const std::vector<const SsidRecord*>& by_weight,
    const std::vector<const SsidRecord*>& by_freshness,
    const std::unordered_set<std::string>* already_sent) {
  const auto budget = static_cast<std::size_t>(cfg_.budget);
  std::vector<SsidChoice> out;
  out.reserve(budget);
  std::unordered_set<const SsidRecord*> used;

  // Popularity buffer first: an SSID that is both popular and fresh belongs
  // to (and is attributed to) PB; FB captures the fresh-but-not-popular
  // tail — the companion effect the paper's freshness mechanism targets.
  const auto pb_target = cfg_.use_freshness
                             ? static_cast<std::size_t>(pb_size())
                             : budget;
  const auto p_cands = collect(
      by_weight, pb_target + static_cast<std::size_t>(cfg_.ghost_size),
      already_sent, used);
  emit_buffer(p_cands, std::min(pb_target, p_cands.size()),
              SelectionTag::kPopularity, SelectionTag::kPopularityGhost, out);
  for (const auto* rec : p_cands) used.insert(rec);

  // Freshness buffer fills the remaining budget (all of it when the
  // popularity side ran out of untried SSIDs).
  if (cfg_.use_freshness && out.size() < budget) {
    const std::size_t fresh_want = budget - out.size();
    const auto f_cands = collect(
        by_freshness, fresh_want + static_cast<std::size_t>(cfg_.ghost_size),
        already_sent, used);
    emit_buffer(f_cands, std::min(fresh_want, f_cands.size()),
                SelectionTag::kFreshness, SelectionTag::kFreshnessGhost, out);
    for (const auto* rec : f_cands) used.insert(rec);
  }

  // Early in a deployment few SSIDs have hit yet: backfill any freshness
  // deficit with more popularity candidates rather than waste budget.
  if (out.size() < budget) {
    std::unordered_set<std::string> chosen;
    for (const auto& c : out) chosen.insert(c.ssid);
    for (const auto* rec : by_weight) {
      if (out.size() >= budget) break;
      if (chosen.count(rec->ssid) != 0) continue;
      if (already_sent != nullptr && already_sent->count(rec->ssid) != 0) {
        continue;
      }
      out.push_back(
          SsidChoice{rec->ssid, SelectionTag::kPopularity, rec->source});
    }
  }
  return out;
}

void BufferSelector::notify_hit(SelectionTag tag) {
  if (!cfg_.adaptive) return;
  const int lo = cfg_.min_buffer_size;
  const int hi = cfg_.budget - cfg_.min_buffer_size;
  if (tag == SelectionTag::kPopularityGhost) {
    if (pb_size_ < hi) {
      ++pb_size_;
      ++pb_grows_;
    }
  } else if (tag == SelectionTag::kFreshnessGhost) {
    if (pb_size_ > lo) {
      --pb_size_;
      ++pb_shrinks_;
    }
  }
}

}  // namespace cityhunter::core
