// Preliminary City-Hunter (paper §III).
//
// MANA plus the two fixes of the preliminary design:
//   1. per-client untried tracking — respond with up to 40 database SSIDs
//      *not yet sent to this client*, so static victims see the whole
//      database over successive scans instead of the same first 40;
//   2. WiGLE seeding — 100 nearby + 200 popular free SSIDs.
// Selection is deliberately unordered (database insertion order): ranking by
// probability of success is the advanced design's contribution, and its
// absence is why this version collapses in the subway passage (Table III).
#pragma once

#include <algorithm>
#include <functional>

#include "core/attacker.h"

namespace cityhunter::core {

class CityHunterPrelim : public Attacker {
 public:
  struct Config {
    Attacker::BaseConfig base;
    double learned_weight = 30.0;
  };

  CityHunterPrelim(medium::Medium& medium, Config cfg)
      : Attacker(medium, cfg.base), cfg_(cfg) {}

 protected:
  void handle_direct_probe_ssid(const std::string& ssid,
                                SimTime now) override {
    db_.add(ssid, cfg_.learned_weight, SsidSource::kDirectProbe, now);
  }

  void on_hit(const ClientRecord&, const std::string& ssid,
              SimTime now) override {
    db_.record_hit(ssid, 0.0, now);
  }

  std::vector<SsidChoice> select_ssids(const ClientRecord& client,
                                       int budget) override {
    refresh_order();
    std::vector<SsidChoice> out;
    out.reserve(static_cast<std::size_t>(budget));
    for (const auto* rec : ordered_) {
      if (out.size() >= static_cast<std::size_t>(budget)) break;
      if (client.sent.count(rec->ssid) != 0) continue;
      out.push_back(
          SsidChoice{rec->ssid, SelectionTag::kUntriedSweep, rec->source});
    }
    return out;
  }

 private:
  /// The preliminary design has no notion of ranking: its database is an
  /// unordered set and responses come out in whatever order the container
  /// yields (§III). We model that with a deterministic hash order, which is
  /// as good as random with respect to SSID popularity.
  void refresh_order() {
    if (order_version_ == db_.version()) return;
    ordered_ = db_.by_insertion();
    std::sort(ordered_.begin(), ordered_.end(),
              [](const SsidRecord* a, const SsidRecord* b) {
                const auto ha = std::hash<std::string>{}(a->ssid);
                const auto hb = std::hash<std::string>{}(b->ssid);
                if (ha != hb) return ha < hb;
                return a->insertion_order < b->insertion_order;
              });
    order_version_ = db_.version();
  }

  Config cfg_;
  std::uint64_t order_version_ = ~std::uint64_t{0};
  std::vector<const SsidRecord*> ordered_;
};

}  // namespace cityhunter::core
