// The attacker's SSID database (paper Fig 3, steps 1-2).
//
// Each record carries: the SSID, its weight (initialised from WiGLE rank
// weights, bumped by hits and by re-observations in direct probes), its
// provenance, and its hit history (count + time of latest hit = freshness).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/sim_time.h"

namespace cityhunter::core {

using support::SimTime;

enum class SsidSource {
  kWigleNearby,   // among the 100 free APs nearest the attack location
  kWiglePopular,  // among the 200 highest heat-value (or AP-count) SSIDs
  kDirectProbe,   // learned on site from a disclosed PNL
  kCarrierSeed,   // operator hotspot SSIDs added out of band (§V-B)
};

const char* to_string(SsidSource s);

struct SsidRecord {
  std::string ssid;
  double weight = 1.0;
  SsidSource source = SsidSource::kDirectProbe;
  int hits = 0;
  std::optional<SimTime> last_hit;
  SimTime added;
  std::uint64_t insertion_order = 0;
};

class SsidDatabase {
 public:
  /// Insert a new SSID or, when present, raise the existing weight to at
  /// least `weight` (a WiGLE re-seed never downgrades a learned SSID).
  /// Returns true when the SSID was new.
  bool add(const std::string& ssid, double weight, SsidSource source,
           SimTime now);

  /// Re-observation bonus: the SSID appeared in a direct probe on site.
  /// Adds the SSID when unknown (initial weight `initial_weight`), else
  /// bumps its weight by `seen_bonus`.
  void observe_direct(const std::string& ssid, double initial_weight,
                      double seen_bonus, SimTime now);

  /// A successful hit through this SSID: weight += `hit_bonus`, hit count
  /// and freshness updated. Unknown SSIDs are ignored.
  void record_hit(const std::string& ssid, double hit_bonus, SimTime now);

  bool contains(const std::string& ssid) const {
    return index_.count(ssid) != 0;
  }
  const SsidRecord* find(const std::string& ssid) const;
  std::size_t size() const { return records_.size(); }

  /// All records ordered by descending weight (stable: insertion order
  /// breaks ties). O(n log n); attacker code caches between mutations.
  std::vector<const SsidRecord*> by_weight() const;

  /// Records with at least one hit, most recent hit first.
  std::vector<const SsidRecord*> by_freshness() const;

  /// Records in insertion order (what plain MANA replays).
  std::vector<const SsidRecord*> by_insertion() const;

  std::size_t count_from(SsidSource source) const;

  /// Monotonic mutation counter — lets callers cache sorted views.
  std::uint64_t version() const { return version_; }

  /// Insertion-ordered backing records — the database's full state, used by
  /// the campaign checkpoint (sim/checkpoint) to serialize it verbatim.
  const std::vector<SsidRecord>& records() const { return records_; }

  /// Rebuild the database from checkpointed records (must be in insertion
  /// order). The index and insertion counter are reconstructed so that
  /// subsequent add()/record_hit() behaviour is bit-identical to the
  /// database the records were captured from.
  void restore(std::vector<SsidRecord> records);

 private:
  std::vector<SsidRecord> records_;
  std::unordered_map<std::string, std::size_t> index_;
  std::uint64_t next_order_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace cityhunter::core
