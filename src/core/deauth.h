// De-authentication module (paper §V-B).
//
// Clients associated to a legitimate AP barely probe; forging deauth frames
// in the AP's name forces them back into a scan cycle the attacker can
// answer. One broadcast deauth per target BSSID per round, repeated on a
// configurable interval — the frame is unauthenticated in pre-802.11w
// networks, which is exactly the vulnerability Bellardo & Savage described.
#pragma once

#include <vector>

#include "dot11/frame.h"
#include "medium/event_queue.h"
#include "medium/medium.h"

namespace cityhunter::core {

class DeauthModule {
 public:
  struct Config {
    std::vector<dot11::MacAddress> target_bssids;
    support::SimTime interval = support::SimTime::seconds(20);
  };

  /// `radio` must outlive the module (it is the attacker's radio).
  DeauthModule(medium::Medium& medium, medium::Radio& radio, Config cfg);
  ~DeauthModule();

  DeauthModule(const DeauthModule&) = delete;
  DeauthModule& operator=(const DeauthModule&) = delete;

  void start();
  void stop();

  std::uint64_t deauths_sent() const { return sent_; }

 private:
  void round();

  medium::Medium& medium_;
  medium::Radio& radio_;
  Config cfg_;
  bool running_ = false;
  medium::EventHandle next_;
  std::uint64_t sent_ = 0;
  std::uint16_t seq_ = 0;
};

}  // namespace cityhunter::core
