// Attacker framework shared by KARMA, MANA and City-Hunter.
//
// The base class owns the rogue-AP radio and the evil-twin handshake: it
// mimics whatever SSID a victim asks for (direct probes), serves open-system
// authentication and association, and keeps a per-client record — category
// (direct/broadcast prober), every SSID already sent to it (the untried-list
// machinery of §III-A), and how a hit was eventually achieved (for the Fig 6
// source breakdown). Subclasses implement one hook: which SSIDs to offer a
// broadcast probe.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/ssid_db.h"
#include "dot11/frame.h"
#include "medium/medium.h"

namespace cityhunter::obs {
class MetricsRegistry;
}

namespace cityhunter::core {

using support::SimTime;

/// Which selection path put an SSID into a response train.
enum class SelectionTag {
  kDirectReply,      // mimicked a direct probe (KARMA path)
  kPlainDump,        // MANA: database replayed in insertion order
  kUntriedSweep,     // preliminary City-Hunter: first-N untried
  kPopularity,       // advanced: Popularity Buffer
  kPopularityGhost,  // advanced: PB ghost list sample
  kFreshness,        // advanced: Freshness Buffer
  kFreshnessGhost,   // advanced: FB ghost list sample
};

const char* to_string(SelectionTag t);

/// One SSID chosen for a response train, with attribution.
struct SsidChoice {
  std::string ssid;
  SelectionTag tag = SelectionTag::kUntriedSweep;
  SsidSource source = SsidSource::kDirectProbe;
};

/// Everything the attacker knows about one client MAC.
struct ClientRecord {
  dot11::MacAddress mac;
  bool direct_prober = false;  // sent at least one direct probe
  bool connected = false;
  SimTime first_seen;
  SimTime connect_time;
  int broadcast_probes = 0;

  /// Distinct SSIDs offered to this client in broadcast responses.
  int ssids_sent = 0;
  std::unordered_set<std::string> sent;
  /// Attribution of the latest offer of each SSID.
  std::unordered_map<std::string, SsidChoice> offered;

  /// Filled in on association.
  std::string hit_ssid;
  std::optional<SsidChoice> hit_choice;
};

class Attacker : public medium::FrameSink {
 public:
  struct BaseConfig {
    dot11::MacAddress bssid;
    medium::Position pos;
    std::uint8_t channel = 6;
    double tx_power_dbm = 20.0;  // 100 mW, the paper's Raspberry Pi setting
    /// Probe responses per broadcast probe (the paper's 40).
    int response_budget = 40;
  };

  Attacker(medium::Medium& medium, BaseConfig cfg);
  ~Attacker() override;

  Attacker(const Attacker&) = delete;
  Attacker& operator=(const Attacker&) = delete;

  void start();
  void stop();

  const dot11::MacAddress& bssid() const { return cfg_.bssid; }
  medium::Radio& radio() { return radio_; }
  SsidDatabase& database() { return db_; }
  const SsidDatabase& database() const { return db_; }

  const std::map<dot11::MacAddress, ClientRecord>& clients() const {
    return clients_;
  }

  std::size_t clients_seen() const { return clients_.size(); }
  std::size_t clients_connected() const { return connected_count_; }

  /// Broadcast probes answered (one scan-window fill each) and probe
  /// responses transmitted into those windows. Maintained unconditionally.
  std::uint64_t scan_windows() const { return scan_windows_; }
  std::uint64_t responses_sent() const { return responses_sent_; }

  /// Attach (or detach with nullptr) a structured trace sink.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }
  /// Attach a metrics registry; registers the attacker's distribution
  /// points (scan-window fill). Observed per broadcast window — cold.
  void set_metrics(obs::MetricsRegistry* metrics);

  // medium::FrameSink
  void on_frame(const dot11::Frame& frame, const medium::RxInfo& info) override;

 protected:
  /// Strategy hook: choose up to `budget` SSIDs for a broadcast probe from
  /// `client`. Entries already offered to the client are the subclass's
  /// business (MANA deliberately repeats itself; City-Hunter filters).
  virtual std::vector<SsidChoice> select_ssids(const ClientRecord& client,
                                               int budget) = 0;

  /// Notification hooks.
  virtual void handle_direct_probe_ssid(const std::string& ssid, SimTime now);
  virtual void on_hit(const ClientRecord& client, const std::string& ssid,
                      SimTime now);

  medium::Medium& medium_;
  SsidDatabase db_;
  obs::TraceBuffer* trace_ = nullptr;        // null = tracing off
  obs::MetricsRegistry* metrics_ = nullptr;  // null = metrics off
  std::size_t scan_fill_id_ = 0;             // valid iff metrics_ != null

  SimTime now() const { return medium_.events().now(); }
  std::uint16_t next_seq() { return seq_ = (seq_ + 1) & 0x0fff; }

 private:
  ClientRecord& client(const dot11::MacAddress& mac);
  void respond_to_direct_probe(ClientRecord& c, const std::string& ssid);
  void respond_to_broadcast_probe(ClientRecord& c);

  BaseConfig cfg_;
  medium::Radio radio_;
  /// Reused transmit scratch: the 40-response train rebuilds this frame in
  /// place instead of reallocating IE storage per response.
  dot11::Frame tx_frame_;
  bool started_ = false;
  bool stopped_ = false;
  std::map<dot11::MacAddress, ClientRecord> clients_;
  std::size_t connected_count_ = 0;
  std::uint64_t scan_windows_ = 0;
  std::uint64_t responses_sent_ = 0;
  std::uint16_t seq_ = 0;
  std::uint16_t next_aid_ = 1;
};

}  // namespace cityhunter::core
