#include "core/cityhunter.h"

#include "obs/trace.h"

namespace cityhunter::core {

CityHunter::CityHunter(medium::Medium& medium, Config cfg, support::Rng rng)
    : Attacker(medium, cfg.base),
      cfg_(cfg),
      selector_([&] {
        auto b = cfg.buffers;
        b.budget = cfg.base.response_budget;
        return b;
      }(), std::move(rng)) {}

void CityHunter::handle_direct_probe_ssid(const std::string& ssid,
                                          SimTime now) {
  db_.observe_direct(ssid, cfg_.direct_initial_weight, cfg_.direct_seen_bonus,
                     now);
}

void CityHunter::on_hit(const ClientRecord& client, const std::string& ssid,
                        SimTime now) {
  db_.record_hit(ssid, cfg_.hit_weight_bonus, now);
  if (!client.hit_choice) return;
  const SelectionTag tag = client.hit_choice->tag;
  const int old_pb = selector_.pb_size();
  selector_.notify_hit(tag);
  if (trace_ != nullptr) {
    if (tag == SelectionTag::kPopularityGhost ||
        tag == SelectionTag::kFreshnessGhost) {
      trace_->record(now, obs::Category::kAttacker,
                     obs::Event::kGhostPromotion,
                     tag == SelectionTag::kPopularityGhost ? 1 : 2);
    }
    if (selector_.pb_size() != old_pb) {
      trace_->record(now, obs::Category::kAttacker, obs::Event::kPbResize,
                     static_cast<std::uint64_t>(selector_.pb_size()),
                     static_cast<std::uint64_t>(selector_.fb_size()));
    }
  }
}

void CityHunter::refresh_views() {
  if (views_version_ == db_.version()) return;
  by_weight_ = db_.by_weight();
  by_freshness_ = db_.by_freshness();
  views_version_ = db_.version();
}

std::vector<SsidChoice> CityHunter::select_ssids(const ClientRecord& client,
                                                 int /*budget*/) {
  refresh_views();
  const std::unordered_set<std::string>* sent_filter =
      cfg_.untried_tracking ? &client.sent : nullptr;
  return selector_.select(by_weight_, by_freshness_, sent_filter);
}

}  // namespace cityhunter::core
