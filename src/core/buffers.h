// Popularity/Freshness buffer selection with ghost lists (paper §IV-C).
//
// Under the 40-response budget, City-Hunter fills a Popularity Buffer (PB)
// with the highest-weight untried SSIDs and a Freshness Buffer (FB) with the
// most recently *hitting* untried SSIDs. Each buffer has a ghost list — the
// next `ghost_size` candidates just below the buffer's cut-off. On every
// selection, `ghost_picks` random ghosts from each list replace the lowest
// entries of their buffer, giving the attacker a signal: a hit through a
// PB-ghost SSID means PB is too small (grow it, shrink FB), a hit through an
// FB-ghost means the opposite. This is the ARC adaptation rule (cache/)
// transplanted from cache lines to SSIDs.
#pragma once

#include <unordered_set>
#include <vector>

#include "core/attacker.h"
#include "core/ssid_db.h"
#include "support/rng.h"

namespace cityhunter::core {

struct BufferSelectorConfig {
  int budget = 40;
  int initial_pb_size = 32;  // FB starts at budget - initial_pb_size
  int ghost_size = 20;
  int ghost_picks = 2;  // the paper's "2 SSIDs (10%) from each ghost list"
  int min_buffer_size = 2;
  // Ablation switches.
  bool use_freshness = true;
  bool use_ghosts = true;
  bool adaptive = true;
};

class BufferSelector {
 public:
  BufferSelector(BufferSelectorConfig cfg, support::Rng rng);

  /// Choose up to cfg.budget SSIDs. `by_weight` / `by_freshness` are the
  /// database's sorted views; `already_sent` may be null (no untried
  /// tracking).
  std::vector<SsidChoice> select(
      const std::vector<const SsidRecord*>& by_weight,
      const std::vector<const SsidRecord*>& by_freshness,
      const std::unordered_set<std::string>* already_sent);

  /// Feed back the selection tag of a successful hit; adjusts the PB/FB
  /// split when the tag is a ghost tag and adaptation is enabled.
  void notify_hit(SelectionTag tag);

  int pb_size() const { return pb_size_; }
  int fb_size() const { return cfg_.budget - pb_size_; }
  const BufferSelectorConfig& config() const { return cfg_; }

  /// Lifetime adaptation counters: ghost-attributed hits that actually moved
  /// the PB/FB split (a hit at a clamp boundary moves nothing).
  std::uint64_t pb_grows() const { return pb_grows_; }
  std::uint64_t pb_shrinks() const { return pb_shrinks_; }

 private:
  /// Collect up to `want` untried records from `ranked` starting at the
  /// cursor position, skipping entries already in `used`.
  static std::vector<const SsidRecord*> collect(
      const std::vector<const SsidRecord*>& ranked, std::size_t want,
      const std::unordered_set<std::string>* already_sent,
      const std::unordered_set<const SsidRecord*>& used);

  void emit_buffer(const std::vector<const SsidRecord*>& candidates,
                   std::size_t main_size, SelectionTag main_tag,
                   SelectionTag ghost_tag, std::vector<SsidChoice>& out);

  BufferSelectorConfig cfg_;
  support::Rng rng_;
  int pb_size_;
  std::uint64_t pb_grows_ = 0;
  std::uint64_t pb_shrinks_ = 0;
};

}  // namespace cityhunter::core
