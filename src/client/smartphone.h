// Smartphone model: the scan / join behaviour the attacker preys on.
//
// Faithful to the observable behaviour the paper relies on:
//   * modern devices send *broadcast* probe requests (no SSID disclosed);
//     legacy devices additionally send one direct probe per PNL entry;
//   * after probing, the device listens kMinChannelTime for a first
//     response and up to kMaxChannelTime more afterwards, and can take in
//     at most ~kProbeResponseBudget responses per scan (§III-A);
//   * it joins a responding network only when the SSID is in its PNL, the
//     stored network is open, and the response also advertises open —
//     join is open-system auth + association, both over real frames;
//   * once associated it stops scanning (§V-B), and resumes scanning if
//     deauthenticated — the lever the deauth extension pulls.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dot11/frame.h"
#include "dot11/timing.h"
#include "medium/event_queue.h"
#include "medium/medium.h"
#include "support/rng.h"
#include "world/pnl.h"

namespace cityhunter::client {

using medium::Position;
using support::SimTime;

struct SmartphoneConfig {
  /// Mean interval between scan cycles while unassociated. Calibrated to the
  /// paper's Fig 2: ~70% of subway-passage clients received exactly one
  /// 40-SSID response train (one scan while in range, ~2 min crossing) and
  /// canteen clients averaged ~130 tried SSIDs over a ~25-minute meal.
  /// 2017-era phones with the screen off scan on this order.
  SimTime mean_scan_interval = SimTime::seconds(120);
  /// Jitter factor: actual interval is uniform in mean * [1-j, 1+j].
  double scan_jitter = 0.4;
  /// First scan happens within this delay after start() (phones scan almost
  /// immediately when their surroundings change).
  SimTime first_scan_delay_max = SimTime::seconds(8);
  /// Probe responses accepted per scan (the 40-SSID budget).
  int probe_response_budget = dot11::kProbeResponseBudget;
  /// Handshake timeout before the device gives up on an AP.
  SimTime join_timeout = SimTime::milliseconds(100);
  /// Use a fresh locally administered random MAC for every scan cycle (the
  /// hardening that arrived after the paper: it breaks the attacker's
  /// per-client untried tracking and inflates its client counts).
  bool randomize_mac_per_scan = false;
  double tx_power_dbm = 15.0;
  std::uint8_t channel = 6;
};

class Smartphone : public medium::FrameSink {
 public:
  /// The device is created detached; call start() to attach its radio and
  /// begin scan cycles. If `associated_ap` is set, the device starts already
  /// associated to that (legitimate) BSSID and will not scan until
  /// deauthenticated.
  Smartphone(world::Person person, medium::Medium& medium, Position pos,
             SmartphoneConfig cfg, support::Rng rng,
             std::optional<dot11::MacAddress> associated_ap = std::nullopt);
  ~Smartphone() override;

  Smartphone(const Smartphone&) = delete;
  Smartphone& operator=(const Smartphone&) = delete;

  void start();
  /// Detach from the medium (device left the area or sim ended).
  void stop();

  void set_position(Position p);
  Position position() const;

  const world::Person& person() const { return person_; }
  const dot11::MacAddress& mac() const { return mac_; }

  bool connected_to_attacker() const { return connected_; }
  /// SSID through which the device was lured, if any.
  const std::optional<std::string>& lured_ssid() const { return lured_ssid_; }
  bool started() const { return started_; }
  int scans_completed() const { return scans_completed_; }
  bool ever_probed() const { return scans_started_ > 0; }

  /// Invoked once when the device completes association with the attacker.
  std::function<void(Smartphone&)> on_connected;

  // medium::FrameSink
  void on_frame(const dot11::Frame& frame, const medium::RxInfo& info) override;

  /// Deterministic per-person MAC (stable across scans: 2017-era devices;
  /// per-scan randomisation is a documented extension).
  static dot11::MacAddress mac_for_person(const world::Person& p);

 private:
  struct Candidate {
    std::string ssid;
    dot11::MacAddress bssid;
    double rssi_dbm;
    bool open;
  };

  void schedule_next_scan(SimTime delay);
  void begin_scan();
  void end_scan();
  void try_join(const Candidate& c);
  void handshake_failed();

  std::uint16_t next_seq() { return seq_ = (seq_ + 1) & 0x0fff; }

  world::Person person_;
  medium::Medium& medium_;
  SmartphoneConfig cfg_;
  support::Rng rng_;
  dot11::MacAddress mac_;
  medium::Radio radio_;
  dot11::Frame tx_frame_;  // reused probe-request scratch
  Position pos_;

  bool started_ = false;
  bool stopped_ = false;
  bool scanning_ = false;
  bool connected_ = false;
  std::optional<std::string> lured_ssid_;
  std::optional<dot11::MacAddress> associated_ap_;  // legit AP, if any

  enum class JoinPhase { kIdle, kAuth, kAssoc };
  JoinPhase join_phase_ = JoinPhase::kIdle;
  dot11::MacAddress join_bssid_;
  std::string join_ssid_;
  medium::EventHandle join_timeout_handle_;

  int responses_this_scan_ = 0;
  std::vector<Candidate> candidates_;
  medium::EventHandle scan_end_handle_;
  medium::EventHandle next_scan_handle_;
  int scans_started_ = 0;
  int scans_completed_ = 0;
  std::uint16_t seq_ = 0;
};

}  // namespace cityhunter::client
