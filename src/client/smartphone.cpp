#include "client/smartphone.h"

#include <algorithm>

namespace cityhunter::client {

using dot11::Frame;
using dot11::MacAddress;

dot11::MacAddress Smartphone::mac_for_person(const world::Person& p) {
  // Locally administered unicast address embedding the person id: stable,
  // unique, and recognisable in logs.
  std::array<std::uint8_t, 6> o{};
  o[0] = 0x02;  // locally administered, unicast
  o[1] = 0xc1;
  std::uint64_t v = p.id;
  for (int i = 5; i >= 2; --i) {
    o[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return MacAddress(o);
}

Smartphone::Smartphone(world::Person person, medium::Medium& medium,
                       Position pos, SmartphoneConfig cfg, support::Rng rng,
                       std::optional<dot11::MacAddress> associated_ap)
    : person_(std::move(person)),
      medium_(medium),
      cfg_(cfg),
      rng_(std::move(rng)),
      mac_(mac_for_person(person_)),
      pos_(pos),
      associated_ap_(associated_ap) {}

Smartphone::~Smartphone() { stop(); }

void Smartphone::start() {
  if (started_) return;
  started_ = true;
  radio_ = medium_.attach(pos_, cfg_.channel, cfg_.tx_power_dbm, this);
  if (!associated_ap_) {
    schedule_next_scan(
        SimTime::microseconds(static_cast<std::int64_t>(rng_.uniform(
            0.0, static_cast<double>(cfg_.first_scan_delay_max.us())))));
  }
}

void Smartphone::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  scan_end_handle_.cancel();
  next_scan_handle_.cancel();
  join_timeout_handle_.cancel();
  medium_.detach(radio_);
}

void Smartphone::set_position(Position p) {
  pos_ = p;
  if (started_ && !stopped_) radio_.set_position(p);
}

Position Smartphone::position() const { return pos_; }

void Smartphone::schedule_next_scan(SimTime delay) {
  next_scan_handle_ = medium_.events().schedule_in(
      delay, [this] { begin_scan(); });
}

void Smartphone::begin_scan() {
  if (stopped_ || connected_ || associated_ap_ ||
      join_phase_ != JoinPhase::kIdle) {
    return;
  }
  scanning_ = true;
  ++scans_started_;
  responses_this_scan_ = 0;
  candidates_.clear();
  if (cfg_.randomize_mac_per_scan) {
    // New scan, new identity: the join handshake continues under the scan's
    // MAC (as real randomising devices do pre-association).
    mac_ = dot11::MacAddress::random_local(rng_);
  }

  // Legacy devices disclose their PNL via one direct probe per entry; all
  // devices end the cycle with a broadcast probe.
  if (person_.sends_direct_probes) {
    for (const auto& e : person_.pnl) {
      dot11::make_direct_probe_request_into(tx_frame_, mac_, e.ssid,
                                            next_seq());
      radio_.transmit(tx_frame_);
    }
  }
  dot11::make_broadcast_probe_request_into(tx_frame_, mac_, next_seq());
  radio_.transmit(tx_frame_);

  // Listen for MinChannelTime + MaxChannelTime, then evaluate.
  scan_end_handle_ = medium_.events().schedule_in(
      dot11::kMinChannelTime + dot11::kMaxChannelTime, [this] { end_scan(); });
}

void Smartphone::end_scan() {
  if (stopped_) return;
  scanning_ = false;
  ++scans_completed_;

  // Choose the strongest joinable candidate: SSID in PNL, stored as open,
  // advertised as open.
  const Candidate* best = nullptr;
  for (const auto& c : candidates_) {
    if (!c.open) continue;
    bool joinable = false;
    for (const auto& e : person_.pnl) {
      if (e.ssid == c.ssid && e.open) {
        joinable = true;
        break;
      }
    }
    if (!joinable) continue;
    if (best == nullptr || c.rssi_dbm > best->rssi_dbm) best = &c;
  }
  if (best != nullptr) {
    try_join(*best);
    return;
  }

  // Nothing joinable this cycle: scan again later.
  const double jitter =
      rng_.uniform(1.0 - cfg_.scan_jitter, 1.0 + cfg_.scan_jitter);
  schedule_next_scan(cfg_.mean_scan_interval * jitter);
}

void Smartphone::try_join(const Candidate& c) {
  join_phase_ = JoinPhase::kAuth;
  join_bssid_ = c.bssid;
  join_ssid_ = c.ssid;
  radio_.transmit(dot11::make_auth_request(mac_, c.bssid, next_seq()));
  join_timeout_handle_ = medium_.events().schedule_in(
      cfg_.join_timeout, [this] { handshake_failed(); });
}

void Smartphone::handshake_failed() {
  join_phase_ = JoinPhase::kIdle;
  const double jitter =
      rng_.uniform(1.0 - cfg_.scan_jitter, 1.0 + cfg_.scan_jitter);
  schedule_next_scan(cfg_.mean_scan_interval * jitter);
}

void Smartphone::on_frame(const Frame& frame, const medium::RxInfo& info) {
  if (stopped_) return;
  const auto& to = frame.header.addr1;
  if (!(to == mac_ || to.is_broadcast())) return;  // not for us

  switch (frame.subtype()) {
    case dot11::MgmtSubtype::kProbeResponse: {
      if (!scanning_) return;
      if (responses_this_scan_ >= cfg_.probe_response_budget) return;
      const auto* body = frame.as<dot11::ProbeResponse>();
      const auto ssid = body->ies.ssid_view();  // no temporary string
      if (!ssid) return;
      ++responses_this_scan_;
      candidates_.push_back(Candidate{std::string(*ssid), frame.header.addr3,
                                      info.rssi_dbm,
                                      !body->capability.privacy()});
      return;
    }
    case dot11::MgmtSubtype::kAuthentication: {
      if (join_phase_ != JoinPhase::kAuth ||
          !(frame.header.addr3 == join_bssid_)) {
        return;
      }
      const auto* body = frame.as<dot11::Authentication>();
      if (body->sequence != 2) return;
      join_timeout_handle_.cancel();
      if (body->status != dot11::StatusCode::kSuccess) {
        handshake_failed();
        return;
      }
      join_phase_ = JoinPhase::kAssoc;
      radio_.transmit(
          dot11::make_assoc_request(mac_, join_bssid_, join_ssid_,
                                    next_seq()));
      join_timeout_handle_ = medium_.events().schedule_in(
          cfg_.join_timeout, [this] { handshake_failed(); });
      return;
    }
    case dot11::MgmtSubtype::kAssociationResponse: {
      if (join_phase_ != JoinPhase::kAssoc ||
          !(frame.header.addr3 == join_bssid_)) {
        return;
      }
      const auto* body = frame.as<dot11::AssociationResponse>();
      join_timeout_handle_.cancel();
      if (body->status != dot11::StatusCode::kSuccess) {
        handshake_failed();
        return;
      }
      join_phase_ = JoinPhase::kIdle;
      connected_ = true;
      lured_ssid_ = join_ssid_;
      if (on_connected) on_connected(*this);
      return;
    }
    case dot11::MgmtSubtype::kDeauthentication: {
      // Only honoured when it claims to come from our current AP.
      if (associated_ap_ && frame.header.addr3 == *associated_ap_) {
        associated_ap_.reset();
        // Connection lost: start scanning for a replacement immediately.
        schedule_next_scan(SimTime::milliseconds(
            static_cast<std::int64_t>(rng_.uniform(50.0, 500.0))));
      } else if (connected_ && frame.header.addr3 == join_bssid_) {
        connected_ = false;
        lured_ssid_.reset();
        schedule_next_scan(SimTime::milliseconds(
            static_cast<std::int64_t>(rng_.uniform(50.0, 500.0))));
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace cityhunter::client
