#include "client/legit_ap.h"

namespace cityhunter::client {

using dot11::Frame;

LegitimateAp::LegitimateAp(medium::Medium& medium, Config cfg)
    : medium_(medium), cfg_(std::move(cfg)) {}

LegitimateAp::~LegitimateAp() { stop(); }

void LegitimateAp::start() {
  if (started_) return;
  started_ = true;
  radio_ = medium_.attach(cfg_.pos, cfg_.channel, cfg_.tx_power_dbm, this);
}

void LegitimateAp::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  medium_.detach(radio_);
}

void LegitimateAp::on_frame(const Frame& frame, const medium::RxInfo&) {
  if (stopped_) return;
  const auto& to = frame.header.addr1;
  const bool for_us = to == cfg_.bssid || to.is_broadcast();
  if (!for_us) return;

  switch (frame.subtype()) {
    case dot11::MgmtSubtype::kProbeRequest: {
      const auto* body = frame.as<dot11::ProbeRequest>();
      const auto probed = body->ies.ssid();
      // Answer broadcast probes and direct probes for our own SSID.
      if (!body->is_broadcast() && (!probed || *probed != cfg_.ssid)) return;
      dot11::make_probe_response_into(tx_frame_, cfg_.bssid,
                                      frame.header.addr2, cfg_.ssid,
                                      cfg_.channel, cfg_.open, next_seq());
      radio_.transmit(tx_frame_);
      return;
    }
    case dot11::MgmtSubtype::kAuthentication: {
      const auto* body = frame.as<dot11::Authentication>();
      if (body->sequence != 1) return;
      radio_.transmit(dot11::make_auth_response(cfg_.bssid, frame.header.addr2,
                                                dot11::StatusCode::kSuccess,
                                                next_seq()));
      return;
    }
    case dot11::MgmtSubtype::kAssociationRequest: {
      associated_.insert(frame.header.addr2);
      radio_.transmit(dot11::make_assoc_response(
          cfg_.bssid, frame.header.addr2, dot11::StatusCode::kSuccess,
          next_aid_++, next_seq()));
      return;
    }
    case dot11::MgmtSubtype::kDeauthentication:
    case dot11::MgmtSubtype::kDisassociation:
      associated_.erase(frame.header.addr2);
      return;
    default:
      return;
  }
}

}  // namespace cityhunter::client
