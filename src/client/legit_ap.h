// A legitimate access point.
//
// Used by the de-authentication ablation (§V-B): venue clients start
// associated to a real AP and will not probe; the attacker forges deauth
// frames to force them back into scanning, where it must then *outbid* this
// AP (stronger RSSI) to lure them. The AP answers probes, authentication and
// association like any production AP, so re-joins are contested.
#pragma once

#include <string>
#include <unordered_set>

#include "dot11/frame.h"
#include "medium/medium.h"

namespace cityhunter::client {

class LegitimateAp : public medium::FrameSink {
 public:
  struct Config {
    std::string ssid;
    dot11::MacAddress bssid;
    medium::Position pos;
    bool open = true;
    std::uint8_t channel = 6;
    double tx_power_dbm = 17.0;
  };

  LegitimateAp(medium::Medium& medium, Config cfg);
  ~LegitimateAp() override;

  LegitimateAp(const LegitimateAp&) = delete;
  LegitimateAp& operator=(const LegitimateAp&) = delete;

  void start();
  void stop();

  const std::string& ssid() const { return cfg_.ssid; }
  const dot11::MacAddress& bssid() const { return cfg_.bssid; }
  std::size_t associated_count() const { return associated_.size(); }
  bool is_associated(const dot11::MacAddress& mac) const {
    return associated_.count(mac) != 0;
  }

  void on_frame(const dot11::Frame& frame, const medium::RxInfo& info) override;

 private:
  std::uint16_t next_seq() { return seq_ = (seq_ + 1) & 0x0fff; }

  medium::Medium& medium_;
  Config cfg_;
  medium::Radio radio_;
  dot11::Frame tx_frame_;  // reused probe-response scratch
  bool started_ = false;
  bool stopped_ = false;
  std::unordered_set<dot11::MacAddress> associated_;
  std::uint16_t seq_ = 0;
  std::uint16_t next_aid_ = 1;
};

}  // namespace cityhunter::client
