// Metrics registry: named counters, gauges, Histogram-backed distributions
// and RAII scoped wallclock timers, snapshotted per run into RunOutput.
//
// Registration (name → Id) happens once at wiring time and may allocate;
// the per-event operations add()/set() are noexcept array stores so they are
// safe inside the heap-free frame path. observe() touches the histogram's
// bucket map and is reserved for cold, per-window call sites.
//
// Determinism: counters, gauges and distributions are driven purely by sim
// events, so their snapshots are bit-identical across thread counts. Timers
// record wallclock and are inherently noisy — MetricsSnapshot::deterministic()
// strips them, and that stripped view is what cross-thread equality tests
// (and RunOutput comparisons) should use.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/histogram.h"

namespace cityhunter::obs {

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kDistribution = 2,
  kTimer = 3,
};

const char* to_string(MetricKind k);

/// One metric in a snapshot. Field meaning by kind:
///   kCounter       count = accumulated total, value = count as double
///   kGauge         count = times set, value = last set, min/max over sets
///   kDistribution  count = samples, value = mean, min/max over samples
///   kTimer         count = intervals, value = total seconds, min/max per
///                  interval (wallclock — excluded from deterministic())
struct MetricPoint {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;
  double value = 0.0;
  double min = 0.0;
  double max = 0.0;

  bool operator==(const MetricPoint&) const = default;
};

struct MetricsSnapshot {
  std::vector<MetricPoint> points;  // sorted by name

  /// The snapshot minus every wallclock (kTimer) point — the view that is
  /// bit-identical for the same seed at any thread count.
  MetricsSnapshot deterministic() const;

  const MetricPoint* find(std::string_view name) const;

  /// One "name kind=... count=... value=..." line per point.
  std::string str() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  using Id = std::size_t;

  /// Register a point and get its handle. Registering the same (name, kind)
  /// twice returns the existing Id, so components can wire independently.
  Id counter(std::string_view name);
  Id gauge(std::string_view name);
  Id distribution(std::string_view name, double bucket_width);
  Id timer(std::string_view name);

  /// Counter increment. Hot-path safe: plain array store, noexcept.
  void add(Id id, std::uint64_t delta = 1) noexcept {
    points_[id].total += delta;
  }

  /// Gauge store. Hot-path safe.
  void set(Id id, double value) noexcept {
    Point& p = points_[id];
    p.last = value;
    if (p.sets == 0 || value < p.min) p.min = value;
    if (p.sets == 0 || value > p.max) p.max = value;
    ++p.sets;
  }

  /// Distribution sample. May allocate a histogram bucket — cold sites only.
  void observe(Id id, double value);

  /// Timer interval. Wallclock, cold.
  void record_seconds(Id id, double seconds);

  std::size_t size() const { return points_.size(); }

  MetricsSnapshot snapshot() const;

 private:
  struct Point {
    std::string name;
    MetricKind kind;
    std::uint64_t total = 0;  // kCounter
    double last = 0.0;        // kGauge
    double min = 0.0;
    double max = 0.0;
    std::uint64_t sets = 0;                     // kGauge
    std::optional<support::Histogram> hist;     // kDistribution
    support::Summary intervals;                 // kTimer
  };

  Id intern(std::string_view name, MetricKind kind);

  std::vector<Point> points_;
};

/// Measures wallclock from construction to stop()/destruction and records it
/// into a timer point. Moveable so phases can hand timers around; a
/// default-constructed (or null-registry) timer is a no-op.
class ScopedTimer {
 public:
  ScopedTimer() = default;
  ScopedTimer(MetricsRegistry* registry, MetricsRegistry::Id id)
      : registry_(registry), id_(id),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(ScopedTimer&& other) noexcept { *this = std::move(other); }
  ScopedTimer& operator=(ScopedTimer&& other) noexcept {
    stop();
    registry_ = other.registry_;
    id_ = other.id_;
    start_ = other.start_;
    other.registry_ = nullptr;
    return *this;
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Record the elapsed interval now; further stops are no-ops.
  void stop() {
    if (registry_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    registry_->record_seconds(
        id_, std::chrono::duration<double>(end - start_).count());
    registry_ = nullptr;
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  MetricsRegistry::Id id_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace cityhunter::obs
