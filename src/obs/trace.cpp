#include "obs/trace.h"

#include <ostream>
#include <stdexcept>

namespace cityhunter::obs {

const char* to_string(Category c) {
  switch (c) {
    case Category::kQueue: return "queue";
    case Category::kMedium: return "medium";
    case Category::kFault: return "fault";
    case Category::kAttacker: return "attacker";
    case Category::kSim: return "sim";
  }
  return "?";
}

const char* to_string(Event e) {
  switch (e) {
    case Event::kTransmit: return "transmit";
    case Event::kDeliver: return "deliver";
    case Event::kRetry: return "retry";
    case Event::kDropErasure: return "drop-erasure";
    case Event::kDropCollision: return "drop-collision";
    case Event::kDropCrcReject: return "drop-crc-reject";
    case Event::kScanWindowFill: return "scan-window-fill";
    case Event::kPbResize: return "pb-resize";
    case Event::kGhostPromotion: return "ghost-promotion";
    case Event::kShardFanout: return "shard-fanout";
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : ring_(capacity), capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceBuffer: capacity must be positive");
  }
}

std::vector<TraceRecord> TraceBuffer::chronological() const {
  std::vector<TraceRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest retained record sits at total_ % capacity_ once the ring has
  // wrapped; before that the ring is a plain prefix.
  const std::size_t start =
      total_ < capacity_ ? 0 : static_cast<std::size_t>(total_ % capacity_);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % static_cast<std::size_t>(capacity_)]);
  }
  return out;
}

namespace {

constexpr char kHex[] = "0123456789abcdef";

void append_u_escape(unsigned char byte, std::string& out) {
  out += "\\u00";
  out += kHex[byte >> 4];
  out += kHex[byte & 0xf];
}

/// Length of the well-formed UTF-8 sequence starting at raw[i], or 0 when
/// the byte opens no valid sequence (continuation checks included; overlong
/// and surrogate encodings are not distinguished — they still render, which
/// is enough for a log sink).
std::size_t utf8_run(std::string_view raw, std::size_t i) {
  const auto byte = static_cast<unsigned char>(raw[i]);
  std::size_t len;
  if (byte < 0x80) return 1;
  if ((byte & 0xe0) == 0xc0) len = 2;
  else if ((byte & 0xf0) == 0xe0) len = 3;
  else if ((byte & 0xf8) == 0xf0) len = 4;
  else return 0;  // stray continuation or invalid lead byte
  if (i + len > raw.size()) return 0;  // truncated sequence
  for (std::size_t k = 1; k < len; ++k) {
    if ((static_cast<unsigned char>(raw[i + k]) & 0xc0) != 0x80) return 0;
  }
  return len;
}

}  // namespace

void json_escape(std::string_view raw, std::string& out) {
  for (std::size_t i = 0; i < raw.size();) {
    const char c = raw[i];
    const auto byte = static_cast<unsigned char>(c);
    if (c == '"') {
      out += "\\\"";
      ++i;
    } else if (c == '\\') {
      out += "\\\\";
      ++i;
    } else if (byte < 0x20) {
      // Control bytes — \n and friends included; uniform \u00XX keeps the
      // escaper table-free and the output still round-trips.
      append_u_escape(byte, out);
      ++i;
    } else if (byte < 0x80) {
      out += c;
      ++i;
    } else if (const std::size_t len = utf8_run(raw, i); len > 0) {
      out.append(raw.substr(i, len));
      i += len;
    } else {
      out += "\xef\xbf\xbd";  // U+FFFD REPLACEMENT CHARACTER
      ++i;
    }
  }
}

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  json_escape(raw, out);
  return out;
}

namespace {

void write_record_fields(std::ostream& os, const TraceRecord& r) {
  os << "\"ts\":" << r.time_us << ",\"seq\":" << r.seq << ",\"cat\":\""
     << to_string(r.category) << "\",\"ev\":\"" << to_string(r.event)
     << "\",\"a\":" << r.a << ",\"b\":" << r.b;
}

}  // namespace

void write_jsonl(std::ostream& os, std::span<const TraceStream> streams) {
  for (const TraceStream& s : streams) {
    for (const TraceRecord& r : s.records) {
      os << '{';
      write_record_fields(os, r);
      os << ",\"pid\":" << s.pid << "}\n";
    }
  }
}

void write_chrome_trace(std::ostream& os,
                        std::span<const TraceStream> streams) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
    os << '\n';
  };
  for (const TraceStream& s : streams) {
    // Process metadata: name each run so the Perfetto sidebar reads
    // "run-3 (canteen)" instead of a bare pid.
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << s.pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(s.name) << "\"}}";
    for (int tid = 0; tid <= static_cast<int>(Category::kSim); ++tid) {
      sep();
      os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << s.pid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
         << to_string(static_cast<Category>(tid)) << "\"}}";
    }
    for (const TraceRecord& r : s.records) {
      sep();
      // Instant events, thread-scoped: one dot per record on the emitting
      // category's track at its sim-time microsecond.
      os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << to_string(r.event)
         << "\",\"pid\":" << s.pid
         << ",\"tid\":" << static_cast<int>(r.category) << ',';
      write_record_fields(os, r);
      os << '}';
    }
  }
  os << "\n]}\n";
}

}  // namespace cityhunter::obs
