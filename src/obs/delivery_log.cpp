#include "obs/delivery_log.h"

#include <bit>

namespace cityhunter::obs {

namespace {

inline std::uint64_t fnv1a_word(std::uint64_t h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::uint64_t record_hash(const DeliveryRecord& r) {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a_word(h, static_cast<std::uint64_t>(r.time_us));
  h = fnv1a_word(h, r.tx_id);
  h = fnv1a_word(h, r.rx_id);
  h = fnv1a_word(h, r.rssi_bits);
  h = fnv1a_word(h, r.channel);
  return h;
}

void DeliveryLog::record(std::int64_t time_us, std::uint64_t tx_id,
                         std::uint64_t rx_id, double rssi_dbm,
                         std::uint8_t channel) {
  const DeliveryRecord r{time_us, tx_id, rx_id,
                         std::bit_cast<std::uint64_t>(rssi_dbm), channel};
  ++count_;
  digest_ += record_hash(r);  // mod-2^64 sum: order-independent, multiset
  if (keep_) records_.push_back(r);
}

std::vector<DeliveryRecord> merge_by_input_order(
    std::span<const DeliveryLog* const> logs) {
  std::size_t total = 0;
  for (const DeliveryLog* log : logs) total += log->records().size();
  std::vector<DeliveryRecord> merged;
  merged.reserve(total);
  for (const DeliveryLog* log : logs) {
    merged.insert(merged.end(), log->records().begin(), log->records().end());
  }
  return merged;
}

std::uint64_t combined_digest(std::span<const DeliveryLog* const> logs) {
  std::uint64_t d = 0;
  for (const DeliveryLog* log : logs) d += log->digest();
  return d;
}

}  // namespace cityhunter::obs
